//! Layer benchmark: compare every convolution method on a chosen Table 4
//! layer, the single-layer slice of the paper's Figure 4.
//!
//! ```sh
//! cargo run --release -p ndirect-integration --example layer_benchmark -- [layer_id] [batch]
//! ```

use ndirect_baselines::{blocked, im2col, indirect};
use ndirect_core::{conv_ndirect_with, Schedule};
use ndirect_tensor::{ActLayout, FilterLayout, Tensor4};
use ndirect_threads::StaticPool;
use ndirect_workloads::{make_problem, table4};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let layer_id: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(10);
    let batch: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1);

    let layer = table4::layer_by_id(layer_id).unwrap_or_else(|| {
        eprintln!("layer id must be 1..=28");
        std::process::exit(1);
    });
    let shape = layer.shape(batch);
    println!("Table 4 layer {layer_id}: {shape}");

    let pool = StaticPool::with_hardware_threads();
    let platform = ndirect_platform::host();
    let p = make_problem(shape, ActLayout::Nchw, FilterLayout::Kcrs, 7);

    let bench = |name: &str, mut f: Box<dyn FnMut() -> Tensor4 + '_>| {
        let mut best = f64::MAX;
        std::hint::black_box(f()); // warm-up
        for _ in 0..3 {
            let t = Instant::now();
            let out = f();
            best = best.min(t.elapsed().as_secs_f64());
            std::hint::black_box(out);
        }
        println!(
            "{name:<14} {:>8.2} ms  {:>8.2} GFLOPS",
            best * 1e3,
            shape.gflops(best)
        );
    };

    let sched = Schedule::derive(&platform, &shape, pool.size());
    bench(
        "NDIRECT",
        Box::new(|| conv_ndirect_with(&pool, &p.input, &p.filter, &shape, &sched)),
    );
    bench(
        "im2col+GEMM",
        Box::new(|| im2col::conv_im2col(&pool, &p.input, &p.filter, &shape)),
    );
    let ops = blocked::prepare_blocked(&p.input, &p.filter, &shape);
    bench(
        "LIBXSMM-like",
        Box::new(|| {
            blocked::conv_blocked(&pool, &ops.input, &ops.filter, &shape)
                .to_tensor(ActLayout::Nchw)
        }),
    );
    let in_nhwc = p.input.to_layout(ActLayout::Nhwc);
    let f_krsc = p.filter.to_layout(FilterLayout::Krsc);
    bench(
        "XNNPACK-like",
        Box::new(|| indirect::conv_indirect(&pool, &in_nhwc, &f_krsc, &shape)),
    );
}

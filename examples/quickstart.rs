//! Quickstart: run one nDirect convolution and verify it against the
//! naive oracle.
//!
//! ```sh
//! cargo run --release -p ndirect-integration --example quickstart
//! ```

use ndirect_core::{conv_ndirect, Schedule};
use ndirect_tensor::{fill, max_rel_diff, ActLayout, ConvShape, Filter, FilterLayout, Tensor4};
use ndirect_threads::StaticPool;

fn main() {
    // A ResNet-50 layer (Table 4 id 10): C=128, K=128, 28x28, 3x3, stride 1.
    let shape = ConvShape::square(1, 128, 128, 28, 3, 1);
    println!("convolution: {shape}");
    println!("FLOPs: {:.2} G", shape.flops() as f64 / 1e9);

    // Mainstream layouts in, mainstream layouts out — no format conversion.
    let input = fill::random_tensor(Tensor4::input_for(&shape, ActLayout::Nchw), 1);
    let filter = fill::random_filter(Filter::for_shape(&shape, FilterLayout::Kcrs), 1);

    // One thread team for the process; nDirect derives its schedule from
    // the host's cache sizes and register file.
    let pool = StaticPool::with_hardware_threads();
    let schedule = Schedule::derive(&ndirect_platform::host(), &shape, pool.size());
    println!(
        "derived schedule: Vw={} Vk={} Tc={} Tk={} Th={} grid={}x{}",
        schedule.vw,
        schedule.vk,
        schedule.tc,
        schedule.tk,
        schedule.th,
        schedule.grid.ptn(),
        schedule.grid.ptk()
    );

    let start = std::time::Instant::now();
    let output = conv_ndirect(&pool, &input, &filter, &shape);
    let secs = start.elapsed().as_secs_f64();
    println!(
        "nDirect: {:.2} ms = {:.2} GFLOPS",
        secs * 1e3,
        shape.gflops(secs)
    );

    // Check against the seven-loop oracle.
    let reference = ndirect_baselines::naive::conv_ref(&input, &filter, &shape);
    let err = max_rel_diff(output.as_slice(), reference.as_slice());
    println!("max relative error vs naive oracle: {err:.2e}");
    assert!(err < 2e-4);
    println!("OK");
}

//! Classic image filtering through the convolution API: Sobel edge
//! detection and Gaussian blur on a synthetic image, run through nDirect
//! and rendered as ASCII art — the "convolution is a sliding dot product"
//! intuition of the paper's §1, end to end.
//!
//! ```sh
//! cargo run --release -p ndirect-integration --example image_filters
//! ```

use ndirect_core::conv_ndirect;
use ndirect_tensor::{ActLayout, ConvShape, Filter, FilterLayout, Padding, Tensor4};
use ndirect_threads::StaticPool;

const SIZE: usize = 48;

/// A synthetic image: a bright disc on a dark background with a diagonal
/// stripe, values in [0, 1].
fn synthetic_image() -> Tensor4 {
    let mut img = Tensor4::zeros(1, 1, SIZE, SIZE, ActLayout::Nchw);
    let c = SIZE as f32 / 2.0;
    for y in 0..SIZE {
        for x in 0..SIZE {
            let (dx, dy) = (x as f32 - c, y as f32 - c);
            let mut v = if (dx * dx + dy * dy).sqrt() < SIZE as f32 / 4.0 {
                1.0
            } else {
                0.1
            };
            if (x + SIZE - y) % SIZE < 3 {
                v = 0.9;
            }
            *img.at_mut(0, 0, y, x) = v;
        }
    }
    img
}

fn render(title: &str, t: &Tensor4, ch: usize) {
    println!("--- {title} ---");
    let (_, _, h, w) = t.dims();
    let (mut lo, mut hi) = (f32::MAX, f32::MIN);
    for y in 0..h {
        for x in 0..w {
            let v = t.at(0, ch, y, x);
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    let ramp: &[u8] = b" .:-=+*#%@";
    for y in (0..h).step_by(2) {
        let mut line = String::new();
        for x in 0..w {
            let v = (t.at(0, ch, y, x) - lo) / (hi - lo).max(1e-6);
            let idx = ((v * (ramp.len() - 1) as f32).round() as usize).min(ramp.len() - 1);
            line.push(ramp[idx] as char);
        }
        println!("{line}");
    }
}

fn main() {
    let img = synthetic_image();
    render("input", &img, 0);
    let pool = StaticPool::new(1);

    // One conv with K=2 computes both Sobel gradients in a single pass.
    let shape = ConvShape::new(1, 1, SIZE, SIZE, 2, 3, 3, 1, Padding::same(1));
    let mut sobel = Filter::zeros(2, 1, 3, 3, FilterLayout::Kcrs);
    #[rustfmt::skip]
    let gx = [-1.0, 0.0, 1.0,
              -2.0, 0.0, 2.0,
              -1.0, 0.0, 1.0];
    #[rustfmt::skip]
    let gy = [-1.0, -2.0, -1.0,
               0.0,  0.0,  0.0,
               1.0,  2.0,  1.0];
    for (i, v) in gx.iter().enumerate() {
        sobel.as_mut_slice()[i] = *v;
    }
    for (i, v) in gy.iter().enumerate() {
        sobel.as_mut_slice()[9 + i] = *v;
    }
    let grads = conv_ndirect(&pool, &img, &sobel, &shape);

    // Gradient magnitude.
    let mut edges = Tensor4::zeros(1, 1, SIZE, SIZE, ActLayout::Nchw);
    for y in 0..SIZE {
        for x in 0..SIZE {
            let (gx, gy) = (grads.at(0, 0, y, x), grads.at(0, 1, y, x));
            *edges.at_mut(0, 0, y, x) = (gx * gx + gy * gy).sqrt();
        }
    }
    render("Sobel edge magnitude (nDirect)", &edges, 0);

    // 5x5 Gaussian blur.
    let shape = ConvShape::new(1, 1, SIZE, SIZE, 1, 5, 5, 1, Padding::same(2));
    let mut gauss = Filter::zeros(1, 1, 5, 5, FilterLayout::Kcrs);
    let kernel1d = [1.0f32, 4.0, 6.0, 4.0, 1.0];
    let norm: f32 = 256.0;
    for r in 0..5 {
        for s in 0..5 {
            *gauss.at_mut(0, 0, r, s) = kernel1d[r] * kernel1d[s] / norm;
        }
    }
    let blurred = conv_ndirect(&pool, &img, &gauss, &shape);
    render("Gaussian blur (nDirect)", &blurred, 0);

    // Cross-check one filter against the oracle.
    let reference = ndirect_baselines::naive::conv_ref(&img, &gauss, &shape);
    let err = ndirect_tensor::max_rel_diff(blurred.as_slice(), reference.as_slice());
    println!("\nmax relative error vs oracle: {err:.2e}");
}

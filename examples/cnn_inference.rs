//! End-to-end CNN inference with a pluggable convolution backend —
//! a single-model slice of the paper's Figure 7.
//!
//! ```sh
//! cargo run --release -p ndirect-integration --example cnn_inference -- [resnet50|resnet101|vgg16|vgg19] [batch]
//! ```

use ndirect_baselines::Im2colBackend;
use ndirect_models::{resnet101, resnet50, vgg16, vgg19, Engine, NDirectBackend};
use ndirect_tensor::{fill, ActLayout, Tensor4};
use ndirect_threads::StaticPool;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().map(String::as_str).unwrap_or("resnet50");
    let batch: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1);

    let model = match which {
        "resnet50" => resnet50(0),
        "resnet101" => resnet101(0),
        "vgg16" => vgg16(0),
        "vgg19" => vgg19(0),
        other => {
            eprintln!("unknown model {other}");
            std::process::exit(1);
        }
    };
    println!(
        "{}: {} convolutions, {:.1}M params, {:.1} conv GFLOP at batch {batch}",
        model.name,
        model.conv_count(),
        model.params() as f64 / 1e6,
        model.conv_flops(batch) as f64 / 1e9
    );

    let pool = StaticPool::with_hardware_threads();
    let input = fill::random_tensor(Tensor4::zeros(batch, 3, 224, 224, ActLayout::Nchw), 1);

    let ndirect = NDirectBackend::host();
    for backend in [
        &ndirect as &dyn ndirect_baselines::Convolution,
        &Im2colBackend,
    ] {
        let engine = Engine::new(backend, &pool);
        let (probs, stats) = engine.run(&model, &input);
        let top: (usize, f32) = (0..1000)
            .map(|c| (c, probs.at(0, c, 0, 0)))
            .fold((0, 0.0), |acc, x| if x.1 > acc.1 { x } else { acc });
        println!(
            "{:<12} total {:>8.3} s | conv {:>8.3} s ({:>4.1}% of runtime) | argmax class {} (p={:.4})",
            backend.name(),
            stats.total.as_secs_f64(),
            stats.conv_time.as_secs_f64(),
            100.0 * stats.conv_fraction(),
            top.0,
            top.1
        );
    }
}

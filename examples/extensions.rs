//! The §10.2 extensions, end to end: depthwise-separable convolution
//! (MobileNet's building block), 3-D convolution, and the native NHWC
//! entry point.
//!
//! ```sh
//! cargo run --release -p ndirect-integration --example extensions
//! ```

use ndirect_core::{
    conv3d_naive, conv3d_ndirect, conv_depthwise_separable, conv_ndirect_nhwc, Conv3dShape,
};
use ndirect_tensor::{
    fill, max_rel_diff, ActLayout, ConvShape, Filter, Filter5, FilterLayout, Tensor4, Tensor5,
};
use ndirect_threads::StaticPool;
use std::time::Instant;

fn main() {
    let pool = StaticPool::with_hardware_threads();

    // --- Depthwise separable block (MobileNet): dw3x3 + pw1x1 ---
    let shape = ConvShape::square(1, 64, 64, 56, 3, 1); // geometry carrier
    let input = fill::random_tensor(Tensor4::input_for(&shape, ActLayout::Nchw), 1);
    let dw = fill::random_filter(Filter::zeros(64, 1, 3, 3, FilterLayout::Kcrs), 2);
    let pw = fill::random_filter(Filter::zeros(128, 64, 1, 1, FilterLayout::Kcrs), 3);
    let t = Instant::now();
    let out = conv_depthwise_separable(&pool, &input, &dw, &pw, &shape);
    let dsc_time = t.elapsed();
    // The separable pair vs the dense 3x3 it approximates: count the MACs.
    let dsc_macs = 64 * 56 * 56 * 9 + 128 * 64 * 56 * 56;
    let dense_macs = 128 * 64 * 56 * 56 * 9;
    println!(
        "depthwise-separable 64->128 @56x56: {:?}, {}x fewer MACs than dense 3x3",
        dsc_time,
        dense_macs / dsc_macs
    );
    assert_eq!(out.dims(), (1, 128, 56, 56));

    // --- 3-D convolution (video / volumetric) ---
    let shape3 = Conv3dShape {
        n: 1,
        c: 4,
        d: 16,
        h: 32,
        w: 32,
        k: 8,
        t: 3,
        r: 3,
        s: 3,
        stride: 1,
        pad_d: 1,
        pad_h: 1,
        pad_w: 1,
    };
    let mut vol = Tensor5::zeros(shape3.n, shape3.c, shape3.d, shape3.h, shape3.w);
    fill::fill_random(vol.as_mut_slice(), 4);
    let mut f3 = Filter5::zeros(shape3.k, shape3.c, shape3.t, shape3.r, shape3.s);
    fill::fill_random(f3.as_mut_slice(), 5);

    let t = Instant::now();
    let got = conv3d_ndirect(&pool, &vol, &f3, &shape3);
    let fast = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let expect = conv3d_naive(&vol, &f3, &shape3);
    let slow = t.elapsed().as_secs_f64();
    let err = max_rel_diff(got.as_slice(), expect.as_slice());
    println!(
        "conv3d 4->8 @16x32x32 3x3x3: {:.2} GFLOPS ({:.1}x over naive), max rel err {err:.1e}",
        shape3.flops() as f64 / fast / 1e9,
        slow / fast
    );
    assert!(err < 2e-4);

    // --- Native NHWC entry (TensorFlow-style layouts) ---
    let shape = ConvShape::square(1, 64, 64, 28, 3, 1);
    let in_nhwc = fill::random_tensor(Tensor4::input_for(&shape, ActLayout::Nhwc), 6);
    let f_krsc = fill::random_filter(Filter::for_shape(&shape, FilterLayout::Krsc), 7);
    let t = Instant::now();
    let out = conv_ndirect_nhwc(&pool, &in_nhwc, &f_krsc, &shape);
    println!(
        "native NHWC 64->64 @28x28 3x3: {:.2} GFLOPS, output layout {:?}",
        shape.gflops(t.elapsed().as_secs_f64()),
        out.layout()
    );
    let oracle = ndirect_baselines::naive::conv_ref(&in_nhwc, &f_krsc, &shape);
    let err = max_rel_diff(out.as_slice(), oracle.as_slice());
    assert!(err < 2e-4);

    // --- INT16 quantized convolution ---
    let shape = ConvShape::square(1, 64, 64, 28, 3, 1);
    let input = fill::random_tensor(Tensor4::input_for(&shape, ActLayout::Nchw), 8);
    let filter = fill::random_filter(Filter::for_shape(&shape, FilterLayout::Kcrs), 9);
    let t = Instant::now();
    let (qout, qx, qw) = ndirect_core::conv_quantized(&pool, &input, &filter, &shape);
    let qt = t.elapsed().as_secs_f64();
    let reference = ndirect_baselines::naive::conv_ref(&input, &filter, &shape);
    let qerr = max_rel_diff(qout.as_slice(), reference.as_slice());
    println!(
        "INT16 quantized 64->64 @28x28 3x3: {:.2} effective GOPS, scales ({:.2e}, {:.2e}), max rel err {qerr:.1e}",
        shape.gflops(qt),
        qx.scale,
        qw.scale
    );
    // Worst plausible quantization error for this reduction: each of the
    // C·R·S products carries ≤ (scale_x + scale_w)/2 noise with [-1,1) data,
    // accumulating ~√(C·R·S) in RMS; outputs near zero make the relative
    // metric (denominator clamped at 1) see it directly.
    let crs = (64 * 3 * 3) as f32;
    let qbound = 2.0 * crs.sqrt() * (qx.scale + qw.scale);
    assert!(qerr < qbound, "qerr {qerr} vs bound {qbound}");
    println!("all extensions verified against oracles");
}

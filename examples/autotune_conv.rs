//! Autotune a convolution schedule and compare it with the analytic
//! model's choice — a single-layer slice of the paper's Figure 6.
//!
//! ```sh
//! cargo run --release -p ndirect-integration --example autotune_conv -- [layer_id] [trials]
//! ```

use ndirect_autotune::{tune, TuneSettings};
use ndirect_core::{conv_ndirect_with, Schedule};
use ndirect_tensor::{ActLayout, FilterLayout};
use ndirect_threads::StaticPool;
use ndirect_workloads::{make_problem, table4};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let layer_id: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(10);
    let trials: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(32);

    let layer = table4::layer_by_id(layer_id).expect("layer id 1..=28");
    let shape = layer.shape(1);
    println!("tuning layer {layer_id}: {shape} ({trials} measured trials)");

    let pool = StaticPool::with_hardware_threads();
    let p = make_problem(shape, ActLayout::Nchw, FilterLayout::Kcrs, 3);

    let settings = TuneSettings {
        trials,
        ..TuneSettings::default()
    };
    let report = tune(&pool, &shape, &p.input, &p.filter, &settings);
    println!("convergence:");
    for (t, g) in &report.history {
        println!("  after {t:>4} trials: best {g:>8.2} GFLOPS");
    }
    println!(
        "tuned:  Vw={} Vk={} Tc={} Tk={} Th={} packing={:?}  ->  {:.2} GFLOPS",
        report.best.vw,
        report.best.vk,
        report.best.tc,
        report.best.tk,
        report.best.th,
        report.best.packing,
        report.best_gflops
    );

    let sched = Schedule::derive(&ndirect_platform::host(), &shape, pool.size());
    let mut best = f64::MAX;
    for _ in 0..3 {
        let t = std::time::Instant::now();
        let out = conv_ndirect_with(&pool, &p.input, &p.filter, &shape, &sched);
        best = best.min(t.elapsed().as_secs_f64());
        std::hint::black_box(out);
    }
    println!(
        "model:  Vw={} Vk={} Tc={} Tk={} Th={} (no search)     ->  {:.2} GFLOPS",
        sched.vw,
        sched.vk,
        sched.tc,
        sched.tk,
        sched.th,
        shape.gflops(best)
    );
}

//! Differential accounting tests for the observability layer: the probe's
//! counters must agree with the closed-form FLOP count, the schedule's
//! analytic packing prediction, and the plan layer's pooling contract —
//! on real Table 4 layers, across thread grids.
//!
//! The probe's counters are process-global, so every test here serializes
//! on one lock and asserts on [`TraceReport::since`] snapshot deltas —
//! never on `probe::reset()`, which would race any concurrent reader in
//! the process. Without `--features probe` the counters are compile-time
//! zeros; each test then only exercises that the API is inert.

use std::sync::{Mutex, MutexGuard};

use ndirect_core::{ConvPlan, FusedDwPwPlan, PackingMode, Schedule};
use ndirect_probe::{Counter, Phase, TraceReport};
use ndirect_tensor::{fill, ActLayout, ConvShape, Filter, FilterLayout, Padding, Tensor4};
use ndirect_threads::{Grid2, StaticPool};
use ndirect_workloads::{make_problem, table4};

/// Serializes counter-sensitive tests within this binary (other test
/// binaries are separate processes, so their counters are independent).
static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

/// The accounting layer set: a mid-network 3×3, a late 3×3, and the
/// smallest-spatial ResNet-50 row — three Table 4 layers as required by
/// the acceptance criteria, kept cheap enough for the test profile.
const LAYERS: [usize; 3] = [10, 16, 21];

fn deltas(counters: &[Counter], f: impl FnOnce()) -> Vec<u64> {
    let before = TraceReport::capture();
    f();
    let delta = TraceReport::capture().since(&before);
    counters.iter().map(|&c| delta.counter(c)).collect()
}

fn run_layer_nchw(layer_id: usize, threads: usize, grid: Option<Grid2>) -> Tensor4 {
    let layer = table4::layer_by_id(layer_id).unwrap();
    let shape = layer.shape(1);
    let p = make_problem(shape, ActLayout::Nchw, FilterLayout::Kcrs, layer_id as u64);
    let pool = StaticPool::new(threads);
    let platform = ndirect_platform::host();
    let mut sched = Schedule::derive(&platform, &shape, threads);
    if let Some(g) = grid {
        sched = sched.with_grid(g);
    }
    let plan = ConvPlan::try_with_schedule(&shape, &p.filter, &sched).expect("valid layer");
    let mut out = Tensor4::output_for(&shape, ActLayout::Nchw);
    plan.execute(&pool, &p.input, &mut out).expect("valid layer");
    out
}

#[test]
fn flop_counter_matches_closed_form_on_table4_layers() {
    let _g = lock();
    for &id in &LAYERS {
        let shape = table4::layer_by_id(id).unwrap().shape(1);
        for threads in [1, 4] {
            let d = deltas(&[Counter::FlopsIssued], || {
                run_layer_nchw(id, threads, None);
            });
            if ndirect_probe::ENABLED {
                assert_eq!(
                    d[0],
                    shape.flops(),
                    "layer {id} × {threads} threads: flops_issued must equal 2·N·K·C·R·S·Ho·Wo"
                );
            } else {
                assert_eq!(d[0], 0, "disabled probe must not count");
            }
        }
    }
}

#[test]
fn packed_bytes_match_schedule_prediction() {
    let _g = lock();
    let platform = ndirect_platform::host();
    for &id in &LAYERS {
        let shape = table4::layer_by_id(id).unwrap().shape(1);
        for threads in [1, 4] {
            let sched = Schedule::derive(&platform, &shape, threads).sanitized(&shape);
            let d = deltas(&[Counter::BytesPacked], || {
                run_layer_nchw(id, threads, None);
            });
            if ndirect_probe::ENABLED {
                assert_eq!(
                    d[0] as u128,
                    sched.predicted_pack_bytes(&shape),
                    "layer {id} × {threads} threads: bytes_packed must match the cache model"
                );
            } else {
                assert_eq!(d[0], 0);
            }
        }
    }
}

/// The zero-copy schedule variants: `None` must pack exactly zero bytes
/// (and predict zero), `Sliced` must pack exactly what the analytic slab
/// model predicts, and both must record in `bytes_pack_saved` precisely
/// the per-strip traffic a `Fused` run of the same layer pays in
/// `bytes_packed` — all while staying bitwise identical to `Fused`.
#[test]
fn zero_copy_variants_account_exactly_and_match_fused_bitwise() {
    let _g = lock();
    let platform = ndirect_platform::host();
    let watched = [Counter::BytesPacked, Counter::BytesPackSaved];
    for &id in &LAYERS {
        let shape = table4::layer_by_id(id).unwrap().shape(1);
        let p = make_problem(shape, ActLayout::Nchw, FilterLayout::Kcrs, id as u64);
        let pool = StaticPool::new(2);
        let base = Schedule::derive(&platform, &shape, 2);
        let model_rows = ndirect_core::model::slicing::slab_rows(&platform, &shape, base.tc);

        let run = |packing: PackingMode| {
            let mut sched = base.clone();
            sched.packing = packing;
            let plan =
                ConvPlan::try_with_schedule(&shape, &p.filter, &sched).expect("valid layer");
            let predicted = plan.schedule().predicted_pack_bytes(&shape);
            let mut out = Tensor4::output_for(&shape, ActLayout::Nchw);
            let d = deltas(&watched, || {
                plan.execute(&pool, &p.input, &mut out).expect("valid layer");
            });
            (out, d, predicted)
        };

        let (fused_out, fused_d, _) = run(PackingMode::Fused);
        if ndirect_probe::ENABLED {
            assert_eq!(fused_d[1], 0, "layer {id}: Fused saves nothing");
        }
        for mode in [PackingMode::None, PackingMode::Sliced { rows: model_rows }] {
            let (out, d, predicted) = run(mode);
            assert_eq!(
                out.as_slice(),
                fused_out.as_slice(),
                "layer {id}: {mode:?} must be bitwise identical to Fused"
            );
            if ndirect_probe::ENABLED {
                assert_eq!(
                    d[0] as u128, predicted,
                    "layer {id}: {mode:?} bytes_packed must match the prediction"
                );
                if mode == PackingMode::None {
                    assert_eq!(d[0], 0, "layer {id}: the zero-copy mode packs nothing");
                    assert_eq!(predicted, 0);
                }
                assert_eq!(
                    d[1], fused_d[0],
                    "layer {id}: {mode:?} bytes_pack_saved must equal Fused's bytes_packed"
                );
            } else {
                assert_eq!(d, vec![0, 0]);
            }
        }
    }
}

#[test]
fn nhwc_driver_accounts_like_the_cache_model_too() {
    let _g = lock();
    let layer = table4::layer_by_id(10).unwrap();
    let shape = layer.shape(1);
    let p = make_problem(shape, ActLayout::Nhwc, FilterLayout::Krsc, 10);
    let pool = StaticPool::new(2);
    let platform = ndirect_platform::host();
    let plan = ConvPlan::try_new_nhwc(&platform, &shape, &p.filter, 2).expect("valid layer");
    let mut out = Tensor4::output_for(&shape, ActLayout::Nhwc);
    let d = deltas(&[Counter::FlopsIssued, Counter::BytesPacked], || {
        plan.execute(&pool, &p.input, &mut out).expect("valid layer");
    });
    if ndirect_probe::ENABLED {
        assert_eq!(d[0], shape.flops(), "NHWC flops accounting");
        assert_eq!(
            d[1] as u128,
            plan.schedule().predicted_pack_bytes(&shape),
            "NHWC packing accounting"
        );
    } else {
        assert_eq!(d, vec![0, 0]);
    }
}

#[test]
fn scratch_pool_hit_rate_is_total_after_warmup() {
    let _g = lock();
    let layer = table4::layer_by_id(21).unwrap();
    let shape = layer.shape(1);
    let p = make_problem(shape, ActLayout::Nchw, FilterLayout::Kcrs, 21);
    let pool = StaticPool::new(1);
    let platform = ndirect_platform::host();
    // The plan build provisions the first scratch set, so even the first
    // execute is a pool hit: warm-up cost lives entirely in the build.
    let plan = ConvPlan::try_new(&platform, &shape, &p.filter, 1).expect("valid layer");
    let mut out = Tensor4::output_for(&shape, ActLayout::Nchw);
    const RUNS: u64 = 6;
    let d = deltas(&[Counter::ScratchPoolHits, Counter::ScratchPoolMisses], || {
        for _ in 0..RUNS {
            plan.execute(&pool, &p.input, &mut out).expect("valid layer");
        }
    });
    if ndirect_probe::ENABLED {
        assert_eq!(d[0], RUNS, "every post-build execute must lease from the pool");
        assert_eq!(d[1], 0, "a warm plan must never allocate scratch");
    } else {
        assert_eq!(d, vec![0, 0]);
    }
}

#[test]
fn counters_and_results_are_identical_across_1_and_4_threads() {
    let _g = lock();
    let watched = [Counter::FlopsIssued, Counter::BytesPacked];
    for &id in &LAYERS {
        // Row-only grids: splitting the flat N·P row space changes nothing
        // about how many (row, Tc, Tk, strip) packs happen in total, and
        // FLOPs are grid-invariant outright — so every counter must agree
        // bit for bit with the single-thread run, as must the output.
        let mut outs = Vec::new();
        let mut counts = Vec::new();
        for (threads, grid) in [(1, Grid2::new(1, 1)), (4, Grid2::new(4, 1))] {
            let mut out = None;
            let d = deltas(&watched, || {
                out = Some(run_layer_nchw(id, threads, Some(grid)));
            });
            outs.push(out.unwrap());
            counts.push(d);
        }
        assert_eq!(
            counts[0], counts[1],
            "layer {id}: counters must be thread-grid invariant on row-only grids"
        );
        assert_eq!(
            outs[0].as_slice(),
            outs[1].as_slice(),
            "layer {id}: results must be bitwise identical across grids"
        );
    }
}

#[test]
fn balanced_split_shows_every_worker_busy() {
    let _g = lock();
    if !ndirect_probe::ENABLED {
        return;
    }
    let layer = table4::layer_by_id(10).unwrap();
    let shape = layer.shape(1);
    let p = make_problem(shape, ActLayout::Nchw, FilterLayout::Kcrs, 10);
    let pool = StaticPool::new(4);
    let platform = ndirect_platform::host();
    let sched = Schedule::derive(&platform, &shape, 4).with_grid(Grid2::new(4, 1));
    let plan = ConvPlan::try_with_schedule(&shape, &p.filter, &sched).expect("valid layer");
    let mut out = Tensor4::output_for(&shape, ActLayout::Nchw);

    let before = TraceReport::capture();
    plan.execute(&pool, &p.input, &mut out).expect("valid layer");
    let report = TraceReport::capture().since(&before);

    // Jobs are pulled from a shared board, so which OS thread runs which
    // grid slot is scheduler-dependent (on a single-CPU host one worker
    // can drain several slots). The *balanced-split* property is about
    // the grid: every one of the 4 slots must have recorded a busy
    // Worker span (arg = grid thread id).
    let mut slots: Vec<u32> = report
        .threads
        .iter()
        .flat_map(|t| t.events.iter())
        .filter(|e| e.phase == Phase::Worker)
        .map(|e| e.arg)
        .collect();
    slots.sort_unstable();
    slots.dedup();
    assert_eq!(
        slots,
        [0, 1, 2, 3],
        "a 4×1 grid over 28 rows must run every grid slot"
    );
    // And every thread that ran a slot actually did micro-kernel work.
    for t in report
        .threads
        .iter()
        .filter(|t| t.phase_ns[Phase::Worker as usize] > 0)
    {
        assert!(
            t.phase_calls[Phase::MicroKernel as usize] > 0,
            "thread {} ran a worker slot without touching the micro-kernel",
            t.name
        );
    }
    // The dispatching caller also recorded the region span and its
    // barrier wait.
    assert!(
        report
            .threads
            .iter()
            .any(|t| t.phase_calls[Phase::Region as usize] > 0
                && t.phase_calls[Phase::Barrier as usize] > 0),
        "the caller must record the region and its barrier"
    );
    assert_eq!(report.counter(Counter::Regions), 1);
}

/// One fused dw+pw pair for the accounting tests: seeded operands and a
/// plan built with the host-derived schedule.
fn fused_pair(
    dw_shape: &ConvShape,
    k: usize,
    threads: usize,
) -> (Tensor4, FusedDwPwPlan<'static>) {
    let input = fill::random_tensor(Tensor4::input_for(dw_shape, ActLayout::Nchw), 0xd3);
    let dwf = fill::random_filter(
        Filter::zeros(dw_shape.c, 1, dw_shape.r, dw_shape.s, FilterLayout::Kcrs),
        7,
    );
    let pwf = fill::random_filter(Filter::zeros(k, dw_shape.c, 1, 1, FilterLayout::Kcrs), 8);
    let platform = ndirect_platform::host();
    let plan = FusedDwPwPlan::try_new(&platform, dw_shape, &dwf, &pwf, threads)
        .expect("valid fused pair");
    (input, plan)
}

/// The fused path's headline counter: `bytes_intermediate_saved` must land
/// *exactly* on the closed-form `2·N·C·P·Q·4` the plan predicts — per
/// execute, across strides, paddings, and thread counts. Any drift means
/// the slab slicing double-counts or drops a slice.
#[test]
fn fused_intermediate_saved_matches_prediction_exactly() {
    let _g = lock();
    let shapes = [
        ConvShape::new(1, 8, 12, 12, 8, 3, 3, 1, Padding::same(1)),
        ConvShape::new(2, 6, 13, 13, 6, 3, 3, 2, Padding::same(1)),
        ConvShape::new(1, 10, 11, 11, 10, 3, 3, 1, Padding::NONE),
    ];
    for dw_shape in &shapes {
        for threads in [1, 2] {
            let (input, plan) = fused_pair(dw_shape, 12, threads);
            let pool = StaticPool::new(threads);
            let mut out = Tensor4::zeros(
                dw_shape.n,
                12,
                dw_shape.p(),
                dw_shape.q(),
                ActLayout::Nchw,
            );
            let d = deltas(&[Counter::BytesIntermediateSaved], || {
                plan.execute(&pool, &input, &mut out).expect("valid pair");
            });
            if ndirect_probe::ENABLED {
                assert_eq!(
                    d[0] as u128,
                    plan.predicted_intermediate_saved_bytes(),
                    "{dw_shape} × {threads} threads: measured must equal 2·N·C·P·Q·4"
                );
            } else {
                assert_eq!(d[0], 0, "disabled probe must not count");
            }
        }
    }
}

/// The counter is cumulative across executes (no reset inside the plan),
/// and the fused scratch slab obeys the analytic budget: exactly
/// `fused_slab_bytes` for the derived slice length, within half the L2
/// per core unless even a single row exceeds it.
#[test]
fn fused_slab_budget_and_cumulative_accounting() {
    let _g = lock();
    let dw_shape = ConvShape::new(1, 8, 14, 14, 8, 3, 3, 1, Padding::same(1));
    let (input, plan) = fused_pair(&dw_shape, 8, 1);
    let pool = StaticPool::new(1);

    let sched = *plan.schedule();
    let platform = ndirect_platform::host();
    assert_eq!(
        plan.slab_bytes(),
        ndirect_core::model::slicing::fused_slab_bytes(&dw_shape, sched.slice_rows),
        "slab bytes must be the model's closed form"
    );
    assert!(
        plan.slab_bytes() <= platform.cache.l2_per_core() / 2 || sched.slice_rows == 1,
        "derived slab ({} B) must fit half the per-core L2 ({} B) or be a single row",
        plan.slab_bytes(),
        platform.cache.l2_per_core() / 2
    );

    const RUNS: u64 = 3;
    let mut out = Tensor4::zeros(dw_shape.n, 8, dw_shape.p(), dw_shape.q(), ActLayout::Nchw);
    let d = deltas(&[Counter::BytesIntermediateSaved], || {
        for _ in 0..RUNS {
            plan.execute(&pool, &input, &mut out).expect("valid pair");
        }
    });
    if ndirect_probe::ENABLED {
        assert_eq!(
            d[0] as u128,
            RUNS as u128 * plan.predicted_intermediate_saved_bytes(),
            "each execute must add exactly one layer's worth of savings"
        );
    } else {
        assert_eq!(d[0], 0);
    }
}

#[test]
fn model_backend_plan_cache_hits_after_first_call() {
    let _g = lock();
    let shape = table4::layer_by_id(21).unwrap().shape(1);
    let p = make_problem(shape, ActLayout::Nchw, FilterLayout::Kcrs, 5);
    let pool = StaticPool::new(1);
    let backend = ndirect_models::NDirectBackend::host();
    let watched = [Counter::PlanCacheMisses, Counter::PlanCacheHits];
    let first = deltas(&watched, || {
        ndirect_baselines::run_backend(&backend, &pool, &p.input, &p.filter, &shape);
    });
    let second = deltas(&watched, || {
        ndirect_baselines::run_backend(&backend, &pool, &p.input, &p.filter, &shape);
    });
    if ndirect_probe::ENABLED {
        assert_eq!(first, vec![1, 0], "first call builds the plan");
        assert_eq!(second, vec![0, 1], "second call reuses it");
    } else {
        assert_eq!(first, vec![0, 0]);
        assert_eq!(second, vec![0, 0]);
    }
}

#[test]
fn trace_report_serializes_and_renders() {
    let _g = lock();
    run_layer_nchw(21, 1, None);
    let report = TraceReport::capture();
    let json = report.to_json();
    assert_eq!(json.get("enabled").and_then(|j| j.as_bool()), Some(ndirect_probe::ENABLED));
    let text = report.render_timeline(80);
    assert!(text.contains("counters"));
    if ndirect_probe::ENABLED {
        assert!(
            json.get("threads").and_then(|t| t.as_arr()).map(|a| a.len()) >= Some(1),
            "an instrumented run must record at least one thread"
        );
        // The JSON round-trips through the in-tree parser.
        let parsed = ndirect_support::Json::parse(&json.pretty()).expect("valid JSON");
        assert!(parsed.get("counters").is_some());
    }
}

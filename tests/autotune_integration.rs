//! Autotuner integration: the searcher must explore, respect budgets, and
//! produce schedules that beat obviously bad ones.

use ndirect_autotune::{tune, TuneSettings};
use ndirect_core::{conv_ndirect_with, Schedule};
use ndirect_tensor::{ActLayout, ConvShape, FilterLayout};
use ndirect_threads::{Grid2, StaticPool};
use ndirect_workloads::make_problem;

#[test]
fn tuner_finds_schedule_no_worse_than_random_floor() {
    let shape = ConvShape::square(1, 16, 16, 14, 3, 1);
    let p = make_problem(shape, ActLayout::Nchw, FilterLayout::Kcrs, 1);
    let pool = StaticPool::new(1);
    let settings = TuneSettings {
        trials: 12,
        population: 6,
        pool: 16,
        measured_per_round: 3,
        reps: 2,
        seed: 1,
    };
    let report = tune(&pool, &shape, &p.input, &p.filter, &settings);
    // Budget respected and actually explored: the measured-trial count is
    // within the configured budget (plus the per-round overshoot) and more
    // than one candidate was tried.
    assert!(report.trials_used <= settings.trials + settings.measured_per_round);
    assert!(report.trials_used >= settings.population.min(settings.trials));
    assert!(report.history.len() >= 2, "no evolutionary rounds ran");
    // And the reported best is the max of the convergence curve.
    let final_best = report.history.last().unwrap().1;
    assert_eq!(report.best_gflops, final_best);
}

#[test]
fn tuned_schedule_executes_correctly_multithreaded() {
    let shape = ConvShape::square(2, 12, 16, 10, 3, 1);
    let p = make_problem(shape, ActLayout::Nchw, FilterLayout::Kcrs, 2);
    let pool = StaticPool::new(4);
    let report = tune(&pool, &shape, &p.input, &p.filter, &TuneSettings::smoke());
    assert!(report.best.threads() <= 4);
    let got = conv_ndirect_with(&pool, &p.input, &p.filter, &shape, &report.best);
    let expect = ndirect_baselines::naive::conv_ref(&p.input, &p.filter, &shape);
    ndirect_tensor::assert_close(got.as_slice(), expect.as_slice(), 2e-4, "tuned, 4 threads");
}

#[test]
fn model_derived_schedule_is_competitive_with_short_search() {
    // The paper's pitch: the analytic model needs no search. A short
    // search should not embarrass it by more than 2x on a 3x3 layer
    // (generous bound: CI machines are noisy).
    let shape = ConvShape::square(1, 32, 32, 28, 3, 1);
    let p = make_problem(shape, ActLayout::Nchw, FilterLayout::Kcrs, 3);
    let pool = StaticPool::new(1);

    let report = tune(
        &pool,
        &shape,
        &p.input,
        &p.filter,
        &TuneSettings {
            trials: 10,
            population: 6,
            pool: 12,
            measured_per_round: 2,
            reps: 2,
            seed: 5,
        },
    );
    let sched = Schedule::derive(&ndirect_platform::host(), &shape, 1);
    let model_secs = ndirect_bench_floor(&pool, &p, &shape, &sched);
    let model_gflops = shape.gflops(model_secs);
    assert!(
        model_gflops * 2.0 > report.best_gflops,
        "model {model_gflops:.1} vs tuned {:.1}",
        report.best_gflops
    );
}

fn ndirect_bench_floor(
    pool: &StaticPool,
    p: &ndirect_workloads::Problem,
    shape: &ConvShape,
    sched: &Schedule,
) -> f64 {
    let mut best = f64::MAX;
    for _ in 0..3 {
        let t = std::time::Instant::now();
        let out = conv_ndirect_with(pool, &p.input, &p.filter, shape, sched);
        best = best.min(t.elapsed().as_secs_f64());
        std::hint::black_box(out);
    }
    best
}

#[test]
fn all_k_grid_is_correct_but_never_model_chosen_for_k_starved_shapes() {
    // Sanity: an all-K grid (the ACL strawman) on a K-starved problem
    // leaves threads idle; the tuner (or the model) must do better or the
    // problem is degenerate. K = 4 with 4 threads means the all-K grid can
    // use at most ... one vk-block per thread; with vk >= 4 only one
    // K-chunk exists, so 3 of 4 threads idle.
    let shape = ConvShape::square(4, 8, 4, 16, 3, 1);
    let p = make_problem(shape, ActLayout::Nchw, FilterLayout::Kcrs, 4);
    let pool = StaticPool::new(4);

    let bad = Schedule::minimal(&shape).with_grid(Grid2::new(1, 4));
    let good = Schedule::minimal(&shape).with_grid(Grid2::new(4, 1));
    // Both compute the right answer…
    let a = conv_ndirect_with(&pool, &p.input, &p.filter, &shape, &bad);
    let b = conv_ndirect_with(&pool, &p.input, &p.filter, &shape, &good);
    assert_eq!(a.as_slice(), b.as_slice());
    // …and the model never *chooses* the bad grid here.
    let derived = ndirect_core::model::thread_map::derive(&ndirect_platform::host(), &shape, 4);
    assert!(derived.ptn() > 1, "model chose {derived:?} for a K-starved shape");
}

//! Property-based tests over randomized problem shapes and data.

use ndirect_baselines::{blocked, im2col, indirect, naive};
use ndirect_core::{conv_ndirect_with, Schedule};
use ndirect_tensor::{
    assert_close, fill, ActLayout, ConvShape, Filter, FilterLayout, Padding, Tensor4,
};
use ndirect_threads::StaticPool;
use proptest::prelude::*;

/// Random-but-small convolution shapes: kernels 1–5, strides 1–2,
/// padding 0–2, channels/outputs 1–20, spatial 1–16 (subject to fitting).
fn conv_shapes() -> impl Strategy<Value = ConvShape> {
    (
        1usize..=3,  // n
        1usize..=20, // c
        1usize..=16, // h
        1usize..=16, // w
        1usize..=20, // k
        1usize..=5,  // r
        1usize..=5,  // s
        1usize..=2,  // stride
        0usize..=2,  // pad h
        0usize..=2,  // pad w
    )
        .prop_filter_map("kernel must fit padded input", |(n, c, h, w, k, r, s, st, ph, pw)| {
            if h + 2 * ph < r || w + 2 * pw < s {
                return None;
            }
            Some(ConvShape::new(n, c, h, w, k, r, s, st, Padding { h: ph, w: pw }))
        })
}

fn problem(shape: &ConvShape, seed: u64) -> (Tensor4, Filter) {
    (
        fill::random_tensor(Tensor4::input_for(shape, ActLayout::Nchw), seed),
        fill::random_filter(Filter::for_shape(shape, FilterLayout::Kcrs), seed),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ndirect_matches_oracle_on_random_shapes(shape in conv_shapes(), seed in 0u64..1000) {
        let (input, filter) = problem(&shape, seed);
        let expect = naive::conv_ref(&input, &filter, &shape);
        let pool = StaticPool::new(1);
        let got = conv_ndirect_with(&pool, &input, &filter, &shape, &Schedule::minimal(&shape));
        assert_close(got.as_slice(), expect.as_slice(), 2e-4, &format!("{shape}"));
    }

    #[test]
    fn im2col_matches_oracle_on_random_shapes(shape in conv_shapes(), seed in 0u64..1000) {
        let (input, filter) = problem(&shape, seed);
        let expect = naive::conv_ref(&input, &filter, &shape);
        let pool = StaticPool::new(1);
        let got = im2col::conv_im2col(&pool, &input, &filter, &shape);
        assert_close(got.as_slice(), expect.as_slice(), 2e-4, &format!("{shape}"));
    }

    #[test]
    fn blocked_matches_oracle_on_random_shapes(shape in conv_shapes(), seed in 0u64..1000) {
        let (input, filter) = problem(&shape, seed);
        let expect = naive::conv_ref(&input, &filter, &shape);
        let pool = StaticPool::new(1);
        let got = blocked::conv_blocked_nchw(&pool, &input, &filter, &shape);
        assert_close(got.as_slice(), expect.as_slice(), 2e-4, &format!("{shape}"));
    }

    #[test]
    fn indirect_matches_oracle_on_random_shapes(shape in conv_shapes(), seed in 0u64..1000) {
        let (input, filter) = problem(&shape, seed);
        let expect = naive::conv_ref(&input, &filter, &shape);
        let pool = StaticPool::new(1);
        let got = indirect::conv_indirect_nchw(&pool, &input, &filter, &shape);
        assert_close(got.as_slice(), expect.as_slice(), 2e-4, &format!("{shape}"));
    }

    #[test]
    fn convolution_is_linear_in_the_input(shape in conv_shapes(), seed in 0u64..500) {
        // conv(a·x + y, F) == a·conv(x, F) + conv(y, F)
        let (x, filter) = problem(&shape, seed);
        let (y, _) = problem(&shape, seed.wrapping_add(101));
        let a = 0.75f32;
        let pool = StaticPool::new(1);
        let sched = Schedule::minimal(&shape);

        let mut combo = x.clone();
        for (cx, cy) in combo.as_mut_slice().iter_mut().zip(y.as_slice()) {
            *cx = a * *cx + cy;
        }
        let lhs = conv_ndirect_with(&pool, &combo, &filter, &shape, &sched);
        let cx = conv_ndirect_with(&pool, &x, &filter, &shape, &sched);
        let cy = conv_ndirect_with(&pool, &y, &filter, &shape, &sched);
        for (i, l) in lhs.as_slice().iter().enumerate() {
            let r = a * cx.as_slice()[i] + cy.as_slice()[i];
            prop_assert!((l - r).abs() <= 5e-4 * r.abs().max(1.0), "idx {i}: {l} vs {r}");
        }
    }

    #[test]
    fn zero_filter_gives_zero_output(shape in conv_shapes(), seed in 0u64..100) {
        let (input, _) = problem(&shape, seed);
        let filter = Filter::for_shape(&shape, FilterLayout::Kcrs);
        let pool = StaticPool::new(1);
        let got = conv_ndirect_with(&pool, &input, &filter, &shape, &Schedule::minimal(&shape));
        prop_assert!(got.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn gemm_matches_naive_matmul(
        m in 1usize..40,
        n in 1usize..40,
        k in 1usize..40,
        seed in 0u64..1000,
    ) {
        let mut a = vec![0.0f32; m * k];
        let mut b = vec![0.0f32; k * n];
        fill::fill_random(&mut a, seed);
        fill::fill_random(&mut b, seed ^ 1);
        let mut c1 = vec![0.0f32; m * n];
        let mut c2 = vec![0.0f32; m * n];
        ndirect_gemm::naive::matmul(m, n, k, &a, &b, &mut c1);
        ndirect_gemm::gemm(m, n, k, &a, &b, &mut c2);
        assert_close(&c2, &c1, 2e-4, "gemm");
    }

    #[test]
    fn layout_round_trip_random_dims(
        n in 1usize..4, c in 1usize..9, h in 1usize..9, w in 1usize..9, seed in 0u64..100,
    ) {
        let t = fill::random_tensor(Tensor4::zeros(n, c, h, w, ActLayout::Nchw), seed);
        let back = t.to_layout(ActLayout::Nhwc).to_layout(ActLayout::Nchw);
        prop_assert_eq!(back.as_slice(), t.as_slice());
    }

    #[test]
    fn schedule_sanitize_is_idempotent(shape in conv_shapes()) {
        let s = Schedule::minimal(&shape).sanitized(&shape);
        prop_assert_eq!(s.sanitized(&shape), s.clone());
    }
}

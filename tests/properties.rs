//! Property-based tests over randomized problem shapes and data, driven
//! by the workspace's seeded [`Rng64`] so every failure message carries
//! its case number and reproduces exactly.

use ndirect_baselines::{blocked, im2col, indirect, naive};
use ndirect_core::{
    conv_ndirect_with, fused_pair_flops, try_compose_shapes, try_conv_depthwise_separable,
    try_conv_dwpw_fused, DwPwSchedule, Schedule,
};
use ndirect_support::Rng64;
use ndirect_tensor::{
    assert_close, fill, ActLayout, ConvShape, Filter, FilterLayout, Padding, Tensor4,
};
use ndirect_threads::StaticPool;

/// Random-but-small convolution shapes: kernels 1–5, strides 1–2,
/// padding 0–2, channels/outputs 1–20, spatial 1–16 (subject to fitting).
fn random_shape(rng: &mut Rng64) -> ConvShape {
    loop {
        let n = rng.gen_range_usize(1, 4);
        let c = rng.gen_range_usize(1, 21);
        let h = rng.gen_range_usize(1, 17);
        let w = rng.gen_range_usize(1, 17);
        let k = rng.gen_range_usize(1, 21);
        let r = rng.gen_range_usize(1, 6);
        let s = rng.gen_range_usize(1, 6);
        let stride = rng.gen_range_usize(1, 3);
        let ph = rng.gen_range_usize(0, 3);
        let pw = rng.gen_range_usize(0, 3);
        if h + 2 * ph < r || w + 2 * pw < s {
            continue;
        }
        return ConvShape::new(n, c, h, w, k, r, s, stride, Padding { h: ph, w: pw });
    }
}

fn problem(shape: &ConvShape, seed: u64) -> (Tensor4, Filter) {
    (
        fill::random_tensor(Tensor4::input_for(shape, ActLayout::Nchw), seed),
        fill::random_filter(Filter::for_shape(shape, FilterLayout::Kcrs), seed),
    )
}

/// Runs `cases` iterations of an oracle comparison for one method.
fn against_oracle(
    seed: u64,
    cases: usize,
    run: impl Fn(&StaticPool, &Tensor4, &Filter, &ConvShape) -> Tensor4,
) {
    let mut rng = Rng64::seed_from_u64(seed);
    let pool = StaticPool::new(1);
    for case in 0..cases {
        let shape = random_shape(&mut rng);
        let (input, filter) = problem(&shape, rng.next_u64());
        let expect = naive::conv_ref(&input, &filter, &shape);
        let got = run(&pool, &input, &filter, &shape);
        assert_close(
            got.as_slice(),
            expect.as_slice(),
            2e-4,
            &format!("case {case}: {shape}"),
        );
    }
}

/// Wider-than-usual geometry for the shape-arithmetic properties below:
/// strides 1–4, kernels up to 7, and a bias toward tight fits (input ==
/// kernel) where the `P`/`Q` floor formula has its edge cases.
fn random_edge_shape(rng: &mut Rng64) -> ConvShape {
    loop {
        let r = rng.gen_range_usize(1, 8);
        let s = rng.gen_range_usize(1, 8);
        let stride = rng.gen_range_usize(1, 5);
        let ph = rng.gen_range_usize(0, 4);
        let pw = rng.gen_range_usize(0, 4);
        // Half the cases sit right at the minimum spatial extent.
        let (h, w) = if rng.gen_range_usize(0, 2) == 0 {
            (r.saturating_sub(2 * ph).max(1), s.saturating_sub(2 * pw).max(1))
        } else {
            (rng.gen_range_usize(1, 25), rng.gen_range_usize(1, 25))
        };
        if h + 2 * ph < r || w + 2 * pw < s {
            continue;
        }
        let n = rng.gen_range_usize(1, 5);
        let c = rng.gen_range_usize(1, 33);
        let k = rng.gen_range_usize(1, 33);
        return ConvShape::new(n, c, h, w, k, r, s, stride, Padding { h: ph, w: pw });
    }
}

#[test]
fn output_dims_match_a_valid_position_scan() {
    // P and Q come from a closed-form floor division; the ground truth is
    // "how many stride-spaced kernel placements fit in the padded input".
    let mut rng = Rng64::seed_from_u64(0x9a0a);
    let scan = |padded: usize, kernel: usize, stride: usize| {
        (0..)
            .map(|i| i * stride)
            .take_while(|&off| off + kernel <= padded)
            .count()
    };
    for case in 0..400 {
        let shape = random_edge_shape(&mut rng);
        assert_eq!(
            shape.p(),
            scan(shape.padded_h(), shape.r, shape.stride),
            "case {case}: {shape} P"
        );
        assert_eq!(
            shape.q(),
            scan(shape.padded_w(), shape.s, shape.stride),
            "case {case}: {shape} Q"
        );
    }
}

#[test]
fn flops_is_two_per_mac_over_the_output() {
    let mut rng = Rng64::seed_from_u64(0x9a0b);
    for case in 0..400 {
        let shape = random_edge_shape(&mut rng);
        let expect = 2u128
            * shape.output_len() as u128
            * (shape.c * shape.r * shape.s) as u128;
        assert_eq!(
            shape.flops() as u128,
            expect,
            "case {case}: {shape} flops"
        );
    }
}

#[test]
fn gemm_dims_are_consistent_with_element_counts() {
    // The paper's GEMM mapping must conserve elements: M'·N' is the whole
    // output, M'·K' the whole filter.
    let mut rng = Rng64::seed_from_u64(0x9a0c);
    for case in 0..400 {
        let shape = random_edge_shape(&mut rng);
        let (m, n, k) = shape.gemm_dims();
        assert_eq!(m, shape.k, "case {case}: {shape} M'");
        assert_eq!(m * n, shape.output_len(), "case {case}: {shape} M'·N'");
        assert_eq!(m * k, shape.filter_len(), "case {case}: {shape} M'·K'");
    }
}

#[test]
fn checked_and_plain_lens_agree_on_valid_shapes() {
    let mut rng = Rng64::seed_from_u64(0x9a0d);
    for case in 0..400 {
        let shape = random_edge_shape(&mut rng);
        assert_eq!(shape.try_input_len(), Ok(shape.input_len()), "case {case}: {shape}");
        assert_eq!(shape.try_filter_len(), Ok(shape.filter_len()), "case {case}: {shape}");
        assert_eq!(shape.try_output_len(), Ok(shape.output_len()), "case {case}: {shape}");
        assert_eq!(shape.try_padded_h(), Ok(shape.padded_h()), "case {case}: {shape}");
        assert_eq!(shape.try_padded_w(), Ok(shape.padded_w()), "case {case}: {shape}");
    }
}

#[test]
fn ndirect_matches_oracle_on_random_shapes() {
    against_oracle(0x9a01, 48, |pool, input, filter, shape| {
        conv_ndirect_with(pool, input, filter, shape, &Schedule::minimal(shape))
    });
}

#[test]
fn im2col_matches_oracle_on_random_shapes() {
    against_oracle(0x9a02, 48, |pool, input, filter, shape| {
        im2col::conv_im2col(pool, input, filter, shape)
    });
}

#[test]
fn blocked_matches_oracle_on_random_shapes() {
    against_oracle(0x9a03, 48, |pool, input, filter, shape| {
        blocked::conv_blocked_nchw(pool, input, filter, shape)
    });
}

#[test]
fn indirect_matches_oracle_on_random_shapes() {
    against_oracle(0x9a04, 48, |pool, input, filter, shape| {
        indirect::conv_indirect_nchw(pool, input, filter, shape)
    });
}

#[test]
fn convolution_is_linear_in_the_input() {
    // conv(a·x + y, F) == a·conv(x, F) + conv(y, F)
    let mut rng = Rng64::seed_from_u64(0x9a05);
    let pool = StaticPool::new(1);
    for case in 0..24 {
        let shape = random_shape(&mut rng);
        let seed = rng.next_u64();
        let (x, filter) = problem(&shape, seed);
        let (y, _) = problem(&shape, seed.wrapping_add(101));
        let a = 0.75f32;
        let sched = Schedule::minimal(&shape);

        let mut combo = x.clone();
        for (cx, cy) in combo.as_mut_slice().iter_mut().zip(y.as_slice()) {
            *cx = a * *cx + cy;
        }
        let lhs = conv_ndirect_with(&pool, &combo, &filter, &shape, &sched);
        let cx = conv_ndirect_with(&pool, &x, &filter, &shape, &sched);
        let cy = conv_ndirect_with(&pool, &y, &filter, &shape, &sched);
        for (i, l) in lhs.as_slice().iter().enumerate() {
            let r = a * cx.as_slice()[i] + cy.as_slice()[i];
            assert!(
                (l - r).abs() <= 5e-4 * r.abs().max(1.0),
                "case {case} idx {i}: {l} vs {r}"
            );
        }
    }
}

#[test]
fn zero_filter_gives_zero_output() {
    let mut rng = Rng64::seed_from_u64(0x9a06);
    let pool = StaticPool::new(1);
    for case in 0..24 {
        let shape = random_shape(&mut rng);
        let (input, _) = problem(&shape, rng.next_u64());
        let filter = Filter::for_shape(&shape, FilterLayout::Kcrs);
        let got = conv_ndirect_with(&pool, &input, &filter, &shape, &Schedule::minimal(&shape));
        assert!(got.as_slice().iter().all(|&v| v == 0.0), "case {case}");
    }
}

#[test]
fn gemm_matches_naive_matmul() {
    let mut rng = Rng64::seed_from_u64(0x9a07);
    for case in 0..48 {
        let m = rng.gen_range_usize(1, 40);
        let n = rng.gen_range_usize(1, 40);
        let k = rng.gen_range_usize(1, 40);
        let seed = rng.next_u64();
        let mut a = vec![0.0f32; m * k];
        let mut b = vec![0.0f32; k * n];
        fill::fill_random(&mut a, seed);
        fill::fill_random(&mut b, seed ^ 1);
        let mut c1 = vec![0.0f32; m * n];
        let mut c2 = vec![0.0f32; m * n];
        ndirect_gemm::naive::matmul(m, n, k, &a, &b, &mut c1);
        ndirect_gemm::gemm(m, n, k, &a, &b, &mut c2);
        assert_close(&c2, &c1, 2e-4, &format!("gemm case {case}"));
    }
}

#[test]
fn layout_round_trip_random_dims() {
    let mut rng = Rng64::seed_from_u64(0x9a08);
    for case in 0..48 {
        let n = rng.gen_range_usize(1, 4);
        let c = rng.gen_range_usize(1, 9);
        let h = rng.gen_range_usize(1, 9);
        let w = rng.gen_range_usize(1, 9);
        let t = fill::random_tensor(Tensor4::zeros(n, c, h, w, ActLayout::Nchw), rng.next_u64());
        let back = t.to_layout(ActLayout::Nhwc).to_layout(ActLayout::Nchw);
        assert_eq!(back.as_slice(), t.as_slice(), "case {case}");
    }
}

#[test]
fn schedule_sanitize_is_idempotent() {
    let mut rng = Rng64::seed_from_u64(0x9a09);
    for case in 0..48 {
        let shape = random_shape(&mut rng);
        let s = Schedule::minimal(&shape).sanitized(&shape);
        assert_eq!(s.sanitized(&shape), s, "case {case}: {shape}");
    }
}

/// Random depthwise-separable pairs: a dw-able shape (`K == C`) plus a
/// pointwise output-channel count.
fn random_separable(rng: &mut Rng64) -> (ConvShape, usize) {
    loop {
        let n = rng.gen_range_usize(1, 3);
        let c = rng.gen_range_usize(1, 17);
        let h = rng.gen_range_usize(1, 15);
        let w = rng.gen_range_usize(1, 15);
        let r = rng.gen_range_usize(1, 4);
        let s = rng.gen_range_usize(1, 4);
        let stride = rng.gen_range_usize(1, 3);
        let ph = rng.gen_range_usize(0, 2);
        let pw = rng.gen_range_usize(0, 2);
        if h + 2 * ph < r || w + 2 * pw < s {
            continue;
        }
        let shape = ConvShape::new(n, c, h, w, c, r, s, stride, Padding { h: ph, w: pw });
        let k = rng.gen_range_usize(1, 17);
        return (shape, k);
    }
}

#[test]
fn dwpw_composed_shapes_satisfy_closed_forms() {
    // `try_compose_shapes` must put the pointwise stage exactly on the
    // depthwise output (a 1×1/stride-1/unpadded conv is the identity on
    // spatial dims), and `fused_pair_flops` must equal the two stages'
    // closed forms: 2·N·C·P·Q·R·S (depthwise — `ConvShape::flops` would
    // overcount by C) plus the pointwise 2·N·K·P·Q·C.
    let mut rng = Rng64::seed_from_u64(0x9a0e);
    for case in 0..400 {
        let (shape, k) = random_separable(&mut rng);
        let (dw, pw) = try_compose_shapes(&shape, k)
            .unwrap_or_else(|e| panic!("case {case}: {shape} -> K={k}: {e}"));
        assert_eq!((dw.k, dw.c), (shape.c, shape.c), "case {case}: {shape} dw channels");
        assert_eq!((pw.h, pw.w), (dw.p(), dw.q()), "case {case}: {shape} pw input");
        assert_eq!((pw.p(), pw.q()), (dw.p(), dw.q()), "case {case}: {shape} pw identity");
        assert_eq!((pw.c, pw.k), (shape.c, k), "case {case}: {shape} pw channels");

        let plane = (dw.n * dw.p() * dw.q()) as u64;
        let expect = 2 * plane * (dw.c * dw.r * dw.s) as u64 + 2 * plane * (k * dw.c) as u64;
        assert_eq!(fused_pair_flops(&shape, k), expect, "case {case}: {shape} flops");
        assert_eq!(
            2 * plane * (k * dw.c) as u64,
            pw.flops(),
            "case {case}: {shape} pw stage matches ConvShape::flops"
        );
    }
}

#[test]
fn dwpw_checked_composition_agrees_with_plain_construction() {
    // The checked lens: whenever the composed shapes build, their element
    // counts agree with the plain accessors, and the depthwise stage's
    // checked lengths are consistent too.
    let mut rng = Rng64::seed_from_u64(0x9a0f);
    for case in 0..400 {
        let (shape, k) = random_separable(&mut rng);
        let (dw, pw) = try_compose_shapes(&shape, k).unwrap();
        assert_eq!(dw.try_output_len(), Ok(dw.output_len()), "case {case}: {shape}");
        assert_eq!(pw.try_input_len(), Ok(pw.input_len()), "case {case}: {shape}");
        assert_eq!(
            dw.output_len() / dw.k,
            pw.input_len() / pw.c,
            "case {case}: {shape} intermediate plane must be shared"
        );
    }
}

#[test]
fn dwpw_schedule_sanitize_is_idempotent_and_in_kernel_range() {
    let mut rng = Rng64::seed_from_u64(0x9a10);
    for case in 0..400 {
        let (shape, _) = random_separable(&mut rng);
        let raw = DwPwSchedule {
            slice_rows: rng.gen_range_usize(0, 64),
            vw: rng.gen_range_usize(0, 32),
            vk: rng.gen_range_usize(0, 32),
        };
        let s = raw.sanitized(&shape);
        assert_eq!(s.sanitized(&shape), s, "case {case}: {shape} idempotent");
        assert!((1..=shape.p()).contains(&s.slice_rows), "case {case}: {shape} rows");
        assert!((1..=12).contains(&s.vw), "case {case}: {shape} vw");
        assert!(s.vk % 4 == 0 && (4..=12).contains(&s.vk), "case {case}: {shape} vk");
    }
}

#[test]
fn dwpw_fused_matches_unfused_on_random_shapes() {
    let mut rng = Rng64::seed_from_u64(0x9a11);
    let pool = StaticPool::new(2);
    for case in 0..32 {
        let (shape, k) = random_separable(&mut rng);
        let seed = rng.next_u64();
        let input = fill::random_tensor(Tensor4::input_for(&shape, ActLayout::Nchw), seed);
        let dwf = fill::random_filter(
            Filter::zeros(shape.c, 1, shape.r, shape.s, FilterLayout::Kcrs),
            seed ^ 1,
        );
        let pwf =
            fill::random_filter(Filter::zeros(k, shape.c, 1, 1, FilterLayout::Kcrs), seed ^ 2);
        let expect = try_conv_depthwise_separable(&pool, &input, &dwf, &pwf, &shape)
            .unwrap_or_else(|e| panic!("case {case}: {shape}: {e}"));
        let got = try_conv_dwpw_fused(&pool, &input, &dwf, &pwf, &shape)
            .unwrap_or_else(|e| panic!("case {case}: {shape}: {e}"));
        assert_close(
            got.as_slice(),
            expect.as_slice(),
            2e-4,
            &format!("case {case}: {shape} -> K={k}"),
        );
    }
}

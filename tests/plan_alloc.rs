//! Proof of the plan layer's core promise: once a [`ConvPlan`] is built
//! and warmed, `execute` never touches the global allocator — not on the
//! single-thread inline path, not on the threaded path (whose job
//! dispatch reuses the pool's latch and pre-sized queue), and not for a
//! warmed [`DepthwisePlan`].
//!
//! This file is its own test binary with exactly one `#[test]` so the
//! counting allocator below sees no interference from parallel tests.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use ndirect_core::{ConvPlan, DepthwisePlan};
use ndirect_tensor::{fill, ActLayout, ConvShape, Filter, FilterLayout, Tensor4};
use ndirect_threads::StaticPool;

/// Forwards to [`System`], counting allocation events (alloc,
/// alloc_zeroed, realloc — frees are irrelevant to the claim) from any
/// thread while [`ARMED`].
struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicUsize = AtomicUsize::new(0);

// SAFETY: pure pass-through to `System`; the counters are atomics, so the
// allocator imposes no extra synchronization or aliasing requirements.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: same contract as `System::alloc`, to which this forwards.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: `layout` is forwarded unchanged from our own contract.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: same contract as `System::alloc_zeroed`.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: `layout` is forwarded unchanged from our own contract.
        unsafe { System.alloc_zeroed(layout) }
    }

    // SAFETY: same contract as `System::realloc`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: all arguments forwarded unchanged from our own contract.
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    // SAFETY: same contract as `System::dealloc`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr`/`layout` forwarded unchanged from our own contract.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs_during(f: impl FnOnce()) -> usize {
    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    f();
    ARMED.store(false, Ordering::SeqCst);
    ALLOCS.load(Ordering::SeqCst)
}

#[test]
fn warmed_plan_execute_never_allocates() {
    let platform = ndirect_platform::host();
    let shape = ConvShape::square(2, 6, 16, 12, 3, 1);
    let input = fill::random_tensor(Tensor4::input_for(&shape, ActLayout::Nchw), 4);
    let filter = fill::random_filter(Filter::for_shape(&shape, FilterLayout::Kcrs), 3);
    let mut out = Tensor4::output_for(&shape, ActLayout::Nchw);

    // Single-thread pool: execute runs the whole nest inline.
    let pool1 = StaticPool::new(1);
    let plan = ConvPlan::try_new(&platform, &shape, &filter, 1).unwrap();
    plan.execute(&pool1, &input, &mut out).unwrap(); // warm the scratch lease
    let n = allocs_during(|| {
        for _ in 0..8 {
            plan.execute(&pool1, &input, &mut out).unwrap();
        }
    });
    assert_eq!(n, 0, "inline steady-state execute hit the allocator {n}x");

    // Multi-thread pool: dispatch must also be allocation-free — jobs are
    // plain structs on a pre-sized queue and the region latch is re-armed,
    // not reallocated.
    let pool2 = StaticPool::new(2);
    let plan2 = ConvPlan::try_new(&platform, &shape, &filter, 2).unwrap();
    plan2.execute(&pool2, &input, &mut out).unwrap();
    let n = allocs_during(|| {
        for _ in 0..8 {
            plan2.execute(&pool2, &input, &mut out).unwrap();
        }
    });
    assert_eq!(n, 0, "threaded steady-state execute hit the allocator {n}x");

    // Depthwise plans make the same promise.
    let dw_shape = ConvShape::square(1, 6, 6, 12, 3, 1); // K == C
    let dw_input = fill::random_tensor(Tensor4::input_for(&dw_shape, ActLayout::Nchw), 6);
    let dw_filter = fill::random_filter(Filter::zeros(6, 1, 3, 3, FilterLayout::Kcrs), 7);
    let mut dw_out = Tensor4::output_for(&dw_shape, ActLayout::Nchw);
    let dw = DepthwisePlan::try_new(&dw_shape, &dw_filter, 1).unwrap();
    dw.execute(&pool1, &dw_input, &mut dw_out).unwrap();
    let n = allocs_during(|| {
        for _ in 0..8 {
            dw.execute(&pool1, &dw_input, &mut dw_out).unwrap();
        }
    });
    assert_eq!(n, 0, "depthwise steady-state execute hit the allocator {n}x");
}

//! Integration tests for the §2.1 fast-algorithm baselines (Winograd,
//! FFT) against the whole backend set.

use ndirect_baselines::{fft, naive, winograd};
use ndirect_core::conv_ndirect;
use ndirect_support::Rng64;
use ndirect_tensor::{assert_close, ActLayout, ConvShape, FilterLayout, Padding};
use ndirect_threads::StaticPool;
use ndirect_workloads::{fig4_layers, make_problem};

#[test]
fn winograd_matches_direct_on_scaled_3x3_table4_rows() {
    let pool = StaticPool::new(2);
    for layer in fig4_layers()
        .iter()
        .filter(|l| l.rs == 3 && l.stride == 1)
    {
        let shape = ConvShape::square(
            1,
            layer.c.min(32),
            layer.k.min(32),
            layer.hw.clamp(4, 14),
            3,
            1,
        );
        let p = make_problem(shape, ActLayout::Nchw, FilterLayout::Kcrs, layer.id as u64);
        let direct = conv_ndirect(&pool, &p.input, &p.filter, &shape);
        let wino = winograd::conv_winograd(&pool, &p.input, &p.filter, &shape);
        assert_close(
            wino.as_slice(),
            direct.as_slice(),
            2e-3, // Winograd's transforms cost a little precision
            &format!("winograd vs nDirect, layer {}", layer.id),
        );
    }
}

#[test]
fn fft_matches_direct_on_mixed_shapes() {
    let pool = StaticPool::new(2);
    for shape in [
        ConvShape::new(1, 3, 10, 10, 4, 3, 3, 1, Padding::same(1)),
        ConvShape::new(2, 2, 8, 12, 3, 5, 5, 1, Padding::same(2)),
        ConvShape::new(1, 4, 9, 9, 2, 3, 3, 2, Padding::same(1)),
        ConvShape::new(1, 2, 6, 6, 2, 1, 1, 1, Padding::NONE),
    ] {
        let p = make_problem(shape, ActLayout::Nchw, FilterLayout::Kcrs, 99);
        let direct = naive::conv_ref(&p.input, &p.filter, &shape);
        let f = fft::conv_fft(&pool, &p.input, &p.filter, &shape);
        assert_close(f.as_slice(), direct.as_slice(), 5e-3, &format!("fft {shape}"));
    }
}

#[test]
fn winograd_thread_invariance() {
    let shape = ConvShape::new(2, 6, 10, 10, 8, 3, 3, 1, Padding::same(1));
    let p = make_problem(shape, ActLayout::Nchw, FilterLayout::Kcrs, 5);
    let a = winograd::conv_winograd(&StaticPool::new(1), &p.input, &p.filter, &shape);
    let b = winograd::conv_winograd(&StaticPool::new(4), &p.input, &p.filter, &shape);
    // par_gemm stripes columns without changing reduction order.
    assert_eq!(a.as_slice(), b.as_slice());
}

#[test]
fn fft_thread_invariance() {
    let shape = ConvShape::new(3, 2, 8, 8, 4, 3, 3, 1, Padding::same(1));
    let p = make_problem(shape, ActLayout::Nchw, FilterLayout::Kcrs, 6);
    let a = fft::conv_fft(&StaticPool::new(1), &p.input, &p.filter, &shape);
    let b = fft::conv_fft(&StaticPool::new(3), &p.input, &p.filter, &shape);
    assert_eq!(a.as_slice(), b.as_slice());
}

#[test]
fn winograd_matches_oracle_on_random_3x3_shapes() {
    let mut rng = Rng64::seed_from_u64(0xfa57);
    let pool = StaticPool::new(1);
    for case in 0..12 {
        let n = rng.gen_range_usize(1, 3);
        let c = rng.gen_range_usize(1, 12);
        let k = rng.gen_range_usize(1, 12);
        let h = rng.gen_range_usize(3, 14);
        let w = rng.gen_range_usize(3, 14);
        let pad = rng.gen_range_usize(0, 2);
        let shape = ConvShape::new(n, c, h, w, k, 3, 3, 1, Padding::same(pad));
        let p = make_problem(shape, ActLayout::Nchw, FilterLayout::Kcrs, rng.next_u64());
        let expect = naive::conv_ref(&p.input, &p.filter, &shape);
        let got = winograd::conv_winograd(&pool, &p.input, &p.filter, &shape);
        assert_close(
            got.as_slice(),
            expect.as_slice(),
            2e-3,
            &format!("case {case}: {shape}"),
        );
    }
}

#[test]
fn fft_matches_oracle_on_random_shapes() {
    let mut rng = Rng64::seed_from_u64(0xfa58);
    let pool = StaticPool::new(1);
    let mut case = 0;
    while case < 12 {
        let c = rng.gen_range_usize(1, 6);
        let k = rng.gen_range_usize(1, 6);
        let h = rng.gen_range_usize(3, 12);
        let w = rng.gen_range_usize(3, 12);
        let r = rng.gen_range_usize(1, 4);
        let s = rng.gen_range_usize(1, 4);
        let stride = rng.gen_range_usize(1, 3);
        if h < r || w < s {
            continue;
        }
        case += 1;
        let shape = ConvShape::new(1, c, h, w, k, r, s, stride, Padding::NONE);
        let p = make_problem(shape, ActLayout::Nchw, FilterLayout::Kcrs, rng.next_u64());
        let expect = naive::conv_ref(&p.input, &p.filter, &shape);
        let got = fft::conv_fft(&pool, &p.input, &p.filter, &shape);
        assert_close(
            got.as_slice(),
            expect.as_slice(),
            5e-3,
            &format!("case {case}: {shape}"),
        );
    }
}

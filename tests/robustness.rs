//! End-to-end robustness suite: malformed inputs must come back as typed
//! errors from every fallible entry point, the thread pool must survive
//! panicking jobs and dead workers, and an unsupported-ISA host must
//! degrade to an error rather than crash.
//!
//! The ISA test flips a process-global hook, so every test that drives a
//! conv entry point (they all probe the ISA at the boundary) shares the
//! [`ISA_HOOK`] lock: conv tests take it shared, the hook test exclusively.

use std::sync::RwLock;

use ndirect_baselines::{naive, winograd, BaselineError};
use ndirect_core::{
    try_conv_depthwise, try_conv_ndirect, try_conv_ndirect_with, Error, Schedule,
};
use ndirect_gemm::GemmError;
use ndirect_models::{zoo, Engine, ModelError, NDirectBackend};
use ndirect_support::Rng64;
use ndirect_tensor::{
    fill, ActLayout, ConvShape, Filter, FilterLayout, Padding, ShapeError, Tensor4,
};
use ndirect_threads::{PoolError, StaticPool};

static ISA_HOOK: RwLock<()> = RwLock::new(());

fn read_hook() -> std::sync::RwLockReadGuard<'static, ()> {
    ISA_HOOK.read().unwrap_or_else(|p| p.into_inner())
}

fn small_problem() -> (ConvShape, Tensor4, Filter) {
    let shape = ConvShape::square(1, 4, 8, 6, 3, 1);
    let input = fill::random_tensor(Tensor4::input_for(&shape, ActLayout::Nchw), 1);
    let filter = fill::random_filter(Filter::for_shape(&shape, FilterLayout::Kcrs), 2);
    (shape, input, filter)
}

// ------------------------------------------------------------- shapes

#[test]
fn invalid_shapes_are_typed_errors_not_panics() {
    assert!(matches!(
        ConvShape::try_new(0, 3, 8, 8, 4, 3, 3, 1, Padding::NONE),
        Err(ShapeError::ZeroDim { name: "N" })
    ));
    assert!(matches!(
        ConvShape::try_new(1, 3, 8, 8, 4, 3, 3, 0, Padding::NONE),
        Err(ShapeError::ZeroStride)
    ));
    assert!(matches!(
        ConvShape::try_new(1, 3, 2, 8, 4, 5, 3, 1, Padding::NONE),
        Err(ShapeError::KernelExceedsInput { axis: 'h', .. })
    ));
    assert!(matches!(
        ConvShape::try_new(1, usize::MAX / 2, 8, 8, 4, 3, 3, 1, Padding::NONE),
        Err(ShapeError::Overflow { .. })
    ));
    assert!(matches!(
        Padding::try_same_for_kernel(4, 3),
        Err(ShapeError::EvenKernelSamePadding { r: 4, s: 3 })
    ));
}

#[test]
fn fuzzed_shape_construction_never_panics() {
    // Any usize 9-tuple must produce Ok(valid shape) or a typed error —
    // and an Ok shape must re-validate and have consistent element counts.
    let mut rng = Rng64::seed_from_u64(0x20b5);
    for case in 0..2000 {
        let extreme = |rng: &mut Rng64| match rng.gen_range_usize(0, 4) {
            0 => 0,
            1 => rng.gen_range_usize(1, 9),
            2 => rng.gen_range_usize(1, 1 << 20),
            _ => usize::MAX - rng.gen_range_usize(0, 4),
        };
        let (n, c, h, w) = (extreme(&mut rng), extreme(&mut rng), extreme(&mut rng), extreme(&mut rng));
        let (k, r, s) = (extreme(&mut rng), extreme(&mut rng), extreme(&mut rng));
        let stride = extreme(&mut rng);
        let pad = Padding {
            h: rng.gen_range_usize(0, 4),
            w: rng.gen_range_usize(0, 4),
        };
        if let Ok(shape) = ConvShape::try_new(n, c, h, w, k, r, s, stride, pad) {
            assert!(shape.validate().is_ok(), "case {case}: Ok shape must re-validate");
            assert!(
                shape.try_input_len().is_ok()
                    && shape.try_filter_len().is_ok()
                    && shape.try_output_len().is_ok(),
                "case {case}: Ok shape must have computable element counts"
            );
        }
    }
}

// ------------------------------------------------------- conv entry points

#[test]
fn wrong_layout_is_a_typed_error() {
    let _g = read_hook();
    let (shape, input, filter) = small_problem();
    let pool = StaticPool::new(1);
    let err = try_conv_ndirect(&pool, &input.to_layout(ActLayout::Nhwc), &filter, &shape)
        .expect_err("NHWC into the NCHW entry");
    assert!(matches!(err, Error::Layout { .. }), "{err}");
}

#[test]
fn wrong_dims_are_a_typed_error() {
    let _g = read_hook();
    let (shape, _, filter) = small_problem();
    let pool = StaticPool::new(1);
    let wrong = Tensor4::zeros(1, 4, 9, 9, ActLayout::Nchw);
    let err = try_conv_ndirect(&pool, &wrong, &filter, &shape).expect_err("dims disagree");
    assert!(matches!(err, Error::DimMismatch { what: "input dims", .. }), "{err}");
}

#[test]
fn oversized_grid_is_a_typed_error() {
    let _g = read_hook();
    let (shape, input, filter) = small_problem();
    let pool = StaticPool::new(1);
    let mut sched = Schedule::minimal(&shape);
    sched.grid = ndirect_threads::Grid2::new(2, 2);
    let err = try_conv_ndirect_with(&pool, &input, &filter, &shape, &sched)
        .expect_err("4-thread grid on 1-thread pool");
    assert!(
        matches!(err, Error::GridExceedsPool { needed: 4, available: 1 }),
        "{err}"
    );
}

#[test]
fn non_depthwise_shape_is_a_typed_error() {
    let _g = read_hook();
    let shape = ConvShape::square(1, 4, 8, 8, 3, 1); // K=8 != C=4
    let input = fill::random_tensor(Tensor4::input_for(&shape, ActLayout::Nchw), 3);
    let dw = Filter::zeros(4, 1, 3, 3, FilterLayout::Kcrs);
    let pool = StaticPool::new(1);
    let err = try_conv_depthwise(&pool, &input, &dw, &shape).expect_err("K != C");
    assert!(matches!(err, Error::NotDepthwise { k: 8, c: 4 }), "{err}");
}

// ------------------------------------------------------------ plan sharing

#[test]
fn shared_plan_is_safe_across_threads_and_bitwise_deterministic() {
    // One ConvPlan behind an Arc, executed concurrently from two OS
    // threads on *different* inputs with their own pools and outputs,
    // must produce exactly the bits sequential execution produces: the
    // scratch arena hands each concurrent execute a disjoint lease and
    // the packed filter is only ever read.
    let _g = read_hook();
    let shape = ConvShape::square(2, 5, 9, 8, 3, 1);
    let filter = fill::random_filter(Filter::for_shape(&shape, FilterLayout::Kcrs), 11);
    let mut sched = Schedule::minimal(&shape);
    sched.grid = ndirect_threads::Grid2::new(1, 2);
    let plan = std::sync::Arc::new(
        ndirect_core::ConvPlan::try_with_schedule(&shape, &filter, &sched).unwrap(),
    );
    // Pre-populate the arena so both threads hit the pooled path.
    plan.reserve_scratch(2).unwrap();

    let inputs: Vec<Tensor4> = (0..2)
        .map(|i| fill::random_tensor(Tensor4::input_for(&shape, ActLayout::Nchw), 20 + i))
        .collect();
    let sequential: Vec<Tensor4> = inputs
        .iter()
        .map(|input| {
            let pool = StaticPool::new(2);
            let mut out = Tensor4::output_for(&shape, ActLayout::Nchw);
            plan.execute(&pool, input, &mut out).unwrap();
            out
        })
        .collect();

    for _round in 0..4 {
        let concurrent: Vec<Tensor4> = std::thread::scope(|scope| {
            let handles: Vec<_> = inputs
                .iter()
                .map(|input| {
                    let plan = std::sync::Arc::clone(&plan);
                    scope.spawn(move || {
                        let pool = StaticPool::new(2);
                        let mut out = Tensor4::output_for(&shape, ActLayout::Nchw);
                        plan.execute(&pool, input, &mut out).unwrap();
                        out
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (got, want) in concurrent.iter().zip(&sequential) {
            assert_eq!(
                got.as_slice(),
                want.as_slice(),
                "concurrent execute must be bitwise identical to sequential"
            );
        }
    }
}

#[test]
fn baseline_rejects_malformed_input_with_typed_error() {
    let (shape, _, filter) = small_problem();
    let wrong = Tensor4::zeros(2, 4, 8, 8, ActLayout::Nchw);
    let err = naive::try_conv_ref(&wrong, &filter, &shape).expect_err("batch mismatch");
    assert!(matches!(err, BaselineError::DimMismatch { .. }), "{err}");

    let pool = StaticPool::new(1);
    let shape5 = ConvShape::square(1, 4, 8, 8, 5, 1);
    let input5 = fill::random_tensor(Tensor4::input_for(&shape5, ActLayout::Nchw), 4);
    let filter5 = fill::random_filter(Filter::for_shape(&shape5, FilterLayout::Kcrs), 5);
    let err = winograd::try_conv_winograd(&pool, &input5, &filter5, &shape5)
        .expect_err("winograd needs 3x3");
    assert!(matches!(err, BaselineError::Unsupported { .. }), "{err}");
}

#[test]
fn gemm_rejects_short_operands_with_typed_error() {
    let a = vec![0.0f32; 4];
    let b = vec![0.0f32; 9];
    let mut c = vec![0.0f32; 6];
    let err = ndirect_gemm::try_gemm(2, 3, 3, &a, &b, &mut c).expect_err("A is short");
    assert!(matches!(err, GemmError::OperandSize { name: "A", .. }), "{err}");

    let a = vec![0.0f32; 6];
    let err = ndirect_gemm::try_gemm_strided(2, 3, 3, &a, 2, &b, 3, &mut c, 3, ndirect_gemm::BlockSizes::default())
        .expect_err("lda < k");
    assert!(matches!(err, GemmError::LeadingDim { name: "lda", .. }), "{err}");
}

#[test]
fn engine_rejects_mismatched_input_with_typed_error() {
    let _g = read_hook();
    let pool = StaticPool::new(1);
    let backend = NDirectBackend::host();
    let engine = Engine::new(&backend, &pool);
    let model = zoo::tiny_resnet(11);
    let wrong = Tensor4::zeros(1, 3, 16, 16, ActLayout::Nchw);
    let err = engine.try_run(&model, &wrong).expect_err("16x16 into a 32x32 model");
    assert!(matches!(err, ModelError::InputMismatch { .. }), "{err}");

    let bad_layout = Tensor4::zeros(1, 3, 32, 32, ActLayout::Nhwc);
    let err = engine.try_run(&model, &bad_layout).expect_err("engine runs NCHW");
    assert!(matches!(err, ModelError::Layout), "{err}");
}

// ------------------------------------------------------------- thread pool

#[test]
fn nested_region_is_a_typed_error() {
    let pool = StaticPool::new(2);
    let inner = std::sync::Mutex::new(None);
    pool.run(|tid| {
        if tid == 0 {
            // Record, don't assert: panicking here would abort the region.
            *inner.lock().unwrap() = Some(pool.try_run(|_| {}));
        }
    });
    assert_eq!(inner.into_inner().unwrap(), Some(Err(PoolError::NestedRun)));
    // The outer region exited cleanly; the pool is still usable.
    assert!(pool.try_run(|_| {}).is_ok());
}

#[test]
fn pool_survives_panicking_jobs_and_stays_usable() {
    let pool = StaticPool::new(4);
    for round in 0..3 {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(|tid| {
                if tid == round % 4 {
                    panic!("job failure in round {round}");
                }
            });
        }));
        assert!(result.is_err(), "round {round}: panic must propagate");

        // The pool must heal and run the full team again.
        let hits = std::sync::Mutex::new(vec![false; 4]);
        pool.run(|tid| hits.lock().unwrap()[tid] = true);
        assert!(
            hits.lock().unwrap().iter().all(|&h| h),
            "round {round}: all threads must run after a panic"
        );
    }
}

#[test]
fn pool_respawns_dead_workers() {
    let pool = StaticPool::new(3);
    pool.run(|_| {});
    pool.__test_kill_one_worker();
    // The next region must heal the team before dispatching work.
    let hits = std::sync::Mutex::new(vec![false; 3]);
    pool.run(|tid| hits.lock().unwrap()[tid] = true);
    assert!(hits.lock().unwrap().iter().all(|&h| h));
    assert_eq!(pool.live_workers(), 2, "size-3 pool keeps 2 workers");
}

// ----------------------------------------------------- forced degradation

/// Mirrors the scratch-provisioning arithmetic of the core driver: the
/// per-grid f32 element request for `sched` on `shape`.
fn scratch_elements(sched: &Schedule, shape: &ConvShape) -> usize {
    let win = (sched.vw - 1) * shape.stride + shape.s;
    let bbuf = sched.tc * shape.r * win;
    let tfbuf = sched.tk.div_ceil(sched.vk) * (sched.tc * shape.r * shape.s * sched.vk);
    (bbuf + tfbuf) * sched.grid.threads()
}

#[test]
fn forced_scratch_refusal_degrades_once_and_preserves_bits() {
    // The limit hook is process-global like the ISA hook, so this test
    // takes the write lock: no other conv may run (and possibly trip the
    // injected refusal, or degrade and move the probe counter) meanwhile.
    let _g = ISA_HOOK.write().unwrap_or_else(|p| p.into_inner());
    let shape = ConvShape::square(1, 64, 64, 32, 3, 1);
    let input = fill::random_tensor(Tensor4::input_for(&shape, ActLayout::Nchw), 7);
    let filter = fill::random_filter(Filter::for_shape(&shape, FilterLayout::Kcrs), 8);
    let pool = StaticPool::new(1);

    let requested = Schedule::derive(&ndirect_platform::host(), &shape, 1).sanitized(&shape);
    // The fallback the plan layer would build, for sizing the injected
    // ceiling between the two requests.
    let mut fallback = Schedule::minimal(&shape)
        .with_grid(requested.grid)
        .with_packing(requested.packing)
        .with_filter_state(requested.filter_state)
        .sanitized(&shape);
    fallback.vw = fallback.vw.min(requested.vw);
    let want = scratch_elements(&requested, &shape);
    let floor = scratch_elements(&fallback, &shape);
    assert!(
        floor < want,
        "test needs headroom between minimal ({floor}) and derived ({want}) scratch"
    );

    // Cap provisioning below the derived request: the build must degrade
    // to the minimal-tile schedule, exactly once, and say so.
    ndirect_core::conv::__set_scratch_element_limit(want - 1);
    let before = ndirect_probe::counter(ndirect_probe::Counter::MinimalScheduleDegradations);
    let plan = ndirect_core::ConvPlan::try_with_schedule(&shape, &filter, &requested);
    let delta =
        ndirect_probe::counter(ndirect_probe::Counter::MinimalScheduleDegradations) - before;
    ndirect_core::conv::__set_scratch_element_limit(usize::MAX);

    let plan = plan.expect("the minimal fallback fits under the cap");
    assert!(plan.degraded(), "refused scratch must surface as degraded()");
    let expected_delta = if ndirect_probe::ENABLED { 1 } else { 0 };
    assert_eq!(delta, expected_delta, "exactly one degradation event per build");

    // The degraded plan must compute exactly what a plan built *directly*
    // on the fallback schedule computes — the injected refusal may change
    // which schedule runs, never what that schedule produces. (Bitwise
    // identity against the *requested* schedule is not promised: a
    // different `Tc` splits the channel reduction into different register
    // chains, so only closeness holds there.)
    let mut got = Tensor4::output_for(&shape, ActLayout::Nchw);
    plan.execute(&pool, &input, &mut got).expect("degraded plan still runs");
    let direct = ndirect_core::ConvPlan::try_with_schedule(&shape, &filter, &fallback)
        .expect("minimal schedule allocates");
    assert!(!direct.degraded(), "an explicitly minimal request is not a degradation");
    let mut want_min = Tensor4::output_for(&shape, ActLayout::Nchw);
    direct.execute(&pool, &input, &mut want_min).expect("minimal plan runs");
    assert_eq!(
        got.as_slice(),
        want_min.as_slice(),
        "degraded execution must be bitwise identical to the schedule it fell back to"
    );

    let free = ndirect_core::ConvPlan::try_with_schedule(&shape, &filter, &requested)
        .expect("no cap, no degradation");
    assert!(!free.degraded());
    let mut want_full = Tensor4::output_for(&shape, ActLayout::Nchw);
    free.execute(&pool, &input, &mut want_full).expect("unconstrained plan runs");
    ndirect_tensor::assert_close(
        got.as_slice(),
        want_full.as_slice(),
        2e-4,
        "degraded vs requested schedule",
    );
}

// ------------------------------------------------------------------ ISA

#[test]
fn unsupported_isa_degrades_to_typed_error() {
    let _g = ISA_HOOK.write().unwrap_or_else(|p| p.into_inner());
    let (shape, input, filter) = small_problem();
    let pool = StaticPool::new(1);

    ndirect_simd::force_unsupported(true);
    let err = try_conv_ndirect(&pool, &input, &filter, &shape).expect_err("forced ISA miss");
    ndirect_simd::force_unsupported(false);
    match &err {
        Error::Isa(e) => assert!(e.to_string().contains("host CPU only supports"), "{e}"),
        other => panic!("expected Error::Isa, got {other}"),
    }

    // With the hook released, the same problem runs and matches the oracle.
    let got = try_conv_ndirect(&pool, &input, &filter, &shape).expect("supported host");
    let want = naive::conv_ref(&input, &filter, &shape);
    ndirect_tensor::assert_close(got.as_slice(), want.as_slice(), 2e-4, "post-hook conv");
}

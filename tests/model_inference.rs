//! End-to-end model inference across backends.

use ndirect_baselines::{Im2colBackend, IndirectBackend, NaiveBackend};
use ndirect_models::{zoo, Engine, NDirectBackend};
use ndirect_tensor::{assert_close, fill, ActLayout, Tensor4};
use ndirect_threads::StaticPool;

fn input(n: usize, model: &ndirect_models::Model, seed: u64) -> Tensor4 {
    let (c, h, w) = model.input;
    fill::random_tensor(Tensor4::zeros(n, c, h, w, ActLayout::Nchw), seed)
}

#[test]
fn tiny_resnet_backends_agree() {
    let model = zoo::tiny_resnet(3);
    let x = input(2, &model, 10);
    let pool = StaticPool::new(2);
    let (expect, _) = Engine::new(&NaiveBackend, &pool).run(&model, &x);
    for backend in [
        &Im2colBackend as &dyn ndirect_baselines::Convolution,
        &IndirectBackend,
        &NDirectBackend::host(),
    ] {
        let (got, stats) = Engine::new(backend, &pool).run(&model, &x);
        assert_close(
            got.as_slice(),
            expect.as_slice(),
            1e-3,
            &format!("tiny_resnet via {}", backend.name()),
        );
        assert_eq!(stats.convs, model.conv_count());
    }
}

#[test]
fn inference_is_deterministic() {
    let model = zoo::tiny_resnet(4);
    let x = input(1, &model, 11);
    let pool = StaticPool::new(4);
    let nd = NDirectBackend::host();
    let engine = Engine::new(&nd, &pool);
    let (a, _) = engine.run(&model, &x);
    let (b, _) = engine.run(&model, &x);
    assert_eq!(a.as_slice(), b.as_slice(), "same engine, same bits");
}

#[test]
fn batch_elements_are_independent() {
    // Running [x; y] batched equals running x and y separately.
    let model = zoo::tiny_resnet(5);
    let x1 = input(1, &model, 20);
    let x2 = input(1, &model, 21);
    let mut xb = Tensor4::zeros(2, 3, 32, 32, ActLayout::Nchw);
    xb.as_mut_slice()[..x1.len()].copy_from_slice(x1.as_slice());
    xb.as_mut_slice()[x1.len()..].copy_from_slice(x2.as_slice());

    let pool = StaticPool::new(1);
    let nd = NDirectBackend::host();
    let engine = Engine::new(&nd, &pool);
    let (yb, _) = engine.run(&model, &xb);
    let (y1, _) = engine.run(&model, &x1);
    let (y2, _) = engine.run(&model, &x2);
    assert_close(&yb.as_slice()[..10], y1.as_slice(), 1e-4, "batch elem 0");
    assert_close(&yb.as_slice()[10..], y2.as_slice(), 1e-4, "batch elem 1");
}

#[test]
fn full_resnet50_runs_one_forward_pass() {
    // The real 224x224 graph, batch 1, nDirect backend — a smoke test that
    // the full Fig. 7 pipeline is sound (timing happens in the harness).
    let model = zoo::resnet50(1);
    let x = input(1, &model, 30);
    let pool = StaticPool::new(2);
    let nd = NDirectBackend::host();
    let (probs, stats) = Engine::new(&nd, &pool).run(&model, &x);
    assert_eq!(probs.dims(), (1, 1000, 1, 1));
    let sum: f32 = probs.as_slice().iter().sum();
    assert!((sum - 1.0).abs() < 1e-3, "softmax sums to 1, got {sum}");
    assert!(probs.as_slice().iter().all(|&p| (0.0..=1.0).contains(&p)));
    assert_eq!(stats.convs, model.conv_count());
    // The paper's premise: convolution dominates runtime.
    assert!(
        stats.conv_fraction() > 0.5,
        "conv fraction = {}",
        stats.conv_fraction()
    );
}

#[test]
fn mobilenet_lite_runs_and_backends_agree() {
    // Depthwise-separable blocks (§10.2): depthwise stages always run
    // nDirect's dedicated kernel; the pointwise stages go through the
    // pluggable backend, so comparing backends still validates them.
    let model = zoo::mobilenet_lite(2);
    let x = input(1, &model, 40);
    let pool = StaticPool::new(2);
    let nd = NDirectBackend::host();
    let (a, stats) = Engine::new(&nd, &pool).run(&model, &x);
    assert_eq!(a.dims(), (1, 1000, 1, 1));
    let sum: f32 = a.as_slice().iter().sum();
    assert!((sum - 1.0).abs() < 1e-3);
    assert_eq!(stats.convs, model.conv_count());

    let (b, _) = Engine::new(&Im2colBackend, &pool).run(&model, &x);
    assert_close(b.as_slice(), a.as_slice(), 1e-3, "mobilenet backends");
}

#[test]
fn vgg16_conv_layers_match_table4_rows() {
    // Table 4 rows 24–28 are VGG-16 layers; the zoo graph must contain
    // convolutions with exactly those (C, K, H/W) combinations.
    let model = zoo::vgg16(0);
    let shapes = model.conv_shapes(1);
    for row in ndirect_workloads::vgg16_layers() {
        assert!(
            shapes
                .iter()
                .any(|s| s.c == row.c && s.k == row.k && s.h == row.hw && s.s == row.rs),
            "Table 4 layer {} missing from VGG-16 graph",
            row.id
        );
    }
}

#[test]
fn resnet50_contains_table4_rows() {
    let model = zoo::resnet50(0);
    let shapes = model.conv_shapes(1);
    // Spot-check distinctive rows: the stem (id 1) and a bottleneck trio
    // (ids 5, 3/10-style 3x3, 6).
    for id in [1usize, 5, 6, 9, 17, 22, 23] {
        let row = ndirect_workloads::table4::layer_by_id(id).unwrap();
        assert!(
            shapes
                .iter()
                .any(|s| s.c == row.c && s.k == row.k && s.h == row.hw && s.s == row.rs
                    && s.stride == row.stride),
            "Table 4 layer {id} missing from ResNet-50 graph"
        );
    }
}

//! The paper's layout-compatibility claim, end to end: nDirect consumes
//! and produces the mainstream layouts without the caller converting
//! anything, and agrees with itself across layouts.

use ndirect_core::{conv_ndirect, conv_ndirect_nhwc, transform_filter};
use ndirect_tensor::{
    assert_close, convert, ActLayout, ConvShape, FilterLayout,
};
use ndirect_threads::StaticPool;
use ndirect_workloads::make_problem;

#[test]
fn nchw_and_nhwc_entries_agree() {
    let shape = ConvShape::square(2, 12, 20, 11, 3, 1);
    let p = make_problem(shape, ActLayout::Nchw, FilterLayout::Kcrs, 1);
    let pool = StaticPool::new(2);

    let out_nchw = conv_ndirect(&pool, &p.input, &p.filter, &shape);

    let in_nhwc = p.input.to_layout(ActLayout::Nhwc);
    let f_krsc = p.filter.to_layout(FilterLayout::Krsc);
    let out_nhwc = conv_ndirect_nhwc(&pool, &in_nhwc, &f_krsc, &shape);

    assert_eq!(out_nchw.layout(), ActLayout::Nchw);
    assert_eq!(out_nhwc.layout(), ActLayout::Nhwc);
    assert_close(
        out_nhwc.to_layout(ActLayout::Nchw).as_slice(),
        out_nchw.as_slice(),
        2e-4, // the two native kernels reduce in different orders
        "NCHW vs NHWC entry",
    );
}

#[test]
fn filter_transform_preserves_every_weight() {
    // The on-the-fly transform is the only layout change nDirect makes;
    // verify it is lossless for awkward K values.
    for (k, c, r, s, vk) in [(13usize, 5usize, 3usize, 3usize, 8usize), (4, 3, 1, 1, 4), (31, 2, 5, 5, 12)] {
        let shape = ConvShape::new(1, c, r + 2, s + 2, k, r, s, 1, ndirect_tensor::Padding::NONE);
        let p = make_problem(shape, ActLayout::Nchw, FilterLayout::Kcrs, 9);
        let tf = transform_filter(&p.filter, vk);
        for kk in 0..k {
            for cc in 0..c {
                for rr in 0..r {
                    for ss in 0..s {
                        let block = tf.block(kk / vk, cc, 1);
                        let got = block[(rr * s + ss) * vk + kk % vk];
                        assert_eq!(got, p.filter.at(kk, cc, rr, ss), "k={kk} c={cc} r={rr} s={ss}");
                    }
                }
            }
        }
    }
}

#[test]
fn activation_round_trips_are_lossless() {
    let shape = ConvShape::square(3, 7, 5, 9, 3, 1);
    let p = make_problem(shape, ActLayout::Nchw, FilterLayout::Kcrs, 2);
    let nhwc = convert::convert_activation(&p.input, ActLayout::Nhwc);
    let back = convert::convert_activation(&nhwc, ActLayout::Nchw);
    assert_eq!(back.as_slice(), p.input.as_slice());

    let blocked = convert::to_blocked_activation(&p.input, 4);
    let back = convert::from_blocked_activation(&blocked, ActLayout::Nchw);
    assert_eq!(back.as_slice(), p.input.as_slice());
}

#[test]
fn output_tensor_matches_framework_expectations() {
    // A framework hands nDirect a preallocated NCHW output and expects
    // exactly (N, K, P, Q) with no layout surprises.
    let shape = ConvShape::square(2, 6, 10, 9, 3, 2);
    let p = make_problem(shape, ActLayout::Nchw, FilterLayout::Kcrs, 3);
    let pool = StaticPool::new(1);
    let out = conv_ndirect(&pool, &p.input, &p.filter, &shape);
    assert_eq!(out.dims(), (2, 10, shape.p(), shape.q()));
    assert_eq!(out.layout(), ActLayout::Nchw);
    // And the input/filter were not consumed or mutated.
    let p2 = make_problem(shape, ActLayout::Nchw, FilterLayout::Kcrs, 3);
    assert_eq!(p.input.as_slice(), p2.input.as_slice());
    assert_eq!(p.filter.as_slice(), p2.filter.as_slice());
}

#[test]
fn xnnpack_baseline_keeps_its_native_layouts() {
    // The indirect baseline runs natively in NHWC/KRSC (§7.4); its NCHW
    // adapter must cost conversions, not change results.
    let shape = ConvShape::square(2, 8, 12, 9, 3, 1);
    let p = make_problem(shape, ActLayout::Nhwc, FilterLayout::Krsc, 4);
    let pool = StaticPool::new(1);
    let out = ndirect_baselines::indirect::conv_indirect(&pool, &p.input, &p.filter, &shape);
    assert_eq!(out.layout(), ActLayout::Nhwc);

    let in_nchw = p.input.to_layout(ActLayout::Nchw);
    let f_kcrs = p.filter.to_layout(FilterLayout::Kcrs);
    let out2 =
        ndirect_baselines::indirect::conv_indirect_nchw(&pool, &in_nchw, &f_kcrs, &shape);
    assert_close(
        out2.as_slice(),
        out.to_layout(ActLayout::Nchw).as_slice(),
        1e-6,
        "indirect adapter",
    );
}

#[test]
fn pre_padded_blocked_input_matches_implicit_padding() {
    // The LIBXSMM-style baseline pads explicitly; nDirect pads implicitly
    // in its packing. Same operator either way.
    let shape = ConvShape::square(1, 6, 8, 7, 3, 1);
    let p = make_problem(shape, ActLayout::Nchw, FilterLayout::Kcrs, 5);
    let pool = StaticPool::new(1);
    let blocked = ndirect_baselines::blocked::conv_blocked_nchw(&pool, &p.input, &p.filter, &shape);
    let ndirect = conv_ndirect(&pool, &p.input, &p.filter, &shape);
    assert_close(ndirect.as_slice(), blocked.as_slice(), 2e-4, "pad handling");
}

#[test]
fn empty_output_edge_case() {
    // Q == 1 and P == 1: the smallest legal output.
    let shape = ConvShape::new(1, 3, 3, 3, 2, 3, 3, 1, ndirect_tensor::Padding::NONE);
    let p = make_problem(shape, ActLayout::Nchw, FilterLayout::Kcrs, 6);
    let pool = StaticPool::new(1);
    let out = conv_ndirect(&pool, &p.input, &p.filter, &shape);
    assert_eq!(out.dims(), (1, 2, 1, 1));
    let expect = ndirect_baselines::naive::conv_ref(&p.input, &p.filter, &shape);
    assert_close(out.as_slice(), expect.as_slice(), 2e-4, "1x1 output");
}

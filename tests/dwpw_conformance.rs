//! Differential conformance for the fused depthwise+pointwise path.
//!
//! Every grid pair runs twice: fused ([`ndirect_core::FusedDwPwPlan`], one
//! pass, slab-resident intermediate) and unfused (`conv_depthwise` into a
//! materialized tensor, then the standard nDirect 1×1), and the outputs are
//! diffed in max-ULP terms. The unfused pointwise stage honors
//! `NDIRECT_FORCE_PACKING`, so CI's packing matrix re-runs the whole table
//! against each packing variant of the reference — the fusion must agree
//! with all of them.
//!
//! The grid deliberately walks the boundary machinery: stride 1 and 2,
//! same and valid padding, channel counts off the 4-lane grid (dw) and
//! off the `Vk` grid (pw), odd spatial sizes, and a `Q` that exercises
//! `Vw` tail tiles.

use ndirect_core::{
    conv_depthwise, conv_ndirect_with, try_conv_dwpw_fused, try_conv_dwpw_fused_with,
    DwPwSchedule, FusedDwPwPlan, PackingMode, Schedule,
};
use ndirect_tensor::{fill, ActLayout, ConvShape, Filter, FilterLayout, Padding, Tensor4};
use ndirect_threads::StaticPool;

// --- ULP harness (mirrors crates/baselines/tests/conformance.rs; Cargo
// --- integration tests are separate binaries, so the ~30 lines are
// --- restated rather than shared).

/// Packing override for the unfused pointwise reference, from
/// `NDIRECT_FORCE_PACKING` (`fused` / `sequential` / `none` /
/// `sliced:<rows>`). An unrecognized value is a test bug, not a skip.
fn forced_packing() -> Option<PackingMode> {
    let raw = std::env::var("NDIRECT_FORCE_PACKING").ok()?;
    Some(
        PackingMode::parse(&raw)
            .unwrap_or_else(|| panic!("NDIRECT_FORCE_PACKING={raw:?} is not a packing mode")),
    )
}

/// ULP distance between two finite f32s via the lexicographic-order
/// mapping of IEEE bits; values straddling zero are charged the sum of
/// their distances from zero.
fn ulp_distance(a: f32, b: f32) -> u64 {
    fn order(x: f32) -> i64 {
        let bits = x.to_bits() as i32;
        if bits < 0 {
            -i64::from(bits & i32::MAX)
        } else {
            i64::from(bits)
        }
    }
    order(a).abs_diff(order(b))
}

/// Max hybrid ULP distance over two slices: exact zeros-by-floor first,
/// ULP distance for everything else.
fn max_ulp(got: &[f32], want: &[f32], abs_floor: f32) -> u64 {
    assert_eq!(got.len(), want.len(), "outputs must be same-size");
    got.iter()
        .zip(want)
        .map(|(&g, &w)| {
            assert!(g.is_finite(), "fused path produced a non-finite value {g}");
            if (g - w).abs() <= abs_floor {
                0
            } else {
                ulp_distance(g, w)
            }
        })
        .max()
        .unwrap_or(0)
}

/// The pointwise stage reassociates the same `C`-length f32 dot products
/// as the unfused reference, so the pair sits in the exact-method budget
/// band of the baselines' conformance table.
const BUDGET_ULP: u64 = 4096;
const ABS_FLOOR: f32 = 1e-6;

/// One grid pair: `(label, N, C, K, H, W, stride, pad)` for a `3×3`
/// depthwise stage feeding a `1×1` pointwise `C → K`.
fn pair_grid() -> Vec<(&'static str, ConvShape, usize)> {
    let pair = |n, c, k, h, w, stride, pad: Option<usize>| {
        let padding = match pad {
            Some(p) => Padding::same(p),
            None => Padding::NONE,
        };
        (ConvShape::new(n, c, h, w, c, 3, 3, stride, padding), k)
    };
    vec![
        // Lane-aligned baseline.
        {
            let (s, k) = pair(1, 8, 12, 12, 12, 1, Some(1));
            ("even s1 p1", s, k)
        },
        // Odd spatial, dw channel tail (8 + 2 lanes-of-4), pw Vk tail.
        {
            let (s, k) = pair(1, 6, 9, 13, 13, 1, Some(1));
            ("odd s1 p1 tails", s, k)
        },
        // Stride-2 downsample, batch > 1.
        {
            let (s, k) = pair(2, 8, 16, 14, 14, 2, Some(1));
            ("even s2 p1", s, k)
        },
        // Stride 2 over odd input: asymmetric halo rows.
        {
            let (s, k) = pair(1, 10, 16, 15, 15, 2, Some(1));
            ("odd s2 p1", s, k)
        },
        // Valid padding, stride 1.
        {
            let (s, k) = pair(1, 12, 20, 11, 11, 1, None);
            ("s1 p0 valid", s, k)
        },
        // Valid padding, stride 2, channel counts off every grid.
        {
            let (s, k) = pair(1, 5, 7, 12, 12, 2, None);
            ("s2 p0 tails", s, k)
        },
        // Degenerate single channel.
        {
            let (s, k) = pair(1, 1, 4, 9, 9, 1, Some(1));
            ("single channel", s, k)
        },
        // Wide rows: Q = 29 forces Vw main + tail tiles at every width.
        {
            let (s, k) = pair(1, 4, 4, 7, 29, 1, Some(1));
            ("wide q", s, k)
        },
    ]
}

fn seeded_pair(dw_shape: &ConvShape, k: usize, seed: u64) -> (Tensor4, Filter, Filter) {
    (
        fill::random_tensor(Tensor4::input_for(dw_shape, ActLayout::Nchw), seed),
        fill::random_filter(
            Filter::zeros(dw_shape.c, 1, dw_shape.r, dw_shape.s, FilterLayout::Kcrs),
            seed ^ 1,
        ),
        fill::random_filter(
            Filter::zeros(k, dw_shape.c, 1, 1, FilterLayout::Kcrs),
            seed ^ 2,
        ),
    )
}

/// The unfused reference: depthwise into a materialized intermediate, then
/// the standard nDirect 1×1 with the host schedule — packing overridden
/// when the CI matrix forces a mode.
fn unfused_reference(
    pool: &StaticPool,
    input: &Tensor4,
    dw_filter: &Filter,
    pw_filter: &Filter,
    dw_shape: &ConvShape,
    k: usize,
    mid_relu: bool,
) -> Tensor4 {
    let mut mid = conv_depthwise(pool, input, dw_filter, dw_shape);
    if mid_relu {
        for v in mid.as_mut_slice() {
            *v = v.max(0.0);
        }
    }
    let pw_shape = ConvShape::new(
        dw_shape.n,
        dw_shape.c,
        dw_shape.p(),
        dw_shape.q(),
        k,
        1,
        1,
        1,
        Padding::NONE,
    );
    let mut sched = Schedule::derive(&ndirect_platform::host(), &pw_shape, pool.size());
    if let Some(mode) = forced_packing() {
        sched.packing = mode;
        sched = sched.sanitized(&pw_shape);
    }
    conv_ndirect_with(pool, &mid, pw_filter, &pw_shape, &sched)
}

/// The headline table: fused vs. unfused over the whole grid, within the
/// exact-method ULP budget.
#[test]
fn fused_conforms_to_unfused_on_grid() {
    let pool = StaticPool::new(2);
    for (i, (label, dw_shape, k)) in pair_grid().into_iter().enumerate() {
        let (input, dwf, pwf) = seeded_pair(&dw_shape, k, 0xd2f0 + i as u64);
        let want = unfused_reference(&pool, &input, &dwf, &pwf, &dw_shape, k, false);
        let got = try_conv_dwpw_fused(&pool, &input, &dwf, &pwf, &dw_shape)
            .unwrap_or_else(|e| panic!("fused on '{label}': {e}"));
        let ulp = max_ulp(got.as_slice(), want.as_slice(), ABS_FLOOR);
        eprintln!("dwpw {label:<16} max {ulp} ULP (budget {BUDGET_ULP})");
        assert!(
            ulp <= BUDGET_ULP,
            "fused on '{label}' ({dw_shape} -> K={k}): {ulp} ULP exceeds {BUDGET_ULP}"
        );
    }
}

/// Same table with the MobileNet activation placement: ReLU on the
/// depthwise intermediate, applied inside the slab by the fused path and
/// on the materialized tensor by the reference.
#[test]
fn fused_mid_relu_conforms_on_grid() {
    let pool = StaticPool::new(2);
    for (i, (label, dw_shape, k)) in pair_grid().into_iter().enumerate() {
        let (input, dwf, pwf) = seeded_pair(&dw_shape, k, 0xe1f0 + i as u64);
        let want = unfused_reference(&pool, &input, &dwf, &pwf, &dw_shape, k, true);
        let got = try_conv_dwpw_fused_with(&pool, &input, &dwf, &pwf, &dw_shape, true)
            .unwrap_or_else(|e| panic!("fused mid-relu on '{label}': {e}"));
        let ulp = max_ulp(got.as_slice(), want.as_slice(), ABS_FLOOR);
        eprintln!("dwpw+relu {label:<16} max {ulp} ULP (budget {BUDGET_ULP})");
        assert!(
            ulp <= BUDGET_ULP,
            "fused mid-relu on '{label}': {ulp} ULP exceeds {BUDGET_ULP}"
        );
    }
}

/// Within the fused path, every schedule is the same loop nest with the
/// same per-output accumulation chain — slice length and register tile
/// only re-partition work. Outputs must be *bitwise* identical across the
/// schedule corners, on every grid pair. No ULP budget at all.
#[test]
fn fused_schedules_are_bitwise_identical_on_grid() {
    let pool = StaticPool::new(2);
    for (i, (label, dw_shape, k)) in pair_grid().into_iter().enumerate() {
        let (input, dwf, pwf) = seeded_pair(&dw_shape, k, 0xf1f0 + i as u64);
        let run = |sched: &DwPwSchedule| {
            let plan =
                FusedDwPwPlan::try_with_schedule(&dw_shape, &dwf, &pwf, sched, pool.size())
                    .unwrap_or_else(|e| panic!("'{label}': {e}"));
            let mut out =
                Tensor4::zeros(dw_shape.n, k, dw_shape.p(), dw_shape.q(), ActLayout::Nchw);
            plan.execute(&pool, &input, &mut out)
                .unwrap_or_else(|e| panic!("'{label}': {e}"));
            out
        };
        let reference = DwPwSchedule::derive(&ndirect_platform::host(), &dw_shape);
        let want = run(&reference);
        for (rows, vw, vk) in [
            (1, 4, 4),
            (1, 12, 12),
            (dw_shape.p(), 4, 12),
            (dw_shape.p(), 12, 4),
            (2, 8, 8),
        ] {
            let sched = DwPwSchedule {
                slice_rows: rows,
                vw,
                vk,
            }
            .sanitized(&dw_shape);
            let got = run(&sched);
            assert_eq!(
                got.as_slice(),
                want.as_slice(),
                "'{label}': schedule {sched:?} diverged bitwise from {reference:?}"
            );
        }
    }
}

/// The one-shot fused entry points reject pairs the plan cannot fuse,
/// with typed errors rather than wrong answers.
#[test]
fn fused_rejects_mismatched_pairs() {
    let pool = StaticPool::new(1);
    let dw_shape = ConvShape::new(1, 8, 10, 10, 8, 3, 3, 1, Padding::same(1));
    let (input, dwf, _) = seeded_pair(&dw_shape, 12, 9);
    // Pointwise filter whose C doesn't match the depthwise output.
    let bad_pw = Filter::zeros(12, 7, 1, 1, FilterLayout::Kcrs);
    assert!(try_conv_dwpw_fused(&pool, &input, &dwf, &bad_pw, &dw_shape).is_err());
    // Pointwise filter that isn't 1×1.
    let bad_rs = Filter::zeros(12, 8, 3, 3, FilterLayout::Kcrs);
    assert!(try_conv_dwpw_fused(&pool, &input, &dwf, &bad_rs, &dw_shape).is_err());
}

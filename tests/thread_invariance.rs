//! Determinism across parallel configurations.
//!
//! nDirect never parallelizes a reduction dimension, so the floating-point
//! reduction order of every output element is independent of the thread
//! grid — results must be *bitwise* identical across grids. The same holds
//! for the baselines' batch/row/channel-block decompositions.

use std::sync::{Mutex, MutexGuard};

use ndirect_baselines::{blocked, im2col, indirect};
use ndirect_core::{conv_ndirect_with, Schedule};
use ndirect_tensor::{ActLayout, ConvShape, FilterLayout};
use ndirect_threads::{Grid2, StaticPool};
use ndirect_workloads::make_problem;

fn shape() -> ConvShape {
    ConvShape::square(4, 24, 32, 12, 3, 1)
}

/// The probe's counters are process-global, so the probe-state test below
/// can only assert exact deltas while no other convolution runs in this
/// binary: every conv-running test shares this lock.
static PROBE_LOCK: Mutex<()> = Mutex::new(());

fn probe_lock() -> MutexGuard<'static, ()> {
    PROBE_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

/// The invariance contract extended to observability: not just the
/// *results* but the *accounting* must be independent of the thread grid —
/// FLOPs always, packed bytes on row-only grids (splitting K at `Vk`
/// granularity can change the number of `Tk` tiles, which is a real
/// packing-volume difference, not an accounting bug).
#[test]
fn probe_state_invariant_across_row_grids() {
    let _g = probe_lock();
    let shape = shape();
    let p = make_problem(shape, ActLayout::Nchw, FilterLayout::Kcrs, 48);
    let watched = [
        ndirect_probe::Counter::FlopsIssued,
        ndirect_probe::Counter::BytesPacked,
    ];
    let mut seen = Vec::new();
    for (ptn, threads) in [(1, 1), (2, 2), (4, 4)] {
        let pool = StaticPool::new(threads);
        let sched = Schedule::minimal(&shape).with_grid(Grid2::new(ptn, 1));
        let before: Vec<u64> = watched.iter().map(|&c| ndirect_probe::counter(c)).collect();
        let out = conv_ndirect_with(&pool, &p.input, &p.filter, &shape, &sched);
        let delta: Vec<u64> = watched
            .iter()
            .zip(&before)
            .map(|(&c, b)| ndirect_probe::counter(c) - b)
            .collect();
        seen.push((delta, out));
    }
    for (delta, out) in &seen[1..] {
        assert_eq!(delta, &seen[0].0, "probe counters diverged across grids");
        assert_eq!(out.as_slice(), seen[0].1.as_slice(), "results diverged");
    }
    if ndirect_probe::ENABLED {
        assert_eq!(seen[0].0[0], shape.flops(), "flops delta is the closed form");
    } else {
        assert_eq!(seen[0].0, vec![0, 0], "disabled probe must stay silent");
    }
}

#[test]
fn ndirect_bitwise_identical_across_grids() {
    let _g = probe_lock();
    let shape = shape();
    let p = make_problem(shape, ActLayout::Nchw, FilterLayout::Kcrs, 42);
    let reference = {
        let pool = StaticPool::new(1);
        let sched = Schedule::minimal(&shape);
        conv_ndirect_with(&pool, &p.input, &p.filter, &shape, &sched)
    };
    for (ptn, ptk) in [(1, 1), (2, 1), (1, 2), (2, 2), (4, 2), (3, 1), (1, 8)] {
        let pool = StaticPool::new(ptn * ptk);
        let sched = Schedule::minimal(&shape).with_grid(Grid2::new(ptn, ptk));
        let got = conv_ndirect_with(&pool, &p.input, &p.filter, &shape, &sched);
        assert_eq!(
            got.as_slice(),
            reference.as_slice(),
            "grid {ptn}x{ptk} diverged bitwise"
        );
    }
}

#[test]
fn ndirect_bitwise_identical_across_repeat_runs() {
    let _g = probe_lock();
    let shape = shape();
    let p = make_problem(shape, ActLayout::Nchw, FilterLayout::Kcrs, 43);
    let pool = StaticPool::new(4);
    let sched = Schedule::minimal(&shape).with_grid(Grid2::new(2, 2));
    let a = conv_ndirect_with(&pool, &p.input, &p.filter, &shape, &sched);
    for _ in 0..5 {
        let b = conv_ndirect_with(&pool, &p.input, &p.filter, &shape, &sched);
        assert_eq!(a.as_slice(), b.as_slice(), "repeat run diverged");
    }
}

#[test]
fn im2col_bitwise_identical_across_thread_counts() {
    let _g = probe_lock();
    let shape = shape();
    let p = make_problem(shape, ActLayout::Nchw, FilterLayout::Kcrs, 44);
    let base = im2col::conv_im2col(&StaticPool::new(1), &p.input, &p.filter, &shape);
    for threads in [2, 3, 4, 8] {
        let got = im2col::conv_im2col(&StaticPool::new(threads), &p.input, &p.filter, &shape);
        assert_eq!(got.as_slice(), base.as_slice(), "{threads} threads");
    }
}

#[test]
fn blocked_bitwise_identical_across_thread_counts() {
    let _g = probe_lock();
    let shape = shape();
    let p = make_problem(shape, ActLayout::Nchw, FilterLayout::Kcrs, 45);
    let ops = blocked::prepare_blocked(&p.input, &p.filter, &shape);
    let base = blocked::conv_blocked(&StaticPool::new(1), &ops.input, &ops.filter, &shape);
    for threads in [2, 4, 7] {
        let got = blocked::conv_blocked(&StaticPool::new(threads), &ops.input, &ops.filter, &shape);
        assert_eq!(got.as_slice(), base.as_slice(), "{threads} threads");
    }
}

#[test]
fn indirect_bitwise_identical_across_thread_counts() {
    let _g = probe_lock();
    let shape = shape();
    let p = make_problem(shape, ActLayout::Nhwc, FilterLayout::Krsc, 46);
    let base = indirect::conv_indirect(&StaticPool::new(1), &p.input, &p.filter, &shape);
    for threads in [2, 4, 5] {
        let got = indirect::conv_indirect(&StaticPool::new(threads), &p.input, &p.filter, &shape);
        assert_eq!(got.as_slice(), base.as_slice(), "{threads} threads");
    }
}

#[test]
fn oversubscribed_pool_still_correct() {
    let _g = probe_lock();
    // Fig. 9's SMT setting oversubscribes threads well past the core count.
    let shape = ConvShape::square(2, 8, 16, 10, 3, 1);
    let p = make_problem(shape, ActLayout::Nchw, FilterLayout::Kcrs, 47);
    let seq = conv_ndirect_with(
        &StaticPool::new(1),
        &p.input,
        &p.filter,
        &shape,
        &Schedule::minimal(&shape),
    );
    let pool = StaticPool::new(16);
    let sched = Schedule::minimal(&shape).with_grid(Grid2::new(4, 4));
    let got = conv_ndirect_with(&pool, &p.input, &p.filter, &shape, &sched);
    assert_eq!(got.as_slice(), seq.as_slice());
}

//! Cross-backend agreement: every convolution implementation in the
//! workspace computes the same operator.
//!
//! The Table 4 shapes are run (spatially scaled down for test speed, which
//! preserves channel structure, kernel size, stride and padding) through
//! all backends and compared element-wise against the naive oracle.

use ndirect_baselines::{
    naive, run_backend, BlockedBackend, Convolution, Im2colBackend, IndirectBackend,
};
use ndirect_models::NDirectBackend;
use ndirect_tensor::{assert_close, ActLayout, ConvShape, FilterLayout};
use ndirect_threads::StaticPool;
use ndirect_workloads::{fig4_layers, make_problem};

/// Scales a Table 4 layer down for test runtime: spatial extent capped,
/// channels capped, structure preserved.
fn scaled_shape(c: usize, k: usize, hw: usize, rs: usize, stride: usize) -> ConvShape {
    let hw = hw.min(14).max(rs + stride); // keep the kernel fitting
    let c = c.min(48);
    let k = k.min(48);
    ConvShape::square(2, c, k, hw, rs, stride)
}

fn backends() -> Vec<Box<dyn Convolution>> {
    vec![
        Box::new(Im2colBackend),
        Box::new(BlockedBackend),
        Box::new(IndirectBackend),
        Box::new(NDirectBackend::host()),
    ]
}

#[test]
fn all_backends_match_oracle_on_all_table4_shapes() {
    let pool = StaticPool::new(2);
    for layer in fig4_layers() {
        let shape = scaled_shape(layer.c, layer.k, layer.hw, layer.rs, layer.stride);
        let p = make_problem(shape, ActLayout::Nchw, FilterLayout::Kcrs, layer.id as u64);
        let expect = naive::conv_ref(&p.input, &p.filter, &shape);
        for backend in backends() {
            let got = run_backend(backend.as_ref(), &pool, &p.input, &p.filter, &shape);
            assert_close(
                got.as_slice(),
                expect.as_slice(),
                2e-4,
                &format!("layer {} ({shape}) via {}", layer.id, backend.name()),
            );
        }
    }
}

#[test]
fn backends_match_on_asymmetric_spatial_dims() {
    // H != W and R != S exercise index plumbing the square Table 4 shapes
    // cannot.
    let pool = StaticPool::new(2);
    for (h, w, r, s, stride, ph, pw) in [
        (9usize, 15usize, 3usize, 1usize, 1usize, 1usize, 0usize),
        (12, 7, 1, 3, 1, 0, 1),
        (11, 13, 3, 5, 2, 1, 2),
        (8, 20, 5, 3, 2, 2, 1),
    ] {
        let shape = ConvShape::new(
            2,
            5,
            h,
            w,
            7,
            r,
            s,
            stride,
            ndirect_tensor::Padding { h: ph, w: pw },
        );
        let p = make_problem(shape, ActLayout::Nchw, FilterLayout::Kcrs, 77);
        let expect = naive::conv_ref(&p.input, &p.filter, &shape);
        for backend in backends() {
            let got = run_backend(backend.as_ref(), &pool, &p.input, &p.filter, &shape);
            assert_close(
                got.as_slice(),
                expect.as_slice(),
                2e-4,
                &format!("{shape} via {}", backend.name()),
            );
        }
    }
}

#[test]
fn backends_match_on_degenerate_sizes() {
    let pool = StaticPool::new(1);
    for shape in [
        // Single pixel output.
        ConvShape::new(1, 1, 3, 3, 1, 3, 3, 1, ndirect_tensor::Padding::NONE),
        // Single channel in and out.
        ConvShape::new(1, 1, 6, 6, 1, 3, 3, 1, ndirect_tensor::Padding::same(1)),
        // K = 1 with many input channels.
        ConvShape::new(1, 17, 5, 5, 1, 1, 1, 1, ndirect_tensor::Padding::NONE),
        // Kernel as large as the input.
        ConvShape::new(1, 2, 4, 4, 3, 4, 4, 1, ndirect_tensor::Padding::NONE),
        // Output width 1 (W == S).
        ConvShape::new(2, 3, 8, 3, 4, 3, 3, 1, ndirect_tensor::Padding::NONE),
    ] {
        let p = make_problem(shape, ActLayout::Nchw, FilterLayout::Kcrs, 3);
        let expect = naive::conv_ref(&p.input, &p.filter, &shape);
        for backend in backends() {
            let got = run_backend(backend.as_ref(), &pool, &p.input, &p.filter, &shape);
            assert_close(
                got.as_slice(),
                expect.as_slice(),
                2e-4,
                &format!("{shape} via {}", backend.name()),
            );
        }
    }
}

//! Integration tests for the §10.2 extensions: depthwise, 3-D, native
//! NHWC — cross-module behaviour beyond the unit tests in `ndirect-core`.

use ndirect_core::{
    conv3d_naive, conv3d_ndirect, conv_depthwise, conv_ndirect, conv_ndirect_nhwc, Conv3dShape,
    Schedule,
};
use ndirect_support::Rng64;
use ndirect_tensor::{
    assert_close, fill, ActLayout, ConvShape, Filter, Filter5, FilterLayout, Padding, Tensor4,
    Tensor5,
};
use ndirect_threads::StaticPool;

#[test]
fn depthwise_then_pointwise_equals_grouped_dense() {
    // A depthwise conv equals a dense conv whose filter is diagonal in
    // channels: F[k][c] = dw[k] if k == c else 0.
    let c = 6;
    let shape = ConvShape::new(2, c, 9, 9, c, 3, 3, 1, Padding::same(1));
    let input = fill::random_tensor(Tensor4::input_for(&shape, ActLayout::Nchw), 1);
    let dw = fill::random_filter(Filter::zeros(c, 1, 3, 3, FilterLayout::Kcrs), 2);
    let pool = StaticPool::new(2);

    let got = conv_depthwise(&pool, &input, &dw, &shape);

    let mut dense = Filter::zeros(c, c, 3, 3, FilterLayout::Kcrs);
    for k in 0..c {
        for r in 0..3 {
            for s in 0..3 {
                *dense.at_mut(k, k, r, s) = dw.at(k, 0, r, s);
            }
        }
    }
    let expect = conv_ndirect(&pool, &input, &dense, &shape);
    assert_close(got.as_slice(), expect.as_slice(), 2e-4, "dw == diagonal dense");
}

#[test]
fn conv3d_with_unit_depth_equals_2d() {
    // T = D = 1 collapses 3-D convolution to the 2-D operator.
    let shape2 = ConvShape::new(1, 3, 8, 8, 5, 3, 3, 1, Padding::same(1));
    let input2 = fill::random_tensor(Tensor4::input_for(&shape2, ActLayout::Nchw), 3);
    let filter2 = fill::random_filter(Filter::for_shape(&shape2, FilterLayout::Kcrs), 3);
    let pool = StaticPool::new(1);
    let out2 = conv_ndirect(&pool, &input2, &filter2, &shape2);

    let shape3 = Conv3dShape {
        n: 1,
        c: 3,
        d: 1,
        h: 8,
        w: 8,
        k: 5,
        t: 1,
        r: 3,
        s: 3,
        stride: 1,
        pad_d: 0,
        pad_h: 1,
        pad_w: 1,
    };
    let mut input3 = Tensor5::zeros(1, 3, 1, 8, 8);
    input3.as_mut_slice().copy_from_slice(input2.as_slice());
    let mut filter3 = Filter5::zeros(5, 3, 1, 3, 3);
    filter3.as_mut_slice().copy_from_slice(filter2.as_slice());
    let out3 = conv3d_ndirect(&pool, &input3, &filter3, &shape3);
    assert_close(out3.as_slice(), out2.as_slice(), 2e-4, "conv3d(T=1) == conv2d");
}

#[test]
fn nhwc_native_matches_nchw_on_scaled_table4_rows() {
    let pool = StaticPool::new(2);
    for layer in ndirect_workloads::fig1_layers() {
        let shape = ConvShape::square(
            1,
            layer.c.min(24),
            layer.k.min(24),
            layer.hw.min(12).max(layer.rs + layer.stride),
            layer.rs,
            layer.stride,
        );
        let p = ndirect_workloads::make_problem(shape, ActLayout::Nchw, FilterLayout::Kcrs, 70);
        let nchw_out = conv_ndirect(&pool, &p.input, &p.filter, &shape);
        let nhwc_out = conv_ndirect_nhwc(
            &pool,
            &p.input.to_layout(ActLayout::Nhwc),
            &p.filter.to_layout(FilterLayout::Krsc),
            &shape,
        );
        assert_close(
            nhwc_out.to_layout(ActLayout::Nchw).as_slice(),
            nchw_out.as_slice(),
            2e-4,
            &format!("nhwc vs nchw, layer {}", layer.id),
        );
    }
}

#[test]
fn depthwise_matches_oracle_on_random_shapes() {
    let mut rng = Rng64::seed_from_u64(0xe071);
    let pool = StaticPool::new(1);
    for case in 0..16 {
        let n = rng.gen_range_usize(1, 3);
        let c = rng.gen_range_usize(1, 14);
        let hw = rng.gen_range_usize(3, 12);
        let rs = *rng.choose(&[1usize, 3, 5]);
        let stride = rng.gen_range_usize(1, 3);
        if hw + 2 * (rs / 2) < rs {
            continue;
        }
        let seed = rng.next_u64();
        let shape = ConvShape::new(n, c, hw, hw, c, rs, rs, stride, Padding::same(rs / 2));
        let input = fill::random_tensor(Tensor4::input_for(&shape, ActLayout::Nchw), seed);
        let dw = fill::random_filter(Filter::zeros(c, 1, rs, rs, FilterLayout::Kcrs), seed ^ 1);
        let got = conv_depthwise(&pool, &input, &dw, &shape);

        // Scalar oracle.
        for ni in 0..n { for ci in 0..c {
            for oj in 0..shape.p() { for oi in 0..shape.q() {
                let mut acc = 0.0f32;
                for r in 0..rs { for s in 0..rs {
                    let ij = (stride * oj + r) as isize - (rs / 2) as isize;
                    let ii = (stride * oi + s) as isize - (rs / 2) as isize;
                    acc += ndirect_tensor::pad::at_padded(&input, ni, ci, ij, ii)
                        * dw.at(ci, 0, r, s);
                }}
                let g = got.at(ni, ci, oj, oi);
                assert!(
                    (g - acc).abs() <= 1e-4 * acc.abs().max(1.0),
                    "case {case}: {g} vs {acc}"
                );
            }}
        }}
    }
}

#[test]
fn conv3d_matches_oracle_on_random_shapes() {
    let mut rng = Rng64::seed_from_u64(0xe072);
    let pool = StaticPool::new(1);
    let mut case = 0;
    while case < 16 {
        let c = rng.gen_range_usize(1, 5);
        let k = rng.gen_range_usize(1, 6);
        let d = rng.gen_range_usize(2, 6);
        let hw = rng.gen_range_usize(3, 8);
        let t = rng.gen_range_usize(1, 3);
        let rs = rng.gen_range_usize(1, 4);
        if d < t || hw < rs {
            continue;
        }
        case += 1;
        let seed = rng.next_u64();
        let shape = Conv3dShape {
            n: 1, c, d, h: hw, w: hw, k, t, r: rs, s: rs,
            stride: 1, pad_d: 0, pad_h: 0, pad_w: 0,
        };
        let mut input = Tensor5::zeros(1, c, d, hw, hw);
        fill::fill_random(input.as_mut_slice(), seed);
        let mut filter = Filter5::zeros(k, c, t, rs, rs);
        fill::fill_random(filter.as_mut_slice(), seed ^ 2);
        let got = conv3d_ndirect(&pool, &input, &filter, &shape);
        let expect = conv3d_naive(&input, &filter, &shape);
        assert_close(
            got.as_slice(),
            expect.as_slice(),
            2e-4,
            &format!("conv3d case {case}"),
        );
    }
}

#[test]
fn nhwc_native_matches_oracle_on_random_shapes() {
    let mut rng = Rng64::seed_from_u64(0xe073);
    let pool = StaticPool::new(1);
    for case in 0..16 {
        let n = rng.gen_range_usize(1, 3);
        let c = rng.gen_range_usize(1, 10);
        let k = rng.gen_range_usize(1, 14);
        let h = rng.gen_range_usize(3, 10);
        let w = rng.gen_range_usize(3, 12);
        let rs = *rng.choose(&[1usize, 3]);
        let stride = rng.gen_range_usize(1, 3);
        let seed = rng.next_u64();
        let shape = ConvShape::new(n, c, h, w, k, rs, rs, stride, Padding::same(rs / 2));
        let input = fill::random_tensor(Tensor4::input_for(&shape, ActLayout::Nhwc), seed);
        let filter = fill::random_filter(Filter::for_shape(&shape, FilterLayout::Krsc), seed ^ 3);
        let expect = ndirect_baselines::naive::conv_ref(&input, &filter, &shape);
        let got = ndirect_core::conv_ndirect_nhwc_with(
            &pool, &input, &filter, &shape, &Schedule::minimal(&shape),
        );
        assert_close(
            got.as_slice(),
            expect.as_slice(),
            2e-4,
            &format!("case {case}: {shape}"),
        );
    }
}

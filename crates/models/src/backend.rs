//! Convolution backends for the engine, beyond the baseline set.
//!
//! The baselines crate defines the [`Convolution`] interface and implements
//! it for naive / im2col / blocked / indirect. Here we add the two nDirect
//! flavours the end-to-end figures need: model-scheduled nDirect (what
//! "MXNet+NDIRECT" measures) and per-shape autotuned nDirect (the Ansor
//! proxy, with the search cost paid offline exactly as the paper excludes
//! Ansor's tuning time).
//!
//! Both backends are built on the plan layer: the first call for a layer
//! builds a [`ConvPlan`] (schedule derivation, filter packing, scratch
//! allocation, all paid once) and every later call is the allocation-free
//! [`ConvPlan::execute`] hot path — the same amortization a framework
//! integration would do, so the end-to-end figures measure steady-state
//! inference rather than per-call setup.

use std::collections::HashMap;
use std::sync::Arc;

use ndirect_baselines::Convolution;
use ndirect_core::{ConvPlan, DepthwisePlan, FusedDwPwPlan, PlanKey, PlanRegistry, Schedule};
use ndirect_platform::Platform;
use ndirect_tensor::{ConvShape, Filter, Tensor4};
use ndirect_threads::StaticPool;

/// Looks up (or builds and caches) the plan for a layer; the registry
/// tracks the shape + frozen-filter identity so a rebuilt weight buffer
/// gets a fresh plan. A build failure at this level is a caller bug (bad
/// shape), so the backends keep their seed panic behaviour; the fallible
/// path lives in [`PlanRegistry::get_or_try_build`] for callers (the
/// serving layer) that handle refusals.
fn plan_for(
    cache: &PlanRegistry,
    key: PlanKey,
    build: impl FnOnce() -> Result<ConvPlan<'static>, ndirect_core::Error>,
) -> Arc<ConvPlan<'static>> {
    cache
        .get_or_try_build(key, build)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// nDirect with schedules derived from the analytic models, executed
/// through per-layer [`ConvPlan`]s (derived + packed once, reused).
pub struct NDirectBackend {
    platform: Platform,
    cache: PlanRegistry,
}

impl NDirectBackend {
    /// Backend deriving schedules for `platform`.
    pub fn new(platform: Platform) -> Self {
        Self {
            platform,
            cache: PlanRegistry::new(),
        }
    }

    /// Backend for the host machine.
    pub fn host() -> Self {
        Self::new(ndirect_platform::host())
    }

    /// Eagerly builds (and caches) the plan for a layer, so the first
    /// timed call doesn't pay schedule derivation + filter packing.
    /// Returns the plan for callers that want to execute it directly.
    pub fn prepare(
        &self,
        shape: &ConvShape,
        filter: &Filter,
        threads: usize,
    ) -> Arc<ConvPlan<'static>> {
        plan_for(&self.cache, PlanKey::new(shape, filter, threads), || {
            ConvPlan::try_new(&self.platform, shape, filter, threads)
        })
    }

    /// Eagerly builds (and caches) the plan for a depthwise layer, keyed
    /// like any other layer in the shared registry.
    pub fn prepare_depthwise(
        &self,
        shape: &ConvShape,
        filter: &Filter,
        threads: usize,
    ) -> Arc<DepthwisePlan<'static>> {
        self.cache
            .get_or_try_build_depthwise(PlanKey::new(shape, filter, threads), || {
                DepthwisePlan::try_new(shape, filter, threads)
            })
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Eagerly builds (and caches) the fused dw+pw plan for a
    /// depthwise-separable pair; `dw_shape` is the depthwise stage's shape
    /// and both frozen filter buffers join the cache key. `mid_relu`
    /// selects the in-slab ReLU and is part of the identity (`tag`), so
    /// both variants of a layer can coexist.
    pub fn prepare_fused(
        &self,
        dw_shape: &ConvShape,
        dw_filter: &Filter,
        pw_filter: &Filter,
        threads: usize,
        mid_relu: bool,
    ) -> Arc<FusedDwPwPlan<'static>> {
        let key = PlanKey::for_pair(dw_shape, dw_filter, pw_filter, threads, mid_relu as u64);
        self.cache
            .get_or_try_build_fused(key, || {
                FusedDwPwPlan::try_new(&self.platform, dw_shape, dw_filter, pw_filter, threads)
                    .map(|p| p.with_mid_relu(mid_relu))
            })
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Number of distinct layers planned so far.
    pub fn planned_layers(&self) -> usize {
        self.cache.len()
    }
}

impl Convolution for NDirectBackend {
    fn name(&self) -> &'static str {
        "nDirect"
    }

    fn accumulates(&self) -> bool {
        true // the micro-kernel's store is a read-add-write
    }

    fn conv(
        &self,
        pool: &StaticPool,
        input: &Tensor4,
        filter: &Filter,
        shape: &ConvShape,
        output: &mut Tensor4,
    ) {
        let plan = self.prepare(shape, filter, pool.size());
        plan.execute(pool, input, output)
            .unwrap_or_else(|e| panic!("{e}"));
    }
}

/// nDirect with externally supplied (e.g. autotuned) per-shape schedules;
/// shapes without an entry fall back to the analytic model. Tuned layers
/// are planned on first use too (the tuned schedule's own
/// [`ndirect_core::FilterState`] is honored).
pub struct TunedBackend {
    fallback: NDirectBackend,
    schedules: HashMap<ConvShape, Schedule>,
    cache: PlanRegistry,
    name: &'static str,
}

impl TunedBackend {
    /// Builds a tuned backend from a schedule table.
    pub fn new(schedules: HashMap<ConvShape, Schedule>, name: &'static str) -> Self {
        Self {
            fallback: NDirectBackend::host(),
            schedules,
            cache: PlanRegistry::new(),
            name,
        }
    }

    /// Number of tuned shapes.
    pub fn tuned_shapes(&self) -> usize {
        self.schedules.len()
    }
}

impl Convolution for TunedBackend {
    fn name(&self) -> &'static str {
        self.name
    }

    fn accumulates(&self) -> bool {
        true
    }

    fn conv(
        &self,
        pool: &StaticPool,
        input: &Tensor4,
        filter: &Filter,
        shape: &ConvShape,
        output: &mut Tensor4,
    ) {
        match self.schedules.get(shape) {
            Some(schedule) => {
                let plan = plan_for(&self.cache, PlanKey::new(shape, filter, pool.size()), || {
                    ConvPlan::try_with_schedule(shape, filter, schedule)
                });
                plan.execute(pool, input, output)
                    .unwrap_or_else(|e| panic!("{e}"));
            }
            None => self.fallback.conv(pool, input, filter, shape, output),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndirect_baselines::naive;
    use ndirect_tensor::{assert_close, fill, ActLayout, FilterLayout};

    fn problem() -> (ConvShape, Tensor4, Filter) {
        let shape = ConvShape::square(1, 6, 10, 9, 3, 1);
        (
            shape,
            fill::random_tensor(Tensor4::input_for(&shape, ActLayout::Nchw), 2),
            fill::random_filter(Filter::for_shape(&shape, FilterLayout::Kcrs), 2),
        )
    }

    #[test]
    fn ndirect_backend_matches_oracle() {
        let (shape, input, filter) = problem();
        let pool = StaticPool::new(2);
        let backend = NDirectBackend::host();
        let got = ndirect_baselines::run_backend(&backend, &pool, &input, &filter, &shape);
        let expect = naive::conv_ref(&input, &filter, &shape);
        assert_close(got.as_slice(), expect.as_slice(), 2e-4, "NDirectBackend");
    }

    #[test]
    fn plan_cache_reuses_one_plan_per_layer() {
        let (shape, input, filter) = problem();
        let pool = StaticPool::new(1);
        let backend = NDirectBackend::host();
        let a = ndirect_baselines::run_backend(&backend, &pool, &input, &filter, &shape);
        let b = ndirect_baselines::run_backend(&backend, &pool, &input, &filter, &shape);
        assert_eq!(a.as_slice(), b.as_slice(), "replanning must not change bits");
        assert_eq!(backend.planned_layers(), 1);

        // A different filter buffer for the same shape is a different
        // layer (the frozen-weights identity key).
        let filter2 = fill::random_filter(Filter::for_shape(&shape, FilterLayout::Kcrs), 7);
        let _ = ndirect_baselines::run_backend(&backend, &pool, &input, &filter2, &shape);
        assert_eq!(backend.planned_layers(), 2);
    }

    #[test]
    fn prepare_is_eager_and_conv_hits_the_cache() {
        let (shape, input, filter) = problem();
        let pool = StaticPool::new(1);
        let backend = NDirectBackend::host();
        let plan = backend.prepare(&shape, &filter, pool.size());
        assert_eq!(backend.planned_layers(), 1);
        let got = ndirect_baselines::run_backend(&backend, &pool, &input, &filter, &shape);
        assert_eq!(backend.planned_layers(), 1, "conv reused the prepared plan");
        // The prepared plan executes standalone too, bitwise identically.
        let mut out = Tensor4::output_for(&shape, ActLayout::Nchw);
        plan.execute(&pool, &input, &mut out).unwrap();
        assert_eq!(out.as_slice(), got.as_slice());
    }

    #[test]
    fn prepare_fused_caches_and_executes() {
        let dw_shape = ConvShape::new(
            1,
            8,
            10,
            10,
            8,
            3,
            3,
            1,
            ndirect_tensor::Padding::same(1),
        );
        let dwf = fill::random_filter(Filter::zeros(8, 1, 3, 3, FilterLayout::Kcrs), 4);
        let pwf = fill::random_filter(Filter::zeros(12, 8, 1, 1, FilterLayout::Kcrs), 5);
        let pool = StaticPool::new(1);
        let backend = NDirectBackend::host();

        let a = backend.prepare_fused(&dw_shape, &dwf, &pwf, 1, false);
        let b = backend.prepare_fused(&dw_shape, &dwf, &pwf, 1, false);
        assert!(Arc::ptr_eq(&a, &b), "second prepare is a cache hit");
        assert_eq!(backend.planned_layers(), 1);
        // The mid-relu variant is a distinct plan under the same pair.
        let c = backend.prepare_fused(&dw_shape, &dwf, &pwf, 1, true);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(backend.planned_layers(), 2);

        // The cached plan matches the unfused composition.
        let input = fill::random_tensor(Tensor4::input_for(&dw_shape, ActLayout::Nchw), 6);
        let mut out = Tensor4::zeros(1, 12, dw_shape.p(), dw_shape.q(), ActLayout::Nchw);
        a.execute(&pool, &input, &mut out).unwrap();
        let want =
            ndirect_core::conv_depthwise_separable(&pool, &input, &dwf, &pwf, &dw_shape);
        assert_close(out.as_slice(), want.as_slice(), 2e-4, "prepare_fused");
    }

    #[test]
    fn prepare_depthwise_caches_and_executes() {
        let dw_shape = ConvShape::new(
            1,
            6,
            9,
            9,
            6,
            3,
            3,
            1,
            ndirect_tensor::Padding::same(1),
        );
        let dwf = fill::random_filter(Filter::zeros(6, 1, 3, 3, FilterLayout::Kcrs), 7);
        let pool = StaticPool::new(1);
        let backend = NDirectBackend::host();
        let a = backend.prepare_depthwise(&dw_shape, &dwf, 1);
        let b = backend.prepare_depthwise(&dw_shape, &dwf, 1);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(backend.planned_layers(), 1);

        let input = fill::random_tensor(Tensor4::input_for(&dw_shape, ActLayout::Nchw), 8);
        let mut out = Tensor4::zeros(1, 6, dw_shape.p(), dw_shape.q(), ActLayout::Nchw);
        a.execute(&pool, &input, &mut out).unwrap();
        let want = ndirect_core::conv_depthwise(&pool, &input, &dwf, &dw_shape);
        assert_eq!(out.as_slice(), want.as_slice(), "same bits as the one-shot");
    }

    #[test]
    fn tuned_backend_uses_table_and_fallback() {
        let (shape, input, filter) = problem();
        let pool = StaticPool::new(1);
        let mut table = HashMap::new();
        table.insert(shape, Schedule::minimal(&shape));
        let backend = TunedBackend::new(table, "tuned");
        assert_eq!(backend.tuned_shapes(), 1);
        let got = ndirect_baselines::run_backend(&backend, &pool, &input, &filter, &shape);
        let expect = naive::conv_ref(&input, &filter, &shape);
        assert_close(got.as_slice(), expect.as_slice(), 2e-4, "TunedBackend");

        // A shape missing from the table falls back to the model.
        let other = ConvShape::square(1, 6, 8, 7, 3, 1);
        let input2 = fill::random_tensor(Tensor4::input_for(&other, ActLayout::Nchw), 3);
        let filter2 = fill::random_filter(Filter::for_shape(&other, FilterLayout::Kcrs), 3);
        let got2 = ndirect_baselines::run_backend(&backend, &pool, &input2, &filter2, &other);
        let expect2 = naive::conv_ref(&input2, &filter2, &other);
        assert_close(got2.as_slice(), expect2.as_slice(), 2e-4, "fallback");
    }
}

//! Convolution backends for the engine, beyond the baseline set.
//!
//! The baselines crate defines the [`Convolution`] interface and implements
//! it for naive / im2col / blocked / indirect. Here we add the two nDirect
//! flavours the end-to-end figures need: model-scheduled nDirect (what
//! "MXNet+NDIRECT" measures) and per-shape autotuned nDirect (the Ansor
//! proxy, with the search cost paid offline exactly as the paper excludes
//! Ansor's tuning time).

use std::collections::HashMap;

use ndirect_baselines::Convolution;
use ndirect_core::{conv_ndirect_into, Schedule};
use ndirect_platform::Platform;
use ndirect_tensor::{ConvShape, Filter, Tensor4};
use ndirect_threads::StaticPool;
use std::sync::Mutex;

/// nDirect with schedules derived from the analytic models at call time.
pub struct NDirectBackend {
    platform: Platform,
    /// Schedules are derived once per distinct shape and cached.
    cache: Mutex<HashMap<ConvShape, Schedule>>,
}

impl NDirectBackend {
    /// Backend deriving schedules for `platform`.
    pub fn new(platform: Platform) -> Self {
        Self {
            platform,
            cache: Mutex::new(HashMap::new()),
        }
    }

    /// Backend for the host machine.
    pub fn host() -> Self {
        Self::new(ndirect_platform::host())
    }

    fn schedule_for(&self, shape: &ConvShape, threads: usize) -> Schedule {
        let mut cache = self.cache.lock().unwrap_or_else(|p| p.into_inner());
        cache
            .entry(*shape)
            .or_insert_with(|| Schedule::derive(&self.platform, shape, threads))
            .clone()
    }
}

impl Convolution for NDirectBackend {
    fn name(&self) -> &'static str {
        "nDirect"
    }

    fn accumulates(&self) -> bool {
        true // the micro-kernel's store is a read-add-write
    }

    fn conv(
        &self,
        pool: &StaticPool,
        input: &Tensor4,
        filter: &Filter,
        shape: &ConvShape,
        output: &mut Tensor4,
    ) {
        let schedule = self.schedule_for(shape, pool.size());
        conv_ndirect_into(pool, input, filter, shape, &schedule, output);
    }
}

/// nDirect with externally supplied (e.g. autotuned) per-shape schedules;
/// shapes without an entry fall back to the analytic model.
pub struct TunedBackend {
    fallback: NDirectBackend,
    schedules: HashMap<ConvShape, Schedule>,
    name: &'static str,
}

impl TunedBackend {
    /// Builds a tuned backend from a schedule table.
    pub fn new(schedules: HashMap<ConvShape, Schedule>, name: &'static str) -> Self {
        Self {
            fallback: NDirectBackend::host(),
            schedules,
            name,
        }
    }

    /// Number of tuned shapes.
    pub fn tuned_shapes(&self) -> usize {
        self.schedules.len()
    }
}

impl Convolution for TunedBackend {
    fn name(&self) -> &'static str {
        self.name
    }

    fn accumulates(&self) -> bool {
        true
    }

    fn conv(
        &self,
        pool: &StaticPool,
        input: &Tensor4,
        filter: &Filter,
        shape: &ConvShape,
        output: &mut Tensor4,
    ) {
        match self.schedules.get(shape) {
            Some(schedule) => conv_ndirect_into(pool, input, filter, shape, schedule, output),
            None => self.fallback.conv(pool, input, filter, shape, output),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndirect_baselines::naive;
    use ndirect_tensor::{assert_close, fill, ActLayout, FilterLayout};

    fn problem() -> (ConvShape, Tensor4, Filter) {
        let shape = ConvShape::square(1, 6, 10, 9, 3, 1);
        (
            shape,
            fill::random_tensor(Tensor4::input_for(&shape, ActLayout::Nchw), 2),
            fill::random_filter(Filter::for_shape(&shape, FilterLayout::Kcrs), 2),
        )
    }

    #[test]
    fn ndirect_backend_matches_oracle() {
        let (shape, input, filter) = problem();
        let pool = StaticPool::new(2);
        let backend = NDirectBackend::host();
        let got = ndirect_baselines::run_backend(&backend, &pool, &input, &filter, &shape);
        let expect = naive::conv_ref(&input, &filter, &shape);
        assert_close(got.as_slice(), expect.as_slice(), 2e-4, "NDirectBackend");
    }

    #[test]
    fn schedule_cache_returns_consistent_entries() {
        let (shape, input, filter) = problem();
        let pool = StaticPool::new(1);
        let backend = NDirectBackend::host();
        let a = ndirect_baselines::run_backend(&backend, &pool, &input, &filter, &shape);
        let b = ndirect_baselines::run_backend(&backend, &pool, &input, &filter, &shape);
        assert_eq!(a.as_slice(), b.as_slice());
        assert_eq!(backend.cache.lock().unwrap().len(), 1);
    }

    #[test]
    fn tuned_backend_uses_table_and_fallback() {
        let (shape, input, filter) = problem();
        let pool = StaticPool::new(1);
        let mut table = HashMap::new();
        table.insert(shape, Schedule::minimal(&shape));
        let backend = TunedBackend::new(table, "tuned");
        assert_eq!(backend.tuned_shapes(), 1);
        let got = ndirect_baselines::run_backend(&backend, &pool, &input, &filter, &shape);
        let expect = naive::conv_ref(&input, &filter, &shape);
        assert_close(got.as_slice(), expect.as_slice(), 2e-4, "TunedBackend");

        // A shape missing from the table falls back to the model.
        let other = ConvShape::square(1, 6, 8, 7, 3, 1);
        let input2 = fill::random_tensor(Tensor4::input_for(&other, ActLayout::Nchw), 3);
        let filter2 = fill::random_filter(Filter::for_shape(&other, FilterLayout::Kcrs), 3);
        let got2 = ndirect_baselines::run_backend(&backend, &pool, &input2, &filter2, &other);
        let expect2 = naive::conv_ref(&input2, &filter2, &other);
        assert_close(got2.as_slice(), expect2.as_slice(), 2e-4, "fallback");
    }
}

//! CNN model zoo and inference engine for the end-to-end experiments.
//!
//! The paper's Figure 7 integrates nDirect into MXNet and times whole
//! ResNet-50/101 and VGG-16/19 forward passes against Ansor-tuned models
//! and MXNet's im2col+OpenBLAS path. This crate supplies the equivalent
//! substrate:
//!
//! * [`ops`] — the non-convolution operators a forward pass needs (bias /
//!   folded batch-norm, ReLU, max/global-average pooling, fully-connected,
//!   softmax, residual add);
//! * [`layer`] — a small sequential IR with a save/restore pair for
//!   residual blocks;
//! * [`zoo`] — ResNet-50/101 and VGG-16/19 builders with seeded random
//!   weights (weights are a data substitution — FP32 conv throughput is
//!   data-independent, see DESIGN.md);
//! * [`engine`] — a forward-pass interpreter with pluggable convolution
//!   backends and per-operator timing;
//! * [`backend`] — adapters exposing nDirect (model-scheduled or
//!   autotuned-per-shape) through the same [`ndirect_baselines::Convolution`]
//!   interface as the baselines.

// This crate has no business touching raw pointers; the auditor's
// lint-header rule holds that line at compile time.
#![forbid(unsafe_code)]

#![warn(missing_docs)]

pub mod backend;
pub mod engine;
pub mod error;
pub mod layer;
pub mod ops;
pub mod zoo;

pub use backend::{NDirectBackend, TunedBackend};
pub use engine::{Engine, InferenceStats};
pub use error::ModelError;
pub use layer::{ConvLayer, FcLayer, Model, Node};
pub use zoo::{mobilenet_lite, resnet101, resnet50, tiny_resnet, vgg16, vgg19};

//! The forward-pass interpreter.

use ndirect_baselines::Convolution;
use ndirect_tensor::{ActLayout, Tensor4};
use ndirect_threads::StaticPool;
use std::time::{Duration, Instant};

use crate::error::ModelError;
use crate::layer::{ConvLayer, Model, Node};
use crate::ops;

/// Per-run accounting.
#[derive(Debug, Clone, Default)]
pub struct InferenceStats {
    /// Wall time of the whole forward pass.
    pub total: Duration,
    /// Time spent inside convolution nodes (including shortcut
    /// projections) — the fraction the paper reports as dominant.
    pub conv_time: Duration,
    /// Number of convolutions executed.
    pub convs: usize,
}

impl InferenceStats {
    /// Convolution share of the total runtime.
    pub fn conv_fraction(&self) -> f64 {
        if self.total.is_zero() {
            return 0.0;
        }
        self.conv_time.as_secs_f64() / self.total.as_secs_f64()
    }
}

/// A forward-pass engine bound to a convolution backend and a thread pool.
pub struct Engine<'a> {
    backend: &'a dyn Convolution,
    pool: &'a StaticPool,
    fuse_residual: bool,
    fuse_dwpw: bool,
}

impl<'a> Engine<'a> {
    /// Builds an engine.
    pub fn new(backend: &'a dyn Convolution, pool: &'a StaticPool) -> Self {
        Self {
            backend,
            pool,
            fuse_residual: false,
            fuse_dwpw: false,
        }
    }

    /// Enables residual-add fusion — the operator-fusion class of
    /// optimization the paper credits Ansor's end-to-end wins to (§8.3).
    ///
    /// When the backend *accumulates* into its output
    /// ([`Convolution::accumulates`]), a `Conv → ResidualJoin(None)` pair
    /// with an identity post-affine is computed by seeding the conv's
    /// output buffer with the shortcut instead of zeros: the elementwise
    /// add (one full read+write pass over the feature map) disappears into
    /// the kernel's existing read-add-write store.
    pub fn with_residual_fusion(mut self, on: bool) -> Self {
        self.fuse_residual = on;
        self
    }

    /// Enables depthwise+pointwise fusion: a `DepthwiseConv → Conv(1×1)`
    /// pair with an identity depthwise post-affine runs as one
    /// [`ndirect_core::FusedDwPwPlan`] block — the depthwise intermediate
    /// stays in a cache-resident slab instead of round-tripping through
    /// memory (the MobileNet block's dominant cost). The depthwise ReLU,
    /// when present, is applied in-slab; the pointwise layer's affine and
    /// ReLU run on the fused output as usual. Like the depthwise operator
    /// itself, the fused block always runs nDirect regardless of the
    /// standard-conv backend.
    pub fn with_dwpw_fusion(mut self, on: bool) -> Self {
        self.fuse_dwpw = on;
        self
    }

    /// The backend's display name.
    pub fn backend_name(&self) -> &'static str {
        self.backend.name()
    }

    /// Runs `model` on an `NCHW` input batch, returning the final
    /// activation (post-softmax class probabilities for the zoo models)
    /// and timing stats.
    pub fn run(&self, model: &Model, input: &Tensor4) -> (Tensor4, InferenceStats) {
        self.try_run(model, input).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`Engine::run`]: geometry mismatches anywhere in
    /// the node list come back as a typed [`ModelError`] instead of a
    /// panic mid-inference.
    pub fn try_run(
        &self,
        model: &Model,
        input: &Tensor4,
    ) -> Result<(Tensor4, InferenceStats), ModelError> {
        let (c, h, w) = model.input;
        if (input.c(), input.h(), input.w()) != (c, h, w) {
            return Err(ModelError::InputMismatch {
                model: model.name.clone(),
                expected: (c, h, w),
                got: (input.c(), input.h(), input.w()),
            });
        }
        if input.layout() != ActLayout::Nchw {
            return Err(ModelError::Layout);
        }

        let mut stats = InferenceStats::default();
        let start = Instant::now();
        let mut act = input.clone();
        let mut saved: Option<Tensor4> = None;
        let mut skip_next_join = false;
        let mut skip_next_conv = false;
        for (i, node) in model.nodes.iter().enumerate() {
            // One timeline span per node so NDIRECT_PROBE traces show the
            // per-layer structure of a run (arg = node index).
            let _layer = ndirect_probe::probe_span!(Layer, i);
            match node {
                Node::Conv(layer) => {
                    if skip_next_conv {
                        // The preceding depthwise node already ran this
                        // 1×1 conv inside the fused dw+pw block.
                        skip_next_conv = false;
                        continue;
                    }
                    // Residual fusion: seed the conv output with the saved
                    // shortcut when the very next node joins it back with no
                    // projection and the conv has an identity post-affine.
                    let fusable = self.fuse_residual
                        && self.backend.accumulates()
                        && matches!(model.nodes.get(i + 1), Some(Node::ResidualJoin(None)))
                        && !layer.relu // the add must precede any ReLU
                        && layer.scale.iter().all(|&s| s == 1.0)
                        && layer.shift.iter().all(|&b| b == 0.0);
                    if fusable {
                        let (n, c, h, w) = act.dims();
                        let shape = layer.try_shape_for(n, c, h, w)?;
                        let shortcut = saved.take().ok_or(ModelError::MissingSave)?;
                        if shortcut.dims() != (n, layer.k, shape.p(), shape.q()) {
                            return Err(ModelError::ShortcutMismatch {
                                expected: (n, layer.k, shape.p(), shape.q()),
                                got: shortcut.dims(),
                            });
                        }
                        let t0 = Instant::now();
                        let mut out = shortcut;
                        self.backend
                            .conv(self.pool, &act, &layer.filter, &shape, &mut out);
                        stats.conv_time += t0.elapsed();
                        stats.convs += 1;
                        // The join this fusion replaces always ends in ReLU.
                        ops::relu(&mut out);
                        act = out;
                        skip_next_join = true;
                    } else {
                        act = self.conv_node(layer, &act, &mut stats)?;
                    }
                }
                Node::DepthwiseConv(layer) => {
                    // Dw+pw fusion: run the depthwise and the following
                    // 1×1 conv as one cache-resident block when the
                    // depthwise post-affine is the identity (its ReLU, if
                    // any, is applied in-slab between the stages).
                    let fusable = self.fuse_dwpw
                        && layer.scale.iter().all(|&s| s == 1.0)
                        && layer.shift.iter().all(|&b| b == 0.0)
                        && matches!(
                            model.nodes.get(i + 1),
                            Some(Node::Conv(pw)) if pw.rs == 1 && pw.stride == 1 && pw.pad == 0
                        );
                    if fusable {
                        let Some(Node::Conv(pw)) = model.nodes.get(i + 1) else {
                            unreachable!("fusable checked the next node is a Conv");
                        };
                        let (n, c, h, w) = act.dims();
                        let shape = layer.try_depthwise_shape_for(n, c, h, w)?;
                        let t0 = Instant::now();
                        let mut out = ndirect_core::try_conv_dwpw_fused_with(
                            self.pool,
                            &act,
                            &layer.filter,
                            &pw.filter,
                            &shape,
                            layer.relu,
                        )
                        .unwrap_or_else(|e| panic!("{e}"));
                        stats.conv_time += t0.elapsed();
                        stats.convs += 2; // dw + pw, same count as unfused
                        ops::scale_shift(&mut out, &pw.scale, &pw.shift);
                        if pw.relu {
                            ops::relu(&mut out);
                        }
                        act = out;
                        skip_next_conv = true;
                    } else {
                        act = self.depthwise_node(layer, &act, &mut stats)?;
                    }
                }
                Node::MaxPool(k, s, p) => act = ops::max_pool(&act, *k, *s, *p),
                Node::GlobalAvgPool => act = ops::global_avg_pool(&act),
                Node::Fc(fc) => {
                    act = ops::fully_connected(self.pool, &act, &fc.weight, &fc.bias);
                    if fc.relu {
                        ops::relu(&mut act);
                    }
                }
                Node::Softmax => ops::softmax(&mut act),
                Node::Save => saved = Some(act.clone()),
                Node::ResidualJoin(proj) => {
                    if skip_next_join {
                        // The preceding conv already consumed the shortcut;
                        // it also applied the trailing ReLU.
                        skip_next_join = false;
                        continue;
                    }
                    let shortcut_in = saved.take().ok_or(ModelError::MissingSave)?;
                    let shortcut = match proj {
                        Some(layer) => self.conv_node(layer, &shortcut_in, &mut stats)?,
                        None => shortcut_in,
                    };
                    ops::add_inplace(&mut act, &shortcut);
                    ops::relu(&mut act);
                }
            }
        }
        stats.total = start.elapsed();
        Ok((act, stats))
    }

    /// Depthwise layers always run nDirect's depthwise kernel — none of
    /// the baseline libraries implement depthwise, so (as in real
    /// frameworks) the operator is routed to the dedicated implementation
    /// regardless of the standard-conv backend.
    fn depthwise_node(
        &self,
        layer: &ConvLayer,
        act: &Tensor4,
        stats: &mut InferenceStats,
    ) -> Result<Tensor4, ModelError> {
        let (n, c, h, w) = act.dims();
        let shape = layer.try_depthwise_shape_for(n, c, h, w)?;
        let t0 = Instant::now();
        let mut out = ndirect_core::conv_depthwise(self.pool, act, &layer.filter, &shape);
        stats.conv_time += t0.elapsed();
        stats.convs += 1;
        ops::scale_shift(&mut out, &layer.scale, &layer.shift);
        if layer.relu {
            ops::relu(&mut out);
        }
        Ok(out)
    }

    fn conv_node(
        &self,
        layer: &ConvLayer,
        act: &Tensor4,
        stats: &mut InferenceStats,
    ) -> Result<Tensor4, ModelError> {
        let (n, c, h, w) = act.dims();
        let shape = layer.try_shape_for(n, c, h, w)?;
        let t0 = Instant::now();
        let mut out = Tensor4::output_for(&shape, ActLayout::Nchw);
        self.backend
            .conv(self.pool, act, &layer.filter, &shape, &mut out);
        stats.conv_time += t0.elapsed();
        stats.convs += 1;
        ops::scale_shift(&mut out, &layer.scale, &layer.shift);
        if layer.relu {
            ops::relu(&mut out);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::FcLayer;
    use ndirect_baselines::{Im2colBackend, NaiveBackend};
    use ndirect_tensor::{fill, Filter, FilterLayout};

    fn tiny_model(seed: u64) -> Model {
        let mk_conv = |c: usize, k: usize, rs: usize, stride: usize, pad: usize, relu: bool| {
            crate::layer::ConvLayer {
                k,
                rs,
                stride,
                pad,
                filter: fill::random_filter(
                    Filter::zeros(k, c, rs, rs, FilterLayout::Kcrs),
                    seed ^ (c as u64) << 8 ^ k as u64,
                ),
                scale: vec![0.5; k],
                shift: vec![0.1; k],
                relu,
            }
        };
        Model {
            name: "tiny".into(),
            input: (3, 12, 12),
            nodes: vec![
                Node::Conv(mk_conv(3, 8, 3, 1, 1, true)),
                Node::Save,
                Node::Conv(mk_conv(8, 8, 3, 1, 1, true)),
                Node::Conv(mk_conv(8, 8, 3, 1, 1, false)),
                Node::ResidualJoin(None),
                Node::MaxPool(2, 2, 0),
                Node::Save,
                Node::Conv(mk_conv(8, 16, 3, 2, 1, false)),
                Node::ResidualJoin(Some(mk_conv(8, 16, 1, 2, 0, false))),
                Node::GlobalAvgPool,
                Node::Fc(FcLayer {
                    out: 10,
                    weight: (0..10 * 16).map(|i| ((i % 7) as f32 - 3.0) * 0.1).collect(),
                    bias: vec![0.05; 10],
                    relu: false,
                }),
                Node::Softmax,
            ],
        }
    }

    #[test]
    fn engine_runs_and_outputs_probabilities() {
        let model = tiny_model(11);
        let pool = StaticPool::new(1);
        let engine = Engine::new(&NaiveBackend, &pool);
        let input = fill::random_tensor(Tensor4::zeros(2, 3, 12, 12, ActLayout::Nchw), 5);
        let (out, stats) = engine.run(&model, &input);
        assert_eq!(out.dims(), (2, 10, 1, 1));
        for n in 0..2 {
            let sum: f32 = (0..10).map(|c| out.at(n, c, 0, 0)).sum();
            assert!((sum - 1.0).abs() < 1e-4);
        }
        assert_eq!(stats.convs, 5, "4 main convs + 1 projection");
        assert!(stats.conv_time <= stats.total);
    }

    #[test]
    fn backends_agree_end_to_end() {
        let model = tiny_model(13);
        let pool = StaticPool::new(2);
        let input = fill::random_tensor(Tensor4::zeros(2, 3, 12, 12, ActLayout::Nchw), 6);
        let (ref_out, _) = Engine::new(&NaiveBackend, &pool).run(&model, &input);
        let (gemm_out, _) = Engine::new(&Im2colBackend, &pool).run(&model, &input);
        let nd = crate::backend::NDirectBackend::host();
        let (nd_out, _) = Engine::new(&nd, &pool).run(&model, &input);
        ndirect_tensor::assert_close(gemm_out.as_slice(), ref_out.as_slice(), 1e-3, "im2col e2e");
        ndirect_tensor::assert_close(nd_out.as_slice(), ref_out.as_slice(), 1e-3, "ndirect e2e");
    }

    #[test]
    fn residual_fusion_matches_unfused() {
        // tiny_resnet has identity-shortcut bottlenecks with unit affines —
        // the fusable pattern (tiny_model's scale=0.5 blocks fusion).
        let model = crate::zoo::tiny_resnet(21);
        let pool = StaticPool::new(2);
        let nd = crate::backend::NDirectBackend::host();
        let input = fill::random_tensor(Tensor4::zeros(2, 3, 32, 32, ActLayout::Nchw), 22);
        let (plain, s_plain) = Engine::new(&nd, &pool).run(&model, &input);
        let (fused, s_fused) = Engine::new(&nd, &pool)
            .with_residual_fusion(true)
            .run(&model, &input);
        // Same convs executed; the identity-shortcut block fuses.
        assert_eq!(s_plain.convs, s_fused.convs);
        ndirect_tensor::assert_close(
            fused.as_slice(),
            plain.as_slice(),
            1e-4,
            "residual fusion",
        );
    }

    #[test]
    fn dwpw_fusion_matches_unfused() {
        // mobilenet_lite's dw layers carry identity affines with ReLU —
        // exactly the fusable pattern; every dw→pw pair fuses.
        let model = crate::zoo::mobilenet_lite(31);
        let pool = StaticPool::new(2);
        let nd = crate::backend::NDirectBackend::host();
        let input = fill::random_tensor(Tensor4::zeros(1, 3, 224, 224, ActLayout::Nchw), 32);
        let (plain, s_plain) = Engine::new(&nd, &pool).run(&model, &input);
        let (fused, s_fused) = Engine::new(&nd, &pool)
            .with_dwpw_fusion(true)
            .run(&model, &input);
        assert_eq!(s_plain.convs, s_fused.convs, "fusion keeps the conv count");
        ndirect_tensor::assert_close(
            fused.as_slice(),
            plain.as_slice(),
            1e-4,
            "dwpw fusion",
        );
    }

    #[test]
    fn dwpw_fusion_skips_non_identity_depthwise_affine() {
        // A dw layer with a real affine must fall back to the unfused
        // path (the affine runs between the stages).
        let pool = StaticPool::new(1);
        let mk = |c: usize, k: usize| {
            fill::random_filter(Filter::zeros(k, c, 1, 1, FilterLayout::Kcrs), 41)
        };
        let dw = crate::layer::ConvLayer {
            k: 8,
            rs: 3,
            stride: 1,
            pad: 1,
            filter: fill::random_filter(Filter::zeros(8, 1, 3, 3, FilterLayout::Kcrs), 42),
            scale: vec![0.5; 8],
            shift: vec![0.1; 8],
            relu: true,
        };
        let pw = crate::layer::ConvLayer {
            k: 12,
            rs: 1,
            stride: 1,
            pad: 0,
            filter: mk(8, 12),
            scale: vec![1.0; 12],
            shift: vec![0.0; 12],
            relu: true,
        };
        let model = Model {
            name: "affine-dw".into(),
            input: (8, 10, 10),
            nodes: vec![Node::DepthwiseConv(dw), Node::Conv(pw)],
        };
        let nd = crate::backend::NDirectBackend::host();
        let input = fill::random_tensor(Tensor4::zeros(1, 8, 10, 10, ActLayout::Nchw), 43);
        let (plain, _) = Engine::new(&nd, &pool).run(&model, &input);
        let (maybe_fused, _) = Engine::new(&nd, &pool)
            .with_dwpw_fusion(true)
            .run(&model, &input);
        assert_eq!(plain.as_slice(), maybe_fused.as_slice(), "must not fuse");
    }

    #[test]
    fn residual_fusion_noop_for_non_accumulating_backend() {
        let model = tiny_model(23);
        let pool = StaticPool::new(1);
        let input = fill::random_tensor(Tensor4::zeros(1, 3, 12, 12, ActLayout::Nchw), 24);
        // NaiveBackend overwrites its output, so fusion must not trigger.
        let (a, _) = Engine::new(&NaiveBackend, &pool).run(&model, &input);
        let (b, _) = Engine::new(&NaiveBackend, &pool)
            .with_residual_fusion(true)
            .run(&model, &input);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    #[should_panic(expected = "input does not match")]
    fn engine_rejects_wrong_input_shape() {
        let model = tiny_model(1);
        let pool = StaticPool::new(1);
        let engine = Engine::new(&NaiveBackend, &pool);
        let input = Tensor4::zeros(1, 3, 10, 10, ActLayout::Nchw);
        engine.run(&model, &input);
    }
}

//! The model zoo: ResNet-50/101 and VGG-16/19 with seeded random weights.
//!
//! Weights use He-style uniform initialization (`±√(6/fan_in)`) so
//! activations stay numerically sane through deep stacks — the data
//! substitution DESIGN.md documents (throughput is data-independent; we
//! validate numerics, not ImageNet accuracy).

use ndirect_tensor::{Filter, FilterLayout};
use ndirect_support::Rng64;

use crate::layer::{ConvLayer, FcLayer, Model, Node};

fn he_filter(k: usize, c: usize, rs: usize, rng: &mut Rng64) -> Filter {
    let mut f = Filter::zeros(k, c, rs, rs, FilterLayout::Kcrs);
    let bound = (6.0 / (c * rs * rs) as f32).sqrt();
    for x in f.as_mut_slice() {
        *x = rng.gen_range_f32(-bound, bound);
    }
    f
}

fn conv(c: usize, k: usize, rs: usize, stride: usize, pad: usize, relu: bool, rng: &mut Rng64) -> ConvLayer {
    ConvLayer {
        k,
        rs,
        stride,
        pad,
        filter: he_filter(k, c, rs, rng),
        scale: vec![1.0; k],
        shift: vec![0.0; k],
        relu,
    }
}

fn fc(input: usize, out: usize, relu: bool, rng: &mut Rng64) -> FcLayer {
    let bound = (6.0 / input as f32).sqrt();
    FcLayer {
        out,
        weight: (0..out * input).map(|_| rng.gen_range_f32(-bound, bound)).collect(),
        bias: vec![0.0; out],
        relu,
    }
}

/// One ResNet bottleneck: `1×1 → 3×3(stride) → 1×1(×4)` with identity or
/// projection shortcut.
fn bottleneck(
    nodes: &mut Vec<Node>,
    in_ch: usize,
    mid: usize,
    stride: usize,
    project: bool,
    rng: &mut Rng64,
) -> usize {
    let out_ch = mid * 4;
    nodes.push(Node::Save);
    nodes.push(Node::Conv(conv(in_ch, mid, 1, 1, 0, true, rng)));
    nodes.push(Node::Conv(conv(mid, mid, 3, stride, 1, true, rng)));
    nodes.push(Node::Conv(conv(mid, out_ch, 1, 1, 0, false, rng)));
    let shortcut = if project || stride != 1 || in_ch != out_ch {
        Some(conv(in_ch, out_ch, 1, stride, 0, false, rng))
    } else {
        None
    };
    nodes.push(Node::ResidualJoin(shortcut));
    out_ch
}

/// A ResNet with bottleneck counts per stage (ResNet-50: `[3,4,6,3]`,
/// ResNet-101: `[3,4,23,3]`), ImageNet geometry (3×224×224 input,
/// 1000 classes).
fn resnet(name: &str, blocks: [usize; 4], seed: u64) -> Model {
    let mut rng = Rng64::seed_from_u64(seed);
    let mut nodes = Vec::new();
    // Stem: 7x7/2 + 3x3/2 max pool.
    nodes.push(Node::Conv(conv(3, 64, 7, 2, 3, true, &mut rng)));
    nodes.push(Node::MaxPool(3, 2, 1));
    let mut ch = 64;
    let mids = [64usize, 128, 256, 512];
    for (stage, (&count, &mid)) in blocks.iter().zip(&mids).enumerate() {
        for b in 0..count {
            let stride = if stage > 0 && b == 0 { 2 } else { 1 };
            ch = bottleneck(&mut nodes, ch, mid, stride, b == 0, &mut rng);
        }
    }
    nodes.push(Node::GlobalAvgPool);
    nodes.push(Node::Fc(fc(ch, 1000, false, &mut rng)));
    nodes.push(Node::Softmax);
    Model {
        name: name.into(),
        input: (3, 224, 224),
        nodes,
    }
}

/// ResNet-50.
pub fn resnet50(seed: u64) -> Model {
    resnet("ResNet-50", [3, 4, 6, 3], seed)
}

/// ResNet-101.
pub fn resnet101(seed: u64) -> Model {
    resnet("ResNet-101", [3, 4, 23, 3], seed)
}

/// A VGG with per-stage 3×3-conv counts (VGG-16: `[2,2,3,3,3]`,
/// VGG-19: `[2,2,4,4,4]`), ImageNet geometry.
fn vgg(name: &str, convs_per_stage: [usize; 5], seed: u64) -> Model {
    let mut rng = Rng64::seed_from_u64(seed);
    let widths = [64usize, 128, 256, 512, 512];
    let mut nodes = Vec::new();
    let mut ch = 3;
    for (&count, &width) in convs_per_stage.iter().zip(&widths) {
        for _ in 0..count {
            nodes.push(Node::Conv(conv(ch, width, 3, 1, 1, true, &mut rng)));
            ch = width;
        }
        nodes.push(Node::MaxPool(2, 2, 0));
    }
    // 224 / 2^5 = 7 spatial, so the classifier sees 512·7·7.
    nodes.push(Node::Fc(fc(512 * 7 * 7, 4096, true, &mut rng)));
    nodes.push(Node::Fc(fc(4096, 4096, true, &mut rng)));
    nodes.push(Node::Fc(fc(4096, 1000, false, &mut rng)));
    nodes.push(Node::Softmax);
    Model {
        name: name.into(),
        input: (3, 224, 224),
        nodes,
    }
}

/// VGG-16.
pub fn vgg16(seed: u64) -> Model {
    vgg("VGG-16", [2, 2, 3, 3, 3], seed)
}

/// VGG-19.
pub fn vgg19(seed: u64) -> Model {
    vgg("VGG-19", [2, 2, 4, 4, 4], seed)
}

/// A MobileNet-v1-style network built from depthwise-separable blocks
/// (§10.2's DSC workload): stem conv, then `dw3×3 → pw1×1` pairs with the
/// standard width/stride progression, at 0.25× width so end-to-end runs
/// stay light. ImageNet geometry (3×224×224, 1000 classes).
pub fn mobilenet_lite(seed: u64) -> Model {
    let mut rng = Rng64::seed_from_u64(seed);
    let mut nodes = Vec::new();
    let widths_and_strides: [(usize, usize); 13] = [
        (16, 1),
        (32, 2),
        (32, 1),
        (64, 2),
        (64, 1),
        (128, 2),
        (128, 1),
        (128, 1),
        (128, 1),
        (128, 1),
        (128, 1),
        (256, 2),
        (256, 1),
    ];
    // Stem: 3x3/2 to 8 channels (0.25 × MobileNet's 32).
    nodes.push(Node::Conv(conv(3, 8, 3, 2, 1, true, &mut rng)));
    let mut ch = 8;
    for (width, stride) in widths_and_strides {
        // Depthwise 3x3 (stride on the dw stage, as in MobileNet)…
        nodes.push(Node::DepthwiseConv(ConvLayer {
            k: ch,
            rs: 3,
            stride,
            pad: 1,
            filter: he_filter(ch, 1, 3, &mut rng),
            scale: vec![1.0; ch],
            shift: vec![0.0; ch],
            relu: true,
        }));
        // …then pointwise 1x1 to the new width.
        nodes.push(Node::Conv(conv(ch, width, 1, 1, 0, true, &mut rng)));
        ch = width;
    }
    nodes.push(Node::GlobalAvgPool);
    nodes.push(Node::Fc(fc(ch, 1000, false, &mut rng)));
    nodes.push(Node::Softmax);
    Model {
        name: "MobileNet-lite".into(),
        input: (3, 224, 224),
        nodes,
    }
}

/// A scaled-down ResNet-style model for tests: same block structure on a
/// `3×32×32` input with thin channels, 10 classes.
pub fn tiny_resnet(seed: u64) -> Model {
    let mut rng = Rng64::seed_from_u64(seed);
    let mut nodes = Vec::new();
    nodes.push(Node::Conv(conv(3, 8, 3, 1, 1, true, &mut rng)));
    let mut ch = 8;
    for (stage, mid) in [4usize, 8].iter().enumerate() {
        for b in 0..2 {
            let stride = if stage > 0 && b == 0 { 2 } else { 1 };
            ch = bottleneck(&mut nodes, ch, *mid, stride, b == 0, &mut rng);
        }
    }
    nodes.push(Node::GlobalAvgPool);
    nodes.push(Node::Fc(fc(ch, 10, false, &mut rng)));
    nodes.push(Node::Softmax);
    Model {
        name: "TinyResNet".into(),
        input: (3, 32, 32),
        nodes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet50_structure() {
        let m = resnet50(0);
        // 1 stem + (3+4+6+3) blocks × 3 convs + 4 projections = 53 convs.
        assert_eq!(m.conv_count(), 1 + 16 * 3 + 4);
        // ~25.5M parameters in the reference network; random weights have
        // identical shapes.
        let params = m.params();
        assert!((24_000_000..27_500_000).contains(&params), "{params}");
    }

    #[test]
    fn resnet101_has_more_blocks() {
        let m = resnet101(0);
        assert_eq!(m.conv_count(), 1 + 33 * 3 + 4);
        assert!(m.params() > resnet50(0).params());
    }

    #[test]
    fn vgg16_structure_and_flops() {
        let m = vgg16(0);
        assert_eq!(m.conv_count(), 13);
        // Conv FLOPs of VGG-16 at batch 1 ≈ 30.7 GFLOP (2 per MAC).
        let gflop = m.conv_flops(1) as f64 / 1e9;
        assert!((28.0..33.0).contains(&gflop), "{gflop}");
        // ~138M params (dominated by the classifier).
        assert!((130_000_000..145_000_000).contains(&m.params()));
    }

    #[test]
    fn vgg19_has_four_more_convs() {
        assert_eq!(vgg19(0).conv_count(), vgg16(0).conv_count() + 3);
    }

    #[test]
    fn resnet50_conv_flops_match_reference() {
        // Reference conv-only forward cost ≈ 8.2 GFLOP at batch 1
        // (2 FLOPs per MAC convention).
        let gflop = resnet50(0).conv_flops(1) as f64 / 1e9;
        assert!((7.0..9.0).contains(&gflop), "{gflop}");
    }

    #[test]
    fn seeded_builders_are_deterministic() {
        let a = resnet50(42);
        let b = resnet50(42);
        let (Node::Conv(ca), Node::Conv(cb)) = (&a.nodes[0], &b.nodes[0]) else {
            panic!("stem must be a conv");
        };
        assert_eq!(ca.filter.as_slice(), cb.filter.as_slice());
    }

    #[test]
    fn mobilenet_lite_structure() {
        let m = mobilenet_lite(0);
        // 1 stem + 13 dw + 13 pw = 27 conv nodes.
        assert_eq!(m.conv_count(), 27);
        // Depthwise flops are counted without channel reduction; the total
        // is dominated by the pointwise stages.
        let flops = m.conv_flops(1);
        assert!(flops > 0);
        let shapes = m.conv_shapes(1);
        // conv_shapes excludes depthwise nodes (dedicated kernel).
        assert_eq!(shapes.len(), 14);
        // Final feature map is 7x7x256.
        let last = shapes.last().unwrap();
        assert_eq!((last.k, last.p(), last.q()), (256, 7, 7));
    }

    #[test]
    fn tiny_resnet_is_small_and_well_formed() {
        let m = tiny_resnet(1);
        assert!(m.params() < 100_000);
        assert_eq!(m.input, (3, 32, 32));
        assert_eq!(m.conv_count(), 1 + 4 * 3 + 2);
    }
}

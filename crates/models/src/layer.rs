//! The model IR: a sequential node list with one save slot for residuals.

use ndirect_tensor::{ConvShape, Filter, Padding};

use crate::error::ModelError;

/// A convolution layer with folded batch-norm and optional ReLU.
#[derive(Debug, Clone)]
pub struct ConvLayer {
    /// Output channels.
    pub k: usize,
    /// Kernel size (square).
    pub rs: usize,
    /// Stride.
    pub stride: usize,
    /// Symmetric padding.
    pub pad: usize,
    /// `KCRS` weights.
    pub filter: Filter,
    /// Folded batch-norm scale per output channel (`1.0` = none).
    pub scale: Vec<f32>,
    /// Folded batch-norm shift / bias per output channel.
    pub shift: Vec<f32>,
    /// Apply ReLU after the affine.
    pub relu: bool,
}

impl ConvLayer {
    /// The [`ConvShape`] this layer induces on an input of `(n, c, h, w)`.
    pub fn shape_for(&self, n: usize, c: usize, h: usize, w: usize) -> ConvShape {
        self.try_shape_for(n, c, h, w).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`ConvLayer::shape_for`].
    pub fn try_shape_for(
        &self,
        n: usize,
        c: usize,
        h: usize,
        w: usize,
    ) -> Result<ConvShape, ModelError> {
        if c != self.filter.c() {
            return Err(ModelError::ChannelMismatch {
                layer_c: self.filter.c(),
                input_c: c,
            });
        }
        Ok(ConvShape::try_new(
            n,
            c,
            h,
            w,
            self.k,
            self.rs,
            self.rs,
            self.stride,
            Padding::same(self.pad),
        )?)
    }

    /// The [`ConvShape`] of this layer used as a *depthwise* convolution
    /// on `(n, c, h, w)` input: filter is `(C, 1, R, S)`, output has `C`
    /// channels.
    pub fn depthwise_shape_for(&self, n: usize, c: usize, h: usize, w: usize) -> ConvShape {
        self.try_depthwise_shape_for(n, c, h, w)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`ConvLayer::depthwise_shape_for`].
    pub fn try_depthwise_shape_for(
        &self,
        n: usize,
        c: usize,
        h: usize,
        w: usize,
    ) -> Result<ConvShape, ModelError> {
        if self.filter.c() != 1 {
            return Err(ModelError::Depthwise {
                context: format!(
                    "depthwise filter has one channel per group, got {}",
                    self.filter.c()
                ),
            });
        }
        if self.filter.k() != c || self.k != c {
            return Err(ModelError::Depthwise {
                context: format!(
                    "depthwise filter count must equal channels (multiplier 1): \
                     filter K={}, layer k={}, activation C={c}",
                    self.filter.k(),
                    self.k
                ),
            });
        }
        Ok(ConvShape::try_new(
            n,
            c,
            h,
            w,
            c,
            self.rs,
            self.rs,
            self.stride,
            Padding::same(self.pad),
        )?)
    }

    /// Parameter count (weights + scale + shift).
    pub fn params(&self) -> usize {
        self.filter.len() + self.scale.len() + self.shift.len()
    }

    /// Folds an inference-form batch-norm `(γ, β, μ, σ², ε)` into the
    /// layer's per-channel affine: `scale ← γ/√(σ²+ε) · scale`,
    /// `shift ← γ/√(σ²+ε)·(shift − μ) + β`. Composes with an existing
    /// affine, so bias-then-BN folds correctly.
    pub fn fold_batchnorm(
        &mut self,
        gamma: &[f32],
        beta: &[f32],
        mean: &[f32],
        var: &[f32],
        eps: f32,
    ) {
        assert_eq!(gamma.len(), self.k, "gamma len");
        assert_eq!(beta.len(), self.k, "beta len");
        assert_eq!(mean.len(), self.k, "mean len");
        assert_eq!(var.len(), self.k, "var len");
        for k in 0..self.k {
            let inv_std = gamma[k] / (var[k] + eps).sqrt();
            self.scale[k] *= inv_std;
            self.shift[k] = inv_std * (self.shift[k] - mean[k]) + beta[k];
        }
    }
}

/// A fully-connected layer.
#[derive(Debug, Clone)]
pub struct FcLayer {
    /// Output features.
    pub out: usize,
    /// `out × in` row-major weights.
    pub weight: Vec<f32>,
    /// `out` biases.
    pub bias: Vec<f32>,
    /// Apply ReLU after.
    pub relu: bool,
}

/// One step of a forward pass.
#[derive(Debug, Clone)]
pub enum Node {
    /// Convolution (+ folded BN + optional ReLU).
    Conv(ConvLayer),
    /// Depthwise convolution (channel multiplier 1): the layer's filter is
    /// `(C, 1, R, S)` and `k == c`. Runs through nDirect's depthwise
    /// kernel (§10.2) — the baselines do not implement depthwise, matching
    /// how frameworks route DSC blocks to a dedicated operator.
    DepthwiseConv(ConvLayer),
    /// Max pooling `(k, stride, pad)`.
    MaxPool(usize, usize, usize),
    /// Global average pooling to `1×1`.
    GlobalAvgPool,
    /// Fully connected (+ optional ReLU).
    Fc(FcLayer),
    /// Softmax over channels.
    Softmax,
    /// Save the current activation (start of a residual block).
    Save,
    /// Residual join: add the saved activation — passed through an optional
    /// projection conv (the downsampling shortcut) — then ReLU.
    ResidualJoin(Option<ConvLayer>),
}

/// A whole model.
#[derive(Debug, Clone)]
pub struct Model {
    /// Display name ("ResNet-50", …).
    pub name: String,
    /// Expected input: `(channels, height, width)`.
    pub input: (usize, usize, usize),
    /// Forward-pass steps in execution order.
    pub nodes: Vec<Node>,
}

impl Model {
    /// Total parameter count.
    pub fn params(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| match n {
                Node::Conv(c) | Node::DepthwiseConv(c) => c.params(),
                Node::Fc(f) => f.weight.len() + f.bias.len(),
                Node::ResidualJoin(Some(c)) => c.params(),
                _ => 0,
            })
            .sum()
    }

    /// Number of convolution nodes (projection shortcuts included).
    pub fn conv_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| {
                matches!(
                    n,
                    Node::Conv(_) | Node::DepthwiseConv(_) | Node::ResidualJoin(Some(_))
                )
            })
            .count()
    }

    /// Every convolution's [`ConvShape`] for batch size `n`, in execution
    /// order (projection shortcuts included) — what a per-shape tuner needs.
    pub fn conv_shapes(&self, n: usize) -> Vec<ConvShape> {
        let (mut c, mut h, mut w) = self.input;
        let mut saved: Option<(usize, usize, usize)> = None;
        let mut shapes = Vec::new();
        for node in &self.nodes {
            match node {
                Node::Conv(l) => {
                    let s = l.shape_for(n, c, h, w);
                    shapes.push(s);
                    c = l.k;
                    h = s.p();
                    w = s.q();
                }
                Node::DepthwiseConv(l) => {
                    // Depthwise layers run a dedicated kernel; they update
                    // geometry but are not candidates for the standard-conv
                    // tuner.
                    let s = l.depthwise_shape_for(n, c, h, w);
                    h = s.p();
                    w = s.q();
                }
                Node::MaxPool(k, st, p) => {
                    h = (h + 2 * p - k) / st + 1;
                    w = (w + 2 * p - k) / st + 1;
                }
                Node::GlobalAvgPool => {
                    h = 1;
                    w = 1;
                }
                Node::Fc(f) => {
                    c = f.out;
                    h = 1;
                    w = 1;
                }
                Node::Softmax => {}
                Node::Save => saved = Some((c, h, w)),
                Node::ResidualJoin(proj) => {
                    if let (Some(l), Some((sc, sh, sw))) = (proj, saved) {
                        shapes.push(l.shape_for(n, sc, sh, sw));
                    }
                    saved = None;
                }
            }
        }
        shapes
    }

    /// Total convolution FLOPs for batch size `n` (the >90% the paper
    /// attributes to conv), including depthwise layers
    /// (`2·N·C·P·Q·R·S` each — no channel reduction).
    pub fn conv_flops(&self, n: usize) -> u64 {
        let standard: u64 = self.conv_shapes(n).iter().map(|s| s.flops()).sum();
        // Re-walk for the depthwise contribution.
        let (mut c, mut h, mut w) = self.input;
        let mut dw = 0u64;
        for node in &self.nodes {
            match node {
                Node::Conv(l) => {
                    let s = l.shape_for(n, c, h, w);
                    c = l.k;
                    h = s.p();
                    w = s.q();
                }
                Node::DepthwiseConv(l) => {
                    let s = l.depthwise_shape_for(n, c, h, w);
                    dw += 2 * (n * c * s.p() * s.q()) as u64 * (l.rs * l.rs) as u64;
                    h = s.p();
                    w = s.q();
                }
                Node::MaxPool(k, st, p) => {
                    h = (h + 2 * p - k) / st + 1;
                    w = (w + 2 * p - k) / st + 1;
                }
                Node::GlobalAvgPool => {
                    h = 1;
                    w = 1;
                }
                Node::Fc(f) => {
                    c = f.out;
                    h = 1;
                    w = 1;
                }
                _ => {}
            }
        }
        standard + dw
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndirect_tensor::FilterLayout;

    fn conv(c: usize, k: usize, rs: usize, stride: usize, pad: usize) -> ConvLayer {
        ConvLayer {
            k,
            rs,
            stride,
            pad,
            filter: Filter::zeros(k, c, rs, rs, FilterLayout::Kcrs),
            scale: vec![1.0; k],
            shift: vec![0.0; k],
            relu: true,
        }
    }

    #[test]
    fn fold_batchnorm_equals_explicit_bn() {
        use ndirect_tensor::fill;
        // conv -> explicit BN must equal conv with the BN folded in.
        let mut layer = conv(2, 3, 3, 1, 1);
        fill::fill_random(layer.filter.as_mut_slice(), 7);
        layer.shift = vec![0.1, -0.2, 0.3]; // pre-existing bias
        let gamma = [1.5, 0.7, -1.1];
        let beta = [0.2, 0.0, -0.4];
        let mean = [0.05, -0.1, 0.2];
        let var = [1.2, 0.8, 2.0];
        let eps = 1e-5;

        let input = fill::random_tensor(
            ndirect_tensor::Tensor4::zeros(1, 2, 6, 6, ndirect_tensor::ActLayout::Nchw),
            8,
        );
        let shape = layer.shape_for(1, 2, 6, 6);

        // Reference: conv, + bias, then explicit BN.
        let mut reference =
            ndirect_baselines::naive::conv_ref(&input, &layer.filter, &shape);
        crate::ops::scale_shift(&mut reference, &layer.scale, &layer.shift);
        crate::ops::batch_norm(&mut reference, &gamma, &beta, &mean, &var, eps);

        // Folded: conv then the layer's affine.
        let mut folded_layer = layer.clone();
        folded_layer.fold_batchnorm(&gamma, &beta, &mean, &var, eps);
        let mut folded =
            ndirect_baselines::naive::conv_ref(&input, &folded_layer.filter, &shape);
        crate::ops::scale_shift(&mut folded, &folded_layer.scale, &folded_layer.shift);

        ndirect_tensor::assert_close(
            folded.as_slice(),
            reference.as_slice(),
            1e-5,
            "BN folding",
        );
    }

    #[test]
    fn conv_layer_shape_propagation() {
        let l = conv(3, 8, 3, 2, 1);
        let s = l.shape_for(1, 3, 8, 8);
        assert_eq!((s.p(), s.q(), s.k), (4, 4, 8));
    }

    #[test]
    #[should_panic(expected = "channel mismatch")]
    fn conv_layer_rejects_wrong_channels() {
        conv(3, 8, 3, 1, 1).shape_for(1, 4, 8, 8);
    }

    #[test]
    fn model_accounting() {
        let m = Model {
            name: "tiny".into(),
            input: (3, 8, 8),
            nodes: vec![
                Node::Conv(conv(3, 4, 3, 1, 1)),
                Node::Save,
                Node::Conv(conv(4, 4, 3, 1, 1)),
                Node::ResidualJoin(None),
                Node::MaxPool(2, 2, 0),
                Node::GlobalAvgPool,
                Node::Fc(FcLayer {
                    out: 10,
                    weight: vec![0.0; 10 * 4],
                    bias: vec![0.0; 10],
                    relu: false,
                }),
                Node::Softmax,
            ],
        };
        assert_eq!(m.conv_count(), 2);
        // conv1: 2*(1*4*8*8)*(3*9)=13824*2... = 2*256*27 = 13824;
        // conv2: 2*256*36 = 18432.
        assert_eq!(m.conv_flops(1), 13824 + 18432);
        assert_eq!(m.params(), 4 * 3 * 9 + 8 + 4 * 4 * 9 + 8 + 10 * 4 + 10);
    }

    #[test]
    fn projection_shortcut_counts_flops() {
        let mut plain = Model {
            name: "t".into(),
            input: (4, 4, 4),
            nodes: vec![
                Node::Save,
                Node::Conv(conv(4, 4, 1, 1, 0)),
                Node::ResidualJoin(None),
            ],
        };
        let without = plain.conv_flops(1);
        plain.nodes[2] = Node::ResidualJoin(Some(conv(4, 4, 1, 1, 0)));
        assert_eq!(plain.conv_flops(1), 2 * without);
    }
}

//! Non-convolution operators of the forward pass.
//!
//! All operate on `NCHW` activations. They are deliberately simple —
//! convolutions dominate CNN inference (>90% per the paper's §1), so these
//! only need to be correct and not embarrassing.

use ndirect_gemm::{gemm, BlockSizes};
use ndirect_tensor::Tensor4;
use ndirect_threads::StaticPool;

/// Per-channel affine `y = scale[c]·x + shift[c]` — a batch-norm layer
/// folded into inference form (also covers plain bias with `scale = 1`).
pub fn scale_shift(t: &mut Tensor4, scale: &[f32], shift: &[f32]) {
    let (n, c, h, w) = t.dims();
    assert_eq!(scale.len(), c, "scale len");
    assert_eq!(shift.len(), c, "shift len");
    let hw = h * w;
    let data = t.as_mut_slice();
    for ni in 0..n {
        for ci in 0..c {
            let (s, b) = (scale[ci], shift[ci]);
            let base = (ni * c + ci) * hw;
            for x in &mut data[base..base + hw] {
                *x = s * *x + b;
            }
        }
    }
}

/// Inference-form batch normalization applied directly (the unfused
/// reference the folding test compares against):
/// `y = γ·(x − μ)/√(σ²+ε) + β` per channel.
pub fn batch_norm(t: &mut Tensor4, gamma: &[f32], beta: &[f32], mean: &[f32], var: &[f32], eps: f32) {
    let (_, c, _, _) = t.dims();
    let scale: Vec<f32> = (0..c).map(|i| gamma[i] / (var[i] + eps).sqrt()).collect();
    let shift: Vec<f32> = (0..c).map(|i| beta[i] - mean[i] * scale[i]).collect();
    scale_shift(t, &scale, &shift);
}

/// In-place ReLU.
pub fn relu(t: &mut Tensor4) {
    for x in t.as_mut_slice() {
        *x = x.max(0.0);
    }
}

/// In-place elementwise add: `dst += src` (the residual join).
pub fn add_inplace(dst: &mut Tensor4, src: &Tensor4) {
    assert_eq!(dst.dims(), src.dims(), "residual shapes");
    for (d, s) in dst.as_mut_slice().iter_mut().zip(src.as_slice()) {
        *d += s;
    }
}

/// Max pooling with square window `k`, stride `s`, symmetric padding `p`
/// (padding contributes `-inf`, i.e. never wins).
pub fn max_pool(t: &Tensor4, k: usize, stride: usize, pad: usize) -> Tensor4 {
    let (n, c, h, w) = t.dims();
    let ph = (h + 2 * pad - k) / stride + 1;
    let pw = (w + 2 * pad - k) / stride + 1;
    let mut out = Tensor4::zeros(n, c, ph, pw, t.layout());
    for ni in 0..n {
        for ci in 0..c {
            for oj in 0..ph {
                for oi in 0..pw {
                    let mut m = f32::NEG_INFINITY;
                    for dj in 0..k {
                        for di in 0..k {
                            let ij = (oj * stride + dj) as isize - pad as isize;
                            let ii = (oi * stride + di) as isize - pad as isize;
                            if ij >= 0 && ii >= 0 && (ij as usize) < h && (ii as usize) < w {
                                m = m.max(t.at(ni, ci, ij as usize, ii as usize));
                            }
                        }
                    }
                    *out.at_mut(ni, ci, oj, oi) = m;
                }
            }
        }
    }
    out
}

/// Global average pooling: `(N, C, H, W) → (N, C, 1, 1)`.
pub fn global_avg_pool(t: &Tensor4) -> Tensor4 {
    let (n, c, h, w) = t.dims();
    let mut out = Tensor4::zeros(n, c, 1, 1, t.layout());
    let inv = 1.0 / (h * w) as f32;
    for ni in 0..n {
        for ci in 0..c {
            let mut acc = 0.0;
            for hi in 0..h {
                for wi in 0..w {
                    acc += t.at(ni, ci, hi, wi);
                }
            }
            *out.at_mut(ni, ci, 0, 0) = acc * inv;
        }
    }
    out
}

/// Fully-connected layer: flattens `(N, C, H, W)` to `N × (C·H·W)` and
/// computes `Y = X·Wᵀ + b` with the workspace GEMM. Returns `(N, out, 1, 1)`.
pub fn fully_connected(
    pool: &StaticPool,
    t: &Tensor4,
    weight: &[f32], // out × in, row-major
    bias: &[f32],   // out
) -> Tensor4 {
    let (n, c, h, w) = t.dims();
    let in_dim = c * h * w;
    let out_dim = bias.len();
    assert_eq!(weight.len(), out_dim * in_dim, "FC weight size");
    // Y[n][o] = Σ_i X[n][i]·W[o][i]: compute as (W · Xᵀ)ᵀ per sample to
    // reuse the row-major GEMM — for inference sizes, loop samples and do
    // GEMV-ish via gemm with m=out, n=1 is wasteful; instead transpose W
    // once into in×out and run X(n×in) · Wt(in×out).
    let mut wt = vec![0.0f32; in_dim * out_dim];
    for o in 0..out_dim {
        for i in 0..in_dim {
            wt[i * out_dim + o] = weight[o * in_dim + i];
        }
    }
    let mut y = vec![0.0f32; n * out_dim];
    if pool.size() > 1 && n >= 2 {
        ndirect_gemm::par_gemm(pool, n, out_dim, in_dim, t.as_slice(), &wt, &mut y, BlockSizes::default());
    } else {
        gemm(n, out_dim, in_dim, t.as_slice(), &wt, &mut y);
    }
    let mut out = Tensor4::zeros(n, out_dim, 1, 1, t.layout());
    for ni in 0..n {
        for o in 0..out_dim {
            *out.at_mut(ni, o, 0, 0) = y[ni * out_dim + o] + bias[o];
        }
    }
    out
}

/// Row-wise softmax over the channel dimension of `(N, C, 1, 1)` logits.
pub fn softmax(t: &mut Tensor4) {
    let (n, c, h, w) = t.dims();
    assert_eq!((h, w), (1, 1), "softmax expects flattened logits");
    let data = t.as_mut_slice();
    for ni in 0..n {
        let row = &mut data[ni * c..(ni + 1) * c];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for x in row.iter_mut() {
            *x = (*x - max).exp();
            sum += *x;
        }
        for x in row.iter_mut() {
            *x /= sum;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndirect_tensor::{fill, ActLayout};

    fn iota(n: usize, c: usize, h: usize, w: usize) -> Tensor4 {
        let mut t = Tensor4::zeros(n, c, h, w, ActLayout::Nchw);
        fill::fill_iota(t.as_mut_slice());
        t
    }

    #[test]
    fn scale_shift_is_per_channel() {
        let mut t = iota(1, 2, 1, 2); // ch0: [0,1], ch1: [2,3]
        scale_shift(&mut t, &[2.0, 10.0], &[1.0, -1.0]);
        assert_eq!(t.as_slice(), &[1.0, 3.0, 19.0, 29.0]);
    }

    #[test]
    fn batch_norm_matches_formula() {
        let mut t = iota(1, 2, 1, 2);
        batch_norm(&mut t, &[2.0, 1.0], &[0.5, -0.5], &[1.0, 2.0], &[4.0, 0.25], 0.0);
        // ch0: 2*(x-1)/2 + 0.5 = x - 0.5; ch1: (x-2)/0.5 - 0.5 = 2x - 4.5.
        assert_eq!(t.as_slice(), &[-0.5, 0.5, -0.5, 1.5]);
    }

    #[test]
    fn relu_clamps_negatives() {
        let mut t = iota(1, 1, 1, 3);
        t.as_mut_slice()[0] = -5.0;
        relu(&mut t);
        assert_eq!(t.as_slice(), &[0.0, 1.0, 2.0]);
    }

    #[test]
    fn add_inplace_sums() {
        let mut a = iota(1, 1, 1, 3);
        let b = iota(1, 1, 1, 3);
        add_inplace(&mut a, &b);
        assert_eq!(a.as_slice(), &[0.0, 2.0, 4.0]);
    }

    #[test]
    fn max_pool_2x2_stride2() {
        let t = iota(1, 1, 4, 4);
        let p = max_pool(&t, 2, 2, 0);
        assert_eq!(p.dims(), (1, 1, 2, 2));
        assert_eq!(p.as_slice(), &[5.0, 7.0, 13.0, 15.0]);
    }

    #[test]
    fn max_pool_padding_never_wins() {
        let mut t = iota(1, 1, 2, 2);
        for x in t.as_mut_slice() {
            *x -= 10.0; // all negative
        }
        let p = max_pool(&t, 3, 2, 1);
        assert_eq!(p.dims(), (1, 1, 1, 1));
        assert_eq!(p.as_slice()[0], -7.0);
    }

    #[test]
    fn global_avg_pool_averages() {
        let t = iota(1, 2, 2, 2); // ch0: 0..4 avg 1.5, ch1: 4..8 avg 5.5
        let g = global_avg_pool(&t);
        assert_eq!(g.dims(), (1, 2, 1, 1));
        assert_eq!(g.as_slice(), &[1.5, 5.5]);
    }

    #[test]
    fn fully_connected_matches_manual() {
        let pool = StaticPool::new(1);
        let t = iota(2, 1, 1, 3); // X = [[0,1,2],[3,4,5]]
        let weight = [1.0, 0.0, 0.0, 0.0, 1.0, 1.0]; // W = [[1,0,0],[0,1,1]]
        let bias = [10.0, 20.0];
        let y = fully_connected(&pool, &t, &weight, &bias);
        assert_eq!(y.dims(), (2, 2, 1, 1));
        assert_eq!(y.as_slice(), &[10.0, 23.0, 13.0, 29.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut t = iota(2, 4, 1, 1);
        softmax(&mut t);
        for n in 0..2 {
            let sum: f32 = (0..4).map(|c| t.at(n, c, 0, 0)).sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        // Monotone: larger logits keep larger probabilities.
        assert!(t.at(0, 3, 0, 0) > t.at(0, 0, 0, 0));
    }
}

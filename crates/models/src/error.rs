//! Typed errors for the model IR and the forward-pass engine.

use ndirect_tensor::ShapeError;

/// Why a forward pass (or shape derivation) failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// The input batch does not match the model's declared input geometry.
    InputMismatch {
        /// Model display name.
        model: String,
        /// `(C, H, W)` the model declares.
        expected: (usize, usize, usize),
        /// `(C, H, W)` of the activation handed in.
        got: (usize, usize, usize),
    },
    /// The activation arrived in a layout the engine does not run.
    Layout,
    /// A conv layer's filter disagrees with the incoming channel count.
    ChannelMismatch {
        /// Channels the layer's filter reduces over.
        layer_c: usize,
        /// Channels the activation actually has.
        input_c: usize,
    },
    /// A depthwise layer's filter is not `(C, 1, R, S)` with `k == c`.
    Depthwise {
        /// What was wrong, human-readable.
        context: String,
    },
    /// A `ResidualJoin` executed with no prior `Save`.
    MissingSave,
    /// The saved shortcut's dimensions disagree with the conv output it
    /// would fuse into.
    ShortcutMismatch {
        /// Output dims the conv produces.
        expected: (usize, usize, usize, usize),
        /// Dims of the saved shortcut.
        got: (usize, usize, usize, usize),
    },
    /// A layer induced an invalid convolution shape.
    Shape(ShapeError),
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::InputMismatch {
                model,
                expected,
                got,
            } => write!(
                f,
                "input does not match model {model}: expects (C, H, W) = {expected:?}, got {got:?}"
            ),
            ModelError::Layout => write!(f, "engine runs NCHW"),
            ModelError::ChannelMismatch { layer_c, input_c } => write!(
                f,
                "channel mismatch entering conv layer: filter reduces over C={layer_c}, activation has C={input_c}"
            ),
            ModelError::Depthwise { context } => write!(f, "{context}"),
            ModelError::MissingSave => write!(f, "ResidualJoin without Save"),
            ModelError::ShortcutMismatch { expected, got } => write!(
                f,
                "identity shortcut must match conv output {expected:?}, got {got:?}"
            ),
            ModelError::Shape(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ModelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ModelError::Shape(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ShapeError> for ModelError {
    fn from(e: ShapeError) -> Self {
        ModelError::Shape(e)
    }
}

//! The convolution implementations the paper compares nDirect against.
//!
//! | Module | Paper baseline | Character |
//! |---|---|---|
//! | [`naive`] | Algorithm 1 | seven nested loops; the correctness oracle |
//! | [`im2col`] | im2col + OpenBLAS GEMM (MXNet's default) | materializes the column matrix, then calls the Goto GEMM; per-phase timing for Fig. 1a |
//! | [`blocked`] | LIBXSMM direct convolution | `NCHWc`/blocked-filter layouts + BRGEMM-style micro-kernel; layout-conversion step timed separately, as the paper measures it |
//! | [`indirect`] | XNNPACK indirect convolution | `NHWC`, indirection buffer instead of im2col, GEMM-shaped kernel |
//! | [`winograd`] | the fast-algorithm family §2.1 sets aside | `F(2×2, 3×3)` with GEMM-formulated tile products; lets the memory/accuracy trade-off be measured |
//! | [`fft`] | the other §2.1 family | frequency-domain convolution on a from-scratch radix-2 FFT |
//!
//! Every backend computes the same operator (validated against [`naive`]),
//! differing only in data movement and kernel structure — which is precisely
//! what the paper's evaluation isolates.

#![warn(missing_docs)]

pub mod blocked;
pub mod error;
pub mod fft;
pub mod im2col;
pub mod indirect;
pub mod naive;
pub mod winograd;

use ndirect_tensor::{ConvShape, Filter, Tensor4};
use ndirect_threads::StaticPool;

pub use error::BaselineError;

/// A pluggable convolution implementation over `NCHW` activations and
/// `KCRS` filters — the interface the end-to-end inference engine swaps
/// backends through (mirroring how the paper integrates nDirect into
/// MXNet).
///
/// Implementations convert internally if they prefer another layout and
/// must include that conversion in their runtime, matching the paper's
/// methodology for layout-compatibility costs (§7.4).
pub trait Convolution: Sync {
    /// Short name for reports ("im2col+GEMM", "LIBXSMM-like", …).
    fn name(&self) -> &'static str;

    /// Whether [`Convolution::conv`] *accumulates* into the output
    /// (`O += conv`) rather than overwriting it. Accumulating backends can
    /// fuse a residual add by receiving the shortcut as the initial output
    /// (the engine's fusion optimization); overwriting backends cannot.
    fn accumulates(&self) -> bool {
        false
    }

    /// Computes `output = conv(input, filter)` for `shape`, using `pool`
    /// for parallelism. `input` is `NCHW`, `filter` is `KCRS`, `output` is
    /// `NCHW` and arrives zeroed.
    fn conv(
        &self,
        pool: &StaticPool,
        input: &Tensor4,
        filter: &Filter,
        shape: &ConvShape,
        output: &mut Tensor4,
    );
}

/// Runs a [`Convolution`] backend, allocating the output.
pub fn run_backend(
    backend: &dyn Convolution,
    pool: &StaticPool,
    input: &Tensor4,
    filter: &Filter,
    shape: &ConvShape,
) -> Tensor4 {
    let mut out = Tensor4::output_for(shape, ndirect_tensor::ActLayout::Nchw);
    backend.conv(pool, input, filter, shape, &mut out);
    out
}

/// The naive oracle as a [`Convolution`] backend.
pub struct NaiveBackend;

impl Convolution for NaiveBackend {
    fn name(&self) -> &'static str {
        "naive"
    }

    fn conv(
        &self,
        _pool: &StaticPool,
        input: &Tensor4,
        filter: &Filter,
        shape: &ConvShape,
        output: &mut Tensor4,
    ) {
        let result = naive::conv_ref(input, filter, shape);
        output.as_mut_slice().copy_from_slice(result.as_slice());
    }
}

/// im2col+GEMM as a [`Convolution`] backend.
pub struct Im2colBackend;

impl Convolution for Im2colBackend {
    fn name(&self) -> &'static str {
        "im2col+GEMM"
    }

    fn accumulates(&self) -> bool {
        true // the GEMM computes C += A·B
    }

    fn conv(
        &self,
        pool: &StaticPool,
        input: &Tensor4,
        filter: &Filter,
        shape: &ConvShape,
        output: &mut Tensor4,
    ) {
        im2col::conv_im2col_into(pool, input, filter, shape, output);
    }
}

/// The LIBXSMM-style blocked direct convolution as a [`Convolution`]
/// backend (includes its layout conversions, as integration into an
/// `NCHW` framework would).
pub struct BlockedBackend;

impl Convolution for BlockedBackend {
    fn name(&self) -> &'static str {
        "LIBXSMM-like"
    }

    fn conv(
        &self,
        pool: &StaticPool,
        input: &Tensor4,
        filter: &Filter,
        shape: &ConvShape,
        output: &mut Tensor4,
    ) {
        let result = blocked::conv_blocked_nchw(pool, input, filter, shape);
        output.as_mut_slice().copy_from_slice(result.as_slice());
    }
}

/// The XNNPACK-style indirect convolution as a [`Convolution`] backend
/// (includes its `NCHW → NHWC` conversions).
pub struct IndirectBackend;

impl Convolution for IndirectBackend {
    fn name(&self) -> &'static str {
        "XNNPACK-like"
    }

    fn conv(
        &self,
        pool: &StaticPool,
        input: &Tensor4,
        filter: &Filter,
        shape: &ConvShape,
        output: &mut Tensor4,
    ) {
        let result = indirect::conv_indirect_nchw(pool, input, filter, shape);
        output.as_mut_slice().copy_from_slice(result.as_slice());
    }
}

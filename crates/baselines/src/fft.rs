//! FFT-based convolution — the second fast-algorithm family the paper's
//! §2.1 sets aside, built on a from-scratch iterative radix-2
//! Cooley–Tukey FFT so its memory footprint and numeric behaviour can be
//! measured against the direct methods.
//!
//! The filter frames are transformed eagerly and serially at entry and the
//! only parallel axis is the batch — again: a measured comparison point
//! quantifying §2.1's argument, not a tuned FFT convolution.
//!
//! Method: zero-pad each (padded) input channel and each spatially-flipped
//! filter channel to a power-of-two frame, transform, multiply-accumulate
//! over `C` in the frequency domain (one inverse transform per `(n, k)`),
//! then read the valid correlation region (subsampled for stride > 1).
//! The workspace is `O(C·L²)` complex values per image — the "memory
//! pressure" §2.1 cites — and a frame much larger than the 3×3 kernels of
//! CNNs, which is why FFT only pays off for very large kernels.

use ndirect_tensor::{pad::at_padded, ActLayout, ConvShape, Filter, Tensor4};
use ndirect_threads::{split_static, SharedSlice, StaticPool};

use crate::error::{check_act_layout, check_dims, BaselineError};

/// In-place iterative radix-2 FFT of `re/im` (lengths must be equal powers
/// of two). `invert` computes the inverse transform including the `1/n`
/// scale.
pub fn fft1d(re: &mut [f32], im: &mut [f32], invert: bool) {
    let n = re.len();
    assert_eq!(n, im.len(), "re/im length mismatch");
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            re.swap(i, j);
            im.swap(i, j);
        }
    }
    // Butterflies.
    let mut len = 2;
    while len <= n {
        let ang = 2.0 * std::f64::consts::PI / len as f64 * if invert { 1.0 } else { -1.0 };
        let (wr, wi) = (ang.cos(), ang.sin());
        let mut i = 0;
        while i < n {
            let (mut cr, mut ci) = (1.0f64, 0.0f64);
            for k in 0..len / 2 {
                let (ur, ui) = (re[i + k] as f64, im[i + k] as f64);
                let (vr0, vi0) = (re[i + k + len / 2] as f64, im[i + k + len / 2] as f64);
                let vr = vr0 * cr - vi0 * ci;
                let vi = vr0 * ci + vi0 * cr;
                re[i + k] = (ur + vr) as f32;
                im[i + k] = (ui + vi) as f32;
                re[i + k + len / 2] = (ur - vr) as f32;
                im[i + k + len / 2] = (ui - vi) as f32;
                let ncr = cr * wr - ci * wi;
                ci = cr * wi + ci * wr;
                cr = ncr;
            }
            i += len;
        }
        len <<= 1;
    }
    if invert {
        let inv = 1.0 / n as f32;
        for (r, i) in re.iter_mut().zip(im.iter_mut()) {
            *r *= inv;
            *i *= inv;
        }
    }
}

/// A `ly × lx` complex frame with row-major storage.
#[derive(Clone)]
pub struct Frame {
    /// Real parts, row-major.
    pub re: Vec<f32>,
    /// Imaginary parts, row-major.
    pub im: Vec<f32>,
    /// Frame height (power of two).
    pub ly: usize,
    /// Frame width (power of two).
    pub lx: usize,
}

impl Frame {
    /// Zero frame.
    pub fn zeros(ly: usize, lx: usize) -> Self {
        assert!(ly.is_power_of_two() && lx.is_power_of_two());
        Frame {
            re: vec![0.0; ly * lx],
            im: vec![0.0; ly * lx],
            ly,
            lx,
        }
    }

    /// In-place 2-D FFT (rows then columns).
    pub fn fft2d(&mut self, invert: bool) {
        for y in 0..self.ly {
            fft1d(
                &mut self.re[y * self.lx..(y + 1) * self.lx],
                &mut self.im[y * self.lx..(y + 1) * self.lx],
                invert,
            );
        }
        let mut col_re = vec![0.0f32; self.ly];
        let mut col_im = vec![0.0f32; self.ly];
        for x in 0..self.lx {
            for y in 0..self.ly {
                col_re[y] = self.re[y * self.lx + x];
                col_im[y] = self.im[y * self.lx + x];
            }
            fft1d(&mut col_re, &mut col_im, invert);
            for y in 0..self.ly {
                self.re[y * self.lx + x] = col_re[y];
                self.im[y * self.lx + x] = col_im[y];
            }
        }
    }

    /// `self += a ⊙ b` (pointwise complex multiply-accumulate).
    pub fn mul_acc(&mut self, a: &Frame, b: &Frame) {
        for i in 0..self.re.len() {
            let (ar, ai) = (a.re[i], a.im[i]);
            let (br, bi) = (b.re[i], b.im[i]);
            self.re[i] += ar * br - ai * bi;
            self.im[i] += ar * bi + ai * br;
        }
    }
}

/// FFT-based convolution over `NCHW` activations and `KCRS` filters.
/// Supports any kernel size, stride and padding (stride by subsampling the
/// dense correlation).
pub fn conv_fft(
    pool: &StaticPool,
    input: &Tensor4,
    filter: &Filter,
    shape: &ConvShape,
) -> Tensor4 {
    try_conv_fft(pool, input, filter, shape).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`conv_fft`].
pub fn try_conv_fft(
    pool: &StaticPool,
    input: &Tensor4,
    filter: &Filter,
    shape: &ConvShape,
) -> Result<Tensor4, BaselineError> {
    shape.validate()?;
    check_act_layout(input, ActLayout::Nchw, "fft baseline takes NCHW")?;
    check_dims(
        "input dims",
        (shape.n, shape.c, shape.h, shape.w),
        input.dims(),
    )?;
    check_dims(
        "filter dims",
        (shape.k, shape.c, shape.r, shape.s),
        filter.dims(),
    )?;
    let (hp, wp) = (shape.padded_h(), shape.padded_w());
    let ly = (hp + shape.r - 1).next_power_of_two();
    let lx = (wp + shape.s - 1).next_power_of_two();
    let (p, q) = (shape.p(), shape.q());
    let mut out = Tensor4::output_for(shape, ActLayout::Nchw);

    // Filter frames: flipped spatially so the convolution theorem yields
    // the CNN correlation. One frame per (k, c).
    let mut f_frames = Vec::with_capacity(shape.k * shape.c);
    for k in 0..shape.k {
        for c in 0..shape.c {
            let mut fr = Frame::zeros(ly, lx);
            for r in 0..shape.r {
                for s in 0..shape.s {
                    fr.re[(shape.r - 1 - r) * lx + (shape.s - 1 - s)] = filter.at(k, c, r, s);
                }
            }
            fr.fft2d(false);
            f_frames.push(fr);
        }
    }

    let threads = pool.size();
    let shared = SharedSlice::new(out.as_mut_slice());
    pool.run(|tid| {
        for n in split_static(shape.n, threads, tid) {
            // SAFETY: each image's K·P·Q output block is a disjoint
            // contiguous range owned by this thread; pool barrier before
            // return.
            let out_image = unsafe { shared.range_mut(n * shape.k * p * q, shape.k * p * q) };
            // Transform every input channel of this image once.
            let x_frames: Vec<Frame> = (0..shape.c)
                .map(|c| {
                    let mut fr = Frame::zeros(ly, lx);
                    for y in 0..hp {
                        for x in 0..wp {
                            fr.re[y * lx + x] = at_padded(
                                input,
                                n,
                                c,
                                y as isize - shape.pad.h as isize,
                                x as isize - shape.pad.w as isize,
                            );
                        }
                    }
                    fr.fft2d(false);
                    fr
                })
                .collect();
            for k in 0..shape.k {
                let mut acc = Frame::zeros(ly, lx);
                for (c, xf) in x_frames.iter().enumerate() {
                    acc.mul_acc(xf, &f_frames[k * shape.c + c]);
                }
                acc.fft2d(true);
                // Valid correlation starts at (R−1, S−1) of the linear
                // convolution; subsample by the stride.
                for oy in 0..p {
                    for ox in 0..q {
                        let y = shape.r - 1 + oy * shape.stride;
                        let x = shape.s - 1 + ox * shape.stride;
                        out_image[(k * p + oy) * q + ox] = acc.re[y * lx + x];
                    }
                }
            }
        }
    });
    Ok(out)
}

/// Workspace floats the FFT path materializes per image
/// (`(C + 1) · L² · 2` for channel frames + the accumulator) plus the
/// `K·C` filter frames — §2.1's memory-pressure argument, quantified.
pub fn fft_workspace_floats(shape: &ConvShape) -> usize {
    let ly = (shape.padded_h() + shape.r - 1).next_power_of_two();
    let lx = (shape.padded_w() + shape.s - 1).next_power_of_two();
    2 * ly * lx * (shape.c + 1 + shape.k * shape.c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;
    use ndirect_tensor::{assert_close, fill, FilterLayout, Padding};

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut re = vec![0.0f32; 8];
        let mut im = vec![0.0f32; 8];
        re[0] = 1.0;
        fft1d(&mut re, &mut im, false);
        for i in 0..8 {
            assert!((re[i] - 1.0).abs() < 1e-6 && im[i].abs() < 1e-6);
        }
    }

    #[test]
    fn fft_round_trip_recovers_signal() {
        let orig: Vec<f32> = (0..16).map(|i| (i as f32 * 0.71).sin()).collect();
        let mut re = orig.clone();
        let mut im = vec![0.0f32; 16];
        fft1d(&mut re, &mut im, false);
        fft1d(&mut re, &mut im, true);
        for (a, b) in re.iter().zip(&orig) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
        assert!(im.iter().all(|x| x.abs() < 1e-5));
    }

    #[test]
    fn fft_parseval_energy_is_preserved() {
        let sig: Vec<f32> = (0..32).map(|i| ((i * 7 % 13) as f32 - 6.0) * 0.3).collect();
        let mut re = sig.clone();
        let mut im = vec![0.0f32; 32];
        fft1d(&mut re, &mut im, false);
        let time: f32 = sig.iter().map(|x| x * x).sum();
        let freq: f32 = re.iter().zip(&im).map(|(r, i)| r * r + i * i).sum::<f32>() / 32.0;
        assert!((time - freq).abs() < 1e-3 * time.max(1.0));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn fft_rejects_non_power_of_two() {
        let mut re = vec![0.0f32; 6];
        let mut im = vec![0.0f32; 6];
        fft1d(&mut re, &mut im, false);
    }

    fn check(shape: ConvShape, threads: usize) {
        let input = fill::random_tensor(Tensor4::input_for(&shape, ActLayout::Nchw), 51);
        let filter = fill::random_filter(Filter::for_shape(&shape, FilterLayout::Kcrs), 51);
        let expect = naive::conv_ref(&input, &filter, &shape);
        let pool = StaticPool::new(threads);
        let got = conv_fft(&pool, &input, &filter, &shape);
        assert_close(got.as_slice(), expect.as_slice(), 2e-3, "fft vs naive");
    }


    #[test]
    fn matches_oracle_large_kernel() {
        // 7x7 — the regime where FFT is actually attractive.
        check(ConvShape::new(1, 2, 12, 12, 3, 7, 7, 1, Padding::same(3)), 1);
    }


    #[test]
    fn workspace_dwarfs_direct_footprint() {
        // The paper's memory-pressure point: a 3x3 conv on 14x14 inflates
        // to 16x16 complex frames per channel.
        let shape = ConvShape::new(1, 256, 14, 14, 256, 3, 3, 1, Padding::same(1));
        let ws = fft_workspace_floats(&shape);
        assert!(ws > 10 * shape.input_len(), "workspace {ws} floats");
    }
}

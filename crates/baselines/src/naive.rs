//! Algorithm 1: the naive seven-loop direct convolution.
//!
//! This is the workspace's correctness oracle. It is deliberately written
//! for clarity (logical indexing through accessor methods, implicit
//! zero-padding) rather than speed, and works for any activation/filter
//! layout combination because it never touches raw offsets.

use ndirect_tensor::{pad::at_padded, ActLayout, ConvShape, Filter, Tensor4};

use crate::error::{check_dims, BaselineError};

/// Computes the convolution with the naive algorithm, returning an output
/// tensor in the same layout family as the input (`NCHW` input → `NCHW`
/// output, `NHWC` → `NHWC`).
pub fn conv_ref(input: &Tensor4, filter: &Filter, shape: &ConvShape) -> Tensor4 {
    try_conv_ref(input, filter, shape).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`conv_ref`].
pub fn try_conv_ref(
    input: &Tensor4,
    filter: &Filter,
    shape: &ConvShape,
) -> Result<Tensor4, BaselineError> {
    validate(input, filter, shape)?;
    let mut out = Tensor4::output_for(shape, input.layout());
    try_conv_ref_into(input, filter, shape, &mut out)?;
    Ok(out)
}

/// Naive convolution into a preallocated (zeroed) output tensor.
pub fn conv_ref_into(input: &Tensor4, filter: &Filter, shape: &ConvShape, out: &mut Tensor4) {
    try_conv_ref_into(input, filter, shape, out).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`conv_ref_into`].
pub fn try_conv_ref_into(
    input: &Tensor4,
    filter: &Filter,
    shape: &ConvShape,
    out: &mut Tensor4,
) -> Result<(), BaselineError> {
    validate(input, filter, shape)?;
    let (p, q) = (shape.p(), shape.q());
    check_dims("output dims", (shape.n, shape.k, p, q), out.dims())?;
    let (ph, pw) = (shape.pad.h as isize, shape.pad.w as isize);
    for n in 0..shape.n {
        for k in 0..shape.k {
            for oj in 0..p {
                for oi in 0..q {
                    let ij = (shape.stride * oj) as isize - ph;
                    let ii = (shape.stride * oi) as isize - pw;
                    let mut acc = 0.0f32;
                    for c in 0..shape.c {
                        for r in 0..shape.r {
                            for s in 0..shape.s {
                                let x = at_padded(input, n, c, ij + r as isize, ii + s as isize);
                                acc += x * filter.at(k, c, r, s);
                            }
                        }
                    }
                    *out.at_mut(n, k, oj, oi) = acc;
                }
            }
        }
    }
    Ok(())
}

fn validate(input: &Tensor4, filter: &Filter, shape: &ConvShape) -> Result<(), BaselineError> {
    shape.validate()?;
    check_dims(
        "input dims",
        (shape.n, shape.c, shape.h, shape.w),
        input.dims(),
    )?;
    check_dims(
        "filter dims",
        (shape.k, shape.c, shape.r, shape.s),
        filter.dims(),
    )
}

/// Convenience wrapper returning an `NCHW` output regardless of input
/// layout (what the cross-backend tests compare against).
pub fn conv_ref_nchw(input: &Tensor4, filter: &Filter, shape: &ConvShape) -> Tensor4 {
    conv_ref(input, filter, shape).to_layout(ActLayout::Nchw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndirect_tensor::{fill, FilterLayout, Padding};

    #[test]
    fn identity_1x1_kernel_copies_input() {
        let shape = ConvShape::new(1, 1, 3, 3, 1, 1, 1, 1, Padding::NONE);
        let mut input = Tensor4::input_for(&shape, ActLayout::Nchw);
        fill::fill_iota(input.as_mut_slice());
        let mut filter = Filter::for_shape(&shape, FilterLayout::Kcrs);
        filter.as_mut_slice()[0] = 1.0;
        let out = conv_ref(&input, &filter, &shape);
        assert_eq!(out.as_slice(), input.as_slice());
    }

    #[test]
    fn box_filter_sums_window() {
        // 3x3 all-ones kernel over constant input of 2.0 -> 18 everywhere
        // (interior, valid conv).
        let shape = ConvShape::new(1, 1, 5, 5, 1, 3, 3, 1, Padding::NONE);
        let mut input = Tensor4::input_for(&shape, ActLayout::Nchw);
        fill::fill_const(input.as_mut_slice(), 2.0);
        let mut filter = Filter::for_shape(&shape, FilterLayout::Kcrs);
        fill::fill_const(filter.as_mut_slice(), 1.0);
        let out = conv_ref(&input, &filter, &shape);
        assert!(out.as_slice().iter().all(|&x| (x - 18.0).abs() < 1e-6));
    }

    #[test]
    fn padding_zeroes_contribute_nothing() {
        // Same-padded box filter: corner output sums only the 2x2 live
        // window -> 4 * 2.0.
        let shape = ConvShape::new(1, 1, 4, 4, 1, 3, 3, 1, Padding::same(1));
        let mut input = Tensor4::input_for(&shape, ActLayout::Nchw);
        fill::fill_const(input.as_mut_slice(), 2.0);
        let mut filter = Filter::for_shape(&shape, FilterLayout::Kcrs);
        fill::fill_const(filter.as_mut_slice(), 1.0);
        let out = conv_ref(&input, &filter, &shape);
        assert_eq!(out.at(0, 0, 0, 0), 8.0);
        assert_eq!(out.at(0, 0, 1, 1), 18.0);
    }

    #[test]
    fn stride_two_subsamples() {
        let shape = ConvShape::new(1, 1, 5, 5, 1, 1, 1, 2, Padding::NONE);
        let mut input = Tensor4::input_for(&shape, ActLayout::Nchw);
        fill::fill_iota(input.as_mut_slice());
        let mut filter = Filter::for_shape(&shape, FilterLayout::Kcrs);
        filter.as_mut_slice()[0] = 1.0;
        let out = conv_ref(&input, &filter, &shape);
        assert_eq!(out.dims(), (1, 1, 3, 3));
        assert_eq!(out.at(0, 0, 0, 0), 0.0);
        assert_eq!(out.at(0, 0, 0, 1), 2.0);
        assert_eq!(out.at(0, 0, 1, 0), 10.0);
        assert_eq!(out.at(0, 0, 2, 2), 24.0);
    }

    #[test]
    fn channels_reduce() {
        // Two input channels with distinguishable filters.
        let shape = ConvShape::new(1, 2, 2, 2, 1, 1, 1, 1, Padding::NONE);
        let mut input = Tensor4::input_for(&shape, ActLayout::Nchw);
        fill::fill_iota(input.as_mut_slice()); // ch0: 0..4, ch1: 4..8
        let mut filter = Filter::for_shape(&shape, FilterLayout::Kcrs);
        *filter.at_mut(0, 0, 0, 0) = 1.0;
        *filter.at_mut(0, 1, 0, 0) = 10.0;
        let out = conv_ref(&input, &filter, &shape);
        assert_eq!(out.at(0, 0, 0, 0), 0.0 + 10.0 * 4.0);
        assert_eq!(out.at(0, 0, 1, 1), 3.0 + 10.0 * 7.0);
    }

    #[test]
    fn layout_independent_results() {
        let shape = ConvShape::square(2, 3, 4, 6, 3, 1);
        let input = fill::random_tensor(Tensor4::input_for(&shape, ActLayout::Nchw), 7);
        let filter = fill::random_filter(Filter::for_shape(&shape, FilterLayout::Kcrs), 7);
        let out_nchw = conv_ref(&input, &filter, &shape);

        let input_nhwc = input.to_layout(ActLayout::Nhwc);
        let filter_krsc = filter.to_layout(FilterLayout::Krsc);
        let out_nhwc = conv_ref(&input_nhwc, &filter_krsc, &shape);

        assert_eq!(out_nhwc.layout(), ActLayout::Nhwc);
        ndirect_tensor::assert_close(
            out_nhwc.to_layout(ActLayout::Nchw).as_slice(),
            out_nchw.as_slice(),
            1e-5,
            "layout independence",
        );
    }

    #[test]
    #[should_panic(expected = "input dims")]
    fn rejects_mismatched_input() {
        let shape = ConvShape::square(1, 3, 4, 8, 3, 1);
        let input = Tensor4::zeros(1, 2, 8, 8, ActLayout::Nchw);
        let filter = Filter::for_shape(&shape, FilterLayout::Kcrs);
        conv_ref(&input, &filter, &shape);
    }
}

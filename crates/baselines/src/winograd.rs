//! Winograd `F(2×2, 3×3)` convolution — one of the two fast-algorithm
//! families the paper's §2.1 sets aside ("FFT and Winograd … can increase
//! the memory pressure and reduce the prediction accuracy"). Implemented
//! here so that trade-off can be *measured* rather than asserted: the
//! `figures -- winograd` target reports throughput and numerical error
//! against the direct methods.
//!
//! The algorithm (Lavin & Gray, 2016) computes each 2×2 output tile with
//! 16 multiplies instead of 36 (2.25× fewer):
//!
//! * filter transform `U = G·g·Gᵀ` (3×3 → 4×4, once per `(k, c)`);
//! * input transform `V = Bᵀ·d·B` (4×4 tiles, stride 2);
//! * per tile position `(ξ, ν) ∈ 4×4`, a `K×C · C×T` GEMM `M = U·V`
//!   over all `T` tiles (the standard GEMM formulation, reusing the
//!   workspace's Goto GEMM);
//! * output transform `Y = Aᵀ·m·A` (4×4 → 2×2).
//!
//! Restrictions: `R = S = 3`, stride 1 (the algorithm's domain). The
//! input/output transforms run single-threaded (only the 16 GEMMs use the
//! pool) — adequate for a measured comparison point, not a production
//! Winograd.

use ndirect_gemm::{par_gemm, BlockSizes};
use ndirect_tensor::{pad::at_padded, ActLayout, AlignedBuf, ConvShape, Filter, Tensor4};
use ndirect_threads::StaticPool;

use crate::error::{check_act_layout, check_dims, BaselineError};

/// Transformed-filter tensor: `U[16][K][C]`.
pub struct WinogradFilter {
    data: AlignedBuf,
    k: usize,
    c: usize,
}

impl WinogradFilter {
    /// `U = G·g·Gᵀ` for every `(k, c)` 3×3 kernel.
    ///
    /// `G = [[1,0,0], [½,½,½], [½,−½,½], [0,0,1]]`.
    pub fn transform(filter: &Filter) -> Self {
        let (k, c, r, s) = filter.dims();
        assert_eq!((r, s), (3, 3), "Winograd F(2x2,3x3) needs 3x3 kernels");
        let mut data = AlignedBuf::zeroed(16 * k * c);
        for ki in 0..k {
            for ci in 0..c {
                let mut g = [[0.0f32; 3]; 3];
                for (i, row) in g.iter_mut().enumerate() {
                    for (j, v) in row.iter_mut().enumerate() {
                        *v = filter.at(ki, ci, i, j);
                    }
                }
                // temp = G (4x3) · g (3x3)  -> 4x3
                let mut t = [[0.0f32; 3]; 4];
                for j in 0..3 {
                    t[0][j] = g[0][j];
                    t[1][j] = 0.5 * (g[0][j] + g[1][j] + g[2][j]);
                    t[2][j] = 0.5 * (g[0][j] - g[1][j] + g[2][j]);
                    t[3][j] = g[2][j];
                }
                // u = temp · Gᵀ -> 4x4 (same combination across columns)
                for (i, trow) in t.iter().enumerate() {
                    let u0 = trow[0];
                    let u1 = 0.5 * (trow[0] + trow[1] + trow[2]);
                    let u2 = 0.5 * (trow[0] - trow[1] + trow[2]);
                    let u3 = trow[2];
                    for (pos, val) in [(0, u0), (1, u1), (2, u2), (3, u3)] {
                        data[((i * 4 + pos) * k + ki) * c + ci] = val;
                    }
                }
            }
        }
        Self { data, k, c }
    }

    /// The `K×C` matrix at tile position `xi·4 + nu`.
    fn matrix(&self, pos: usize) -> &[f32] {
        &self.data[pos * self.k * self.c..(pos + 1) * self.k * self.c]
    }
}

/// `Bᵀ·d·B` for a 4×4 input tile `d` (in place, two passes of the
/// butterfly `[d0−d2, d1+d2, d2−d1, d1−d3]`).
#[inline]
fn input_transform(d: &mut [[f32; 4]; 4]) {
    // Rows: Bᵀ·d.
    #[allow(clippy::needless_range_loop)] // j addresses a column across rows
    for j in 0..4 {
        let (d0, d1, d2, d3) = (d[0][j], d[1][j], d[2][j], d[3][j]);
        d[0][j] = d0 - d2;
        d[1][j] = d1 + d2;
        d[2][j] = d2 - d1;
        d[3][j] = d1 - d3;
    }
    // Columns: (·)·B.
    for row in d.iter_mut() {
        let (d0, d1, d2, d3) = (row[0], row[1], row[2], row[3]);
        row[0] = d0 - d2;
        row[1] = d1 + d2;
        row[2] = d2 - d1;
        row[3] = d1 - d3;
    }
}

/// `Aᵀ·m·A` for a 4×4 accumulator tile → 2×2 output.
#[inline]
fn output_transform(m: &[[f32; 4]; 4]) -> [[f32; 2]; 2] {
    let mut t = [[0.0f32; 4]; 2];
    #[allow(clippy::needless_range_loop)] // index mirrors the A^T matrix rows
    for j in 0..4 {
        t[0][j] = m[0][j] + m[1][j] + m[2][j];
        t[1][j] = m[1][j] - m[2][j] - m[3][j];
    }
    [
        [t[0][0] + t[0][1] + t[0][2], t[0][1] - t[0][2] - t[0][3]],
        [t[1][0] + t[1][1] + t[1][2], t[1][1] - t[1][2] - t[1][3]],
    ]
}

/// Winograd `F(2×2, 3×3)` convolution over `NCHW` activations and `KCRS`
/// filters (3×3, stride 1 only). Padding handled implicitly during the
/// input transform.
pub fn conv_winograd(
    pool: &StaticPool,
    input: &Tensor4,
    filter: &Filter,
    shape: &ConvShape,
) -> Tensor4 {
    try_conv_winograd(pool, input, filter, shape).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`conv_winograd`]: non-3x3 kernels or strides other
/// than 1 come back as [`BaselineError::Unsupported`].
pub fn try_conv_winograd(
    pool: &StaticPool,
    input: &Tensor4,
    filter: &Filter,
    shape: &ConvShape,
) -> Result<Tensor4, BaselineError> {
    shape.validate()?;
    check_act_layout(input, ActLayout::Nchw, "winograd takes NCHW")?;
    if (shape.r, shape.s) != (3, 3) {
        return Err(BaselineError::Unsupported {
            context: format!(
                "winograd F(2x2,3x3) needs 3x3 kernels, got {}x{}",
                shape.r, shape.s
            ),
        });
    }
    if shape.stride != 1 {
        return Err(BaselineError::Unsupported {
            context: format!(
                "winograd F(2x2,3x3) needs stride 1, got {}",
                shape.stride
            ),
        });
    }
    check_dims(
        "input dims",
        (shape.n, shape.c, shape.h, shape.w),
        input.dims(),
    )?;
    check_dims("filter dims", (shape.k, shape.c, 3, 3), filter.dims())?;

    let (p, q) = (shape.p(), shape.q());
    let tiles_y = p.div_ceil(2);
    let tiles_x = q.div_ceil(2);
    let tiles_per_image = tiles_y * tiles_x;
    let t_total = shape.n * tiles_per_image;

    let u = WinogradFilter::transform(filter);

    // V[16][C][T]: transformed input, gathered tile by tile.
    let mut v = AlignedBuf::zeroed(16 * shape.c * t_total);
    {
        let (ph, pw) = (shape.pad.h as isize, shape.pad.w as isize);
        let ct = shape.c * t_total;
        for n in 0..shape.n {
            for c in 0..shape.c {
                for ty in 0..tiles_y {
                    for tx in 0..tiles_x {
                        let mut d = [[0.0f32; 4]; 4];
                        let y0 = (2 * ty) as isize - ph;
                        let x0 = (2 * tx) as isize - pw;
                        for (i, row) in d.iter_mut().enumerate() {
                            for (j, val) in row.iter_mut().enumerate() {
                                *val = at_padded(input, n, c, y0 + i as isize, x0 + j as isize);
                            }
                        }
                        input_transform(&mut d);
                        let t_idx = (n * tiles_y + ty) * tiles_x + tx;
                        for (i, row) in d.iter().enumerate() {
                            for (j, val) in row.iter().enumerate() {
                                v[(i * 4 + j) * ct + c * t_total + t_idx] = *val;
                            }
                        }
                    }
                }
            }
        }
    }

    // M[16][K][T] = U[pos]·V[pos] — 16 independent GEMMs.
    let mut m = AlignedBuf::zeroed(16 * shape.k * t_total);
    for pos in 0..16 {
        let v_pos = &v[pos * shape.c * t_total..(pos + 1) * shape.c * t_total];
        let m_pos = &mut m[pos * shape.k * t_total..(pos + 1) * shape.k * t_total];
        par_gemm(
            pool,
            shape.k,
            t_total,
            shape.c,
            u.matrix(pos),
            v_pos,
            m_pos,
            BlockSizes::default(),
        );
    }

    // Output transform, tile by tile, masking the P/Q remainder.
    let mut out = Tensor4::output_for(shape, ActLayout::Nchw);
    let kt = shape.k * t_total;
    let _ = kt;
    for n in 0..shape.n {
        for k in 0..shape.k {
            for ty in 0..tiles_y {
                for tx in 0..tiles_x {
                    let t_idx = (n * tiles_y + ty) * tiles_x + tx;
                    let mut acc = [[0.0f32; 4]; 4];
                    for (i, row) in acc.iter_mut().enumerate() {
                        for (j, val) in row.iter_mut().enumerate() {
                            *val = m[(i * 4 + j) * shape.k * t_total + k * t_total + t_idx];
                        }
                    }
                    let y = output_transform(&acc);
                    #[allow(clippy::needless_range_loop)] // dy/dx address both y and out
                    for dy in 0..2 {
                        for dx in 0..2 {
                            let (oy, ox) = (2 * ty + dy, 2 * tx + dx);
                            if oy < p && ox < q {
                                *out.at_mut(n, k, oy, ox) = y[dy][dx];
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Extra memory Winograd materializes, in floats (`V` + `M` + `U`) — the
/// "memory pressure" the paper cites.
pub fn winograd_workspace_floats(shape: &ConvShape) -> usize {
    let tiles = shape.n * shape.p().div_ceil(2) * shape.q().div_ceil(2);
    16 * (shape.c * tiles + shape.k * tiles + shape.k * shape.c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;
    use ndirect_tensor::{assert_close, fill, FilterLayout, Padding};

    fn check(shape: ConvShape, threads: usize, tol: f32) {
        let input = fill::random_tensor(Tensor4::input_for(&shape, ActLayout::Nchw), 41);
        let filter = fill::random_filter(Filter::for_shape(&shape, FilterLayout::Kcrs), 41);
        let expect = naive::conv_ref(&input, &filter, &shape);
        let pool = StaticPool::new(threads);
        let got = conv_winograd(&pool, &input, &filter, &shape);
        assert_close(got.as_slice(), expect.as_slice(), tol, "winograd vs naive");
    }


    #[test]
    fn matches_oracle_odd_output_masks_tail() {
        // P = Q = 7: the last tile row/column is half outside.
        check(ConvShape::new(2, 3, 7, 7, 5, 3, 3, 1, Padding::same(1)), 1, 1e-3);
    }


    #[test]
    fn filter_transform_reference_values() {
        // An impulse kernel (center tap = 1): U = G·e11·Gᵀ has the known
        // pattern [0,±¼…] — check one value.
        let mut f = Filter::zeros(1, 1, 3, 3, FilterLayout::Kcrs);
        *f.at_mut(0, 0, 1, 1) = 1.0;
        let u = WinogradFilter::transform(&f);
        // U[1][1] = row-G(½·g1)·col-G = ¼.
        assert!((u.matrix(5)[0] - 0.25).abs() < 1e-6);
        // Corner positions are 0 for the impulse.
        assert_eq!(u.matrix(0)[0], 0.0);
    }

    #[test]
    #[should_panic(expected = "needs 3x3")]
    fn rejects_non_3x3() {
        let shape = ConvShape::new(1, 1, 6, 6, 1, 1, 1, 1, Padding::NONE);
        let input = Tensor4::input_for(&shape, ActLayout::Nchw);
        let filter = Filter::for_shape(&shape, FilterLayout::Kcrs);
        conv_winograd(&StaticPool::new(1), &input, &filter, &shape);
    }

    #[test]
    fn error_grows_with_channel_count() {
        // The accuracy concern the paper cites: Winograd's transforms
        // amplify rounding relative to direct summation as C grows.
        let mut errs = Vec::new();
        for c in [4usize, 256] {
            let shape = ConvShape::new(1, c, 8, 8, 4, 3, 3, 1, Padding::same(1));
            let input = fill::random_tensor(Tensor4::input_for(&shape, ActLayout::Nchw), 1);
            let filter = fill::random_filter(Filter::for_shape(&shape, FilterLayout::Kcrs), 1);
            let expect = naive::conv_ref(&input, &filter, &shape);
            let got = conv_winograd(&StaticPool::new(1), &input, &filter, &shape);
            errs.push(ndirect_tensor::max_abs_diff(got.as_slice(), expect.as_slice()));
        }
        assert!(errs[1] > errs[0], "error should grow with C: {errs:?}");
    }

    #[test]
    fn workspace_accounting() {
        let shape = ConvShape::new(1, 8, 8, 8, 8, 3, 3, 1, Padding::same(1));
        // tiles = 16, so V and M are 16·8·16 each plus U = 16·64.
        assert_eq!(winograd_workspace_floats(&shape), 16 * (8 * 16 + 8 * 16 + 64));
    }
}

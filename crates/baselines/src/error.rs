//! Typed errors for the baseline convolutions.
//!
//! Every baseline validates its operands once at its public entry point;
//! the `try_`-prefixed forms surface failures as a [`BaselineError`], and
//! the legacy panicking forms format the same value into their panic
//! message — so both API flavours agree on what is invalid.

use ndirect_tensor::{ActLayout, Filter, FilterLayout, ShapeError, Tensor4};

/// Why a baseline convolution rejected its operands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BaselineError {
    /// The [`ndirect_tensor::ConvShape`] itself is malformed.
    Shape(ShapeError),
    /// A tensor arrived in the wrong memory layout.
    Layout {
        /// What the baseline requires, e.g. `"im2col baseline takes NCHW"`.
        context: &'static str,
    },
    /// A tensor's dimensions disagree with the shape descriptor.
    DimMismatch {
        /// Which operand (`"input dims"`, `"filter dims"`, `"output dims"`).
        what: &'static str,
        /// Dimensions the shape implies.
        expected: (usize, usize, usize, usize),
        /// Dimensions the tensor has.
        got: (usize, usize, usize, usize),
    },
    /// The algorithm cannot handle this problem class at all.
    Unsupported {
        /// Human-readable constraint, e.g.
        /// `"winograd F(2x2,3x3) needs 3x3 kernels"`.
        context: String,
    },
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BaselineError::Shape(e) => write!(f, "{e}"),
            BaselineError::Layout { context } => write!(f, "{context}"),
            BaselineError::DimMismatch {
                what,
                expected,
                got,
            } => write!(
                f,
                "{what} do not match shape: shape implies {expected:?}, tensor is {got:?}"
            ),
            BaselineError::Unsupported { context } => write!(f, "{context}"),
        }
    }
}

impl std::error::Error for BaselineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BaselineError::Shape(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ShapeError> for BaselineError {
    fn from(e: ShapeError) -> Self {
        BaselineError::Shape(e)
    }
}

pub(crate) fn check_act_layout(
    t: &Tensor4,
    want: ActLayout,
    context: &'static str,
) -> Result<(), BaselineError> {
    if t.layout() == want {
        Ok(())
    } else {
        Err(BaselineError::Layout { context })
    }
}

pub(crate) fn check_filter_layout(
    filter: &Filter,
    want: FilterLayout,
    context: &'static str,
) -> Result<(), BaselineError> {
    if filter.layout() == want {
        Ok(())
    } else {
        Err(BaselineError::Layout { context })
    }
}

pub(crate) fn check_dims(
    what: &'static str,
    expected: (usize, usize, usize, usize),
    got: (usize, usize, usize, usize),
) -> Result<(), BaselineError> {
    if expected == got {
        Ok(())
    } else {
        Err(BaselineError::DimMismatch {
            what,
            expected,
            got,
        })
    }
}

//! The XNNPACK-style indirect convolution baseline.
//!
//! The indirect algorithm (Dukhan, 2019) avoids im2col's data duplication by
//! materializing an *indirection buffer*: for every output pixel and every
//! kernel tap `(r, s)` it records where that tap's input row starts (or a
//! shared zero row for taps that fall into the padding). The kernel is then
//! GEMM-shaped — `(P·Q) × K` output, reduced over `R·S` indirect rows of
//! `C` contiguous channels — with `NHWC` activations and pre-packed
//! `[⌈K/KB⌉, R·S, C, KB]` weights (packed once at setup, like XNNPACK's
//! operator creation).

use ndirect_simd::{F32x4, SimdVec};
use ndirect_tensor::{ActLayout, AlignedBuf, ConvShape, Filter, FilterLayout, Tensor4};
use ndirect_threads::{split_static, SharedSlice, StaticPool};

use crate::error::{check_act_layout, check_dims, BaselineError};

/// Output-channel block: two 4-lane vectors per pixel.
pub const KB: usize = 8;
const KBV: usize = KB / 4;

/// Output pixels per micro-kernel invocation.
const MT: usize = 4;

/// Sentinel for "this tap reads the zero row".
const ZERO: usize = usize::MAX;

/// Weights packed for the indirect kernel: `[kblock][r·s][c][KB]`,
/// zero-padded in the `K` remainder.
pub struct PackedWeights {
    data: AlignedBuf,
    k: usize,
    c: usize,
    rs: usize,
}

impl PackedWeights {
    /// Packs a `KRSC` filter.
    pub fn pack(filter: &Filter) -> Self {
        assert_eq!(filter.layout(), FilterLayout::Krsc, "indirect conv packs KRSC");
        let (k, c, r, s) = filter.dims();
        let rs = r * s;
        let kblocks = k.div_ceil(KB);
        let mut data = AlignedBuf::zeroed(kblocks * rs * c * KB);
        for kb in 0..kblocks {
            for t in 0..rs {
                let (ri, si) = (t / s, t % s);
                for ci in 0..c {
                    let base = ((kb * rs + t) * c + ci) * KB;
                    for kl in 0..KB.min(k - kb * KB) {
                        data[base + kl] = filter.at(kb * KB + kl, ci, ri, si);
                    }
                }
            }
        }
        Self { data, k, c, rs }
    }

    fn kblocks(&self) -> usize {
        self.k.div_ceil(KB)
    }

    #[inline]
    fn block(&self, kblock: usize) -> &[f32] {
        let len = self.rs * self.c * KB;
        &self.data[kblock * len..(kblock + 1) * len]
    }
}

/// Builds the indirection buffer: `P·Q·R·S` entries, each the offset (in
/// floats, relative to an image's `NHWC` data) of the input row feeding
/// output pixel `(oj, oi)` through tap `(r, s)`, or the zero-row sentinel
/// (`usize::MAX`) when the tap
/// lands in padding. Identical for every image in the batch.
pub fn build_indirection(shape: &ConvShape) -> Vec<usize> {
    let (p, q) = (shape.p(), shape.q());
    let rs = shape.r * shape.s;
    let mut buf = vec![ZERO; p * q * rs];
    let (ph, pw) = (shape.pad.h as isize, shape.pad.w as isize);
    for oj in 0..p {
        for oi in 0..q {
            for r in 0..shape.r {
                for s in 0..shape.s {
                    let ij = (shape.stride * oj) as isize - ph + r as isize;
                    let ii = (shape.stride * oi) as isize - pw + s as isize;
                    let entry = &mut buf[(oj * q + oi) * rs + r * shape.s + s];
                    if ij >= 0 && ii >= 0 && (ij as usize) < shape.h && (ii as usize) < shape.w {
                        *entry = (ij as usize * shape.w + ii as usize) * shape.c;
                    }
                }
            }
        }
    }
    buf
}

/// Indirect convolution over `NHWC` input with pre-packed weights and a
/// pre-built indirection buffer, into a preallocated `NHWC` output.
///
/// Parallelism: `(image, output-row)` pairs split statically.
pub fn conv_indirect_prepacked(
    pool: &StaticPool,
    input: &Tensor4,
    weights: &PackedWeights,
    indirection: &[usize],
    shape: &ConvShape,
    output: &mut Tensor4,
) {
    try_conv_indirect_prepacked(pool, input, weights, indirection, shape, output)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`conv_indirect_prepacked`].
pub fn try_conv_indirect_prepacked(
    pool: &StaticPool,
    input: &Tensor4,
    weights: &PackedWeights,
    indirection: &[usize],
    shape: &ConvShape,
    output: &mut Tensor4,
) -> Result<(), BaselineError> {
    shape.validate()?;
    check_act_layout(input, ActLayout::Nhwc, "indirect conv takes NHWC")?;
    check_act_layout(output, ActLayout::Nhwc, "indirect conv writes NHWC")?;
    check_dims(
        "input dims",
        (shape.n, shape.c, shape.h, shape.w),
        input.dims(),
    )?;
    let (p, q) = (shape.p(), shape.q());
    check_dims("output dims", (shape.n, shape.k, p, q), output.dims())?;
    if (weights.k, weights.c, weights.rs) != (shape.k, shape.c, shape.r * shape.s)
        || indirection.len() != p * q * shape.r * shape.s
    {
        return Err(BaselineError::Unsupported {
            context: format!(
                "indirect conv operands disagree with shape: packed weights K={} C={} RS={}, \
                 indirection len {}, shape wants K={} C={} RS={} len {}",
                weights.k,
                weights.c,
                weights.rs,
                indirection.len(),
                shape.k,
                shape.c,
                shape.r * shape.s,
                p * q * shape.r * shape.s
            ),
        });
    }

    let zero_row = AlignedBuf::zeroed(shape.c);
    let work = shape.n * p;
    let threads = pool.size();
    let image_len = shape.h * shape.w * shape.c;
    let out_row_len = q * shape.k;
    let in_data = input.as_slice();

    let shared = SharedSlice::new(output.as_mut_slice());
    pool.run(|tid| {
        for item in split_static(work, threads, tid) {
            let n = item / p;
            let oj = item % p;
            let image = &in_data[n * image_len..(n + 1) * image_len];
            // SAFETY: each (n, oj) owns a distinct output row; the pool
            // barrier orders all writes before `run` returns.
            let out_row =
                unsafe { shared.range_mut((n * p + oj) * out_row_len, out_row_len) };
            conv_output_row(image, weights, indirection, shape, &zero_row, oj, q, out_row);
        }
    });
    Ok(())
}

/// One `NHWC` output row (`q` pixels × `K` channels).
#[allow(clippy::too_many_arguments)]
fn conv_output_row(
    image: &[f32],
    weights: &PackedWeights,
    indirection: &[usize],
    shape: &ConvShape,
    zero_row: &[f32],
    oj: usize,
    q: usize,
    out_row: &mut [f32],
) {
    let rs = shape.r * shape.s;
    let mut oi = 0;
    while oi < q {
        if oi + MT <= q {
            pixel_tile::<MT>(image, weights, indirection, shape, zero_row, oj, q, oi, out_row);
            oi += MT;
        } else {
            pixel_tile::<1>(image, weights, indirection, shape, zero_row, oj, q, oi, out_row);
            oi += 1;
        }
    }
    let _ = rs;
}

/// `M` pixels × `KB` channels per k-block, reduced over `R·S` indirect rows
/// × `C` channels with broadcast FMAs.
#[allow(clippy::too_many_arguments)]
#[inline]
fn pixel_tile<const M: usize>(
    image: &[f32],
    weights: &PackedWeights,
    indirection: &[usize],
    shape: &ConvShape,
    zero_row: &[f32],
    oj: usize,
    q: usize,
    oi: usize,
    out_row: &mut [f32],
) {
    let rs = shape.r * shape.s;
    let c = shape.c;
    let k = shape.k;
    for kblock in 0..weights.kblocks() {
        let wblock = weights.block(kblock);
        let mut acc = [[F32x4::zero(); KBV]; M];
        for t in 0..rs {
            // Resolve the M input rows for this tap.
            let mut rows: [&[f32]; M] = [zero_row; M];
            for (m, row) in rows.iter_mut().enumerate() {
                let off = indirection[((oj * q) + oi + m) * rs + t];
                if off != ZERO {
                    *row = &image[off..off + c];
                }
            }
            let wtap = &wblock[t * c * KB..(t + 1) * c * KB];
            for ci in 0..c {
                let wv0 = F32x4::load(&wtap[ci * KB..]);
                let wv1 = F32x4::load(&wtap[ci * KB + 4..]);
                for m in 0..M {
                    let x = F32x4::splat(rows[m][ci]);
                    acc[m][0] = acc[m][0].fma(wv0, x);
                    acc[m][1] = acc[m][1].fma(wv1, x);
                }
            }
        }
        // Store: NHWC output row, K innermost; mask the K remainder.
        let k0 = kblock * KB;
        let valid = KB.min(k - k0);
        for (m, accm) in acc.iter().enumerate() {
            let dst = &mut out_row[(oi + m) * k + k0..(oi + m) * k + k0 + valid];
            if valid == KB {
                accm[0].store(&mut dst[..4]);
                accm[1].store(&mut dst[4..]);
            } else {
                let mut tmp = [0.0f32; KB];
                accm[0].store(&mut tmp[..4]);
                accm[1].store(&mut tmp[4..]);
                dst.copy_from_slice(&tmp[..valid]);
            }
        }
    }
}

/// Indirect convolution from scratch: packs weights, builds the indirection
/// buffer, runs. `NHWC` in, `NHWC` out.
pub fn conv_indirect(
    pool: &StaticPool,
    input: &Tensor4,
    filter: &Filter,
    shape: &ConvShape,
) -> Tensor4 {
    try_conv_indirect(pool, input, filter, shape).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`conv_indirect`].
pub fn try_conv_indirect(
    pool: &StaticPool,
    input: &Tensor4,
    filter: &Filter,
    shape: &ConvShape,
) -> Result<Tensor4, BaselineError> {
    let weights = PackedWeights::pack(filter);
    let indirection = build_indirection(shape);
    let mut out = Tensor4::output_for(shape, ActLayout::Nhwc);
    try_conv_indirect_prepacked(pool, input, &weights, &indirection, shape, &mut out)?;
    Ok(out)
}

/// Adapter from the workspace's `NCHW`/`KCRS` convention, converting on
/// both sides (the cost an `NCHW` framework pays to call XNNPACK).
pub fn conv_indirect_nchw(
    pool: &StaticPool,
    input: &Tensor4,
    filter: &Filter,
    shape: &ConvShape,
) -> Tensor4 {
    try_conv_indirect_nchw(pool, input, filter, shape).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`conv_indirect_nchw`].
pub fn try_conv_indirect_nchw(
    pool: &StaticPool,
    input: &Tensor4,
    filter: &Filter,
    shape: &ConvShape,
) -> Result<Tensor4, BaselineError> {
    check_dims(
        "input dims",
        (shape.n, shape.c, shape.h, shape.w),
        input.dims(),
    )?;
    let in_nhwc = input.to_layout(ActLayout::Nhwc);
    let f_krsc = filter.to_layout(FilterLayout::Krsc);
    let out = try_conv_indirect(pool, &in_nhwc, &f_krsc, shape)?;
    Ok(out.to_layout(ActLayout::Nchw))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;
    use ndirect_tensor::{assert_close, fill, Padding};

    fn check(shape: ConvShape, threads: usize) {
        let input = fill::random_tensor(Tensor4::input_for(&shape, ActLayout::Nchw), 31);
        let filter = fill::random_filter(Filter::for_shape(&shape, FilterLayout::Kcrs), 31);
        let expect = naive::conv_ref(&input, &filter, &shape);
        let pool = StaticPool::new(threads);
        let got = conv_indirect_nchw(&pool, &input, &filter, &shape);
        assert_close(got.as_slice(), expect.as_slice(), 2e-4, "indirect vs naive");
    }



    #[test]
    fn matches_naive_k_remainder() {
        // K=10 exercises the masked store path.
        check(ConvShape::new(1, 4, 6, 6, 10, 3, 3, 1, Padding::same(1)), 1);
    }



    #[test]
    fn odd_width_uses_tail_tile() {
        check(ConvShape::new(1, 4, 7, 7, 8, 3, 3, 1, Padding::NONE), 1);
    }

    #[test]
    fn indirection_buffer_marks_padding() {
        let shape = ConvShape::new(1, 2, 4, 4, 2, 3, 3, 1, Padding::same(1));
        let ind = build_indirection(&shape);
        let rs = 9;
        // Top-left pixel, tap (0,0) is padding; tap (1,1) is input (0,0).
        assert_eq!(ind[0], ZERO);
        assert_eq!(ind[4], 0);
        // Interior pixel (1,1): no padding taps.
        let base = (4 + 1) * rs;
        assert!(ind[base..base + rs].iter().all(|&o| o != ZERO));
    }

    #[test]
    fn packed_weights_layout() {
        // K=KB, one tap, C=2: block is [c][kb].
        let mut f = Filter::zeros(KB, 2, 1, 1, FilterLayout::Krsc);
        for kl in 0..KB {
            *f.at_mut(kl, 0, 0, 0) = kl as f32;
            *f.at_mut(kl, 1, 0, 0) = 100.0 + kl as f32;
        }
        let w = PackedWeights::pack(&f);
        let b = w.block(0);
        assert_eq!(b[0..8], (0..8).map(|x| x as f32).collect::<Vec<_>>()[..]);
        assert_eq!(b[8], 100.0);
    }
}

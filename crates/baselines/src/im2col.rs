//! The im2col+GEMM baseline (MXNet's default convolution path).
//!
//! For each image, the input patch under every output position is flattened
//! into one column of a `(C·R·S) × (P·Q)` matrix; the `KCRS` filter tensor
//! is *already* a `K × (C·R·S)` row-major matrix, so the convolution becomes
//! one GEMM per image with the output written directly into the `NCHW`
//! output slice (`K × (P·Q)` row-major).
//!
//! Memory note: the column matrix is `C·R·S·P·Q` floats *per image* — the
//! duplication the paper criticizes im2col for. The batch-split parallel
//! path allocates one such buffer per thread, so transient scratch scales
//! with the team size (e.g. ~115 MiB/thread for VGG's conv1 at 224²) —
//! faithful to how MXNet-era frameworks behaved, and exactly the footprint
//! argument of §1/§2.2.
//!
//! The paper's Figure 1a attributes this baseline's runtime to three phases
//! — `im2col` (column-matrix materialization), `packing` (GEMM-internal
//! operand packing) and `micro-kernel` — which [`conv_im2col_timed`]
//! measures with an instrumented copy of the Goto loop nest.

use ndirect_gemm::kernel::{microkernel, microkernel_edge};
use ndirect_gemm::pack::{pack_a, pack_b};
use ndirect_gemm::{gemm_strided, BlockSizes, MR, NR};
use ndirect_platform::Stopwatch;
use ndirect_tensor::{pad::at_padded, ActLayout, AlignedBuf, ConvShape, Filter, Tensor4};
use ndirect_threads::{split_static, SharedSlice, StaticPool};

use crate::error::{check_act_layout, check_dims, check_filter_layout, BaselineError};

/// Materializes the column matrix for image `n`: `buf[(c·R+r)·S+s][oj·Q+oi] =
/// I[n][c][str·oj−pad.h+r][str·oi−pad.w+s]` (zero outside the input).
///
/// `buf` must hold `C·R·S·P·Q` floats.
pub fn im2col_image(input: &Tensor4, shape: &ConvShape, n: usize, buf: &mut [f32]) {
    let (p, q) = (shape.p(), shape.q());
    let cols = p * q;
    assert!(buf.len() >= shape.c * shape.r * shape.s * cols, "im2col buffer");
    let (ph, pw) = (shape.pad.h as isize, shape.pad.w as isize);
    let mut row = 0;
    for c in 0..shape.c {
        for r in 0..shape.r {
            for s in 0..shape.s {
                let dst = &mut buf[row * cols..(row + 1) * cols];
                let mut idx = 0;
                for oj in 0..p {
                    let ij = (shape.stride * oj) as isize - ph + r as isize;
                    for oi in 0..q {
                        let ii = (shape.stride * oi) as isize - pw + s as isize;
                        dst[idx] = at_padded(input, n, c, ij, ii);
                        idx += 1;
                    }
                }
                row += 1;
            }
        }
    }
}

/// im2col+GEMM convolution into a preallocated `NCHW` output.
///
/// Parallelization follows the baseline's natural strategy: with at least
/// one image per thread the batch dimension is split statically; otherwise
/// each image's GEMM is run on the whole team.
pub fn conv_im2col_into(
    pool: &StaticPool,
    input: &Tensor4,
    filter: &Filter,
    shape: &ConvShape,
    output: &mut Tensor4,
) {
    try_conv_im2col_into(pool, input, filter, shape, output).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`conv_im2col_into`].
pub fn try_conv_im2col_into(
    pool: &StaticPool,
    input: &Tensor4,
    filter: &Filter,
    shape: &ConvShape,
    output: &mut Tensor4,
) -> Result<(), BaselineError> {
    validate(input, filter, shape, output)?;
    let (p, q) = (shape.p(), shape.q());
    let cols = p * q;
    let crs = shape.c * shape.r * shape.s;
    let f_mat = filter.as_slice(); // KCRS == K x CRS row-major
    let threads = pool.size();

    if shape.n >= threads && threads > 1 {
        let shared = SharedSlice::new(output.as_mut_slice());
        pool.run(|tid| {
            let mut col = AlignedBuf::zeroed(crs * cols);
            for n in split_static(shape.n, threads, tid) {
                im2col_image(input, shape, n, &mut col);
                // SAFETY: image slices of the output are disjoint per n, and
                // the pool barrier orders all writes before `run` returns.
                let out_image =
                    unsafe { shared.range_mut(n * shape.k * cols, shape.k * cols) };
                gemm_strided(
                    shape.k,
                    cols,
                    crs,
                    f_mat,
                    crs,
                    &col,
                    cols,
                    out_image,
                    cols,
                    BlockSizes::default(),
                );
            }
        });
    } else {
        let mut col = AlignedBuf::zeroed(crs * cols);
        for n in 0..shape.n {
            im2col_image(input, shape, n, &mut col);
            let out_image = &mut output.as_mut_slice()[n * shape.k * cols..(n + 1) * shape.k * cols];
            ndirect_gemm::par_gemm(pool, shape.k, cols, crs, f_mat, &col, out_image, BlockSizes::default());
        }
    }
    Ok(())
}

/// im2col+GEMM, allocating the output.
pub fn conv_im2col(
    pool: &StaticPool,
    input: &Tensor4,
    filter: &Filter,
    shape: &ConvShape,
) -> Tensor4 {
    try_conv_im2col(pool, input, filter, shape).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`conv_im2col`].
pub fn try_conv_im2col(
    pool: &StaticPool,
    input: &Tensor4,
    filter: &Filter,
    shape: &ConvShape,
) -> Result<Tensor4, BaselineError> {
    let mut out = Tensor4::output_for(shape, ActLayout::Nchw);
    try_conv_im2col_into(pool, input, filter, shape, &mut out)?;
    Ok(out)
}

/// Sequential im2col+GEMM with per-phase timing (`im2col`, `packing`,
/// `micro-kernel`) — the Figure 1a breakdown. Runs single-threaded so the
/// phase attribution is exact.
pub fn conv_im2col_timed(
    input: &Tensor4,
    filter: &Filter,
    shape: &ConvShape,
) -> (Tensor4, Stopwatch) {
    let mut output = Tensor4::output_for(shape, ActLayout::Nchw);
    validate_unpooled(input, filter, shape).unwrap_or_else(|e| panic!("{e}"));
    let (p, q) = (shape.p(), shape.q());
    let cols = p * q;
    let crs = shape.c * shape.r * shape.s;
    let f_mat = filter.as_slice();
    let mut sw = Stopwatch::new();
    let mut col = AlignedBuf::zeroed(crs * cols);
    for n in 0..shape.n {
        sw.time("im2col", || im2col_image(input, shape, n, &mut col));
        let out_image = &mut output.as_mut_slice()[n * shape.k * cols..(n + 1) * shape.k * cols];
        gemm_timed(shape.k, cols, crs, f_mat, &col, out_image, &mut sw);
    }
    (output, sw)
}

/// The Goto loop nest with packing and micro-kernel phases timed
/// separately. Mirrors `ndirect_gemm::gemm_strided` exactly; kept here (not
/// in the gemm crate) because timing instrumentation does not belong on the
/// production hot path.
fn gemm_timed(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    sw: &mut Stopwatch,
) {
    let BlockSizes { mc, kc, nc } = BlockSizes::default();
    let mut packed_a = AlignedBuf::zeroed(mc.div_ceil(MR) * MR * kc);
    let mut packed_b = AlignedBuf::zeroed(nc.div_ceil(NR) * NR * kc);
    const NRV: usize = NR / 4;

    for jc in (0..n).step_by(nc) {
        let ncb = nc.min(n - jc);
        for pc in (0..k).step_by(kc) {
            let kcb = kc.min(k - pc);
            sw.time("packing", || pack_b::<NR>(&b[pc * n + jc..], n, kcb, ncb, &mut packed_b));
            for ic in (0..m).step_by(mc) {
                let mcb = mc.min(m - ic);
                sw.time("packing", || pack_a::<MR>(&a[ic * k + pc..], k, mcb, kcb, &mut packed_a));
                sw.time("micro-kernel", || {
                    for jr in (0..ncb).step_by(NR) {
                        let colsn = NR.min(ncb - jr);
                        let b_panel = &packed_b[(jr / NR) * NR * kcb..];
                        for ir in (0..mcb).step_by(MR) {
                            let rows = MR.min(mcb - ir);
                            let a_panel = &packed_a[(ir / MR) * MR * kcb..];
                            let c_tile = &mut c[(ic + ir) * n + jc + jr..];
                            if rows == MR && colsn == NR {
                                microkernel::<MR, NRV>(kcb, a_panel, b_panel, c_tile, n);
                            } else {
                                microkernel_edge::<MR, NRV>(
                                    kcb, a_panel, b_panel, c_tile, n, rows, colsn,
                                );
                            }
                        }
                    }
                });
            }
        }
    }
}

fn validate(
    input: &Tensor4,
    filter: &Filter,
    shape: &ConvShape,
    output: &Tensor4,
) -> Result<(), BaselineError> {
    validate_unpooled(input, filter, shape)?;
    check_dims(
        "output dims",
        (shape.n, shape.k, shape.p(), shape.q()),
        output.dims(),
    )?;
    check_act_layout(output, ActLayout::Nchw, "im2col writes NCHW")
}

fn validate_unpooled(
    input: &Tensor4,
    filter: &Filter,
    shape: &ConvShape,
) -> Result<(), BaselineError> {
    shape.validate()?;
    check_act_layout(input, ActLayout::Nchw, "im2col baseline takes NCHW")?;
    check_filter_layout(
        filter,
        ndirect_tensor::FilterLayout::Kcrs,
        "im2col baseline takes KCRS",
    )?;
    check_dims(
        "input dims",
        (shape.n, shape.c, shape.h, shape.w),
        input.dims(),
    )?;
    check_dims(
        "filter dims",
        (shape.k, shape.c, shape.r, shape.s),
        filter.dims(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;
    use ndirect_tensor::{assert_close, fill, FilterLayout, Padding};

    fn check(shape: ConvShape, threads: usize) {
        let input = fill::random_tensor(Tensor4::input_for(&shape, ActLayout::Nchw), 3);
        let filter = fill::random_filter(Filter::for_shape(&shape, FilterLayout::Kcrs), 3);
        let expect = naive::conv_ref(&input, &filter, &shape);
        let pool = StaticPool::new(threads);
        let got = conv_im2col(&pool, &input, &filter, &shape);
        assert_close(got.as_slice(), expect.as_slice(), 2e-4, "im2col vs naive");
    }




    #[test]
    fn parallel_batch_split_matches() {
        check(ConvShape::new(4, 4, 8, 8, 6, 3, 3, 1, Padding::same(1)), 4);
    }

    #[test]
    fn parallel_gemm_path_matches() {
        // n < threads forces the per-image par_gemm path.
        check(ConvShape::new(1, 4, 12, 12, 8, 3, 3, 1, Padding::same(1)), 4);
    }

    #[test]
    fn timed_variant_matches_and_reports_phases() {
        let shape = ConvShape::new(1, 4, 8, 8, 6, 3, 3, 1, Padding::same(1));
        let input = fill::random_tensor(Tensor4::input_for(&shape, ActLayout::Nchw), 5);
        let filter = fill::random_filter(Filter::for_shape(&shape, FilterLayout::Kcrs), 5);
        let expect = naive::conv_ref(&input, &filter, &shape);
        let (got, sw) = conv_im2col_timed(&input, &filter, &shape);
        assert_close(got.as_slice(), expect.as_slice(), 2e-4, "timed im2col");
        let phases: Vec<&str> = sw.phases().iter().map(|(p, _)| *p).collect();
        assert!(phases.contains(&"im2col"));
        assert!(phases.contains(&"packing"));
        assert!(phases.contains(&"micro-kernel"));
    }

    #[test]
    fn im2col_matrix_layout() {
        // 2x2 input, 1 channel, 2x2 kernel, valid conv -> single column.
        let shape = ConvShape::new(1, 1, 2, 2, 1, 2, 2, 1, Padding::NONE);
        let mut input = Tensor4::input_for(&shape, ActLayout::Nchw);
        fill::fill_iota(input.as_mut_slice());
        let mut buf = vec![0.0; 4];
        im2col_image(&input, &shape, 0, &mut buf);
        assert_eq!(buf, vec![0.0, 1.0, 2.0, 3.0]);
    }
}

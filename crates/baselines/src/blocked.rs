//! The LIBXSMM-style blocked direct convolution baseline.
//!
//! Reproduces the design the paper describes in §2.3: activations in
//! `NCHWc` (channel blocks of [`CB`] matching the vector width), filters in
//! `[⌈K/kb⌉, ⌈C/cb⌉, R, S, cb, kb]`, and a Batch-Reduce-GEMM-style
//! micro-kernel that accumulates a strip of output pixels over all
//! `(cblock, r, s)` combinations with lane-broadcast FMAs.
//!
//! Like LIBXSMM, this backend is fast *once the data is in its layout* but
//! needs format conversions at the `NCHW` boundary; [`conv_blocked_timed`]
//! measures the conversion and kernel phases separately, which is how the
//! paper's Figure 1a attributes up to 90% of runtime to `transform`, and
//! how Figure 4 can report micro-kernel-only throughput
//! ([`conv_blocked`] on pre-converted operands).

use ndirect_simd::{F32x4, SimdVec};
use ndirect_tensor::{
    pad::pad_input, ActLayout, BlockedFilter, BlockedTensor, ConvShape, Filter, Tensor4,
};
use ndirect_platform::Stopwatch;

use crate::error::{check_dims, BaselineError};
use ndirect_threads::{split_static, SharedSlice, StaticPool};

/// Input-channel block (`c` of `NCHWc`) — one 4-lane vector.
pub const CB: usize = 4;

/// Output-channel block (`k`) — two 4-lane vectors, LIBXSMM's typical
/// register blocking on 128-bit ISAs.
pub const KB: usize = 8;

const KBV: usize = KB / 4;

/// Output-pixel strip width processed per micro-kernel invocation.
const WT: usize = 4;

/// Blocked direct convolution on pre-converted operands.
///
/// * `input` must already be zero-padded spatially and blocked with
///   `cb == CB`;
/// * `filter` must be blocked with `(cb, kb) == (CB, KB)`;
/// * the result is a `NCHWc`-blocked output with `cb == KB`.
///
/// Parallelism: the `(n, kblock)` pairs are split statically across the
/// pool — LIBXSMM's natural decomposition, deterministic by construction.
pub fn conv_blocked(
    pool: &StaticPool,
    input: &BlockedTensor,
    filter: &BlockedFilter,
    shape: &ConvShape,
) -> BlockedTensor {
    try_conv_blocked(pool, input, filter, shape).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`conv_blocked`].
pub fn try_conv_blocked(
    pool: &StaticPool,
    input: &BlockedTensor,
    filter: &BlockedFilter,
    shape: &ConvShape,
) -> Result<BlockedTensor, BaselineError> {
    shape.validate()?;
    if input.cb() != CB || filter.cb() != CB || filter.kb() != KB {
        return Err(BaselineError::Unsupported {
            context: format!(
                "blocked baseline needs input channel block {CB} and filter blocks {CB}x{KB}, \
                 got input cb {}, filter cb {}, filter kb {}",
                input.cb(),
                filter.cb(),
                filter.kb()
            ),
        });
    }
    check_dims(
        "filter dims",
        (shape.k, shape.c, shape.r, shape.s),
        filter.dims(),
    )?;
    // The blocked input must arrive pre-padded spatially.
    check_dims(
        "input dims",
        (shape.n, shape.c, shape.padded_h(), shape.padded_w()),
        input.dims(),
    )?;

    let (p, q) = (shape.p(), shape.q());
    let mut out = BlockedTensor::zeros(shape.n, shape.k, p, q, KB);
    let kblocks = filter.kblocks();
    let cblocks = filter.cblocks();
    let work = shape.n * kblocks;
    let threads = pool.size();

    let shared = SharedSlice::new(out.as_mut_slice());
    pool.run(|tid| {
        for item in split_static(work, threads, tid) {
            let n = item / kblocks;
            let kblk = item % kblocks;
            let plane_off = (n * shape.k.div_ceil(KB) + kblk) * p * q * KB;
            // SAFETY: each (n, kblk) work item owns its [p][q][KB] plane —
            // a disjoint contiguous range; the pool barrier orders all
            // writes before `run` returns.
            let out_plane = unsafe { shared.range_mut(plane_off, p * q * KB) };
            conv_plane(input, filter, shape, n, kblk, cblocks, out_plane, p, q);
        }
    });
    Ok(out)
}

/// Computes one `(image, k-block)` output plane.
#[allow(clippy::too_many_arguments)]
fn conv_plane(
    input: &BlockedTensor,
    filter: &BlockedFilter,
    shape: &ConvShape,
    n: usize,
    kblk: usize,
    cblocks: usize,
    out_plane: &mut [f32],
    p: usize,
    q: usize,
) {
    let (_, _, ih, iw) = input.dims();
    let in_data = input.as_slice();
    let f_data = filter.as_slice();
    let in_cblocks = input.cblocks();
    let in_image = &in_data[n * in_cblocks * ih * iw * CB..(n + 1) * in_cblocks * ih * iw * CB];

    for oj in 0..p {
        let mut oi = 0;
        while oi < q {
            if oi + WT <= q {
                pixel_strip::<WT>(
                    in_image, f_data, filter, shape, cblocks, ih, iw, kblk, oj, oi, out_plane, q,
                );
                oi += WT;
            } else {
                pixel_strip::<1>(
                    in_image, f_data, filter, shape, cblocks, ih, iw, kblk, oj, oi, out_plane, q,
                );
                oi += 1;
            }
        }
    }
}

/// The BRGEMM-style micro-kernel: `W` output pixels × `KB` output channels,
/// reduced over every `(cblock, r, s)`.
#[allow(clippy::too_many_arguments)]
#[inline]
fn pixel_strip<const W: usize>(
    in_image: &[f32],
    f_data: &[f32],
    filter: &BlockedFilter,
    shape: &ConvShape,
    cblocks: usize,
    ih: usize,
    iw: usize,
    kblk: usize,
    oj: usize,
    oi: usize,
    out_plane: &mut [f32],
    q: usize,
) {
    let mut acc = [[F32x4::zero(); KBV]; W];
    let str = shape.stride;
    for cblk in 0..cblocks {
        for r in 0..shape.r {
            let ijr = oj * str + r;
            for s in 0..shape.s {
                // CB×KB filter block, contiguous: [clane][kb].
                let f0 = filter.vector_offset(kblk, cblk, r, s, 0);
                let fblk = &f_data[f0..f0 + CB * KB];
                let mut fv = [F32x4::zero(); CB * KBV];
                for (j, v) in fv.iter_mut().enumerate() {
                    *v = F32x4::load(&fblk[j * 4..]);
                }
                for (wi, accw) in acc.iter_mut().enumerate() {
                    let iwp = (oi + wi) * str + s;
                    let ioff = ((cblk * ih + ijr) * iw + iwp) * CB;
                    let iv = F32x4::load(&in_image[ioff..]);
                    for j in 0..KBV {
                        accw[j] = accw[j].fma_lane::<0>(fv[j], iv);
                        accw[j] = accw[j].fma_lane::<1>(fv[KBV + j], iv);
                        accw[j] = accw[j].fma_lane::<2>(fv[2 * KBV + j], iv);
                        accw[j] = accw[j].fma_lane::<3>(fv[3 * KBV + j], iv);
                    }
                }
            }
        }
    }
    for (wi, accw) in acc.iter().enumerate() {
        let o = (oj * q + oi + wi) * KB;
        for (j, v) in accw.iter().enumerate() {
            v.store(&mut out_plane[o + j * 4..]);
        }
    }
}

/// Full pipeline from `NCHW`/`KCRS`: pad + convert in, convolve, convert
/// out. This is what integrating LIBXSMM into an `NCHW` framework costs.
pub fn conv_blocked_nchw(
    pool: &StaticPool,
    input: &Tensor4,
    filter: &Filter,
    shape: &ConvShape,
) -> Tensor4 {
    let (out, _sw) = conv_blocked_timed(pool, input, filter, shape);
    out
}

/// Fallible form of [`conv_blocked_nchw`]: validates the unblocked
/// operands, then runs the full pad/convert/convolve pipeline.
pub fn try_conv_blocked_nchw(
    pool: &StaticPool,
    input: &Tensor4,
    filter: &Filter,
    shape: &ConvShape,
) -> Result<Tensor4, BaselineError> {
    shape.validate()?;
    check_dims(
        "input dims",
        (shape.n, shape.c, shape.h, shape.w),
        input.dims(),
    )?;
    check_dims(
        "filter dims",
        (shape.k, shape.c, shape.r, shape.s),
        filter.dims(),
    )?;
    let (out, _sw) = conv_blocked_timed(pool, input, filter, shape);
    Ok(out)
}

/// As [`conv_blocked_nchw`], with `transform` / `micro-kernel` phase timing
/// (Figure 1a's LIBXSMM breakdown).
pub fn conv_blocked_timed(
    pool: &StaticPool,
    input: &Tensor4,
    filter: &Filter,
    shape: &ConvShape,
) -> (Tensor4, Stopwatch) {
    let mut sw = Stopwatch::new();
    let (binput, bfilter) = sw.time("transform", || {
        let padded = pad_input(input, shape.pad);
        (
            BlockedTensor::from_tensor(&padded, CB),
            BlockedFilter::from_filter(filter, CB, KB),
        )
    });
    let bout = sw.time("micro-kernel", || conv_blocked(pool, &binput, &bfilter, shape));
    let out = sw.time("transform", || bout.to_tensor(ActLayout::Nchw));
    (out, sw)
}

/// Pre-converted operands for kernel-only measurements (Figure 4 measures
/// LIBXSMM's micro-kernels without conversion cost).
pub struct BlockedOperands {
    /// `NCHWc` pre-padded activation tensor.
    pub input: BlockedTensor,
    /// Channel-blocked filter.
    pub filter: BlockedFilter,
}

/// Converts once, outside the timed region.
pub fn prepare_blocked(input: &Tensor4, filter: &Filter, shape: &ConvShape) -> BlockedOperands {
    let padded = pad_input(input, shape.pad);
    BlockedOperands {
        input: BlockedTensor::from_tensor(&padded, CB),
        filter: BlockedFilter::from_filter(filter, CB, KB),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;
    use ndirect_tensor::{assert_close, fill, FilterLayout, Padding};

    fn check(shape: ConvShape, threads: usize) {
        let input = fill::random_tensor(Tensor4::input_for(&shape, ActLayout::Nchw), 21);
        let filter = fill::random_filter(Filter::for_shape(&shape, FilterLayout::Kcrs), 21);
        let expect = naive::conv_ref(&input, &filter, &shape);
        let pool = StaticPool::new(threads);
        let got = conv_blocked_nchw(&pool, &input, &filter, &shape);
        assert_close(got.as_slice(), expect.as_slice(), 2e-4, "blocked vs naive");
    }


    #[test]
    fn matches_naive_unaligned_channels() {
        // C=5 (partial c block), K=10 (partial k block).
        check(ConvShape::new(1, 5, 7, 7, 10, 3, 3, 1, Padding::NONE), 1);
    }




    #[test]
    fn odd_output_width_uses_tail_strip() {
        // q = 5 exercises both the WT=4 strip and the WT=1 tail.
        check(ConvShape::new(1, 4, 7, 7, 8, 3, 3, 1, Padding::NONE), 1);
    }

    #[test]
    fn timed_variant_reports_transform_and_kernel() {
        let shape = ConvShape::new(1, 4, 6, 6, 8, 3, 3, 1, Padding::same(1));
        let input = fill::random_tensor(Tensor4::input_for(&shape, ActLayout::Nchw), 2);
        let filter = fill::random_filter(Filter::for_shape(&shape, FilterLayout::Kcrs), 2);
        let pool = StaticPool::new(1);
        let (_, sw) = conv_blocked_timed(&pool, &input, &filter, &shape);
        let names: Vec<&str> = sw.phases().iter().map(|(p, _)| *p).collect();
        assert_eq!(names, vec!["transform", "micro-kernel"]);
    }

    #[test]
    fn kernel_only_entry_point_matches() {
        let shape = ConvShape::new(2, 8, 6, 6, 16, 3, 3, 1, Padding::same(1));
        let input = fill::random_tensor(Tensor4::input_for(&shape, ActLayout::Nchw), 9);
        let filter = fill::random_filter(Filter::for_shape(&shape, FilterLayout::Kcrs), 9);
        let ops = prepare_blocked(&input, &filter, &shape);
        let pool = StaticPool::new(2);
        let bout = conv_blocked(&pool, &ops.input, &ops.filter, &shape);
        let got = bout.to_tensor(ActLayout::Nchw);
        let expect = naive::conv_ref(&input, &filter, &shape);
        assert_close(got.as_slice(), expect.as_slice(), 2e-4, "kernel-only");
    }
}

//! One conformance harness for every baseline: each method runs the same
//! small Table-4-like layer grid and is compared against the direct
//! (nDirect) convolution in max-ULP terms, with a per-baseline budget.
//!
//! This replaces the per-file `matches_naive_*` agreement tests that used
//! to be scattered through the baseline modules with one table: adding a
//! layer here exercises *every* method, and the ULP budgets document each
//! method's numerical character (exact-reassociation methods sit within a
//! few thousand ULP of direct; Winograd's and FFT's transforms amplify
//! rounding by orders of magnitude — the accuracy trade-off the paper
//! cites).
//!
//! Per-method *edge-case* tests (partial channel blocks, masked tails,
//! layout internals) stay with their modules; this file owns agreement.

use ndirect_baselines::{blocked, fft, im2col, indirect, naive, winograd};
use ndirect_core::{conv_ndirect_with, PackingMode, Schedule};
use ndirect_tensor::{fill, ActLayout, ConvShape, Filter, FilterLayout, Padding, Tensor4};
use ndirect_threads::StaticPool;

/// Packing override for the direct reference, from `NDIRECT_FORCE_PACKING`
/// (`fused` / `sequential` / `none` / `sliced:<rows>`). CI's packing-variant
/// matrix sets this so the whole conformance table re-runs against each
/// schedule variant; an unrecognized value is a test bug, not a skip.
fn forced_packing() -> Option<PackingMode> {
    let raw = std::env::var("NDIRECT_FORCE_PACKING").ok()?;
    Some(
        PackingMode::parse(&raw)
            .unwrap_or_else(|| panic!("NDIRECT_FORCE_PACKING={raw:?} is not a packing mode")),
    )
}

/// The direct (nDirect) reference: the host-derived schedule, with the
/// packing mode overridden when the CI matrix forces one.
fn direct_reference(
    pool: &StaticPool,
    input: &Tensor4,
    filter: &Filter,
    shape: &ConvShape,
) -> Tensor4 {
    let mut sched = Schedule::derive(&ndirect_platform::host(), shape, pool.size());
    if let Some(mode) = forced_packing() {
        sched.packing = mode;
        sched = sched.sanitized(shape);
    }
    conv_ndirect_with(pool, input, filter, shape, &sched)
}

/// ULP distance between two finite f32s: how many representable floats
/// apart they are, via the lexicographic-order mapping of IEEE bits.
/// Values straddling zero are charged the sum of their distances from
/// zero, so callers pair this with a small absolute floor (cancellation
/// can park a tiny result on either side of 0.0).
fn ulp_distance(a: f32, b: f32) -> u64 {
    fn order(x: f32) -> i64 {
        let bits = x.to_bits() as i32;
        if bits < 0 {
            // Negative floats: magnitude bits grow toward -inf, so negate
            // the magnitude to keep the mapping monotone through zero.
            -i64::from(bits & i32::MAX)
        } else {
            i64::from(bits)
        }
    }
    order(a).abs_diff(order(b))
}

/// Max hybrid ULP distance over two slices: exact zeros-by-floor first,
/// ULP distance for everything else.
fn max_ulp(got: &[f32], want: &[f32], abs_floor: f32) -> u64 {
    assert_eq!(got.len(), want.len(), "conformance outputs must be same-size");
    got.iter()
        .zip(want)
        .map(|(&g, &w)| {
            assert!(g.is_finite(), "baseline produced a non-finite value {g}");
            if (g - w).abs() <= abs_floor {
                0
            } else {
                ulp_distance(g, w)
            }
        })
        .max()
        .unwrap_or(0)
}

/// The shared layer grid: scaled-down stand-ins for Table 4's regimes —
/// the 7×7/stride-2 stem, a mid-network 3×3, a 1×1 projection, an
/// odd-spatial stride-2 downsample, and a valid (unpadded) 3×3 with tail
/// tiles.
fn layer_grid() -> Vec<(&'static str, ConvShape)> {
    vec![
        ("stem 7x7 s2", ConvShape::new(1, 3, 28, 28, 16, 7, 7, 2, Padding::same(3))),
        ("mid 3x3", ConvShape::square(1, 32, 32, 14, 3, 1)),
        ("proj 1x1", ConvShape::square(2, 32, 16, 14, 1, 1)),
        ("down 3x3 s2", ConvShape::new(1, 16, 15, 15, 32, 3, 3, 2, Padding::same(1))),
        ("valid 3x3", ConvShape::new(2, 8, 13, 13, 8, 3, 3, 1, Padding::NONE)),
    ]
}

/// Runs one baseline over every supported grid layer against the direct
/// path and enforces its ULP budget. The direct reference and the
/// baseline see identical operands (seeded per layer).
fn conformance(
    name: &str,
    budget_ulp: u64,
    abs_floor: f32,
    supports: impl Fn(&ConvShape) -> bool,
    run: impl Fn(&StaticPool, &Tensor4, &Filter, &ConvShape) -> Tensor4,
) {
    let pool = StaticPool::new(2);
    let mut covered = 0;
    for (i, (label, shape)) in layer_grid().into_iter().enumerate() {
        if !supports(&shape) {
            continue;
        }
        covered += 1;
        let seed = 0xc0f0 + i as u64;
        let input = fill::random_tensor(Tensor4::input_for(&shape, ActLayout::Nchw), seed);
        let filter = fill::random_filter(Filter::for_shape(&shape, FilterLayout::Kcrs), seed ^ 1);
        let want = direct_reference(&pool, &input, &filter, &shape);
        let got = run(&pool, &input, &filter, &shape);
        let ulp = max_ulp(got.as_slice(), want.as_slice(), abs_floor);
        eprintln!("{name:<10} {label:<12} max {ulp} ULP (budget {budget_ulp})");
        assert!(
            ulp <= budget_ulp,
            "{name} on '{label}' ({shape}): {ulp} ULP from direct exceeds budget {budget_ulp}"
        );
    }
    assert!(covered >= 2, "{name} must cover at least two grid layers");
}

/// Declares one conformance test per baseline row:
/// `name => (budget_ulp, abs_floor, supports, runner)`.
macro_rules! conformance_suite {
    ($($test:ident: $name:literal => ($budget:expr, $floor:expr, $supports:expr, $run:expr);)+) => {
        $(
            #[test]
            fn $test() {
                conformance($name, $budget, $floor, $supports, $run);
            }
        )+
    };
}

conformance_suite! {
    // Exact-arithmetic methods reassociate the same f32 products, so they
    // sit within a few thousand ULP (~1e-4 relative) of the direct
    // summation order even on low-channel layers where each individual
    // rounding step weighs more.
    naive_conforms_to_direct: "naive" =>
        (4096, 1e-6, |_: &ConvShape| true,
         |_p: &StaticPool, i: &Tensor4, f: &Filter, s: &ConvShape| naive::conv_ref(i, f, s));
    im2col_conforms_to_direct: "im2col" =>
        (4096, 1e-6, |_: &ConvShape| true,
         |p: &StaticPool, i: &Tensor4, f: &Filter, s: &ConvShape| im2col::conv_im2col(p, i, f, s));
    blocked_conforms_to_direct: "blocked" =>
        (4096, 1e-6, |_: &ConvShape| true,
         |p: &StaticPool, i: &Tensor4, f: &Filter, s: &ConvShape| blocked::conv_blocked_nchw(p, i, f, s));
    indirect_conforms_to_direct: "indirect" =>
        (4096, 1e-6, |_: &ConvShape| true,
         |p: &StaticPool, i: &Tensor4, f: &Filter, s: &ConvShape| indirect::conv_indirect_nchw(p, i, f, s));
    // Transform-domain methods trade accuracy for FLOPs; their budgets are
    // orders of magnitude wider — the paper's §2.1 accuracy argument.
    winograd_conforms_to_direct: "winograd" =>
        (1 << 16, 1e-5, |s: &ConvShape| s.r == 3 && s.s == 3 && s.stride == 1,
         |p: &StaticPool, i: &Tensor4, f: &Filter, s: &ConvShape| winograd::conv_winograd(p, i, f, s));
    fft_conforms_to_direct: "fft" =>
        (1 << 17, 1e-4, |_: &ConvShape| true,
         |p: &StaticPool, i: &Tensor4, f: &Filter, s: &ConvShape| fft::conv_fft(p, i, f, s));
}

/// Every packing variant of the direct path is one plan over the same
/// Algorithm 2 loop nest: each output element still has exactly one
/// writer accumulating the same products in the same order, so outputs
/// must be *bitwise* identical across variants — no ULP budget at all.
/// This runs the full grid (stride-2 stem, boundary-heavy odd-spatial
/// downsample, valid-padding tails) against the `Fused` reference.
#[test]
fn packing_variants_are_bitwise_identical_to_fused() {
    let pool = StaticPool::new(2);
    for (i, (label, shape)) in layer_grid().into_iter().enumerate() {
        let seed = 0xace0 + i as u64;
        let input = fill::random_tensor(Tensor4::input_for(&shape, ActLayout::Nchw), seed);
        let filter = fill::random_filter(Filter::for_shape(&shape, FilterLayout::Kcrs), seed ^ 1);
        let base = Schedule::derive(&ndirect_platform::host(), &shape, pool.size());
        let mut fused = base.clone();
        fused.packing = PackingMode::Fused;
        let want = conv_ndirect_with(&pool, &input, &filter, &shape, &fused.sanitized(&shape));
        for mode in [
            PackingMode::Sequential,
            PackingMode::None,
            PackingMode::Sliced { rows: 1 },
            PackingMode::Sliced { rows: 3 },
            PackingMode::Sliced { rows: usize::MAX },
        ] {
            let mut sched = base.clone();
            sched.packing = mode;
            let got = conv_ndirect_with(&pool, &input, &filter, &shape, &sched.sanitized(&shape));
            assert_eq!(
                got.as_slice(),
                want.as_slice(),
                "'{label}' ({shape}) under {mode:?} diverges bitwise from Fused"
            );
        }
    }
}

#[test]
fn ulp_distance_helper_is_sane() {
    assert_eq!(ulp_distance(1.0, 1.0), 0);
    assert_eq!(ulp_distance(1.0, f32::from_bits(1.0f32.to_bits() + 1)), 1);
    // Symmetric, and counts across zero as distance-from-zero sums.
    assert_eq!(ulp_distance(-0.0, 0.0), 0);
    assert_eq!(ulp_distance(1.5, 1.0), ulp_distance(1.0, 1.5));
    assert!(ulp_distance(-1e-30, 1e-30) > 0);
    // The floor suppresses cancellation noise near zero.
    assert_eq!(max_ulp(&[1e-7], &[-1e-7], 1e-6), 0);
}

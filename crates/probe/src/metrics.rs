//! Always-on serving metrics: lock-free log-bucketed histograms,
//! sliding-window rate counters, gauges, and a [`MetricsRegistry`] that
//! snapshots everything into the in-tree [`Json`] layer or Prometheus text
//! exposition format.
//!
//! Unlike the rest of the crate, nothing here is gated on the `probe`
//! feature: the serving plane (`ndirect-serve`) records into these types
//! unconditionally, because an inference server that cannot report its own
//! p99 is not operable. The types are still usable from feature-gated hot
//! paths through the [`probe_hist!`](crate::probe_hist) macro, which
//! const-folds away like the other probe macros when
//! [`ENABLED`](crate::ENABLED) is false.
//!
//! # Histogram bucket scheme
//!
//! [`LogHistogram`] is an HdrHistogram-style log-linear histogram over
//! `u64` values (the serving plane records nanoseconds):
//!
//! * values `0..32` land in 32 exact unit buckets;
//! * every power-of-two octave `[2^k, 2^(k+1))` for `k = 5..=63` is split
//!   into 32 equal sub-buckets.
//!
//! That is `32 + 59·32 = 1920` buckets of `AtomicU64` (15 KiB per
//! histogram). Quantile queries report the **upper bound** of the bucket
//! holding the requested rank, so an estimate never undershoots the true
//! order statistic and overshoots it by at most one sub-bucket width:
//! a relative error of at most `1/32 = 3.125%` (the "~4%" headline bound;
//! exact below value 32). `tests/metrics.rs` pins this bound against a
//! sort oracle over adversarial distributions.
//!
//! # Concurrency
//!
//! All updates are `Relaxed` `fetch_add`s on independent atomics: totals
//! are exact at quiescent points, and mid-flight snapshots are torn-but-
//! memory-safe, same contract as the rest of the probe. Snapshots
//! recompute `count` from the bucket array so rank arithmetic inside one
//! snapshot is always self-consistent.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};

use ndirect_support::Json;

// ---------------------------------------------------------------------------
// LogHistogram
// ---------------------------------------------------------------------------

/// log2 of [`SUBBUCKETS`].
pub const SUB_BITS: usize = 5;
/// Sub-buckets per power-of-two octave (and the linear-region width).
pub const SUBBUCKETS: usize = 1 << SUB_BITS;
/// Total bucket count: the linear region plus the 59 subdivided octaves
/// `k = SUB_BITS..=63`.
pub const NUM_BUCKETS: usize = SUBBUCKETS + (64 - SUB_BITS) * SUBBUCKETS;
/// Worst-case relative quantile error: one sub-bucket width over the
/// octave base, `1/32`. Estimates are upper bounds (never undershoot).
pub const MAX_RELATIVE_ERROR: f64 = 1.0 / SUBBUCKETS as f64;

/// A lock-free log-bucketed histogram of `u64` samples (typically
/// nanoseconds). Mergeable across threads via [`LogHistogram::snapshot`] +
/// [`HistogramSnapshot::merge`]; see the module docs for the bucket scheme
/// and error bound.
pub struct LogHistogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl LogHistogram {
    /// An empty histogram. `const` so histograms can live in statics.
    pub const fn new() -> LogHistogram {
        #[allow(clippy::declare_interior_mutable_const)]
        const Z: AtomicU64 = AtomicU64::new(0);
        LogHistogram {
            buckets: [Z; NUM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Bucket index for a value. Total order: `v <= w` implies
    /// `bucket_index(v) <= bucket_index(w)`, which is what makes
    /// rank-by-bucket-walk agree with rank-by-sort.
    #[inline]
    pub fn bucket_index(value: u64) -> usize {
        if value < SUBBUCKETS as u64 {
            value as usize
        } else {
            let msb = 63 - value.leading_zeros() as usize;
            let sub = ((value >> (msb - SUB_BITS)) & (SUBBUCKETS as u64 - 1)) as usize;
            (msb - SUB_BITS) * SUBBUCKETS + sub + SUBBUCKETS
        }
    }

    /// Largest value that maps into bucket `index` (the value quantiles
    /// report). Saturates at `u64::MAX` for the last bucket.
    #[inline]
    pub fn bucket_upper(index: usize) -> u64 {
        if index < SUBBUCKETS {
            index as u64
        } else {
            let oct = (index - SUBBUCKETS) / SUBBUCKETS + SUB_BITS;
            let sub = ((index - SUBBUCKETS) % SUBBUCKETS) as u64;
            let width = 1u64 << (oct - SUB_BITS);
            (1u64 << oct) + sub * width + (width - 1)
        }
    }

    /// Records one sample. Lock-free; safe from any thread.
    // AUDIT: hotpath
    #[inline]
    pub fn record(&self, value: u64) {
        // INDEX: bucket_index() maps every u64 into 0..BUCKETS.
        self.buckets[Self::bucket_index(value)].fetch_add(1, Relaxed); // ORDERING: Relaxed — independent monotonic cells; snapshots tolerate skew
        self.count.fetch_add(1, Relaxed); // ORDERING: Relaxed — independent monotonic cells; snapshots tolerate skew
        self.sum.fetch_add(value, Relaxed); // ORDERING: Relaxed — independent monotonic cells; snapshots tolerate skew
    }

    /// Total samples recorded.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count.load(Relaxed) // ORDERING: Relaxed — racy read of a monotonic cell
    }

    /// Sum of all recorded values (wraps past `u64::MAX`; at 1 sample/µs
    /// of nanosecond-scale values that takes centuries).
    #[inline]
    pub fn sum(&self) -> u64 {
        self.sum.load(Relaxed) // ORDERING: Relaxed — racy read of a monotonic cell
    }

    /// Live quantile estimate for `q` in percent (`50.0`, `99.0`, …),
    /// allocation-free (a walk over the atomics). `0` when empty. Under
    /// concurrent recording this is approximate the same way a snapshot
    /// taken mid-flight is; exact at quiescent points.
    pub fn quantile(&self, q: f64) -> u64 {
        let mut total = 0u64;
        for b in &self.buckets {
            total += b.load(Relaxed); // ORDERING: Relaxed — racy read; quantiles are approximate under concurrency
        }
        if total == 0 {
            return 0;
        }
        let rank = rank_for(q, total);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Relaxed); // ORDERING: Relaxed — racy read; quantiles are approximate under concurrency
            if seen >= rank {
                return Self::bucket_upper(i);
            }
        }
        Self::bucket_upper(NUM_BUCKETS - 1)
    }

    /// A self-consistent point-in-time copy (sparse: only nonzero
    /// buckets). `count` is recomputed from the buckets so quantile ranks
    /// inside the snapshot always agree with its own bucket totals.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        let mut count = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Relaxed); // ORDERING: Relaxed — racy read; snapshot recomputes count from buckets
            if n != 0 {
                buckets.push((i as u32, n));
                count += n;
            }
        }
        HistogramSnapshot {
            buckets,
            count,
            sum: self.sum.load(Relaxed), // ORDERING: Relaxed — racy read; snapshot recomputes count from buckets
        }
    }
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Nearest-rank position (1-based) for quantile `q` (percent) over
/// `total` samples.
fn rank_for(q: f64, total: u64) -> u64 {
    let q = q.clamp(0.0, 100.0);
    ((q / 100.0 * total as f64).ceil() as u64).clamp(1, total)
}

/// Immutable sparse copy of a [`LogHistogram`]: `(bucket index, count)`
/// pairs sorted by index, plus total count and value sum. Supports the
/// same quantile queries, plus `merge`/`since` set arithmetic.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Nonzero `(bucket index, count)` pairs, ascending by index.
    pub buckets: Vec<(u32, u64)>,
    /// Total samples (sum of bucket counts).
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Quantile estimate for `q` in percent; `0` when empty. Same error
    /// bound as [`LogHistogram::quantile`].
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = rank_for(q, self.count);
        let mut seen = 0u64;
        for &(i, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return LogHistogram::bucket_upper(i as usize);
            }
        }
        LogHistogram::bucket_upper(NUM_BUCKETS - 1)
    }

    /// Mean of recorded values; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The union of two snapshots (bucket-wise sum). Associative and
    /// commutative, so per-thread histograms fold in any order.
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets = Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let (mut a, mut b) = (self.buckets.iter().peekable(), other.buckets.iter().peekable());
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(ia, na)), Some(&&(ib, nb))) => {
                    if ia < ib {
                        buckets.push((ia, na));
                        a.next();
                    } else if ib < ia {
                        buckets.push((ib, nb));
                        b.next();
                    } else {
                        buckets.push((ia, na + nb));
                        a.next();
                        b.next();
                    }
                }
                (Some(&&x), None) => {
                    buckets.push(x);
                    a.next();
                }
                (None, Some(&&x)) => {
                    buckets.push(x);
                    b.next();
                }
                (None, None) => break,
            }
        }
        HistogramSnapshot {
            buckets,
            count: self.count + other.count,
            sum: self.sum.wrapping_add(other.sum),
        }
    }

    /// The delta since an earlier snapshot of the same histogram:
    /// bucket-wise saturating subtraction (zeroed buckets are dropped).
    /// `later.since(&earlier).merge(&earlier) == later` whenever `earlier`
    /// really is a prefix of `later` — the PR 4 race-free alternative to
    /// resetting shared state.
    pub fn since(&self, baseline: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets = Vec::with_capacity(self.buckets.len());
        let mut count = 0u64;
        for &(i, n) in &self.buckets {
            let base = baseline
                .buckets
                .iter()
                .find(|&&(bi, _)| bi == i)
                .map_or(0, |&(_, bn)| bn);
            let d = n.saturating_sub(base);
            if d != 0 {
                buckets.push((i, d));
                count += d;
            }
        }
        HistogramSnapshot {
            buckets,
            count,
            sum: self.sum.wrapping_sub(baseline.sum),
        }
    }
}

// ---------------------------------------------------------------------------
// Counter / Gauge / RateWindow
// ---------------------------------------------------------------------------

/// A monotonic event counter (like [`crate::Counter`] slots, but
/// dynamically registered and always on).
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter.
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Adds `n`.
    // AUDIT: hotpath
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Relaxed); // ORDERING: Relaxed — monotonic counter bump; publishes no other memory
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed) // ORDERING: Relaxed — racy read of a monotonic cell
    }
}

impl Default for Counter {
    fn default() -> Self {
        Self::new()
    }
}

/// A last-write-wins (or high-water, via [`Gauge::set_max`]) level value.
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A zeroed gauge.
    pub const fn new() -> Gauge {
        Gauge(AtomicU64::new(0))
    }

    /// Sets the level.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Relaxed); // ORDERING: Relaxed — last-write-wins level; carries no associated data
    }

    /// Raises the level to `v` if it is higher (high-water tracking).
    #[inline]
    pub fn set_max(&self, v: u64) {
        self.0.fetch_max(v, Relaxed); // ORDERING: Relaxed — high-water max; carries no associated data
    }

    /// Current level.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed) // ORDERING: Relaxed — racy read of a level value
    }
}

impl Default for Gauge {
    fn default() -> Self {
        Self::new()
    }
}

/// Events each [`RateWindow`] slice spans, in nanoseconds (1 s).
const RATE_SLICE_NS: u64 = 1_000_000_000;

/// A sliding-window event-rate counter: a ring of per-second slices; the
/// reported rate is the event total over the last `slices` seconds
/// divided by the window length. Lock-free and approximate at slice
/// boundaries (a slice being recycled can momentarily miscount a handful
/// of events) — a monitoring signal, not an accounting one; exact totals
/// belong in a [`Counter`].
pub struct RateWindow {
    slots: Box<[RateSlot]>,
}

struct RateSlot {
    /// Slice sequence number + 1 (0 = never used).
    epoch: AtomicU64,
    count: AtomicU64,
}

impl RateWindow {
    /// A window of `slices` one-second slices (clamped to `1..=60`).
    pub fn new(slices: usize) -> RateWindow {
        RateWindow {
            slots: (0..slices.clamp(1, 60))
                .map(|_| RateSlot {
                    epoch: AtomicU64::new(0),
                    count: AtomicU64::new(0),
                })
                .collect(),
        }
    }

    /// Records `n` events now (probe-epoch clock).
    #[inline]
    pub fn record(&self, n: u64) {
        self.record_at(crate::now_ns(), n);
    }

    /// Records `n` events at an explicit probe-epoch timestamp (tests).
    // AUDIT: hotpath
    pub fn record_at(&self, now_ns: u64, n: u64) {
        let epoch = now_ns / RATE_SLICE_NS + 1;
        // INDEX: reduced modulo slots.len().
        let slot = &self.slots[(epoch % self.slots.len() as u64) as usize];
        let seen = slot.epoch.load(Relaxed); // ORDERING: Relaxed — epoch tag read; CAS below arbitrates resets
        if seen != epoch {
            // First writer into a recycled slice resets it; a lost race
            // means someone else already did.
            if slot
                .epoch
                .compare_exchange(seen, epoch, Relaxed, Relaxed) // ORDERING: Relaxed — CAS only elects one resetter; counts are advisory
                .is_ok()
            {
                slot.count.store(0, Relaxed); // ORDERING: Relaxed — reset ordered by the epoch CAS win; counts are advisory
            }
        }
        slot.count.fetch_add(n, Relaxed); // ORDERING: Relaxed — advisory rate cell; skew within a slice is acceptable
    }

    /// Events per second over the window, as of now.
    pub fn per_sec(&self) -> f64 {
        self.per_sec_at(crate::now_ns())
    }

    /// Events per second over the window, at an explicit timestamp.
    pub fn per_sec_at(&self, now_ns: u64) -> f64 {
        let epoch = now_ns / RATE_SLICE_NS + 1;
        let window = self.slots.len() as u64;
        let mut total = 0u64;
        for s in self.slots.iter() {
            let e = s.epoch.load(Relaxed); // ORDERING: Relaxed — racy window read; stale slices age out by epoch
            if e != 0 && e + window > epoch && e <= epoch {
                total += s.count.load(Relaxed); // ORDERING: Relaxed — racy window read; stale slices age out by epoch
            }
        }
        total as f64 / window as f64
    }
}

// ---------------------------------------------------------------------------
// Registry and snapshots
// ---------------------------------------------------------------------------

/// What a metric family measures; mirrors the Prometheus `# TYPE` values
/// (a [`RateWindow`] exports as a gauge).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic event count.
    Counter,
    /// Instantaneous level (includes rate windows).
    Gauge,
    /// Log-bucketed value distribution.
    Histogram,
}

impl MetricKind {
    /// Stable lowercase name used in JSON and Prometheus output.
    pub fn name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }

    fn from_name(s: &str) -> Option<MetricKind> {
        match s {
            "counter" => Some(MetricKind::Counter),
            "gauge" => Some(MetricKind::Gauge),
            "histogram" => Some(MetricKind::Histogram),
            _ => None,
        }
    }
}

/// Label set attached to one sample: `(key, value)` pairs in registration
/// order. Empty for unlabeled (aggregate) samples.
pub type Labels = Vec<(String, String)>;

enum Handle {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Rate(Arc<RateWindow>),
    Histogram(Arc<LogHistogram>),
}

impl Handle {
    fn kind(&self) -> MetricKind {
        match self {
            Handle::Counter(_) => MetricKind::Counter,
            Handle::Gauge(_) | Handle::Rate(_) => MetricKind::Gauge,
            Handle::Histogram(_) => MetricKind::Histogram,
        }
    }
}

struct Family {
    name: String,
    help: String,
    kind: MetricKind,
    samples: Vec<(Labels, Handle)>,
}

/// A registry of named metric families. Instruments register once at
/// construction (getting back an `Arc` handle they record into with no
/// further registry involvement); [`MetricsRegistry::snapshot`] walks the
/// families into a serializable [`MetricsSnapshot`].
///
/// Registration is idempotent on `(name, labels)`: re-registering an
/// existing sample returns the existing handle (or, on a kind mismatch, a
/// fresh *unregistered* handle, so misuse degrades to a dead metric
/// instead of a panic).
#[derive(Default)]
pub struct MetricsRegistry {
    families: Mutex<Vec<Family>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn register<T>(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> (Arc<T>, Handle),
        get: impl Fn(&Handle) -> Option<Arc<T>>,
    ) -> Arc<T> {
        let labels: Labels = labels
            .iter()
            .map(|&(k, v)| (k.to_owned(), v.to_owned()))
            .collect();
        let (arc, handle) = make();
        let mut families = self.families.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(f) = families.iter_mut().find(|f| f.name == name) {
            if f.kind != handle.kind() {
                return arc; // kind mismatch: unregistered handle
            }
            if let Some((_, existing)) = f.samples.iter().find(|(l, _)| *l == labels) {
                return get(existing).unwrap_or(arc);
            }
            f.samples.push((labels, handle));
        } else {
            families.push(Family {
                name: name.to_owned(),
                help: help.to_owned(),
                kind: handle.kind(),
                samples: vec![(labels, handle)],
            });
        }
        arc
    }

    /// Registers (or retrieves) a counter sample.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        self.register(
            name,
            help,
            labels,
            || {
                let c = Arc::new(Counter::new());
                (Arc::clone(&c), Handle::Counter(c))
            },
            |h| match h {
                Handle::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
        )
    }

    /// Registers (or retrieves) a gauge sample.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        self.register(
            name,
            help,
            labels,
            || {
                let g = Arc::new(Gauge::new());
                (Arc::clone(&g), Handle::Gauge(g))
            },
            |h| match h {
                Handle::Gauge(g) => Some(Arc::clone(g)),
                _ => None,
            },
        )
    }

    /// Registers (or retrieves) a sliding-window rate sample (exported as
    /// a gauge in events/second over `window_secs`).
    pub fn rate(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        window_secs: usize,
    ) -> Arc<RateWindow> {
        self.register(
            name,
            help,
            labels,
            || {
                let r = Arc::new(RateWindow::new(window_secs));
                (Arc::clone(&r), Handle::Rate(r))
            },
            |h| match h {
                Handle::Rate(r) => Some(Arc::clone(r)),
                _ => None,
            },
        )
    }

    /// Registers (or retrieves) a histogram sample.
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<LogHistogram> {
        self.register(
            name,
            help,
            labels,
            || {
                let h = Arc::new(LogHistogram::new());
                (Arc::clone(&h), Handle::Histogram(h))
            },
            |h| match h {
                Handle::Histogram(x) => Some(Arc::clone(x)),
                _ => None,
            },
        )
    }

    /// Snapshots every registered sample.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let families = self.families.lock().unwrap_or_else(|p| p.into_inner());
        MetricsSnapshot {
            captured_ns: crate::now_ns(),
            families: families
                .iter()
                .map(|f| FamilySnapshot {
                    name: f.name.clone(),
                    help: f.help.clone(),
                    kind: f.kind,
                    samples: f
                        .samples
                        .iter()
                        .map(|(labels, h)| SampleSnapshot {
                            labels: labels.clone(),
                            value: match h {
                                Handle::Counter(c) => MetricValue::Counter(c.get()),
                                Handle::Gauge(g) => MetricValue::Gauge(g.get() as f64),
                                Handle::Rate(r) => MetricValue::Gauge(r.per_sec()),
                                Handle::Histogram(x) => MetricValue::Histogram(x.snapshot()),
                            },
                        })
                        .collect(),
                })
                .collect(),
        }
    }
}

/// One sample's value in a snapshot.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// Monotonic count.
    Counter(u64),
    /// Level (gauges and rate windows).
    Gauge(f64),
    /// Distribution.
    Histogram(HistogramSnapshot),
}

/// One labeled sample in a snapshot.
#[derive(Clone, Debug, PartialEq)]
pub struct SampleSnapshot {
    /// Label pairs, registration order.
    pub labels: Labels,
    /// The captured value.
    pub value: MetricValue,
}

/// One metric family (shared name/help/kind, N labeled samples).
#[derive(Clone, Debug, PartialEq)]
pub struct FamilySnapshot {
    /// Metric name (`serve_stage_execute_ns`, …).
    pub name: String,
    /// One-line description.
    pub help: String,
    /// Counter / gauge / histogram.
    pub kind: MetricKind,
    /// Samples, registration order.
    pub samples: Vec<SampleSnapshot>,
}

impl FamilySnapshot {
    /// The sample whose labels match `labels` exactly (order-insensitive).
    pub fn sample(&self, labels: &[(&str, &str)]) -> Option<&SampleSnapshot> {
        self.samples.iter().find(|s| {
            s.labels.len() == labels.len()
                && labels
                    .iter()
                    .all(|&(k, v)| s.labels.iter().any(|(sk, sv)| sk == k && sv == v))
        })
    }
}

/// Version stamp in the snapshot JSON.
pub const METRICS_SCHEMA_VERSION: u64 = 1;
/// `kind` stamp in the snapshot JSON.
pub const METRICS_KIND: &str = "ndirect-metrics";

/// A point-in-time capture of a whole [`MetricsRegistry`], serializable
/// as JSON (round-trips through [`MetricsSnapshot::from_json`]) and as
/// Prometheus text exposition format.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Capture time, nanoseconds since the process probe epoch.
    pub captured_ns: u64,
    /// Families, registration order.
    pub families: Vec<FamilySnapshot>,
}

impl MetricsSnapshot {
    /// The family named `name`.
    pub fn family(&self, name: &str) -> Option<&FamilySnapshot> {
        self.families.iter().find(|f| f.name == name)
    }

    /// Counter value for `(name, labels)`, if present.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        match self.family(name)?.sample(labels)?.value {
            MetricValue::Counter(v) => Some(v),
            _ => None,
        }
    }

    /// Gauge value for `(name, labels)`, if present.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        match self.family(name)?.sample(labels)?.value {
            MetricValue::Gauge(v) => Some(v),
            _ => None,
        }
    }

    /// Histogram snapshot for `(name, labels)`, if present.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HistogramSnapshot> {
        match &self.family(name)?.sample(labels)?.value {
            MetricValue::Histogram(h) => Some(h),
            _ => None,
        }
    }

    /// The delta against an earlier snapshot: counters and histograms
    /// subtract (saturating), gauges keep this snapshot's level. Families
    /// or samples absent from the baseline pass through unchanged.
    pub fn since(&self, baseline: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            captured_ns: self.captured_ns,
            families: self
                .families
                .iter()
                .map(|f| {
                    let base = baseline.family(&f.name);
                    FamilySnapshot {
                        name: f.name.clone(),
                        help: f.help.clone(),
                        kind: f.kind,
                        samples: f
                            .samples
                            .iter()
                            .map(|s| {
                                let labels: Vec<(&str, &str)> = s
                                    .labels
                                    .iter()
                                    .map(|(k, v)| (k.as_str(), v.as_str()))
                                    .collect();
                                let bv = base.and_then(|bf| bf.sample(&labels)).map(|b| &b.value);
                                SampleSnapshot {
                                    labels: s.labels.clone(),
                                    value: match (&s.value, bv) {
                                        (
                                            MetricValue::Counter(v),
                                            Some(MetricValue::Counter(b)),
                                        ) => MetricValue::Counter(v.saturating_sub(*b)),
                                        (
                                            MetricValue::Histogram(v),
                                            Some(MetricValue::Histogram(b)),
                                        ) => MetricValue::Histogram(v.since(b)),
                                        (v, _) => v.clone(),
                                    },
                                }
                            })
                            .collect(),
                    }
                })
                .collect(),
        }
    }

    /// Serializes via the in-tree JSON layer. Schema:
    /// `{kind, schema_version, captured_ns, families: [{name, help, type,
    /// samples: [{labels, value | {count, sum, buckets: [[idx, n], …]}}]}]}`.
    pub fn to_json(&self) -> Json {
        let families = self
            .families
            .iter()
            .map(|f| {
                let samples = f
                    .samples
                    .iter()
                    .map(|s| {
                        let labels = Json::Obj(
                            s.labels
                                .iter()
                                .map(|(k, v)| (k.clone(), Json::str(v.clone())))
                                .collect(),
                        );
                        let mut obj = vec![("labels".to_owned(), labels)];
                        match &s.value {
                            MetricValue::Counter(v) => {
                                obj.push(("value".to_owned(), Json::num(*v as f64)));
                            }
                            MetricValue::Gauge(v) => {
                                obj.push(("value".to_owned(), Json::num(*v)));
                            }
                            MetricValue::Histogram(h) => {
                                obj.push(("count".to_owned(), Json::num(h.count as f64)));
                                obj.push(("sum".to_owned(), Json::num(h.sum as f64)));
                                obj.push((
                                    "buckets".to_owned(),
                                    Json::Arr(
                                        h.buckets
                                            .iter()
                                            .map(|&(i, n)| {
                                                Json::Arr(vec![
                                                    Json::num(i as f64),
                                                    Json::num(n as f64),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ));
                            }
                        }
                        Json::Obj(obj)
                    })
                    .collect();
                Json::Obj(vec![
                    ("name".to_owned(), Json::str(f.name.clone())),
                    ("help".to_owned(), Json::str(f.help.clone())),
                    ("type".to_owned(), Json::str(f.kind.name())),
                    ("samples".to_owned(), Json::Arr(samples)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("kind".to_owned(), Json::str(METRICS_KIND)),
            (
                "schema_version".to_owned(),
                Json::usize(METRICS_SCHEMA_VERSION as usize),
            ),
            ("captured_ns".to_owned(), Json::num(self.captured_ns as f64)),
            ("families".to_owned(), Json::Arr(families)),
        ])
    }

    /// Parses a snapshot serialized by [`MetricsSnapshot::to_json`].
    pub fn from_json(json: &Json) -> Result<MetricsSnapshot, String> {
        let kind = json
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| "missing `kind`".to_owned())?;
        if kind != METRICS_KIND {
            return Err(format!("not a metrics snapshot (kind = {kind:?})"));
        }
        let version = json
            .get("schema_version")
            .and_then(Json::as_usize)
            .ok_or_else(|| "missing `schema_version`".to_owned())?;
        if version as u64 != METRICS_SCHEMA_VERSION {
            return Err(format!("unsupported schema_version {version}"));
        }
        let captured_ns = json
            .get("captured_ns")
            .and_then(Json::as_f64)
            .ok_or_else(|| "missing `captured_ns`".to_owned())? as u64;
        let mut families = Vec::new();
        for f in json
            .get("families")
            .and_then(Json::as_arr)
            .ok_or_else(|| "missing `families`".to_owned())?
        {
            let name = f
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| "family missing `name`".to_owned())?
                .to_owned();
            let help = f
                .get("help")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_owned();
            let kind = f
                .get("type")
                .and_then(Json::as_str)
                .and_then(MetricKind::from_name)
                .ok_or_else(|| format!("family {name}: bad `type`"))?;
            let mut samples = Vec::new();
            for s in f
                .get("samples")
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("family {name}: missing `samples`"))?
            {
                let labels: Labels = s
                    .get("labels")
                    .and_then(Json::as_obj)
                    .map(|pairs| {
                        pairs
                            .iter()
                            .filter_map(|(k, v)| {
                                v.as_str().map(|v| (k.clone(), v.to_owned()))
                            })
                            .collect()
                    })
                    .unwrap_or_default();
                let value = match kind {
                    MetricKind::Counter => MetricValue::Counter(
                        s.get("value")
                            .and_then(Json::as_f64)
                            .ok_or_else(|| format!("family {name}: sample missing `value`"))?
                            as u64,
                    ),
                    MetricKind::Gauge => MetricValue::Gauge(
                        s.get("value")
                            .and_then(Json::as_f64)
                            .ok_or_else(|| format!("family {name}: sample missing `value`"))?,
                    ),
                    MetricKind::Histogram => {
                        let count = s
                            .get("count")
                            .and_then(Json::as_f64)
                            .ok_or_else(|| format!("family {name}: missing `count`"))?
                            as u64;
                        let sum = s
                            .get("sum")
                            .and_then(Json::as_f64)
                            .ok_or_else(|| format!("family {name}: missing `sum`"))?
                            as u64;
                        let mut buckets = Vec::new();
                        for b in s
                            .get("buckets")
                            .and_then(Json::as_arr)
                            .ok_or_else(|| format!("family {name}: missing `buckets`"))?
                        {
                            let pair = b
                                .as_arr()
                                .filter(|p| p.len() == 2)
                                .ok_or_else(|| format!("family {name}: bad bucket"))?;
                            let idx = pair[0]
                                .as_f64()
                                .ok_or_else(|| format!("family {name}: bad bucket idx"))?
                                as u32;
                            let n = pair[1]
                                .as_f64()
                                .ok_or_else(|| format!("family {name}: bad bucket count"))?
                                as u64;
                            buckets.push((idx, n));
                        }
                        MetricValue::Histogram(HistogramSnapshot { buckets, count, sum })
                    }
                };
                samples.push(SampleSnapshot { labels, value });
            }
            families.push(FamilySnapshot {
                name,
                help,
                kind,
                samples,
            });
        }
        Ok(MetricsSnapshot {
            captured_ns,
            families,
        })
    }

    /// Renders the snapshot in Prometheus text exposition format
    /// (`# HELP`/`# TYPE` headers, cumulative `_bucket{le=…}` series plus
    /// `_sum`/`_count` for histograms). Parses back with
    /// [`parse_prometheus`]; CI asserts the round trip.
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for f in &self.families {
            if !f.help.is_empty() {
                let _ = writeln!(out, "# HELP {} {}", f.name, f.help.replace('\n', " "));
            }
            let _ = writeln!(out, "# TYPE {} {}", f.name, f.kind.name());
            for s in &f.samples {
                match &s.value {
                    MetricValue::Counter(v) => {
                        let _ = writeln!(out, "{}{} {}", f.name, prom_labels(&s.labels, None), v);
                    }
                    MetricValue::Gauge(v) => {
                        let _ = writeln!(out, "{}{} {}", f.name, prom_labels(&s.labels, None), v);
                    }
                    MetricValue::Histogram(h) => {
                        let mut cum = 0u64;
                        for &(i, n) in &h.buckets {
                            cum += n;
                            let le = LogHistogram::bucket_upper(i as usize).to_string();
                            let _ = writeln!(
                                out,
                                "{}_bucket{} {}",
                                f.name,
                                prom_labels(&s.labels, Some(&le)),
                                cum
                            );
                        }
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {}",
                            f.name,
                            prom_labels(&s.labels, Some("+Inf")),
                            h.count
                        );
                        let _ = writeln!(
                            out,
                            "{}_sum{} {}",
                            f.name,
                            prom_labels(&s.labels, None),
                            h.sum
                        );
                        let _ = writeln!(
                            out,
                            "{}_count{} {}",
                            f.name,
                            prom_labels(&s.labels, None),
                            h.count
                        );
                    }
                }
            }
        }
        out
    }
}

fn prom_escape(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

fn prom_labels(labels: &Labels, le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", prom_escape(v)))
        .collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

/// One parsed Prometheus sample line.
#[derive(Clone, Debug, PartialEq)]
pub struct PromSample {
    /// Metric name (histogram series keep their `_bucket`/`_sum`/`_count`
    /// suffix).
    pub name: String,
    /// Parsed label pairs (unescaped), line order.
    pub labels: Labels,
    /// Sample value (`+Inf`/`-Inf`/`NaN` accepted).
    pub value: f64,
}

/// Parses Prometheus text exposition format back into its sample lines
/// (comments and blank lines skipped). The inverse of
/// [`MetricsSnapshot::to_prometheus`] for round-trip validation.
pub fn parse_prometheus(text: &str) -> Result<Vec<PromSample>, String> {
    let mut samples = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |what: &str| format!("line {}: {what}: {raw:?}", lineno + 1);
        let (name_and_labels, value_str) = match line.find('}') {
            Some(close) => {
                let rest = line[close + 1..].trim();
                (&line[..close + 1], rest)
            }
            None => {
                let sp = line
                    .find(char::is_whitespace)
                    .ok_or_else(|| err("no value"))?;
                (&line[..sp], line[sp..].trim())
            }
        };
        let (name, labels) = match name_and_labels.find('{') {
            Some(open) => {
                if !name_and_labels.ends_with('}') {
                    return Err(err("unterminated label set"));
                }
                let body = &name_and_labels[open + 1..name_and_labels.len() - 1];
                (&name_and_labels[..open], parse_prom_labels(body).map_err(|e| err(&e))?)
            }
            None => (name_and_labels, Vec::new()),
        };
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        {
            return Err(err("bad metric name"));
        }
        let value = match value_str {
            "+Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            "NaN" => f64::NAN,
            v => v.parse::<f64>().map_err(|_| err("bad value"))?,
        };
        samples.push(PromSample {
            name: name.to_owned(),
            labels,
            value,
        });
    }
    Ok(samples)
}

fn parse_prom_labels(body: &str) -> Result<Labels, String> {
    let mut labels = Vec::new();
    let mut chars = body.chars().peekable();
    loop {
        while matches!(chars.peek(), Some(c) if c.is_whitespace() || *c == ',') {
            chars.next();
        }
        if chars.peek().is_none() {
            return Ok(labels);
        }
        let mut key = String::new();
        while matches!(chars.peek(), Some(c) if *c != '=') {
            key.push(chars.next().unwrap_or('='));
        }
        if chars.next() != Some('=') || chars.next() != Some('"') {
            return Err(format!("label {key:?}: expected ="));
        }
        let mut val = String::new();
        loop {
            match chars.next() {
                Some('\\') => match chars.next() {
                    Some('\\') => val.push('\\'),
                    Some('"') => val.push('"'),
                    Some('n') => val.push('\n'),
                    _ => return Err(format!("label {key:?}: bad escape")),
                },
                Some('"') => break,
                Some(c) => val.push(c),
                None => return Err(format!("label {key:?}: unterminated value")),
            }
        }
        labels.push((key.trim().to_owned(), val));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_upper_bounds_contain() {
        let mut prev = 0usize;
        for v in (0u64..4096).chain([u64::MAX / 2, u64::MAX - 1, u64::MAX]) {
            let i = LogHistogram::bucket_index(v);
            assert!(i >= prev || v < 4096, "monotone");
            if v >= 4096 {
                assert!(i >= LogHistogram::bucket_index(4095));
            }
            prev = prev.max(i);
            assert!(LogHistogram::bucket_upper(i) >= v, "upper({i}) >= {v}");
            assert!(i < NUM_BUCKETS);
            // The upper bound stays within the error bound of the value.
            let upper = LogHistogram::bucket_upper(i);
            assert!(
                (upper - v) as f64 <= MAX_RELATIVE_ERROR * v as f64 + 1e-9 || v < SUBBUCKETS as u64,
                "upper {upper} too far above {v}"
            );
        }
    }

    #[test]
    fn quantiles_are_exact_in_the_linear_region() {
        let h = LogHistogram::new();
        for v in 0..32u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(50.0), 15);
        assert_eq!(h.quantile(100.0), 31);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.count(), 32);
        assert_eq!(h.sum(), (0..32).sum::<u64>());
    }

    #[test]
    fn rate_window_reports_recent_rate_only() {
        let w = RateWindow::new(10);
        let s = RATE_SLICE_NS;
        for t in 0..10u64 {
            w.record_at(t * s + s / 2, 5);
        }
        // 50 events over a 10 s window.
        assert!((w.per_sec_at(10 * s - 1) - 5.0).abs() < 1e-9);
        // 20 s later everything has aged out.
        assert_eq!(w.per_sec_at(30 * s), 0.0);
    }

    #[test]
    fn registry_roundtrips_json_and_prometheus() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("demo_total", "demo counter", &[("model", "a")]);
        let g = reg.gauge("demo_depth", "demo gauge", &[]);
        let h = reg.histogram("demo_ns", "demo histogram", &[("model", "a")]);
        c.add(7);
        g.set(42);
        for v in [1u64, 100, 100, 5000] {
            h.record(v);
        }
        let snap = reg.snapshot();
        assert_eq!(snap.counter("demo_total", &[("model", "a")]), Some(7));
        assert_eq!(snap.gauge("demo_depth", &[]), Some(42.0));
        let hs = snap.histogram("demo_ns", &[("model", "a")]).expect("hist");
        assert_eq!(hs.count, 4);

        // JSON round trip is lossless.
        let json = snap.to_json();
        let reparsed = Json::parse(&json.pretty()).expect("valid json");
        let back = MetricsSnapshot::from_json(&reparsed).expect("parses");
        assert_eq!(back, snap);

        // Prometheus output parses and agrees on counts.
        let prom = snap.to_prometheus();
        let lines = parse_prometheus(&prom).expect("parses");
        let find = |name: &str, labels: &[(&str, &str)]| {
            lines
                .iter()
                .find(|s| {
                    s.name == name
                        && labels.iter().all(|&(k, v)| {
                            s.labels.iter().any(|(sk, sv)| sk == k && sv == v)
                        })
                        && s.labels.len() == labels.len()
                })
                .map(|s| s.value)
        };
        assert_eq!(find("demo_total", &[("model", "a")]), Some(7.0));
        assert_eq!(find("demo_depth", &[]), Some(42.0));
        assert_eq!(
            find("demo_ns_count", &[("model", "a")]),
            Some(4.0)
        );
        assert_eq!(find("demo_ns_sum", &[("model", "a")]), Some(5201.0));
        assert_eq!(
            find("demo_ns_bucket", &[("model", "a"), ("le", "+Inf")]),
            Some(4.0)
        );

        // Idempotent re-registration returns the same underlying cell.
        let c2 = reg.counter("demo_total", "demo counter", &[("model", "a")]);
        c2.add(1);
        assert_eq!(c.get(), 8);
    }

    #[test]
    fn snapshot_since_subtracts_counters_and_histograms() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("x_total", "", &[]);
        let h = reg.histogram("x_ns", "", &[]);
        c.add(3);
        h.record(10);
        let s0 = reg.snapshot();
        c.add(4);
        h.record(10);
        h.record(2000);
        let s1 = reg.snapshot();
        let d = s1.since(&s0);
        assert_eq!(d.counter("x_total", &[]), Some(4));
        let dh = d.histogram("x_ns", &[]).expect("hist");
        assert_eq!(dh.count, 2);
        assert_eq!(dh.sum, 2010);
    }
}

//! Linux hardware performance counters via raw `perf_event_open`.
//!
//! The probe's software counters say what the code *asked* the machine to
//! do (FLOPs issued, bytes packed); this module reads what the machine
//! *actually* did — cycles, instructions, L1d/LLC loads and misses — so
//! the paper's Eq. 1–2 working-set predictions can be checked against
//! real cache behavior rather than only against the packing arithmetic.
//!
//! Zero new dependencies: the syscall goes through the `syscall(2)`
//! wrapper that the already-linked C runtime exports, with the
//! `perf_event_attr` layout declared here (`PERF_ATTR_SIZE_VER0`, the
//! 64-byte prefix every kernel since 2.6.32 accepts). On non-Linux hosts,
//! unsupported architectures, or kernels that refuse unprivileged
//! profiling (`perf_event_paranoid`, seccomp'd containers), every entry
//! point degrades to [`HwError`] instead of failing the build or the run
//! — callers treat hardware counts as an optional extra signal.
//!
//! # Usage model
//!
//! Counters are opened *enabled* and with the `inherit` bit set, so a
//! session opened **before** worker threads are spawned aggregates over
//! every thread of the process. Because `PERF_EVENT_IOC_RESET` does not
//! reset inherited child counts, the intended pattern is delta reads:
//!
//! ```no_run
//! use ndirect_probe::hwc::{HwCounters, HwEvent};
//! let hw = HwCounters::try_open(HwEvent::ALL).ok();
//! let before = hw.as_ref().map(|h| h.reading());
//! // ... run the phase being measured ...
//! if let (Some(h), Some(b)) = (&hw, &before) {
//!     let sample = h.reading().delta_since(b);
//!     println!("{:?}", sample.get(HwEvent::Cycles));
//! }
//! ```
//!
//! Reads use `PERF_FORMAT_TOTAL_TIME_ENABLED/RUNNING`, so when the kernel
//! multiplexes the PMU the deltas are scaled to estimates and the sample
//! is flagged [`HwSample::multiplexed`].

/// A hardware event the backend knows how to open.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HwEvent {
    /// CPU cycles (`PERF_COUNT_HW_CPU_CYCLES`).
    Cycles,
    /// Retired instructions (`PERF_COUNT_HW_INSTRUCTIONS`).
    Instructions,
    /// L1 data-cache read accesses.
    L1dLoads,
    /// L1 data-cache read misses.
    L1dMisses,
    /// Last-level-cache read accesses.
    LlcLoads,
    /// Last-level-cache read misses — the event the Eq. 1–2 working-set
    /// arguments are ultimately about (each miss is one line from DRAM).
    LlcMisses,
}

/// Number of [`HwEvent`] variants.
pub const NUM_HW_EVENTS: usize = 6;

impl HwEvent {
    /// All events, in declaration (= serialization) order.
    pub const ALL: &'static [HwEvent] = &[
        HwEvent::Cycles,
        HwEvent::Instructions,
        HwEvent::L1dLoads,
        HwEvent::L1dMisses,
        HwEvent::LlcLoads,
        HwEvent::LlcMisses,
    ];

    /// Stable snake_case name used in JSON and reports.
    pub fn name(self) -> &'static str {
        match self {
            HwEvent::Cycles => "cycles",
            HwEvent::Instructions => "instructions",
            HwEvent::L1dLoads => "l1d_loads",
            HwEvent::L1dMisses => "l1d_misses",
            HwEvent::LlcLoads => "llc_loads",
            HwEvent::LlcMisses => "llc_misses",
        }
    }

    /// `(perf type, config)` pair for `perf_event_attr`.
    fn type_config(self) -> (u32, u64) {
        const HARDWARE: u32 = 0; // PERF_TYPE_HARDWARE
        const HW_CACHE: u32 = 3; // PERF_TYPE_HW_CACHE
        // config = cache_id | (op << 8) | (result << 16)
        const L1D: u64 = 0;
        const LL: u64 = 2;
        const READ: u64 = 0;
        const ACCESS: u64 = 0;
        const MISS: u64 = 1;
        let cache = |id: u64, result: u64| id | (READ << 8) | (result << 16);
        match self {
            HwEvent::Cycles => (HARDWARE, 0),
            HwEvent::Instructions => (HARDWARE, 1),
            HwEvent::L1dLoads => (HW_CACHE, cache(L1D, ACCESS)),
            HwEvent::L1dMisses => (HW_CACHE, cache(L1D, MISS)),
            HwEvent::LlcLoads => (HW_CACHE, cache(LL, ACCESS)),
            HwEvent::LlcMisses => (HW_CACHE, cache(LL, MISS)),
        }
    }
}

/// Why hardware counters are not (fully) available.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HwError {
    /// The build target has no `perf_event_open` (non-Linux, or an
    /// architecture this backend has no syscall number for).
    Unsupported(&'static str),
    /// The kernel refused unprivileged access — `perf_event_paranoid`
    /// too high, or the syscall is filtered (common in containers).
    /// Carries `/proc/sys/kernel/perf_event_paranoid` when readable.
    Restricted {
        /// The paranoid level, if `/proc` exposed it.
        paranoid: Option<i64>,
    },
    /// The syscall failed for another reason (event not supported by this
    /// PMU, no PMU in a VM, fd limits, …).
    Os {
        /// The event being opened when the failure happened.
        event: &'static str,
        /// The raw `errno`.
        errno: i32,
    },
    /// No event in the requested set could be opened.
    NoEvents,
}

impl std::fmt::Display for HwError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HwError::Unsupported(what) => {
                write!(f, "hardware counters unavailable: {what}")
            }
            HwError::Restricted { paranoid: Some(p) } => write!(
                f,
                "perf_event_open restricted (perf_event_paranoid = {p}; need <= 2 for user counting)"
            ),
            HwError::Restricted { paranoid: None } => {
                write!(f, "perf_event_open restricted (EPERM/EACCES; syscall may be seccomp-filtered)")
            }
            HwError::Os { event, errno } => {
                write!(f, "perf_event_open({event}) failed with errno {errno}")
            }
            HwError::NoEvents => write!(f, "no requested hardware event could be opened"),
        }
    }
}

impl std::error::Error for HwError {}

/// `/proc/sys/kernel/perf_event_paranoid`, when readable. `None` means
/// the file is absent (non-Linux, or a masked `/proc`).
pub fn paranoid_level() -> Option<i64> {
    std::fs::read_to_string("/proc/sys/kernel/perf_event_paranoid")
        .ok()?
        .trim()
        .parse()
        .ok()
}

/// One event's raw `(value, time_enabled, time_running)` triple, `None`
/// when the event could not be opened.
type RawRead = Option<(u64, u64, u64)>;

/// One raw counter read: `(value, time_enabled, time_running)` per event,
/// `None` for events that could not be opened. Values are cumulative
/// since open; subtract two readings with [`HwReading::delta_since`].
#[derive(Clone, Debug, Default)]
pub struct HwReading {
    slots: Vec<(HwEvent, RawRead)>,
}

impl HwReading {
    /// Scaled per-event deltas between this reading and an `earlier` one
    /// from the same [`HwCounters`] session.
    pub fn delta_since(&self, earlier: &HwReading) -> HwSample {
        let mut counts = Vec::new();
        let mut multiplexed = false;
        for (slot, earlier_slot) in self.slots.iter().zip(&earlier.slots) {
            let (event, now) = slot;
            let (Some((v1, e1, r1)), (_, Some((v0, e0, r0)))) = (now, earlier_slot) else {
                continue;
            };
            let dv = v1.saturating_sub(*v0);
            let de = e1.saturating_sub(*e0);
            let dr = r1.saturating_sub(*r0);
            // The kernel multiplexes when more events are open than the
            // PMU has slots; running < enabled then, and the raw count is
            // scaled up to an estimate of the full-window value.
            let scaled = if dr > 0 && dr < de {
                multiplexed = true;
                (dv as f64 * de as f64 / dr as f64).round() as u64
            } else {
                dv
            };
            counts.push((*event, scaled));
        }
        HwSample { counts, multiplexed }
    }
}

/// Scaled hardware-event deltas for one measured region.
#[derive(Clone, Debug, Default)]
pub struct HwSample {
    /// `(event, count)` for every event that was open across the region.
    pub counts: Vec<(HwEvent, u64)>,
    /// `true` when the PMU was multiplexed and the counts are scaled
    /// estimates rather than exact tallies.
    pub multiplexed: bool,
}

impl HwSample {
    /// The count for one event, if it was measured.
    pub fn get(&self, event: HwEvent) -> Option<u64> {
        self.counts
            .iter()
            .find(|(e, _)| *e == event)
            .map(|(_, n)| *n)
    }

    /// Divides every count by `runs`, for per-iteration attribution of a
    /// region that repeated the workload.
    pub fn per_run(&self, runs: u64) -> HwSample {
        let runs = runs.max(1);
        HwSample {
            counts: self
                .counts
                .iter()
                .map(|&(e, n)| (e, n / runs))
                .collect(),
            multiplexed: self.multiplexed,
        }
    }
}

/// An open set of hardware counters. Counting starts at open and spans
/// every thread spawned afterwards (the `inherit` bit); measure regions
/// with delta reads, not resets (see the module docs). File descriptors
/// close on drop.
pub struct HwCounters {
    fds: Vec<(HwEvent, Option<imp::Fd>)>,
}

impl HwCounters {
    /// Opens `events`, skipping the ones this PMU rejects. `Ok` as long
    /// as at least one opened; `Err` describes why none could (the first
    /// per-event error, which for restricted kernels is the informative
    /// one).
    pub fn try_open(events: &[HwEvent]) -> Result<HwCounters, HwError> {
        if events.is_empty() {
            return Err(HwError::NoEvents);
        }
        let mut fds = Vec::with_capacity(events.len());
        let mut first_err = None;
        for &event in events {
            match imp::open(event) {
                Ok(fd) => fds.push((event, Some(fd))),
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                    fds.push((event, None));
                }
            }
        }
        if fds.iter().all(|(_, fd)| fd.is_none()) {
            return Err(first_err.unwrap_or(HwError::NoEvents));
        }
        Ok(HwCounters { fds })
    }

    /// The subset of requested events that actually opened.
    pub fn available(&self) -> Vec<HwEvent> {
        self.fds
            .iter()
            .filter(|(_, fd)| fd.is_some())
            .map(|(e, _)| *e)
            .collect()
    }

    /// Reads every open counter's cumulative `(value, enabled, running)`.
    pub fn reading(&self) -> HwReading {
        HwReading {
            slots: self
                .fds
                .iter()
                .map(|(event, fd)| (*event, fd.as_ref().and_then(imp::read_counter)))
                .collect(),
        }
    }

    /// Runs `f` and returns its result with the scaled hardware-event
    /// deltas across the call.
    pub fn sample<T>(&self, f: impl FnOnce() -> T) -> (T, HwSample) {
        let before = self.reading();
        let out = f();
        (out, self.reading().delta_since(&before))
    }
}

/// One-shot availability probe: can this process count CPU cycles?
/// `Ok(())` means a full [`HwCounters::try_open`] is worth attempting.
pub fn availability() -> Result<(), HwError> {
    imp::open(HwEvent::Cycles).map(drop)
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64"),
    not(miri)
))]
mod imp {
    //! The real backend: raw `syscall(2)` + `read(2)` through the C
    //! runtime the Rust standard library already links. Gated off under
    //! Miri (`not(miri)`): foreign syscalls are unsupported there, and the
    //! stub keeps the rest of the observatory interpretable.

    use super::{paranoid_level, HwError, HwEvent};
    use std::ffi::{c_int, c_long, c_void};

    #[cfg(target_arch = "x86_64")]
    const SYS_PERF_EVENT_OPEN: c_long = 298;
    #[cfg(target_arch = "aarch64")]
    const SYS_PERF_EVENT_OPEN: c_long = 241;

    extern "C" {
        fn syscall(num: c_long, ...) -> c_long;
        fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        fn close(fd: c_int) -> c_int;
    }

    /// `perf_event_attr`, `PERF_ATTR_SIZE_VER0` prefix (64 bytes). The
    /// kernel accepts any declared size it knows; VER0 covers everything
    /// this backend sets.
    #[repr(C)]
    struct PerfEventAttr {
        type_: u32,
        size: u32,
        config: u64,
        sample_period: u64,
        sample_type: u64,
        read_format: u64,
        flags: u64,
        wakeup_events: u32,
        bp_type: u32,
        config1: u64,
    }

    const ATTR_SIZE_VER0: u32 = 64;
    // flags bits (perf_event_attr bitfield, LSB first).
    const FLAG_INHERIT: u64 = 1 << 1;
    const FLAG_EXCLUDE_KERNEL: u64 = 1 << 5;
    const FLAG_EXCLUDE_HV: u64 = 1 << 6;
    // read_format bits.
    const FORMAT_TOTAL_TIME_ENABLED: u64 = 1 << 0;
    const FORMAT_TOTAL_TIME_RUNNING: u64 = 1 << 1;
    const PERF_FLAG_FD_CLOEXEC: c_long = 1 << 3;

    /// An owned perf fd, closed on drop.
    pub(super) struct Fd(c_int);

    impl Drop for Fd {
        fn drop(&mut self) {
            // SAFETY: `self.0` is a fd returned by a successful
            // `perf_event_open` and owned exclusively by this struct, so
            // this is its first and only close.
            unsafe {
                close(self.0);
            }
        }
    }

    // The kernel rejects (E2BIG) or misreads an attr whose declared size
    // disagrees with the struct we hand it; make the mismatch a compile
    // error rather than a debug-only assert.
    const _: () = assert!(std::mem::size_of::<PerfEventAttr>() == ATTR_SIZE_VER0 as usize);

    pub(super) fn open(event: HwEvent) -> Result<Fd, HwError> {
        let (type_, config) = event.type_config();
        let attr = PerfEventAttr {
            type_,
            size: ATTR_SIZE_VER0,
            config,
            sample_period: 0,
            sample_type: 0,
            read_format: FORMAT_TOTAL_TIME_ENABLED | FORMAT_TOTAL_TIME_RUNNING,
            // Counting (not sampling), enabled immediately, inherited by
            // threads spawned after open, user space only (counting the
            // kernel needs paranoid <= 1 and measures the wrong thing).
            flags: FLAG_INHERIT | FLAG_EXCLUDE_KERNEL | FLAG_EXCLUDE_HV,
            wakeup_events: 0,
            bp_type: 0,
            config1: 0,
        };
        // pid = 0, cpu = -1: this thread (and, via inherit, its future
        // children) on any CPU.
        // SAFETY: variadic `syscall(2)` with the perf_event_open argument
        // list; `attr` is a live, properly sized `#[repr(C)]` struct (size
        // checked at compile time above) that the kernel only reads during
        // the call, and the integer arguments match the kernel ABI types.
        let fd = unsafe {
            syscall(
                SYS_PERF_EVENT_OPEN,
                &attr as *const PerfEventAttr,
                0 as c_long,
                -1 as c_long,
                -1 as c_long,
                PERF_FLAG_FD_CLOEXEC,
            )
        };
        if fd >= 0 {
            return Ok(Fd(fd as c_int));
        }
        let errno = std::io::Error::last_os_error().raw_os_error().unwrap_or(-1);
        // EPERM(1)/EACCES(13): paranoid or seccomp. ENOSYS(38): filtered
        // syscall table. Everything else: this PMU lacks the event.
        match errno {
            1 | 13 => Err(HwError::Restricted {
                paranoid: paranoid_level(),
            }),
            38 => Err(HwError::Unsupported("perf_event_open syscall filtered (ENOSYS)")),
            e => Err(HwError::Os {
                event: event.name(),
                errno: e,
            }),
        }
    }

    pub(super) fn read_counter(fd: &Fd) -> Option<(u64, u64, u64)> {
        let mut buf = [0u64; 3];
        // SAFETY: `buf` is a live 24-byte writable buffer and the count
        // passed to `read(2)` is exactly its size; `fd` is open for the
        // duration of the borrow.
        let n = unsafe { read(fd.0, buf.as_mut_ptr() as *mut c_void, 24) };
        if n == 24 {
            Some((buf[0], buf[1], buf[2]))
        } else {
            None
        }
    }
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64"),
    not(miri)
)))]
mod imp {
    //! Stub backend for targets without a usable `perf_event_open`:
    //! every open reports [`HwError::Unsupported`] and the rest of the
    //! observatory carries on without hardware counts.

    use super::{HwError, HwEvent};

    /// Uninhabited placeholder — no fd can exist on this target.
    pub(super) enum Fd {}

    pub(super) fn open(_event: HwEvent) -> Result<Fd, HwError> {
        Err(HwError::Unsupported(
            "perf_event_open requires Linux on x86_64 or aarch64",
        ))
    }

    pub(super) fn read_counter(fd: &Fd) -> Option<(u64, u64, u64)> {
        match *fd {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_event_set_is_an_error() {
        assert!(matches!(HwCounters::try_open(&[]), Err(HwError::NoEvents)));
    }

    #[test]
    fn open_succeeds_or_degrades_gracefully() {
        // Either path is correct; what must never happen is a panic or a
        // nonsensical reading.
        match HwCounters::try_open(HwEvent::ALL) {
            Ok(hw) => {
                assert!(!hw.available().is_empty());
                let before = hw.reading();
                let mut acc = 0u64;
                for i in 0..200_000u64 {
                    acc = acc.wrapping_add(std::hint::black_box(i));
                }
                std::hint::black_box(acc);
                let sample = hw.reading().delta_since(&before);
                // Cycles, when countable at all, must have advanced over
                // 200k additions.
                if let Some(c) = sample.get(HwEvent::Cycles) {
                    assert!(c > 0, "cycles counted but did not advance");
                }
            }
            Err(e) => {
                // The error must render a useful explanation.
                let msg = e.to_string();
                assert!(!msg.is_empty());
            }
        }
    }

    #[test]
    fn sample_brackets_a_closure() {
        if let Ok(hw) = HwCounters::try_open(&[HwEvent::Cycles, HwEvent::Instructions]) {
            let (out, sample) = hw.sample(|| (0..100_000u64).sum::<u64>());
            assert_eq!(out, 4_999_950_000);
            assert!(sample.counts.len() <= 2);
        }
    }

    #[test]
    fn per_run_divides_counts() {
        let s = HwSample {
            counts: vec![(HwEvent::Cycles, 1000), (HwEvent::Instructions, 10)],
            multiplexed: false,
        };
        let per = s.per_run(10);
        assert_eq!(per.get(HwEvent::Cycles), Some(100));
        assert_eq!(per.get(HwEvent::Instructions), Some(1));
        assert_eq!(s.per_run(0).get(HwEvent::Cycles), Some(1000));
    }

    #[test]
    fn delta_scaling_flags_multiplexing() {
        let earlier = HwReading {
            slots: vec![(HwEvent::Cycles, Some((100, 1000, 1000)))],
        };
        let later = HwReading {
            // Ran only half the window: the 400 raw delta scales to 800.
            slots: vec![(HwEvent::Cycles, Some((500, 3000, 2000)))],
        };
        let s = later.delta_since(&earlier);
        assert!(s.multiplexed);
        assert_eq!(s.get(HwEvent::Cycles), Some(800));
    }

    #[test]
    fn unopened_events_are_omitted_from_samples() {
        let earlier = HwReading {
            slots: vec![
                (HwEvent::Cycles, Some((0, 10, 10))),
                (HwEvent::LlcMisses, None),
            ],
        };
        let later = HwReading {
            slots: vec![
                (HwEvent::Cycles, Some((7, 20, 20))),
                (HwEvent::LlcMisses, None),
            ],
        };
        let s = later.delta_since(&earlier);
        assert_eq!(s.get(HwEvent::Cycles), Some(7));
        assert_eq!(s.get(HwEvent::LlcMisses), None);
    }
}

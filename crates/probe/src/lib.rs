//! Zero-cost observability for the nDirect stack.
//!
//! The paper's claims are mechanistic — packing hides behind FMAs, the
//! analytic models pick near-optimal tiles, the 2-D thread grid balances —
//! and this crate gives tests and benches a way to observe those mechanisms
//! at runtime instead of inferring them from end-to-end GFLOPS:
//!
//! * **Monotonic counters** ([`Counter`]): FLOPs issued by the
//!   micro-kernels, bytes packed, scratch-pool hits/misses,
//!   minimal-schedule degradations, plan-cache hits/misses.
//! * **Phase timers** ([`phase`]): accumulated nanoseconds + call counts
//!   per thread for the hot phases (pack, micro-kernel, filter transform,
//!   barrier wait, plan build).
//! * **Per-thread event timelines** ([`span`]): coarse-grained spans
//!   (parallel region, worker busy slice, model layer) recorded into a
//!   bounded lock-free per-thread buffer; overflow drops events and counts
//!   the drops rather than blocking or reallocating.
//! * **[`TraceReport`]**: a quiescent snapshot of all of the above that
//!   serializes via the in-tree [`ndirect_support::Json`], renders a
//!   per-thread text timeline, diffs against an earlier snapshot
//!   ([`TraceReport::since`]), and exports the span timelines as Chrome
//!   trace-event JSON ([`TraceReport::to_chrome_trace`]) for
//!   `chrome://tracing` / Perfetto.
//! * **Hardware counters** ([`hwc`]): a Linux `perf_event_open` backend
//!   (cycles, instructions, L1d/LLC loads and misses, raw syscalls, zero
//!   dependencies) with graceful degradation everywhere the kernel or
//!   target cannot provide it. Unlike the rest of the crate it is not
//!   feature-gated — it costs nothing unless explicitly opened.
//!
//! # Zero cost when disabled
//!
//! Everything is gated on the `probe` cargo feature **of this crate**:
//! [`ENABLED`] is `pub const ENABLED: bool = cfg!(feature = "probe")`, and
//! every macro and inline helper starts with `if ENABLED`. Because the
//! constant lives here (not in the expanded code), consumer crates get the
//! right value regardless of their own feature sets, and with the feature
//! off the optimizer removes the instrumentation entirely — no clock
//! reads, no atomics, no argument evaluation. `benches/probe_overhead.rs`
//! in `ndirect-bench` guards this in CI.
//!
//! # Concurrency model
//!
//! Hot-path updates use `Relaxed` atomics: counters are monotonic sums and
//! per-thread state is only ever written by its owning thread. Reads
//! ([`TraceReport::capture`], [`counter`]) are meant for *quiescent*
//! points — after a pool barrier, between `execute` calls — where the
//! `Mutex` acquired while walking the thread registry provides the needed
//! synchronization edge. Capturing mid-region yields torn but memory-safe
//! snapshots, which is fine for monitoring and wrong for assertions; the
//! accounting tests serialize themselves accordingly.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering::Relaxed};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use ndirect_support::Json;

pub mod hwc;
pub mod metrics;

/// `true` iff this crate was built with its `probe` feature.
///
/// Instrumented crates forward their own `probe` feature to
/// `ndirect-probe/probe`, so one `--features probe` at the workspace level
/// flips every call site at once.
pub const ENABLED: bool = cfg!(feature = "probe");

/// Events each thread can buffer before further spans are dropped
/// (counted in [`ThreadTrace::dropped`]). 24 bytes per slot.
pub const EVENTS_PER_THREAD: usize = 4096;

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

/// Global monotonic counters. Each is a plain `AtomicU64` bumped with
/// `Relaxed` ordering from the hot paths; see the crate docs for when a
/// read is trustworthy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(usize)]
pub enum Counter {
    /// Floating-point operations issued by the inner kernels, counted as
    /// 2 (multiply + add) per MAC actually performed, padding excluded.
    /// For one full direct conv this equals `ConvShape::flops()`.
    FlopsIssued = 0,
    /// Bytes of activation data written into packed strip buffers
    /// (`Tc·R·WIN` floats per strip, fused and sequential alike).
    BytesPacked,
    /// Bytes of filter data written in micro-kernel order by the filter
    /// transform (on-the-fly blocks and plan-time packing both count).
    BytesTransformed,
    /// `ConvPlan`/`DepthwisePlan` executions that reused a pooled scratch
    /// set instead of allocating one.
    ScratchPoolHits,
    /// Executions that had to allocate a fresh scratch set (first use, or
    /// more concurrent executions than the pool had idle sets).
    ScratchPoolMisses,
    /// Times a requested schedule could not be provisioned and the build
    /// degraded to `Schedule::minimal` instead of failing.
    MinimalScheduleDegradations,
    /// Model-backend convolutions served by an already-built plan.
    PlanCacheHits,
    /// Model-backend convolutions that had to build (and cache) a plan.
    PlanCacheMisses,
    /// Parallel regions dispatched through `StaticPool::try_run`
    /// (single-thread inline runs included).
    Regions,
    /// Timeline events discarded because a per-thread buffer was full.
    EventsDropped,
    /// Requests admitted into the serving queue.
    ServeEnqueued,
    /// Requests pulled off the serving queue by the batcher (includes
    /// requests later found expired; excludes shed ones).
    ServeDequeued,
    /// Requests refused admission (queue past the high-water mark,
    /// expired on arrival, or server draining).
    ServeShed,
    /// Requests whose deadline expired after admission — cancelled in
    /// queue, or delivered late from an in-flight batch.
    ServeDeadlineMisses,
    /// Batches dispatched to a worker shard.
    ServeBatches,
    /// Requests carried inside dispatched batches (mean batch size is
    /// `ServeBatchedRequests / ServeBatches`).
    ServeBatchedRequests,
    /// Transient-failure retries performed by the serving executor.
    ServeRetries,
    /// Bytes of per-strip packing traffic the zero-copy schedule variants
    /// (`PackingMode::None` / `PackingMode::Sliced`) *avoided*: for every
    /// strip served without its own packed buffer, the `Tc·R·WIN·4` bytes
    /// the fused/sequential modes would have written. On the same layer and
    /// schedule, `bytes_pack_saved` under a zero-copy mode equals
    /// `bytes_packed` under `Fused`.
    BytesPackSaved,
    /// Bytes of depthwise-intermediate round-trip traffic the fused
    /// dw+pw path *avoided*: for every row-slice consumed straight out
    /// of the cache-resident slab, the write plus read of the slice the
    /// unfused composition would have pushed through memory
    /// (`2·C·len·Q·4` per slice, `2·N·C·P·Q·4` over a whole layer).
    BytesIntermediateSaved,
}

/// Number of [`Counter`] variants.
pub const NUM_COUNTERS: usize = 19;

impl Counter {
    /// All counters, in declaration (= serialization) order.
    pub const ALL: [Counter; NUM_COUNTERS] = [
        Counter::FlopsIssued,
        Counter::BytesPacked,
        Counter::BytesTransformed,
        Counter::ScratchPoolHits,
        Counter::ScratchPoolMisses,
        Counter::MinimalScheduleDegradations,
        Counter::PlanCacheHits,
        Counter::PlanCacheMisses,
        Counter::Regions,
        Counter::EventsDropped,
        Counter::ServeEnqueued,
        Counter::ServeDequeued,
        Counter::ServeShed,
        Counter::ServeDeadlineMisses,
        Counter::ServeBatches,
        Counter::ServeBatchedRequests,
        Counter::ServeRetries,
        Counter::BytesPackSaved,
        Counter::BytesIntermediateSaved,
    ];

    /// Stable snake_case name used in JSON and the text report.
    pub fn name(self) -> &'static str {
        match self {
            Counter::FlopsIssued => "flops_issued",
            Counter::BytesPacked => "bytes_packed",
            Counter::BytesTransformed => "bytes_transformed",
            Counter::ScratchPoolHits => "scratch_pool_hits",
            Counter::ScratchPoolMisses => "scratch_pool_misses",
            Counter::MinimalScheduleDegradations => "minimal_schedule_degradations",
            Counter::PlanCacheHits => "plan_cache_hits",
            Counter::PlanCacheMisses => "plan_cache_misses",
            Counter::Regions => "regions",
            Counter::EventsDropped => "events_dropped",
            Counter::ServeEnqueued => "serve_enqueued",
            Counter::ServeDequeued => "serve_dequeued",
            Counter::ServeShed => "serve_shed",
            Counter::ServeDeadlineMisses => "serve_deadline_misses",
            Counter::ServeBatches => "serve_batches",
            Counter::ServeBatchedRequests => "serve_batched_requests",
            Counter::ServeRetries => "serve_retries",
            Counter::BytesPackSaved => "bytes_pack_saved",
            Counter::BytesIntermediateSaved => "bytes_intermediate_saved",
        }
    }
}

struct Counters([AtomicU64; NUM_COUNTERS]);

static COUNTERS: Counters = {
    #[allow(clippy::declare_interior_mutable_const)]
    const Z: AtomicU64 = AtomicU64::new(0);
    Counters([Z; NUM_COUNTERS])
};

/// Adds `n` to a counter. Compiles to nothing when [`ENABLED`] is false.
// AUDIT: hotpath
#[inline(always)]
pub fn add(counter: Counter, n: u64) {
    if ENABLED {
        // INDEX: Counter discriminants enumerate 0..NUM_COUNTERS, which
        // sizes the array.
        COUNTERS.0[counter as usize].fetch_add(n, Relaxed); // ORDERING: Relaxed — monotonic counter bump; publishes no other memory
    }
}

/// Current value of a counter (0 when disabled). Only trustworthy at
/// quiescent points; see the crate docs.
#[inline]
pub fn counter(counter: Counter) -> u64 {
    if ENABLED {
        COUNTERS.0[counter as usize].load(Relaxed) // ORDERING: Relaxed — point-in-time read of an independent sum
    } else {
        0
    }
}

// ---------------------------------------------------------------------------
// Phases
// ---------------------------------------------------------------------------

/// What a timer or span measures. The first group (through `PlanBuild`)
/// are *hot phases*: per-thread accumulated time + call counts, no
/// timeline event per call. The rest are *coarse spans* recorded into the
/// per-thread timeline (and accumulated too).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum Phase {
    /// Packing an input strip into the contiguous scratch buffer.
    Pack = 0,
    /// The vectorized inner kernel, including fused gather-packing.
    MicroKernel,
    /// Reordering filter blocks into micro-kernel layout.
    FilterTransform,
    /// A caller blocked on the pool's region latch.
    Barrier,
    /// Schedule derivation + scratch/filter provisioning in a plan build.
    PlanBuild,
    /// One parallel region, as seen by the dispatching caller.
    Region,
    /// One worker's busy slice of a region (arg = thread id in the grid).
    Worker,
    /// One model node executed by the engine (arg = node index).
    Layer,
    /// A serve request waiting in the admission queue, from submit to the
    /// batcher taking it (arg = low 32 bits of the trace ID).
    ServeAdmission,
    /// A serve request lingering in a forming batch waiting for
    /// coalescing partners (arg = trace ID).
    ServeLinger,
    /// A serve batch waiting in the bounded dispatch channel for a free
    /// shard (arg = trace ID of the batch's first request).
    ServeDispatch,
    /// A serve batch executing its convolution plan (arg = trace ID).
    ServeExecute,
    /// Result delivery: gather/scatter plus waking the ticket holder
    /// (arg = trace ID).
    ServeDeliver,
}

/// Number of [`Phase`] variants.
pub const NUM_PHASES: usize = 13;

impl Phase {
    /// All phases, in declaration order.
    pub const ALL: [Phase; NUM_PHASES] = [
        Phase::Pack,
        Phase::MicroKernel,
        Phase::FilterTransform,
        Phase::Barrier,
        Phase::PlanBuild,
        Phase::Region,
        Phase::Worker,
        Phase::Layer,
        Phase::ServeAdmission,
        Phase::ServeLinger,
        Phase::ServeDispatch,
        Phase::ServeExecute,
        Phase::ServeDeliver,
    ];

    /// Stable snake_case name used in JSON and the text report.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Pack => "pack",
            Phase::MicroKernel => "micro_kernel",
            Phase::FilterTransform => "filter_transform",
            Phase::Barrier => "barrier",
            Phase::PlanBuild => "plan_build",
            Phase::Region => "region",
            Phase::Worker => "worker",
            Phase::Layer => "layer",
            Phase::ServeAdmission => "serve_admission",
            Phase::ServeLinger => "serve_linger",
            Phase::ServeDispatch => "serve_dispatch",
            Phase::ServeExecute => "serve_execute",
            Phase::ServeDeliver => "serve_deliver",
        }
    }

    fn from_u8(x: u8) -> Phase {
        Phase::ALL[(x as usize).min(NUM_PHASES - 1)]
    }
}

// ---------------------------------------------------------------------------
// Per-thread state
// ---------------------------------------------------------------------------

/// One timeline slot: `meta` packs `phase` (high 8 bits of the low 40) and
/// a 32-bit user argument; times are nanoseconds since the process probe
/// epoch. Written by the owning thread only, so `Relaxed` stores suffice.
struct EventSlot {
    meta: AtomicU64,
    start_ns: AtomicU64,
    dur_ns: AtomicU64,
}

struct ThreadSlot {
    name: String,
    phase_ns: [AtomicU64; NUM_PHASES],
    phase_calls: [AtomicU64; NUM_PHASES],
    /// Number of *reserved* event slots; may briefly exceed written ones
    /// mid-record, hence capture only at quiescence.
    events_len: AtomicUsize,
    events: Box<[EventSlot]>,
    dropped: AtomicU64,
}

impl ThreadSlot {
    fn new(name: String) -> ThreadSlot {
        #[allow(clippy::declare_interior_mutable_const)]
        const Z: AtomicU64 = AtomicU64::new(0);
        ThreadSlot {
            name,
            phase_ns: [Z; NUM_PHASES],
            phase_calls: [Z; NUM_PHASES],
            events_len: AtomicUsize::new(0),
            events: (0..EVENTS_PER_THREAD)
                .map(|_| EventSlot {
                    meta: AtomicU64::new(0),
                    start_ns: AtomicU64::new(0),
                    dur_ns: AtomicU64::new(0),
                })
                .collect(),
            dropped: AtomicU64::new(0),
        }
    }

    fn record_event(&self, phase: Phase, arg: u32, start_ns: u64, dur_ns: u64) {
        let idx = self.events_len.fetch_add(1, Relaxed); // ORDERING: Relaxed — claims a slot index in a single-writer ring; no payload ordering
        if idx >= self.events.len() {
            // Park the length at capacity so it can't wrap after ~2^64
            // reservations, and account for the loss.
            self.events_len.store(self.events.len(), Relaxed); // ORDERING: Relaxed — single-writer saturation clamp
            self.dropped.fetch_add(1, Relaxed); // ORDERING: Relaxed — monotonic drop counter
            add(Counter::EventsDropped, 1);
            return;
        }
        // INDEX: idx was bounds-checked against events.len() above (the
        // early return handles the saturated case).
        let slot = &self.events[idx];
        slot.meta
            .store(((phase as u64) << 32) | arg as u64, Relaxed); // ORDERING: Relaxed — single-writer slot; readers accept torn snapshots by design
        slot.start_ns.store(start_ns, Relaxed); // ORDERING: Relaxed — single-writer slot; readers accept torn snapshots by design
        slot.dur_ns.store(dur_ns, Relaxed); // ORDERING: Relaxed — single-writer slot; readers accept torn snapshots by design
    }

    fn reset(&self) {
        for a in &self.phase_ns {
            a.store(0, Relaxed); // ORDERING: Relaxed — owner-thread reset; concurrent readers accept mid-reset views
        }
        for a in &self.phase_calls {
            a.store(0, Relaxed); // ORDERING: Relaxed — owner-thread reset; concurrent readers accept mid-reset views
        }
        self.events_len.store(0, Relaxed); // ORDERING: Relaxed — owner-thread reset; concurrent readers accept mid-reset views
        self.dropped.store(0, Relaxed); // ORDERING: Relaxed — owner-thread reset; concurrent readers accept mid-reset views
    }
}

fn registry() -> &'static Mutex<Vec<Arc<ThreadSlot>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<ThreadSlot>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process probe epoch (first clock use). **Not**
/// gated on [`ENABLED`]: the always-on [`metrics`] plane and the serve
/// stage timestamps use this clock so their spans line up with the
/// feature-gated timeline when both are active.
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

thread_local! {
    static SLOT: Arc<ThreadSlot> = {
        static ANON: AtomicUsize = AtomicUsize::new(0);
        let name = std::thread::current()
            .name()
            .map(str::to_owned)
            .unwrap_or_else(|| format!("thread-{}", ANON.fetch_add(1, Relaxed))); // ORDERING: Relaxed — unique-id tick; only uniqueness matters
        let slot = Arc::new(ThreadSlot::new(name));
        registry()
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(Arc::clone(&slot));
        slot
    };
}

#[inline]
fn with_slot(f: impl FnOnce(&ThreadSlot)) {
    // Accessing a TLS key during that thread's destruction panics; probes
    // firing from exiting threads are silently dropped instead.
    let _ = SLOT.try_with(|s| f(s));
}

// ---------------------------------------------------------------------------
// Timers and spans
// ---------------------------------------------------------------------------

/// Scoped timer for a hot phase: accumulates elapsed nanoseconds and one
/// call into the current thread's per-phase totals on drop. No timeline
/// event, so it is cheap enough for per-strip scopes.
#[must_use = "the timer measures until it is dropped"]
pub struct PhaseTimer {
    phase: Phase,
    start: Option<Instant>,
}

impl Drop for PhaseTimer {
    #[inline]
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let ns = start.elapsed().as_nanos() as u64;
            with_slot(|s| {
                s.phase_ns[self.phase as usize].fetch_add(ns, Relaxed); // ORDERING: Relaxed — per-thread phase accumulator; read racily by design
                s.phase_calls[self.phase as usize].fetch_add(1, Relaxed); // ORDERING: Relaxed — per-thread phase accumulator; read racily by design
            });
        }
    }
}

/// Starts a [`PhaseTimer`]. When [`ENABLED`] is false no clock is read and
/// the guard is inert.
#[inline(always)]
pub fn phase(phase: Phase) -> PhaseTimer {
    PhaseTimer {
        phase,
        start: if ENABLED { Some(Instant::now()) } else { None },
    }
}

/// Scoped span: like [`PhaseTimer`] but additionally records a timeline
/// event `(phase, arg, start, duration)` in the current thread's bounded
/// buffer on drop. Use for coarse scopes (regions, layers), not per-strip.
#[must_use = "the span measures until it is dropped"]
pub struct SpanGuard {
    phase: Phase,
    arg: u32,
    start: Option<Instant>,
    start_ns: u64,
}

impl Drop for SpanGuard {
    #[inline]
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let ns = start.elapsed().as_nanos() as u64;
            with_slot(|s| {
                s.phase_ns[self.phase as usize].fetch_add(ns, Relaxed); // ORDERING: Relaxed — per-thread phase accumulator; read racily by design
                s.phase_calls[self.phase as usize].fetch_add(1, Relaxed); // ORDERING: Relaxed — per-thread phase accumulator; read racily by design
                s.record_event(self.phase, self.arg, self.start_ns, ns);
            });
        }
    }
}

/// Starts a [`SpanGuard`] with a caller-chosen 32-bit argument (thread id,
/// layer index, …). Inert when [`ENABLED`] is false.
#[inline(always)]
pub fn span(phase: Phase, arg: u32) -> SpanGuard {
    if ENABLED {
        SpanGuard {
            phase,
            arg,
            start: Some(Instant::now()),
            start_ns: now_ns(),
        }
    } else {
        SpanGuard {
            phase,
            arg,
            start: None,
            start_ns: 0,
        }
    }
}

/// Records an already-measured span into the *current* thread's timeline.
///
/// The scoped [`span`] guard measures start and end on the same thread; a
/// serve request's stage transitions happen on different threads (submit
/// on the caller, dequeue on the batcher, execute on a shard), so the
/// serving plane measures each stage itself with [`now_ns`] timestamps
/// and reports the finished interval here from whichever thread observed
/// the stage end. No-op (nothing evaluated beyond the arguments) when
/// [`ENABLED`] is false.
// AUDIT: hotpath
#[inline]
pub fn record_span(phase: Phase, arg: u32, start_ns: u64, dur_ns: u64) {
    if ENABLED {
        with_slot(|s| {
            // INDEX: Phase discriminants enumerate 0..NUM_PHASES, which
            // sizes both arrays.
            s.phase_ns[phase as usize].fetch_add(dur_ns, Relaxed); // ORDERING: Relaxed — per-thread phase accumulator; read racily by design
            // INDEX: same NUM_PHASES bound as the line above.
            s.phase_calls[phase as usize].fetch_add(1, Relaxed); // ORDERING: Relaxed — per-thread phase accumulator; read racily by design
            s.record_event(phase, arg, start_ns, dur_ns);
        });
    }
}

/// Bumps a [`Counter`]; the count expression is **not evaluated** when the
/// probe is disabled, so it may be arbitrarily expensive.
#[macro_export]
macro_rules! probe_count {
    ($counter:ident, $n:expr) => {
        if $crate::ENABLED {
            $crate::add($crate::Counter::$counter, $n as u64);
        }
    };
}

/// Expands to a scoped [`PhaseTimer`] expression:
/// `let _t = probe_phase!(Pack);`
#[macro_export]
macro_rules! probe_phase {
    ($phase:ident) => {
        $crate::phase($crate::Phase::$phase)
    };
}

/// Expands to a scoped [`SpanGuard`] expression:
/// `let _s = probe_span!(Layer, idx);` (arg is not evaluated when
/// disabled).
#[macro_export]
macro_rules! probe_span {
    ($phase:ident, $arg:expr) => {
        $crate::span(
            $crate::Phase::$phase,
            if $crate::ENABLED { $arg as u32 } else { 0 },
        )
    };
}

/// Records a value into a [`metrics::LogHistogram`](metrics::LogHistogram)
/// **only when the probe feature is on**; like [`probe_count!`], neither
/// the histogram expression nor the value is evaluated when disabled, so
/// hot paths may pass arbitrarily expensive expressions. The serving
/// plane's always-on metrics call [`metrics::LogHistogram::record`]
/// directly instead; this macro is for optional kernel-side distributions
/// that must const-fold away (guarded by `probe_overhead.rs --guard`).
#[macro_export]
macro_rules! probe_hist {
    ($hist:expr, $value:expr) => {
        if $crate::ENABLED {
            ($hist).record($value as u64);
        }
    };
}

/// Zeroes every counter and every registered thread's phase totals and
/// timeline. Callers must be quiescent (no regions in flight).
pub fn reset() {
    if !ENABLED {
        return;
    }
    for a in &COUNTERS.0 {
        a.store(0, Relaxed); // ORDERING: Relaxed — reset races with recorders by design (crate docs)
    }
    for slot in registry().lock().unwrap_or_else(|p| p.into_inner()).iter() {
        slot.reset();
    }
}

// ---------------------------------------------------------------------------
// Reports
// ---------------------------------------------------------------------------

/// One recorded timeline event.
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// What was measured.
    pub phase: Phase,
    /// Caller-supplied argument (thread id, layer index, …).
    pub arg: u32,
    /// Start, nanoseconds since the process probe epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

/// Snapshot of one thread's probe state.
#[derive(Clone, Debug)]
pub struct ThreadTrace {
    /// Thread name (or `thread-N` for unnamed threads).
    pub name: String,
    /// Accumulated nanoseconds per [`Phase`], indexed by `Phase as usize`.
    pub phase_ns: [u64; NUM_PHASES],
    /// Accumulated scope entries per [`Phase`].
    pub phase_calls: [u64; NUM_PHASES],
    /// Recorded timeline events, oldest first.
    pub events: Vec<Event>,
    /// Events lost to buffer overflow since the last [`reset`].
    pub dropped: u64,
}

/// A quiescent snapshot of all probe state: global counters plus one
/// [`ThreadTrace`] per thread that ever recorded anything.
#[derive(Clone, Debug, Default)]
pub struct TraceReport {
    /// Counter values, in [`Counter::ALL`] order.
    pub counters: [u64; NUM_COUNTERS],
    /// Per-thread traces, in registration order. Threads with no recorded
    /// state (all zeros, no events) are omitted.
    pub threads: Vec<ThreadTrace>,
    /// Capture time, nanoseconds since the process probe epoch.
    pub captured_ns: u64,
}

impl TraceReport {
    /// Captures the current probe state. Empty when [`ENABLED`] is false.
    pub fn capture() -> TraceReport {
        if !ENABLED {
            return TraceReport::default();
        }
        let mut counters = [0u64; NUM_COUNTERS];
        for (dst, src) in counters.iter_mut().zip(&COUNTERS.0) {
            *dst = src.load(Relaxed); // ORDERING: Relaxed — racy snapshot read; counters are independent sums
        }
        let mut threads = Vec::new();
        for slot in registry().lock().unwrap_or_else(|p| p.into_inner()).iter() {
            let phase_ns = std::array::from_fn(|i| slot.phase_ns[i].load(Relaxed)); // ORDERING: Relaxed — racy snapshot read; counters are independent sums
            let phase_calls = std::array::from_fn(|i| slot.phase_calls[i].load(Relaxed)); // ORDERING: Relaxed — racy snapshot read; counters are independent sums
            let len = slot.events_len.load(Relaxed).min(slot.events.len()); // ORDERING: Relaxed — racy snapshot read; length is clamped to capacity
            let events: Vec<Event> = slot.events[..len]
                .iter()
                .map(|e| {
                    let meta = e.meta.load(Relaxed); // ORDERING: Relaxed — racy snapshot read; torn events are acceptable
                    Event {
                        phase: Phase::from_u8((meta >> 32) as u8),
                        arg: meta as u32,
                        start_ns: e.start_ns.load(Relaxed), // ORDERING: Relaxed — racy snapshot read; torn events are acceptable
                        dur_ns: e.dur_ns.load(Relaxed), // ORDERING: Relaxed — racy snapshot read; torn events are acceptable
                    }
                })
                .collect();
            let dropped = slot.dropped.load(Relaxed); // ORDERING: Relaxed — racy snapshot read; counters are independent sums
            let quiet = events.is_empty()
                && dropped == 0
                && phase_calls.iter().all(|&c| c == 0);
            if !quiet {
                threads.push(ThreadTrace {
                    name: slot.name.clone(),
                    phase_ns,
                    phase_calls,
                    events,
                    dropped,
                });
            }
        }
        TraceReport {
            counters,
            threads,
            captured_ns: now_ns(),
        }
    }

    /// Value of one counter in this snapshot.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c as usize]
    }

    /// The delta between this snapshot and an earlier `baseline`: counter
    /// differences, per-thread phase-total differences, and only the
    /// timeline events that started after the baseline was captured.
    ///
    /// This is the race-free alternative to [`reset`] for benches and
    /// tests: `reset` zeroes process-global state (so two concurrent
    /// measurements corrupt each other), while `since` is pure arithmetic
    /// on two immutable snapshots. Threads are matched by name in
    /// registration order (the registry only appends, so positions are
    /// stable); threads with nothing new since the baseline are omitted.
    pub fn since(&self, baseline: &TraceReport) -> TraceReport {
        let mut counters = [0u64; NUM_COUNTERS];
        for (i, dst) in counters.iter_mut().enumerate() {
            *dst = self.counters[i].saturating_sub(baseline.counters[i]);
        }
        let mut consumed = vec![false; baseline.threads.len()];
        let mut threads = Vec::new();
        for t in &self.threads {
            let base = baseline.threads.iter().enumerate().find_map(|(i, b)| {
                (!consumed[i] && b.name == t.name).then(|| {
                    consumed[i] = true;
                    b
                })
            });
            let zero = [0u64; NUM_PHASES];
            let (base_ns, base_calls, base_dropped) = match base {
                Some(b) => (&b.phase_ns, &b.phase_calls, b.dropped),
                None => (&zero, &zero, 0),
            };
            let phase_ns = std::array::from_fn(|i| t.phase_ns[i].saturating_sub(base_ns[i]));
            let phase_calls =
                std::array::from_fn(|i| t.phase_calls[i].saturating_sub(base_calls[i]));
            let events: Vec<Event> = t
                .events
                .iter()
                .filter(|e| e.start_ns >= baseline.captured_ns)
                .copied()
                .collect();
            let dropped = t.dropped.saturating_sub(base_dropped);
            let quiet =
                events.is_empty() && dropped == 0 && phase_calls.iter().all(|&c| c == 0);
            if !quiet {
                threads.push(ThreadTrace {
                    name: t.name.clone(),
                    phase_ns,
                    phase_calls,
                    events,
                    dropped,
                });
            }
        }
        TraceReport {
            counters,
            threads,
            captured_ns: self.captured_ns,
        }
    }

    /// Exports the per-thread span timelines as Chrome trace-event JSON
    /// (the "JSON Object Format": `{"traceEvents": [...]}`), loadable
    /// directly in `chrome://tracing` and [Perfetto](https://ui.perfetto.dev).
    ///
    /// Each recorded span becomes one complete (`"ph": "X"`) event with
    /// `pid` 0, `tid` = the thread's registration index, microsecond
    /// `ts`/`dur`, and the span argument under `args`. Thread names are
    /// emitted as `thread_name` metadata events first; complete events
    /// follow sorted by start time, as the trace-viewer importers expect.
    pub fn to_chrome_trace(&self) -> Json {
        let mut events = Vec::new();
        for (tid, t) in self.threads.iter().enumerate() {
            events.push(Json::Obj(vec![
                ("name".to_owned(), Json::str("thread_name")),
                ("ph".to_owned(), Json::str("M")),
                ("pid".to_owned(), Json::usize(0)),
                ("tid".to_owned(), Json::usize(tid)),
                ("ts".to_owned(), Json::num(0.0)),
                (
                    "args".to_owned(),
                    Json::Obj(vec![("name".to_owned(), Json::str(t.name.clone()))]),
                ),
            ]));
        }
        let mut spans: Vec<(u64, usize, &Event)> = self
            .threads
            .iter()
            .enumerate()
            .flat_map(|(tid, t)| t.events.iter().map(move |e| (e.start_ns, tid, e)))
            .collect();
        spans.sort_by_key(|&(start_ns, tid, _)| (start_ns, tid));
        for (start_ns, tid, e) in spans {
            events.push(Json::Obj(vec![
                ("name".to_owned(), Json::str(e.phase.name())),
                ("cat".to_owned(), Json::str("ndirect")),
                ("ph".to_owned(), Json::str("X")),
                ("pid".to_owned(), Json::usize(0)),
                ("tid".to_owned(), Json::usize(tid)),
                ("ts".to_owned(), Json::num(start_ns as f64 / 1e3)),
                ("dur".to_owned(), Json::num(e.dur_ns as f64 / 1e3)),
                (
                    "args".to_owned(),
                    Json::Obj(vec![("arg".to_owned(), Json::num(e.arg as f64))]),
                ),
            ]));
        }
        Json::Obj(vec![
            ("traceEvents".to_owned(), Json::Arr(events)),
            ("displayTimeUnit".to_owned(), Json::str("ms")),
        ])
    }

    /// Serializes the report with the in-tree JSON support. Counter values
    /// above 2⁵³ lose precision (stored as f64), which the trace consumers
    /// accept; exact assertions should read [`TraceReport::counter`].
    pub fn to_json(&self) -> Json {
        let counters = Counter::ALL
            .iter()
            .map(|&c| (c.name().to_owned(), Json::num(self.counter(c) as f64)))
            .collect();
        let threads = self
            .threads
            .iter()
            .map(|t| {
                let phases = Phase::ALL
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| t.phase_calls[i] != 0)
                    .map(|(i, &p)| {
                        (
                            p.name().to_owned(),
                            Json::Obj(vec![
                                ("ns".to_owned(), Json::num(t.phase_ns[i] as f64)),
                                ("calls".to_owned(), Json::num(t.phase_calls[i] as f64)),
                            ]),
                        )
                    })
                    .collect();
                let events = t
                    .events
                    .iter()
                    .map(|e| {
                        Json::Obj(vec![
                            ("phase".to_owned(), Json::str(e.phase.name())),
                            ("arg".to_owned(), Json::num(e.arg as f64)),
                            ("start_ns".to_owned(), Json::num(e.start_ns as f64)),
                            ("dur_ns".to_owned(), Json::num(e.dur_ns as f64)),
                        ])
                    })
                    .collect();
                Json::Obj(vec![
                    ("name".to_owned(), Json::str(t.name.clone())),
                    ("phases".to_owned(), Json::Obj(phases)),
                    ("events".to_owned(), Json::Arr(events)),
                    ("dropped".to_owned(), Json::num(t.dropped as f64)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("enabled".to_owned(), Json::Bool(ENABLED)),
            ("captured_ns".to_owned(), Json::num(self.captured_ns as f64)),
            ("counters".to_owned(), Json::Obj(counters)),
            ("threads".to_owned(), Json::Arr(threads)),
        ])
    }

    /// Renders the counters, per-thread phase totals, and an ASCII
    /// per-thread timeline of the coarse spans, `width` columns wide.
    pub fn render_timeline(&self, width: usize) -> String {
        use std::fmt::Write;
        let width = width.clamp(20, 400);
        let mut out = String::new();
        let _ = writeln!(out, "probe trace (enabled={ENABLED})");
        let _ = writeln!(out, "counters:");
        for &c in &Counter::ALL {
            if self.counter(c) != 0 {
                let _ = writeln!(out, "  {:<30} {}", c.name(), self.counter(c));
            }
        }
        if self.threads.is_empty() {
            let _ = writeln!(out, "threads: none recorded");
            return out;
        }
        // Scale the timeline to the recorded event window.
        let t0 = self
            .threads
            .iter()
            .flat_map(|t| t.events.iter())
            .map(|e| e.start_ns)
            .min()
            .unwrap_or(0);
        let t1 = self
            .threads
            .iter()
            .flat_map(|t| t.events.iter())
            .map(|e| e.start_ns + e.dur_ns)
            .max()
            .unwrap_or(t0 + 1)
            .max(t0 + 1);
        let span_ns = t1 - t0;
        let _ = writeln!(
            out,
            "timeline: {} events over {:.3} ms ({} cols, . idle | p pack | m micro-kernel | f filter | b barrier | P plan | R region | W worker | L layer | Q admission | G linger | D dispatch | X execute | V deliver)",
            self.threads.iter().map(|t| t.events.len()).sum::<usize>(),
            span_ns as f64 / 1e6,
            width,
        );
        for t in &self.threads {
            let mut lane = vec![b'.'; width];
            for e in &t.events {
                let code = match e.phase {
                    Phase::Pack => b'p',
                    Phase::MicroKernel => b'm',
                    Phase::FilterTransform => b'f',
                    Phase::Barrier => b'b',
                    Phase::PlanBuild => b'P',
                    Phase::Region => b'R',
                    Phase::Worker => b'W',
                    Phase::Layer => b'L',
                    Phase::ServeAdmission => b'Q',
                    Phase::ServeLinger => b'G',
                    Phase::ServeDispatch => b'D',
                    Phase::ServeExecute => b'X',
                    Phase::ServeDeliver => b'V',
                };
                let lo = ((e.start_ns - t0) as u128 * width as u128 / span_ns as u128) as usize;
                let hi = (((e.start_ns + e.dur_ns - t0) as u128 * width as u128)
                    / span_ns as u128) as usize;
                for cell in lane
                    .iter_mut()
                    .take(hi.clamp(lo, width - 1) + 1)
                    .skip(lo.min(width - 1))
                {
                    *cell = code;
                }
            }
            let _ = writeln!(
                out,
                "  {:<18} |{}|",
                truncate(&t.name, 18),
                String::from_utf8_lossy(&lane)
            );
            for (i, &p) in Phase::ALL.iter().enumerate() {
                if t.phase_calls[i] != 0 {
                    let _ = writeln!(
                        out,
                        "    {:<16} {:>10.3} ms  {:>8} calls",
                        p.name(),
                        t.phase_ns[i] as f64 / 1e6,
                        t.phase_calls[i],
                    );
                }
            }
            if t.dropped != 0 {
                let _ = writeln!(out, "    (dropped {} events)", t.dropped);
            }
        }
        out
    }
}

fn truncate(s: &str, max: usize) -> &str {
    match s.char_indices().nth(max) {
        Some((i, _)) => &s[..i],
        None => s,
    }
}

/// `true` when tracing was requested via `NDIRECT_PROBE=1` (any value but
/// `0` or empty counts) *and* the probe is compiled in.
pub fn env_requested() -> bool {
    ENABLED
        && matches!(std::env::var("NDIRECT_PROBE"), Ok(v) if !v.is_empty() && v != "0")
}

/// If `NDIRECT_PROBE=1` and the probe is compiled in, captures a report
/// and prints its text timeline to stderr, prefixed with `label`.
/// Convenient tail call for benches and examples; a no-op otherwise.
pub fn report_if_env(label: &str) {
    if env_requested() {
        let report = TraceReport::capture();
        eprintln!("== {label} ==\n{}", report.render_timeline(100));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The probe's own unit tests run with or without the feature; the
    // cross-stack accounting lives in tests/probe_accounting.rs.

    #[test]
    fn disabled_state_is_inert_and_enabled_state_counts() {
        let before = counter(Counter::FlopsIssued);
        add(Counter::FlopsIssued, 7);
        probe_count!(FlopsIssued, 5);
        let delta = counter(Counter::FlopsIssued) - before;
        if ENABLED {
            assert_eq!(delta, 12);
        } else {
            assert_eq!(counter(Counter::FlopsIssued), 0);
        }
    }

    #[test]
    fn spans_and_phases_land_in_the_report() {
        {
            let _t = probe_phase!(Pack);
            let _s = probe_span!(Layer, 3);
            std::hint::black_box(0);
        }
        let report = TraceReport::capture();
        if ENABLED {
            let me = report
                .threads
                .iter()
                .find(|t| t.phase_calls[Phase::Pack as usize] > 0)
                .expect("current thread recorded");
            assert!(me.phase_calls[Phase::Layer as usize] >= 1);
            assert!(me.events.iter().any(|e| e.phase == Phase::Layer && e.arg == 3));
            let json = report.to_json();
            assert!(json.get("counters").is_some());
            let text = report.render_timeline(80);
            assert!(text.contains("layer"));
        } else {
            assert!(report.threads.is_empty());
        }
    }

    #[test]
    fn since_yields_deltas_not_totals() {
        let b0 = TraceReport::capture();
        add(Counter::BytesPacked, 40);
        {
            let _s = probe_span!(Layer, 9);
            std::hint::black_box(0);
        }
        let b1 = TraceReport::capture();
        let delta = b1.since(&b0);
        if ENABLED {
            assert_eq!(delta.counter(Counter::BytesPacked), 40);
            // Only events recorded after the baseline survive, and every
            // surviving event started inside the delta window.
            assert!(delta
                .threads
                .iter()
                .flat_map(|t| t.events.iter())
                .all(|e| e.start_ns >= b0.captured_ns));
            assert!(delta
                .threads
                .iter()
                .any(|t| t.events.iter().any(|e| e.phase == Phase::Layer && e.arg == 9)));
            // Deltaing a snapshot against itself is empty.
            let none = b1.since(&b1);
            assert_eq!(none.counter(Counter::BytesPacked), 0);
            assert!(none.threads.iter().all(|t| t.events.is_empty()));
        } else {
            assert_eq!(delta.counter(Counter::BytesPacked), 0);
            assert!(delta.threads.is_empty());
        }
    }

    #[test]
    fn chrome_trace_is_wellformed_even_when_empty() {
        let empty = TraceReport::default();
        let json = empty.to_chrome_trace();
        let parsed = Json::parse(&json.pretty()).expect("valid JSON");
        assert_eq!(
            parsed.get("traceEvents").and_then(Json::as_arr).map(<[Json]>::len),
            Some(0)
        );

        // A single-event trace produces one metadata + one complete event.
        let one = TraceReport {
            counters: [0; NUM_COUNTERS],
            threads: vec![ThreadTrace {
                name: "solo".into(),
                phase_ns: [0; NUM_PHASES],
                phase_calls: [0; NUM_PHASES],
                events: vec![Event {
                    phase: Phase::Worker,
                    arg: 2,
                    start_ns: 1500,
                    dur_ns: 3000,
                }],
                dropped: 0,
            }],
            captured_ns: 9000,
        };
        let parsed = Json::parse(&one.to_chrome_trace().pretty()).expect("valid JSON");
        let events = parsed.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].str_field("ph").unwrap(), "M");
        let x = &events[1];
        assert_eq!(x.str_field("ph").unwrap(), "X");
        assert_eq!(x.str_field("name").unwrap(), "worker");
        assert_eq!(x.get("pid").and_then(Json::as_usize), Some(0));
        assert_eq!(x.get("tid").and_then(Json::as_usize), Some(0));
        assert_eq!(x.get("ts").and_then(Json::as_f64), Some(1.5));
        assert_eq!(x.get("dur").and_then(Json::as_f64), Some(3.0));
        // Rendering the same single-event trace as text also works.
        assert!(one.render_timeline(40).contains("worker"));
    }

    #[test]
    fn overflow_drops_instead_of_growing() {
        if !ENABLED {
            return;
        }
        for i in 0..(EVENTS_PER_THREAD + 10) {
            let _s = probe_span!(Worker, i);
        }
        let report = TraceReport::capture();
        let me = report
            .threads
            .iter()
            .find(|t| t.dropped > 0 || t.events.len() == EVENTS_PER_THREAD);
        assert!(me.is_some(), "buffer must cap at EVENTS_PER_THREAD");
    }
}

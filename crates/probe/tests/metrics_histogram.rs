//! Histogram correctness (ISSUE 9 satellite): quantile estimates vs an
//! exact-sort oracle over adversarial distributions, merge associativity,
//! concurrent-recording totals, and snapshot-delta monotonicity.
//!
//! The metrics plane is always on (not feature-gated), so this suite runs
//! identically with and without `--features probe`.

use ndirect_probe::metrics::{HistogramSnapshot, LogHistogram, MAX_RELATIVE_ERROR, SUBBUCKETS};

/// Deterministic splitmix64 so the adversarial distributions are
/// reproducible across runs and targets.
struct SplitMix(u64);

impl SplitMix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[lo, hi)`.
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo)
    }
}

/// Exact nearest-rank order statistic (the oracle the histogram's bucket
/// walk must agree with, up to the documented bucket-width error).
fn oracle_quantile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    let rank = ((q / 100.0 * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Asserts the histogram's estimate brackets the oracle for every probed
/// quantile: never below the true order statistic, and at most
/// `MAX_RELATIVE_ERROR` above it (exact below the linear-region bound).
fn assert_within_bound(label: &str, values: &[u64]) {
    let h = LogHistogram::new();
    for &v in values {
        h.record(v);
    }
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    for q in [0.0, 1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9, 100.0] {
        let exact = oracle_quantile(&sorted, q);
        let est = h.quantile(q);
        assert!(
            est >= exact,
            "{label} q{q}: estimate {est} undershoots oracle {exact}"
        );
        let bound = if exact < SUBBUCKETS as u64 {
            exact // linear region: exact
        } else {
            exact + (MAX_RELATIVE_ERROR * exact as f64).ceil() as u64
        };
        assert!(
            est <= bound,
            "{label} q{q}: estimate {est} above error bound {bound} (oracle {exact})"
        );
        // The snapshot path answers identically to the live walk.
        assert_eq!(h.snapshot().quantile(q), est, "{label} q{q}: snapshot disagrees");
    }
    assert_eq!(h.count(), values.len() as u64);
    assert_eq!(h.sum(), values.iter().sum::<u64>());
}

#[test]
fn quantiles_match_oracle_on_bimodal_distribution() {
    // Two tight modes four orders of magnitude apart — the shape that
    // breaks mean-based summaries and stresses the octave walk.
    let mut rng = SplitMix(0x1157_0001);
    let mut values = Vec::new();
    for _ in 0..6000 {
        values.push(rng.range(800, 1200)); // ~1 µs mode
    }
    for _ in 0..4000 {
        values.push(rng.range(9_000_000, 11_000_000)); // ~10 ms mode
    }
    assert_within_bound("bimodal", &values);
}

#[test]
fn quantiles_match_oracle_on_heavy_tail() {
    // Pareto-ish tail: u64 magnitudes spanning ns to minutes, where the
    // p999 lives far from the mass.
    let mut rng = SplitMix(0x1157_0002);
    let values: Vec<u64> = (0..20_000)
        .map(|_| {
            let shift = rng.range(0, 36); // up to ~64 s in ns
            rng.range(1, 1000) << shift
        })
        .collect();
    assert_within_bound("heavy-tail", &values);
}

#[test]
fn quantiles_match_oracle_on_single_bucket() {
    // Every sample identical: all quantiles collapse to the one bucket's
    // upper bound, which must still respect the error bound.
    assert_within_bound("single-bucket-small", &vec![7; 5000]);
    assert_within_bound("single-bucket-large", &vec![123_456_789; 5000]);
}

#[test]
fn quantiles_match_oracle_on_uniform_sweep() {
    let mut rng = SplitMix(0x1157_0003);
    let values: Vec<u64> = (0..30_000).map(|_| rng.range(0, 50_000_000)).collect();
    assert_within_bound("uniform", &values);
}

#[test]
fn merge_is_associative_and_commutative() {
    let mut rng = SplitMix(0x1157_0004);
    let mk = |rng: &mut SplitMix, n: usize, lo: u64, hi: u64| {
        let h = LogHistogram::new();
        for _ in 0..n {
            h.record(rng.range(lo, hi));
        }
        h.snapshot()
    };
    let a = mk(&mut rng, 500, 0, 1000);
    let b = mk(&mut rng, 700, 100_000, 5_000_000);
    let c = mk(&mut rng, 300, 1, u64::MAX / 2);
    assert_eq!(a.merge(&b).merge(&c), a.merge(&b.merge(&c)), "associative");
    assert_eq!(a.merge(&b), b.merge(&a), "commutative");
    assert_eq!(a.merge(&HistogramSnapshot::default()), a, "identity");
    let merged = a.merge(&b).merge(&c);
    assert_eq!(merged.count, a.count + b.count + c.count);
    assert_eq!(merged.sum, a.sum + b.sum + c.sum);
}

#[test]
fn merged_shards_agree_with_one_big_histogram() {
    // Per-thread histograms folded together must answer exactly like a
    // single histogram that saw every sample (buckets are buckets).
    let mut rng = SplitMix(0x1157_0005);
    let combined = LogHistogram::new();
    let mut folded = HistogramSnapshot::default();
    for _ in 0..8 {
        let shard = LogHistogram::new();
        for _ in 0..2000 {
            let v = rng.range(10, 100_000_000);
            shard.record(v);
            combined.record(v);
        }
        folded = folded.merge(&shard.snapshot());
    }
    assert_eq!(folded, combined.snapshot());
}

#[test]
fn concurrent_recording_loses_nothing() {
    use std::sync::Arc;
    let h = Arc::new(LogHistogram::new());
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 50_000;
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let h = Arc::clone(&h);
            std::thread::spawn(move || {
                let mut rng = SplitMix(0xC0DE + t);
                let mut local_sum = 0u64;
                for _ in 0..PER_THREAD {
                    let v = rng.range(0, 10_000_000);
                    h.record(v);
                    local_sum += v;
                }
                local_sum
            })
        })
        .collect();
    let expected_sum: u64 = handles.into_iter().map(|j| j.join().expect("no panic")).sum();
    assert_eq!(h.count(), THREADS * PER_THREAD, "every record lands");
    assert_eq!(h.sum(), expected_sum, "sum is exact at quiescence");
    let snap = h.snapshot();
    assert_eq!(snap.count, THREADS * PER_THREAD);
    assert_eq!(snap.buckets.iter().map(|&(_, n)| n).sum::<u64>(), snap.count);
}

#[test]
fn snapshot_deltas_are_monotone_and_compose() {
    let mut rng = SplitMix(0x1157_0006);
    let h = LogHistogram::new();
    let mut prev = h.snapshot();
    let mut reconstructed = HistogramSnapshot::default();
    for round in 0..10 {
        for _ in 0..500 {
            h.record(rng.range(0, 1_000_000) << (round % 4));
        }
        let now = h.snapshot();
        let delta = now.since(&prev);
        // Monotone: a later snapshot never shrinks any bucket, so the
        // delta's total is exactly the new samples and nothing saturated.
        assert_eq!(delta.count, 500, "round {round}: delta counts new samples only");
        assert!(delta.buckets.iter().all(|&(_, n)| n > 0));
        // Deltas compose back to the running total.
        reconstructed = reconstructed.merge(&delta);
        assert_eq!(reconstructed, now, "round {round}: deltas re-compose");
        // A self-delta is empty.
        let none = now.since(&now);
        assert_eq!(none.count, 0);
        assert!(none.buckets.is_empty());
        prev = now;
    }
}

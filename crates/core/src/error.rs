//! The typed error taxonomy for the fallible conv API layer.
//!
//! Every `try_`-prefixed entry point returns [`Error`]; the panicking
//! entry points are thin wrappers that `panic!("{error}")`, so the panic
//! messages users saw before the fallible layer existed are exactly the
//! [`std::fmt::Display`] strings here.
//!
//! Validation happens **once, at the API boundary**: the drivers check
//! shapes, layouts, dims and schedule/pool compatibility up front and the
//! inner loops run assertion-free on trusted values.

use ndirect_tensor::ShapeError;
use ndirect_threads::PoolError;

/// Why a convolution entry point could not run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The [`ndirect_tensor::ConvShape`] is internally inconsistent
    /// (zero dims, kernel larger than the padded input, element-count
    /// overflow, …).
    Shape(ShapeError),
    /// The thread pool could not execute the parallel region (nested
    /// region, failed worker respawn, …).
    Pool(PoolError),
    /// A tensor arrived in a layout this entry point does not accept.
    Layout {
        /// Which contract was violated, e.g. `"nDirect NCHW entry takes NCHW"`.
        context: &'static str,
        /// The layout the entry point requires.
        expected: &'static str,
        /// The layout it received.
        got: &'static str,
    },
    /// A tensor's dimensions disagree with the [`ndirect_tensor::ConvShape`].
    DimMismatch {
        /// Which operand: `"input dims"`, `"filter dims"`, `"output dims"`.
        what: &'static str,
        /// Dimensions implied by the shape.
        expected: (usize, usize, usize, usize),
        /// Dimensions of the tensor actually passed.
        got: (usize, usize, usize, usize),
    },
    /// A depthwise entry point got a shape with a cross-channel reduction.
    NotDepthwise {
        /// Output channels of the offending shape.
        k: usize,
        /// Input channels of the offending shape.
        c: usize,
    },
    /// The schedule's thread grid wants more threads than the pool has.
    GridExceedsPool {
        /// `schedule.grid.threads()`.
        needed: usize,
        /// `pool.size()`.
        available: usize,
    },
    /// Allocating per-thread scratch (packing buffer, filter-transform
    /// block) failed even after degrading to the minimal-tile fallback.
    ScratchAlloc {
        /// Number of `f32` elements in the request that failed.
        elements: usize,
    },
    /// The requested execution path is not available on this build/CPU
    /// (e.g. a forced SIMD backend the host cannot run).
    Unsupported {
        /// Human-readable description of what was requested.
        what: &'static str,
    },
    /// The binary's kernels were compiled for an ISA extension the host
    /// CPU does not report (see [`ndirect_simd::verify_host`]).
    Isa(ndirect_simd::UnsupportedIsa),
    /// A model/graph-level inconsistency (layer chaining, engine inputs).
    Config {
        /// Human-readable description of the inconsistency.
        msg: String,
    },
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Shape(e) => write!(f, "{e}"),
            Error::Pool(e) => write!(f, "{e}"),
            Error::Layout {
                context,
                expected,
                got,
            } => write!(f, "{context}: expected {expected}, got {got}"),
            Error::DimMismatch {
                what,
                expected,
                got,
            } => write!(f, "{what} mismatch: shape implies {expected:?}, tensor is {got:?}"),
            Error::NotDepthwise { k, c } => write!(
                f,
                "depthwise convolution needs K == C (channel multiplier 1), got K={k}, C={c}"
            ),
            Error::GridExceedsPool { needed, available } => {
                write!(f, "schedule needs {needed} threads, pool has {available}")
            }
            Error::ScratchAlloc { elements } => {
                write!(f, "failed to allocate {elements}-element f32 scratch buffer")
            }
            Error::Unsupported { what } => write!(f, "unsupported on this build/CPU: {what}"),
            Error::Isa(e) => write!(f, "{e}"),
            Error::Config { msg } => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Shape(e) => Some(e),
            Error::Pool(e) => Some(e),
            Error::Isa(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ShapeError> for Error {
    fn from(e: ShapeError) -> Self {
        Error::Shape(e)
    }
}

impl From<PoolError> for Error {
    fn from(e: PoolError) -> Self {
        Error::Pool(e)
    }
}

impl From<ndirect_simd::UnsupportedIsa> for Error {
    fn from(e: ndirect_simd::UnsupportedIsa) -> Self {
        Error::Isa(e)
    }
}

/// Boundary-validation helpers shared by the drivers.
pub(crate) mod check {
    use super::Error;
    use ndirect_tensor::{ActLayout, ConvShape, Filter, FilterLayout, Tensor4};

    /// Confirms the host CPU supports the compiled SIMD backend. Called
    /// once per fallible entry so an ISA mismatch surfaces as a typed
    /// error instead of an illegal-instruction fault mid-kernel.
    pub(crate) fn isa() -> Result<(), Error> {
        ndirect_simd::verify_host()?;
        Ok(())
    }

    pub(crate) fn act_layout_name(l: ActLayout) -> &'static str {
        match l {
            ActLayout::Nchw => "NCHW",
            ActLayout::Nhwc => "NHWC",
        }
    }

    pub(crate) fn filter_layout_name(l: FilterLayout) -> &'static str {
        match l {
            FilterLayout::Kcrs => "KCRS",
            FilterLayout::Krsc => "KRSC",
        }
    }

    pub(crate) fn act_layout(
        t: &Tensor4,
        want: ActLayout,
        context: &'static str,
    ) -> Result<(), Error> {
        if t.layout() != want {
            return Err(Error::Layout {
                context,
                expected: act_layout_name(want),
                got: act_layout_name(t.layout()),
            });
        }
        Ok(())
    }

    pub(crate) fn filter_layout(
        t: &Filter,
        want: FilterLayout,
        context: &'static str,
    ) -> Result<(), Error> {
        if t.layout() != want {
            return Err(Error::Layout {
                context,
                expected: filter_layout_name(want),
                got: filter_layout_name(t.layout()),
            });
        }
        Ok(())
    }

    pub(crate) fn dims(
        what: &'static str,
        expected: (usize, usize, usize, usize),
        got: (usize, usize, usize, usize),
    ) -> Result<(), Error> {
        if expected != got {
            return Err(Error::DimMismatch {
                what,
                expected,
                got,
            });
        }
        Ok(())
    }

    /// The standard (input, filter) boundary check shared by the NCHW/KCRS
    /// entry points.
    pub(crate) fn standard_nchw(
        input: &Tensor4,
        filter: &Filter,
        shape: &ConvShape,
        context: &'static str,
    ) -> Result<(), Error> {
        isa()?;
        shape.validate()?;
        act_layout(input, ActLayout::Nchw, context)?;
        filter_layout(filter, FilterLayout::Kcrs, context)?;
        dims(
            "input dims",
            (shape.n, shape.c, shape.h, shape.w),
            input.dims(),
        )?;
        dims(
            "filter dims",
            (shape.k, shape.c, shape.r, shape.s),
            filter.dims(),
        )?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_preserves_legacy_panic_substrings() {
        // The panicking wrappers panic with these Display strings; tests
        // that used `should_panic(expected = …)` against the old asserts
        // must keep passing.
        let grid = Error::GridExceedsPool {
            needed: 8,
            available: 2,
        };
        assert!(grid.to_string().contains("schedule needs"));
        let dw = Error::NotDepthwise { k: 8, c: 4 };
        assert!(dw.to_string().contains("K == C"));
        let dims = Error::DimMismatch {
            what: "input dims",
            expected: (1, 2, 3, 4),
            got: (1, 2, 3, 5),
        };
        assert!(dims.to_string().contains("input dims"));
    }

    #[test]
    fn wraps_layer_errors_with_source() {
        use std::error::Error as _;
        let e = Error::from(ndirect_tensor::ShapeError::ZeroStride);
        assert!(e.source().is_some());
        let e = Error::from(ndirect_threads::PoolError::NestedRun);
        assert!(e.to_string().contains("not reentrant"));
    }
}

//! The plan/executor layer: amortize setup across repeated executions.
//!
//! Every `conv_ndirect*` entry point pays three per-call costs that are
//! invariant for a fixed `(shape, schedule, filter)` triple: schedule
//! sanitization + validation, the filter layout transform (when
//! [`FilterState::PreTransformed`]), and the per-thread scratch
//! allocation (packing strip + filter-transform block). Inference
//! frameworks call the *same* layer thousands of times, so — like cuDNN's
//! `ConvolutionDescriptor`/plan split — this module hoists all of it into
//! a build-once [`ConvPlan`]:
//!
//! * **build** ([`ConvPlan::try_new`] and friends) validates, sanitizes,
//!   packs the filter once, and pre-allocates one scratch *set* (one
//!   buffer pair per grid thread), degrading to the minimal-tile schedule
//!   exactly like the one-shot drivers when the requested tiles cannot be
//!   allocated;
//! * **execute** ([`ConvPlan::execute`]) is the hot path: O(1) layout and
//!   dimension checks (kept in release builds because the kernels write
//!   through [`SharedSlice`]'s unchecked accessors), a lock-free-in-spirit
//!   scratch lease (a `Mutex`-guarded pop from a pre-sized pool), and the
//!   same loop nest the one-shot drivers run — no heap allocation, no
//!   re-validation, bitwise-identical results.
//!
//! Plans are `Send + Sync`: one plan can be shared across threads, each
//! executing on its own input/output pair. Concurrent executes beyond the
//! number of reserved scratch sets fall back to allocating a set on the
//! spot (correct, just not allocation-free); call
//! [`ConvPlan::reserve_scratch`] to size the pool for the expected
//! concurrency.
//!
//! The one-shot entry points ([`crate::try_conv_ndirect_into`],
//! [`crate::nhwc::try_conv_ndirect_nhwc_with`],
//! [`crate::try_conv_depthwise`]) are now thin wrappers that build a
//! throwaway borrowing plan and execute it once, so there is a single
//! implementation of each loop nest.

use std::sync::Mutex;

use ndirect_platform::Platform;
use ndirect_tensor::{ActLayout, AlignedBuf, ConvShape, Filter, FilterLayout, Tensor4};
use ndirect_threads::{split_static, SharedSlice, StaticPool};

use crate::conv::{compute_strip, try_alloc_scratch, Scratch, StripCtx, StripSource};
use crate::error::{check, Error};
use crate::filter::{transform_filter_block, TransformedFilter};
use crate::nhwc::{
    pack_strip_nhwc, run_nhwc_tile, transform_filter_nhwc_block, TransformedFilterNhwc,
};
use crate::pack::{pack_slice_slab, StripGeom};
use crate::schedule::{FilterState, PackingMode, Schedule};

/// How many idle scratch sets a plan keeps for reuse. Leases beyond this
/// (that many *concurrent* executes of one plan) allocate on the spot and
/// the surplus set is dropped on release.
const CACHED_SETS_MAX: usize = 8;

/// A filter the plan either borrows (the one-shot wrappers, zero-copy) or
/// owns (plans that outlive the caller's borrow). Shared with the fused
/// dw+pw plan in [`crate::dwpw`].
pub(crate) enum FilterRef<'f> {
    Borrowed(&'f Filter),
    Owned(Filter),
}

impl FilterRef<'_> {
    pub(crate) fn get(&self) -> &Filter {
        match self {
            FilterRef::Borrowed(f) => f,
            FilterRef::Owned(f) => f,
        }
    }
}

/// The plan's filter state: raw (transformed on the fly per cache block,
/// the paper's default) or packed once at build time.
enum PlanFilter<'f> {
    Raw(FilterRef<'f>),
    Packed(TransformedFilter),
    PackedNhwc(TransformedFilterNhwc),
}

/// Which driver the plan executes.
#[derive(Clone, Copy, PartialEq, Eq)]
enum PlanLayout {
    Nchw,
    Nhwc,
}

/// A small pool of pre-allocated per-thread scratch sets. `take`/`put`
/// never allocate: the backing `Vec` is created with
/// [`CACHED_SETS_MAX`] capacity and `put` drops surplus sets instead of
/// growing it.
pub(crate) struct Arena<S> {
    sets: Mutex<Vec<S>>,
}

impl<S> Arena<S> {
    pub(crate) fn new(first: S) -> Self {
        let mut v = Vec::with_capacity(CACHED_SETS_MAX);
        v.push(first);
        Arena {
            sets: Mutex::new(v),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<S>> {
        self.sets
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    pub(crate) fn take(&self) -> Option<S> {
        self.lock().pop()
    }

    pub(crate) fn put(&self, s: S) {
        let mut g = self.lock();
        if g.len() < CACHED_SETS_MAX {
            // AUDIT: allow(hotpath-no-alloc) bounded arena return — at most
            // CACHED_SETS_MAX cached sets; amortizes to zero steady-state.
            g.push(s);
        }
    }

    fn idle(&self) -> usize {
        self.lock().len()
    }
}

type NdirectSet = Vec<Mutex<Scratch>>;

/// A pre-built nDirect convolution: sanitized [`Schedule`], transformed
/// filter, and reusable per-thread scratch, ready to [`execute`] against
/// any number of input/output pairs of the planned [`ConvShape`].
///
/// See the [module docs](crate::plan) for the build/execute contract.
///
/// [`execute`]: ConvPlan::execute
pub struct ConvPlan<'f> {
    shape: ConvShape,
    sched: Schedule,
    degraded: bool,
    layout: PlanLayout,
    filter: PlanFilter<'f>,
    arena: Arena<NdirectSet>,
}

impl<'f> ConvPlan<'f> {
    /// Builds an `NCHW`/`KCRS` plan with the model-derived schedule for
    /// `platform` and `threads` threads, forcing
    /// [`FilterState::PreTransformed`] so the filter is packed exactly
    /// once (the point of planning). The filter is copied into the plan,
    /// so the plan is `'static` and can outlive the caller's borrow.
    pub fn try_new(
        platform: &Platform,
        shape: &ConvShape,
        filter: &Filter,
        threads: usize,
    ) -> Result<ConvPlan<'static>, Error> {
        validate_filter_nchw(shape, filter)?;
        let sched = Schedule::derive(platform, shape, threads)
            .with_filter_state(FilterState::PreTransformed);
        ConvPlan::build(shape, &sched, PlanLayout::Nchw, |s| {
            packed_nchw(filter, s)
        })
    }

    /// Builds an `NCHW`/`KCRS` plan with an explicit schedule. The
    /// schedule's [`FilterState`] is honored: `PreTransformed` packs the
    /// filter at build time, `OnTheFly` copies the raw filter and
    /// transforms per cache block during execution (the ablation pairing).
    pub fn try_with_schedule(
        shape: &ConvShape,
        filter: &Filter,
        schedule: &Schedule,
    ) -> Result<ConvPlan<'static>, Error> {
        validate_filter_nchw(shape, filter)?;
        ConvPlan::build(shape, schedule, PlanLayout::Nchw, |s| match s.filter_state {
            FilterState::PreTransformed => packed_nchw(filter, s),
            FilterState::OnTheFly => Ok(PlanFilter::Raw(FilterRef::Owned(filter.clone()))),
        })
    }

    /// Builds a native-`NHWC`/`KRSC` plan with the model-derived schedule,
    /// forcing [`FilterState::PreTransformed`].
    pub fn try_new_nhwc(
        platform: &Platform,
        shape: &ConvShape,
        filter: &Filter,
        threads: usize,
    ) -> Result<ConvPlan<'static>, Error> {
        validate_filter_nhwc(shape, filter)?;
        let sched = Schedule::derive(platform, shape, threads)
            .with_filter_state(FilterState::PreTransformed);
        ConvPlan::build(shape, &sched, PlanLayout::Nhwc, |s| {
            packed_nhwc(filter, s)
        })
    }

    /// Builds a native-`NHWC`/`KRSC` plan with an explicit schedule.
    pub fn try_with_schedule_nhwc(
        shape: &ConvShape,
        filter: &Filter,
        schedule: &Schedule,
    ) -> Result<ConvPlan<'static>, Error> {
        validate_filter_nhwc(shape, filter)?;
        ConvPlan::build(shape, schedule, PlanLayout::Nhwc, |s| match s.filter_state {
            FilterState::PreTransformed => packed_nhwc(filter, s),
            FilterState::OnTheFly => Ok(PlanFilter::Raw(FilterRef::Owned(filter.clone()))),
        })
    }

    /// The throwaway plan behind [`crate::try_conv_ndirect_into`]: borrows
    /// the filter (zero-copy for on-the-fly schedules, exactly the
    /// one-shot driver's cost model) and skips validation — the wrapper
    /// already ran the boundary checks in the legacy order.
    pub(crate) fn try_borrowed(
        shape: &ConvShape,
        filter: &'f Filter,
        schedule: &Schedule,
    ) -> Result<ConvPlan<'f>, Error> {
        ConvPlan::build(shape, schedule, PlanLayout::Nchw, |s| match s.filter_state {
            FilterState::PreTransformed => packed_nchw(filter, s),
            FilterState::OnTheFly => Ok(PlanFilter::Raw(FilterRef::Borrowed(filter))),
        })
    }

    /// The throwaway plan behind
    /// [`crate::nhwc::try_conv_ndirect_nhwc_with`]. Skips validation (the
    /// wrapper ran it; note the NHWC entry's legacy checks do not include
    /// an ISA probe, and this preserves that).
    pub(crate) fn try_borrowed_nhwc(
        shape: &ConvShape,
        filter: &'f Filter,
        schedule: &Schedule,
    ) -> Result<ConvPlan<'f>, Error> {
        ConvPlan::build(shape, schedule, PlanLayout::Nhwc, |s| match s.filter_state {
            FilterState::PreTransformed => packed_nhwc(filter, s),
            FilterState::OnTheFly => Ok(PlanFilter::Raw(FilterRef::Borrowed(filter))),
        })
    }

    /// Shared build path: sanitize, allocate the first scratch set with
    /// the same graceful degradation as the one-shot drivers (fall back to
    /// the minimal-tile schedule on the same grid; [`Error::ScratchAlloc`]
    /// only if even that fails), then pack the filter for the *final*
    /// schedule.
    fn build(
        shape: &ConvShape,
        schedule: &Schedule,
        layout: PlanLayout,
        make_filter: impl FnOnce(&Schedule) -> Result<PlanFilter<'f>, Error>,
    ) -> Result<ConvPlan<'f>, Error> {
        let _build = ndirect_probe::probe_span!(PlanBuild, 0);
        let mut sched = schedule.sanitized(shape);
        // The NHWC driver packs pixel-interleaved strips (`[r][win][Tc]`),
        // so no contiguous per-channel row exists to read zero-copy; the
        // zero-copy packing variants coerce to Fused there, keeping
        // `schedule()` honest about what actually runs (and the
        // predicted == measured pack accounting exact).
        if matches!(layout, PlanLayout::Nhwc)
            && matches!(sched.packing, PackingMode::None | PackingMode::Sliced { .. })
        {
            sched.packing = PackingMode::Fused;
        }
        let mut degraded = false;
        let first = match try_alloc_scratch(&sched, shape, sched.grid.threads()) {
            Ok(s) => s,
            Err(_) => {
                let mut fallback = Schedule::minimal(shape)
                    .with_grid(sched.grid)
                    .with_packing(sched.packing)
                    .with_filter_state(sched.filter_state)
                    .sanitized(shape);
                fallback.vw = fallback.vw.min(sched.vw);
                fallback.prefetch = sched.prefetch;
                match try_alloc_scratch(&fallback, shape, fallback.grid.threads()) {
                    Ok(s) => {
                        ndirect_probe::probe_count!(MinimalScheduleDegradations, 1);
                        sched = fallback;
                        degraded = true;
                        s
                    }
                    Err(elements) => return Err(Error::ScratchAlloc { elements }),
                }
            }
        };
        // Pack for the schedule that will actually run (vk/tc may have
        // changed under degradation).
        let filter = {
            let _ft = ndirect_probe::probe_phase!(FilterTransform);
            make_filter(&sched)?
        };
        Ok(ConvPlan {
            shape: *shape,
            sched,
            degraded,
            layout,
            filter,
            arena: Arena::new(first),
        })
    }

    /// The schedule the plan executes (sanitized; the minimal-tile
    /// fallback if the build [`degraded`](ConvPlan::degraded)).
    pub fn schedule(&self) -> &Schedule {
        &self.sched
    }

    /// The convolution shape the plan was built for.
    pub fn shape(&self) -> &ConvShape {
        &self.shape
    }

    /// Whether scratch allocation fell back to the minimal-tile schedule
    /// at build time.
    pub fn degraded(&self) -> bool {
        self.degraded
    }

    /// Ensures at least `n` idle scratch sets are pooled (capped at the
    /// plan's internal maximum), so that up to `n` *concurrent*
    /// [`execute`](ConvPlan::execute) calls run allocation-free.
    pub fn reserve_scratch(&self, n: usize) -> Result<(), Error> {
        while self.arena.idle() < n.min(CACHED_SETS_MAX) {
            let set = try_alloc_scratch(&self.sched, &self.shape, self.sched.grid.threads())
                .map_err(|elements| Error::ScratchAlloc { elements })?;
            self.arena.put(set);
        }
        Ok(())
    }

    /// Runs the planned convolution, accumulating into `out` (pass a
    /// zeroed output, or one pre-seeded with a bias/shortcut to fuse the
    /// addition).
    ///
    /// The hot path: O(1) layout/dimension/grid checks — kept in release
    /// builds because the kernels write through unchecked accessors — a
    /// scratch-set lease from the plan's pool, and the driver loop nest.
    /// No heap allocation, no filter work beyond the schedule's own
    /// on-the-fly blocks, results bitwise identical to the one-shot entry
    /// points.
    // AUDIT: hotpath
    pub fn execute(
        &self,
        pool: &StaticPool,
        input: &Tensor4,
        out: &mut Tensor4,
    ) -> Result<(), Error> {
        let shape = &self.shape;
        let (p, q) = (shape.p(), shape.q());
        let (in_layout, out_layout, in_ctx, out_ctx) = match self.layout {
            PlanLayout::Nchw => (
                ActLayout::Nchw,
                ActLayout::Nchw,
                "plan executes NCHW input",
                "plan writes NCHW",
            ),
            PlanLayout::Nhwc => (
                ActLayout::Nhwc,
                ActLayout::Nhwc,
                "plan executes NHWC input",
                "plan writes NHWC",
            ),
        };
        check::act_layout(input, in_layout, in_ctx)?;
        check::dims(
            "input dims",
            (shape.n, shape.c, shape.h, shape.w),
            input.dims(),
        )?;
        check::dims("output dims", (shape.n, shape.k, p, q), out.dims())?;
        check::act_layout(out, out_layout, out_ctx)?;
        if self.sched.grid.threads() > pool.size() {
            return Err(Error::GridExceedsPool {
                needed: self.sched.grid.threads(),
                available: pool.size(),
            });
        }

        let set = match self.arena.take() {
            Some(s) => {
                ndirect_probe::probe_count!(ScratchPoolHits, 1);
                s
            }
            // Cold path: more concurrent executes than reserved sets.
            None => {
                ndirect_probe::probe_count!(ScratchPoolMisses, 1);
                try_alloc_scratch(&self.sched, shape, self.sched.grid.threads())
                    .map_err(|elements| Error::ScratchAlloc { elements })?
            }
        };
        let result = match self.layout {
            PlanLayout::Nchw => self.run_nchw(pool, input, out, &set),
            PlanLayout::Nhwc => self.run_nhwc(pool, input, out, &set),
        };
        self.arena.put(set);
        result.map_err(Error::from)
    }

    /// Algorithm 2's loop nest (see [`crate::conv`] for the loop-by-loop
    /// commentary) against pre-leased scratch.
    fn run_nchw(
        &self,
        pool: &StaticPool,
        input: &Tensor4,
        out: &mut Tensor4,
        scratch: &NdirectSet,
    ) -> Result<(), ndirect_threads::PoolError> {
        let shape = &self.shape;
        let sched = &self.sched;
        let (pre_tf, raw_filter) = match &self.filter {
            PlanFilter::Packed(tf) => (Some(tf), None),
            PlanFilter::Raw(f) => (None, Some(f.get())),
            // The constructors pair PlanLayout::Nchw only with the two
            // arms above.
            // AUDIT: allow(hotpath-no-panic) constructor invariant.
            PlanFilter::PackedNhwc(_) => unreachable!("NHWC filter in an NCHW plan"),
        };
        let (p, q) = (shape.p(), shape.q());
        let grid = sched.grid;
        let kv_total = shape.k.div_ceil(sched.vk);
        let out_shared = SharedSlice::new(out.as_mut_slice());
        let in_data = input.as_slice();
        let image_len = shape.c * shape.h * shape.w;

        pool.try_run(|tid| {
            if tid >= grid.threads() {
                return;
            }
            let (tn, tk) = grid.coords(tid);

            // This thread's K range, at Vk granularity.
            let kvr = split_static(kv_total, grid.ptk(), tk);
            let k_lo = kvr.start * sched.vk;
            let k_hi = (kvr.end * sched.vk).min(shape.k);
            if k_lo >= k_hi {
                return;
            }
            // This thread's slice of the flat N·P output-row space.
            let rows = split_static(shape.n * p, grid.ptn(), tn);
            if rows.is_empty() {
                return;
            }

            // Disjointness for the SharedSlice writes below: K ranges are
            // disjoint across `tk` and (n, oh) row ranges across `tn`, so
            // each output element has exactly one writer; the pool barrier
            // orders all writes before `run` returns.
            let out_all = &out_shared;

            // Per-thread scratch, leased by `execute`; the lock is
            // uncontended (one thread per slot, taken once per region).
            // INDEX: tid < threads == scratch.len() — the pool contract.
            let mut guard = scratch[tid]
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            let Scratch {
                ref mut bbuf,
                ref mut tfbuf,
            } = *guard;

            let n_first = rows.start / p;
            let n_last = (rows.end - 1) / p;
            for n in n_first..=n_last {
                let oh_lo = rows.start.saturating_sub(n * p).min(p);
                let oh_hi = (rows.end - n * p).min(p);
                let image = &in_data[n * image_len..(n + 1) * image_len];
                let mut ht = oh_lo;
                while ht < oh_hi {
                    let ht_end = (ht + sched.th).min(oh_hi);
                    let mut ct = 0;
                    while ct < shape.c {
                        let tcb = sched.tc.min(shape.c - ct);
                        // `Sliced` packs one cache-resident slab per
                        // `rows`-row slice of this `(ht, ct)` tile, hoisted
                        // above the kt/oh/wv loops so every `Tk` tile and
                        // strip of the slice reuses it; the other modes
                        // take a single degenerate slice spanning the tile
                        // with no slab work.
                        let slice_step = match sched.packing {
                            PackingMode::Sliced { rows } => rows.max(1),
                            _ => ht_end - ht,
                        };
                        let row_win = (q - 1) * shape.stride + shape.s;
                        let mut slab_rows = 0;
                        let mut sl = ht;
                        while sl < ht_end {
                            let sl_end = (sl + slice_step).min(ht_end);
                            if matches!(sched.packing, PackingMode::Sliced { .. }) {
                                slab_rows = (sl_end - sl - 1) * shape.stride + shape.r;
                                ndirect_probe::probe_count!(
                                    BytesPacked,
                                    tcb * slab_rows * row_win * std::mem::size_of::<f32>()
                                );
                                let _pack = ndirect_probe::probe_phase!(Pack);
                                pack_slice_slab(image, ct, tcb, shape, sl, sl_end - sl, bbuf);
                            }
                            let mut kt = k_lo;
                            while kt < k_hi {
                                let tkb = sched.tk.min(k_hi - kt);
                                let kv_blocks = tkb.div_ceil(sched.vk);
                                // Per-kv block length in the transform
                                // buffer uses the *live* channel count of
                                // this tile.
                                let tf_block_len = tcb * shape.r * shape.s * sched.vk;
                                if let Some(f) = raw_filter {
                                    let _ft = ndirect_probe::probe_phase!(FilterTransform);
                                    ndirect_probe::probe_count!(
                                        BytesTransformed,
                                        kv_blocks * tf_block_len * std::mem::size_of::<f32>()
                                    );
                                    transform_filter_block(f, kt, tkb, ct, tcb, sched.vk, tfbuf);
                                }
                                for oh in sl..sl_end {
                                    let mut wv = 0;
                                    while wv < q {
                                        let valid_w = sched.vw.min(q - wv);
                                        let geom = StripGeom::new(shape, oh, wv, valid_w);
                                        let src = match sched.packing {
                                            PackingMode::Fused | PackingMode::Sequential => {
                                                StripSource::PerStrip(&mut *bbuf)
                                            }
                                            PackingMode::None => StripSource::Direct,
                                            PackingMode::Sliced { .. } => StripSource::Slab {
                                                buf: &bbuf[..],
                                                rows_per_c: slab_rows,
                                                row_stride: row_win,
                                                row_off: (oh - sl) * shape.stride,
                                            },
                                        };
                                        compute_strip(
                                            StripCtx {
                                                image,
                                                shape,
                                                sched,
                                                pre_tf,
                                                tfbuf: &*tfbuf,
                                                tf_block_len,
                                                n,
                                                ct,
                                                tcb,
                                                kt,
                                                kv_blocks,
                                                k_hi,
                                                oh,
                                                wv,
                                                valid_w,
                                                geom,
                                                p,
                                                q,
                                            },
                                            src,
                                            out_all,
                                        );
                                        wv += sched.vw;
                                    }
                                }
                                kt += sched.tk;
                            }
                            sl = sl_end;
                        }
                        ct += sched.tc;
                    }
                    ht = ht_end;
                }
            }
        })
    }

    /// The native-NHWC loop nest (see [`crate::nhwc`]) against pre-leased
    /// scratch.
    fn run_nhwc(
        &self,
        pool: &StaticPool,
        input: &Tensor4,
        out: &mut Tensor4,
        scratch: &NdirectSet,
    ) -> Result<(), ndirect_threads::PoolError> {
        let shape = &self.shape;
        let sched = &self.sched;
        let (pre_tf, raw_filter) = match &self.filter {
            PlanFilter::PackedNhwc(tf) => (Some(tf), None),
            PlanFilter::Raw(f) => (None, Some(f.get())),
            // The constructors pair PlanLayout::Nhwc only with the two
            // arms above.
            // AUDIT: allow(hotpath-no-panic) constructor invariant.
            PlanFilter::Packed(_) => unreachable!("NCHW filter in an NHWC plan"),
        };
        let (p, q) = (shape.p(), shape.q());
        let grid = sched.grid;
        let kv_total = shape.k.div_ceil(sched.vk);
        let in_data = input.as_slice();
        let image_len = shape.h * shape.w * shape.c;
        let kdim = shape.k;

        let out_shared = SharedSlice::new(out.as_mut_slice());
        pool.try_run(|tid| {
            if tid >= grid.threads() {
                return;
            }
            let (tn, tk) = grid.coords(tid);
            let kvr = split_static(kv_total, grid.ptk(), tk);
            let k_lo = kvr.start * sched.vk;
            let k_hi = (kvr.end * sched.vk).min(shape.k);
            if k_lo >= k_hi {
                return;
            }
            let rows = split_static(shape.n * p, grid.ptn(), tn);
            if rows.is_empty() {
                return;
            }
            // Disjointness: (K-range × row-range) output regions are
            // unique per thread; the pool barrier orders writes. NHWC
            // writes are K-segments of pixels within the thread's own
            // rows.
            let out_all = &out_shared;

            // INDEX: tid < threads == scratch.len() — the pool contract.
            let mut guard = scratch[tid]
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            let Scratch {
                bbuf: ref mut buf,
                ref mut tfbuf,
            } = *guard;

            // Loop order mirrors Algorithm 2: cache tiles outermost so
            // each filter-block transform amortizes over every row and
            // strip the thread owns.
            let mut ct = 0;
            while ct < shape.c {
                let tcb = sched.tc.min(shape.c - ct);
                let tf_block_len = shape.r * shape.s * tcb * sched.vk;
                let mut kt = k_lo;
                while kt < k_hi {
                    let tkb = sched.tk.min(k_hi - kt);
                    let kv_blocks = tkb.div_ceil(sched.vk);
                    if let Some(f) = raw_filter {
                        let _ft = ndirect_probe::probe_phase!(FilterTransform);
                        ndirect_probe::probe_count!(
                            BytesTransformed,
                            kv_blocks * tf_block_len * std::mem::size_of::<f32>()
                        );
                        transform_filter_nhwc_block(f, kt, tkb, ct, tcb, sched.vk, tfbuf);
                    }
                    // AUDIT: allow(hotpath-no-alloc) Range<usize> clone —
                    // Copy-sized iterator state, no heap involved.
                    for row in rows.clone() {
                        let n = row / p;
                        let oh = row % p;
                        let image = &in_data[n * image_len..(n + 1) * image_len];
                        let ih0 = (oh * shape.stride) as isize - shape.pad.h as isize;
                        let mut wv = 0;
                        while wv < q {
                            let valid_w = sched.vw.min(q - wv);
                            let win = (valid_w - 1) * shape.stride + shape.s;
                            let iw0 = (wv * shape.stride) as isize - shape.pad.w as isize;
                            // Same accounting as the NCHW strip driver:
                            // one pack of `tcb·R·WIN` floats per strip,
                            // 2 FLOPs per MAC over the tile's K coverage.
                            if ndirect_probe::ENABLED {
                                ndirect_probe::add(
                                    ndirect_probe::Counter::BytesPacked,
                                    (tcb * shape.r * win * std::mem::size_of::<f32>()) as u64,
                                );
                                ndirect_probe::add(
                                    ndirect_probe::Counter::FlopsIssued,
                                    2 * valid_w as u64
                                        * tkb as u64
                                        * tcb as u64
                                        * shape.r as u64
                                        * shape.s as u64,
                                );
                            }
                            {
                                let _pack = ndirect_probe::probe_phase!(Pack);
                                pack_strip_nhwc(image, shape, ct, tcb, ih0, iw0, win, buf);
                            }
                            let _mk = ndirect_probe::probe_phase!(MicroKernel);
                            for kv in 0..kv_blocks {
                                let k0 = kt + kv * sched.vk;
                                let valid_k = sched.vk.min(k_hi - k0);
                                // Pre-transformed blocks are indexed by the
                                // *global* kv group; K-tail lanes coincide
                                // with the per-thread transform because
                                // thread K ranges split at Vk granularity.
                                let tf: &[f32] = match pre_tf {
                                    Some(full) => full.block(ct, tcb, k0 / sched.vk),
                                    None => &tfbuf[kv * tf_block_len..(kv + 1) * tf_block_len],
                                };
                                run_nhwc_tile(
                                    buf,
                                    tf,
                                    shape,
                                    tcb,
                                    win,
                                    out_all,
                                    ((n * p + oh) * q + wv) * kdim + k0,
                                    kdim,
                                    valid_w,
                                    sched.vk,
                                    valid_k,
                                );
                            }
                            wv += sched.vw;
                        }
                    }
                    kt += sched.tk;
                }
                ct += sched.tc;
            }
        })
    }
}

/// NCHW-plan build-time filter checks (the input is checked at execute).
fn validate_filter_nchw(shape: &ConvShape, filter: &Filter) -> Result<(), Error> {
    check::isa()?;
    shape.validate()?;
    check::filter_layout(filter, FilterLayout::Kcrs, "NCHW plan takes KCRS")?;
    check::dims(
        "filter dims",
        (shape.k, shape.c, shape.r, shape.s),
        filter.dims(),
    )
}

/// NHWC-plan build-time filter checks.
fn validate_filter_nhwc(shape: &ConvShape, filter: &Filter) -> Result<(), Error> {
    check::isa()?;
    shape.validate()?;
    check::filter_layout(filter, FilterLayout::Krsc, "NHWC plan takes KRSC")?;
    check::dims(
        "filter dims",
        (shape.k, shape.c, shape.r, shape.s),
        filter.dims(),
    )
}

fn packed_nchw<'f>(filter: &Filter, sched: &Schedule) -> Result<PlanFilter<'f>, Error> {
    TransformedFilter::try_new(filter, sched.vk)
        .map(PlanFilter::Packed)
        .map_err(|elements| Error::ScratchAlloc { elements })
}

fn packed_nhwc<'f>(filter: &Filter, sched: &Schedule) -> Result<PlanFilter<'f>, Error> {
    TransformedFilterNhwc::try_new(filter, sched.vk, sched.tc)
        .map(PlanFilter::PackedNhwc)
        .map_err(|elements| Error::ScratchAlloc { elements })
}

/// A pre-built depthwise convolution (`K == C`, channel multiplier 1):
/// owns the per-thread gather buffers so repeated
/// [`execute`](DepthwisePlan::execute) calls are allocation-free.
///
/// Unlike [`ConvPlan`] there is no filter transform (depthwise reads taps
/// directly) and no thread grid — work is `(n, channel-group)` items split
/// over a fixed thread count chosen at build; every item writes its own
/// output planes, so results are bitwise identical for any thread count.
pub struct DepthwisePlan<'f> {
    shape: ConvShape,
    filter: FilterRef<'f>,
    threads: usize,
    arena: Arena<Vec<Mutex<AlignedBuf>>>,
}

/// The depthwise register-tile width (pixels per strip); matches the
/// one-shot driver and the fused dw+pw plan's depthwise stage.
pub(crate) const DW_VW: usize = 8;

impl<'f> DepthwisePlan<'f> {
    /// Builds a depthwise plan for `threads` worker threads, copying the
    /// `(C, 1, R, S)` filter so the plan is `'static`.
    pub fn try_new(
        shape: &ConvShape,
        filter: &Filter,
        threads: usize,
    ) -> Result<DepthwisePlan<'static>, Error> {
        shape.validate()?;
        if shape.k != shape.c {
            return Err(Error::NotDepthwise {
                k: shape.k,
                c: shape.c,
            });
        }
        check::dims(
            "filter dims",
            (shape.c, 1, shape.r, shape.s),
            filter.dims(),
        )?;
        check::filter_layout(filter, FilterLayout::Kcrs, "depthwise takes KCRS")?;
        DepthwisePlan::build(shape, FilterRef::Owned(filter.clone()), threads)
    }

    /// The throwaway plan behind [`crate::try_conv_depthwise`]: borrows
    /// the filter, skips validation (the wrapper ran it).
    pub(crate) fn borrowed(
        shape: &ConvShape,
        filter: &'f Filter,
        threads: usize,
    ) -> Result<DepthwisePlan<'f>, Error> {
        DepthwisePlan::build(shape, FilterRef::Borrowed(filter), threads)
    }

    fn build(
        shape: &ConvShape,
        filter: FilterRef<'f>,
        threads: usize,
    ) -> Result<DepthwisePlan<'f>, Error> {
        let threads = threads.max(1);
        let first = Self::alloc_set(shape, threads)?;
        Ok(DepthwisePlan {
            shape: *shape,
            filter,
            threads,
            arena: Arena::new(first),
        })
    }

    fn alloc_set(shape: &ConvShape, threads: usize) -> Result<Vec<Mutex<AlignedBuf>>, Error> {
        let len = (DW_VW - 1)
            .checked_mul(shape.stride)
            .and_then(|x| x.checked_add(shape.s))
            .and_then(|win_max| shape.r.checked_mul(win_max))
            .and_then(|x| x.checked_mul(4))
            .ok_or(Error::ScratchAlloc {
                elements: usize::MAX,
            })?;
        (0..threads)
            .map(|_| {
                AlignedBuf::try_zeroed(len)
                    .map(Mutex::new)
                    .map_err(|elements| Error::ScratchAlloc { elements })
            })
            .collect()
    }

    /// The shape the plan was built for.
    pub fn shape(&self) -> &ConvShape {
        &self.shape
    }

    /// The worker-thread count the plan splits work over.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs the planned depthwise convolution, writing (not accumulating)
    /// `out`. The pool must provide at least the plan's thread count.
    // AUDIT: hotpath
    pub fn execute(
        &self,
        pool: &StaticPool,
        input: &Tensor4,
        out: &mut Tensor4,
    ) -> Result<(), Error> {
        let shape = &self.shape;
        let (p, q) = (shape.p(), shape.q());
        check::act_layout(input, ActLayout::Nchw, "depthwise takes NCHW")?;
        check::dims(
            "input dims",
            (shape.n, shape.c, shape.h, shape.w),
            input.dims(),
        )?;
        check::dims("output dims", (shape.n, shape.c, p, q), out.dims())?;
        check::act_layout(out, ActLayout::Nchw, "depthwise writes NCHW")?;
        if self.threads > pool.size() {
            return Err(Error::GridExceedsPool {
                needed: self.threads,
                available: pool.size(),
            });
        }

        let set = match self.arena.take() {
            Some(s) => {
                ndirect_probe::probe_count!(ScratchPoolHits, 1);
                s
            }
            None => {
                ndirect_probe::probe_count!(ScratchPoolMisses, 1);
                Self::alloc_set(shape, self.threads)?
            }
        };
        let filter = self.filter.get();
        let cgroups = shape.c.div_ceil(4);
        let work = shape.n * cgroups;
        let threads = self.threads;
        let in_data = input.as_slice();
        let image_len = shape.c * shape.h * shape.w;

        let out_shared = SharedSlice::new(out.as_mut_slice());
        let result = pool.try_run(|tid| {
            if tid >= threads {
                return;
            }
            // Disjointness: each (n, cgroup) item owns its own 4 output
            // planes; the pool barrier orders writes before `run` returns.
            let out_all = &out_shared;
            // INDEX: tid < threads == set.len() — the pool contract.
            let mut rows = set[tid]
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            for item in split_static(work, threads, tid) {
                let n = item / cgroups;
                let c0 = (item % cgroups) * 4;
                let lanes = 4.min(shape.c - c0);
                let image = &in_data[n * image_len..(n + 1) * image_len];
                crate::depthwise::depthwise_plane(
                    image, filter, shape, n, c0, lanes, DW_VW, &mut rows, out_all, p, q,
                );
            }
        });
        self.arena.put(set);
        result.map_err(Error::from)
    }
}

// Plans are shared across threads by design (one plan, many executes).
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ConvPlan<'static>>();
    assert_send_sync::<DepthwisePlan<'static>>();
    assert_send_sync::<crate::dwpw::FusedDwPwPlan<'static>>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::conv_ndirect_with;
    use crate::schedule::PackingMode;
    use ndirect_tensor::{fill, Padding};
    use ndirect_threads::Grid2;

    fn problem(shape: &ConvShape, layout: ActLayout, seed: u64) -> (Tensor4, Filter) {
        let flayout = match layout {
            ActLayout::Nchw => FilterLayout::Kcrs,
            ActLayout::Nhwc => FilterLayout::Krsc,
        };
        (
            fill::random_tensor(Tensor4::input_for(shape, layout), seed),
            fill::random_filter(Filter::for_shape(shape, flayout), seed),
        )
    }

    #[test]
    fn repeated_executes_match_one_shot_nchw() {
        let shape = ConvShape::new(2, 5, 9, 11, 13, 3, 3, 1, Padding::same(1));
        let (input, filter) = problem(&shape, ActLayout::Nchw, 41);
        let pool = StaticPool::new(2);
        let sched = Schedule::minimal(&shape).with_grid(Grid2::new(2, 1));
        let oneshot = conv_ndirect_with(&pool, &input, &filter, &shape, &sched);

        let plan = ConvPlan::try_with_schedule(&shape, &filter, &sched).unwrap();
        for _ in 0..3 {
            let mut out = Tensor4::output_for(&shape, ActLayout::Nchw);
            plan.execute(&pool, &input, &mut out).unwrap();
            assert_eq!(out.as_slice(), oneshot.as_slice(), "plan reuse bitwise");
        }
    }

    #[test]
    fn packed_plan_matches_on_the_fly_plan_nchw() {
        let shape = ConvShape::new(1, 6, 10, 8, 9, 3, 3, 2, Padding::same(1));
        let (input, filter) = problem(&shape, ActLayout::Nchw, 43);
        let pool = StaticPool::new(1);
        let sched = Schedule::minimal(&shape);
        let otf = ConvPlan::try_with_schedule(&shape, &filter, &sched).unwrap();
        let packed = ConvPlan::try_with_schedule(
            &shape,
            &filter,
            &sched.with_filter_state(FilterState::PreTransformed),
        )
        .unwrap();
        let mut a = Tensor4::output_for(&shape, ActLayout::Nchw);
        let mut b = Tensor4::output_for(&shape, ActLayout::Nchw);
        otf.execute(&pool, &input, &mut a).unwrap();
        packed.execute(&pool, &input, &mut b).unwrap();
        assert_eq!(a.as_slice(), b.as_slice(), "filter states bitwise");
    }

    #[test]
    fn packed_plan_matches_on_the_fly_plan_nhwc() {
        // K=13 exercises the global-kv K-tail equivalence; tc < C the
        // tiled NHWC pre-transform.
        let shape = ConvShape::new(2, 6, 9, 13, 13, 3, 3, 2, Padding::same(1));
        let (input, filter) = problem(&shape, ActLayout::Nhwc, 47);
        let pool = StaticPool::new(2);
        let mut sched = Schedule::minimal(&shape).with_grid(Grid2::new(1, 2));
        sched.vk = 8;
        sched.tk = 8;
        sched.tc = 4;
        let otf = ConvPlan::try_with_schedule_nhwc(&shape, &filter, &sched).unwrap();
        let packed = ConvPlan::try_with_schedule_nhwc(
            &shape,
            &filter,
            &sched.with_filter_state(FilterState::PreTransformed),
        )
        .unwrap();
        let (p, q) = (shape.p(), shape.q());
        let mut a = Tensor4::zeros(shape.n, shape.k, p, q, ActLayout::Nhwc);
        let mut b = Tensor4::zeros(shape.n, shape.k, p, q, ActLayout::Nhwc);
        otf.execute(&pool, &input, &mut a).unwrap();
        packed.execute(&pool, &input, &mut b).unwrap();
        assert_eq!(a.as_slice(), b.as_slice(), "nhwc filter states bitwise");
    }

    #[test]
    fn derived_plan_runs_and_matches_reference() {
        let shape = ConvShape::square(1, 8, 16, 12, 3, 1);
        let (input, filter) = problem(&shape, ActLayout::Nchw, 51);
        let pool = StaticPool::new(2);
        let plan = ConvPlan::try_new(&ndirect_platform::host(), &shape, &filter, 2).unwrap();
        let mut out = Tensor4::output_for(&shape, ActLayout::Nchw);
        plan.execute(&pool, &input, &mut out).unwrap();
        let expect = ndirect_baselines::naive::conv_ref(&input, &filter, &shape);
        ndirect_tensor::assert_close(out.as_slice(), expect.as_slice(), 2e-4, "derived plan");
    }

    #[test]
    fn execute_rejects_wrong_dims_and_small_pool() {
        let shape = ConvShape::square(1, 4, 4, 6, 3, 1);
        let (input, filter) = problem(&shape, ActLayout::Nchw, 53);
        let sched = Schedule::minimal(&shape).with_grid(Grid2::new(2, 1));
        let plan = ConvPlan::try_with_schedule(&shape, &filter, &sched).unwrap();
        let mut out = Tensor4::output_for(&shape, ActLayout::Nchw);
        // Pool smaller than the plan's grid.
        let small = StaticPool::new(1);
        assert!(matches!(
            plan.execute(&small, &input, &mut out),
            Err(Error::GridExceedsPool { .. })
        ));
        // Wrong input dims.
        let pool = StaticPool::new(2);
        let bad = Tensor4::zeros(1, 4, 9, 9, ActLayout::Nchw);
        assert!(matches!(
            plan.execute(&pool, &bad, &mut out),
            Err(Error::DimMismatch { .. })
        ));
    }

    #[test]
    fn build_degrades_when_scratch_is_absurd() {
        // A shape with an enormous channel count: the sanitized schedule's
        // scratch request exceeds the address space, so the build falls
        // back to minimal tiles (and reports it).
        let shape = ConvShape::new(1, 1 << 48, 8, 8, 4, 3, 3, 1, Padding::NONE);
        let mut sched = Schedule::minimal(&shape);
        sched.tc = shape.c; // survives sanitize: tc is clamped to C
        let filter = Filter::zeros(4, 1, 3, 3, FilterLayout::Kcrs);
        let plan = ConvPlan::try_borrowed(&shape, &filter, &sched).unwrap();
        assert!(plan.degraded());
        assert!(plan.schedule().tc < shape.c);
    }

    #[test]
    fn reserve_scratch_pools_sets() {
        let shape = ConvShape::square(1, 4, 4, 6, 3, 1);
        let (_, filter) = problem(&shape, ActLayout::Nchw, 57);
        let plan =
            ConvPlan::try_with_schedule(&shape, &filter, &Schedule::minimal(&shape)).unwrap();
        plan.reserve_scratch(3).unwrap();
        assert!(plan.arena.idle() >= 3);
    }

    #[test]
    fn depthwise_plan_reuse_matches_one_shot() {
        let shape = ConvShape::new(2, 6, 9, 9, 6, 3, 3, 1, Padding::same(1));
        let input = fill::random_tensor(Tensor4::input_for(&shape, ActLayout::Nchw), 59);
        let filter = fill::random_filter(
            Filter::zeros(shape.c, 1, shape.r, shape.s, FilterLayout::Kcrs),
            59,
        );
        let pool = StaticPool::new(2);
        let oneshot = crate::depthwise::conv_depthwise(&pool, &input, &filter, &shape);
        let plan = DepthwisePlan::try_new(&shape, &filter, 2).unwrap();
        for _ in 0..2 {
            let mut out =
                Tensor4::zeros(shape.n, shape.c, shape.p(), shape.q(), ActLayout::Nchw);
            plan.execute(&pool, &input, &mut out).unwrap();
            assert_eq!(out.as_slice(), oneshot.as_slice(), "depthwise plan bitwise");
        }
    }

    #[test]
    fn prefetch_schedules_are_bitwise_identical() {
        let shape = ConvShape::new(1, 5, 9, 11, 8, 3, 3, 1, Padding::same(1));
        let (input, filter) = problem(&shape, ActLayout::Nchw, 61);
        let pool = StaticPool::new(1);
        let mut on = Schedule::minimal(&shape).with_packing(PackingMode::Fused);
        on.prefetch = true;
        let mut off = on.clone();
        off.prefetch = false;
        let a = conv_ndirect_with(&pool, &input, &filter, &shape, &on);
        let b = conv_ndirect_with(&pool, &input, &filter, &shape, &off);
        assert_eq!(a.as_slice(), b.as_slice(), "prefetch is a pure hint");
    }
}

//! The on-the-fly filter layout transform (Algorithm 2, line 5).
//!
//! nDirect's layout-compatibility story rests on transforming only the
//! *filter* tensor: `F` is small relative to the activations
//! (`K ≪ N·H·W`), is reused across every output pixel of the block, and is
//! read by the micro-kernel as dense `Vk`-vectors of *output channels*.
//! Each `Tk × Tc` block of the `KCRS` filter is rewritten as
//! `[kv][c][r][s][Vk]` — `⌈Tk/Vk⌉ · Tc · R · S · Vk` floats with the `K`
//! remainder zero-padded — either per cache block inside loop L4 (the
//! paper's on-the-fly mode) or once for the whole filter (the
//! pre-transformed ablation; same inner layout, so the micro-kernel is
//! oblivious to the choice).

use ndirect_tensor::{AlignedBuf, Filter};

/// Writes the transform of the filter block `k ∈ [kt, kt+tkb)`,
/// `c ∈ [ct, ct+tcb)` into `out`, laid out `[kv][c][r][s][Vk]` with
/// zero-padding in the trailing partial `kv` group.
///
/// `out` must hold `⌈tkb/vk⌉ · tcb · r · s · vk` floats.
pub fn transform_filter_block(
    filter: &Filter,
    kt: usize,
    tkb: usize,
    ct: usize,
    tcb: usize,
    vk: usize,
    out: &mut [f32],
) {
    let (k, c, r, s) = filter.dims();
    // AUDIT: allow(hotpath-no-panic) O(1) shape guard at block entry.
    assert!(kt + tkb <= k && ct + tcb <= c, "block out of range");
    // AUDIT: allow(hotpath-no-panic) O(1) shape guard at block entry.
    assert!(vk >= 1);
    let kvb = tkb.div_ceil(vk);
    let needed = kvb * tcb * r * s * vk;
    // AUDIT: allow(hotpath-no-panic) O(1) guard protecting the unchecked
    // transform loop below; a failure is a planner sizing bug.
    assert!(out.len() >= needed, "transform buffer too small");
    for kv in 0..kvb {
        let lanes = vk.min(tkb - kv * vk);
        for cc in 0..tcb {
            for rr in 0..r {
                for ss in 0..s {
                    let base = (((kv * tcb + cc) * r + rr) * s + ss) * vk;
                    let dst = &mut out[base..base + vk];
                    for (l, d) in dst.iter_mut().enumerate().take(lanes) {
                        *d = filter.at(kt + kv * vk + l, ct + cc, rr, ss);
                    }
                    for d in dst[lanes..].iter_mut() {
                        *d = 0.0;
                    }
                }
            }
        }
    }
}

/// A whole filter pre-transformed into `[⌈K/Vk⌉][C][R][S][Vk]` — the
/// [`crate::FilterState::PreTransformed`] ablation. Because `c` is the
/// second dimension, the slice for any `(kv, ct..ct+tcb)` block is
/// contiguous and identical to what [`transform_filter_block`] produces, so
/// the micro-kernel consumes both without distinction.
pub struct TransformedFilter {
    data: AlignedBuf,
    k: usize,
    c: usize,
    r: usize,
    s: usize,
    vk: usize,
}

impl TransformedFilter {
    /// Transforms the whole filter. Aborts on allocation failure; plan
    /// building uses [`TransformedFilter::try_new`] to degrade instead.
    pub fn new(filter: &Filter, vk: usize) -> Self {
        match Self::try_new(filter, vk) {
            Ok(tf) => tf,
            // Mirror AlignedBuf::zeroed's abort-on-OOM convention.
            Err(len) => std::alloc::handle_alloc_error(
                std::alloc::Layout::array::<f32>(len.min(isize::MAX as usize))
                    .unwrap_or_else(|_| std::alloc::Layout::new::<f32>()),
            ),
        }
    }

    /// Fallible whole-filter transform: returns `Err(elements)` when the
    /// buffer size overflows or the allocator refuses, so a caller (plan
    /// building) can surface a typed error instead of aborting.
    pub fn try_new(filter: &Filter, vk: usize) -> Result<Self, usize> {
        let (k, c, r, s) = filter.dims();
        let kvb = k.div_ceil(vk);
        let len = kvb
            .checked_mul(c)
            .and_then(|x| x.checked_mul(r))
            .and_then(|x| x.checked_mul(s))
            .and_then(|x| x.checked_mul(vk))
            .ok_or(usize::MAX)?;
        let mut data = AlignedBuf::try_zeroed(len)?;
        for kv in 0..kvb {
            let lanes = vk.min(k - kv * vk);
            for cc in 0..c {
                for rr in 0..r {
                    for ss in 0..s {
                        let base = (((kv * c + cc) * r + rr) * s + ss) * vk;
                        for l in 0..lanes {
                            data[base + l] = filter.at(kv * vk + l, cc, rr, ss);
                        }
                    }
                }
            }
        }
        Ok(Self { data, k, c, r, s, vk })
    }

    /// The contiguous `[c-relative][r][s][vk]` slice for the `kv`-th group
    /// restricted to channels `ct..ct+tcb`, with its channel stride
    /// (`r·s·vk`).
    ///
    /// Note: restricting channels keeps the *start* contiguous but the
    /// slice still spans the full-C layout, so the caller receives the
    /// correctly-offset window whose per-channel stride equals the
    /// on-the-fly block's — both layouts index as `((c·R + r)·S + s)·Vk`.
    pub fn block(&self, kv: usize, ct: usize, tcb: usize) -> &[f32] {
        // AUDIT: allow(hotpath-no-panic) O(1) block-bounds guard.
        assert!(ct + tcb <= self.c);
        let start = (kv * self.c + ct) * self.r * self.s * self.vk;
        let len = tcb * self.r * self.s * self.vk;
        &self.data[start..start + len]
    }

    /// Number of `kv` groups.
    pub fn kv_blocks(&self) -> usize {
        self.k.div_ceil(self.vk)
    }

    /// `Vk` the filter was transformed for.
    pub fn vk(&self) -> usize {
        self.vk
    }

    /// Total floats (for memory accounting).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the transform holds no data.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// Transforms a complete filter (convenience for [`TransformedFilter::new`]).
pub fn transform_filter(filter: &Filter, vk: usize) -> TransformedFilter {
    TransformedFilter::new(filter, vk)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndirect_tensor::{fill, FilterLayout};

    fn sample_filter(k: usize, c: usize, r: usize, s: usize) -> Filter {
        let mut f = Filter::zeros(k, c, r, s, FilterLayout::Kcrs);
        fill::fill_iota(f.as_mut_slice());
        f
    }

    #[test]
    fn block_transform_layout() {
        let f = sample_filter(8, 2, 1, 1);
        let mut out = vec![0.0; 2 * 2 * 4];
        transform_filter_block(&f, 0, 8, 0, 2, 4, &mut out);
        // kv=0, c=0: channels k=0..4 at (c=0): F[k][0][0][0] = k*2.
        assert_eq!(&out[0..4], &[0.0, 2.0, 4.0, 6.0]);
        // kv=0, c=1: F[k][1][0][0] = k*2+1.
        assert_eq!(&out[4..8], &[1.0, 3.0, 5.0, 7.0]);
        // kv=1, c=0: k=4..8.
        assert_eq!(&out[8..12], &[8.0, 10.0, 12.0, 14.0]);
    }

    #[test]
    fn block_transform_zero_pads_k_remainder() {
        let f = sample_filter(6, 1, 1, 1);
        let mut out = vec![9.0; 2 * 4];
        transform_filter_block(&f, 0, 6, 0, 1, 4, &mut out);
        assert_eq!(&out[4..8], &[4.0, 5.0, 0.0, 0.0]);
    }

    #[test]
    fn block_transform_respects_offsets() {
        let f = sample_filter(8, 4, 1, 1);
        let mut out = vec![0.0; 2 * 4];
        // Block k in [4, 8), c in [1, 3).
        transform_filter_block(&f, 4, 4, 1, 2, 4, &mut out);
        assert_eq!(out[0], f.at(4, 1, 0, 0));
        assert_eq!(out[4], f.at(4, 2, 0, 0));
        assert_eq!(out[3], f.at(7, 1, 0, 0));
    }

    #[test]
    fn pretransformed_full_c_matches_block_transform() {
        let f = sample_filter(12, 3, 3, 3);
        let tf = TransformedFilter::new(&f, 8);
        assert_eq!(tf.kv_blocks(), 2);
        // Full-C block of kv=0 equals the on-the-fly transform of the same
        // block.
        let mut otf = vec![0.0; 2 * 3 * 3 * 3 * 8];
        transform_filter_block(&f, 0, 12, 0, 3, 8, &mut otf);
        let kv_len = 3 * 3 * 3 * 8;
        assert_eq!(tf.block(0, 0, 3), &otf[0..kv_len]);
        assert_eq!(tf.block(1, 0, 3), &otf[kv_len..2 * kv_len]);
    }

    #[test]
    fn pretransformed_sub_block_is_channel_window() {
        let f = sample_filter(4, 5, 2, 2);
        let tf = TransformedFilter::new(&f, 4);
        let blk = tf.block(0, 2, 2);
        // First element: k=0, c=2, r=0, s=0.
        assert_eq!(blk[0], f.at(0, 2, 0, 0));
        assert_eq!(blk.len(), 2 * 2 * 2 * 4);
    }

    #[test]
    #[should_panic(expected = "block out of range")]
    fn rejects_out_of_range_block() {
        let f = sample_filter(4, 4, 1, 1);
        let mut out = vec![0.0; 64];
        transform_filter_block(&f, 2, 4, 0, 4, 4, &mut out);
    }
}

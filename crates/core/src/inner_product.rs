//! The inner-product ablation kernel.
//!
//! Algorithm 2 deliberately uses an *outer-product* update (§3.3: "We use
//! the outer-product method to update the output tensor O since its FAI is
//! higher than the inner-product method"). This module implements the
//! alternative the paper rejects — each output element computed as a
//! vectorized dot product over the packed strip — so the benchmark suite
//! can quantify that design decision (`ablation_product_mode`).
//!
//! Structure: the same strip packing as the main path (`pack_strip`), then
//! for every `(pixel, k)` pair a dot product over `(c, r, s)`: the `s`
//! dimension is contiguous in both the packed buffer and the `KCRS` filter
//! row, so it vectorizes with 4-lane loads and one horizontal reduction per
//! `(c, r)`. FAI per output element is `2·C·R·S / (2·C·R·S loads)` — every
//! operand is loaded once per use, the reuse the outer product gets from
//! its register tile is absent by construction.

use ndirect_simd::{F32x4, SimdVec};
use ndirect_tensor::{ActLayout, AlignedBuf, ConvShape, Filter, Tensor4};
use ndirect_threads::{split_static, SharedSlice, StaticPool};

use crate::error::{check, Error};
use crate::pack::{pack_strip, StripGeom};

/// Direct convolution with the inner-product kernel — ablation only; the
/// production entry point is [`crate::conv_ndirect`].
pub fn conv_inner_product(
    pool: &StaticPool,
    input: &Tensor4,
    filter: &Filter,
    shape: &ConvShape,
) -> Tensor4 {
    try_conv_inner_product(pool, input, filter, shape).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`conv_inner_product`].
pub fn try_conv_inner_product(
    pool: &StaticPool,
    input: &Tensor4,
    filter: &Filter,
    shape: &ConvShape,
) -> Result<Tensor4, Error> {
    check::standard_nchw(input, filter, shape, "inner-product ablation takes NCHW/KCRS")?;

    let (p, q) = (shape.p(), shape.q());
    let mut out = Tensor4::output_for(shape, ActLayout::Nchw);
    let threads = pool.size();
    let rows_total = shape.n * p;
    let in_data = input.as_slice();
    let image_len = shape.c * shape.h * shape.w;
    let f_data = filter.as_slice();

    const VW: usize = 8;

    let out_shared = SharedSlice::new(out.as_mut_slice());
    pool.try_run(|tid| {
        // Disjointness: threads own disjoint output rows; barrier before
        // return.
        let out_all = &out_shared;
        let win_max = (VW - 1) * shape.stride + shape.s;
        let mut buf = AlignedBuf::zeroed(shape.c * shape.r * win_max);
        for row in split_static(rows_total, threads, tid) {
            let n = row / p;
            let oh = row % p;
            let image = &in_data[n * image_len..(n + 1) * image_len];
            let mut wv = 0;
            while wv < q {
                let valid_w = VW.min(q - wv);
                let geom = StripGeom::new(shape, oh, wv, valid_w);
                pack_strip(image, 0, shape.c, shape.r, shape.h, shape.w, geom, &mut buf);
                for k in 0..shape.k {
                    let frow = &f_data[k * shape.c * shape.r * shape.s..];
                    for wi in 0..valid_w {
                        let v = dot_strip(
                            &buf,
                            frow,
                            shape.c,
                            shape.r,
                            shape.s,
                            geom.win,
                            wi * shape.stride,
                        );
                        // SAFETY: this output row has one owner.
                        unsafe { out_all.write(((n * shape.k + k) * p + oh) * q + wv + wi, v) };
                    }
                }
                wv += valid_w;
            }
        }
    })?;
    Ok(out)
}

/// Dot product of one output element: `Σ_{c,r,s} B[c][r][off+s]·F[c][r][s]`.
#[inline]
fn dot_strip(
    buf: &[f32],
    frow: &[f32],
    c: usize,
    r: usize,
    s: usize,
    win: usize,
    off: usize,
) -> f32 {
    let mut acc_v = F32x4::zero();
    let mut acc_s = 0.0f32;
    for ci in 0..c {
        for ri in 0..r {
            let b = &buf[(ci * r + ri) * win + off..(ci * r + ri) * win + off + s];
            let f = &frow[(ci * r + ri) * s..(ci * r + ri) * s + s];
            let mut si = 0;
            while si + 4 <= s {
                acc_v = acc_v.fma(F32x4::load(&b[si..]), F32x4::load(&f[si..]));
                si += 4;
            }
            while si < s {
                acc_s += b[si] * f[si];
                si += 1;
            }
        }
    }
    acc_v.reduce_sum() + acc_s
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndirect_tensor::{assert_close, fill, FilterLayout, Padding};

    fn check(shape: ConvShape, threads: usize) {
        let input = fill::random_tensor(Tensor4::input_for(&shape, ActLayout::Nchw), 8);
        let filter = fill::random_filter(Filter::for_shape(&shape, FilterLayout::Kcrs), 8);
        let expect = ndirect_baselines::naive::conv_ref(&input, &filter, &shape);
        let pool = StaticPool::new(threads);
        let got = conv_inner_product(&pool, &input, &filter, &shape);
        assert_close(got.as_slice(), expect.as_slice(), 2e-4, "inner product");
    }

    #[test]
    fn matches_oracle_3x3() {
        check(ConvShape::new(1, 5, 9, 11, 7, 3, 3, 1, Padding::same(1)), 1);
    }

    #[test]
    fn matches_oracle_strided_and_wide_kernels() {
        check(ConvShape::new(1, 3, 12, 12, 4, 5, 5, 2, Padding::same(2)), 1);
        check(ConvShape::new(2, 2, 10, 14, 3, 7, 7, 1, Padding::same(3)), 1);
    }

    #[test]
    fn matches_oracle_pointwise_multithreaded() {
        check(ConvShape::new(2, 9, 6, 6, 5, 1, 1, 1, Padding::NONE), 4);
    }

    #[test]
    fn thread_count_invariant() {
        let shape = ConvShape::new(2, 4, 8, 8, 6, 3, 3, 1, Padding::same(1));
        let input = fill::random_tensor(Tensor4::input_for(&shape, ActLayout::Nchw), 9);
        let filter = fill::random_filter(Filter::for_shape(&shape, FilterLayout::Kcrs), 9);
        let a = conv_inner_product(&StaticPool::new(1), &input, &filter, &shape);
        let b = conv_inner_product(&StaticPool::new(3), &input, &filter, &shape);
        assert_eq!(a.as_slice(), b.as_slice());
    }
}

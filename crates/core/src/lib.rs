//! # nDirect — layout-preserving direct convolution for multi-core CPUs
//!
//! A from-scratch Rust implementation of the convolution algorithm of
//! *"Optimizing Direct Convolutions on ARM Multi-Cores"* (Wang, Yang, Fang
//! et al., SC'23). The design goals, in the paper's order:
//!
//! 1. **Layout compatibility** — activations stay in the framework's `NCHW`
//!    (or `NHWC`) layout; only the small filter tensor is re-laid-out
//!    *on the fly* into `⌈Tk/Vk⌉·Tc·R·S·Vk` blocks ([`filter`]);
//! 2. **A convolution-native micro-kernel** — an outer-product register
//!    tile of `Vw` output pixels × `Vk` output channels updated with
//!    broadcast FMAs ([`kernel`], the paper's Algorithm 3), with `(Vw, Vk)`
//!    chosen by an analytic register/arithmetic-intensity model
//!    ([`model::register_tile`], Eqs. 3–4);
//! 3. **Latency-hidden packing** — the input patch for each output strip is
//!    gathered into an L1-resident linear buffer *fused with the first
//!    `kv` iteration's FMAs* ([`pack`], §5.3), instead of as a separate
//!    sequential pass;
//! 4. **Model-driven cache tiling** — `Tc, Tk, Th` from cache-capacity
//!    inequalities ([`model::cache_tiles`], Eqs. 1–2);
//! 5. **Analytic thread mapping** — a static `PTn × PTk` grid maximizing
//!    per-thread arithmetic intensity with the measured streaming /
//!    non-streaming coefficient `α` ([`model::thread_map`], Eqs. 5–6).
//!
//! ## Quick start
//!
//! ```
//! use ndirect_core::{conv_ndirect, Schedule};
//! use ndirect_tensor::{fill, ActLayout, ConvShape, Filter, FilterLayout, Tensor4};
//! use ndirect_threads::StaticPool;
//!
//! let shape = ConvShape::square(1, 64, 64, 28, 3, 1); // N C K H/W R/S str
//! let input = fill::random_tensor(Tensor4::input_for(&shape, ActLayout::Nchw), 0);
//! let filter = fill::random_filter(Filter::for_shape(&shape, FilterLayout::Kcrs), 0);
//! let pool = StaticPool::new(1);
//! let output = conv_ndirect(&pool, &input, &filter, &shape);
//! assert_eq!(output.dims(), (1, 64, 28, 28));
//! ```
//!
//! For control over every parameter (tile sizes, packing mode, thread
//! grid), build a [`Schedule`] — either [`Schedule::derive`]d from a
//! [`ndirect_platform::Platform`] or constructed manually (the autotuner
//! crate searches over schedules).

#![warn(missing_docs)]

pub mod conv;
pub mod conv3d;
pub mod depthwise;
pub mod dwpw;
pub mod error;
pub mod filter;
pub mod inner_product;
pub mod int16;
pub mod kernel;
pub mod model;
pub mod nhwc;
pub mod pack;
pub mod plan;
pub mod quantize;
pub mod registry;
pub mod sparse;
pub mod schedule;

pub use conv::{
    conv_ndirect, conv_ndirect_into, conv_ndirect_nhwc, conv_ndirect_with, try_conv_ndirect,
    try_conv_ndirect_into, try_conv_ndirect_nhwc, try_conv_ndirect_with,
};
pub use depthwise::{
    conv_depthwise, conv_depthwise_separable, try_conv_depthwise, try_conv_depthwise_separable,
};
pub use dwpw::{
    conv_dwpw_fused, fused_pair_flops, try_compose_shapes, try_conv_dwpw_fused,
    try_conv_dwpw_fused_with, DwPwSchedule, FusedDwPwPlan,
};
pub use conv3d::{conv3d_naive, conv3d_ndirect, try_conv3d_ndirect, Conv3dShape};
pub use error::Error;
pub use inner_product::{conv_inner_product, try_conv_inner_product};
pub use int16::{conv_int16, conv_int16_naive, try_conv_int16, Int16Filter, Int16Tensor};
pub use quantize::{conv_quantized, try_conv_quantized, QuantParams};
pub use sparse::{conv_ndirect_pruned, prune_channels, try_conv_ndirect_pruned, ChannelMask};
pub use nhwc::{
    conv_ndirect_nhwc_native, conv_ndirect_nhwc_with, try_conv_ndirect_nhwc_native,
    try_conv_ndirect_nhwc_with, TransformedFilterNhwc,
};
pub use filter::{transform_filter, transform_filter_block, TransformedFilter};
pub use plan::{ConvPlan, DepthwisePlan};
pub use registry::{PlanKey, PlanRegistry};
pub use schedule::{FilterState, PackingMode, Schedule};

//! Fused depthwise+pointwise convolution — the MobileNet building block
//! without the memory round-trip.
//!
//! The separable block ([`crate::conv_depthwise_separable`]) materializes
//! the depthwise output as a full `(N, C, P, Q)` tensor before the 1×1
//! conv reads it back: `2·N·C·P·Q·4` bytes of pure intermediate traffic
//! that both depthwise papers (arXiv 2206.12124, 2001.02504) identify as
//! the dominant cost of MobileNet-class layers — the pair is memory-bound,
//! not FLOP-bound. This module fuses the two stages at row-slice
//! granularity instead:
//!
//! 1. the depthwise register tile ([`crate::depthwise`]) computes rows
//!    `[oh0, oh0+len)` of *all* `C` channels into a thread-private slab
//!    laid out `[C][row][Q]`, sized by the same half-of-L2 reservation
//!    (Eq. 2) that [`crate::model::slicing`] uses for input slabs
//!    ([`crate::model::slicing::fused_slab_rows`]);
//! 2. the pointwise micro-kernel (Algorithm 3 with `R = S = 1`, via
//!    [`crate::kernel::RowSource::Strided`]) consumes the slab immediately,
//!    while it is cache-hot, accumulating into the final `(N, K, P, Q)`
//!    output.
//!
//! The slab never leaves the core's L2, so each slice saves the write plus
//! the read of its `C·len·Q·4` bytes — booked exactly on the
//! `bytes_intermediate_saved` probe counter, which a test holds equal to
//! the closed-form prediction.
//!
//! Work items are `(image, row-slice)` pairs split statically over the
//! plan's thread count. The `C` reduction of the pointwise stage is never
//! split and the `K` range of an output row has a single writer, so —
//! like every other path in this crate — results are bitwise identical
//! for any thread count.

use std::sync::Mutex;

use ndirect_platform::Platform;
use ndirect_support::{Json, JsonError};
use ndirect_tensor::{ActLayout, AlignedBuf, ConvShape, Filter, FilterLayout, Tensor4};
use ndirect_threads::{split_static, SharedSlice, StaticPool};

use crate::depthwise::depthwise_slice_into_slab;
use crate::error::{check, Error};
use crate::filter::TransformedFilter;
use crate::kernel::{run_tile, RowSource, TileArgs};
use crate::model;
use crate::plan::{Arena, FilterRef, DW_VW};

/// The tunable parameters of the fused dw+pw path. Deliberately smaller
/// than [`crate::Schedule`]: the depthwise stage has no `K` reduction to
/// tile and the slab replaces the `Tc/Tk/Th` cache hierarchy with a single
/// slice length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DwPwSchedule {
    /// Depthwise output rows computed into the slab per slice (clamped to
    /// `[1, P]` by [`DwPwSchedule::sanitized`]); the cache-residency knob.
    pub slice_rows: usize,
    /// Pointwise register-tile width (output pixels per micro-kernel call).
    pub vw: usize,
    /// Pointwise register-tile depth (output channels; a multiple of 4).
    pub vk: usize,
}

impl DwPwSchedule {
    /// Derives the model-optimal fused schedule: slice length from the
    /// half-L2 slab budget ([`model::slicing::fused_slab_rows`]), pointwise
    /// register tile from Eqs. 3–4 with `S = 1`, clamped to the
    /// monomorphized kernel range (`Vw ≤ 12`, `Vk ∈ {4, 8, 12}`).
    pub fn derive(platform: &Platform, dw_shape: &ConvShape) -> DwPwSchedule {
        let (vw, vk) = model::register_tile::optimal_tile(&platform.simd, 1);
        DwPwSchedule {
            slice_rows: model::slicing::fused_slab_rows(platform, dw_shape),
            vw: vw.clamp(1, 12),
            vk: (vk / 4).clamp(1, 3) * 4,
        }
    }

    /// A small, always-valid schedule for tests.
    pub fn minimal(dw_shape: &ConvShape) -> DwPwSchedule {
        DwPwSchedule {
            slice_rows: dw_shape.p().min(2),
            vw: 4,
            vk: 4,
        }
    }

    /// Clamps the schedule to a specific problem: `slice_rows ∈ [1, P]`,
    /// `vw ∈ [1, 12]`, `vk` a multiple of 4 in `[4, 12]` — the ranges the
    /// monomorphized kernels cover.
    pub fn sanitized(&self, dw_shape: &ConvShape) -> DwPwSchedule {
        DwPwSchedule {
            slice_rows: self.slice_rows.clamp(1, dw_shape.p()),
            vw: self.vw.clamp(1, 12),
            vk: (self.vk / 4).clamp(1, 3) * 4,
        }
    }

    /// Serializes in the same style as [`crate::Schedule::to_json`].
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("slice_rows".into(), Json::usize(self.slice_rows)),
            ("vw".into(), Json::usize(self.vw)),
            ("vk".into(), Json::usize(self.vk)),
        ])
    }

    /// Parses the [`DwPwSchedule::to_json`] form; malformed or degenerate
    /// fields are typed errors, never panics.
    pub fn from_json(v: &Json) -> Result<DwPwSchedule, JsonError> {
        let s = DwPwSchedule {
            slice_rows: v.usize_field("slice_rows")?,
            vw: v.usize_field("vw")?,
            vk: v.usize_field("vk")?,
        };
        if s.slice_rows == 0 || s.vw == 0 || s.vk == 0 {
            return Err(JsonError {
                msg: "dwpw schedule fields must be >= 1".into(),
                at: 0,
            });
        }
        Ok(s)
    }
}

/// Per-thread scratch of the fused plan: the cache-resident depthwise
/// output slab plus the depthwise stage's gather rows.
struct FusedScratch {
    /// `C · slice_rows · Q` floats, laid out `[C][row][Q]`.
    slab: AlignedBuf,
    /// `4 · R · ((DW_VW−1)·stride + S)` floats: the 4-lane gather strip.
    rows: AlignedBuf,
}

/// A pre-built fused depthwise+pointwise block: depthwise `(C,1,R,S)`
/// followed by pointwise `(K,C,1,1)`, the intermediate never leaving
/// cache. Owns the transformed pointwise filter and per-thread slabs, so
/// repeated [`execute`](FusedDwPwPlan::execute) calls are allocation-free.
///
/// Like [`crate::ConvPlan`], `execute` *accumulates* into `out` (the
/// pointwise micro-kernel scatters with read-add-write), so callers zero
/// or seed the output; the one-shot wrappers ([`try_conv_dwpw_fused`])
/// allocate a zeroed tensor.
pub struct FusedDwPwPlan<'f> {
    dw_shape: ConvShape,
    k: usize,
    sched: DwPwSchedule,
    mid_relu: bool,
    dw_filter: FilterRef<'f>,
    pw: TransformedFilter,
    threads: usize,
    arena: Arena<Vec<Mutex<FusedScratch>>>,
}

impl<'f> FusedDwPwPlan<'f> {
    /// Builds a fused plan with the model-derived schedule
    /// ([`DwPwSchedule::derive`]) for `threads` worker threads, copying
    /// the depthwise filter so the plan is `'static`. `dw_shape` describes
    /// the depthwise stage (`K == C`); the pointwise filter's `K` defines
    /// the block's output channels.
    pub fn try_new(
        platform: &Platform,
        dw_shape: &ConvShape,
        dw_filter: &Filter,
        pw_filter: &Filter,
        threads: usize,
    ) -> Result<FusedDwPwPlan<'static>, Error> {
        let sched = DwPwSchedule::derive(platform, dw_shape);
        FusedDwPwPlan::try_with_schedule(dw_shape, dw_filter, pw_filter, &sched, threads)
    }

    /// Builds a fused plan with an explicit schedule (sanitized to the
    /// problem), copying the depthwise filter so the plan is `'static`.
    pub fn try_with_schedule(
        dw_shape: &ConvShape,
        dw_filter: &Filter,
        pw_filter: &Filter,
        sched: &DwPwSchedule,
        threads: usize,
    ) -> Result<FusedDwPwPlan<'static>, Error> {
        validate_filters(dw_shape, dw_filter, pw_filter)?;
        FusedDwPwPlan::build(
            dw_shape,
            FilterRef::Owned(dw_filter.clone()),
            pw_filter,
            sched,
            threads,
        )
    }

    /// The throwaway plan behind [`try_conv_dwpw_fused`]: borrows the
    /// depthwise filter, skips validation (the wrapper ran it).
    fn borrowed(
        dw_shape: &ConvShape,
        dw_filter: &'f Filter,
        pw_filter: &Filter,
        sched: &DwPwSchedule,
        threads: usize,
    ) -> Result<FusedDwPwPlan<'f>, Error> {
        FusedDwPwPlan::build(
            dw_shape,
            FilterRef::Borrowed(dw_filter),
            pw_filter,
            sched,
            threads,
        )
    }

    fn build(
        dw_shape: &ConvShape,
        dw_filter: FilterRef<'f>,
        pw_filter: &Filter,
        sched: &DwPwSchedule,
        threads: usize,
    ) -> Result<FusedDwPwPlan<'f>, Error> {
        let sched = sched.sanitized(dw_shape);
        let threads = threads.max(1);
        let pw = TransformedFilter::try_new(pw_filter, sched.vk)
            .map_err(|elements| Error::ScratchAlloc { elements })?;
        let first = Self::alloc_set(dw_shape, &sched, threads)?;
        Ok(FusedDwPwPlan {
            dw_shape: *dw_shape,
            k: pw_filter.dims().0,
            sched,
            mid_relu: false,
            dw_filter,
            pw,
            threads,
            arena: Arena::new(first),
        })
    }

    /// Enables a ReLU on the depthwise intermediate (applied in-slab,
    /// before the pointwise stage) — MobileNet places one between the two
    /// convolutions. Off by default so the plan matches the plain
    /// dw→pw composition.
    pub fn with_mid_relu(mut self, mid_relu: bool) -> Self {
        self.mid_relu = mid_relu;
        self
    }

    fn alloc_set(
        dw_shape: &ConvShape,
        sched: &DwPwSchedule,
        threads: usize,
    ) -> Result<Vec<Mutex<FusedScratch>>, Error> {
        let overflow = || Error::ScratchAlloc {
            elements: usize::MAX,
        };
        let slab_len = dw_shape
            .c
            .checked_mul(sched.slice_rows)
            .and_then(|x| x.checked_mul(dw_shape.q()))
            .ok_or_else(overflow)?;
        let rows_len = (DW_VW - 1)
            .checked_mul(dw_shape.stride)
            .and_then(|x| x.checked_add(dw_shape.s))
            .and_then(|win_max| dw_shape.r.checked_mul(win_max))
            .and_then(|x| x.checked_mul(4))
            .ok_or_else(overflow)?;
        (0..threads)
            .map(|_| {
                let slab = AlignedBuf::try_zeroed(slab_len)
                    .map_err(|elements| Error::ScratchAlloc { elements })?;
                let rows = AlignedBuf::try_zeroed(rows_len)
                    .map_err(|elements| Error::ScratchAlloc { elements })?;
                Ok(Mutex::new(FusedScratch { slab, rows }))
            })
            .collect()
    }

    /// The depthwise-stage shape the plan was built for (`K == C`).
    pub fn dw_shape(&self) -> &ConvShape {
        &self.dw_shape
    }

    /// The block's output channel count (the pointwise filter's `K`).
    pub fn k(&self) -> usize {
        self.k
    }

    /// The sanitized schedule the plan runs.
    pub fn schedule(&self) -> &DwPwSchedule {
        &self.sched
    }

    /// The worker-thread count the plan splits work over.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether the depthwise intermediate gets an in-slab ReLU.
    pub fn mid_relu(&self) -> bool {
        self.mid_relu
    }

    /// Bytes one thread's slab occupies — held within the half-L2 budget
    /// by [`DwPwSchedule::derive`] (an explicit schedule may exceed it).
    pub fn slab_bytes(&self) -> usize {
        model::slicing::fused_slab_bytes(&self.dw_shape, self.sched.slice_rows)
    }

    /// The closed-form intermediate traffic the fusion avoids: the write
    /// plus the read of the `(N, C, P, Q)` depthwise tensor the unfused
    /// composition materializes, `2·N·C·P·Q·4` bytes. The
    /// `bytes_intermediate_saved` probe counter measures exactly this.
    pub fn predicted_intermediate_saved_bytes(&self) -> u128 {
        let s = &self.dw_shape;
        2 * (s.n as u128) * (s.c as u128) * (s.p() as u128) * (s.q() as u128) * 4
    }

    /// Runs the fused block, *accumulating* into `out` (`(N, K, P, Q)`
    /// `NCHW`). The pool must provide at least the plan's thread count.
    // AUDIT: hotpath
    pub fn execute(
        &self,
        pool: &StaticPool,
        input: &Tensor4,
        out: &mut Tensor4,
    ) -> Result<(), Error> {
        let shape = &self.dw_shape;
        let (c, k) = (shape.c, self.k);
        let (p, q) = (shape.p(), shape.q());
        check::act_layout(input, ActLayout::Nchw, "fused dw+pw takes NCHW")?;
        check::dims(
            "input dims",
            (shape.n, shape.c, shape.h, shape.w),
            input.dims(),
        )?;
        check::dims("output dims", (shape.n, k, p, q), out.dims())?;
        check::act_layout(out, ActLayout::Nchw, "fused dw+pw writes NCHW")?;
        if self.threads > pool.size() {
            return Err(Error::GridExceedsPool {
                needed: self.threads,
                available: pool.size(),
            });
        }

        let set = match self.arena.take() {
            Some(s) => {
                ndirect_probe::probe_count!(ScratchPoolHits, 1);
                s
            }
            None => {
                ndirect_probe::probe_count!(ScratchPoolMisses, 1);
                Self::alloc_set(shape, &self.sched, self.threads)?
            }
        };
        let sched = &self.sched;
        let dw_filter = self.dw_filter.get();
        let slices = p.div_ceil(sched.slice_rows);
        let work = shape.n * slices;
        let threads = self.threads;
        let in_data = input.as_slice();
        let image_len = shape.c * shape.h * shape.w;
        let kv_blocks = self.pw.kv_blocks();
        let mid_relu = self.mid_relu;

        let out_shared = SharedSlice::new(out.as_mut_slice());
        let result = pool.try_run(|tid| {
            if tid >= threads {
                return;
            }
            // Disjointness: each (image, row-slice) item owns output rows
            // [oh0, oh0+len) of *all* K channels of its image — the K and
            // C dimensions are never split, so every output element has a
            // single writer and the result is bitwise identical for any
            // thread count. The pool barrier orders writes before `run`
            // returns.
            let out_all = &out_shared;
            // INDEX: tid < threads == set.len() — the pool contract.
            let mut scratch = set[tid]
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            let scratch = &mut *scratch;
            for item in split_static(work, threads, tid) {
                let n_idx = item / slices;
                let si = item % slices;
                let oh0 = si * sched.slice_rows;
                let len = sched.slice_rows.min(p - oh0);
                let image = &in_data[n_idx * image_len..(n_idx + 1) * image_len];

                // Stage 1: depthwise rows [oh0, oh0+len) of every channel
                // into the thread-private slab ([C][row][Q]).
                let slab = &mut scratch.slab[..c * len * q];
                let mut c0 = 0;
                while c0 < c {
                    let lanes = 4.min(c - c0);
                    depthwise_slice_into_slab(
                        image,
                        dw_filter,
                        shape,
                        c0,
                        lanes,
                        DW_VW,
                        oh0,
                        len,
                        &mut scratch.rows,
                        slab,
                    );
                    c0 += lanes;
                }
                if mid_relu {
                    for v in slab.iter_mut() {
                        *v = v.max(0.0);
                    }
                }

                // Accounting: the unfused composition writes this slice to
                // the intermediate tensor and reads it back — 2·C·len·Q·4
                // bytes that never touch memory here. Summed over all
                // slices this is exactly 2·N·C·P·Q·4 (the closed form in
                // `predicted_intermediate_saved_bytes`). The FLOP count is
                // the dw MACs plus the pw MACs of the slice, ×2.
                if ndirect_probe::ENABLED {
                    let slice_elems = (c * len * q) as u64;
                    ndirect_probe::add(
                        ndirect_probe::Counter::BytesIntermediateSaved,
                        2 * slice_elems * 4,
                    );
                    ndirect_probe::add(
                        ndirect_probe::Counter::FlopsIssued,
                        2 * slice_elems * (shape.r * shape.s) as u64
                            + 2 * (k * len * q) as u64 * c as u64,
                    );
                }

                // Stage 2: pointwise over the cache-hot slab, accumulating
                // into the final output.
                let slab = &scratch.slab[..c * len * q];
                for oh in 0..len {
                    let mut wv = 0;
                    while wv < q {
                        let valid_w = sched.vw.min(q - wv);
                        for kv in 0..kv_blocks {
                            let k0 = kv * sched.vk;
                            let valid_k = sched.vk.min(k - k0);
                            let mut src = RowSource::Strided {
                                buf: slab,
                                rows_per_c: len,
                                row_stride: q,
                                row_off: oh,
                                col_off: wv,
                                win: valid_w,
                            };
                            let args = TileArgs {
                                tcb: c,
                                rdim: 1,
                                sdim: 1,
                                stride: 1,
                                tf: self.pw.block(kv, 0, c),
                                vk: sched.vk,
                                obase: ((n_idx * k + k0) * p + oh0 + oh) * q + wv,
                                kstride: p * q,
                                valid_w,
                                valid_k,
                            };
                            run_tile(&mut src, &args, sched.vw, out_all);
                        }
                        wv += valid_w;
                    }
                }
            }
        });
        self.arena.put(set);
        result.map_err(Error::from)
    }
}

/// Build-time filter checks shared by the plan constructors and the
/// one-shot wrappers.
fn validate_filters(
    dw_shape: &ConvShape,
    dw_filter: &Filter,
    pw_filter: &Filter,
) -> Result<(), Error> {
    check::isa()?;
    dw_shape.validate()?;
    if dw_shape.k != dw_shape.c {
        return Err(Error::NotDepthwise {
            k: dw_shape.k,
            c: dw_shape.c,
        });
    }
    check::dims(
        "depthwise filter dims",
        (dw_shape.c, 1, dw_shape.r, dw_shape.s),
        dw_filter.dims(),
    )?;
    check::filter_layout(dw_filter, FilterLayout::Kcrs, "fused dw+pw takes KCRS")?;
    let (k, c2, r1, s1) = pw_filter.dims();
    if (c2, r1, s1) != (dw_shape.c, 1, 1) {
        return Err(Error::DimMismatch {
            what: "pointwise filter dims",
            expected: (k, dw_shape.c, 1, 1),
            got: pw_filter.dims(),
        });
    }
    check::filter_layout(pw_filter, FilterLayout::Kcrs, "fused dw+pw takes KCRS")?;
    Ok(())
}

/// The closed-form FLOP count of one fused dw+pw block:
/// `2·N·C·P·Q·R·S` (depthwise) + `2·N·K·P·Q·C` (pointwise). Matches what
/// the plan books on `flops_issued` and what
/// [`Model::conv_flops`](../../ndirect_models) counts for the pair.
pub fn fused_pair_flops(dw_shape: &ConvShape, k: usize) -> u64 {
    let s = dw_shape;
    let plane = (s.n * s.p() * s.q()) as u64;
    2 * plane * (s.c * s.r * s.s) as u64 + 2 * plane * (k * s.c) as u64
}

/// The `(depthwise, pointwise)` shape pair a fused block runs, exactly as
/// the unfused composition ([`crate::try_conv_depthwise_separable`])
/// builds them: the dw stage maps `(C, H, W)` to `(C, P, Q)` and the pw
/// stage is `1×1` stride-1 unpadded on the dw output. Errors mirror the
/// plain constructors' (the checked-vs-plain "lens" the property suite
/// scans).
pub fn try_compose_shapes(
    shape: &ConvShape,
    k: usize,
) -> Result<(ConvShape, ConvShape), Error> {
    let dw_shape = ConvShape::try_new(
        shape.n, shape.c, shape.h, shape.w, shape.c, shape.r, shape.s, shape.stride, shape.pad,
    )?;
    let pw_shape = ConvShape::try_new(
        shape.n,
        shape.c,
        dw_shape.p(),
        dw_shape.q(),
        k,
        1,
        1,
        1,
        ndirect_tensor::Padding::NONE,
    )?;
    Ok((dw_shape, pw_shape))
}

/// Fused depthwise-separable block: depthwise `R×S` immediately consumed
/// by pointwise `1×1`, the intermediate staying in cache. Same signature
/// and result (within FP reassociation ULPs — the depthwise math is
/// bitwise identical, the pointwise reduction order matches the packed
/// 1×1 path) as [`crate::conv_depthwise_separable`]. Panics on invalid
/// inputs; see [`try_conv_dwpw_fused`].
pub fn conv_dwpw_fused(
    pool: &StaticPool,
    input: &Tensor4,
    dw_filter: &Filter,
    pw_filter: &Filter,
    shape: &ConvShape,
) -> Tensor4 {
    try_conv_dwpw_fused(pool, input, dw_filter, pw_filter, shape)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`conv_dwpw_fused`].
pub fn try_conv_dwpw_fused(
    pool: &StaticPool,
    input: &Tensor4,
    dw_filter: &Filter,
    pw_filter: &Filter,
    shape: &ConvShape,
) -> Result<Tensor4, Error> {
    try_conv_dwpw_fused_with(pool, input, dw_filter, pw_filter, shape, false)
}

/// [`try_conv_dwpw_fused`] with an optional ReLU on the depthwise
/// intermediate (`mid_relu`) — the MobileNet block's activation placement.
pub fn try_conv_dwpw_fused_with(
    pool: &StaticPool,
    input: &Tensor4,
    dw_filter: &Filter,
    pw_filter: &Filter,
    shape: &ConvShape,
    mid_relu: bool,
) -> Result<Tensor4, Error> {
    let dw_shape = ConvShape::try_new(
        shape.n, shape.c, shape.h, shape.w, shape.c, shape.r, shape.s, shape.stride, shape.pad,
    )?;
    validate_filters(&dw_shape, dw_filter, pw_filter)?;
    let sched = DwPwSchedule::derive(&ndirect_platform::host(), &dw_shape);
    let plan = FusedDwPwPlan::borrowed(&dw_shape, dw_filter, pw_filter, &sched, pool.size())?
        .with_mid_relu(mid_relu);
    let k = pw_filter.dims().0;
    let mut out = Tensor4::zeros(shape.n, k, dw_shape.p(), dw_shape.q(), ActLayout::Nchw);
    plan.execute(pool, input, &mut out)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndirect_tensor::{fill, Padding};

    fn dw_shape(n: usize, c: usize, hw: usize, rs: usize, stride: usize, pad: usize) -> ConvShape {
        ConvShape::new(n, c, hw, hw, c, rs, rs, stride, Padding::same(pad))
    }

    fn problem(shape: &ConvShape, k: usize, seed: u64) -> (Tensor4, Filter, Filter) {
        (
            fill::random_tensor(Tensor4::input_for(shape, ActLayout::Nchw), seed),
            fill::random_filter(
                Filter::zeros(shape.c, 1, shape.r, shape.s, FilterLayout::Kcrs),
                seed,
            ),
            fill::random_filter(Filter::zeros(k, shape.c, 1, 1, FilterLayout::Kcrs), seed + 1),
        )
    }

    fn assert_near(got: &[f32], want: &[f32], tol: f32, what: &str) {
        assert_eq!(got.len(), want.len(), "{what}: length");
        for (i, (g, w)) in got.iter().zip(want).enumerate() {
            let scale = w.abs().max(1.0);
            assert!(
                (g - w).abs() <= tol * scale,
                "{what}: [{i}] got {g}, want {w}"
            );
        }
    }

    #[test]
    fn matches_unfused_composition() {
        for (c, k, hw, stride, pad) in
            [(8, 12, 10, 1, 1), (6, 9, 11, 2, 1), (4, 16, 7, 1, 0), (12, 8, 9, 2, 0)]
        {
            let shape = dw_shape(1, c, hw, 3, stride, pad);
            let (input, dwf, pwf) = problem(&shape, k, 7);
            let pool = StaticPool::new(2);
            let got = conv_dwpw_fused(&pool, &input, &dwf, &pwf, &shape);
            let want =
                crate::conv_depthwise_separable(&pool, &input, &dwf, &pwf, &shape);
            assert_eq!(got.dims(), want.dims());
            assert_near(got.as_slice(), want.as_slice(), 1e-5, "fused vs unfused");
        }
    }

    #[test]
    fn multithreaded_is_bitwise_identical() {
        let shape = dw_shape(2, 10, 13, 3, 1, 1);
        let (input, dwf, pwf) = problem(&shape, 20, 9);
        let a = conv_dwpw_fused(&StaticPool::new(1), &input, &dwf, &pwf, &shape);
        let b = conv_dwpw_fused(&StaticPool::new(4), &input, &dwf, &pwf, &shape);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn slice_lengths_are_bitwise_identical() {
        // The slice length only changes *when* rows are computed, never
        // the per-row arithmetic, so every slicing agrees bitwise.
        let shape = dw_shape(1, 6, 9, 3, 1, 1);
        let (input, dwf, pwf) = problem(&shape, 10, 3);
        let pool = StaticPool::new(2);
        let mut reference: Option<Tensor4> = None;
        for rows in [1, 2, 3, shape.p()] {
            let sched = DwPwSchedule {
                slice_rows: rows,
                vw: 8,
                vk: 8,
            };
            let plan =
                FusedDwPwPlan::try_with_schedule(&shape, &dwf, &pwf, &sched, pool.size())
                    .unwrap();
            let mut out = Tensor4::zeros(1, 10, shape.p(), shape.q(), ActLayout::Nchw);
            plan.execute(&pool, &input, &mut out).unwrap();
            match &reference {
                None => reference = Some(out),
                Some(r) => assert_eq!(out.as_slice(), r.as_slice(), "rows={rows}"),
            }
        }
    }

    #[test]
    fn mid_relu_matches_manual_composition() {
        let shape = dw_shape(1, 8, 8, 3, 1, 1);
        let (input, dwf, pwf) = problem(&shape, 12, 5);
        let pool = StaticPool::new(1);
        let got =
            try_conv_dwpw_fused_with(&pool, &input, &dwf, &pwf, &shape, true).unwrap();

        // Manual composition: dw, relu, then pw.
        let mut mid = crate::conv_depthwise(&pool, &input, &dwf, &shape);
        for v in mid.as_mut_slice() {
            *v = v.max(0.0);
        }
        let pw_shape =
            ConvShape::new(1, 8, shape.p(), shape.q(), 12, 1, 1, 1, Padding::NONE);
        let want = crate::conv_ndirect(&pool, &mid, &pwf, &pw_shape);
        assert_near(got.as_slice(), want.as_slice(), 1e-5, "mid relu");
    }

    #[test]
    fn execute_accumulates_into_seeded_output() {
        let shape = dw_shape(1, 4, 6, 3, 1, 1);
        let (input, dwf, pwf) = problem(&shape, 4, 2);
        let pool = StaticPool::new(1);
        let base = conv_dwpw_fused(&pool, &input, &dwf, &pwf, &shape);

        let plan = FusedDwPwPlan::try_new(
            &ndirect_platform::host(),
            &shape,
            &dwf,
            &pwf,
            pool.size(),
        )
        .unwrap();
        let mut out = Tensor4::zeros(1, 4, shape.p(), shape.q(), ActLayout::Nchw);
        for v in out.as_mut_slice() {
            *v = 1.0;
        }
        plan.execute(&pool, &input, &mut out).unwrap();
        for (g, b) in out.as_slice().iter().zip(base.as_slice()) {
            assert!((g - (b + 1.0)).abs() <= 1e-5 * (b.abs() + 1.0));
        }
    }

    #[test]
    fn schedule_json_round_trips() {
        let s = DwPwSchedule {
            slice_rows: 7,
            vw: 12,
            vk: 8,
        };
        let j = s.to_json();
        let parsed = DwPwSchedule::from_json(&j).unwrap();
        assert_eq!(parsed, s);
        // Degenerate fields are typed errors.
        let bad = DwPwSchedule {
            slice_rows: 0,
            vw: 4,
            vk: 4,
        };
        assert!(DwPwSchedule::from_json(&bad.to_json()).is_err());
    }

    #[test]
    fn sanitized_clamps_to_kernel_range() {
        let shape = dw_shape(1, 4, 8, 3, 1, 1);
        let s = DwPwSchedule {
            slice_rows: 1000,
            vw: 64,
            vk: 64,
        }
        .sanitized(&shape);
        assert_eq!(s.slice_rows, shape.p());
        assert_eq!(s.vw, 12);
        assert_eq!(s.vk, 12);
        let t = DwPwSchedule {
            slice_rows: 0,
            vw: 0,
            vk: 1,
        }
        .sanitized(&shape);
        assert_eq!((t.slice_rows, t.vw, t.vk), (1, 1, 4));
    }

    #[test]
    fn derived_slab_fits_half_l2() {
        let p = ndirect_platform::kp920();
        let shape = dw_shape(1, 128, 56, 3, 1, 1);
        let sched = DwPwSchedule::derive(&p, &shape);
        assert!(
            model::slicing::fused_slab_bytes(&shape, sched.slice_rows)
                <= p.cache.l2_per_core() / 2
        );
    }

    #[test]
    fn accounting_prediction_is_closed_form() {
        let shape = dw_shape(3, 16, 14, 3, 2, 1);
        let (_, dwf, pwf) = problem(&shape, 32, 1);
        let plan =
            FusedDwPwPlan::try_new(&ndirect_platform::host(), &shape, &dwf, &pwf, 1).unwrap();
        let (p, q) = (shape.p(), shape.q());
        assert_eq!(
            plan.predicted_intermediate_saved_bytes(),
            2 * 3 * 16 * (p as u128) * (q as u128) * 4
        );
        assert_eq!(
            fused_pair_flops(&shape, 32),
            (2 * 3 * 16 * p * q * 9 + 2 * 3 * 32 * p * q * 16) as u64
        );
    }

    #[test]
    fn rejects_bad_filters() {
        let shape = dw_shape(1, 8, 8, 3, 1, 1);
        let (_, dwf, _) = problem(&shape, 12, 1);
        // Pointwise C mismatch.
        let bad_pw = Filter::zeros(12, 7, 1, 1, FilterLayout::Kcrs);
        assert!(matches!(
            FusedDwPwPlan::try_new(
                &ndirect_platform::host(),
                &shape,
                &dwf,
                &bad_pw,
                1
            ),
            Err(Error::DimMismatch { .. })
        ));
        // Non-depthwise shape (K != C).
        let bad_shape = ConvShape::new(1, 8, 8, 8, 16, 3, 3, 1, Padding::same(1));
        let pw = Filter::zeros(12, 8, 1, 1, FilterLayout::Kcrs);
        assert!(matches!(
            FusedDwPwPlan::try_new(
                &ndirect_platform::host(),
                &bad_shape,
                &dwf,
                &pw,
                1
            ),
            Err(Error::NotDepthwise { .. })
        ));
    }
}

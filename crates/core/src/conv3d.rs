//! 3-D (volumetric) convolution — the §10.2 extension.
//!
//! "Since 3D Convolution can be seen as 2D Convolution with additional
//! reduction dimensions, we can directly use the micro-kernels of nDirect
//! for acceleration." Concretely: the 2-D micro-kernel reduces over
//! `(c, r, s)` with `r` indexing rows of the packed strip; for 3-D we
//! flatten the kernel-depth and kernel-height taps into a single row
//! dimension `r' = T·R` — row `t·R + r` of channel `c` is input row
//! `(id·str + t, ih·str + r)` — and the *identical* register-tiled kernel
//! ([`crate::kernel::run_tile`]) computes the `Vw × Vk` output tile. Only
//! the gather (3-D addressing, here) and the filter transform
//! ([`transform_filter3d_block`]) know the data is volumetric.

use ndirect_tensor::{AlignedBuf, Filter5, Tensor5};
use ndirect_threads::{split_static, SharedSlice, StaticPool};

use crate::error::Error;
use crate::kernel::{run_tile, RowSource, TileArgs};

/// A 3-D convolution problem: `NCDHW` input, `KCTRS` filter, symmetric
/// zero padding per spatial axis, one stride for all three.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv3dShape {
    /// Batch size.
    pub n: usize,
    /// Input channels.
    pub c: usize,
    /// Input depth.
    pub d: usize,
    /// Input height.
    pub h: usize,
    /// Input width.
    pub w: usize,
    /// Output channels.
    pub k: usize,
    /// Kernel depth `T`.
    pub t: usize,
    /// Kernel height `R`.
    pub r: usize,
    /// Kernel width `S`.
    pub s: usize,
    /// Stride (shared by all three spatial axes).
    pub stride: usize,
    /// Depth padding.
    pub pad_d: usize,
    /// Height padding.
    pub pad_h: usize,
    /// Width padding.
    pub pad_w: usize,
}

impl Conv3dShape {
    /// Output depth.
    pub fn od(&self) -> usize {
        (self.d + 2 * self.pad_d - self.t) / self.stride + 1
    }

    /// Output height.
    pub fn p(&self) -> usize {
        (self.h + 2 * self.pad_h - self.r) / self.stride + 1
    }

    /// Output width.
    pub fn q(&self) -> usize {
        (self.w + 2 * self.pad_w - self.s) / self.stride + 1
    }

    /// FLOPs (2 per MAC). Folded in `u128` and saturated at `u64::MAX`
    /// rather than wrapped, mirroring `ConvShape::flops` — the 3D product
    /// has two extra factors (`OD`, `T`), so it exceeds `u64` even sooner.
    pub fn flops(&self) -> u64 {
        [
            self.n,
            self.k,
            self.od(),
            self.p(),
            self.q(),
            self.c,
            self.t,
            self.r,
            self.s,
        ]
        .iter()
        .try_fold(2u128, |acc, &f| acc.checked_mul(f as u128))
        .map_or(u64::MAX, |total| u64::try_from(total).unwrap_or(u64::MAX))
    }
}

/// Transforms the filter block `k ∈ [kt, kt+tkb)` (all channels) into the
/// kernel's expected `[kv][c][t·r][s][Vk]` layout.
pub fn transform_filter3d_block(
    filter: &Filter5,
    kt: usize,
    tkb: usize,
    vk: usize,
    out: &mut [f32],
) {
    let (k, c, t, r, s) = filter.dims();
    assert!(kt + tkb <= k, "block out of range");
    let kvb = tkb.div_ceil(vk);
    assert!(out.len() >= kvb * c * t * r * s * vk, "transform buffer too small");
    for kv in 0..kvb {
        let lanes = vk.min(tkb - kv * vk);
        for cc in 0..c {
            for tt in 0..t {
                for rr in 0..r {
                    for ss in 0..s {
                        let row = tt * r + rr;
                        let base = (((kv * c + cc) * (t * r) + row) * s + ss) * vk;
                        for l in 0..lanes {
                            out[base + l] = filter.at(kt + kv * vk + l, cc, tt, rr, ss);
                        }
                        for d in out[base + lanes..base + vk].iter_mut() {
                            *d = 0.0;
                        }
                    }
                }
            }
        }
    }
}

/// nDirect-style 3-D convolution: `NCDHW` in, `NCDHW` out.
///
/// Parallelization: the flat `N·OD·P` output-row space is split statically
/// across the pool (every thread computes all `K`; with one extra grid
/// dimension the 2-D `PTk` split would also apply, omitted for clarity).
pub fn conv3d_ndirect(
    pool: &StaticPool,
    input: &Tensor5,
    filter: &Filter5,
    shape: &Conv3dShape,
) -> Tensor5 {
    try_conv3d_ndirect(pool, input, filter, shape).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`conv3d_ndirect`].
pub fn try_conv3d_ndirect(
    pool: &StaticPool,
    input: &Tensor5,
    filter: &Filter5,
    shape: &Conv3dShape,
) -> Result<Tensor5, Error> {
    if input.dims() != (shape.n, shape.c, shape.d, shape.h, shape.w) {
        return Err(Error::Config {
            msg: format!(
                "input dims mismatch: shape implies {:?}, tensor is {:?}",
                (shape.n, shape.c, shape.d, shape.h, shape.w),
                input.dims()
            ),
        });
    }
    if filter.dims() != (shape.k, shape.c, shape.t, shape.r, shape.s) {
        return Err(Error::Config {
            msg: format!(
                "filter dims mismatch: shape implies {:?}, tensor is {:?}",
                (shape.k, shape.c, shape.t, shape.r, shape.s),
                filter.dims()
            ),
        });
    }
    if shape.stride < 1 {
        return Err(Error::Shape(ndirect_tensor::ShapeError::ZeroStride));
    }
    if shape.d + 2 * shape.pad_d < shape.t {
        return Err(Error::Shape(ndirect_tensor::ShapeError::KernelExceedsInput {
            axis: 'd',
            kernel: shape.t,
            padded: shape.d + 2 * shape.pad_d,
        }));
    }
    if shape.h + 2 * shape.pad_h < shape.r {
        return Err(Error::Shape(ndirect_tensor::ShapeError::KernelExceedsInput {
            axis: 'h',
            kernel: shape.r,
            padded: shape.h + 2 * shape.pad_h,
        }));
    }
    if shape.w + 2 * shape.pad_w < shape.s {
        return Err(Error::Shape(ndirect_tensor::ShapeError::KernelExceedsInput {
            axis: 'w',
            kernel: shape.s,
            padded: shape.w + 2 * shape.pad_w,
        }));
    }
    let (od, p, q) = (shape.od(), shape.p(), shape.q());
    let mut out = Tensor5::zeros(shape.n, shape.k, od, p, q);

    // Register tile from the Eq. 3/4 model (the kernel-width argument is
    // the flattened tap count's inner dimension, S), clamped to the
    // monomorphized kernel set exactly as Schedule::sanitized does.
    let (vw_model, vk_model) =
        crate::model::register_tile::optimal_tile(&ndirect_platform::host().simd, shape.s);
    let vk = (vk_model.max(4) / 4 * 4).min(4 * crate::kernel::VKV_MAX);
    let vw = vw_model.clamp(1, crate::kernel::VW_MAX);
    let rdim = shape.t * shape.r; // flattened (t, r) row dimension
    let kv_total = shape.k.div_ceil(vk);

    let threads = pool.size();
    let rows_total = shape.n * od * p;
    let in_data = input.as_slice();
    let image_len = shape.c * shape.d * shape.h * shape.w;

    // Whole-filter transform once (K is typically small for 3-D nets; the
    // per-block on-the-fly variant works identically but obscures the
    // demonstration).
    let mut tf = AlignedBuf::zeroed(kv_total * shape.c * rdim * shape.s * vk);
    transform_filter3d_block(filter, 0, shape.k, vk, &mut tf);
    let tf_block_len = shape.c * rdim * shape.s * vk;

    let out_shared = SharedSlice::new(out.as_mut_slice());
    pool.try_run(|tid| {
        // Disjointness: threads own disjoint output rows (static split);
        // barrier before return.
        let out_all = &out_shared;
        let win_max = (vw - 1) * shape.stride + shape.s;
        let mut buf = AlignedBuf::zeroed(shape.c * rdim * win_max);
        for row in split_static(rows_total, threads, tid) {
            let n = row / (od * p);
            let odh = row % (od * p);
            let odi = odh / p;
            let oh = odh % p;
            let image = &in_data[n * image_len..(n + 1) * image_len];

            let id0 = (odi * shape.stride) as isize - shape.pad_d as isize;
            let ih0 = (oh * shape.stride) as isize - shape.pad_h as isize;
            let mut wv = 0;
            while wv < q {
                let valid_w = vw.min(q - wv);
                let win = (valid_w - 1) * shape.stride + shape.s;
                let iw0 = (wv * shape.stride) as isize - shape.pad_w as isize;
                // 3-D gather: row (c, t·R + r) is input row (id0+t, ih0+r)
                // of channel c.
                for cc in 0..shape.c {
                    for tt in 0..shape.t {
                        for rr in 0..shape.r {
                            let dst_row = cc * rdim + tt * shape.r + rr;
                            let dst = &mut buf[dst_row * win..(dst_row + 1) * win];
                            gather_row3d(
                                image, shape, cc, id0 + tt as isize, ih0 + rr as isize, iw0, dst,
                            );
                        }
                    }
                }
                for kv in 0..kv_total {
                    let k0 = kv * vk;
                    let args = TileArgs {
                        tcb: shape.c,
                        rdim,
                        sdim: shape.s,
                        stride: shape.stride,
                        tf: &tf[kv * tf_block_len..(kv + 1) * tf_block_len],
                        vk,
                        obase: (((n * shape.k + k0) * od + odi) * p + oh) * q + wv,
                        kstride: od * p * q,
                        valid_w,
                        valid_k: vk.min(shape.k - k0),
                    };
                    let mut rows = RowSource::Packed {
                        buf: &buf,
                        win,
                        rdim,
                    };
                    run_tile(&mut rows, &args, vw, out_all);
                }
                wv += vw;
            }
        }
    })?;
    Ok(out)
}

/// One input row of a 3-D volume with zero fill outside any axis.
fn gather_row3d(
    image: &[f32],
    shape: &Conv3dShape,
    c: usize,
    id: isize,
    ih: isize,
    iw0: isize,
    dst: &mut [f32],
) {
    if id < 0 || id as usize >= shape.d || ih < 0 || ih as usize >= shape.h {
        dst.fill(0.0);
        return;
    }
    let row0 = ((c * shape.d + id as usize) * shape.h + ih as usize) * shape.w;
    crate::pack::fill_row_clipped(&image[row0..row0 + shape.w], iw0, shape.w, 1, dst);
}

/// Naive 3-D convolution oracle.
pub fn conv3d_naive(input: &Tensor5, filter: &Filter5, shape: &Conv3dShape) -> Tensor5 {
    let (od, p, q) = (shape.od(), shape.p(), shape.q());
    let mut out = Tensor5::zeros(shape.n, shape.k, od, p, q);
    for n in 0..shape.n {
        for k in 0..shape.k {
            for odi in 0..od {
                for oj in 0..p {
                    for oi in 0..q {
                        let mut acc = 0.0;
                        for c in 0..shape.c {
                            for t in 0..shape.t {
                                for r in 0..shape.r {
                                    for s in 0..shape.s {
                                        let id = (shape.stride * odi + t) as isize
                                            - shape.pad_d as isize;
                                        let ih = (shape.stride * oj + r) as isize
                                            - shape.pad_h as isize;
                                        let iw = (shape.stride * oi + s) as isize
                                            - shape.pad_w as isize;
                                        acc += input.at_padded(n, c, id, ih, iw)
                                            * filter.at(k, c, t, r, s);
                                    }
                                }
                            }
                        }
                        *out.at_mut(n, k, odi, oj, oi) = acc;
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndirect_tensor::fill;

    fn problem(shape: &Conv3dShape, seed: u64) -> (Tensor5, Filter5) {
        let mut input = Tensor5::zeros(shape.n, shape.c, shape.d, shape.h, shape.w);
        fill::fill_random(input.as_mut_slice(), seed);
        let mut filter = Filter5::zeros(shape.k, shape.c, shape.t, shape.r, shape.s);
        fill::fill_random(filter.as_mut_slice(), seed ^ 0xf1f);
        (input, filter)
    }

    fn check(shape: Conv3dShape, threads: usize) {
        let (input, filter) = problem(&shape, 11);
        let pool = StaticPool::new(threads);
        let got = conv3d_ndirect(&pool, &input, &filter, &shape);
        let expect = conv3d_naive(&input, &filter, &shape);
        ndirect_tensor::assert_close(
            got.as_slice(),
            expect.as_slice(),
            2e-4,
            &format!("{shape:?}"),
        );
    }

    #[test]
    fn matches_oracle_3x3x3() {
        check(
            Conv3dShape {
                n: 1,
                c: 3,
                d: 6,
                h: 7,
                w: 8,
                k: 10,
                t: 3,
                r: 3,
                s: 3,
                stride: 1,
                pad_d: 1,
                pad_h: 1,
                pad_w: 1,
            },
            1,
        );
    }

    #[test]
    fn matches_oracle_valid_and_strided() {
        check(
            Conv3dShape {
                n: 2,
                c: 2,
                d: 5,
                h: 9,
                w: 9,
                k: 6,
                t: 2,
                r: 3,
                s: 3,
                stride: 2,
                pad_d: 0,
                pad_h: 1,
                pad_w: 1,
            },
            1,
        );
    }

    #[test]
    fn matches_oracle_pointwise_volume() {
        check(
            Conv3dShape {
                n: 1,
                c: 8,
                d: 4,
                h: 5,
                w: 6,
                k: 9,
                t: 1,
                r: 1,
                s: 1,
                stride: 1,
                pad_d: 0,
                pad_h: 0,
                pad_w: 0,
            },
            2,
        );
    }

    #[test]
    fn multithreaded_bitwise_identical() {
        let shape = Conv3dShape {
            n: 1,
            c: 4,
            d: 5,
            h: 6,
            w: 7,
            k: 8,
            t: 3,
            r: 3,
            s: 3,
            stride: 1,
            pad_d: 1,
            pad_h: 1,
            pad_w: 1,
        };
        let (input, filter) = problem(&shape, 12);
        let a = conv3d_ndirect(&StaticPool::new(1), &input, &filter, &shape);
        let b = conv3d_ndirect(&StaticPool::new(4), &input, &filter, &shape);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn flops_accounting() {
        let shape = Conv3dShape {
            n: 1,
            c: 2,
            d: 4,
            h: 4,
            w: 4,
            k: 3,
            t: 2,
            r: 2,
            s: 2,
            stride: 1,
            pad_d: 0,
            pad_h: 0,
            pad_w: 0,
        };
        // outputs: 3*3*3*3 = 81, macs: 2*2*2*2 = 16 → 2*81*16 = 2592.
        assert_eq!(shape.flops(), 2592);
    }
}

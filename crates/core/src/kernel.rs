//! The main micro-kernel (Algorithm 3) and its fused-packing variant.
//!
//! One invocation updates a `Vw × Vk` output register tile — `Vw`
//! consecutive output pixels of one row × `Vk` consecutive output channels —
//! accumulating over the current channel tile (`Tc`), all kernel rows `R`
//! and taps `S`:
//!
//! * the **filter** is read as dense `Vk`-vectors from the transformed
//!   layout (`[c][r][s][Vk]`), the streaming operand;
//! * the **input** is read as broadcast scalars from the packed strip
//!   buffer `B` (lane-indexed registers in the paper; `splat` here, which
//!   LLVM lowers to `ld1r`/lane-`fmla` on NEON) — the outer-product
//!   update that gives direct convolution a higher FAI than a GEMM-shaped
//!   inner product;
//! * the **output** tile lives entirely in `Vw · Vk/4` accumulator
//!   registers until the final read-add-write scatter into `NCHW`.
//!
//! [`RowSource::Gather`] fuses §5.3's packing into the first `kv`
//! iteration: each `(c, r)` input row is gathered into `B` immediately
//! before its FMA burst, so the buffer stores overlap with computation
//! exactly as the paper interleaves `st` with `fma`.

use ndirect_simd::{prefetch_read, F32x4, SimdVec};
use ndirect_threads::SharedSlice;

use crate::pack::{gather_row, prefetch_row};

/// Upper bound on `Vw` the dynamic kernel supports.
pub const VW_MAX: usize = 32;
/// Upper bound on `Vk/4` the dynamic kernel supports.
pub const VKV_MAX: usize = 8;

/// Where the micro-kernel gets its input rows: the packed buffer (later
/// `kv` iterations) or a gather that fills the buffer as it goes (first
/// `kv` iteration in fused-packing mode).
pub enum RowSource<'a> {
    /// Read rows from an already-packed strip buffer (`[c][r][win]`).
    Packed {
        /// The packed strip (`[c][r][win]`).
        buf: &'a [f32],
        /// Elements per row.
        win: usize,
        /// Rows per channel (`R`, or `T·R` for 3-D).
        rdim: usize,
    },
    /// Gather each row from the image into the strip buffer on first use.
    Gather {
        /// One image's `C·H·W` data.
        image: &'a [f32],
        /// First channel of the tile.
        ct: usize,
        /// Input height.
        h: usize,
        /// Input width.
        w: usize,
        /// Strip origin row (`oh·str − pad.h`).
        ih0: isize,
        /// Strip origin column (`wv·str − pad.w`).
        iw0: isize,
        /// The strip buffer being filled (`[c][r][win]`).
        buf: &'a mut [f32],
        /// Elements per row.
        win: usize,
        /// Rows per channel.
        rdim: usize,
        /// Software-prefetch the next `(c, r)` row before gathering the
        /// current one (see [`Schedule::prefetch`](crate::Schedule)).
        prefetch: bool,
    },
    /// Read rows out of a cache-resident slice slab packed by
    /// [`crate::pack::pack_slice_slab`] (`[c][ih_rel][row_stride]` layout):
    /// the [`crate::PackingMode::Sliced`] path. Each strip row is a
    /// contiguous `win`-element sub-slice of one slab row, so the kernels
    /// run unchanged — only the addressing differs from `Packed`.
    Strided {
        /// The slab (`[c][ih_rel][row_stride]`, `c` relative to the tile).
        buf: &'a [f32],
        /// Slab rows per channel (`(slice_len−1)·stride + R`).
        rows_per_c: usize,
        /// Elements per slab row (`(Q−1)·stride + S`).
        row_stride: usize,
        /// First slab row of this strip's window (`(oh − slice_oh0)·stride`).
        row_off: usize,
        /// Column offset of this strip's window inside a slab row
        /// (`wv·stride`).
        col_off: usize,
        /// Elements per strip row (`(valid_w−1)·stride + S`).
        win: usize,
    },
    /// Zero memory overhead ([`crate::PackingMode::None`]): read rows
    /// straight from the `NCHW` image, no buffer anywhere. Interior strips
    /// are plain contiguous slices; strips touching padding run the
    /// edge-masked `kernel_row_clipped`, which skips exactly the taps the
    /// packed path would have multiplied by zero (bitwise-identical: the
    /// accumulators start at `+0.0` and never become `-0.0`, so
    /// `fma(f, ±0.0, acc) == acc` for the finite data we compute on).
    Direct {
        /// One image's `C·H·W` data.
        image: &'a [f32],
        /// First channel of the tile.
        ct: usize,
        /// Input height.
        h: usize,
        /// Input width.
        w: usize,
        /// Strip origin row (`oh·str − pad.h`).
        ih0: isize,
        /// Strip origin column (`wv·str − pad.w`).
        iw0: isize,
        /// Software-prefetch the next `(c, r)` row (same hint as `Gather`).
        prefetch: bool,
    },
}

impl RowSource<'_> {
    /// The `win`-element input row for tile channel `c`, kernel row `rr`
    /// (used by the dynamic edge kernel; the monomorphized kernels stream
    /// rows with `chunks_exact` instead).
    #[inline(always)]
    fn row(&mut self, c: usize, rr: usize) -> &[f32] {
        match self {
            RowSource::Packed { buf, win, rdim } => {
                &buf[(c * *rdim + rr) * *win..(c * *rdim + rr + 1) * *win]
            }
            RowSource::Gather {
                image,
                ct,
                h,
                w,
                ih0,
                iw0,
                buf,
                win,
                rdim,
                ..
            } => {
                let dst = &mut buf[(c * *rdim + rr) * *win..(c * *rdim + rr + 1) * *win];
                gather_row(image, *ct + c, *ih0 + rr as isize, *iw0, *h, *w, dst);
                dst
            }
            RowSource::Strided {
                buf,
                rows_per_c,
                row_stride,
                row_off,
                col_off,
                win,
            } => {
                let base = (c * *rows_per_c + *row_off + rr) * *row_stride + *col_off;
                &buf[base..base + *win]
            }
            // Padding rows have no backing storage to return; every kernel
            // routes `Direct` through its dedicated edge-masked path before
            // reaching here.
            // AUDIT: allow(hotpath-no-panic) driver invariant — Direct
            // sources take the edge-masked path; loud beats corrupt.
            RowSource::Direct { .. } => unreachable!("Direct rows are edge-masked in the kernels"),
        }
    }
}

/// Geometry + operand bundle shared by every kernel variant.
pub struct TileArgs<'a> {
    /// Live channels in the current `Tc` tile.
    pub tcb: usize,
    /// Kernel height `R`.
    pub rdim: usize,
    /// Kernel width `S`.
    pub sdim: usize,
    /// Convolution stride.
    pub stride: usize,
    /// Transformed filter slice for this `kv` block: `[c][r][s][vk]`.
    pub tf: &'a [f32],
    /// `Vk` of the transformed filter.
    pub vk: usize,
    /// Offset of output element `(n, k0, oh, wv)` in `out`.
    pub obase: usize,
    /// Distance between consecutive output channels (`P·Q` for `NCHW`).
    pub kstride: usize,
    /// Live output pixels (≤ scheduled `Vw`).
    pub valid_w: usize,
    /// Live output channels in this `kv` block (≤ `vk`).
    pub valid_k: usize,
}

/// Expands to the stride dispatch for one `(VW, VKV)` instantiation.
macro_rules! stride_dispatch {
    ($rows:expr, $args:expr, $out:expr, $vw:literal, $vkv:literal) => {
        match $args.stride {
            1 => return main_kernel::<$vw, $vkv, 1>($rows, $args, $out),
            2 => return main_kernel::<$vw, $vkv, 2>($rows, $args, $out),
            _ => {}
        }
    };
}

/// Dispatches to a monomorphized kernel, falling back to the dynamic
/// kernel only for exotic parameters (`Vw > 12`, `Vk > 12`, stride > 2).
///
/// Dispatch is on the strip's *live* width (`valid_w`), so `Q`-tail strips
/// run register-resident kernels too; `K`-tails are handled inside the
/// kernel by masking the accumulator store (the zero-padded filter lanes
/// compute zeros, which the mask discards). `vw` — the scheduled width — is
/// unused beyond diagnostics now but kept so callers state their schedule.
pub fn run_tile(rows: &mut RowSource<'_>, args: &TileArgs<'_>, vw: usize, out: &SharedSlice<'_, f32>) {
    debug_assert!(args.tf.len() >= args.tcb * args.rdim * args.sdim * args.vk);
    debug_assert!(args.valid_w <= vw);
    match (args.valid_w, args.vk / 4) {
        (1, 1) => stride_dispatch!(rows, args, out, 1, 1),
        (1, 2) => stride_dispatch!(rows, args, out, 1, 2),
        (1, 3) => stride_dispatch!(rows, args, out, 1, 3),
        (2, 1) => stride_dispatch!(rows, args, out, 2, 1),
        (2, 2) => stride_dispatch!(rows, args, out, 2, 2),
        (2, 3) => stride_dispatch!(rows, args, out, 2, 3),
        (3, 1) => stride_dispatch!(rows, args, out, 3, 1),
        (3, 2) => stride_dispatch!(rows, args, out, 3, 2),
        (3, 3) => stride_dispatch!(rows, args, out, 3, 3),
        (4, 1) => stride_dispatch!(rows, args, out, 4, 1),
        (4, 2) => stride_dispatch!(rows, args, out, 4, 2),
        (4, 3) => stride_dispatch!(rows, args, out, 4, 3),
        (5, 1) => stride_dispatch!(rows, args, out, 5, 1),
        (5, 2) => stride_dispatch!(rows, args, out, 5, 2),
        (5, 3) => stride_dispatch!(rows, args, out, 5, 3),
        (6, 1) => stride_dispatch!(rows, args, out, 6, 1),
        (6, 2) => stride_dispatch!(rows, args, out, 6, 2),
        (6, 3) => stride_dispatch!(rows, args, out, 6, 3),
        (7, 1) => stride_dispatch!(rows, args, out, 7, 1),
        (7, 2) => stride_dispatch!(rows, args, out, 7, 2),
        (7, 3) => stride_dispatch!(rows, args, out, 7, 3),
        (8, 1) => stride_dispatch!(rows, args, out, 8, 1),
        (8, 2) => stride_dispatch!(rows, args, out, 8, 2),
        (8, 3) => stride_dispatch!(rows, args, out, 8, 3),
        (9, 1) => stride_dispatch!(rows, args, out, 9, 1),
        (9, 2) => stride_dispatch!(rows, args, out, 9, 2),
        (9, 3) => stride_dispatch!(rows, args, out, 9, 3),
        (10, 1) => stride_dispatch!(rows, args, out, 10, 1),
        (10, 2) => stride_dispatch!(rows, args, out, 10, 2),
        (10, 3) => stride_dispatch!(rows, args, out, 10, 3),
        (11, 1) => stride_dispatch!(rows, args, out, 11, 1),
        (11, 2) => stride_dispatch!(rows, args, out, 11, 2),
        (11, 3) => stride_dispatch!(rows, args, out, 11, 3),
        (12, 1) => stride_dispatch!(rows, args, out, 12, 1),
        (12, 2) => stride_dispatch!(rows, args, out, 12, 2),
        (12, 3) => stride_dispatch!(rows, args, out, 12, 3),
        // Wide, shallow tiles the Eq. 4 model picks for 5x5/7x7 kernels on
        // 32-register ISAs (Vk = 4 only — deeper tiles with these widths
        // exceed every register file we target).
        (16, 1) => stride_dispatch!(rows, args, out, 16, 1),
        (20, 1) => stride_dispatch!(rows, args, out, 20, 1),
        (24, 1) => stride_dispatch!(rows, args, out, 24, 1),
        _ => {}
    }
    dyn_kernel(rows, args, out);
}

/// The monomorphized Algorithm 3 kernel: `VW` pixels × `VKV·4` channels,
/// accumulators pinned in registers for the whole `(c, r, s)` reduction.
/// `STRIDE` is also a const so every input index is a compile-time offset.
fn main_kernel<const VW: usize, const VKV: usize, const STRIDE: usize>(
    rows: &mut RowSource<'_>,
    args: &TileArgs<'_>,
    out: &SharedSlice<'_, f32>,
) {
    let vk = VKV * 4;
    debug_assert_eq!(args.vk, vk);
    debug_assert_eq!(args.stride, STRIDE);
    let (rdim, sdim) = (args.rdim, args.sdim);
    if rdim == 1 && sdim == 1 {
        // Pointwise convolutions get a dedicated loop: one row per channel
        // feeds only Vw·Vk/4 FMAs, so generic per-row machinery would
        // dominate the kernel.
        return main_kernel_1x1::<VW, VKV, STRIDE>(rows, args, out);
    }
    let mut acc = [[F32x4::zero(); VKV]; VW];
    // Resolve the row source once, then stream rows with `chunks_exact`
    // (check-free iteration).
    match rows {
        RowSource::Packed { buf, win, rdim: rd } => {
            debug_assert_eq!(*rd, rdim);
            let win = *win;
            for (crow, tfc) in buf
                .chunks_exact(rdim * win)
                .zip(args.tf.chunks_exact(rdim * sdim * vk))
                .take(args.tcb)
            {
                prefetch_read(tfc.as_ptr());
                for (brow, tfr) in crow.chunks_exact(win).zip(tfc.chunks_exact(sdim * vk)) {
                    kernel_row::<VW, VKV, STRIDE>(&mut acc, brow, tfr, sdim);
                }
            }
        }
        RowSource::Gather {
            image,
            ct,
            h,
            w,
            ih0,
            iw0,
            buf,
            win,
            rdim: rd,
            prefetch,
        } => {
            debug_assert_eq!(*rd, rdim);
            let win = *win;
            for ((c, crow), tfc) in buf
                .chunks_exact_mut(rdim * win)
                .enumerate()
                .zip(args.tf.chunks_exact(rdim * sdim * vk))
                .take(args.tcb)
            {
                for ((rr, brow), tfr) in crow
                    .chunks_exact_mut(win)
                    .enumerate()
                    .zip(tfc.chunks_exact(sdim * vk))
                {
                    if *prefetch {
                        // Touch the *next* row's source line now so its load
                        // overlaps this row's gather + FMA burst.
                        let (nc, nr) = if rr + 1 < rdim { (c, rr + 1) } else { (c + 1, 0) };
                        if nc < args.tcb {
                            prefetch_row(image, *ct + nc, *ih0 + nr as isize, *iw0, *h, *w);
                        }
                    }
                    gather_row(image, *ct + c, *ih0 + rr as isize, *iw0, *h, *w, brow);
                    kernel_row::<VW, VKV, STRIDE>(&mut acc, brow, tfr, sdim);
                }
            }
        }
        RowSource::Strided {
            buf,
            rows_per_c,
            row_stride,
            row_off,
            col_off,
            win,
        } => {
            debug_assert_eq!(*win, (VW - 1) * STRIDE + sdim);
            for (c, tfc) in args.tf.chunks_exact(rdim * sdim * vk).enumerate().take(args.tcb) {
                prefetch_read(tfc.as_ptr());
                for (rr, tfr) in tfc.chunks_exact(sdim * vk).enumerate() {
                    let base = (c * *rows_per_c + *row_off + rr) * *row_stride + *col_off;
                    kernel_row::<VW, VKV, STRIDE>(&mut acc, &buf[base..base + *win], tfr, sdim);
                }
            }
        }
        RowSource::Direct {
            image,
            ct,
            h,
            w,
            ih0,
            iw0,
            prefetch,
        } => {
            let win = (VW - 1) * STRIDE + sdim;
            for (c, tfc) in args.tf.chunks_exact(rdim * sdim * vk).enumerate().take(args.tcb) {
                prefetch_read(tfc.as_ptr());
                for (rr, tfr) in tfc.chunks_exact(sdim * vk).enumerate() {
                    if *prefetch {
                        let (nc, nr) = if rr + 1 < rdim { (c, rr + 1) } else { (c + 1, 0) };
                        if nc < args.tcb {
                            prefetch_row(image, *ct + nc, *ih0 + nr as isize, *iw0, *h, *w);
                        }
                    }
                    let ih = *ih0 + rr as isize;
                    if ih < 0 || ih as usize >= *h {
                        // The whole row is padding: the packed path would
                        // multiply a zero-filled row, contributing nothing.
                        continue;
                    }
                    let row0 = (*ct + c) * *h * *w + ih as usize * *w;
                    if *iw0 >= 0 && *iw0 as usize + win <= *w {
                        // Interior strip: the window is a plain contiguous
                        // slice of the image row — the true zero-copy path.
                        let lo = row0 + *iw0 as usize;
                        kernel_row::<VW, VKV, STRIDE>(&mut acc, &image[lo..lo + win], tfr, sdim);
                    } else {
                        let row = &image[row0..row0 + *w];
                        kernel_row_clipped::<VW, VKV, STRIDE>(&mut acc, row, *iw0, tfr, sdim);
                    }
                }
            }
        }
    }
    // Read-add-write scatter into NCHW: pixel wi is contiguous along Q,
    // channel l is `kstride` apart. `valid_k` masks the zero-padded filter
    // lanes of a K-tail block.
    for (wi, accw) in acc.iter().enumerate() {
        for (j, v) in accw.iter().enumerate() {
            let lanes = v.to_array();
            for (l, &x) in lanes.iter().enumerate() {
                let k_local = j * 4 + l;
                if k_local < args.valid_k {
                    // SAFETY: the driver's thread grid gives this tile's
                    // (K-range × output-row) region a single writer.
                    unsafe { out.add_assign(args.obase + k_local * args.kstride + wi, x) };
                }
            }
        }
    }
}

/// Pointwise (`R = S = 1`) kernel: both operands stream linearly — the
/// packed input as `win`-float rows, the transformed filter as `Vk`-float
/// vectors — with one zipped loop over the channel tile and no inner tap
/// loop.
fn main_kernel_1x1<const VW: usize, const VKV: usize, const STRIDE: usize>(
    rows: &mut RowSource<'_>,
    args: &TileArgs<'_>,
    out: &SharedSlice<'_, f32>,
) {
    let vk = VKV * 4;
    let win = (VW - 1) * STRIDE + 1;
    let mut acc = [[F32x4::zero(); VKV]; VW];

    // A pointwise row is kernel_row with a single tap (sdim = 1); both
    // operands stream linearly, one zipped pass over the channel tile.
    match rows {
        RowSource::Packed { buf, win: w_in, .. } => {
            debug_assert_eq!(*w_in, win);
            for (brow, frow) in buf
                .chunks_exact(win)
                .zip(args.tf.chunks_exact(vk))
                .take(args.tcb)
            {
                kernel_row::<VW, VKV, STRIDE>(&mut acc, brow, frow, 1);
            }
        }
        RowSource::Gather {
            image,
            ct,
            h,
            w,
            ih0,
            iw0,
            buf,
            win: w_in,
            prefetch,
            ..
        } => {
            debug_assert_eq!(*w_in, win);
            for ((c, brow), frow) in buf
                .chunks_exact_mut(win)
                .enumerate()
                .zip(args.tf.chunks_exact(vk))
                .take(args.tcb)
            {
                if *prefetch && c + 1 < args.tcb {
                    prefetch_row(image, *ct + c + 1, *ih0, *iw0, *h, *w);
                }
                gather_row(image, *ct + c, *ih0, *iw0, *h, *w, brow);
                kernel_row::<VW, VKV, STRIDE>(&mut acc, brow, frow, 1);
            }
        }
        RowSource::Strided {
            buf,
            rows_per_c,
            row_stride,
            row_off,
            col_off,
            win: w_in,
        } => {
            debug_assert_eq!(*w_in, win);
            for (c, frow) in args.tf.chunks_exact(vk).enumerate().take(args.tcb) {
                let base = (c * *rows_per_c + *row_off) * *row_stride + *col_off;
                kernel_row::<VW, VKV, STRIDE>(&mut acc, &buf[base..base + win], frow, 1);
            }
        }
        RowSource::Direct {
            image,
            ct,
            h,
            w,
            ih0,
            iw0,
            prefetch,
        } => {
            // A 1×1 kernel has one (possibly padded) input row per channel;
            // an out-of-image row contributes nothing, exactly like the
            // zero-filled row the packed path would stream.
            if *ih0 >= 0 && (*ih0 as usize) < *h {
                let ih = *ih0 as usize;
                for (c, frow) in args.tf.chunks_exact(vk).enumerate().take(args.tcb) {
                    if *prefetch && c + 1 < args.tcb {
                        prefetch_row(image, *ct + c + 1, *ih0, *iw0, *h, *w);
                    }
                    let row0 = (*ct + c) * *h * *w + ih * *w;
                    if *iw0 >= 0 && *iw0 as usize + win <= *w {
                        let lo = row0 + *iw0 as usize;
                        kernel_row::<VW, VKV, STRIDE>(&mut acc, &image[lo..lo + win], frow, 1);
                    } else {
                        let row = &image[row0..row0 + *w];
                        kernel_row_clipped::<VW, VKV, STRIDE>(&mut acc, row, *iw0, frow, 1);
                    }
                }
            }
        }
    }

    for (wi, accw) in acc.iter().enumerate() {
        for (j, v) in accw.iter().enumerate() {
            let lanes = v.to_array();
            for (l, &x) in lanes.iter().enumerate() {
                let k_local = j * 4 + l;
                if k_local < args.valid_k {
                    // SAFETY: single writer per tile region (see driver).
                    unsafe { out.add_assign(args.obase + k_local * args.kstride + wi, x) };
                }
            }
        }
    }
}

/// One `(c, r)` row's contribution: `S` taps × `VW` pixels × `VKV` vectors
/// of broadcast FMAs. `STRIDE` being const makes every input offset a
/// compile-time constant.
#[inline(always)]
fn kernel_row<const VW: usize, const VKV: usize, const STRIDE: usize>(
    acc: &mut [[F32x4; VKV]; VW],
    brow: &[f32],
    tfr: &[f32],
    sdim: usize,
) {
    let vk = VKV * 4;
    for ss in 0..sdim {
        let frow = &tfr[ss * vk..(ss + 1) * vk];
        let mut fv = [F32x4::zero(); VKV];
        for (j, v) in fv.iter_mut().enumerate() {
            *v = F32x4::load(&frow[j * 4..]);
        }
        // One slice whose length the optimizer can see, so the constant-
        // offset reads below are check-free.
        let seg = &brow[ss..ss + (VW - 1) * STRIDE + 1];
        for wi in 0..VW {
            let x = F32x4::splat(seg[wi * STRIDE]);
            for j in 0..VKV {
                acc[wi][j] = acc[wi][j].fma(fv[j], x);
            }
        }
    }
}

/// [`kernel_row`] for a strip window that leaves the image: reads the full
/// `W`-column input row and skips every tap whose column falls into
/// padding. Bitwise-identical to streaming the zero-filled packed row: the
/// skipped FMAs multiply by `+0.0`/`−0.0` against accumulators that start
/// at `+0.0` and never become `−0.0` (exact cancellation rounds to `+0.0`
/// in round-to-nearest), so `fma(f, ±0.0, acc) == acc` for finite `f`. Tap
/// order (`ss` outer, `wi` middle, `j` inner) matches [`kernel_row`]
/// exactly.
#[inline(always)]
fn kernel_row_clipped<const VW: usize, const VKV: usize, const STRIDE: usize>(
    acc: &mut [[F32x4; VKV]; VW],
    row: &[f32],
    iw0: isize,
    tfr: &[f32],
    sdim: usize,
) {
    let vk = VKV * 4;
    let w = row.len() as isize;
    for ss in 0..sdim {
        let frow = &tfr[ss * vk..(ss + 1) * vk];
        let mut fv = [F32x4::zero(); VKV];
        for (j, v) in fv.iter_mut().enumerate() {
            *v = F32x4::load(&frow[j * 4..]);
        }
        for (wi, accw) in acc.iter_mut().enumerate() {
            let col = iw0 + (wi * STRIDE + ss) as isize;
            if col < 0 || col >= w {
                continue;
            }
            let x = F32x4::splat(row[col as usize]);
            for j in 0..VKV {
                accw[j] = accw[j].fma(fv[j], x);
            }
        }
    }
}

/// The dynamic edge kernel: identical math with runtime tile bounds, used
/// for `W`/`K` tails and for unusual schedules outside the monomorphized
/// set. Accumulators may spill for large bounds; edges are a vanishing
/// fraction of the iteration space.
fn dyn_kernel(rows: &mut RowSource<'_>, args: &TileArgs<'_>, out: &SharedSlice<'_, f32>) {
    let vk = args.vk;
    let vkv = vk / 4;
    // AUDIT: allow(hotpath-no-panic) O(1) tile-entry guard sizing the
    // fixed accumulator array; every `acc` subscript below relies on it.
    assert!(args.valid_w <= VW_MAX && vkv <= VKV_MAX, "tile exceeds dyn kernel bounds");
    let (rdim, sdim, stride) = (args.rdim, args.sdim, args.stride);
    let mut acc = [[F32x4::zero(); VKV_MAX]; VW_MAX];
    if let RowSource::Direct {
        image,
        ct,
        h,
        w,
        ih0,
        iw0,
        ..
    } = rows
    {
        // Zero-copy edge path: no row buffer exists, so clip at tap
        // granularity against the image bounds. Loop order (c, rr, ss, wi,
        // j) and the fv load inside the j loop mirror the packed branch
        // below; skipped taps are the ones a packed row holds as zero.
        for c in 0..args.tcb {
            for rr in 0..rdim {
                let ih = *ih0 + rr as isize;
                if ih < 0 || ih as usize >= *h {
                    continue;
                }
                let row0 = (*ct + c) * *h * *w + ih as usize * *w;
                let brow = &image[row0..row0 + *w];
                let tfrow =
                    &args.tf[((c * rdim + rr) * sdim) * vk..((c * rdim + rr) * sdim + sdim) * vk];
                for ss in 0..sdim {
                    for (wi, accw) in acc.iter_mut().enumerate().take(args.valid_w) {
                        let col = *iw0 + (wi * stride + ss) as isize;
                        if col < 0 || col >= *w as isize {
                            continue;
                        }
                        // INDEX: col bounds-checked against [0, w) above.
                        let x = F32x4::splat(brow[col as usize]);
                        for j in 0..vkv {
                            let fv = F32x4::load(&tfrow[ss * vk + j * 4..]);
                            // INDEX: j < vkv ≤ VKV_MAX (tile-entry assert).
                            accw[j] = accw[j].fma(fv, x);
                        }
                    }
                }
            }
        }
    } else {
        for c in 0..args.tcb {
            for rr in 0..rdim {
                let brow = rows.row(c, rr);
                let tfrow =
                    &args.tf[((c * rdim + rr) * sdim) * vk..((c * rdim + rr) * sdim + sdim) * vk];
                for ss in 0..sdim {
                    for wi in 0..args.valid_w {
                        // INDEX: packed rows span win ≥ (valid_w-1)*stride + sdim floats.
                        let x = F32x4::splat(brow[wi * stride + ss]);
                        for j in 0..vkv {
                            let fv = F32x4::load(&tfrow[ss * vk + j * 4..]);
                            // INDEX: wi < valid_w ≤ VW_MAX, j < vkv ≤ VKV_MAX (tile-entry assert).
                            acc[wi][j] = acc[wi][j].fma(fv, x);
                        }
                    }
                }
            }
        }
    }
    for (wi, accw) in acc.iter().enumerate().take(args.valid_w) {
        for (j, v) in accw.iter().enumerate().take(vkv) {
            let lanes = v.to_array();
            for (l, &x) in lanes.iter().enumerate() {
                let k_local = j * 4 + l;
                if k_local < args.valid_k {
                    // SAFETY: single writer per tile region (see driver).
                    unsafe { out.add_assign(args.obase + k_local * args.kstride + wi, x) };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::transform_filter_block;
    use crate::pack::{pack_strip, StripGeom};
    use ndirect_tensor::{fill, ActLayout, ConvShape, Filter, FilterLayout, Padding, Tensor4};

    /// Scalar reference for one tile.
    #[allow(clippy::too_many_arguments)]
    fn reference_tile(
        input: &Tensor4,
        filter: &Filter,
        shape: &ConvShape,
        n: usize,
        k0: usize,
        oh: usize,
        wv: usize,
        valid_w: usize,
        valid_k: usize,
        ct: usize,
        tcb: usize,
    ) -> Vec<f32> {
        let mut tile = vec![0.0; valid_k * valid_w];
        for kk in 0..valid_k {
            for wi in 0..valid_w {
                let mut acc = 0.0;
                for c in ct..ct + tcb {
                    for rr in 0..shape.r {
                        for ss in 0..shape.s {
                            let ih = (oh * shape.stride) as isize - shape.pad.h as isize
                                + rr as isize;
                            let iw = ((wv + wi) * shape.stride) as isize
                                - shape.pad.w as isize
                                + ss as isize;
                            let x = ndirect_tensor::pad::at_padded(input, n, c, ih, iw);
                            acc += x * filter.at(k0 + kk, c, rr, ss);
                        }
                    }
                }
                tile[kk * valid_w + wi] = acc;
            }
        }
        tile
    }

    #[allow(clippy::too_many_arguments)]
    fn run_and_check(
        shape: ConvShape,
        vw: usize,
        vk: usize,
        valid_w: usize,
        valid_k: usize,
        fused: bool,
    ) {
        let input = fill::random_tensor(Tensor4::input_for(&shape, ActLayout::Nchw), 17);
        let filter = fill::random_filter(Filter::for_shape(&shape, FilterLayout::Kcrs), 17);
        let (n, k0, oh, wv, ct) = (0, 0, 0, 0, 0);
        let tcb = shape.c;

        let mut tf = vec![0.0; valid_k.div_ceil(vk) * tcb * shape.r * shape.s * vk];
        transform_filter_block(&filter, k0, valid_k.min(vk), ct, tcb, vk, &mut tf);

        let geom = StripGeom::new(&shape, oh, wv, vw);
        let mut buf = vec![0.0; tcb * shape.r * geom.win];
        let image = input.as_slice();

        let (p, q) = (shape.p(), shape.q());
        let mut out_vec = vec![0.0; shape.k * p * q];
        let out = SharedSlice::new(&mut out_vec);
        let args = TileArgs {
            tcb,
            rdim: shape.r,
            sdim: shape.s,
            stride: shape.stride,
            tf: &tf,
            vk,
            obase: (k0 * p + oh) * q + wv,
            kstride: p * q,
            valid_w,
            valid_k: valid_k.min(vk),
        };
        if fused {
            let mut rows = RowSource::Gather {
                image,
                ct,
                h: shape.h,
                w: shape.w,
                ih0: geom.ih0,
                iw0: geom.iw0,
                buf: &mut buf,
                win: geom.win,
                rdim: shape.r,
                // Always on in the gather tests: exercises the clamped
                // prefetch addressing on padded/strided shapes too.
                prefetch: true,
            };
            run_tile(&mut rows, &args, vw, &out);
        } else {
            pack_strip(image, ct, tcb, shape.r, shape.h, shape.w, geom, &mut buf);
            let mut rows = RowSource::Packed {
                buf: &buf,
                win: geom.win,
                rdim: shape.r,
            };
            run_tile(&mut rows, &args, vw, &out);
        }

        let expect = reference_tile(
            &input, &filter, &shape, n, k0, oh, wv, valid_w, args.valid_k, ct, tcb,
        );
        for kk in 0..args.valid_k {
            for wi in 0..valid_w {
                let got = out_vec[(k0 + kk) * p * q + oh * q + wv + wi];
                let want = expect[kk * valid_w + wi];
                assert!(
                    (got - want).abs() <= 2e-4 * want.abs().max(1.0),
                    "k={kk} w={wi}: {got} vs {want}"
                );
            }
        }
        // Untouched output stays zero (check one pixel outside the tile).
        if valid_w < q {
            assert_eq!(out_vec[oh * q + wv + valid_w], 0.0);
        }
    }

    /// Runs one tile with the given row source (0 = `Packed`, 1 = `Direct`,
    /// 2 = `Strided` out of a slice slab) and returns the whole output
    /// plane, for bitwise comparison across sources.
    #[allow(clippy::too_many_arguments)]
    fn run_with_source(
        input: &Tensor4,
        filter: &Filter,
        shape: &ConvShape,
        vk: usize,
        valid_w: usize,
        oh: usize,
        wv: usize,
        kind: u8,
    ) -> Vec<f32> {
        let (k0, ct) = (0, 0);
        let tcb = shape.c;
        let valid_k = vk.min(shape.k);
        let mut tf = vec![0.0; tcb * shape.r * shape.s * vk];
        transform_filter_block(filter, k0, valid_k, ct, tcb, vk, &mut tf);
        let geom = StripGeom::new(shape, oh, wv, valid_w);
        let (p, q) = (shape.p(), shape.q());
        let mut out_vec = vec![0.0; shape.k * p * q];
        let out = SharedSlice::new(&mut out_vec);
        let args = TileArgs {
            tcb,
            rdim: shape.r,
            sdim: shape.s,
            stride: shape.stride,
            tf: &tf,
            vk,
            obase: (k0 * p + oh) * q + wv,
            kstride: p * q,
            valid_w,
            valid_k,
        };
        let image = input.as_slice();
        match kind {
            0 => {
                let mut buf = vec![0.0; tcb * shape.r * geom.win];
                pack_strip(image, ct, tcb, shape.r, shape.h, shape.w, geom, &mut buf);
                let mut rows = RowSource::Packed { buf: &buf, win: geom.win, rdim: shape.r };
                run_tile(&mut rows, &args, valid_w, &out);
            }
            1 => {
                let mut rows = RowSource::Direct {
                    image,
                    ct,
                    h: shape.h,
                    w: shape.w,
                    ih0: geom.ih0,
                    iw0: geom.iw0,
                    prefetch: true,
                };
                run_tile(&mut rows, &args, valid_w, &out);
            }
            _ => {
                // A two-row slice ending at `oh` (one row when oh = 0), so
                // `row_off` is exercised, not just a zero offset.
                let slice_oh0 = oh.saturating_sub(1);
                let slice_len = oh - slice_oh0 + 1;
                let row_win = (q - 1) * shape.stride + shape.s;
                let slab_rows = (slice_len - 1) * shape.stride + shape.r;
                let mut slab = vec![0.0; tcb * slab_rows * row_win];
                crate::pack::pack_slice_slab(image, ct, tcb, shape, slice_oh0, slice_len, &mut slab);
                let mut rows = RowSource::Strided {
                    buf: &slab,
                    rows_per_c: slab_rows,
                    row_stride: row_win,
                    row_off: (oh - slice_oh0) * shape.stride,
                    col_off: wv * shape.stride,
                    win: geom.win,
                };
                run_tile(&mut rows, &args, valid_w, &out);
            }
        }
        out_vec
    }

    #[test]
    fn direct_and_strided_sources_match_packed_bitwise() {
        // (shape, vk, valid_w, oh, wv): interior and boundary strips,
        // stride 1 and 2, pointwise, a 7x7, and a dyn-kernel width.
        let cases = [
            (ConvShape::new(1, 3, 10, 16, 8, 3, 3, 1, Padding::same(1)), 8, 8, 0, 0),
            (ConvShape::new(1, 3, 10, 16, 8, 3, 3, 1, Padding::same(1)), 8, 8, 5, 8),
            (ConvShape::new(1, 2, 9, 17, 8, 3, 3, 2, Padding::same(1)), 8, 4, 2, 4),
            (ConvShape::new(1, 2, 9, 17, 8, 3, 3, 2, Padding::same(1)), 8, 1, 4, 8),
            (ConvShape::new(1, 4, 6, 12, 8, 1, 1, 1, Padding::NONE), 8, 8, 3, 4),
            (ConvShape::new(1, 2, 12, 18, 4, 7, 7, 1, Padding::same(3)), 4, 8, 0, 0),
            (ConvShape::new(1, 2, 8, 16, 8, 3, 3, 1, Padding::same(1)), 8, 13, 7, 0),
        ];
        for (i, (shape, vk, valid_w, oh, wv)) in cases.into_iter().enumerate() {
            let seed = 29 + i as u64;
            let input = fill::random_tensor(Tensor4::input_for(&shape, ActLayout::Nchw), seed);
            let filter =
                fill::random_filter(Filter::for_shape(&shape, FilterLayout::Kcrs), seed ^ 1);
            let packed = run_with_source(&input, &filter, &shape, vk, valid_w, oh, wv, 0);
            let direct = run_with_source(&input, &filter, &shape, vk, valid_w, oh, wv, 1);
            let strided = run_with_source(&input, &filter, &shape, vk, valid_w, oh, wv, 2);
            assert_eq!(packed, direct, "case {i}: Direct differs from Packed");
            assert_eq!(packed, strided, "case {i}: Strided differs from Packed");
        }
    }

    #[test]
    fn full_tile_monomorphized_8x8() {
        let shape = ConvShape::new(1, 3, 10, 16, 8, 3, 3, 1, Padding::NONE);
        run_and_check(shape, 8, 8, 8, 8, false);
    }

    #[test]
    fn full_tile_12x8_paper_config() {
        let shape = ConvShape::new(1, 2, 8, 20, 8, 3, 3, 1, Padding::NONE);
        run_and_check(shape, 12, 8, 12, 8, false);
    }

    #[test]
    fn fused_gather_matches_packed() {
        let shape = ConvShape::new(1, 3, 10, 16, 8, 3, 3, 1, Padding::same(1));
        run_and_check(shape, 8, 8, 8, 8, true);
        run_and_check(shape, 8, 8, 8, 8, false);
    }

    #[test]
    fn w_tail_uses_dyn_kernel() {
        let shape = ConvShape::new(1, 2, 8, 16, 8, 3, 3, 1, Padding::NONE);
        run_and_check(shape, 8, 8, 5, 8, false);
    }

    #[test]
    fn k_tail_masks_channels() {
        let shape = ConvShape::new(1, 2, 8, 16, 6, 3, 3, 1, Padding::NONE);
        run_and_check(shape, 8, 8, 8, 6, true);
    }

    #[test]
    fn stride_two_tiles() {
        let shape = ConvShape::new(1, 2, 9, 17, 8, 3, 3, 2, Padding::same(1));
        run_and_check(shape, 4, 8, 4, 8, false);
        run_and_check(shape, 4, 8, 3, 8, true);
    }

    #[test]
    fn pointwise_kernel() {
        let shape = ConvShape::new(1, 4, 6, 12, 8, 1, 1, 1, Padding::NONE);
        run_and_check(shape, 8, 8, 8, 8, false);
    }

    #[test]
    fn seven_by_seven_kernel() {
        let shape = ConvShape::new(1, 2, 12, 18, 4, 7, 7, 1, Padding::same(3));
        run_and_check(shape, 8, 4, 8, 4, true);
    }

    #[test]
    fn unusual_schedule_falls_back_to_dyn() {
        // vw=6 has no monomorphized kernel.
        let shape = ConvShape::new(1, 2, 8, 14, 8, 3, 3, 1, Padding::NONE);
        run_and_check(shape, 6, 8, 6, 8, false);
    }
}

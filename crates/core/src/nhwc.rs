//! Native `NHWC` nDirect convolution.
//!
//! The paper claims nDirect "preserves the conventional `NCHW` and `NHWC`
//! data layouts" and presents the `NCHW` variant in detail. This module is
//! the `NHWC` sibling, built from the same ingredients with the layout's
//! natural advantages:
//!
//! * the register tile is the same `Vw` pixels × `Vk` output channels, but
//!   the output store is **contiguous vectors** (channels are innermost in
//!   `NHWC`), so the scatter of the `NCHW` kernel becomes vector
//!   read-add-writes;
//! * the filter transform is `KRSC → [kv][r][s][c][Vk]` — for a fixed tap
//!   `(r, s)` the kernel streams `(c, Vk)` blocks linearly;
//! * the packed strip keeps `NHWC`'s `[row][pixel][channel]` interleaving
//!   (`[r][win][Tc]`), so interior rows pack with one `memcpy` when the
//!   channel tile covers all of `C`.
//!
//! Parallelization and cache tiling reuse the same [`crate::Schedule`]
//! machinery as the `NCHW` path.

use ndirect_simd::{F32x4, SimdVec};
use ndirect_tensor::{ActLayout, ConvShape, Filter, FilterLayout, Tensor4};
use ndirect_threads::{split_static, SharedSlice, StaticPool};

use crate::error::{check, Error};
use crate::schedule::Schedule;

/// Transforms the filter block `k ∈ [kt, kt+tkb)`, `c ∈ [ct, ct+tcb)` into
/// `[kv][r][s][c][Vk]` (zero-padded `K` remainder). Accepts either filter
/// layout (it reads through logical indexing).
pub fn transform_filter_nhwc_block(
    filter: &Filter,
    kt: usize,
    tkb: usize,
    ct: usize,
    tcb: usize,
    vk: usize,
    out: &mut [f32],
) {
    let (k, c, r, s) = filter.dims();
    assert!(kt + tkb <= k && ct + tcb <= c, "block out of range");
    let kvb = tkb.div_ceil(vk);
    assert!(out.len() >= kvb * r * s * tcb * vk, "transform buffer too small");
    for kv in 0..kvb {
        let lanes = vk.min(tkb - kv * vk);
        for rr in 0..r {
            for ss in 0..s {
                for cc in 0..tcb {
                    let base = (((kv * r + rr) * s + ss) * tcb + cc) * vk;
                    let dst = &mut out[base..base + vk];
                    for (l, d) in dst.iter_mut().enumerate().take(lanes) {
                        *d = filter.at(kt + kv * vk + l, ct + cc, rr, ss);
                    }
                    for d in dst[lanes..].iter_mut() {
                        *d = 0.0;
                    }
                }
            }
        }
    }
}

/// Packs one strip: `R` rows of `win` pixels × `tcb` channels from an
/// `NHWC` image into `buf[r][col][c_local]`, zero-filling padding.
#[allow(clippy::too_many_arguments)]
fn pack_strip_nhwc(
    image: &[f32],
    shape: &ConvShape,
    ct: usize,
    tcb: usize,
    ih0: isize,
    iw0: isize,
    win: usize,
    buf: &mut [f32],
) {
    let (h, w, c) = (shape.h, shape.w, shape.c);
    for rr in 0..shape.r {
        let ih = ih0 + rr as isize;
        let dst = &mut buf[rr * win * tcb..(rr + 1) * win * tcb];
        if ih < 0 || ih as usize >= h {
            dst.fill(0.0);
            continue;
        }
        let row0 = ih as usize * w * c;
        if tcb == c {
            // Full channel tile: the (pixel, channel) slab is contiguous,
            // so the gather is the shared clipped copy with elem = C.
            crate::pack::fill_row_clipped(&image[row0..row0 + w * c], iw0, w, c, dst);
        } else {
            for col in 0..win {
                let iw = iw0 + col as isize;
                let d = &mut dst[col * tcb..(col + 1) * tcb];
                if iw < 0 || iw as usize >= w {
                    d.fill(0.0);
                } else {
                    let src = row0 + iw as usize * c + ct;
                    d.copy_from_slice(&image[src..src + tcb]);
                }
            }
        }
    }
}

/// The NHWC micro-kernel: `VW` pixels × `VKV·4` channels. Both operands
/// stream linearly per tap; the output is stored as contiguous vectors.
#[allow(clippy::too_many_arguments)]
fn kernel_nhwc<const VW: usize, const VKV: usize, const STRIDE: usize>(
    buf: &[f32],
    tf: &[f32],
    shape_r: usize,
    shape_s: usize,
    tcb: usize,
    win: usize,
    out_row: &SharedSlice<'_, f32>,
    obase: usize,
    kdim: usize,
    valid_k: usize,
) {
    let vk = VKV * 4;
    let mut acc = [[F32x4::zero(); VKV]; VW];
    for rr in 0..shape_r {
        let brow = &buf[rr * win * tcb..(rr + 1) * win * tcb];
        for ss in 0..shape_s {
            let tap = &tf[((rr * shape_s + ss) * tcb) * vk..((rr * shape_s + ss) * tcb + tcb) * vk];
            for cc in 0..tcb {
                let frow = &tap[cc * vk..(cc + 1) * vk];
                let mut fv = [F32x4::zero(); VKV];
                for (j, v) in fv.iter_mut().enumerate() {
                    *v = F32x4::load(&frow[j * 4..]);
                }
                for (wi, accw) in acc.iter_mut().enumerate() {
                    let x = F32x4::splat(brow[(wi * STRIDE + ss) * tcb + cc]);
                    for j in 0..VKV {
                        accw[j] = accw[j].fma(fv[j], x);
                    }
                }
            }
        }
    }
    // Contiguous vector read-add-write per pixel; K-tail masked.
    for (wi, accw) in acc.iter().enumerate() {
        let o = obase + wi * kdim;
        if valid_k == vk {
            for (j, v) in accw.iter().enumerate() {
                // SAFETY: this (K-range × row) region has a single writer
                // under the driver's thread grid.
                let dst = unsafe { out_row.range_mut(o + j * 4, 4) };
                let sum = F32x4::load(dst).add(*v);
                sum.store(dst);
            }
        } else {
            for (j, v) in accw.iter().enumerate() {
                let lanes = v.to_array();
                for (l, &x) in lanes.iter().enumerate() {
                    if j * 4 + l < valid_k {
                        // SAFETY: single writer (see above).
                        unsafe { out_row.add_assign(o + j * 4 + l, x) };
                    }
                }
            }
        }
    }
}

/// Dynamic-width fallback for `Q` tails and exotic schedules.
#[allow(clippy::too_many_arguments)]
fn kernel_nhwc_dyn(
    buf: &[f32],
    tf: &[f32],
    shape_r: usize,
    shape_s: usize,
    stride: usize,
    tcb: usize,
    win: usize,
    out_row: &SharedSlice<'_, f32>,
    obase: usize,
    kdim: usize,
    valid_w: usize,
    vk: usize,
    valid_k: usize,
) {
    const VW_MAX: usize = crate::kernel::VW_MAX;
    const VKV_MAX: usize = crate::kernel::VKV_MAX;
    let vkv = vk / 4;
    assert!(valid_w <= VW_MAX && vkv <= VKV_MAX, "dyn kernel bounds");
    let mut acc = [[F32x4::zero(); VKV_MAX]; VW_MAX];
    for rr in 0..shape_r {
        let brow = &buf[rr * win * tcb..(rr + 1) * win * tcb];
        for ss in 0..shape_s {
            let tap = &tf[((rr * shape_s + ss) * tcb) * vk..((rr * shape_s + ss) * tcb + tcb) * vk];
            for cc in 0..tcb {
                let frow = &tap[cc * vk..(cc + 1) * vk];
                for (wi, accw) in acc.iter_mut().enumerate().take(valid_w) {
                    let x = F32x4::splat(brow[(wi * stride + ss) * tcb + cc]);
                    for (j, a) in accw.iter_mut().enumerate().take(vkv) {
                        *a = a.fma(F32x4::load(&frow[j * 4..]), x);
                    }
                }
            }
        }
    }
    for (wi, accw) in acc.iter().enumerate().take(valid_w) {
        let o = obase + wi * kdim;
        for (j, v) in accw.iter().enumerate().take(vkv) {
            let lanes = v.to_array();
            for (l, &x) in lanes.iter().enumerate() {
                if j * 4 + l < valid_k {
                    // SAFETY: single writer per (K-range × row) region.
                    unsafe { out_row.add_assign(o + j * 4 + l, x) };
                }
            }
        }
    }
}

macro_rules! nhwc_dispatch {
    ($vw:literal, $vkv:literal, $args:expr) => {{
        let (buf, tf, r, s, stride, tcb, win, out, obase, kdim, vk_valid) = $args;
        match stride {
            1 => {
                kernel_nhwc::<$vw, $vkv, 1>(buf, tf, r, s, tcb, win, out, obase, kdim, vk_valid);
                return;
            }
            2 => {
                kernel_nhwc::<$vw, $vkv, 2>(buf, tf, r, s, tcb, win, out, obase, kdim, vk_valid);
                return;
            }
            _ => {}
        }
    }};
}

#[allow(clippy::too_many_arguments)]
fn run_nhwc_tile(
    buf: &[f32],
    tf: &[f32],
    shape: &ConvShape,
    tcb: usize,
    win: usize,
    out_row: &SharedSlice<'_, f32>,
    obase: usize,
    kdim: usize,
    valid_w: usize,
    vk: usize,
    valid_k: usize,
) {
    let (r, s, stride) = (shape.r, shape.s, shape.stride);
    if valid_k <= vk {
        let args = (buf, tf, r, s, stride, tcb, win, out_row, obase, kdim, valid_k);
        match (valid_w, vk / 4) {
            (4, 1) => nhwc_dispatch!(4, 1, args),
            (4, 2) => nhwc_dispatch!(4, 2, args),
            (4, 3) => nhwc_dispatch!(4, 3, args),
            (8, 1) => nhwc_dispatch!(8, 1, args),
            (8, 2) => nhwc_dispatch!(8, 2, args),
            (8, 3) => nhwc_dispatch!(8, 3, args),
            (12, 1) => nhwc_dispatch!(12, 1, args),
            (12, 2) => nhwc_dispatch!(12, 2, args),
            (12, 3) => nhwc_dispatch!(12, 3, args),
            _ => {}
        }
    }
    kernel_nhwc_dyn(
        buf, tf, shape.r, shape.s, shape.stride, tcb, win, out_row, obase, kdim, valid_w, vk,
        valid_k,
    );
}

/// Native-`NHWC` nDirect convolution with an explicit schedule.
///
/// `input` is `NHWC`, `filter` is `KRSC` (the pairing XNNPACK-era
/// frameworks use); the output is `NHWC`.
pub fn conv_ndirect_nhwc_with(
    pool: &StaticPool,
    input: &Tensor4,
    filter: &Filter,
    shape: &ConvShape,
    schedule: &Schedule,
) -> Tensor4 {
    try_conv_ndirect_nhwc_with(pool, input, filter, shape, schedule)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`conv_ndirect_nhwc_with`]: malformed shapes,
/// layout/dimension mismatches and pool faults come back as typed
/// [`Error`]s.
pub fn try_conv_ndirect_nhwc_with(
    pool: &StaticPool,
    input: &Tensor4,
    filter: &Filter,
    shape: &ConvShape,
    schedule: &Schedule,
) -> Result<Tensor4, Error> {
    shape.validate()?;
    check::act_layout(input, ActLayout::Nhwc, "native NHWC entry takes NHWC")?;
    check::filter_layout(filter, FilterLayout::Krsc, "native NHWC entry takes KRSC")?;
    check::dims(
        "input dims",
        (shape.n, shape.c, shape.h, shape.w),
        input.dims(),
    )?;
    check::dims(
        "filter dims",
        (shape.k, shape.c, shape.r, shape.s),
        filter.dims(),
    )?;
    let sched = schedule.sanitized(shape);
    if sched.grid.threads() > pool.size() {
        return Err(Error::GridExceedsPool {
            needed: sched.grid.threads(),
            available: pool.size(),
        });
    }
    let (p, q) = (shape.p(), shape.q());
    let mut out = Tensor4::zeros(shape.n, shape.k, p, q, ActLayout::Nhwc);

    // Per-thread scratch, preallocated so failure is a typed error (the
    // NHWC strip/transform buffers have the same sizes as the NCHW ones).
    let scratch = crate::conv::try_alloc_scratch(&sched, shape, sched.grid.threads())
        .map_err(|elements| Error::ScratchAlloc { elements })?;

    let grid = sched.grid;
    let kv_total = shape.k.div_ceil(sched.vk);
    let in_data = input.as_slice();
    let image_len = shape.h * shape.w * shape.c;
    let kdim = shape.k;

    let out_shared = SharedSlice::new(out.as_mut_slice());
    pool.try_run(|tid| {
        if tid >= grid.threads() {
            return;
        }
        let (tn, tk) = grid.coords(tid);
        let kvr = split_static(kv_total, grid.ptk(), tk);
        let k_lo = kvr.start * sched.vk;
        let k_hi = (kvr.end * sched.vk).min(shape.k);
        if k_lo >= k_hi {
            return;
        }
        let rows = split_static(shape.n * p, grid.ptn(), tn);
        if rows.is_empty() {
            return;
        }
        // Disjointness: (K-range × row-range) output regions are unique
        // per thread; the pool barrier orders writes. NHWC writes are
        // K-segments of pixels within the thread's own rows.
        let out_all = &out_shared;

        let mut guard = scratch[tid]
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let crate::conv::Scratch {
            bbuf: ref mut buf,
            ref mut tfbuf,
        } = *guard;

        // Loop order mirrors Algorithm 2: cache tiles outermost so each
        // filter-block transform amortizes over every row and strip the
        // thread owns.
        let mut ct = 0;
        while ct < shape.c {
            let tcb = sched.tc.min(shape.c - ct);
            let tf_block_len = shape.r * shape.s * tcb * sched.vk;
            let mut kt = k_lo;
            while kt < k_hi {
                let tkb = sched.tk.min(k_hi - kt);
                let kv_blocks = tkb.div_ceil(sched.vk);
                transform_filter_nhwc_block(filter, kt, tkb, ct, tcb, sched.vk, tfbuf);
                for row in rows.clone() {
                    let n = row / p;
                    let oh = row % p;
                    let image = &in_data[n * image_len..(n + 1) * image_len];
                    let ih0 = (oh * shape.stride) as isize - shape.pad.h as isize;
                    let mut wv = 0;
                    while wv < q {
                        let valid_w = sched.vw.min(q - wv);
                        let win = (valid_w - 1) * shape.stride + shape.s;
                        let iw0 = (wv * shape.stride) as isize - shape.pad.w as isize;
                        pack_strip_nhwc(image, shape, ct, tcb, ih0, iw0, win, buf);
                        for kv in 0..kv_blocks {
                            let k0 = kt + kv * sched.vk;
                            let valid_k = sched.vk.min(k_hi - k0);
                            run_nhwc_tile(
                                buf,
                                &tfbuf[kv * tf_block_len..(kv + 1) * tf_block_len],
                                shape,
                                tcb,
                                win,
                                out_all,
                                ((n * p + oh) * q + wv) * kdim + k0,
                                kdim,
                                valid_w,
                                sched.vk,
                                valid_k,
                            );
                        }
                        wv += sched.vw;
                    }
                }
                kt += sched.tk;
            }
            ct += sched.tc;
        }
    })?;
    Ok(out)
}

/// Native-`NHWC` nDirect with a model-derived schedule.
pub fn conv_ndirect_nhwc_native(
    pool: &StaticPool,
    input: &Tensor4,
    filter: &Filter,
    shape: &ConvShape,
) -> Tensor4 {
    try_conv_ndirect_nhwc_native(pool, input, filter, shape).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`conv_ndirect_nhwc_native`].
pub fn try_conv_ndirect_nhwc_native(
    pool: &StaticPool,
    input: &Tensor4,
    filter: &Filter,
    shape: &ConvShape,
) -> Result<Tensor4, Error> {
    shape.validate()?;
    let schedule = Schedule::derive(&ndirect_platform::host(), shape, pool.size());
    try_conv_ndirect_nhwc_with(pool, input, filter, shape, &schedule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndirect_baselines::naive;
    use ndirect_tensor::{assert_close, fill, Padding};
    use ndirect_threads::Grid2;

    fn problem(shape: &ConvShape, seed: u64) -> (Tensor4, Filter) {
        (
            fill::random_tensor(Tensor4::input_for(shape, ActLayout::Nhwc), seed),
            fill::random_filter(Filter::for_shape(shape, FilterLayout::Krsc), seed),
        )
    }

    fn check(shape: ConvShape, sched: &Schedule, threads: usize, what: &str) {
        let (input, filter) = problem(&shape, 23);
        let expect = naive::conv_ref(&input, &filter, &shape);
        let pool = StaticPool::new(threads);
        let got = conv_ndirect_nhwc_with(&pool, &input, &filter, &shape, sched);
        assert_eq!(got.layout(), ActLayout::Nhwc);
        assert_close(got.as_slice(), expect.as_slice(), 2e-4, what);
    }

    #[test]
    fn matches_oracle_basic() {
        let shape = ConvShape::new(1, 5, 9, 11, 8, 3, 3, 1, Padding::same(1));
        check(shape, &Schedule::minimal(&shape), 1, "nhwc basic");
    }

    #[test]
    fn matches_oracle_channel_tiling() {
        // tc < C exercises the strided pack path.
        let shape = ConvShape::new(1, 10, 8, 8, 8, 3, 3, 1, Padding::NONE);
        let mut s = Schedule::minimal(&shape);
        s.tc = 3;
        check(shape, &s, 1, "nhwc channel tiles");
    }

    #[test]
    fn matches_oracle_strided_and_tails() {
        // K=13 (vk tail), Q tail, stride 2, padding.
        let shape = ConvShape::new(2, 6, 9, 13, 13, 3, 3, 2, Padding::same(1));
        let mut s = Schedule::minimal(&shape);
        s.vw = 4;
        s.vk = 8;
        s.tk = 8;
        check(shape, &s, 1, "nhwc tails");
    }

    #[test]
    fn matches_oracle_pointwise_and_7x7() {
        let shape = ConvShape::new(1, 8, 6, 10, 12, 1, 1, 1, Padding::NONE);
        check(shape, &Schedule::minimal(&shape), 1, "nhwc 1x1");
        let shape = ConvShape::new(1, 3, 12, 12, 6, 7, 7, 2, Padding::same(3));
        check(shape, &Schedule::minimal(&shape), 1, "nhwc 7x7");
    }

    #[test]
    fn thread_grids_bitwise_identical() {
        let shape = ConvShape::new(2, 8, 10, 10, 16, 3, 3, 1, Padding::same(1));
        let (input, filter) = problem(&shape, 29);
        let base = conv_ndirect_nhwc_with(
            &StaticPool::new(1),
            &input,
            &filter,
            &shape,
            &Schedule::minimal(&shape),
        );
        for (ptn, ptk) in [(2, 1), (1, 2), (2, 2), (4, 1)] {
            let pool = StaticPool::new(ptn * ptk);
            let sched = Schedule::minimal(&shape).with_grid(Grid2::new(ptn, ptk));
            let got = conv_ndirect_nhwc_with(&pool, &input, &filter, &shape, &sched);
            assert_eq!(got.as_slice(), base.as_slice(), "grid {ptn}x{ptk}");
        }
    }

    #[test]
    fn derived_schedule_entry_point() {
        let shape = ConvShape::square(1, 16, 24, 12, 3, 1);
        let (input, filter) = problem(&shape, 31);
        let expect = naive::conv_ref(&input, &filter, &shape);
        let pool = StaticPool::new(2);
        let got = conv_ndirect_nhwc_native(&pool, &input, &filter, &shape);
        assert_close(got.as_slice(), expect.as_slice(), 2e-4, "derived nhwc");
    }

    #[test]
    fn filter_transform_nhwc_layout() {
        let mut f = Filter::zeros(8, 2, 1, 1, FilterLayout::Krsc);
        for k in 0..8 {
            *f.at_mut(k, 0, 0, 0) = k as f32;
            *f.at_mut(k, 1, 0, 0) = 100.0 + k as f32;
        }
        let mut out = vec![0.0; 2 * 2 * 4];
        transform_filter_nhwc_block(&f, 0, 8, 0, 2, 4, &mut out);
        // [kv=0][r=0][s=0][c=0][vk]: k=0..4 at c=0.
        assert_eq!(&out[0..4], &[0.0, 1.0, 2.0, 3.0]);
        // c=1 follows.
        assert_eq!(&out[4..8], &[100.0, 101.0, 102.0, 103.0]);
        // kv=1: k=4..8.
        assert_eq!(&out[8..12], &[4.0, 5.0, 6.0, 7.0]);
    }
}

//! Native `NHWC` nDirect convolution.
//!
//! The paper claims nDirect "preserves the conventional `NCHW` and `NHWC`
//! data layouts" and presents the `NCHW` variant in detail. This module is
//! the `NHWC` sibling, built from the same ingredients with the layout's
//! natural advantages:
//!
//! * the register tile is the same `Vw` pixels × `Vk` output channels, but
//!   the output store is **contiguous vectors** (channels are innermost in
//!   `NHWC`), so the scatter of the `NCHW` kernel becomes vector
//!   read-add-writes;
//! * the filter transform is `KRSC → [kv][r][s][c][Vk]` — for a fixed tap
//!   `(r, s)` the kernel streams `(c, Vk)` blocks linearly;
//! * the packed strip keeps `NHWC`'s `[row][pixel][channel]` interleaving
//!   (`[r][win][Tc]`), so interior rows pack with one `memcpy` when the
//!   channel tile covers all of `C`.
//!
//! Parallelization and cache tiling reuse the same [`crate::Schedule`]
//! machinery as the `NCHW` path.

use ndirect_simd::{F32x4, SimdVec};
use ndirect_tensor::{ActLayout, ConvShape, Filter, FilterLayout, Tensor4};
use ndirect_threads::{SharedSlice, StaticPool};

use crate::error::{check, Error};
use crate::schedule::Schedule;

/// Transforms the filter block `k ∈ [kt, kt+tkb)`, `c ∈ [ct, ct+tcb)` into
/// `[kv][r][s][c][Vk]` (zero-padded `K` remainder). Accepts either filter
/// layout (it reads through logical indexing).
pub fn transform_filter_nhwc_block(
    filter: &Filter,
    kt: usize,
    tkb: usize,
    ct: usize,
    tcb: usize,
    vk: usize,
    out: &mut [f32],
) {
    let (k, c, r, s) = filter.dims();
    // AUDIT: allow(hotpath-no-panic) O(1) shape guard at block entry.
    assert!(kt + tkb <= k && ct + tcb <= c, "block out of range");
    let kvb = tkb.div_ceil(vk);
    // AUDIT: allow(hotpath-no-panic) O(1) guard protecting the unchecked
    // transform loop below; a failure is a planner sizing bug.
    assert!(out.len() >= kvb * r * s * tcb * vk, "transform buffer too small");
    for kv in 0..kvb {
        let lanes = vk.min(tkb - kv * vk);
        for rr in 0..r {
            for ss in 0..s {
                for cc in 0..tcb {
                    let base = (((kv * r + rr) * s + ss) * tcb + cc) * vk;
                    let dst = &mut out[base..base + vk];
                    for (l, d) in dst.iter_mut().enumerate().take(lanes) {
                        *d = filter.at(kt + kv * vk + l, ct + cc, rr, ss);
                    }
                    for d in dst[lanes..].iter_mut() {
                        *d = 0.0;
                    }
                }
            }
        }
    }
}

/// A whole `KRSC` filter pre-transformed for the `NHWC` kernel — the plan
/// layer's packed-once form.
///
/// The on-the-fly `NHWC` block layout is `[kv][r][s][c_local][Vk]` with the
/// channel tile *inside* the taps, so a full-`C` transform would not yield
/// contiguous sub-blocks for a channel window (the per-tap stride differs).
/// Instead the transform is tiled by the schedule's `Tc` at build time: for
/// each channel tile `ct` it stores every global `kv` group in block layout,
/// bitwise identical to what [`transform_filter_nhwc_block`] produces for
/// that tile (`K`-tail lanes coincide because thread `K` ranges split at
/// `Vk` granularity).
pub struct TransformedFilterNhwc {
    data: ndirect_tensor::AlignedBuf,
    /// Start offset of each `ct`-tile's region in `data`.
    offsets: Vec<usize>,
    /// The channel tile the transform was built for (must match execution).
    tc: usize,
    c: usize,
    r: usize,
    s: usize,
    vk: usize,
}

impl TransformedFilterNhwc {
    /// Transforms the whole filter, tiled by `tc`. Returns `Err(elements)`
    /// on size overflow or allocator refusal.
    pub fn try_new(filter: &Filter, vk: usize, tc: usize) -> Result<Self, usize> {
        let (k, c, r, s) = filter.dims();
        assert!(vk >= 1 && tc >= 1);
        let kvb = k.div_ceil(vk);
        // Tiles concatenate to exactly kvb·r·s·vk floats per channel.
        let total = kvb
            .checked_mul(r)
            .and_then(|x| x.checked_mul(s))
            .and_then(|x| x.checked_mul(vk))
            .and_then(|x| x.checked_mul(c))
            .ok_or(usize::MAX)?;
        let mut data = ndirect_tensor::AlignedBuf::try_zeroed(total)?;
        let mut offsets = Vec::new();
        let mut off = 0;
        let mut ct = 0;
        while ct < c {
            let tcb = tc.min(c - ct);
            let len = kvb * r * s * tcb * vk;
            transform_filter_nhwc_block(filter, 0, k, ct, tcb, vk, &mut data[off..off + len]);
            offsets.push(off);
            off += len;
            ct += tc;
        }
        Ok(Self {
            data,
            offsets,
            tc,
            c,
            r,
            s,
            vk,
        })
    }

    /// The `[r][s][tcb][vk]` block for the channel tile starting at `ct`
    /// (which must be a multiple of the build-time `tc`) and the *global*
    /// `kv` group.
    pub fn block(&self, ct: usize, tcb: usize, kv: usize) -> &[f32] {
        debug_assert_eq!(ct % self.tc, 0, "ct must be a tile boundary");
        debug_assert!(ct + tcb <= self.c);
        let blk = self.r * self.s * tcb * self.vk;
        // INDEX: ct < c and tc divides ct (asserted above), so
        // ct / tc < offsets.len() — one offset per tile boundary.
        let start = self.offsets[ct / self.tc] + kv * blk;
        &self.data[start..start + blk]
    }

    /// The channel tile the transform is laid out for.
    pub fn tile_c(&self) -> usize {
        self.tc
    }

    /// Total floats (for memory accounting).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the transform holds no data.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// Packs one strip: `R` rows of `win` pixels × `tcb` channels from an
/// `NHWC` image into `buf[r][col][c_local]`, zero-filling padding.
#[allow(clippy::too_many_arguments)]
pub(crate) fn pack_strip_nhwc(
    image: &[f32],
    shape: &ConvShape,
    ct: usize,
    tcb: usize,
    ih0: isize,
    iw0: isize,
    win: usize,
    buf: &mut [f32],
) {
    let (h, w, c) = (shape.h, shape.w, shape.c);
    for rr in 0..shape.r {
        let ih = ih0 + rr as isize;
        let dst = &mut buf[rr * win * tcb..(rr + 1) * win * tcb];
        if ih < 0 || ih as usize >= h {
            dst.fill(0.0);
            continue;
        }
        let row0 = ih as usize * w * c;
        if tcb == c {
            // Full channel tile: the (pixel, channel) slab is contiguous,
            // so the gather is the shared clipped copy with elem = C.
            crate::pack::fill_row_clipped(&image[row0..row0 + w * c], iw0, w, c, dst);
        } else {
            for col in 0..win {
                let iw = iw0 + col as isize;
                let d = &mut dst[col * tcb..(col + 1) * tcb];
                if iw < 0 || iw as usize >= w {
                    d.fill(0.0);
                } else {
                    let src = row0 + iw as usize * c + ct;
                    d.copy_from_slice(&image[src..src + tcb]);
                }
            }
        }
    }
}

/// The NHWC micro-kernel: `VW` pixels × `VKV·4` channels. Both operands
/// stream linearly per tap; the output is stored as contiguous vectors.
#[allow(clippy::too_many_arguments)]
fn kernel_nhwc<const VW: usize, const VKV: usize, const STRIDE: usize>(
    buf: &[f32],
    tf: &[f32],
    shape_r: usize,
    shape_s: usize,
    tcb: usize,
    win: usize,
    out_row: &SharedSlice<'_, f32>,
    obase: usize,
    kdim: usize,
    valid_k: usize,
) {
    let vk = VKV * 4;
    let mut acc = [[F32x4::zero(); VKV]; VW];
    for rr in 0..shape_r {
        let brow = &buf[rr * win * tcb..(rr + 1) * win * tcb];
        for ss in 0..shape_s {
            let tap = &tf[((rr * shape_s + ss) * tcb) * vk..((rr * shape_s + ss) * tcb + tcb) * vk];
            for cc in 0..tcb {
                let frow = &tap[cc * vk..(cc + 1) * vk];
                let mut fv = [F32x4::zero(); VKV];
                for (j, v) in fv.iter_mut().enumerate() {
                    *v = F32x4::load(&frow[j * 4..]);
                }
                for (wi, accw) in acc.iter_mut().enumerate() {
                    let x = F32x4::splat(brow[(wi * STRIDE + ss) * tcb + cc]);
                    for j in 0..VKV {
                        accw[j] = accw[j].fma(fv[j], x);
                    }
                }
            }
        }
    }
    // Contiguous vector read-add-write per pixel; K-tail masked.
    for (wi, accw) in acc.iter().enumerate() {
        let o = obase + wi * kdim;
        if valid_k == vk {
            for (j, v) in accw.iter().enumerate() {
                // SAFETY: this (K-range × row) region has a single writer
                // under the driver's thread grid.
                let dst = unsafe { out_row.range_mut(o + j * 4, 4) };
                let sum = F32x4::load(dst).add(*v);
                sum.store(dst);
            }
        } else {
            for (j, v) in accw.iter().enumerate() {
                let lanes = v.to_array();
                for (l, &x) in lanes.iter().enumerate() {
                    if j * 4 + l < valid_k {
                        // SAFETY: single writer (see above).
                        unsafe { out_row.add_assign(o + j * 4 + l, x) };
                    }
                }
            }
        }
    }
}

/// Dynamic-width fallback for `Q` tails and exotic schedules.
#[allow(clippy::too_many_arguments)]
fn kernel_nhwc_dyn(
    buf: &[f32],
    tf: &[f32],
    shape_r: usize,
    shape_s: usize,
    stride: usize,
    tcb: usize,
    win: usize,
    out_row: &SharedSlice<'_, f32>,
    obase: usize,
    kdim: usize,
    valid_w: usize,
    vk: usize,
    valid_k: usize,
) {
    const VW_MAX: usize = crate::kernel::VW_MAX;
    const VKV_MAX: usize = crate::kernel::VKV_MAX;
    let vkv = vk / 4;
    // AUDIT: allow(hotpath-no-panic) O(1) tile-entry guard sizing the
    // fixed accumulator array; every `acc` subscript below relies on it.
    assert!(valid_w <= VW_MAX && vkv <= VKV_MAX, "dyn kernel bounds");
    let mut acc = [[F32x4::zero(); VKV_MAX]; VW_MAX];
    for rr in 0..shape_r {
        let brow = &buf[rr * win * tcb..(rr + 1) * win * tcb];
        for ss in 0..shape_s {
            let tap = &tf[((rr * shape_s + ss) * tcb) * vk..((rr * shape_s + ss) * tcb + tcb) * vk];
            for cc in 0..tcb {
                let frow = &tap[cc * vk..(cc + 1) * vk];
                for (wi, accw) in acc.iter_mut().enumerate().take(valid_w) {
                    // INDEX: packed NHWC rows span win*tcb floats and
                    // wi*stride + ss < win by the valid_w clamp; cc < tcb.
                    let x = F32x4::splat(brow[(wi * stride + ss) * tcb + cc]);
                    for (j, a) in accw.iter_mut().enumerate().take(vkv) {
                        *a = a.fma(F32x4::load(&frow[j * 4..]), x);
                    }
                }
            }
        }
    }
    for (wi, accw) in acc.iter().enumerate().take(valid_w) {
        let o = obase + wi * kdim;
        for (j, v) in accw.iter().enumerate().take(vkv) {
            let lanes = v.to_array();
            for (l, &x) in lanes.iter().enumerate() {
                if j * 4 + l < valid_k {
                    // SAFETY: single writer per (K-range × row) region.
                    unsafe { out_row.add_assign(o + j * 4 + l, x) };
                }
            }
        }
    }
}

macro_rules! nhwc_dispatch {
    ($vw:literal, $vkv:literal, $args:expr) => {{
        let (buf, tf, r, s, stride, tcb, win, out, obase, kdim, vk_valid) = $args;
        match stride {
            1 => {
                kernel_nhwc::<$vw, $vkv, 1>(buf, tf, r, s, tcb, win, out, obase, kdim, vk_valid);
                return;
            }
            2 => {
                kernel_nhwc::<$vw, $vkv, 2>(buf, tf, r, s, tcb, win, out, obase, kdim, vk_valid);
                return;
            }
            _ => {}
        }
    }};
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn run_nhwc_tile(
    buf: &[f32],
    tf: &[f32],
    shape: &ConvShape,
    tcb: usize,
    win: usize,
    out_row: &SharedSlice<'_, f32>,
    obase: usize,
    kdim: usize,
    valid_w: usize,
    vk: usize,
    valid_k: usize,
) {
    let (r, s, stride) = (shape.r, shape.s, shape.stride);
    if valid_k <= vk {
        let args = (buf, tf, r, s, stride, tcb, win, out_row, obase, kdim, valid_k);
        match (valid_w, vk / 4) {
            (4, 1) => nhwc_dispatch!(4, 1, args),
            (4, 2) => nhwc_dispatch!(4, 2, args),
            (4, 3) => nhwc_dispatch!(4, 3, args),
            (8, 1) => nhwc_dispatch!(8, 1, args),
            (8, 2) => nhwc_dispatch!(8, 2, args),
            (8, 3) => nhwc_dispatch!(8, 3, args),
            (12, 1) => nhwc_dispatch!(12, 1, args),
            (12, 2) => nhwc_dispatch!(12, 2, args),
            (12, 3) => nhwc_dispatch!(12, 3, args),
            _ => {}
        }
    }
    kernel_nhwc_dyn(
        buf, tf, shape.r, shape.s, shape.stride, tcb, win, out_row, obase, kdim, valid_w, vk,
        valid_k,
    );
}

/// Native-`NHWC` nDirect convolution with an explicit schedule.
///
/// `input` is `NHWC`, `filter` is `KRSC` (the pairing XNNPACK-era
/// frameworks use); the output is `NHWC`.
pub fn conv_ndirect_nhwc_with(
    pool: &StaticPool,
    input: &Tensor4,
    filter: &Filter,
    shape: &ConvShape,
    schedule: &Schedule,
) -> Tensor4 {
    try_conv_ndirect_nhwc_with(pool, input, filter, shape, schedule)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`conv_ndirect_nhwc_with`]: malformed shapes,
/// layout/dimension mismatches and pool faults come back as typed
/// [`Error`]s.
pub fn try_conv_ndirect_nhwc_with(
    pool: &StaticPool,
    input: &Tensor4,
    filter: &Filter,
    shape: &ConvShape,
    schedule: &Schedule,
) -> Result<Tensor4, Error> {
    shape.validate()?;
    check::act_layout(input, ActLayout::Nhwc, "native NHWC entry takes NHWC")?;
    check::filter_layout(filter, FilterLayout::Krsc, "native NHWC entry takes KRSC")?;
    check::dims(
        "input dims",
        (shape.n, shape.c, shape.h, shape.w),
        input.dims(),
    )?;
    check::dims(
        "filter dims",
        (shape.k, shape.c, shape.r, shape.s),
        filter.dims(),
    )?;
    let sched = schedule.sanitized(shape);
    if sched.grid.threads() > pool.size() {
        return Err(Error::GridExceedsPool {
            needed: sched.grid.threads(),
            available: pool.size(),
        });
    }
    let (p, q) = (shape.p(), shape.q());
    let mut out = Tensor4::zeros(shape.n, shape.k, p, q, ActLayout::Nhwc);

    // Thin wrapper since the plan layer exists: build a throwaway plan
    // borrowing the filter (on-the-fly transform, zero-copy) and execute
    // it once. Repeated callers build a [`crate::ConvPlan`] themselves.
    let plan = crate::plan::ConvPlan::try_borrowed_nhwc(shape, filter, schedule)?;
    plan.execute(pool, input, &mut out)?;
    Ok(out)
}

/// Native-`NHWC` nDirect with a model-derived schedule.
pub fn conv_ndirect_nhwc_native(
    pool: &StaticPool,
    input: &Tensor4,
    filter: &Filter,
    shape: &ConvShape,
) -> Tensor4 {
    try_conv_ndirect_nhwc_native(pool, input, filter, shape).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`conv_ndirect_nhwc_native`].
pub fn try_conv_ndirect_nhwc_native(
    pool: &StaticPool,
    input: &Tensor4,
    filter: &Filter,
    shape: &ConvShape,
) -> Result<Tensor4, Error> {
    shape.validate()?;
    let schedule = Schedule::derive(&ndirect_platform::host(), shape, pool.size());
    try_conv_ndirect_nhwc_with(pool, input, filter, shape, &schedule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndirect_baselines::naive;
    use ndirect_tensor::{assert_close, fill, Padding};
    use ndirect_threads::Grid2;

    fn problem(shape: &ConvShape, seed: u64) -> (Tensor4, Filter) {
        (
            fill::random_tensor(Tensor4::input_for(shape, ActLayout::Nhwc), seed),
            fill::random_filter(Filter::for_shape(shape, FilterLayout::Krsc), seed),
        )
    }

    fn check(shape: ConvShape, sched: &Schedule, threads: usize, what: &str) {
        let (input, filter) = problem(&shape, 23);
        let expect = naive::conv_ref(&input, &filter, &shape);
        let pool = StaticPool::new(threads);
        let got = conv_ndirect_nhwc_with(&pool, &input, &filter, &shape, sched);
        assert_eq!(got.layout(), ActLayout::Nhwc);
        assert_close(got.as_slice(), expect.as_slice(), 2e-4, what);
    }

    #[test]
    fn matches_oracle_basic() {
        let shape = ConvShape::new(1, 5, 9, 11, 8, 3, 3, 1, Padding::same(1));
        check(shape, &Schedule::minimal(&shape), 1, "nhwc basic");
    }

    #[test]
    fn matches_oracle_channel_tiling() {
        // tc < C exercises the strided pack path.
        let shape = ConvShape::new(1, 10, 8, 8, 8, 3, 3, 1, Padding::NONE);
        let mut s = Schedule::minimal(&shape);
        s.tc = 3;
        check(shape, &s, 1, "nhwc channel tiles");
    }

    #[test]
    fn matches_oracle_strided_and_tails() {
        // K=13 (vk tail), Q tail, stride 2, padding.
        let shape = ConvShape::new(2, 6, 9, 13, 13, 3, 3, 2, Padding::same(1));
        let mut s = Schedule::minimal(&shape);
        s.vw = 4;
        s.vk = 8;
        s.tk = 8;
        check(shape, &s, 1, "nhwc tails");
    }

    #[test]
    fn matches_oracle_pointwise_and_7x7() {
        let shape = ConvShape::new(1, 8, 6, 10, 12, 1, 1, 1, Padding::NONE);
        check(shape, &Schedule::minimal(&shape), 1, "nhwc 1x1");
        let shape = ConvShape::new(1, 3, 12, 12, 6, 7, 7, 2, Padding::same(3));
        check(shape, &Schedule::minimal(&shape), 1, "nhwc 7x7");
    }

    #[test]
    fn thread_grids_bitwise_identical() {
        let shape = ConvShape::new(2, 8, 10, 10, 16, 3, 3, 1, Padding::same(1));
        let (input, filter) = problem(&shape, 29);
        let base = conv_ndirect_nhwc_with(
            &StaticPool::new(1),
            &input,
            &filter,
            &shape,
            &Schedule::minimal(&shape),
        );
        for (ptn, ptk) in [(2, 1), (1, 2), (2, 2), (4, 1)] {
            let pool = StaticPool::new(ptn * ptk);
            let sched = Schedule::minimal(&shape).with_grid(Grid2::new(ptn, ptk));
            let got = conv_ndirect_nhwc_with(&pool, &input, &filter, &shape, &sched);
            assert_eq!(got.as_slice(), base.as_slice(), "grid {ptn}x{ptk}");
        }
    }

    #[test]
    fn derived_schedule_entry_point() {
        let shape = ConvShape::square(1, 16, 24, 12, 3, 1);
        let (input, filter) = problem(&shape, 31);
        let expect = naive::conv_ref(&input, &filter, &shape);
        let pool = StaticPool::new(2);
        let got = conv_ndirect_nhwc_native(&pool, &input, &filter, &shape);
        assert_close(got.as_slice(), expect.as_slice(), 2e-4, "derived nhwc");
    }

    #[test]
    fn filter_transform_nhwc_layout() {
        let mut f = Filter::zeros(8, 2, 1, 1, FilterLayout::Krsc);
        for k in 0..8 {
            *f.at_mut(k, 0, 0, 0) = k as f32;
            *f.at_mut(k, 1, 0, 0) = 100.0 + k as f32;
        }
        let mut out = vec![0.0; 2 * 2 * 4];
        transform_filter_nhwc_block(&f, 0, 8, 0, 2, 4, &mut out);
        // [kv=0][r=0][s=0][c=0][vk]: k=0..4 at c=0.
        assert_eq!(&out[0..4], &[0.0, 1.0, 2.0, 3.0]);
        // c=1 follows.
        assert_eq!(&out[4..8], &[100.0, 101.0, 102.0, 103.0]);
        // kv=1: k=4..8.
        assert_eq!(&out[8..12], &[4.0, 5.0, 6.0, 7.0]);
    }
}

//! Execution schedules: every tunable parameter of the nDirect algorithm.

use ndirect_platform::Platform;
use ndirect_support::{Json, JsonError};
use ndirect_tensor::ConvShape;
use ndirect_threads::{split_static, Grid2};

use crate::model;

/// How input packing interacts with computation (§5.3, Figure 5), extended
/// with the two zero-copy-leaning variants from the related work: the
/// zero-memory-overhead direct path (arXiv 1809.10170) and cache-resident
/// convolution slicing (arXiv 2303.04739).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PackingMode {
    /// The paper's optimization: the packing gather for each `(c, r)` row is
    /// fused with the first `kv` iteration's FMAs, so stores into the linear
    /// buffer overlap with computation.
    Fused,
    /// The conventional strategy (im2col-style): pack the whole strip into
    /// the buffer, then start computing. The Figure 5 ablation baseline.
    Sequential,
    /// Zero memory overhead: every `kv` iteration reads `NCHW` rows straight
    /// from the input tensor (rows are contiguous along `W`, so interior
    /// strips are plain slices; boundary strips run edge-masked kernels
    /// that skip out-of-image taps). `bytes_packed` is exactly 0 and no
    /// strip buffer is allocated.
    None,
    /// Convolution slicing: pack one cache-resident slab per `rows`-row
    /// slice of the `Th` tile (all strips and `Tk` tiles of the slice reuse
    /// it), instead of re-packing every strip per `Tk` tile. `rows` is the
    /// number of output rows per slab, sized by the analytic cache model
    /// ([`crate::model::slicing::slab_rows`]).
    Sliced {
        /// Output rows covered by one packed slab (clamped to `[1, Th]` by
        /// [`Schedule::sanitized`]).
        rows: usize,
    },
}

/// Whether the filter is transformed per cache block on the fly (the
/// paper's design, zero preprocessing between framework calls) or once
/// ahead of time (the ablation: what a weight-caching integration would do).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterState {
    /// Transform each `Tk × Tc` filter block inside loop L4 (Algorithm 2
    /// line 5). The transform cost is incurred once per block and amortized
    /// over the `L5 × L6` iterations.
    OnTheFly,
    /// Transform the whole filter before the main loops (excluded from the
    /// algorithm in the paper, measured as an ablation here).
    PreTransformed,
}

/// A complete parameterization of the nDirect convolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// Register-tile width: output pixels per micro-kernel call (`Vw`).
    pub vw: usize,
    /// Register-tile depth: output channels per micro-kernel call (`Vk`,
    /// a multiple of 4).
    pub vk: usize,
    /// Channel cache tile (`Tc`, Eq. 1 — L1 occupancy).
    pub tc: usize,
    /// Output-channel cache tile (`Tk`, Eq. 2 — L2 occupancy; multiple of
    /// `vk`).
    pub tk: usize,
    /// Output-row cache tile (`Th`, L3 occupancy; `P` when no L3).
    pub th: usize,
    /// Static thread grid `PTn × PTk` (Eqs. 5–6).
    pub grid: Grid2,
    /// Packing strategy.
    pub packing: PackingMode,
    /// Filter transform strategy.
    pub filter_state: FilterState,
    /// Software-prefetch the *next* `(c, r)` input row while the fused
    /// gather works on the current one. A pure latency hint: results are
    /// bitwise identical either way, and the scalar backend compiles the
    /// prefetch to a no-op, so the flag only changes timing.
    pub prefetch: bool,
}

impl Schedule {
    /// Derives the model-optimal schedule for `shape` on `platform` with
    /// `threads` threads — the pipeline the paper describes: register tile
    /// from Eqs. 3–4, cache tiles from Eqs. 1–2, thread grid from Eqs. 5–6.
    pub fn derive(platform: &Platform, shape: &ConvShape, threads: usize) -> Schedule {
        let (vw, vk) = model::register_tile::optimal_tile(&platform.simd, shape.s);
        let tiles = model::cache_tiles::derive(platform, shape, vw, vk);
        let grid = model::thread_map::derive(platform, shape, threads);
        Schedule {
            vw,
            vk,
            tc: tiles.tc,
            tk: tiles.tk,
            th: tiles.th,
            grid,
            packing: PackingMode::Fused,
            filter_state: FilterState::OnTheFly,
            prefetch: true,
        }
    }

    /// A small, always-valid schedule for tests: 4×4 register tile, modest
    /// cache tiles, sequential grid.
    pub fn minimal(shape: &ConvShape) -> Schedule {
        Schedule {
            vw: 4,
            vk: 4,
            tc: shape.c.min(8),
            tk: shape.k.clamp(4, 8),
            th: shape.p(),
            grid: Grid2::sequential(),
            packing: PackingMode::Fused,
            filter_state: FilterState::OnTheFly,
            prefetch: false,
        }
    }

    /// Clamps the schedule's tiles to a specific problem (tiles never exceed
    /// the dimension they tile) and normalizes granularities (`vk` multiple
    /// of 4, `tk` multiple of `vk`). Register tiles are clamped to the
    /// dynamic kernels' hard bounds (`VW_MAX`, `4·VKV_MAX`) so schedules
    /// derived for wider-vector platforms (e.g. the SVE analysis presets)
    /// still *execute* on the 4-lane kernels instead of panicking. Returns
    /// the sanitized copy used by the driver.
    pub fn sanitized(&self, shape: &ConvShape) -> Schedule {
        let mut s = self.clone();
        s.vk = (s.vk.max(4) / 4 * 4).min(4 * crate::kernel::VKV_MAX);
        s.vw = s.vw.clamp(1, crate::kernel::VW_MAX);
        s.tc = s.tc.clamp(1, shape.c);
        s.tk = s.tk.max(s.vk).min(shape.k.div_ceil(s.vk) * s.vk);
        s.tk = (s.tk / s.vk) * s.vk;
        s.th = s.th.clamp(1, shape.p());
        if let PackingMode::Sliced { rows } = s.packing {
            // A slab never spans more rows than the Th tile it slices.
            s.packing = PackingMode::Sliced { rows: rows.clamp(1, s.th) };
        }
        s
    }

    /// Total threads the schedule uses.
    pub fn threads(&self) -> usize {
        self.grid.threads()
    }

    /// Cache-model prediction of the bytes the drivers pack for one full
    /// convolution under this schedule: the analytic mirror of the loop
    /// nest, against which the probe's `bytes_packed` counter is asserted.
    ///
    /// Each `(output row, Tc tile, Tk tile, Vw strip)` packs
    /// `tcb·R·WIN` floats (`WIN = (valid_w−1)·stride + S`), in fused and
    /// sequential mode alike and for both layouts. Summing `tcb` over the
    /// `Tc` tiles gives `C`, so per thread the total is
    /// `|rows| · #Tk-tiles · C · R · Σ_strips WIN`; `#Tk-tiles` depends on
    /// the thread's K range (ranges split at `Vk` granularity across
    /// `PTk`), which is why the count is grid-dependent while the FLOP
    /// count ([`ConvShape::flops`]) is not.
    pub fn predicted_pack_bytes(&self, shape: &ConvShape) -> u128 {
        let s = self.sanitized(shape);
        let (p, q) = (shape.p(), shape.q());
        let kv_total = shape.k.div_ceil(s.vk);

        match s.packing {
            // The zero-overhead path never materializes an input copy.
            PackingMode::None => return 0,
            // Slicing packs one slab per (image, Th tile, slice) on each
            // thread with a non-empty K range: `C · slab_rows · row_win`
            // floats, with `row_win = (Q−1)·stride + S` spanning the whole
            // output row and `slab_rows = (slice_len−1)·stride + R` the
            // slice's input rows. Unlike the per-strip modes there is no
            // `#Tk-tiles` factor: the slab is packed above loop L4 and
            // reused by every `Tk` tile and strip of the slice.
            PackingMode::Sliced { rows: srows } => {
                let row_win = ((q - 1) * shape.stride + shape.s) as u128;
                let mut total_floats: u128 = 0;
                for tid in 0..s.grid.threads() {
                    let (tn, tk) = s.grid.coords(tid);
                    let kvr = split_static(kv_total, s.grid.ptk(), tk);
                    let k_lo = kvr.start * s.vk;
                    let k_hi = (kvr.end * s.vk).min(shape.k);
                    if k_lo >= k_hi {
                        continue;
                    }
                    let rows = split_static(shape.n * p, s.grid.ptn(), tn);
                    if rows.is_empty() {
                        continue;
                    }
                    let n_first = rows.start / p;
                    let n_last = (rows.end - 1) / p;
                    for n in n_first..=n_last {
                        let oh_lo = rows.start.saturating_sub(n * p).min(p);
                        let oh_hi = (rows.end - n * p).min(p);
                        let mut ht = oh_lo;
                        while ht < oh_hi {
                            let ht_end = (ht + s.th).min(oh_hi);
                            let mut sl = ht;
                            while sl < ht_end {
                                let sl_end = (sl + srows).min(ht_end);
                                let slab_rows =
                                    ((sl_end - sl - 1) * shape.stride + shape.r) as u128;
                                total_floats += shape.c as u128 * slab_rows * row_win;
                                sl = sl_end;
                            }
                            ht = ht_end;
                        }
                    }
                }
                return total_floats * std::mem::size_of::<f32>() as u128;
            }
            PackingMode::Fused | PackingMode::Sequential => {}
        }

        // Window widths summed over one row's strips.
        let mut win_sum: u128 = 0;
        let mut wv = 0;
        while wv < q {
            let valid_w = s.vw.min(q - wv);
            win_sum += ((valid_w - 1) * shape.stride + shape.s) as u128;
            wv += s.vw;
        }

        let mut total_floats: u128 = 0;
        for tid in 0..s.grid.threads() {
            let (tn, tk) = s.grid.coords(tid);
            let kvr = split_static(kv_total, s.grid.ptk(), tk);
            let k_lo = kvr.start * s.vk;
            let k_hi = (kvr.end * s.vk).min(shape.k);
            if k_lo >= k_hi {
                continue;
            }
            let rows = split_static(shape.n * p, s.grid.ptn(), tn);
            let kt_tiles = (k_hi - k_lo).div_ceil(s.tk) as u128;
            total_floats += rows.len() as u128
                * kt_tiles
                * shape.c as u128
                * shape.r as u128
                * win_sum;
        }
        total_floats * std::mem::size_of::<f32>() as u128
    }

    /// [`Schedule::predicted_pack_bytes`] narrowed to the `u64` that perf
    /// records serialize, saturating at `u64::MAX` instead of truncating.
    /// A prediction that large cannot correspond to a materializable
    /// buffer, so the clamp only ever marks "beyond measurement".
    pub fn predicted_pack_bytes_u64(&self, shape: &ConvShape) -> u64 {
        u64::try_from(self.predicted_pack_bytes(shape)).unwrap_or(u64::MAX)
    }

    /// Returns a copy with a different packing mode (ablation helper).
    pub fn with_packing(&self, packing: PackingMode) -> Schedule {
        let mut s = self.clone();
        s.packing = packing;
        s
    }

    /// Returns a copy with a different filter-transform strategy.
    pub fn with_filter_state(&self, filter_state: FilterState) -> Schedule {
        let mut s = self.clone();
        s.filter_state = filter_state;
        s
    }

    /// Returns a copy with a different thread grid.
    pub fn with_grid(&self, grid: Grid2) -> Schedule {
        let mut s = self.clone();
        s.grid = grid;
        s
    }

    /// JSON form for persistence (the autotune cache).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("vw".into(), Json::usize(self.vw)),
            ("vk".into(), Json::usize(self.vk)),
            ("tc".into(), Json::usize(self.tc)),
            ("tk".into(), Json::usize(self.tk)),
            ("th".into(), Json::usize(self.th)),
            ("grid".into(), self.grid.to_json()),
            ("packing".into(), Json::str(self.packing.encode())),
            ("filter_state".into(), Json::str(self.filter_state.as_str())),
            ("prefetch".into(), Json::Bool(self.prefetch)),
        ])
    }

    /// Parses the [`Schedule::to_json`] form; malformed or degenerate
    /// fields are typed errors, never panics.
    pub fn from_json(v: &Json) -> Result<Schedule, JsonError> {
        let field_err = |msg: String| JsonError { msg, at: 0 };
        let s = Schedule {
            vw: v.usize_field("vw")?,
            vk: v.usize_field("vk")?,
            tc: v.usize_field("tc")?,
            tk: v.usize_field("tk")?,
            th: v.usize_field("th")?,
            grid: Grid2::from_json(v.require("grid")?)?,
            packing: PackingMode::parse(v.str_field("packing")?)
                .ok_or_else(|| field_err("unknown packing mode".into()))?,
            filter_state: FilterState::parse(v.str_field("filter_state")?)
                .ok_or_else(|| field_err("unknown filter state".into()))?,
            // Optional for back-compat: caches written before the field
            // existed parse as prefetch-off.
            prefetch: match v.get("prefetch") {
                None => false,
                Some(f) => f
                    .as_bool()
                    .ok_or_else(|| field_err("prefetch must be a bool".into()))?,
            },
        };
        if s.vw == 0 || s.vk == 0 || s.tc == 0 || s.tk == 0 || s.th == 0 {
            return Err(field_err("schedule tiles must be >= 1".into()));
        }
        Ok(s)
    }
}

impl PackingMode {
    /// The variant's family name, without parameters (display / reports).
    pub fn as_str(&self) -> &'static str {
        match self {
            PackingMode::Fused => "fused",
            PackingMode::Sequential => "sequential",
            PackingMode::None => "none",
            PackingMode::Sliced { .. } => "sliced",
        }
    }

    /// Stable string form used by the JSON schedule encoding. Parameterized
    /// variants carry their parameter after a colon: `"sliced:<rows>"`.
    pub fn encode(&self) -> String {
        match self {
            PackingMode::Sliced { rows } => format!("sliced:{rows}"),
            other => other.as_str().to_string(),
        }
    }

    /// Inverse of [`PackingMode::encode`]. Unknown family names, a missing
    /// or non-numeric `sliced` row count, and `sliced:0` all return `None`
    /// (degenerate slabs are rejected at parse time, not silently clamped).
    pub fn parse(s: &str) -> Option<PackingMode> {
        match s {
            "fused" => Some(PackingMode::Fused),
            "sequential" => Some(PackingMode::Sequential),
            "none" => Some(PackingMode::None),
            _ => {
                let rows = s.strip_prefix("sliced:")?.parse::<usize>().ok()?;
                if rows == 0 {
                    return None;
                }
                Some(PackingMode::Sliced { rows })
            }
        }
    }
}

impl FilterState {
    /// Stable string form used by the JSON schedule encoding.
    pub fn as_str(&self) -> &'static str {
        match self {
            FilterState::OnTheFly => "on_the_fly",
            FilterState::PreTransformed => "pre_transformed",
        }
    }

    /// Inverse of [`FilterState::as_str`].
    pub fn parse(s: &str) -> Option<FilterState> {
        match s {
            "on_the_fly" => Some(FilterState::OnTheFly),
            "pre_transformed" => Some(FilterState::PreTransformed),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndirect_platform::phytium_2000p;

    #[test]
    fn derive_produces_paper_register_tile() {
        let shape = ConvShape::square(64, 128, 128, 28, 3, 1);
        let s = Schedule::derive(&phytium_2000p(), &shape, 64);
        assert_eq!((s.vw, s.vk), (12, 8), "paper's (Vw, Vk) for 3x3 on NEON");
    }

    #[test]
    fn sanitize_clamps_to_problem() {
        let shape = ConvShape::square(1, 3, 5, 8, 3, 1);
        let s = Schedule::derive(&phytium_2000p(), &shape, 4).sanitized(&shape);
        assert!(s.tc <= 3);
        assert!(s.th <= shape.p());
        assert_eq!(s.tk % s.vk, 0);
        assert!(s.tk >= s.vk);
    }

    #[test]
    fn minimal_schedule_is_self_consistent() {
        let shape = ConvShape::square(2, 16, 16, 10, 3, 1);
        let s = Schedule::minimal(&shape).sanitized(&shape);
        assert_eq!(s.vk % 4, 0);
        assert!(s.tc >= 1 && s.tc <= 16);
        assert_eq!(s.threads(), 1);
    }

    #[test]
    fn sve_derived_schedules_are_executable_after_sanitize() {
        // A schedule derived for the SVE analysis preset picks 16-lane
        // multiples; sanitize must clamp it into the 4-lane kernels' dyn
        // bounds rather than letting the driver panic.
        let shape = ConvShape::square(1, 32, 64, 14, 3, 1);
        let s = Schedule::derive(&ndirect_platform::presets::a64fx_like(), &shape, 1)
            .sanitized(&shape);
        assert!(s.vw <= crate::kernel::VW_MAX);
        assert!(s.vk / 4 <= crate::kernel::VKV_MAX);
    }

    #[test]
    fn wide_5x5_model_tiles_survive_sanitize() {
        // Eq. 4 picks (24, 4) for 5x5 on NEON; sanitize must keep it (the
        // dispatch has wide arms), not silently shrink it.
        let shape = ConvShape::square(1, 8, 8, 16, 5, 1);
        let s = Schedule::derive(&phytium_2000p(), &shape, 1).sanitized(&shape);
        assert_eq!(s.vw, 24, "{s:?}");
    }

    #[test]
    fn ablation_helpers_change_one_field() {
        let shape = ConvShape::square(1, 8, 8, 8, 3, 1);
        let s = Schedule::minimal(&shape);
        assert_eq!(s.with_packing(PackingMode::Sequential).packing, PackingMode::Sequential);
        assert_eq!(
            s.with_filter_state(FilterState::PreTransformed).filter_state,
            FilterState::PreTransformed
        );
        assert_eq!(s.with_grid(Grid2::new(2, 2)).threads(), 4);
    }

    #[test]
    fn json_round_trip() {
        let shape = ConvShape::square(2, 16, 32, 14, 3, 1);
        let s = Schedule::derive(&phytium_2000p(), &shape, 8);
        let parsed = Schedule::from_json(&Json::parse(&s.to_json().pretty()).unwrap()).unwrap();
        assert_eq!(parsed, s);
    }

    #[test]
    fn json_without_prefetch_field_defaults_off() {
        // Autotune caches written before the flag existed must still parse.
        let shape = ConvShape::square(1, 8, 8, 8, 3, 1);
        let mut j = Schedule::minimal(&shape).to_json();
        if let Json::Obj(fields) = &mut j {
            fields.retain(|(k, _)| k != "prefetch");
        }
        let parsed = Schedule::from_json(&j).unwrap();
        assert!(!parsed.prefetch);

        // A present-but-mistyped field is a typed error, not a default.
        let mut bad = Schedule::minimal(&shape).to_json();
        if let Json::Obj(fields) = &mut bad {
            for (k, v) in fields.iter_mut() {
                if k == "prefetch" {
                    *v = Json::str("yes");
                }
            }
        }
        assert!(Schedule::from_json(&bad).is_err());
    }

    #[test]
    fn json_rejects_degenerate_tiles() {
        let shape = ConvShape::square(1, 8, 8, 8, 3, 1);
        let mut j = Schedule::minimal(&shape).to_json();
        if let Json::Obj(fields) = &mut j {
            fields[0].1 = Json::usize(0); // vw = 0
        }
        assert!(Schedule::from_json(&j).is_err());
    }

    #[test]
    fn json_rejects_unknown_packing() {
        let shape = ConvShape::square(1, 8, 8, 8, 3, 1);
        for bad in ["vectorized-harder", "sliced", "sliced:", "sliced:abc", "sliced:0", "none:4"] {
            let mut j = Schedule::minimal(&shape).to_json();
            if let Json::Obj(fields) = &mut j {
                for (k, v) in fields.iter_mut() {
                    if k == "packing" {
                        *v = Json::str(bad);
                    }
                }
            }
            let err = Schedule::from_json(&j).expect_err(bad);
            assert!(err.msg.contains("packing"), "{bad}: {}", err.msg);
        }
    }

    #[test]
    fn json_accepts_every_packing_variant() {
        // The positive polarity of `json_rejects_unknown_packing`: all four
        // modes round-trip through the cache encoding, rows included.
        let shape = ConvShape::square(1, 8, 8, 8, 3, 1);
        for mode in [
            PackingMode::Fused,
            PackingMode::Sequential,
            PackingMode::None,
            PackingMode::Sliced { rows: 6 },
        ] {
            let s = Schedule::minimal(&shape).with_packing(mode);
            let parsed =
                Schedule::from_json(&Json::parse(&s.to_json().pretty()).unwrap()).unwrap();
            assert_eq!(parsed, s, "{mode:?}");
            assert_eq!(PackingMode::parse(&mode.encode()), Some(mode));
        }
    }

    #[test]
    fn sanitize_clamps_sliced_rows_to_the_th_tile() {
        let shape = ConvShape::square(1, 8, 8, 10, 3, 1);
        let base = Schedule::minimal(&shape);
        let s = base.with_packing(PackingMode::Sliced { rows: 1000 }).sanitized(&shape);
        assert_eq!(s.packing, PackingMode::Sliced { rows: s.th });
        let s = base.with_packing(PackingMode::Sliced { rows: 2 }).sanitized(&shape);
        assert_eq!(s.packing, PackingMode::Sliced { rows: 2 });
    }

    #[test]
    fn predicted_pack_bytes_by_mode() {
        let shape = ConvShape::square(2, 8, 16, 10, 3, 1);
        let base = Schedule::minimal(&shape);
        assert_eq!(base.with_packing(PackingMode::None).predicted_pack_bytes(&shape), 0);

        // One slab per (image, slice): slices of 4 output rows over P=10
        // give [4, 4, 2] per image; slab_rows = (len−1)·stride + R.
        let sliced = base.with_packing(PackingMode::Sliced { rows: 4 });
        let row_win = (shape.q() - 1) * shape.stride + shape.s;
        let expect: usize = [4usize, 4, 2]
            .iter()
            .map(|len| shape.c * ((len - 1) * shape.stride + shape.r) * row_win * 4)
            .sum::<usize>()
            * shape.n;
        assert_eq!(sliced.predicted_pack_bytes(&shape), expect as u128);

        // Slicing always packs no more than the per-strip modes: the slab
        // is shared across Tk tiles and overlapping strip windows.
        assert!(
            sliced.predicted_pack_bytes(&shape)
                <= base.with_packing(PackingMode::Fused).predicted_pack_bytes(&shape)
        );
    }
}

//! INT16 convolution — §3.3's "other data types" claim, made concrete.
//!
//! Quantized inference keeps activations and weights in narrow integers
//! and accumulates in i32. The nDirect structure carries over intact:
//! strip packing, on-the-fly filter transform, and an outer-product
//! register tile — except the FMA becomes the pairwise integer
//! multiply-accumulate (`pmaddwd` / `vmlal_s16`), which processes *two*
//! input channels per instruction. The filter transform therefore
//! interleaves channel pairs: `[kv][c/2][r][s][Vk][2]`, and the kernel
//! broadcasts an input channel-pair against it.
//!
//! Arithmetic is exact (integer), so the tests require bitwise equality
//! with the naive oracle and results are bitwise thread-invariant by
//! construction. The caller owns the usual quantized-kernel contract:
//! `C·R·S·max|x|·max|w|` must stay inside i32 (accumulation wraps
//! otherwise, as it does in every production int kernel).

use ndirect_simd::{I16x8, I32x4};
use ndirect_tensor::ConvShape;
use ndirect_threads::{split_static, SharedSlice, StaticPool};

use crate::error::{check, Error};

/// A dense `NCHW` i16 activation tensor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Int16Tensor {
    /// Row-major `NCHW` codes.
    pub data: Vec<i16>,
    /// Batch size.
    pub n: usize,
    /// Channels.
    pub c: usize,
    /// Height.
    pub h: usize,
    /// Width.
    pub w: usize,
}

impl Int16Tensor {
    /// Zero tensor.
    pub fn zeros(n: usize, c: usize, h: usize, w: usize) -> Self {
        Int16Tensor {
            data: vec![0; n * c * h * w],
            n,
            c,
            h,
            w,
        }
    }

    #[inline]
    fn at_padded(&self, n: usize, c: usize, h: isize, w: isize) -> i16 {
        if h < 0 || w < 0 || h as usize >= self.h || w as usize >= self.w {
            0
        } else {
            self.data[((n * self.c + c) * self.h + h as usize) * self.w + w as usize]
        }
    }
}

/// A dense `KCRS` i16 filter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Int16Filter {
    /// Row-major `KCRS` codes.
    pub data: Vec<i16>,
    /// Output channels.
    pub k: usize,
    /// Input channels.
    pub c: usize,
    /// Kernel height.
    pub r: usize,
    /// Kernel width.
    pub s: usize,
}

impl Int16Filter {
    /// Zero filter.
    pub fn zeros(k: usize, c: usize, r: usize, s: usize) -> Self {
        Int16Filter {
            data: vec![0; k * c * r * s],
            k,
            c,
            r,
            s,
        }
    }

    #[inline]
    fn at(&self, k: usize, c: usize, r: usize, s: usize) -> i16 {
        // INDEX: callers iterate k < K, c < C, r < R, s < S — flat KCRS.
        self.data[((k * self.c + c) * self.r + r) * self.s + s]
    }
}

/// Naive INT16 oracle: exact i32 accumulation (wrapping).
pub fn conv_int16_naive(input: &Int16Tensor, filter: &Int16Filter, shape: &ConvShape) -> Vec<i32> {
    validate(input, filter, shape).unwrap_or_else(|e| panic!("{e}"));
    let (p, q) = (shape.p(), shape.q());
    let mut out = vec![0i32; shape.n * shape.k * p * q];
    for n in 0..shape.n {
        for k in 0..shape.k {
            for oj in 0..p {
                for oi in 0..q {
                    let mut acc = 0i32;
                    for c in 0..shape.c {
                        for r in 0..shape.r {
                            for s in 0..shape.s {
                                let ij = (shape.stride * oj + r) as isize - shape.pad.h as isize;
                                let ii = (shape.stride * oi + s) as isize - shape.pad.w as isize;
                                // CAST: i16 -> i32 widening, lossless.
                                let x = input.at_padded(n, c, ij, ii) as i32;
                                // CAST: i16 -> i32 widening, lossless.
                                acc = acc.wrapping_add(x * filter.at(k, c, r, s) as i32);
                            }
                        }
                    }
                    out[((n * shape.k + k) * p + oj) * q + oi] = acc;
                }
            }
        }
    }
    out
}

/// Register-tile width (output pixels) of the INT16 kernel.
const VW: usize = 4;
/// Register-tile depth (output channels): two `I32x4` accumulators/pixel.
const VK: usize = 8;

/// nDirect-style INT16 convolution: `NCHW` i16 in, `NCHW` i32 out.
///
/// Parallelized over the flat `N·P` output-row space (bitwise-exact for
/// any thread count, since integer addition is associative).
pub fn conv_int16(
    pool: &StaticPool,
    input: &Int16Tensor,
    filter: &Int16Filter,
    shape: &ConvShape,
) -> Vec<i32> {
    try_conv_int16(pool, input, filter, shape).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`conv_int16`].
pub fn try_conv_int16(
    pool: &StaticPool,
    input: &Int16Tensor,
    filter: &Int16Filter,
    shape: &ConvShape,
) -> Result<Vec<i32>, Error> {
    validate(input, filter, shape)?;
    let (p, q) = (shape.p(), shape.q());
    let mut out = vec![0i32; shape.n * shape.k * p * q];

    let cpairs = shape.c.div_ceil(2);
    let kv_total = shape.k.div_ceil(VK);
    // Filter transform: [kv][cpair][r][s][VK][2], zero-padded in both the
    // K remainder and the odd-C pad channel.
    let mut tf = vec![0i16; kv_total * cpairs * shape.r * shape.s * VK * 2];
    for kv in 0..kv_total {
        for cp in 0..cpairs {
            for r in 0..shape.r {
                for s in 0..shape.s {
                    for l in 0..VK {
                        let k = kv * VK + l;
                        if k >= shape.k {
                            continue;
                        }
                        let base =
                            ((((kv * cpairs + cp) * shape.r + r) * shape.s + s) * VK + l) * 2;
                        tf[base] = filter.at(k, 2 * cp, r, s);
                        if 2 * cp + 1 < shape.c {
                            tf[base + 1] = filter.at(k, 2 * cp + 1, r, s);
                        }
                    }
                }
            }
        }
    }
    let tf_kv_len = cpairs * shape.r * shape.s * VK * 2;

    let threads = pool.size();
    let rows_total = shape.n * p;

    let out_shared = SharedSlice::new(&mut out);
    pool.try_run(|tid| {
        // Disjointness: output rows are statically split per thread;
        // barrier before return.
        let out_all = &out_shared;
        let win_max = (VW - 1) * shape.stride + shape.s;
        // Packed strip: [cpair][r][win][2] — channel pairs interleaved so
        // the kernel broadcasts one 32-bit pair per (pixel, tap).
        let mut buf = vec![0i16; cpairs * shape.r * win_max * 2];
        for row in split_static(rows_total, threads, tid) {
            let n = row / p;
            let oh = row % p;
            let ih0 = (oh * shape.stride) as isize - shape.pad.h as isize;
            let mut wv = 0;
            while wv < q {
                let valid_w = VW.min(q - wv);
                let win = (valid_w - 1) * shape.stride + shape.s;
                let iw0 = (wv * shape.stride) as isize - shape.pad.w as isize;
                // Pack the strip.
                for cp in 0..cpairs {
                    for rr in 0..shape.r {
                        let ih = ih0 + rr as isize;
                        for col in 0..win {
                            let iw = iw0 + col as isize;
                            let base = ((cp * shape.r + rr) * win + col) * 2;
                            buf[base] = input.at_padded(n, 2 * cp, ih, iw);
                            buf[base + 1] = if 2 * cp + 1 < shape.c {
                                input.at_padded(n, 2 * cp + 1, ih, iw)
                            } else {
                                0
                            };
                        }
                    }
                }
                for kv in 0..kv_total {
                    let k0 = kv * VK;
                    let valid_k = VK.min(shape.k - k0);
                    let tfkv = &tf[kv * tf_kv_len..(kv + 1) * tf_kv_len];
                    let mut acc = [[I32x4::zero(); 2]; VW];
                    for cp in 0..cpairs {
                        for rr in 0..shape.r {
                            for ss in 0..shape.s {
                                let fbase =
                                    (((cp * shape.r + rr) * shape.s + ss) * VK) * 2;
                                let f0 = I16x8::load(&tfkv[fbase..]);
                                let f1 = I16x8::load(&tfkv[fbase + 8..]);
                                for (wi, accw) in acc.iter_mut().enumerate().take(valid_w) {
                                    let col = wi * shape.stride + ss;
                                    let b = ((cp * shape.r + rr) * win + col) * 2;
                                    let x = I16x8::splat_pair(buf[b], buf[b + 1]);
                                    accw[0] = accw[0].madd_acc(x, f0);
                                    accw[1] = accw[1].madd_acc(x, f1);
                                }
                            }
                        }
                    }
                    for (wi, accw) in acc.iter().enumerate().take(valid_w) {
                        for (j, v) in accw.iter().enumerate() {
                            let lanes = v.to_array();
                            for (l, &x) in lanes.iter().enumerate() {
                                let k_local = j * 4 + l;
                                if k_local < valid_k {
                                    let off = ((n * shape.k + k0 + k_local) * p + oh) * q
                                        + wv
                                        + wi;
                                    // SAFETY: this output row has one owner.
                                    unsafe {
                                        out_all.write(off, out_all.read(off).wrapping_add(x))
                                    };
                                }
                            }
                        }
                    }
                }
                wv += VW;
            }
        }
    })?;
    Ok(out)
}

fn validate(input: &Int16Tensor, filter: &Int16Filter, shape: &ConvShape) -> Result<(), Error> {
    shape.validate()?;
    check::dims(
        "input dims",
        (shape.n, shape.c, shape.h, shape.w),
        (input.n, input.c, input.h, input.w),
    )?;
    check::dims(
        "filter dims",
        (shape.k, shape.c, shape.r, shape.s),
        (filter.k, filter.c, filter.r, filter.s),
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndirect_support::Rng64;
    use ndirect_tensor::Padding;

    fn problem(shape: &ConvShape, seed: u64) -> (Int16Tensor, Int16Filter) {
        let mut rng = Rng64::seed_from_u64(seed);
        let mut input = Int16Tensor::zeros(shape.n, shape.c, shape.h, shape.w);
        for x in &mut input.data {
            *x = rng.gen_range_i32(-31, 31) as i16;
        }
        let mut filter = Int16Filter::zeros(shape.k, shape.c, shape.r, shape.s);
        for x in &mut filter.data {
            *x = rng.gen_range_i32(-31, 31) as i16;
        }
        (input, filter)
    }

    fn check(shape: ConvShape, threads: usize) {
        let (input, filter) = problem(&shape, 61);
        let expect = conv_int16_naive(&input, &filter, &shape);
        let got = conv_int16(&StaticPool::new(threads), &input, &filter, &shape);
        assert_eq!(got, expect, "int16 conv must be exact: {shape}");
    }

    #[test]
    fn exact_match_basic_3x3() {
        check(ConvShape::new(1, 4, 8, 8, 8, 3, 3, 1, Padding::same(1)), 1);
    }

    #[test]
    fn exact_match_odd_channels_and_k_tail() {
        // C=5 exercises the zero pad channel; K=10 the VK tail.
        check(ConvShape::new(2, 5, 7, 9, 10, 3, 3, 1, Padding::same(1)), 1);
    }

    #[test]
    fn exact_match_strided_pointwise_and_large_kernel() {
        check(ConvShape::new(1, 4, 9, 9, 6, 3, 3, 2, Padding::same(1)), 1);
        check(ConvShape::new(1, 6, 5, 5, 7, 1, 1, 1, Padding::NONE), 1);
        check(ConvShape::new(1, 2, 12, 12, 3, 5, 5, 1, Padding::same(2)), 1);
    }

    #[test]
    fn exact_match_multithreaded() {
        check(ConvShape::new(3, 6, 8, 8, 12, 3, 3, 1, Padding::same(1)), 4);
    }

    #[test]
    fn thread_count_invariant_bitwise() {
        let shape = ConvShape::new(2, 4, 8, 8, 8, 3, 3, 1, Padding::same(1));
        let (input, filter) = problem(&shape, 62);
        let a = conv_int16(&StaticPool::new(1), &input, &filter, &shape);
        let b = conv_int16(&StaticPool::new(5), &input, &filter, &shape);
        assert_eq!(a, b);
    }

    #[test]
    fn identity_filter_copies_channel() {
        let shape = ConvShape::new(1, 2, 4, 4, 1, 1, 1, 1, Padding::NONE);
        let mut input = Int16Tensor::zeros(1, 2, 4, 4);
        for (i, x) in input.data.iter_mut().enumerate() {
            *x = i as i16;
        }
        let mut filter = Int16Filter::zeros(1, 2, 1, 1);
        filter.data[1] = 1; // pick channel 1
        let out = conv_int16(&StaticPool::new(1), &input, &filter, &shape);
        let expect: Vec<i32> = (16..32).collect();
        assert_eq!(out, expect);
    }
}

//! Quantization helpers around the INT16 kernel: symmetric linear
//! quantization `x ≈ scale · q` with i16 codes, plus an end-to-end
//! quantized convolution that returns dequantized FP32 — what a framework
//! integrating [`crate::conv_int16`] actually calls.

use ndirect_tensor::{ActLayout, ConvShape, Filter, Tensor4};
use ndirect_threads::StaticPool;

use crate::error::{check, Error};
use crate::int16::{Int16Filter, Int16Tensor};

/// Symmetric per-tensor quantization parameters: `real = scale · code`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantParams {
    /// Step size: `real = scale · code`.
    pub scale: f32,
}

impl QuantParams {
    /// Chooses the scale that maps the tensor's max magnitude to
    /// `max_code` (default headroom keeps `C·R·S` i32 accumulations safe:
    /// `max_code²·C·R·S < 2³¹`).
    pub fn fit(data: &[f32], max_code: i16) -> Self {
        let max_abs = data.iter().fold(0.0f32, |m, x| m.max(x.abs()));
        let scale = if max_abs == 0.0 {
            1.0
        } else {
            max_abs / max_code as f32
        };
        QuantParams { scale }
    }

    /// Quantizes one value (round-to-nearest, saturating).
    #[inline]
    pub fn quantize(&self, x: f32) -> i16 {
        let q = (x / self.scale).round();
        // CAST: f32 -> i16 after clamping to the exact i16 range, so the
        // truncation is the documented saturating behaviour (NaN maps to 0).
        q.clamp(i16::MIN as f32, i16::MAX as f32) as i16
    }

    /// Dequantizes one code.
    #[inline]
    pub fn dequantize(&self, q: i32) -> f32 {
        q as f32 * self.scale
    }
}

/// The accumulator-safe code bound for a reduction of `len` terms:
/// `max_code = ⌊√(2³¹ / len)⌋`, capped at `i16::MAX`.
pub fn safe_max_code(reduction_len: usize) -> i16 {
    let bound = ((i32::MAX as f64) / reduction_len.max(1) as f64).sqrt().floor();
    // CAST: f64 -> i16 after min() against i16::MAX; bound is >= 0 by
    // construction (sqrt of a non-negative quotient), so the cast is exact.
    bound.min(i16::MAX as f64) as i16
}

/// Quantized convolution: quantizes FP32 operands to i16 (per-tensor
/// symmetric scales sized for overflow-free i32 accumulation), runs
/// [`crate::conv_int16`], and dequantizes back to an FP32 `NCHW` tensor.
///
/// Returns the output and the achieved quantization parameters, so callers
/// can reason about the induced error (≈ `scale_x·scale_w` per MAC).
pub fn conv_quantized(
    pool: &StaticPool,
    input: &Tensor4,
    filter: &Filter,
    shape: &ConvShape,
) -> (Tensor4, QuantParams, QuantParams) {
    try_conv_quantized(pool, input, filter, shape).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`conv_quantized`].
pub fn try_conv_quantized(
    pool: &StaticPool,
    input: &Tensor4,
    filter: &Filter,
    shape: &ConvShape,
) -> Result<(Tensor4, QuantParams, QuantParams), Error> {
    check::standard_nchw(input, filter, shape, "quantized path takes NCHW/KCRS")?;

    let reduction = shape.c * shape.r * shape.s;
    let max_code = safe_max_code(reduction);
    let qx = QuantParams::fit(input.as_slice(), max_code);
    let qw = QuantParams::fit(filter.as_slice(), max_code);

    let mut qi = Int16Tensor::zeros(shape.n, shape.c, shape.h, shape.w);
    for (d, &x) in qi.data.iter_mut().zip(input.as_slice()) {
        *d = qx.quantize(x);
    }
    let mut qf = Int16Filter::zeros(shape.k, shape.c, shape.r, shape.s);
    for (d, &x) in qf.data.iter_mut().zip(filter.as_slice()) {
        *d = qw.quantize(x);
    }

    let acc = crate::int16::try_conv_int16(pool, &qi, &qf, shape)?;
    let mut out = Tensor4::output_for(shape, ActLayout::Nchw);
    let combined = qx.scale * qw.scale;
    for (o, &a) in out.as_mut_slice().iter_mut().zip(&acc) {
        *o = a as f32 * combined;
    }
    Ok((out, qx, qw))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndirect_tensor::{fill, max_rel_diff, FilterLayout, Padding};

    #[test]
    fn quantize_round_trips_within_half_step() {
        let data = [0.5f32, -1.0, 0.73, 0.0, 1.0];
        let q = QuantParams::fit(&data, 127);
        for &x in &data {
            let back = q.dequantize(q.quantize(x) as i32);
            assert!((back - x).abs() <= q.scale * 0.5 + 1e-7, "{x} -> {back}");
        }
    }

    #[test]
    fn zero_tensor_gets_unit_scale() {
        let q = QuantParams::fit(&[0.0; 8], 127);
        assert_eq!(q.scale, 1.0);
        assert_eq!(q.quantize(0.0), 0);
    }

    #[test]
    fn safe_max_code_respects_accumulator() {
        // reduction of 1: full i16 range allowed.
        assert_eq!(safe_max_code(1), i16::MAX);
        // 1152 = 128·9 (layer-10-like reduction): code² · 1152 < 2³¹.
        let m = safe_max_code(1152) as i64;
        assert!(m * m * 1152 <= i32::MAX as i64);
        assert!((m + 1) * (m + 1) * 1152 > i32::MAX as i64);
    }

    #[test]
    fn quantized_conv_tracks_fp32_within_quantization_error() {
        let shape = ConvShape::new(1, 8, 10, 10, 6, 3, 3, 1, Padding::same(1));
        let input = fill::random_tensor(Tensor4::input_for(&shape, ActLayout::Nchw), 70);
        let filter = fill::random_filter(Filter::for_shape(&shape, FilterLayout::Kcrs), 70);
        let pool = StaticPool::new(1);
        let reference = ndirect_baselines::naive::conv_ref(&input, &filter, &shape);
        let (got, qx, qw) = conv_quantized(&pool, &input, &filter, &shape);
        // Expected error scale: ~reduction · scale_x·scale_w / 2 worst case;
        // in practice far below. 1% relative is a comfortable bound here.
        let err = max_rel_diff(got.as_slice(), reference.as_slice());
        assert!(err < 1e-2, "err {err}, scales {} {}", qx.scale, qw.scale);
        // And it must not be exact — this is a quantized path.
        assert!(err > 0.0);
    }

    #[test]
    fn quantized_conv_multithreaded_bitwise_deterministic() {
        let shape = ConvShape::new(2, 4, 8, 8, 8, 3, 3, 1, Padding::same(1));
        let input = fill::random_tensor(Tensor4::input_for(&shape, ActLayout::Nchw), 71);
        let filter = fill::random_filter(Filter::for_shape(&shape, FilterLayout::Kcrs), 71);
        let (a, _, _) = conv_quantized(&StaticPool::new(1), &input, &filter, &shape);
        let (b, _, _) = conv_quantized(&StaticPool::new(4), &input, &filter, &shape);
        assert_eq!(a.as_slice(), b.as_slice());
    }
}

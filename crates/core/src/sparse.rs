//! Channel-pruned convolution — the paper's §1 sparsity claim ("direct
//! convolution can exploit the sparsity of the convolution kernel and
//! avoid unnecessary computations") at the granularity structured pruning
//! actually produces: whole input channels whose filter taps are all zero.
//!
//! [`prune_channels`] scans the filter once for dead channels;
//! [`conv_ndirect_pruned`] compacts the live channels of the filter and
//! (one streaming pass) of the input, then runs the ordinary nDirect
//! convolution on the smaller `C`. For a density `d`, compute shrinks by
//! `1/d` while the compaction costs one extra read+write of the live input
//! — profitable whenever the reduction is not trivially small.

use ndirect_tensor::{ActLayout, ConvShape, Filter, FilterLayout, Tensor4};
use ndirect_threads::StaticPool;

use crate::conv::try_conv_ndirect;
use crate::error::{check, Error};

/// Which input channels carry any nonzero filter tap.
#[derive(Debug, Clone)]
pub struct ChannelMask {
    /// Indices of live channels, ascending.
    pub live: Vec<usize>,
    /// Original channel count.
    pub total: usize,
}

impl ChannelMask {
    /// Fraction of channels that are live.
    pub fn density(&self) -> f64 {
        self.live.len() as f64 / self.total.max(1) as f64
    }
}

/// Scans a `KCRS` filter for input channels that are zero across every
/// output channel and tap.
pub fn prune_channels(filter: &Filter) -> ChannelMask {
    assert_eq!(filter.layout(), FilterLayout::Kcrs, "pruning expects KCRS");
    let (k, c, r, s) = filter.dims();
    let mut live = Vec::new();
    'chan: for ci in 0..c {
        for ki in 0..k {
            for ri in 0..r {
                for si in 0..s {
                    if filter.at(ki, ci, ri, si) != 0.0 {
                        live.push(ci);
                        continue 'chan;
                    }
                }
            }
        }
    }
    ChannelMask { live, total: c }
}

/// Compacts the live channels of filter and input and convolves the
/// reduced problem. Falls back to the dense path when (almost) everything
/// is live. A fully-dead filter yields the correct all-zero output.
pub fn conv_ndirect_pruned(
    pool: &StaticPool,
    input: &Tensor4,
    filter: &Filter,
    shape: &ConvShape,
) -> Tensor4 {
    try_conv_ndirect_pruned(pool, input, filter, shape).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`conv_ndirect_pruned`].
pub fn try_conv_ndirect_pruned(
    pool: &StaticPool,
    input: &Tensor4,
    filter: &Filter,
    shape: &ConvShape,
) -> Result<Tensor4, Error> {
    check::standard_nchw(input, filter, shape, "pruning expects NCHW/KCRS")?;
    let mask = prune_channels(filter);
    if mask.live.len() == mask.total {
        return try_conv_ndirect(pool, input, filter, shape);
    }
    if mask.live.is_empty() {
        return Ok(Tensor4::output_for(shape, ActLayout::Nchw));
    }

    let c_live = mask.live.len();
    // Compact filter: keep live channels only.
    let mut f2 = Filter::zeros(shape.k, c_live, shape.r, shape.s, FilterLayout::Kcrs);
    for ki in 0..shape.k {
        for (cj, &ci) in mask.live.iter().enumerate() {
            for ri in 0..shape.r {
                for si in 0..shape.s {
                    *f2.at_mut(ki, cj, ri, si) = filter.at(ki, ci, ri, si);
                }
            }
        }
    }
    // Compact input: one streaming copy of the live channel planes.
    let mut i2 = Tensor4::zeros(shape.n, c_live, shape.h, shape.w, ActLayout::Nchw);
    let plane = shape.h * shape.w;
    let src = input.as_slice();
    let dst = i2.as_mut_slice();
    for n in 0..shape.n {
        for (cj, &ci) in mask.live.iter().enumerate() {
            let s0 = (n * shape.c + ci) * plane;
            let d0 = (n * c_live + cj) * plane;
            dst[d0..d0 + plane].copy_from_slice(&src[s0..s0 + plane]);
        }
    }

    let mut reduced = *shape;
    reduced.c = c_live;
    try_conv_ndirect(pool, &i2, &f2, &reduced)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::conv_ndirect;
    use ndirect_baselines::naive;
    use ndirect_tensor::{assert_close, fill, Padding};

    fn pruned_problem(shape: &ConvShape, dead_every: usize, seed: u64) -> (Tensor4, Filter) {
        let input = fill::random_tensor(Tensor4::input_for(shape, ActLayout::Nchw), seed);
        let mut filter = fill::random_filter(Filter::for_shape(shape, FilterLayout::Kcrs), seed);
        // Zero out every `dead_every`-th input channel's taps.
        for ci in (0..shape.c).step_by(dead_every) {
            for ki in 0..shape.k {
                for ri in 0..shape.r {
                    for si in 0..shape.s {
                        *filter.at_mut(ki, ci, ri, si) = 0.0;
                    }
                }
            }
        }
        (input, filter)
    }

    #[test]
    fn mask_detects_dead_channels() {
        let shape = ConvShape::new(1, 8, 6, 6, 4, 3, 3, 1, Padding::same(1));
        let (_, filter) = pruned_problem(&shape, 2, 1);
        let mask = prune_channels(&filter);
        assert_eq!(mask.live, vec![1, 3, 5, 7]);
        assert!((mask.density() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn pruned_conv_matches_dense_oracle() {
        let shape = ConvShape::new(2, 10, 9, 9, 6, 3, 3, 1, Padding::same(1));
        let (input, filter) = pruned_problem(&shape, 3, 2);
        let expect = naive::conv_ref(&input, &filter, &shape);
        let got = conv_ndirect_pruned(&StaticPool::new(2), &input, &filter, &shape);
        assert_close(got.as_slice(), expect.as_slice(), 2e-4, "pruned conv");
    }

    #[test]
    fn fully_dense_filter_takes_dense_path() {
        let shape = ConvShape::new(1, 4, 8, 8, 4, 3, 3, 1, Padding::same(1));
        let input = fill::random_tensor(Tensor4::input_for(&shape, ActLayout::Nchw), 3);
        let filter = fill::random_filter(Filter::for_shape(&shape, FilterLayout::Kcrs), 3);
        let dense = conv_ndirect(&StaticPool::new(1), &input, &filter, &shape);
        let pruned = conv_ndirect_pruned(&StaticPool::new(1), &input, &filter, &shape);
        assert_eq!(pruned.as_slice(), dense.as_slice());
    }

    #[test]
    fn fully_dead_filter_yields_zeros() {
        let shape = ConvShape::new(1, 3, 6, 6, 2, 3, 3, 1, Padding::same(1));
        let input = fill::random_tensor(Tensor4::input_for(&shape, ActLayout::Nchw), 4);
        let filter = Filter::for_shape(&shape, FilterLayout::Kcrs);
        let out = conv_ndirect_pruned(&StaticPool::new(1), &input, &filter, &shape);
        assert!(out.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn pruning_reduces_work_measurably() {
        // 7/8 channels dead: the pruned path should clearly beat dense on a
        // sizeable layer even on a noisy machine.
        let shape = ConvShape::new(1, 128, 28, 28, 64, 3, 3, 1, Padding::same(1));
        let input = fill::random_tensor(Tensor4::input_for(&shape, ActLayout::Nchw), 5);
        let mut filter = Filter::for_shape(&shape, FilterLayout::Kcrs);
        // Keep only channels 0..16 live.
        let live_src = fill::random_filter(
            Filter::zeros(shape.k, 16, 3, 3, FilterLayout::Kcrs),
            5,
        );
        for ki in 0..shape.k {
            for ci in 0..16 {
                for ri in 0..3 {
                    for si in 0..3 {
                        *filter.at_mut(ki, ci, ri, si) = live_src.at(ki, ci, ri, si);
                    }
                }
            }
        }
        let pool = StaticPool::new(1);
        let t = std::time::Instant::now();
        let dense = conv_ndirect(&pool, &input, &filter, &shape);
        let t_dense = t.elapsed();
        let t = std::time::Instant::now();
        let pruned = conv_ndirect_pruned(&pool, &input, &filter, &shape);
        let t_pruned = t.elapsed();
        assert_close(pruned.as_slice(), dense.as_slice(), 2e-4, "pruned speedup");
        // 8x less compute; demand at least 2x wall-clock on this shape.
        assert!(
            t_pruned.as_secs_f64() * 2.0 < t_dense.as_secs_f64(),
            "dense {t_dense:?} vs pruned {t_pruned:?}"
        );
    }
}

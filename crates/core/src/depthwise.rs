//! Depthwise convolution — the §10.2 extension.
//!
//! Depthwise Separable Convolution (MobileNet/Xception) factors a standard
//! convolution into a *depthwise* stage (each channel convolved with its
//! own `R×S` filter, no cross-channel reduction) and a *pointwise* stage
//! (a 1×1 standard convolution, which [`crate::conv_ndirect`] already
//! handles with its dedicated pointwise kernel). The paper notes the
//! depthwise stage falls out of nDirect by "removing the reduction
//! operations of dimension C in micro-kernels" — which is exactly what
//! this module does: the same strip packing (`gather_row`), a register
//! tile of `Vw` pixels × 4 channels, and the same static `PTn`-style row
//! parallelization (there is no `K` dimension to split; channels play
//! that role).

use ndirect_simd::{F32x4, SimdVec};
use ndirect_tensor::{ActLayout, AlignedBuf, ConvShape, Filter, FilterLayout, Tensor4};
use ndirect_threads::{SharedSlice, StaticPool};

use crate::error::{check, Error};
use crate::pack::gather_row;

/// Shape check for depthwise problems: the filter is `(C, 1, R, S)` and
/// the output has `C` channels (`shape.k == shape.c`, multiplier 1).
fn validate(input: &Tensor4, filter: &Filter, shape: &ConvShape) -> Result<(), Error> {
    shape.validate()?;
    check::act_layout(input, ActLayout::Nchw, "depthwise takes NCHW")?;
    if shape.k != shape.c {
        return Err(Error::NotDepthwise {
            k: shape.k,
            c: shape.c,
        });
    }
    check::dims(
        "input dims",
        (shape.n, shape.c, shape.h, shape.w),
        input.dims(),
    )?;
    check::dims(
        "filter dims",
        (shape.c, 1, shape.r, shape.s),
        filter.dims(),
    )?;
    check::filter_layout(filter, FilterLayout::Kcrs, "depthwise takes KCRS")?;
    Ok(())
}

/// Depthwise convolution: `O[n][c] = I[n][c] ⊛ F[c]`, `NCHW` in and out.
/// Panics on invalid inputs; see [`try_conv_depthwise`].
pub fn conv_depthwise(
    pool: &StaticPool,
    input: &Tensor4,
    filter: &Filter,
    shape: &ConvShape,
) -> Tensor4 {
    try_conv_depthwise(pool, input, filter, shape).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`conv_depthwise`].
pub fn try_conv_depthwise(
    pool: &StaticPool,
    input: &Tensor4,
    filter: &Filter,
    shape: &ConvShape,
) -> Result<Tensor4, Error> {
    validate(input, filter, shape)?;
    let (p, q) = (shape.p(), shape.q());
    let mut out = Tensor4::zeros(shape.n, shape.c, p, q, ActLayout::Nchw);

    // Thin wrapper since the plan layer exists: build a throwaway plan
    // borrowing the filter and execute it once. Repeated callers build a
    // [`crate::DepthwisePlan`] themselves to reuse the gather buffers.
    let plan = crate::plan::DepthwisePlan::borrowed(shape, filter, pool.size())?;
    plan.execute(pool, input, &mut out)?;
    Ok(out)
}

/// Computes four channels' output planes for one image.
#[allow(clippy::too_many_arguments)]
pub(crate) fn depthwise_plane(
    image: &[f32],
    filter: &Filter,
    shape: &ConvShape,
    n: usize,
    c0: usize,
    lanes: usize,
    vw: usize,
    rows: &mut AlignedBuf,
    out_all: &SharedSlice<'_, f32>,
    p: usize,
    q: usize,
) {
    let stride = shape.stride;
    let (r, s) = (shape.r, shape.s);
    let fdata = filter.as_slice(); // (C,1,R,S): channel-major taps
    for oh in 0..p {
        let ih0 = (oh * stride) as isize - shape.pad.h as isize;
        let mut wv = 0;
        while wv < q {
            let valid_w = vw.min(q - wv);
            let win = (valid_w - 1) * stride + s;
            let iw0 = (wv * stride) as isize - shape.pad.w as isize;
            // Gather the strip rows for each of the 4 channels.
            for l in 0..lanes {
                for rr in 0..r {
                    let dst = &mut rows[(l * r + rr) * win..(l * r + rr + 1) * win];
                    gather_row(image, c0 + l, ih0 + rr as isize, iw0, shape.h, shape.w, dst);
                }
            }
            // acc[wi] lanes = 4 channels of pixel wi.
            let mut acc = [F32x4::zero(); 16];
            debug_assert!(valid_w <= 16);
            for rr in 0..r {
                for ss in 0..s {
                    // Filter taps for the 4 channels at (rr, ss).
                    let mut taps = [0.0f32; 4];
                    for (l, t) in taps.iter_mut().enumerate().take(lanes) {
                        // INDEX: c0 + l < C (lanes clamp); rr < R, ss < S.
                        *t = fdata[((c0 + l) * r + rr) * s + ss];
                    }
                    let fv = F32x4::from_array(taps);
                    for (wi, a) in acc.iter_mut().enumerate().take(valid_w) {
                        let mut xs = [0.0f32; 4];
                        for (l, x) in xs.iter_mut().enumerate().take(lanes) {
                            // INDEX: rows holds `lanes` windows of R*win
                            // floats; wi*stride+ss < win (valid_w clamp).
                            *x = rows[(l * r + rr) * win + wi * stride + ss];
                        }
                        *a = a.fma(fv, F32x4::from_array(xs));
                    }
                }
            }
            for (wi, a) in acc.iter().enumerate().take(valid_w) {
                let lanes_arr = a.to_array();
                for (l, &v) in lanes_arr.iter().enumerate().take(lanes) {
                    let off = ((n * shape.c + c0 + l) * p + oh) * q + wv + wi;
                    // SAFETY: this (n, channel-group) plane has one owner.
                    unsafe { out_all.write(off, v) };
                }
            }
            wv += valid_w;
        }
    }
}

/// Computes four channels' output rows `[oh0, oh0 + len)` into a
/// thread-private cache-resident slab laid out `[C][row][Q]` (row index
/// relative to the slice). Same register tile as [`depthwise_plane`]; only
/// the sink differs — the fused dw+pw path ([`crate::dwpw`]) fills the slab
/// slice by slice and feeds it straight to the pointwise micro-kernel, so
/// the depthwise intermediate never round-trips through memory.
#[allow(clippy::too_many_arguments)]
pub(crate) fn depthwise_slice_into_slab(
    image: &[f32],
    filter: &Filter,
    shape: &ConvShape,
    c0: usize,
    lanes: usize,
    vw: usize,
    oh0: usize,
    len: usize,
    rows: &mut AlignedBuf,
    slab: &mut [f32],
) {
    let q = shape.q();
    let stride = shape.stride;
    let (r, s) = (shape.r, shape.s);
    let fdata = filter.as_slice(); // (C,1,R,S): channel-major taps
    for oh in oh0..oh0 + len {
        let ih0 = (oh * stride) as isize - shape.pad.h as isize;
        let mut wv = 0;
        while wv < q {
            let valid_w = vw.min(q - wv);
            let win = (valid_w - 1) * stride + s;
            let iw0 = (wv * stride) as isize - shape.pad.w as isize;
            for l in 0..lanes {
                for rr in 0..r {
                    let dst = &mut rows[(l * r + rr) * win..(l * r + rr + 1) * win];
                    gather_row(image, c0 + l, ih0 + rr as isize, iw0, shape.h, shape.w, dst);
                }
            }
            let mut acc = [F32x4::zero(); 16];
            debug_assert!(valid_w <= 16);
            for rr in 0..r {
                for ss in 0..s {
                    let mut taps = [0.0f32; 4];
                    for (l, t) in taps.iter_mut().enumerate().take(lanes) {
                        // INDEX: c0 + l < C (lanes clamp); rr < R, ss < S.
                        *t = fdata[((c0 + l) * r + rr) * s + ss];
                    }
                    let fv = F32x4::from_array(taps);
                    for (wi, a) in acc.iter_mut().enumerate().take(valid_w) {
                        let mut xs = [0.0f32; 4];
                        for (l, x) in xs.iter_mut().enumerate().take(lanes) {
                            // INDEX: rows holds `lanes` windows of R*win
                            // floats; wi*stride+ss < win (valid_w clamp).
                            *x = rows[(l * r + rr) * win + wi * stride + ss];
                        }
                        *a = a.fma(fv, F32x4::from_array(xs));
                    }
                }
            }
            for (wi, a) in acc.iter().enumerate().take(valid_w) {
                let lanes_arr = a.to_array();
                for (l, &v) in lanes_arr.iter().enumerate().take(lanes) {
                    // INDEX: slab is C×len×Q; c0+l < C, oh ∈ [oh0, oh0+len),
                    // wv + wi < Q by the width-tile walk.
                    slab[((c0 + l) * len + (oh - oh0)) * q + wv + wi] = v;
                }
            }
            wv += valid_w;
        }
    }
}

/// Depthwise-separable block: depthwise `R×S` followed by pointwise `1×1`
/// (the MobileNet building block). `dw_filter` is `(C, 1, R, S)`;
/// `pw_filter` is `(K, C, 1, 1)`. Returns the `(N, K, P, Q)` output.
pub fn conv_depthwise_separable(
    pool: &StaticPool,
    input: &Tensor4,
    dw_filter: &Filter,
    pw_filter: &Filter,
    shape: &ConvShape,
) -> Tensor4 {
    try_conv_depthwise_separable(pool, input, dw_filter, pw_filter, shape)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`conv_depthwise_separable`].
pub fn try_conv_depthwise_separable(
    pool: &StaticPool,
    input: &Tensor4,
    dw_filter: &Filter,
    pw_filter: &Filter,
    shape: &ConvShape,
) -> Result<Tensor4, Error> {
    let dw_shape = ConvShape::try_new(
        shape.n, shape.c, shape.h, shape.w, shape.c, shape.r, shape.s, shape.stride, shape.pad,
    )?;
    let mid = try_conv_depthwise(pool, input, dw_filter, &dw_shape)?;
    let (k, c, r1, s1) = pw_filter.dims();
    if (c, r1, s1) != (shape.c, 1, 1) {
        return Err(Error::DimMismatch {
            what: "filter dims",
            expected: (k, shape.c, 1, 1),
            got: pw_filter.dims(),
        });
    }
    let pw_shape = ConvShape::try_new(
        shape.n,
        shape.c,
        dw_shape.p(),
        dw_shape.q(),
        k,
        1,
        1,
        1,
        ndirect_tensor::Padding::NONE,
    )?;
    crate::conv::try_conv_ndirect(pool, &mid, pw_filter, &pw_shape)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndirect_tensor::{assert_close, fill, Padding};

    /// Scalar depthwise oracle.
    fn depthwise_ref(input: &Tensor4, filter: &Filter, shape: &ConvShape) -> Tensor4 {
        let (p, q) = (shape.p(), shape.q());
        let mut out = Tensor4::zeros(shape.n, shape.c, p, q, ActLayout::Nchw);
        for n in 0..shape.n {
            for c in 0..shape.c {
                for oj in 0..p {
                    for oi in 0..q {
                        let mut acc = 0.0;
                        for r in 0..shape.r {
                            for s in 0..shape.s {
                                let ij = (shape.stride * oj + r) as isize - shape.pad.h as isize;
                                let ii = (shape.stride * oi + s) as isize - shape.pad.w as isize;
                                acc += ndirect_tensor::pad::at_padded(input, n, c, ij, ii)
                                    * filter.at(c, 0, r, s);
                            }
                        }
                        *out.at_mut(n, c, oj, oi) = acc;
                    }
                }
            }
        }
        out
    }

    fn problem(shape: &ConvShape, seed: u64) -> (Tensor4, Filter) {
        (
            fill::random_tensor(Tensor4::input_for(shape, ActLayout::Nchw), seed),
            fill::random_filter(
                Filter::zeros(shape.c, 1, shape.r, shape.s, FilterLayout::Kcrs),
                seed,
            ),
        )
    }

    fn dw_shape(n: usize, c: usize, hw: usize, rs: usize, stride: usize, pad: usize) -> ConvShape {
        ConvShape::new(n, c, hw, hw, c, rs, rs, stride, Padding::same(pad))
    }

    #[test]
    fn matches_oracle_basic() {
        let shape = dw_shape(1, 8, 10, 3, 1, 1);
        let (input, filter) = problem(&shape, 1);
        let pool = StaticPool::new(1);
        let got = conv_depthwise(&pool, &input, &filter, &shape);
        let expect = depthwise_ref(&input, &filter, &shape);
        assert_close(got.as_slice(), expect.as_slice(), 1e-5, "depthwise");
    }

    #[test]
    fn matches_oracle_channel_tail() {
        // C = 6: one full channel group + a 2-lane tail.
        let shape = dw_shape(2, 6, 9, 3, 1, 1);
        let (input, filter) = problem(&shape, 2);
        let pool = StaticPool::new(1);
        let got = conv_depthwise(&pool, &input, &filter, &shape);
        let expect = depthwise_ref(&input, &filter, &shape);
        assert_close(got.as_slice(), expect.as_slice(), 1e-5, "channel tail");
    }

    #[test]
    fn matches_oracle_strided_and_5x5() {
        for (rs, stride, pad) in [(3, 2, 1), (5, 1, 2), (5, 2, 2)] {
            let shape = dw_shape(1, 4, 11, rs, stride, pad);
            let (input, filter) = problem(&shape, 3);
            let pool = StaticPool::new(1);
            let got = conv_depthwise(&pool, &input, &filter, &shape);
            let expect = depthwise_ref(&input, &filter, &shape);
            assert_close(got.as_slice(), expect.as_slice(), 1e-5, "strided dw");
        }
    }

    #[test]
    fn multithreaded_is_bitwise_identical() {
        let shape = dw_shape(2, 12, 12, 3, 1, 1);
        let (input, filter) = problem(&shape, 4);
        let a = conv_depthwise(&StaticPool::new(1), &input, &filter, &shape);
        let b = conv_depthwise(&StaticPool::new(4), &input, &filter, &shape);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn separable_block_matches_composed_oracle() {
        let shape = dw_shape(1, 8, 8, 3, 1, 1);
        let (input, dw) = problem(&shape, 5);
        let pw = fill::random_filter(Filter::zeros(12, 8, 1, 1, FilterLayout::Kcrs), 6);
        let pool = StaticPool::new(2);
        let got = conv_depthwise_separable(&pool, &input, &dw, &pw, &shape);

        let mid = depthwise_ref(&input, &dw, &shape);
        let pw_shape = ConvShape::new(1, 8, 8, 8, 12, 1, 1, 1, Padding::NONE);
        let expect = ndirect_baselines::naive::conv_ref(&mid, &pw, &pw_shape);
        assert_close(got.as_slice(), expect.as_slice(), 2e-4, "separable");
        assert_eq!(got.dims(), (1, 12, 8, 8));
    }

    #[test]
    #[should_panic(expected = "K == C")]
    fn rejects_non_depthwise_shape() {
        let shape = ConvShape::new(1, 4, 8, 8, 8, 3, 3, 1, Padding::same(1));
        let input = Tensor4::input_for(&shape, ActLayout::Nchw);
        let filter = Filter::zeros(4, 1, 3, 3, FilterLayout::Kcrs);
        conv_depthwise(&StaticPool::new(1), &input, &filter, &shape);
    }
}

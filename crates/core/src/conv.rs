//! The nDirect convolution driver — Algorithm 2's loop nest.
//!
//! Loop structure (paper numbering):
//!
//! ```text
//! parallel over the PTn × PTk thread grid:        (§6)
//!   L1  n  over this thread's images
//!   L2  ht over output-row tiles of Th            (LLC)
//!   L3  ct over channel tiles of Tc               (L1)
//!   L4  kt over this thread's K tiles of Tk       (L2)
//!         transform_filter(kt, ct block)          (line 5)
//!   L5  oh over rows of the tile
//!   L6  wv over output-column strips of Vw
//!   L7  kv over Vk groups of the K tile
//!         first kv: packing fused with compute    (line 8, §5.3)
//!         rest:     main micro-kernel on B        (line 10)
//! ```
//!
//! Work distribution: `PTk` threads split `K` at `Vk` granularity; `PTn`
//! threads split the flat `N·P` output-row space (which realizes the
//! paper's `N`-before-`H` parallelization priority, since rows are ordered
//! by `(n, oh)`). No reduction dimension is parallelized, so every output
//! element is written by exactly one thread and results are bitwise
//! identical for every grid — a property the integration tests assert.
//!
//! Faithfulness note: Algorithm 2's loop order places `ct`/`kt` *inside*
//! `n`/`ht`, so the on-the-fly filter transform re-runs per `(n, ht)` tile
//! and the input strip re-packs per `kt` tile — redundancies the paper
//! amortizes via tile sizing. This driver keeps the paper's order; callers
//! who want the transform paid exactly once use
//! [`crate::FilterState::PreTransformed`] (the ablation benches compare
//! both), and the native-NHWC driver demonstrates the hoisted ordering.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use ndirect_tensor::{ActLayout, AlignedBuf, ConvShape, Filter, Tensor4};
use ndirect_threads::{SharedSlice, StaticPool};

use crate::error::{check, Error};
use crate::filter::TransformedFilter;
use crate::kernel::{run_tile, RowSource, TileArgs};
use crate::pack::{pack_strip, StripGeom};
use crate::schedule::{PackingMode, Schedule};

/// nDirect convolution with a model-derived schedule for the host machine.
///
/// `input` is `NCHW`, `filter` is `KCRS`; the output is `NCHW`. The
/// schedule is derived from [`ndirect_platform::host`] with the pool's
/// thread count. Panics on invalid inputs; see [`try_conv_ndirect`] for
/// the fallible form.
pub fn conv_ndirect(
    pool: &StaticPool,
    input: &Tensor4,
    filter: &Filter,
    shape: &ConvShape,
) -> Tensor4 {
    try_conv_ndirect(pool, input, filter, shape).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`conv_ndirect`]: malformed shapes, layout/dimension
/// mismatches and pool faults come back as typed [`Error`]s.
pub fn try_conv_ndirect(
    pool: &StaticPool,
    input: &Tensor4,
    filter: &Filter,
    shape: &ConvShape,
) -> Result<Tensor4, Error> {
    shape.validate()?;
    let schedule = Schedule::derive(&ndirect_platform::host(), shape, pool.size());
    try_conv_ndirect_with(pool, input, filter, shape, &schedule)
}

/// nDirect convolution with an explicit [`Schedule`].
///
/// The schedule's grid may use fewer threads than the pool provides
/// (surplus threads idle); it must not require more. Panics on invalid
/// inputs; see [`try_conv_ndirect_with`] for the fallible form.
pub fn conv_ndirect_with(
    pool: &StaticPool,
    input: &Tensor4,
    filter: &Filter,
    shape: &ConvShape,
    schedule: &Schedule,
) -> Tensor4 {
    try_conv_ndirect_with(pool, input, filter, shape, schedule)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible form of [`conv_ndirect_with`].
pub fn try_conv_ndirect_with(
    pool: &StaticPool,
    input: &Tensor4,
    filter: &Filter,
    shape: &ConvShape,
    schedule: &Schedule,
) -> Result<Tensor4, Error> {
    shape.validate()?;
    let mut out = Tensor4::output_for(shape, ActLayout::Nchw);
    try_conv_ndirect_into(pool, input, filter, shape, schedule, &mut out)?;
    Ok(out)
}

/// nDirect convolution into a preallocated zeroed `NCHW` output. Panics on
/// invalid inputs; see [`try_conv_ndirect_into`] for the fallible form.
pub fn conv_ndirect_into(
    pool: &StaticPool,
    input: &Tensor4,
    filter: &Filter,
    shape: &ConvShape,
    schedule: &Schedule,
    out: &mut Tensor4,
) {
    try_conv_ndirect_into(pool, input, filter, shape, schedule, out)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Per-thread driver scratch: the packing strip buffer and the on-the-fly
/// filter-transform block.
pub(crate) struct Scratch {
    pub(crate) bbuf: AlignedBuf,
    pub(crate) tfbuf: AlignedBuf,
}

/// Test-only fault injection: a global ceiling (in f32 elements, summed
/// over the whole per-grid scratch request) above which
/// [`try_alloc_scratch`] refuses to provision. Lets the degradation tests
/// force the minimal-schedule fallback on shapes that would otherwise
/// allocate fine, without depending on allocator behaviour. Follows the
/// `__test_kill_one_worker` / `force_unsupported` precedent.
static SCRATCH_ELEMENT_LIMIT: AtomicUsize = AtomicUsize::new(usize::MAX);

/// Test-only: caps scratch provisioning at `limit` f32 elements per grid
/// request; pass `usize::MAX` to clear. Global — callers must serialize
/// against other convolutions in the process.
#[doc(hidden)]
pub fn __set_scratch_element_limit(limit: usize) {
    SCRATCH_ELEMENT_LIMIT.store(limit, Ordering::Relaxed); // ORDERING: Relaxed — test-only knob; callers serialize externally
}

/// Allocates one [`Scratch`] per grid thread for `sched`, with every size
/// product checked. `Err` carries the element count of the request that
/// failed (overflow or allocator refusal) so the caller can degrade.
// AUDIT: cold — scratch provisioning; runs on arena miss, never per tile.
pub(crate) fn try_alloc_scratch(
    sched: &Schedule,
    shape: &ConvShape,
    threads: usize,
) -> Result<Vec<Mutex<Scratch>>, usize> {
    let win_max = (sched.vw - 1)
        .checked_mul(shape.stride)
        .and_then(|x| x.checked_add(shape.s))
        .ok_or(usize::MAX)?;
    // The input-side buffer is packing-mode dependent: the per-strip modes
    // hold one `Tc·R·win` strip, `Sliced` holds one cache-resident slab
    // (`Tc·slab_rows·row_win`), and the zero-copy mode holds nothing at
    // all (a zero-length `AlignedBuf` performs no allocation).
    let bbuf_len = match sched.packing {
        PackingMode::None => 0,
        PackingMode::Sliced { rows } => {
            let row_win = (shape.q() - 1)
                .checked_mul(shape.stride)
                .and_then(|x| x.checked_add(shape.s))
                .ok_or(usize::MAX)?;
            let slab_rows = (rows.max(1) - 1)
                .checked_mul(shape.stride)
                .and_then(|x| x.checked_add(shape.r))
                .ok_or(usize::MAX)?;
            sched
                .tc
                .checked_mul(slab_rows)
                .and_then(|x| x.checked_mul(row_win))
                .ok_or(usize::MAX)?
        }
        PackingMode::Fused | PackingMode::Sequential => sched
            .tc
            .checked_mul(shape.r)
            .and_then(|x| x.checked_mul(win_max))
            .ok_or(usize::MAX)?,
    };
    let tf_block_len = sched
        .tc
        .checked_mul(shape.r)
        .and_then(|x| x.checked_mul(shape.s))
        .and_then(|x| x.checked_mul(sched.vk))
        .ok_or(usize::MAX)?;
    let tfbuf_len = sched
        .tk
        .div_ceil(sched.vk)
        .checked_mul(tf_block_len)
        .ok_or(usize::MAX)?;
    let total = bbuf_len
        .checked_add(tfbuf_len)
        .and_then(|x| x.checked_mul(threads))
        .ok_or(usize::MAX)?;
    if total > SCRATCH_ELEMENT_LIMIT.load(Ordering::Relaxed) { // ORDERING: Relaxed — advisory cap read once per provisioning; independent of other state
        return Err(total);
    }
    (0..threads)
        .map(|_| {
            Ok(Mutex::new(Scratch {
                bbuf: AlignedBuf::try_zeroed(bbuf_len)?,
                tfbuf: AlignedBuf::try_zeroed(tfbuf_len)?,
            }))
        })
        .collect()
}

/// Fallible form of [`conv_ndirect_into`]. Validation happens here, once,
/// at the API boundary; the loop nest runs on trusted values.
///
/// Since the plan layer exists this is a thin wrapper: build a throwaway
/// [`ConvPlan`](crate::ConvPlan) that *borrows* the filter (so on-the-fly
/// schedules stay zero-copy, exactly as before) and execute it once. The
/// semantics — validation order, graceful scratch degradation to the
/// minimal-tile schedule, [`Error::ScratchAlloc`] only when even that
/// fails, bitwise-identical results — are unchanged; callers that run the
/// same layer repeatedly should build a [`crate::ConvPlan`] themselves and
/// amortize the setup.
pub fn try_conv_ndirect_into(
    pool: &StaticPool,
    input: &Tensor4,
    filter: &Filter,
    shape: &ConvShape,
    schedule: &Schedule,
    out: &mut Tensor4,
) -> Result<(), Error> {
    check::standard_nchw(input, filter, shape, "nDirect NCHW entry takes NCHW/KCRS")?;
    let (p, q) = (shape.p(), shape.q());
    check::dims("output dims", (shape.n, shape.k, p, q), out.dims())?;
    check::act_layout(out, ActLayout::Nchw, "nDirect writes NCHW")?;

    let sched = schedule.sanitized(shape);
    if sched.grid.threads() > pool.size() {
        return Err(Error::GridExceedsPool {
            needed: sched.grid.threads(),
            available: pool.size(),
        });
    }

    let plan = crate::plan::ConvPlan::try_borrowed(shape, filter, schedule)?;
    plan.execute(pool, input, out)
}

/// Everything one `(oh, wv)` strip needs.
pub(crate) struct StripCtx<'a> {
    pub(crate) image: &'a [f32],
    pub(crate) shape: &'a ConvShape,
    pub(crate) sched: &'a Schedule,
    pub(crate) pre_tf: Option<&'a TransformedFilter>,
    pub(crate) tfbuf: &'a [f32],
    pub(crate) tf_block_len: usize,
    pub(crate) n: usize,
    pub(crate) ct: usize,
    pub(crate) tcb: usize,
    pub(crate) kt: usize,
    pub(crate) kv_blocks: usize,
    pub(crate) k_hi: usize,
    pub(crate) oh: usize,
    pub(crate) wv: usize,
    pub(crate) valid_w: usize,
    pub(crate) geom: StripGeom,
    pub(crate) p: usize,
    pub(crate) q: usize,
}

/// Where [`compute_strip`] gets its input rows — one variant per packing
/// strategy, constructed by the drivers.
pub(crate) enum StripSource<'a> {
    /// Fused/Sequential: the thread's per-strip packing buffer (written by
    /// the first `kv` iteration, read by the rest).
    PerStrip(&'a mut AlignedBuf),
    /// Sliced: a read-only window into the slab the driver packed for the
    /// current row-slice (`[c][ih_rel][row_stride]` layout, see
    /// [`crate::pack::pack_slice_slab`]).
    Slab {
        /// The packed slab.
        buf: &'a [f32],
        /// Slab rows per channel (`(slice_len−1)·stride + R`).
        rows_per_c: usize,
        /// Elements per slab row (`(Q−1)·stride + S`).
        row_stride: usize,
        /// First slab row of this strip (`(oh − slice_oh0)·stride`).
        row_off: usize,
    },
    /// None: zero-copy, every `kv` iteration reads the image directly.
    Direct,
}

/// Runs loop L7 for one output strip. Under the per-strip modes the first
/// `kv` iteration packs (fused or sequential per the schedule) and the
/// rest consume the packed buffer; under `Sliced`/`None` every iteration
/// reads the slab / the image directly.
pub(crate) fn compute_strip(
    ctx: StripCtx<'_>,
    mut src: StripSource<'_>,
    out_all: &SharedSlice<'_, f32>,
) {
    let shape = ctx.shape;
    let sched = ctx.sched;
    let kstride = ctx.p * ctx.q;
    // Accounting: a per-strip mode packs `tcb·R·WIN` floats once here
    // (fused gather and sequential packing move the same data) — the
    // zero-copy modes instead book those bytes as *saved* (the slab pack,
    // when there is one, adds its own `BytesPacked` at the slice level).
    // Either way the strip issues 2 FLOPs per MAC over `valid_w` output
    // pixels × the K channels this tile covers.
    if ndirect_probe::ENABLED {
        let covered_k = sched.tk.min(ctx.k_hi - ctx.kt) as u64;
        ndirect_probe::add(
            ndirect_probe::Counter::FlopsIssued,
            2 * ctx.valid_w as u64 * covered_k * ctx.tcb as u64 * shape.r as u64 * shape.s as u64,
        );
        let strip_bytes = (ctx.tcb * shape.r * ctx.geom.win * std::mem::size_of::<f32>()) as u64;
        match &src {
            StripSource::PerStrip(_) => {
                ndirect_probe::add(ndirect_probe::Counter::BytesPacked, strip_bytes);
            }
            StripSource::Slab { .. } | StripSource::Direct => {
                ndirect_probe::add(ndirect_probe::Counter::BytesPackSaved, strip_bytes);
            }
        }
    }
    for kv in 0..ctx.kv_blocks {
        let k0 = ctx.kt + kv * sched.vk;
        let valid_k = sched.vk.min(ctx.k_hi - k0);
        let tf = match ctx.pre_tf {
            Some(full) => full.block(k0 / sched.vk, ctx.ct, ctx.tcb),
            None => &ctx.tfbuf[kv * ctx.tf_block_len..(kv + 1) * ctx.tf_block_len],
        };
        let args = TileArgs {
            tcb: ctx.tcb,
            rdim: shape.r,
            sdim: shape.s,
            stride: shape.stride,
            tf,
            vk: sched.vk,
            obase: ((ctx.n * shape.k + k0) * ctx.p + ctx.oh) * ctx.q + ctx.wv,
            kstride,
            valid_w: ctx.valid_w,
            valid_k,
        };
        match &mut src {
            StripSource::PerStrip(bbuf) => {
                let bbuf = &mut **bbuf;
                if kv == 0 {
                    match sched.packing {
                        PackingMode::Fused => {
                            let mut rows = RowSource::Gather {
                                image: ctx.image,
                                ct: ctx.ct,
                                h: shape.h,
                                w: shape.w,
                                ih0: ctx.geom.ih0,
                                iw0: ctx.geom.iw0,
                                buf: bbuf,
                                win: ctx.geom.win,
                                rdim: shape.r,
                                prefetch: sched.prefetch,
                            };
                            // Fused mode gathers rows from inside the kernel
                            // loop, so its packing cost is attributed to
                            // MicroKernel.
                            let _mk = ndirect_probe::probe_phase!(MicroKernel);
                            run_tile(&mut rows, &args, sched.vw, out_all);
                        }
                        PackingMode::Sequential => {
                            {
                                let _pack = ndirect_probe::probe_phase!(Pack);
                                pack_strip(
                                    ctx.image, ctx.ct, ctx.tcb, shape.r, shape.h, shape.w,
                                    ctx.geom, bbuf,
                                );
                            }
                            let mut rows = RowSource::Packed {
                                buf: bbuf,
                                win: ctx.geom.win,
                                rdim: shape.r,
                            };
                            let _mk = ndirect_probe::probe_phase!(MicroKernel);
                            run_tile(&mut rows, &args, sched.vw, out_all);
                        }
                        // The drivers pair PerStrip sources only with the
                        // two per-strip packing modes.
                        PackingMode::None | PackingMode::Sliced { .. } => {
                            // AUDIT: allow(hotpath-no-panic) planner
                            // invariant; crashing loudly beats silently
                            // corrupt output.
                            unreachable!("per-strip source under a zero-copy packing mode")
                        }
                    }
                } else {
                    let mut rows = RowSource::Packed {
                        buf: bbuf,
                        win: ctx.geom.win,
                        rdim: shape.r,
                    };
                    let _mk = ndirect_probe::probe_phase!(MicroKernel);
                    run_tile(&mut rows, &args, sched.vw, out_all);
                }
            }
            StripSource::Slab {
                buf,
                rows_per_c,
                row_stride,
                row_off,
            } => {
                let mut rows = RowSource::Strided {
                    buf,
                    rows_per_c: *rows_per_c,
                    row_stride: *row_stride,
                    row_off: *row_off,
                    col_off: ctx.wv * shape.stride,
                    win: ctx.geom.win,
                };
                let _mk = ndirect_probe::probe_phase!(MicroKernel);
                run_tile(&mut rows, &args, sched.vw, out_all);
            }
            StripSource::Direct => {
                let mut rows = RowSource::Direct {
                    image: ctx.image,
                    ct: ctx.ct,
                    h: shape.h,
                    w: shape.w,
                    ih0: ctx.geom.ih0,
                    iw0: ctx.geom.iw0,
                    prefetch: sched.prefetch,
                };
                let _mk = ndirect_probe::probe_phase!(MicroKernel);
                run_tile(&mut rows, &args, sched.vw, out_all);
            }
        }
    }
}

/// nDirect for `NHWC` activations / `KRSC` filters — delegates to the
/// native `NHWC` kernel ([`crate::nhwc`]), no layout conversion involved.
pub fn conv_ndirect_nhwc(
    pool: &StaticPool,
    input: &Tensor4,
    filter: &Filter,
    shape: &ConvShape,
) -> Tensor4 {
    crate::nhwc::conv_ndirect_nhwc_native(pool, input, filter, shape)
}

/// Fallible form of [`conv_ndirect_nhwc`].
pub fn try_conv_ndirect_nhwc(
    pool: &StaticPool,
    input: &Tensor4,
    filter: &Filter,
    shape: &ConvShape,
) -> Result<Tensor4, Error> {
    crate::nhwc::try_conv_ndirect_nhwc_native(pool, input, filter, shape)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::FilterState;
    use ndirect_baselines::naive;
    use ndirect_tensor::{assert_close, fill, FilterLayout, Padding};
    use ndirect_threads::Grid2;

    fn problem(shape: &ConvShape, seed: u64) -> (Tensor4, Filter) {
        (
            fill::random_tensor(Tensor4::input_for(shape, ActLayout::Nchw), seed),
            fill::random_filter(Filter::for_shape(shape, FilterLayout::Kcrs), seed),
        )
    }

    fn check_with(shape: ConvShape, schedule: &Schedule, pool_size: usize, what: &str) {
        let (input, filter) = problem(&shape, 5);
        let expect = naive::conv_ref(&input, &filter, &shape);
        let pool = StaticPool::new(pool_size);
        let got = conv_ndirect_with(&pool, &input, &filter, &shape, schedule);
        assert_close(got.as_slice(), expect.as_slice(), 2e-4, what);
    }

    #[test]
    fn matches_naive_minimal_schedule() {
        let shape = ConvShape::new(1, 3, 8, 10, 5, 3, 3, 1, Padding::NONE);
        check_with(shape, &Schedule::minimal(&shape), 1, "minimal");
    }

    #[test]
    fn matches_naive_derived_schedule() {
        let shape = ConvShape::square(2, 16, 24, 14, 3, 1);
        let sched = Schedule::derive(&ndirect_platform::host(), &shape, 1);
        check_with(shape, &sched, 1, "derived");
    }

    #[test]
    fn matches_naive_with_padding_and_stride() {
        for (rs, stride) in [(3, 1), (3, 2), (1, 1), (1, 2), (5, 2), (7, 2)] {
            let shape = ConvShape::square(1, 5, 9, 19, rs, stride);
            check_with(shape, &Schedule::minimal(&shape), 1, "pad/stride");
        }
    }

    #[test]
    fn wide_register_tile_executes() {
        // The Eq. 4 optimum for 5x5 on NEON is (Vw, Vk) = (24, 4); run it
        // on the actual kernels (monomorphized wide arms + tails).
        let shape = ConvShape::square(1, 4, 8, 30, 5, 1);
        let mut sched = Schedule::minimal(&shape);
        sched.vw = 24;
        sched.vk = 4;
        check_with(shape, &sched, 1, "wide (24,4) tile");
    }

    #[test]
    fn matches_naive_odd_sizes() {
        // Dimensions chosen to exercise every tail: K=13 (vk tail), C=5
        // (tc tail), Q=17 (vw tail).
        let shape = ConvShape::new(2, 5, 9, 17, 13, 3, 3, 1, Padding::same(1));
        let mut sched = Schedule::minimal(&shape);
        sched.vw = 8;
        sched.vk = 4;
        sched.tc = 3;
        sched.tk = 8;
        sched.th = 2;
        check_with(shape, &sched, 1, "odd sizes");
    }

    #[test]
    fn sequential_packing_matches_fused() {
        let shape = ConvShape::square(1, 8, 16, 12, 3, 1);
        let (input, filter) = problem(&shape, 9);
        let pool = StaticPool::new(1);
        let fused = conv_ndirect_with(
            &pool, &input, &filter, &shape,
            &Schedule::minimal(&shape).with_packing(PackingMode::Fused),
        );
        let seq = conv_ndirect_with(
            &pool, &input, &filter, &shape,
            &Schedule::minimal(&shape).with_packing(PackingMode::Sequential),
        );
        assert_eq!(fused.as_slice(), seq.as_slice(), "packing modes agree bitwise");
    }

    #[test]
    fn zero_copy_modes_match_fused_bitwise() {
        // The zero-overhead direct path and the sliced path must be
        // bitwise-identical to the packed path — including stride 2,
        // heavy padding, a pointwise layer, and every tail kind.
        let shapes = [
            ConvShape::square(1, 8, 16, 12, 3, 1),
            ConvShape::new(2, 5, 9, 17, 13, 3, 3, 2, Padding::same(1)),
            ConvShape::square(1, 4, 16, 9, 1, 1),
            ConvShape::new(1, 4, 9, 9, 8, 5, 5, 1, Padding::same(2)),
        ];
        let pool = StaticPool::new(1);
        for (i, shape) in shapes.into_iter().enumerate() {
            let (input, filter) = problem(&shape, 21 + i as u64);
            let base = Schedule::minimal(&shape);
            let fused = conv_ndirect_with(
                &pool, &input, &filter, &shape,
                &base.with_packing(PackingMode::Fused),
            );
            for mode in [
                PackingMode::None,
                PackingMode::Sliced { rows: 1 },
                PackingMode::Sliced { rows: 3 },
                PackingMode::Sliced { rows: 1000 }, // sanitize clamps to Th
            ] {
                let got =
                    conv_ndirect_with(&pool, &input, &filter, &shape, &base.with_packing(mode));
                assert_eq!(
                    fused.as_slice(),
                    got.as_slice(),
                    "shape {i} under {mode:?} must be bitwise identical to Fused"
                );
            }
        }
    }

    #[test]
    fn none_mode_allocates_no_strip_buffer() {
        let shape = ConvShape::square(1, 8, 16, 12, 3, 1);
        let sched = Schedule::minimal(&shape).with_packing(PackingMode::None).sanitized(&shape);
        let scratch = try_alloc_scratch(&sched, &shape, 1).unwrap();
        let guard = scratch[0].lock().unwrap();
        assert_eq!(guard.bbuf.len(), 0, "zero-copy mode must not allocate a strip buffer");

        // The sliced slab is bounded by rows, not by the full image.
        let sliced = sched.with_packing(PackingMode::Sliced { rows: 2 }).sanitized(&shape);
        let scratch = try_alloc_scratch(&sliced, &shape, 1).unwrap();
        let guard = scratch[0].lock().unwrap();
        let row_win = (shape.q() - 1) * shape.stride + shape.s;
        assert_eq!(guard.bbuf.len(), sliced.tc * (shape.stride + shape.r) * row_win);
    }

    #[test]
    fn pretransformed_matches_on_the_fly() {
        let shape = ConvShape::square(1, 6, 20, 10, 3, 1);
        let (input, filter) = problem(&shape, 11);
        let pool = StaticPool::new(1);
        let otf = conv_ndirect_with(
            &pool, &input, &filter, &shape,
            &Schedule::minimal(&shape).with_filter_state(FilterState::OnTheFly),
        );
        let pre = conv_ndirect_with(
            &pool, &input, &filter, &shape,
            &Schedule::minimal(&shape).with_filter_state(FilterState::PreTransformed),
        );
        assert_eq!(otf.as_slice(), pre.as_slice(), "filter states agree bitwise");
    }

    #[test]
    fn thread_grids_agree_bitwise() {
        let shape = ConvShape::square(2, 8, 24, 10, 3, 1);
        let (input, filter) = problem(&shape, 13);
        let base = {
            let pool = StaticPool::new(1);
            conv_ndirect_with(&pool, &input, &filter, &shape, &Schedule::minimal(&shape))
        };
        for (ptn, ptk) in [(1, 2), (2, 1), (2, 2), (4, 1), (1, 4), (3, 2)] {
            let pool = StaticPool::new(ptn * ptk);
            let sched = Schedule::minimal(&shape).with_grid(Grid2::new(ptn, ptk));
            let got = conv_ndirect_with(&pool, &input, &filter, &shape, &sched);
            assert_eq!(
                got.as_slice(),
                base.as_slice(),
                "grid {ptn}x{ptk} must be bitwise identical"
            );
        }
    }

    #[test]
    fn more_threads_than_work() {
        // 1 image, tiny P, K=4: most threads idle but result is right.
        let shape = ConvShape::new(1, 3, 4, 6, 4, 3, 3, 1, Padding::NONE);
        let sched = Schedule::minimal(&shape).with_grid(Grid2::new(4, 2));
        check_with(shape, &sched, 8, "idle threads");
    }

    #[test]
    fn default_entry_point_works() {
        let shape = ConvShape::square(1, 8, 8, 9, 3, 1);
        let (input, filter) = problem(&shape, 15);
        let expect = naive::conv_ref(&input, &filter, &shape);
        let pool = StaticPool::new(2);
        let got = conv_ndirect(&pool, &input, &filter, &shape);
        assert_close(got.as_slice(), expect.as_slice(), 2e-4, "default entry");
    }

    #[test]
    fn nhwc_entry_point_matches() {
        let shape = ConvShape::square(2, 5, 7, 8, 3, 1);
        let (input, filter) = problem(&shape, 19);
        let expect = naive::conv_ref(&input, &filter, &shape);
        let pool = StaticPool::new(1);
        let got = conv_ndirect_nhwc(
            &pool,
            &input.to_layout(ActLayout::Nhwc),
            &filter.to_layout(FilterLayout::Krsc),
            &shape,
        );
        assert_eq!(got.layout(), ActLayout::Nhwc);
        assert_close(
            got.to_layout(ActLayout::Nchw).as_slice(),
            expect.as_slice(),
            2e-4,
            "nhwc entry",
        );
    }

    #[test]
    #[should_panic(expected = "schedule needs")]
    fn rejects_grid_larger_than_pool() {
        let shape = ConvShape::square(1, 4, 4, 6, 3, 1);
        let (input, filter) = problem(&shape, 1);
        let pool = StaticPool::new(1);
        let sched = Schedule::minimal(&shape).with_grid(Grid2::new(2, 2));
        conv_ndirect_with(&pool, &input, &filter, &shape, &sched);
    }

    #[test]
    fn scratch_size_overflow_is_an_error_not_a_panic() {
        // An unsanitized schedule with an absurd tile must fail in the
        // checked size arithmetic, never in the allocator or a panic.
        let shape = ConvShape::square(1, 8, 8, 10, 3, 1);
        let mut sched = Schedule::minimal(&shape);
        sched.tc = usize::MAX / 2;
        assert!(try_alloc_scratch(&sched, &shape, 1).is_err());
    }

    #[test]
    fn scratch_refusal_degrades_to_the_minimal_schedule() {
        // A shape with an enormous channel count makes the derived scratch
        // request exceed the address space; the driver's fallback (minimal
        // tiles on the same grid) must still allocate for the same shape.
        let shape = ConvShape::new(1, 1 << 48, 8, 8, 4, 3, 3, 1, Padding::NONE);
        let mut sched = Schedule::minimal(&shape);
        sched.tc = shape.c; // survives sanitize: tc is clamped to C
        let sched = sched.sanitized(&shape);
        assert!(
            try_alloc_scratch(&sched, &shape, 1).is_err(),
            "petabyte scratch request must be refused"
        );

        // Mirror the driver's degradation path.
        let mut fallback = Schedule::minimal(&shape)
            .with_grid(sched.grid)
            .with_packing(sched.packing)
            .with_filter_state(sched.filter_state)
            .sanitized(&shape);
        fallback.vw = fallback.vw.min(sched.vw);
        assert!(
            try_alloc_scratch(&fallback, &shape, 1).is_ok(),
            "minimal fallback must allocate for the same shape"
        );
    }
}

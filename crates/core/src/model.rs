//! The paper's analytic models (Eqs. 1–6).
//!
//! nDirect replaces auto-tuning with three closed-form models: a register
//! allocation model picking the micro-kernel tile `(Vw, Vk)`, cache-capacity
//! inequalities picking the loop tiles `(Tc, Tk, Th)`, and an arithmetic-
//! intensity model picking the thread grid `(PTn, PTk)`.

pub mod register_tile {
    //! Eqs. 3–4: the register-tile model.
    //!
    //! Constraint (Eq. 3): the micro-kernel's working set must fit the
    //! vector register file —
    //! `⌈(Vw+S−1)/4⌉` input registers + `Vk/4` filter registers +
    //! `Vw·Vk/4` output accumulators ≤ `num_vregs`, with `Vk % 4 == 0`.
    //!
    //! Objective (Eq. 4): maximize the floating-point arithmetic intensity
    //! of one `L9` iteration,
    //! `FAI = 2·S·Vw·Vk / (Vw + S − 1 + S·Vk)`
    //! (2 flops per FMA over `S` unrolled taps, against `Vw+S−1` input and
    //! `S·Vk` filter element loads).
    //!
    //! `Vw % 4 == 0` is implied by Algorithm 3's register scheme: input
    //! pixels are addressed as *lanes* of full vector registers (`V2[0]` …
    //! `V4[3]` covers exactly `Vw = 12` lanes of three registers), so the
    //! output-pixel count must tile into whole 4-lane groups.
    //!
    //! The paper solves this with Lagrange multipliers; with ≤ 32 registers
    //! the integer space is tiny, so we take the exact argmax by
    //! enumeration, breaking FAI ties toward larger `Vk` (more streaming
    //! filter reuse per packed input element) — this reproduces the paper's
    //! `(Vw, Vk) = (12, 8)` on 32 × 128-bit NEON for 3×3 kernels (the tied
    //! alternative `(24, 4)` loses the tie-break).

    use ndirect_platform::SimdSpec;

    /// Registers used by a candidate tile (the left side of Eq. 3) for
    /// 4-lane (128-bit) vectors.
    pub fn registers_used(vw: usize, vk: usize, s: usize) -> usize {
        registers_used_lanes(vw, vk, s, 4)
    }

    /// Eq. 3 generalized to `lanes` FP32 per vector register — the §10.1
    /// SVE portability story: a 512-bit SVE machine has `lanes = 16`, so
    /// the same inequality yields proportionally deeper/wider tiles.
    pub fn registers_used_lanes(vw: usize, vk: usize, s: usize, lanes: usize) -> usize {
        (vw + s - 1).div_ceil(lanes) + vk / lanes + vw * vk / lanes
    }

    /// FAI of one loop-L9 iteration (Eq. 4), generalized to kernel width
    /// `s` (the paper writes it for `S = 3`).
    pub fn fai(vw: usize, vk: usize, s: usize) -> f64 {
        let flops = 2.0 * s as f64 * vw as f64 * vk as f64;
        let loads = (vw + s - 1) as f64 + (s * vk) as f64;
        flops / loads
    }

    /// Instruction-level FAI for ISAs *without* lane-indexed FMA: the input
    /// operand costs one broadcast load per pixel instead of one vector
    /// load per 4 pixels, so the relevant ratio is vector-FMAs per
    /// memory op, `(Vw·Vk/4) / (Vw + Vk/4)` per tap.
    pub fn fai_splat(vw: usize, vk: usize) -> f64 {
        let fmas = (vw * vk / 4) as f64;
        let ops = vw as f64 + (vk / 4) as f64;
        fmas / ops
    }

    /// The FAI-optimal `(Vw, Vk)` under the register constraint (Eq. 3),
    /// maximizing Eq. 4 on lane-FMA ISAs and the instruction-level
    /// [`fai_splat`] variant elsewhere.
    pub fn optimal_tile(simd: &SimdSpec, s: usize) -> (usize, usize) {
        let s = s.max(1);
        let lanes = simd.f32_lanes().max(1);
        let mut best = (lanes, lanes);
        let mut best_key = (f64::MIN, 0usize);
        for vk in (lanes..=simd.num_vregs * lanes).step_by(lanes) {
            for vw in (lanes..=simd.num_vregs * lanes).step_by(lanes) {
                if registers_used_lanes(vw, vk, s, lanes) > simd.num_vregs {
                    continue;
                }
                let score = if simd.lane_fma {
                    fai(vw, vk, s)
                } else {
                    fai_splat(vw, vk)
                };
                let key = (score, vk);
                if key.0 > best_key.0 + 1e-12
                    || ((key.0 - best_key.0).abs() <= 1e-12 && vk > best_key.1)
                {
                    best = (vw, vk);
                    best_key = key;
                }
            }
        }
        best
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use ndirect_platform::SimdSpec;

        #[test]
        fn paper_tile_for_3x3_on_neon() {
            assert_eq!(optimal_tile(&SimdSpec::NEON, 3), (12, 8));
        }

        #[test]
        fn paper_register_accounting_for_12x8() {
            // ⌈14/4⌉ + 8/4 + 96/4 = 4 + 2 + 24 = 30 ≤ 32 (V2–V5, V0–V1,
            // V8–V31 in Algorithm 3).
            assert_eq!(registers_used(12, 8, 3), 30);
        }

        #[test]
        fn fai_matches_hand_computation() {
            // 2*3*12*8 / (12+2 + 3*8) = 576/38.
            assert!((fai(12, 8, 3) - 576.0 / 38.0).abs() < 1e-12);
        }

        #[test]
        fn constraint_is_respected_for_all_s() {
            for s in 1..=7 {
                let (vw, vk) = optimal_tile(&SimdSpec::NEON, s);
                assert!(registers_used(vw, vk, s) <= 32, "s={s} ({vw},{vk})");
                assert_eq!(vk % 4, 0);
            }
        }

        #[test]
        fn smaller_register_file_shrinks_tile() {
            // 16 XMM registers (x86_64), no lane-indexed FMA.
            let sse = SimdSpec {
                vector_bits: 128,
                num_vregs: 16,
                fma_per_cycle: 1.0,
                lane_fma: false,
            };
            let (vw, vk) = optimal_tile(&sse, 3);
            assert!(registers_used(vw, vk, 3) <= 16);
            assert!(vw * vk < 12 * 8);
            // The splat-cost model prefers the deep (4, 8) tile measured
            // fastest on SSE hosts over Eq. 4's (8, 4).
            assert_eq!((vw, vk), (4, 8));
        }

        #[test]
        fn sve_512_scales_the_tile_with_lane_count() {
            // §10.1: the same Eq. 3/4 with 16-lane registers. Tiles must be
            // lane-multiples and respect the 32-register file.
            let sve = SimdSpec {
                vector_bits: 512,
                num_vregs: 32,
                fma_per_cycle: 2.0,
                lane_fma: true,
            };
            let (vw, vk) = optimal_tile(&sve, 3);
            assert_eq!(vw % 16, 0);
            assert_eq!(vk % 16, 0);
            assert!(registers_used_lanes(vw, vk, 3, 16) <= 32);
            // The accumulator tile grows markedly over NEON's 96 elements
            // ((16,16) = 256: each accumulator register now holds 16
            // outputs, so fewer registers hold more of the tile).
            assert!(vw * vk >= 2 * 96, "({vw},{vk})");
        }

        #[test]
        fn one_by_one_kernels_still_fill_registers() {
            let (vw, vk) = optimal_tile(&SimdSpec::NEON, 1);
            assert!(registers_used(vw, vk, 1) <= 32);
            // FAI for S=1 is symmetric in (Vw, Vk); the optimum is the
            // 8×12-element tile (96 accumulators in 24 registers).
            assert_eq!(vw * vk, 96);
        }
    }
}

pub mod cache_tiles {
    //! Eqs. 1–2: the cache-capacity tile model.
    //!
    //! * Eq. 1 (L1): one `R × Tc × (Vw+S−1)` input slice plus two
    //!   `Vk × Tc × R × S` filter slices must fit the L1 data cache ⇒ `Tc`.
    //! * Eq. 2 (L2): one `Tk × Tc × R × S` filter block plus two
    //!   `R × Tc × (Vw+S−1)` input slices must fit (the paper reserves the
    //!   rest of L2 for instructions and output elements) ⇒ `Tk`.
    //! * `Th` analogously against the per-core LLC share when an L3 exists;
    //!   with no L3 (Phytium 2000+, RPi 4) the row loop is left untiled
    //!   (`Th = P`).

    use ndirect_platform::Platform;
    use ndirect_tensor::ConvShape;

    /// Derived cache tiles.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct CacheTiles {
        /// Channel tile (Eq. 1).
        pub tc: usize,
        /// Output-channel tile (Eq. 2).
        pub tk: usize,
        /// Output-row tile (L3 analogue).
        pub th: usize,
    }

    /// Solves Eqs. 1–2 (plus the L3 analogue) for a shape on a platform.
    pub fn derive(platform: &Platform, shape: &ConvShape, vw: usize, vk: usize) -> CacheTiles {
        let f = 4; // bytes per f32
        let (r, s) = (shape.r, shape.s);
        let win = vw + s - 1; // stride-1 presentation, as in the paper
        let l1 = platform.cache.l1d / f;
        let l2 = platform.cache.l2_per_core() / f;

        // Eq. 1: R·Tc·(Vw+S−1) + 2·Vk·Tc·R·S < C_L1.
        let tc_denom = r * win + 2 * vk * r * s;
        let tc = (l1 / tc_denom).clamp(1, shape.c);

        // Eq. 2: Tk·Tc·R·S + 2·R·Tc·(Vw+S−1) < C_L2 (half of L2 reserved
        // for instructions and output, per the paper's discussion).
        let budget = l2 / 2;
        let used_by_input = 2 * r * tc * win;
        let tk_raw = budget.saturating_sub(used_by_input) / (tc * r * s).max(1);
        let tk = ((tk_raw / vk).max(1) * vk).min(shape.k.div_ceil(vk) * vk);

        // L3 analogue: two Tc·((Th−1)·str+R)·W input row-blocks per core.
        let th = match platform.cache.l3 {
            Some(l3) => {
                let l3f = l3 / f / platform.cores;
                let rows = (l3f / 2) / (tc * shape.w).max(1);
                let th_raw = (rows.saturating_sub(r) / shape.stride).saturating_add(1);
                th_raw.clamp(1, shape.p())
            }
            None => shape.p(),
        };

        CacheTiles { tc, tk, th }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use ndirect_platform::{kp920, phytium_2000p, rpi4};

        fn shape() -> ConvShape {
            ConvShape::square(64, 128, 128, 28, 3, 1)
        }

        #[test]
        fn l1_inequality_holds() {
            for p in [phytium_2000p(), kp920(), rpi4()] {
                let t = derive(&p, &shape(), 12, 8);
                let lhs = 3 * t.tc * (12 + 2) + 2 * 8 * t.tc * 9;
                assert!(lhs * 4 <= p.cache.l1d, "{}: lhs={lhs}", p.name);
                assert!(t.tc >= 1);
            }
        }

        #[test]
        fn l2_inequality_holds() {
            for p in [phytium_2000p(), kp920(), rpi4()] {
                let t = derive(&p, &shape(), 12, 8);
                let lhs = t.tk * t.tc * 9 + 2 * 3 * t.tc * 14;
                assert!(
                    lhs * 4 <= p.cache.l2_per_core(),
                    "{}: lhs bytes = {}",
                    p.name,
                    lhs * 4
                );
            }
        }

        #[test]
        fn tk_is_vk_multiple() {
            for p in [phytium_2000p(), kp920()] {
                let t = derive(&p, &shape(), 12, 8);
                assert_eq!(t.tk % 8, 0);
            }
        }

        #[test]
        fn no_l3_means_untiled_rows() {
            let t = derive(&phytium_2000p(), &shape(), 12, 8);
            assert_eq!(t.th, shape().p());
            let t = derive(&kp920(), &shape(), 12, 8);
            assert!(t.th >= 1 && t.th <= shape().p());
        }

        #[test]
        fn tiles_never_exceed_problem() {
            let tiny = ConvShape::square(1, 2, 4, 6, 3, 1);
            let t = derive(&kp920(), &tiny, 12, 8);
            assert!(t.tc <= 2);
            assert!(t.th <= tiny.p());
        }
    }
}

pub mod slicing {
    //! Slab sizing for [`crate::PackingMode::Sliced`].
    //!
    //! The sliced schedule packs one cache-resident input slab per
    //! `rows`-row slice of the `Th` tile and reuses it across every `Tk`
    //! tile and strip window of the slice. The slab must stay resident
    //! next to the `Tk × Tc × R × S` filter block Eq. 2 already budgets,
    //! so we size it against the same half-of-L2 reservation: pick the
    //! largest `rows` with
    //! `Tc · ((rows−1)·str + R) · ((Q−1)·str + S) · 4 ≤ C_L2 / 2`.

    use ndirect_platform::Platform;
    use ndirect_tensor::ConvShape;

    /// Bytes one `rows`-row slab occupies for a `tc`-channel tile.
    pub fn slab_bytes(shape: &ConvShape, tc: usize, rows: usize) -> usize {
        let row_win = (shape.q() - 1) * shape.stride + shape.s;
        let slab_rows = (rows.max(1) - 1) * shape.stride + shape.r;
        tc * slab_rows * row_win * 4
    }

    /// The largest slice length whose slab fits half the per-core L2,
    /// clamped to `[1, P]`. Degrades to 1 row when even a single strip
    /// row overflows the budget (the slab then still beats per-strip
    /// packing on reuse across `Tk` tiles).
    pub fn slab_rows(platform: &Platform, shape: &ConvShape, tc: usize) -> usize {
        let budget = platform.cache.l2_per_core() / 2 / 4; // floats
        let row_win = (shape.q() - 1) * shape.stride + shape.s;
        let per_row = (tc * row_win).max(1);
        let max_slab_rows = budget / per_row;
        let rows = max_slab_rows
            .saturating_sub(shape.r)
            .checked_div(shape.stride)
            .unwrap_or(0)
            .saturating_add(1);
        rows.clamp(1, shape.p())
    }

    /// Bytes one `rows`-row *depthwise-output* slab occupies for the fused
    /// dw+pw path: `C · rows · Q · 4`. Unlike [`slab_bytes`] the fused slab
    /// holds finished depthwise rows, not an input window, so there is no
    /// `R`/stride halo — the pointwise consumer is 1×1 stride-1.
    pub fn fused_slab_bytes(dw_shape: &ConvShape, rows: usize) -> usize {
        dw_shape.c * rows.max(1) * dw_shape.q() * 4
    }

    /// The largest fused dw-output slice length whose slab fits half the
    /// per-core L2, clamped to `[1, P]`. Same Eq. 2 reservation as
    /// [`slab_rows`]; degrades to 1 row when even a single `C·Q` row plane
    /// overflows the budget.
    pub fn fused_slab_rows(platform: &Platform, dw_shape: &ConvShape) -> usize {
        let budget = platform.cache.l2_per_core() / 2 / 4; // floats
        let per_row = (dw_shape.c * dw_shape.q()).max(1);
        (budget / per_row).clamp(1, dw_shape.p())
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use ndirect_platform::{kp920, phytium_2000p, rpi4};
        use ndirect_tensor::ConvShape;

        #[test]
        fn slab_fits_half_l2_or_is_one_row() {
            for p in [phytium_2000p(), kp920(), rpi4()] {
                for shape in [
                    ConvShape::square(1, 64, 64, 56, 3, 1),
                    ConvShape::square(1, 256, 256, 14, 3, 2),
                    ConvShape::square(1, 512, 512, 7, 1, 1),
                ] {
                    let tc = 16.min(shape.c);
                    let rows = slab_rows(&p, &shape, tc);
                    assert!(rows >= 1 && rows <= shape.p(), "{}: rows={rows}", p.name);
                    if rows > 1 {
                        assert!(
                            slab_bytes(&shape, tc, rows) <= p.cache.l2_per_core() / 2,
                            "{}: {} bytes",
                            p.name,
                            slab_bytes(&shape, tc, rows)
                        );
                    }
                }
            }
        }

        #[test]
        fn wider_images_get_shorter_slices() {
            let p = kp920();
            let narrow = ConvShape::square(1, 64, 64, 56, 3, 1);
            let wide = ConvShape::square(1, 64, 64, 112, 3, 1);
            assert!(slab_rows(&p, &wide, 16) <= slab_rows(&p, &narrow, 16));
        }

        #[test]
        fn tiny_shapes_take_the_whole_row_range() {
            // A 7×7 late-stage layer fits entirely: rows == P.
            let p = kp920();
            let shape = ConvShape::square(1, 32, 32, 7, 3, 1);
            assert_eq!(slab_rows(&p, &shape, 8), shape.p());
        }

        #[test]
        fn fused_slab_fits_half_l2_or_is_one_row() {
            for p in [phytium_2000p(), kp920(), rpi4()] {
                for dw in [
                    ConvShape::square(1, 64, 64, 112, 3, 1),
                    ConvShape::square(1, 256, 256, 28, 3, 2),
                    ConvShape::square(1, 512, 512, 14, 3, 1),
                ] {
                    let rows = fused_slab_rows(&p, &dw);
                    assert!(rows >= 1 && rows <= dw.p(), "{}: rows={rows}", p.name);
                    if rows > 1 {
                        assert!(
                            fused_slab_bytes(&dw, rows) <= p.cache.l2_per_core() / 2,
                            "{}: {} bytes",
                            p.name,
                            fused_slab_bytes(&dw, rows)
                        );
                    }
                }
            }
        }

        #[test]
        fn fused_tiny_shapes_take_the_whole_row_range() {
            let p = kp920();
            let dw = ConvShape::square(1, 32, 32, 7, 3, 1);
            assert_eq!(fused_slab_rows(&p, &dw), dw.p());
        }
    }
}

pub mod thread_map {
    //! Eqs. 5–6: the thread-mapping model.
    //!
    //! Per-thread FAI (Eq. 5) balances streamed filter traffic (split over
    //! `PTk`) against α-weighted non-streamed input traffic (split over
    //! `PTn`). The AM–GM optimum (Eq. 6) is
    //! `PTn* = √(α·N·H·W / (K·R·S·str²))`; the paper takes the ceiling and
    //! assigns `PTk = PT / PTn`. Since `PTn` must divide the team size, we
    //! pick the factorization of `PT` whose `PTn` is closest (in log space)
    //! to the unconstrained optimum.

    use ndirect_platform::Platform;
    use ndirect_tensor::ConvShape;
    use ndirect_threads::Grid2;

    /// The unconstrained optimum `PTn*` of Eq. 6.
    pub fn ideal_ptn(platform: &Platform, shape: &ConvShape) -> f64 {
        let num = platform.alpha * (shape.n * shape.h * shape.w) as f64;
        let den = (shape.k * shape.r * shape.s) as f64 * (shape.stride * shape.stride) as f64;
        (num / den).sqrt()
    }

    /// Per-thread FAI for a candidate grid (Eq. 5) — exposed so the
    /// ablation benches can score alternative grids.
    pub fn fai(platform: &Platform, shape: &ConvShape, grid: Grid2) -> f64 {
        let ptn = grid.ptn() as f64;
        let str2 = (shape.stride * shape.stride) as f64;
        let nhw = (shape.n * shape.h * shape.w) as f64;
        let krs = (shape.k * shape.r * shape.s) as f64;
        1.0 / (ptn * str2 / nhw + platform.alpha / (krs * ptn))
    }

    /// Picks the grid for `threads` threads: the factorization whose `PTn`
    /// is log-closest to the Eq. 6 optimum (ties toward more `PTn`, the
    /// paper's ceiling).
    pub fn derive(platform: &Platform, shape: &ConvShape, threads: usize) -> Grid2 {
        let ideal = ideal_ptn(platform, shape).max(1.0);
        Grid2::factorizations(threads)
            .into_iter()
            .min_by(|a, b| {
                let da = (a.ptn() as f64 / ideal).ln().abs();
                let db = (b.ptn() as f64 / ideal).ln().abs();
                da.total_cmp(&db).then(b.ptn().cmp(&a.ptn()))
            })
            // `factorizations(t)` is non-empty for every t >= 1; a
            // degenerate t == 0 request degrades to the sequential grid.
            .unwrap_or_else(Grid2::sequential)
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use ndirect_platform::phytium_2000p;

        #[test]
        fn grid_multiplies_to_thread_count() {
            let p = phytium_2000p();
            for threads in [1, 2, 4, 64] {
                let shape = ConvShape::square(64, 128, 128, 28, 3, 1);
                let g = derive(&p, &shape, threads);
                assert_eq!(g.threads(), threads);
            }
        }

        #[test]
        fn large_spatial_batches_favor_ptn() {
            // Layer 24-like: huge N·H·W, small K ⇒ parallelize N/H/W.
            let p = phytium_2000p();
            let shape = ConvShape::square(64, 64, 64, 224, 3, 1);
            let g = derive(&p, &shape, 64);
            assert!(g.ptn() >= g.ptk(), "{g:?}");
        }

        #[test]
        fn many_channels_favor_ptk() {
            // Layer 23-like: K=512 on tiny 7x7 images, batch 4.
            let p = phytium_2000p();
            let shape = ConvShape::square(4, 2048, 512, 7, 1, 1);
            let g = derive(&p, &shape, 64);
            assert!(g.ptk() > 1, "{g:?}");
        }

        #[test]
        fn derived_grid_maximizes_model_fai_among_factorizations() {
            let p = phytium_2000p();
            let shape = ConvShape::square(64, 256, 256, 14, 3, 1);
            let chosen = derive(&p, &shape, 64);
            let best = Grid2::factorizations(64)
                .into_iter()
                .map(|g| fai(&p, &shape, g))
                .fold(f64::MIN, f64::max);
            // log-closest PTn to the optimum is FAI-optimal up to the
            // integrality gap; allow 2%.
            assert!(fai(&p, &shape, chosen) >= 0.98 * best);
        }

        #[test]
        fn stride_reduces_ideal_ptn() {
            let p = phytium_2000p();
            let s1 = ConvShape::square(64, 128, 128, 28, 3, 1);
            let s2 = ConvShape::square(64, 128, 128, 28, 3, 2);
            assert!(ideal_ptn(&p, &s2) < ideal_ptn(&p, &s1));
        }
    }
}

//! Shared plan registry: build each [`ConvPlan`] once, execute it from
//! many threads.
//!
//! A serving process holds one registry per model (or one global one) and
//! resolves every request through [`PlanRegistry::get_or_try_build`]. The
//! key is the *identity* of a planned layer: the convolution shape, the
//! frozen filter buffer (address + length), the thread count the plan's
//! grid was derived for, and a caller-chosen `tag` that distinguishes
//! alternative plans for the same layer (e.g. the serving layer keeps the
//! pinned fast plan under tag 0 and the minimal-schedule degraded plan
//! under tag 1).
//!
//! Keying on the filter's address encodes the frozen-weights contract of
//! inference: a plan packs the filter at build time, so it is only valid
//! for calls that pass the same filter buffer. A model that rebuilds or
//! moves its weights gets a fresh plan; a model that *mutates* weights in
//! place must not use a planning layer at all.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use ndirect_tensor::{ConvShape, Filter};

use crate::dwpw::FusedDwPwPlan;
use crate::error::Error;
use crate::plan::{ConvPlan, DepthwisePlan};

/// Identity of a planned layer: shape + frozen-filter identity + thread
/// count + caller tag.
///
/// Two-filter layers (the fused dw+pw block) extend the identity with the
/// second filter's buffer via [`PlanKey::for_pair`]; single-filter keys
/// leave those fields zero, so the two families never collide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// The convolution shape the plan was built for.
    pub shape: ConvShape,
    /// Address of the filter buffer the plan packed.
    fptr: usize,
    /// Length of the filter buffer in elements.
    flen: usize,
    /// Address of the second (pointwise) filter buffer for fused dw+pw
    /// keys; 0 for single-filter layers.
    fptr2: usize,
    /// Length of the second filter buffer; 0 for single-filter layers.
    flen2: usize,
    /// Thread count the plan's grid targets.
    pub threads: usize,
    /// Caller-chosen discriminator between alternative plans for the same
    /// layer (0 by convention for the primary plan).
    pub tag: u64,
}

impl PlanKey {
    /// Key for the primary plan (`tag == 0`) of a layer.
    pub fn new(shape: &ConvShape, filter: &Filter, threads: usize) -> Self {
        Self::with_tag(shape, filter, threads, 0)
    }

    /// Key for an alternative plan of the same layer, distinguished by
    /// `tag`.
    pub fn with_tag(shape: &ConvShape, filter: &Filter, threads: usize, tag: u64) -> Self {
        let data = filter.as_slice();
        Self {
            shape: *shape,
            fptr: data.as_ptr() as usize,
            flen: data.len(),
            fptr2: 0,
            flen2: 0,
            threads,
            tag,
        }
    }

    /// Key for a two-filter fused dw+pw layer: `shape` is the depthwise
    /// stage's, and both frozen filter buffers join the identity.
    pub fn for_pair(
        shape: &ConvShape,
        dw_filter: &Filter,
        pw_filter: &Filter,
        threads: usize,
        tag: u64,
    ) -> Self {
        let pw = pw_filter.as_slice();
        let mut key = Self::with_tag(shape, dw_filter, threads, tag);
        key.fptr2 = pw.as_ptr() as usize;
        key.flen2 = pw.len();
        key
    }
}

/// A concurrent build-once cache of planned layers, shared across worker
/// threads via `Arc`. Three plan families live side by side — standard
/// [`ConvPlan`]s, [`DepthwisePlan`]s, and fused [`FusedDwPwPlan`]s — each
/// in its own typed map under the same [`PlanKey`] identity scheme, so the
/// serving layer and the model backends resolve every layer kind through
/// one registry.
///
/// The mutexes are held only around the map access, never across a plan
/// build or an execution: a miss releases the lock, builds outside it,
/// and re-checks on insert (first build wins; a concurrent duplicate
/// build is discarded). Plans come out as `Arc`s so executions proceed
/// lock-free on the shared plan.
#[derive(Default)]
pub struct PlanRegistry {
    map: Mutex<HashMap<PlanKey, Arc<ConvPlan<'static>>>>,
    dw: Mutex<HashMap<PlanKey, Arc<DepthwisePlan<'static>>>>,
    fused: Mutex<HashMap<PlanKey, Arc<FusedDwPwPlan<'static>>>>,
}

impl std::fmt::Debug for PlanRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanRegistry")
            .field("plans", &self.len())
            .finish()
    }
}

impl PlanRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the cached plan for `key`, or builds, caches, and returns
    /// it. Build failures are returned to the caller and nothing is
    /// cached (a later call may retry — scratch refusal is transient).
    ///
    /// `build` runs *outside* the registry lock, so a slow plan build
    /// (schedule derivation + filter packing) never blocks concurrent
    /// lookups of other layers. Two threads racing on the same cold key
    /// may both build; the loser's plan is dropped and the winner's is
    /// returned to both.
    pub fn get_or_try_build(
        &self,
        key: PlanKey,
        build: impl FnOnce() -> Result<ConvPlan<'static>, Error>,
    ) -> Result<Arc<ConvPlan<'static>>, Error> {
        if let Some(plan) = self.get(&key) {
            return Ok(plan);
        }
        ndirect_probe::probe_count!(PlanCacheMisses, 1);
        let built = Arc::new(build()?);
        let mut map = lock_unpoisoned(&self.map);
        Ok(Arc::clone(map.entry(key).or_insert(built)))
    }

    /// Returns the cached plan for `key` without building.
    pub fn get(&self, key: &PlanKey) -> Option<Arc<ConvPlan<'static>>> {
        let map = lock_unpoisoned(&self.map);
        let hit = map.get(key).map(Arc::clone);
        if hit.is_some() {
            ndirect_probe::probe_count!(PlanCacheHits, 1);
        }
        hit
    }

    /// Returns the cached depthwise plan for `key`, or builds, caches, and
    /// returns it — same locking discipline as
    /// [`PlanRegistry::get_or_try_build`].
    pub fn get_or_try_build_depthwise(
        &self,
        key: PlanKey,
        build: impl FnOnce() -> Result<DepthwisePlan<'static>, Error>,
    ) -> Result<Arc<DepthwisePlan<'static>>, Error> {
        if let Some(plan) = self.get_depthwise(&key) {
            return Ok(plan);
        }
        ndirect_probe::probe_count!(PlanCacheMisses, 1);
        let built = Arc::new(build()?);
        let mut map = lock_unpoisoned(&self.dw);
        Ok(Arc::clone(map.entry(key).or_insert(built)))
    }

    /// Returns the cached depthwise plan for `key` without building.
    pub fn get_depthwise(&self, key: &PlanKey) -> Option<Arc<DepthwisePlan<'static>>> {
        let map = lock_unpoisoned(&self.dw);
        let hit = map.get(key).map(Arc::clone);
        if hit.is_some() {
            ndirect_probe::probe_count!(PlanCacheHits, 1);
        }
        hit
    }

    /// Returns the cached fused dw+pw plan for `key` (built with
    /// [`PlanKey::for_pair`]), or builds, caches, and returns it — same
    /// locking discipline as [`PlanRegistry::get_or_try_build`].
    pub fn get_or_try_build_fused(
        &self,
        key: PlanKey,
        build: impl FnOnce() -> Result<FusedDwPwPlan<'static>, Error>,
    ) -> Result<Arc<FusedDwPwPlan<'static>>, Error> {
        if let Some(plan) = self.get_fused(&key) {
            return Ok(plan);
        }
        ndirect_probe::probe_count!(PlanCacheMisses, 1);
        let built = Arc::new(build()?);
        let mut map = lock_unpoisoned(&self.fused);
        Ok(Arc::clone(map.entry(key).or_insert(built)))
    }

    /// Returns the cached fused dw+pw plan for `key` without building.
    pub fn get_fused(&self, key: &PlanKey) -> Option<Arc<FusedDwPwPlan<'static>>> {
        let map = lock_unpoisoned(&self.fused);
        let hit = map.get(key).map(Arc::clone);
        if hit.is_some() {
            ndirect_probe::probe_count!(PlanCacheHits, 1);
        }
        hit
    }

    /// Number of distinct plans cached, across all three families.
    pub fn len(&self) -> usize {
        lock_unpoisoned(&self.map).len()
            + lock_unpoisoned(&self.dw).len()
            + lock_unpoisoned(&self.fused).len()
    }

    /// Whether the registry holds no plans.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached plan (e.g. after a weight reload invalidated
    /// the filter identities).
    pub fn clear(&self) {
        lock_unpoisoned(&self.map).clear();
        lock_unpoisoned(&self.dw).clear();
        lock_unpoisoned(&self.fused).clear();
    }
}

fn lock_unpoisoned<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndirect_tensor::{fill, FilterLayout};

    fn problem() -> (ConvShape, Filter) {
        let shape = ConvShape::square(1, 4, 8, 7, 3, 1);
        let filter = fill::random_filter(Filter::for_shape(&shape, FilterLayout::Kcrs), 1);
        (shape, filter)
    }

    fn build(shape: &ConvShape, filter: &Filter) -> Result<ConvPlan<'static>, Error> {
        ConvPlan::try_new(&ndirect_platform::host(), shape, filter, 1)
    }

    #[test]
    fn builds_once_and_reuses() {
        let (shape, filter) = problem();
        let reg = PlanRegistry::new();
        let key = PlanKey::new(&shape, &filter, 1);
        let mut builds = 0;
        let a = reg
            .get_or_try_build(key, || {
                builds += 1;
                build(&shape, &filter)
            })
            .expect("first build");
        let b = reg
            .get_or_try_build(key, || {
                builds += 1;
                build(&shape, &filter)
            })
            .expect("cache hit");
        assert_eq!(builds, 1, "second lookup must not rebuild");
        assert!(Arc::ptr_eq(&a, &b), "both callers share one plan");
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn failed_build_is_not_cached_and_can_retry() {
        let (shape, filter) = problem();
        let reg = PlanRegistry::new();
        let key = PlanKey::new(&shape, &filter, 1);
        let err = reg.get_or_try_build(key, || Err(Error::ScratchAlloc { elements: 42 }));
        assert!(err.is_err());
        assert!(reg.is_empty(), "failures must not poison the cache");
        // The transient fault clears; the retry succeeds.
        reg.get_or_try_build(key, || build(&shape, &filter))
            .expect("retry after transient failure");
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn tags_separate_alternative_plans_for_one_layer() {
        let (shape, filter) = problem();
        let reg = PlanRegistry::new();
        let fast = PlanKey::new(&shape, &filter, 1);
        let degraded = PlanKey::with_tag(&shape, &filter, 1, 1);
        assert_ne!(fast, degraded);
        let a = reg
            .get_or_try_build(fast, || build(&shape, &filter))
            .expect("fast plan");
        let b = reg
            .get_or_try_build(degraded, || {
                let sched = crate::Schedule::minimal(&shape);
                ConvPlan::try_with_schedule(&shape, &filter, &sched)
            })
            .expect("degraded plan");
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn distinct_filter_buffers_are_distinct_layers() {
        let (shape, filter) = problem();
        let filter2 = fill::random_filter(Filter::for_shape(&shape, FilterLayout::Kcrs), 9);
        assert_ne!(
            PlanKey::new(&shape, &filter, 1),
            PlanKey::new(&shape, &filter2, 1),
            "frozen-weights identity keys on the buffer address"
        );
    }

    #[test]
    fn concurrent_cold_lookups_converge_to_one_plan() {
        let (shape, filter) = problem();
        let reg = Arc::new(PlanRegistry::new());
        let key = PlanKey::new(&shape, &filter, 1);
        let plans: Vec<_> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let reg = Arc::clone(&reg);
                    let (shape, filter) = (&shape, &filter);
                    s.spawn(move || {
                        reg.get_or_try_build(key, || build(shape, filter))
                            .expect("racing build")
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("no panic")).collect()
        });
        assert_eq!(reg.len(), 1, "one winner");
        assert!(plans.iter().all(|p| Arc::ptr_eq(p, &plans[0])));
    }

    fn dwpw_problem() -> (ConvShape, Filter, Filter) {
        let shape = ndirect_tensor::ConvShape::new(
            1,
            8,
            10,
            10,
            8,
            3,
            3,
            1,
            ndirect_tensor::Padding::same(1),
        );
        let dw = fill::random_filter(Filter::zeros(8, 1, 3, 3, FilterLayout::Kcrs), 2);
        let pw = fill::random_filter(Filter::zeros(12, 8, 1, 1, FilterLayout::Kcrs), 3);
        (shape, dw, pw)
    }

    #[test]
    fn depthwise_plans_register_and_reuse() {
        let (shape, dw, _) = dwpw_problem();
        let reg = PlanRegistry::new();
        let key = PlanKey::new(&shape, &dw, 1);
        let a = reg
            .get_or_try_build_depthwise(key, || DepthwisePlan::try_new(&shape, &dw, 1))
            .expect("dw build");
        let b = reg
            .get_or_try_build_depthwise(key, || panic!("must not rebuild"))
            .expect("dw hit");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(reg.len(), 1);
        // The same key in the ConvPlan family is still a miss: the maps
        // are typed, so a dw registration never shadows a conv plan.
        assert!(reg.get(&key).is_none());
    }

    #[test]
    fn pair_keys_distinguish_pointwise_filters() {
        let (shape, dw, pw) = dwpw_problem();
        let pw2 = fill::random_filter(Filter::zeros(12, 8, 1, 1, FilterLayout::Kcrs), 4);
        let a = PlanKey::for_pair(&shape, &dw, &pw, 1, 0);
        let b = PlanKey::for_pair(&shape, &dw, &pw2, 1, 0);
        assert_ne!(a, b, "a different pointwise filter is a different layer");
        assert_ne!(
            a,
            PlanKey::new(&shape, &dw, 1),
            "pair keys never collide with single-filter keys"
        );
    }

    #[test]
    fn concurrent_fused_lookups_share_one_plan() {
        let (shape, dw, pw) = dwpw_problem();
        let reg = Arc::new(PlanRegistry::new());
        let key = PlanKey::for_pair(&shape, &dw, &pw, 1, 0);
        let plans: Vec<_> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let reg = Arc::clone(&reg);
                    let (shape, dw, pw) = (&shape, &dw, &pw);
                    s.spawn(move || {
                        reg.get_or_try_build_fused(key, || {
                            FusedDwPwPlan::try_new(
                                &ndirect_platform::host(),
                                shape,
                                dw,
                                pw,
                                1,
                            )
                        })
                        .expect("racing fused build")
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("no panic")).collect()
        });
        assert_eq!(reg.len(), 1, "one winner");
        assert!(plans.iter().all(|p| Arc::ptr_eq(p, &plans[0])));
        // Shared-Arc execution: every clone runs the same plan instance.
        let pool = ndirect_threads::StaticPool::new(1);
        let input = fill::random_tensor(
            ndirect_tensor::Tensor4::input_for(&shape, ndirect_tensor::ActLayout::Nchw),
            5,
        );
        let mut out = ndirect_tensor::Tensor4::zeros(
            1,
            12,
            shape.p(),
            shape.q(),
            ndirect_tensor::ActLayout::Nchw,
        );
        plans[0].execute(&pool, &input, &mut out).expect("execute");
    }

    #[test]
    fn clear_empties_every_family() {
        let (shape, dw, pw) = dwpw_problem();
        let reg = PlanRegistry::new();
        reg.get_or_try_build_depthwise(PlanKey::new(&shape, &dw, 1), || {
            DepthwisePlan::try_new(&shape, &dw, 1)
        })
        .expect("dw");
        reg.get_or_try_build_fused(PlanKey::for_pair(&shape, &dw, &pw, 1, 0), || {
            FusedDwPwPlan::try_new(&ndirect_platform::host(), &shape, &dw, &pw, 1)
        })
        .expect("fused");
        assert_eq!(reg.len(), 2);
        reg.clear();
        assert!(reg.is_empty());
    }
}

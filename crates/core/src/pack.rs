//! Input packing: the linear buffer `B` and its gather (§5.3, Figure 3).
//!
//! For one output strip — `Vw` consecutive output pixels of row `oh`, all
//! channels of the current `Tc` tile — the micro-kernel reads
//! `Tc · R · WIN` input elements, where `WIN = (Vw−1)·str + S` is the input
//! footprint of the strip along `W`. In `NCHW` those elements sit in `Tc·R`
//! separate rows; [`gather_row`] copies each row into the dense buffer `B`
//! (zero-filling the parts that fall into padding), after which every
//! subsequent `kv` iteration of loop L7 reads `B` with perfect L1 locality.
//!
//! In [`crate::PackingMode::Fused`] mode the driver never calls a separate
//! packing pass: the first `kv` iteration's kernel gathers each `(c, r)`
//! row right before using it (see [`crate::kernel`]), placing the buffer
//! stores between FMA bursts exactly as the paper places `st` after `fma`
//! to let out-of-order execution hide them.

/// Geometry of one packed strip.
#[derive(Debug, Clone, Copy)]
pub struct StripGeom {
    /// Input elements per `(c, r)` row: `(vw_actual − 1)·str + S`.
    pub win: usize,
    /// First input row of the strip: `oh·str − pad.h` (may be negative).
    pub ih0: isize,
    /// First input column: `wv·str − pad.w` (may be negative).
    pub iw0: isize,
}

impl StripGeom {
    /// Geometry for output row `oh`, starting output column `wv`, strip
    /// width `vw` under `shape`.
    pub fn new(shape: &ndirect_tensor::ConvShape, oh: usize, wv: usize, vw: usize) -> Self {
        StripGeom {
            win: (vw - 1) * shape.stride + shape.s,
            ih0: (oh * shape.stride) as isize - shape.pad.h as isize,
            iw0: (wv * shape.stride) as isize - shape.pad.w as isize,
        }
    }
}

/// Copies `dst.len()/elem` logical columns starting at signed column
/// `iw0` from `row` (a `w`-column source with `elem` floats per column)
/// into `dst`, zero-filling columns outside `[0, w)` — the shared
/// clipped-copy every gather in the workspace is built on (`elem = 1` for
/// `NCHW` rows, `elem = C` for `NHWC` pixel slabs).
#[inline]
pub fn fill_row_clipped(row: &[f32], iw0: isize, w: usize, elem: usize, dst: &mut [f32]) {
    let win = dst.len() / elem;
    // Columns [lo, hi) of dst are in-bounds.
    let lo = (-iw0).max(0) as usize;
    let hi = ((w as isize - iw0).max(0) as usize).min(win);
    if lo >= hi {
        dst.fill(0.0);
        return;
    }
    dst[..lo * elem].fill(0.0);
    let src0 = (iw0 + lo as isize) as usize * elem;
    dst[lo * elem..hi * elem].copy_from_slice(&row[src0..src0 + (hi - lo) * elem]);
    dst[hi * elem..].fill(0.0);
}

/// Copies one `(c, r)` input row into `dst[0..win]`, zero-filling where the
/// row leaves the input (padding). `image` is one image's `CHW` data.
///
/// Split into the out-of-range memset case and an interior `copy_from_slice`
/// (via [`fill_row_clipped`]) so the common unpadded path is a straight
/// memcpy.
#[inline]
pub fn gather_row(
    image: &[f32],
    c: usize,
    ih: isize,
    iw0: isize,
    h: usize,
    w: usize,
    dst: &mut [f32],
) {
    if ih < 0 || ih as usize >= h {
        dst.fill(0.0);
        return;
    }
    let row0 = c * h * w + ih as usize * w;
    fill_row_clipped(&image[row0..row0 + w], iw0, w, 1, dst);
}

/// Issues a software prefetch for the `(c, ih)` input row that a later
/// [`gather_row`] with the same geometry will read. Clamps the start
/// column into `[0, w)` so the touched address is always in-bounds; rows
/// that fall entirely into padding (no source bytes) are skipped. Pure
/// hint: no-op on targets without a prefetch instruction.
#[inline]
pub fn prefetch_row(image: &[f32], c: usize, ih: isize, iw0: isize, h: usize, w: usize) {
    if ih < 0 || ih as usize >= h {
        return;
    }
    let col = iw0.clamp(0, w as isize - 1) as usize;
    let idx = c * h * w + ih as usize * w + col;
    ndirect_simd::prefetch_read(image[idx..].as_ptr());
}

/// Packs a whole strip (`tcb` channels × `R` rows) into `buf` — the
/// [`crate::PackingMode::Sequential`] path and the pre-pass for testing.
///
/// `buf` layout: `[c][r][win]`, `c` relative to `ct`.
#[allow(clippy::too_many_arguments)]
pub fn pack_strip(
    image: &[f32],
    ct: usize,
    tcb: usize,
    r: usize,
    h: usize,
    w: usize,
    geom: StripGeom,
    buf: &mut [f32],
) {
    // AUDIT: allow(hotpath-no-panic) O(1) guard protecting the unchecked
    // packing loop below; a failure is a planner sizing bug.
    assert!(buf.len() >= tcb * r * geom.win, "packing buffer too small");
    for c in 0..tcb {
        for rr in 0..r {
            let dst = &mut buf[(c * r + rr) * geom.win..(c * r + rr + 1) * geom.win];
            gather_row(image, ct + c, geom.ih0 + rr as isize, geom.iw0, h, w, dst);
        }
    }
}

/// Packs the cache-resident slab for one `rows`-row slice of a `Th` tile —
/// the [`crate::PackingMode::Sliced`] path (arXiv 2303.04739). The slab
/// covers the *full* output-row window (`row_win = (Q−1)·stride + S`
/// columns) of every input row the slice touches
/// (`slab_rows = (slice_len−1)·stride + R`), for channels `ct..ct+tcb`.
///
/// `buf` layout: `[c][ih_rel][row_win]` with `c` relative to `ct` and
/// `ih_rel` relative to the slab's first input row
/// `slice_oh0·stride − pad.h`. Every per-strip window of the slice is then
/// a contiguous sub-slice of one slab row — strip `(oh, wv)` reads slab row
/// `(oh − slice_oh0)·stride + rr` at column offset `wv·stride` — so the
/// kernels consume the slab via [`crate::kernel::RowSource::Strided`]
/// without any per-strip repacking; that sharing across `Tk` tiles and
/// overlapping strip windows is the mode's entire traffic win.
pub fn pack_slice_slab(
    image: &[f32],
    ct: usize,
    tcb: usize,
    shape: &ndirect_tensor::ConvShape,
    slice_oh0: usize,
    slice_len: usize,
    buf: &mut [f32],
) {
    let row_win = (shape.q() - 1) * shape.stride + shape.s;
    let slab_rows = (slice_len - 1) * shape.stride + shape.r;
    // AUDIT: allow(hotpath-no-panic) O(1) guard protecting the unchecked
    // packing loop below; a failure is a planner sizing bug.
    assert!(buf.len() >= tcb * slab_rows * row_win, "slab buffer too small");
    let ih_base = (slice_oh0 * shape.stride) as isize - shape.pad.h as isize;
    let iw0 = -(shape.pad.w as isize);
    for c in 0..tcb {
        for ir in 0..slab_rows {
            let dst =
                &mut buf[(c * slab_rows + ir) * row_win..(c * slab_rows + ir + 1) * row_win];
            gather_row(image, ct + c, ih_base + ir as isize, iw0, shape.h, shape.w, dst);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndirect_tensor::{fill, ActLayout, ConvShape, Padding, Tensor4};

    fn image(c: usize, h: usize, w: usize) -> Vec<f32> {
        let mut t = Tensor4::zeros(1, c, h, w, ActLayout::Nchw);
        fill::fill_iota(t.as_mut_slice());
        t.as_slice().to_vec()
    }

    #[test]
    fn interior_row_is_plain_copy() {
        let img = image(1, 4, 5);
        let mut dst = vec![9.0; 3];
        gather_row(&img, 0, 1, 1, 4, 5, &mut dst);
        assert_eq!(dst, vec![6.0, 7.0, 8.0]);
    }

    #[test]
    fn negative_row_zero_fills() {
        let img = image(1, 4, 5);
        let mut dst = vec![9.0; 3];
        gather_row(&img, 0, -1, 0, 4, 5, &mut dst);
        assert_eq!(dst, vec![0.0; 3]);
    }

    #[test]
    fn left_edge_zero_fills_prefix() {
        let img = image(1, 4, 5);
        let mut dst = vec![9.0; 4];
        gather_row(&img, 0, 0, -2, 4, 5, &mut dst);
        assert_eq!(dst, vec![0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn right_edge_zero_fills_suffix() {
        let img = image(1, 4, 5);
        let mut dst = vec![9.0; 4];
        gather_row(&img, 0, 0, 3, 4, 5, &mut dst);
        assert_eq!(dst, vec![3.0, 4.0, 0.0, 0.0]);
    }

    #[test]
    fn second_channel_offsets_correctly() {
        let img = image(3, 2, 2);
        let mut dst = vec![0.0; 2];
        gather_row(&img, 2, 1, 0, 2, 2, &mut dst);
        assert_eq!(dst, vec![10.0, 11.0]);
    }

    #[test]
    fn strip_geometry_for_stride_two() {
        let shape = ConvShape::new(1, 1, 9, 9, 1, 3, 3, 2, Padding::same(1));
        let g = StripGeom::new(&shape, 2, 1, 4);
        // WIN = 3*2 + 3 = 9; ih0 = 2*2-1 = 3; iw0 = 1*2-1 = 1.
        assert_eq!(g.win, 9);
        assert_eq!(g.ih0, 3);
        assert_eq!(g.iw0, 1);
    }

    #[test]
    fn slice_slab_windows_match_per_strip_packing() {
        // Every strip window of a slice must be readable out of the slab as
        // a contiguous sub-row identical to what pack_strip would gather —
        // including a stride-2 + padding shape where windows overlap.
        let shape = ConvShape::new(1, 2, 9, 9, 4, 3, 3, 2, Padding::same(1));
        let img = image(2, 9, 9);
        let (tcb, slice_oh0, slice_len) = (2, 1, 3);
        let row_win = (shape.q() - 1) * shape.stride + shape.s;
        let slab_rows = (slice_len - 1) * shape.stride + shape.r;
        let mut slab = vec![7.0; tcb * slab_rows * row_win];
        pack_slice_slab(&img, 0, tcb, &shape, slice_oh0, slice_len, &mut slab);

        for oh in slice_oh0..slice_oh0 + slice_len {
            let mut wv = 0;
            while wv < shape.q() {
                let vw = 4.min(shape.q() - wv);
                let g = StripGeom::new(&shape, oh, wv, vw);
                let mut strip = vec![0.0; tcb * shape.r * g.win];
                pack_strip(&img, 0, tcb, shape.r, shape.h, shape.w, g, &mut strip);
                for c in 0..tcb {
                    for rr in 0..shape.r {
                        let want = &strip[(c * shape.r + rr) * g.win..][..g.win];
                        let row = (oh - slice_oh0) * shape.stride + rr;
                        let got =
                            &slab[(c * slab_rows + row) * row_win + wv * shape.stride..][..g.win];
                        assert_eq!(got, want, "oh={oh} wv={wv} c={c} rr={rr}");
                    }
                }
                wv += vw;
            }
        }
    }

    #[test]
    fn pack_strip_matches_manual_gather() {
        let shape = ConvShape::new(1, 2, 5, 5, 1, 3, 3, 1, Padding::same(1));
        let img = image(2, 5, 5);
        let g = StripGeom::new(&shape, 0, 0, 4);
        let mut buf = vec![7.0; 2 * 3 * g.win];
        pack_strip(&img, 0, 2, 3, 5, 5, g, &mut buf);
        // (c=0, r=0) is input row -1: zeros.
        assert!(buf[..g.win].iter().all(|&x| x == 0.0));
        // (c=0, r=1) is input row 0 starting at col -1.
        assert_eq!(&buf[g.win..g.win + 3], &[0.0, 0.0, 1.0]);
        // (c=1, r=2) is channel 1, input row 1.
        let off = (3 + 2) * g.win;
        assert_eq!(buf[off], 0.0);
        assert_eq!(buf[off + 1], 30.0);
    }
}

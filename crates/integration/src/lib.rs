//! Carrier crate for the workspace-level integration tests in `tests/`
//! and the runnable examples in `examples/` (see the `[[test]]` and
//! `[[example]]` sections of this crate's manifest). It exports nothing.

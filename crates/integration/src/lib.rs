//! Carrier crate for the workspace-level integration tests in `tests/`
//! and the runnable examples in `examples/` (see the `[[test]]` and
//! `[[example]]` sections of this crate's manifest). It exports nothing.

// This crate has no business touching raw pointers; the auditor's
// lint-header rule holds that line at compile time.
#![forbid(unsafe_code)]

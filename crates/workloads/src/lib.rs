//! The paper's evaluation workloads.
//!
//! Table 4 lists 28 convolution operators: IDs 1–23 from ResNet-50 and
//! 24–28 from VGG-16, specified as `(C, K, H/W, R/S, str)`. The paper sets
//! the batch size `N` to the number of physical cores of the machine under
//! test (§7.2) and uses FP32 everywhere. Padding is not printed in the
//! table; the layers use the standard ImageNet-network convention (same
//! padding for odd kernels: 1 for 3×3, 3 for 7×7, none for 1×1), which is
//! what reproduces the networks' published feature-map sizes.

// This crate has no business touching raw pointers; the auditor's
// lint-header rule holds that line at compile time.
#![forbid(unsafe_code)]

#![warn(missing_docs)]

pub mod mobilenet;
pub mod table4;

pub use mobilenet::{mobilenet_pairs, pair_by_id, DwPwConfig, MOBILENET};
pub use table4::{
    fig1_layers, fig4_layers, resnet50_layers, vgg16_layers, LayerConfig, TABLE4,
};

use ndirect_tensor::{fill, ActLayout, ConvShape, Filter, FilterLayout, Tensor4};

/// A ready-to-run convolution problem: deterministic input and filter for a
/// shape, in the requested layouts.
pub struct Problem {
    /// The convolution configuration.
    pub shape: ConvShape,
    /// Seeded random input activations.
    pub input: Tensor4,
    /// Seeded random filter weights.
    pub filter: Filter,
}

/// Builds a seeded problem instance. The same `(shape, seed)` always yields
/// identical data, so backends can be compared element-wise.
pub fn make_problem(
    shape: ConvShape,
    act_layout: ActLayout,
    filter_layout: FilterLayout,
    seed: u64,
) -> Problem {
    let input = fill::random_tensor(Tensor4::input_for(&shape, act_layout), seed);
    let filter = fill::random_filter(Filter::for_shape(&shape, filter_layout), seed);
    Problem {
        shape,
        input,
        filter,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn problem_generation_is_deterministic() {
        let shape = ConvShape::square(1, 3, 4, 8, 3, 1);
        let a = make_problem(shape, ActLayout::Nchw, FilterLayout::Kcrs, 11);
        let b = make_problem(shape, ActLayout::Nchw, FilterLayout::Kcrs, 11);
        assert_eq!(a.input.as_slice(), b.input.as_slice());
        assert_eq!(a.filter.as_slice(), b.filter.as_slice());
        let c = make_problem(shape, ActLayout::Nchw, FilterLayout::Kcrs, 12);
        assert_ne!(a.input.as_slice(), c.input.as_slice());
    }

    #[test]
    fn problem_respects_layouts() {
        let shape = ConvShape::square(1, 3, 4, 8, 3, 1);
        let p = make_problem(shape, ActLayout::Nhwc, FilterLayout::Krsc, 1);
        assert_eq!(p.input.layout(), ActLayout::Nhwc);
        assert_eq!(p.filter.layout(), FilterLayout::Krsc);
    }
}

//! Table 4: the 28 convolution operator configurations.

use ndirect_tensor::ConvShape;

/// Source network of a Table 4 row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Network {
    /// He et al., 2016 (Table 4 IDs 1–23).
    ResNet50,
    /// Simonyan & Zisserman, 2015 (Table 4 IDs 24–28).
    Vgg16,
}

/// One row of Table 4: `(ID, C, K, H/W, R/S, str)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerConfig {
    /// Layer ID as printed in the paper (1–28).
    pub id: usize,
    /// Input channels `C`.
    pub c: usize,
    /// Output channels `K`.
    pub k: usize,
    /// Input height = width.
    pub hw: usize,
    /// Kernel height = width.
    pub rs: usize,
    /// Stride.
    pub stride: usize,
    /// Which network the layer comes from.
    pub network: Network,
}

impl LayerConfig {
    /// The convolution shape for batch size `n` (same padding for odd
    /// kernels, matching the source networks).
    pub fn shape(&self, n: usize) -> ConvShape {
        ConvShape::square(n, self.c, self.k, self.hw, self.rs, self.stride)
    }

    /// FLOPs at batch size `n`.
    pub fn flops(&self, n: usize) -> u64 {
        self.shape(n).flops()
    }
}

const fn row(id: usize, c: usize, k: usize, hw: usize, rs: usize, stride: usize, network: Network) -> LayerConfig {
    LayerConfig {
        id,
        c,
        k,
        hw,
        rs,
        stride,
        network,
    }
}

/// Table 4 verbatim. IDs 1–23: ResNet-50; 24–28: VGG-16.
pub const TABLE4: [LayerConfig; 28] = [
    row(1, 3, 64, 224, 7, 2, Network::ResNet50),
    row(2, 128, 128, 56, 3, 2, Network::ResNet50),
    row(3, 64, 64, 56, 3, 1, Network::ResNet50),
    row(4, 256, 512, 56, 1, 2, Network::ResNet50),
    row(5, 64, 64, 56, 1, 1, Network::ResNet50),
    row(6, 64, 256, 56, 1, 1, Network::ResNet50),
    row(7, 256, 64, 56, 1, 1, Network::ResNet50),
    row(8, 256, 128, 56, 1, 1, Network::ResNet50),
    row(9, 256, 256, 28, 3, 2, Network::ResNet50),
    row(10, 128, 128, 28, 3, 1, Network::ResNet50),
    row(11, 512, 1024, 28, 1, 2, Network::ResNet50),
    row(12, 512, 256, 28, 1, 1, Network::ResNet50),
    row(13, 512, 128, 28, 1, 1, Network::ResNet50),
    row(14, 128, 512, 28, 1, 1, Network::ResNet50),
    row(15, 512, 512, 14, 3, 2, Network::ResNet50),
    row(16, 256, 256, 14, 3, 1, Network::ResNet50),
    row(17, 1024, 2048, 14, 1, 2, Network::ResNet50),
    row(18, 256, 1024, 14, 1, 1, Network::ResNet50),
    row(19, 1024, 512, 14, 1, 1, Network::ResNet50),
    row(20, 1024, 256, 14, 1, 1, Network::ResNet50),
    row(21, 512, 512, 3, 3, 1, Network::ResNet50),
    row(22, 512, 2048, 7, 1, 1, Network::ResNet50),
    row(23, 2048, 512, 7, 1, 1, Network::ResNet50),
    row(24, 64, 64, 224, 3, 1, Network::Vgg16),
    row(25, 128, 128, 112, 3, 1, Network::Vgg16),
    row(26, 256, 256, 56, 3, 1, Network::Vgg16),
    row(27, 512, 512, 28, 3, 1, Network::Vgg16),
    row(28, 512, 512, 14, 3, 1, Network::Vgg16),
];

/// Layer IDs 1–20, the subset used by Figures 1, 6, 8 and 9.
pub fn fig1_layers() -> &'static [LayerConfig] {
    &TABLE4[..20]
}

/// All 28 layers, the Figure 4 sweep.
pub fn fig4_layers() -> &'static [LayerConfig] {
    &TABLE4
}

/// The ResNet-50 rows (IDs 1–23).
pub fn resnet50_layers() -> &'static [LayerConfig] {
    &TABLE4[..23]
}

/// The VGG-16 rows (IDs 24–28) — also the Figure 5 packing-ablation set.
pub fn vgg16_layers() -> &'static [LayerConfig] {
    &TABLE4[23..]
}

/// Looks a layer up by its paper ID.
pub fn layer_by_id(id: usize) -> Option<&'static LayerConfig> {
    TABLE4.get(id.checked_sub(1)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_sequential() {
        for (i, l) in TABLE4.iter().enumerate() {
            assert_eq!(l.id, i + 1);
        }
    }

    #[test]
    fn network_split_matches_paper() {
        assert!(resnet50_layers().iter().all(|l| l.network == Network::ResNet50));
        assert!(vgg16_layers().iter().all(|l| l.network == Network::Vgg16));
        assert_eq!(resnet50_layers().len(), 23);
        assert_eq!(vgg16_layers().len(), 5);
        assert_eq!(fig1_layers().len(), 20);
    }

    #[test]
    fn layer1_is_resnet_stem() {
        let l = layer_by_id(1).unwrap();
        let s = l.shape(64);
        // 224x224x3, 7x7/2 with pad 3 -> 112x112x64.
        assert_eq!((s.p(), s.q()), (112, 112));
        assert_eq!(s.k, 64);
        assert_eq!(s.pad.h, 3);
    }

    #[test]
    fn strided_3x3_layers_halve_spatial() {
        for id in [2, 9, 15] {
            let l = layer_by_id(id).unwrap();
            let s = l.shape(1);
            assert_eq!(s.p(), l.hw / 2, "layer {id}");
        }
    }

    #[test]
    fn pointwise_layers_have_no_padding() {
        for l in TABLE4.iter().filter(|l| l.rs == 1) {
            let s = l.shape(1);
            assert_eq!(s.pad.h, 0);
            assert_eq!(s.pad.w, 0);
        }
    }

    #[test]
    fn vgg_layers_preserve_spatial_size() {
        for l in vgg16_layers() {
            let s = l.shape(1);
            assert_eq!(s.p(), l.hw);
            assert_eq!(s.q(), l.hw);
        }
    }

    #[test]
    fn lookup_by_id() {
        assert_eq!(layer_by_id(28).unwrap().hw, 14);
        assert!(layer_by_id(0).is_none());
        assert!(layer_by_id(29).is_none());
    }

    #[test]
    fn flops_scale_linearly_with_batch() {
        let l = layer_by_id(3).unwrap();
        assert_eq!(l.flops(4), 4 * l.flops(1));
    }
}

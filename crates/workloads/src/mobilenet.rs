//! The MobileNetV1 depthwise-separable workload table.
//!
//! Howard et al., 2017 (arXiv 1704.04861), Table 1: after the full
//! 3×3 stem, the body is 13 repetitions of the depthwise-separable block —
//! a `3×3` depthwise conv (stride 1 or 2, same padding) followed by a
//! `1×1` pointwise conv that mixes channels. These rows are what the
//! fused dw+pw path (`ndirect-core`'s `FusedDwPwPlan`) targets: each pair
//! is memory-bound (a handful of FLOPs per intermediate byte), so the win
//! is the intermediate tensor that never round-trips through memory.
//!
//! Same conventions as [`crate::table4`]: rows are `(ID, C, K, H/W, str)`
//! with `R/S = 3` and same padding fixed by the architecture, FP32
//! everywhere, batch size chosen by the harness.

use ndirect_tensor::{ConvShape, Padding};

/// One MobileNetV1 depthwise-separable pair: `3×3` depthwise over `C`
/// channels at `stride`, then `1×1` pointwise `C → K`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DwPwConfig {
    /// Block index in network order (1–13).
    pub id: usize,
    /// Channels into the depthwise stage (`C`).
    pub c: usize,
    /// Channels out of the pointwise stage (`K`).
    pub k: usize,
    /// Input height = width of the depthwise stage.
    pub hw: usize,
    /// Depthwise stride (1 or 2; the pointwise stage is always stride 1).
    pub stride: usize,
}

impl DwPwConfig {
    /// The depthwise stage's shape for batch size `n`: `3×3`, same
    /// padding, `K == C` (channel multiplier 1).
    pub fn dw_shape(&self, n: usize) -> ConvShape {
        ConvShape::new(
            n,
            self.c,
            self.hw,
            self.hw,
            self.c,
            3,
            3,
            self.stride,
            Padding::same(1),
        )
    }

    /// The pointwise stage's shape for batch size `n`: `1×1` stride-1
    /// unpadded on the depthwise output.
    pub fn pw_shape(&self, n: usize) -> ConvShape {
        let dw = self.dw_shape(n);
        ConvShape::new(n, self.c, dw.p(), dw.q(), self.k, 1, 1, 1, Padding::NONE)
    }

    /// FLOPs of the whole pair at batch size `n`: `2·N·C·P·Q·R·S`
    /// (depthwise — no cross-channel reduction, so [`ConvShape::flops`]
    /// would overcount by `C`) plus the pointwise stage's standard count.
    pub fn pair_flops(&self, n: usize) -> u64 {
        let dw = self.dw_shape(n);
        let dw_flops = 2 * (n * self.c * dw.p() * dw.q() * dw.r * dw.s) as u64;
        dw_flops + self.pw_shape(n).flops()
    }

    /// Bytes of depthwise-intermediate round-trip traffic the unfused
    /// composition pays at batch size `n` — the write plus the read of
    /// the `(N, C, P, Q)` tensor the fusion keeps in cache.
    pub fn intermediate_bytes(&self, n: usize) -> u64 {
        let dw = self.dw_shape(n);
        2 * (n * self.c * dw.p() * dw.q() * 4) as u64
    }
}

const fn pair(id: usize, c: usize, k: usize, hw: usize, stride: usize) -> DwPwConfig {
    DwPwConfig { id, c, k, hw, stride }
}

/// MobileNetV1 Table 1's 13 depthwise-separable pairs, in network order
/// (width multiplier 1.0, 224×224 input; the stem conv is not a pair and
/// is excluded).
pub const MOBILENET: [DwPwConfig; 13] = [
    pair(1, 32, 64, 112, 1),
    pair(2, 64, 128, 112, 2),
    pair(3, 128, 128, 56, 1),
    pair(4, 128, 256, 56, 2),
    pair(5, 256, 256, 28, 1),
    pair(6, 256, 512, 28, 2),
    pair(7, 512, 512, 14, 1),
    pair(8, 512, 512, 14, 1),
    pair(9, 512, 512, 14, 1),
    pair(10, 512, 512, 14, 1),
    pair(11, 512, 512, 14, 1),
    pair(12, 512, 1024, 14, 2),
    pair(13, 1024, 1024, 7, 1),
];

/// All 13 pairs — the full MobileNet sweep.
pub fn mobilenet_pairs() -> &'static [DwPwConfig] {
    &MOBILENET
}

/// Looks a pair up by its block ID (1–13).
pub fn pair_by_id(id: usize) -> Option<&'static DwPwConfig> {
    MOBILENET.get(id.checked_sub(1)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_sequential() {
        for (i, p) in MOBILENET.iter().enumerate() {
            assert_eq!(p.id, i + 1);
        }
    }

    #[test]
    fn channel_chain_is_consistent() {
        // Each block's input channels are the previous block's output,
        // and spatial size follows the strides.
        for w in MOBILENET.windows(2) {
            let (a, b) = (&w[0], &w[1]);
            assert_eq!(b.c, a.k, "block {} feeds block {}", a.id, b.id);
            let a_out = a.dw_shape(1).p();
            assert_eq!(b.hw, a_out, "block {} spatial chain", b.id);
        }
    }

    #[test]
    fn depthwise_shapes_are_depthwise() {
        for p in &MOBILENET {
            let s = p.dw_shape(2);
            assert_eq!(s.k, s.c, "block {}", p.id);
            assert_eq!((s.r, s.s), (3, 3));
            assert_eq!(s.pad.h, 1);
        }
    }

    #[test]
    fn strided_blocks_halve_spatial() {
        for p in MOBILENET.iter().filter(|p| p.stride == 2) {
            assert_eq!(p.dw_shape(1).p(), p.hw / 2, "block {}", p.id);
        }
    }

    #[test]
    fn pointwise_rides_on_dw_output() {
        for p in &MOBILENET {
            let (dw, pw) = (p.dw_shape(1), p.pw_shape(1));
            assert_eq!((pw.h, pw.w), (dw.p(), dw.q()), "block {}", p.id);
            assert_eq!(pw.c, p.c);
            assert_eq!(pw.k, p.k);
            assert_eq!((pw.r, pw.s, pw.stride), (1, 1, 1));
            assert_eq!(pw.pad.h, 0);
        }
    }

    #[test]
    fn last_block_is_7x7_1024() {
        let p = pair_by_id(13).unwrap();
        assert_eq!((p.c, p.k, p.hw), (1024, 1024, 7));
        assert!(pair_by_id(0).is_none());
        assert!(pair_by_id(14).is_none());
    }

    #[test]
    fn flops_and_bytes_scale_linearly_with_batch() {
        let p = pair_by_id(5).unwrap();
        assert_eq!(p.pair_flops(4), 4 * p.pair_flops(1));
        assert_eq!(p.intermediate_bytes(4), 4 * p.intermediate_bytes(1));
    }

    #[test]
    fn pairs_are_memory_bound_on_the_intermediate() {
        // The defining property of the workload: late blocks do only a
        // few tens of FLOPs per intermediate byte, so saving the
        // round-trip matters.
        let p = pair_by_id(13).unwrap();
        let intensity = p.pair_flops(1) as f64 / p.intermediate_bytes(1) as f64;
        assert!(intensity < 600.0, "intensity {intensity}");
    }
}

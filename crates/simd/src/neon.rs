//! aarch64 NEON backend (`float32x4_t`) — the paper's target ISA.
//!
//! NEON (ASIMD) is mandatory in AArch64, so no feature detection is needed.
//! [`SimdVec::fma_lane`] lowers to `vfmaq_laneq_f32`, the exact scalar-vector
//! fused multiply-accumulate the paper's Algorithm 3 is built from
//! (`FMA((V2[0]..), V0)` etc.).

use core::arch::aarch64::*;

use crate::SimdVec;

/// Four `f32` lanes in a NEON register.
#[derive(Clone, Copy)]
pub struct F32x4(float32x4_t);

impl core::fmt::Debug for F32x4 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "F32x4({:?})", self.to_array())
    }
}

impl SimdVec for F32x4 {
    #[inline(always)]
    fn zero() -> Self {
        // SAFETY: NEON is mandatory on aarch64.
        Self(unsafe { vdupq_n_f32(0.0) })
    }

    #[inline(always)]
    fn splat(v: f32) -> Self {
        // SAFETY: as above.
        Self(unsafe { vdupq_n_f32(v) })
    }

    #[inline(always)]
    fn load(src: &[f32]) -> Self {
        assert!(src.len() >= 4, "load requires 4 floats");
        // SAFETY: bounds checked above.
        Self(unsafe { vld1q_f32(src.as_ptr()) })
    }

    #[inline(always)]
    fn store(self, dst: &mut [f32]) {
        assert!(dst.len() >= 4, "store requires 4 floats");
        // SAFETY: bounds checked above.
        unsafe { vst1q_f32(dst.as_mut_ptr(), self.0) }
    }

    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        // SAFETY: NEON baseline.
        Self(unsafe { vaddq_f32(self.0, rhs.0) })
    }

    #[inline(always)]
    fn sub(self, rhs: Self) -> Self {
        // SAFETY: NEON baseline.
        Self(unsafe { vsubq_f32(self.0, rhs.0) })
    }

    #[inline(always)]
    fn mul(self, rhs: Self) -> Self {
        // SAFETY: NEON baseline.
        Self(unsafe { vmulq_f32(self.0, rhs.0) })
    }

    #[inline(always)]
    fn max(self, rhs: Self) -> Self {
        // SAFETY: NEON baseline.
        Self(unsafe { vmaxq_f32(self.0, rhs.0) })
    }

    #[inline(always)]
    fn fma(self, a: Self, b: Self) -> Self {
        // SAFETY: NEON baseline; vfmaq is the fused multiply-accumulate.
        Self(unsafe { vfmaq_f32(self.0, a.0, b.0) })
    }

    #[inline(always)]
    fn fma_lane<const LANE: usize>(self, a: Self, b: Self) -> Self {
        // SAFETY: NEON baseline; LANE < 4 is enforced by the match arms.
        Self(unsafe {
            match LANE {
                0 => vfmaq_laneq_f32::<0>(self.0, a.0, b.0),
                1 => vfmaq_laneq_f32::<1>(self.0, a.0, b.0),
                2 => vfmaq_laneq_f32::<2>(self.0, a.0, b.0),
                3 => vfmaq_laneq_f32::<3>(self.0, a.0, b.0),
                _ => unreachable!("lane index out of range"),
            }
        })
    }

    #[inline(always)]
    fn extract<const LANE: usize>(self) -> f32 {
        self.to_array()[LANE]
    }

    #[inline(always)]
    fn reduce_sum(self) -> f32 {
        // SAFETY: NEON baseline.
        unsafe { vaddvq_f32(self.0) }
    }

    #[inline(always)]
    fn to_array(self) -> [f32; 4] {
        let mut out = [0.0; 4];
        // SAFETY: `out` has exactly 4 floats.
        unsafe { vst1q_f32(out.as_mut_ptr(), self.0) };
        out
    }

    #[inline(always)]
    fn from_array(a: [f32; 4]) -> Self {
        // SAFETY: `a` has exactly 4 floats.
        Self(unsafe { vld1q_f32(a.as_ptr()) })
    }
}

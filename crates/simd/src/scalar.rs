//! Scalar reference backend: a plain `[f32; 4]`.
//!
//! Always compiled (every other backend is differential-tested against it).
//! Multiplications and additions are kept as separate operations — not
//! `f32::mul_add` — so results match non-FMA SSE bitwise.

use crate::SimdVec;

/// Four `f32` lanes in an ordinary array.
#[derive(Debug, Clone, Copy, PartialEq)]
#[repr(align(16))]
pub struct F32x4Scalar(pub [f32; 4]);

impl SimdVec for F32x4Scalar {
    #[inline(always)]
    fn zero() -> Self {
        Self([0.0; 4])
    }

    #[inline(always)]
    fn splat(v: f32) -> Self {
        Self([v; 4])
    }

    #[inline(always)]
    fn load(src: &[f32]) -> Self {
        Self([src[0], src[1], src[2], src[3]])
    }

    #[inline(always)]
    fn store(self, dst: &mut [f32]) {
        dst[..4].copy_from_slice(&self.0);
    }

    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        Self([
            self.0[0] + rhs.0[0],
            self.0[1] + rhs.0[1],
            self.0[2] + rhs.0[2],
            self.0[3] + rhs.0[3],
        ])
    }

    #[inline(always)]
    fn sub(self, rhs: Self) -> Self {
        Self([
            self.0[0] - rhs.0[0],
            self.0[1] - rhs.0[1],
            self.0[2] - rhs.0[2],
            self.0[3] - rhs.0[3],
        ])
    }

    #[inline(always)]
    fn mul(self, rhs: Self) -> Self {
        Self([
            self.0[0] * rhs.0[0],
            self.0[1] * rhs.0[1],
            self.0[2] * rhs.0[2],
            self.0[3] * rhs.0[3],
        ])
    }

    #[inline(always)]
    fn max(self, rhs: Self) -> Self {
        Self([
            self.0[0].max(rhs.0[0]),
            self.0[1].max(rhs.0[1]),
            self.0[2].max(rhs.0[2]),
            self.0[3].max(rhs.0[3]),
        ])
    }

    #[inline(always)]
    fn fma(self, a: Self, b: Self) -> Self {
        self.add(a.mul(b))
    }

    #[inline(always)]
    fn fma_lane<const LANE: usize>(self, a: Self, b: Self) -> Self {
        self.fma(a, Self::splat(b.0[LANE]))
    }

    #[inline(always)]
    fn extract<const LANE: usize>(self) -> f32 {
        self.0[LANE]
    }

    #[inline(always)]
    fn reduce_sum(self) -> f32 {
        (self.0[0] + self.0[1]) + (self.0[2] + self.0[3])
    }

    #[inline(always)]
    fn to_array(self) -> [f32; 4] {
        self.0
    }

    #[inline(always)]
    fn from_array(a: [f32; 4]) -> Self {
        Self(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fma_is_unfused() {
        // With unfused semantics the product rounds before the add; this is a
        // smoke check that we didn't accidentally call mul_add.
        let acc = F32x4Scalar::splat(1.0);
        let a = F32x4Scalar::splat(1.0 + f32::EPSILON);
        let b = F32x4Scalar::splat(1.0 - f32::EPSILON);
        let unfused = 1.0 + ((1.0 + f32::EPSILON) * (1.0 - f32::EPSILON));
        assert_eq!(acc.fma(a, b).extract::<0>(), unfused);
    }

    #[test]
    fn load_panics_on_short_slice() {
        let r = std::panic::catch_unwind(|| F32x4Scalar::load(&[1.0, 2.0]));
        assert!(r.is_err());
    }
}

//! Portable 4-lane `f32` SIMD vector for the nDirect micro-kernels.
//!
//! The paper's kernels are written against ARMv8 NEON: 32 × 128-bit vector
//! registers, each holding 4 × FP32, driven by fused multiply-accumulate
//! (`vfmaq_laneq_f32` — *scalar-vector* FMA, broadcasting one lane of an
//! input register against a filter vector). [`F32x4`] reproduces exactly that
//! operation set:
//!
//! * on **aarch64** it lowers to NEON intrinsics (the paper's target);
//! * on **x86_64** it lowers to SSE (plus FMA when compiled with
//!   `-C target-feature=+fma`, e.g. via `RUSTFLAGS=-Ctarget-cpu=native`);
//! * elsewhere (or with the `force-scalar` feature) it is a `[f32; 4]` that
//!   LLVM autovectorizes.
//!
//! Micro-kernels treat `F32x4` values as *register allocations*: a
//! `Vw × Vk/4` array of accumulators models the paper's `V8–V31`, and the
//! register-budget constraint (Eq. 3) is enforced by the analytic model in
//! `ndirect-core`, not here.
//!
//! The scalar backend computes `a*b + c` with separate multiply/add so its
//! results match SSE bitwise; NEON and x86-FMA fuse the rounding step, which
//! is why cross-implementation tests in this workspace compare with a small
//! relative tolerance rather than bitwise.

#![warn(missing_docs)]

mod int16;
pub mod runtime;
mod scalar;

#[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
mod sse;

#[cfg(all(target_arch = "aarch64", not(feature = "force-scalar")))]
mod neon;

#[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
pub use sse::F32x4;

#[cfg(all(target_arch = "aarch64", not(feature = "force-scalar")))]
pub use neon::F32x4;

#[cfg(any(
    not(any(target_arch = "x86_64", target_arch = "aarch64")),
    feature = "force-scalar"
))]
pub use scalar::F32x4Scalar as F32x4;

pub use int16::{I16x8, I32x4};
pub use runtime::{detected_isa, force_unsupported, verify_host, Isa, UnsupportedIsa};
pub use scalar::F32x4Scalar;

/// Number of `f32` lanes per vector — fixed at 4 to model 128-bit NEON.
pub const LANES: usize = 4;

/// Name of the active backend, for diagnostics and the figures harness.
pub fn backend_name() -> &'static str {
    #[cfg(all(target_arch = "aarch64", not(feature = "force-scalar")))]
    {
        "neon"
    }
    #[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
    {
        if cfg!(target_feature = "fma") {
            "sse+fma"
        } else {
            "sse"
        }
    }
    #[cfg(any(
        not(any(target_arch = "x86_64", target_arch = "aarch64")),
        feature = "force-scalar"
    ))]
    {
        "scalar"
    }
}

/// Issues a read prefetch for `ptr` into all cache levels where supported.
///
/// Micro-kernels use this to mirror the paper's software prefetch of the next
/// filter slice; it is a correctness no-op everywhere.
#[inline(always)]
pub fn prefetch_read(ptr: *const f32) {
    #[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
    // SAFETY: prefetch has no memory effects and tolerates any address.
    unsafe {
        core::arch::x86_64::_mm_prefetch(ptr as *const i8, core::arch::x86_64::_MM_HINT_T0);
    }
    #[cfg(not(all(target_arch = "x86_64", not(feature = "force-scalar"))))]
    {
        let _ = ptr;
    }
}

/// The trait all backends implement, so differential tests can run the same
/// generic kernel against [`F32x4`] and [`F32x4Scalar`].
pub trait SimdVec: Copy + core::fmt::Debug {
    /// Vector of four zeros.
    fn zero() -> Self;
    /// Broadcasts `v` to all lanes.
    fn splat(v: f32) -> Self;
    /// Loads four consecutive floats from `src` (must have `len >= 4`).
    fn load(src: &[f32]) -> Self;
    /// Stores the four lanes into `dst` (must have `len >= 4`).
    fn store(self, dst: &mut [f32]);
    /// Lane-wise addition.
    fn add(self, rhs: Self) -> Self;
    /// Lane-wise subtraction.
    fn sub(self, rhs: Self) -> Self;
    /// Lane-wise multiplication.
    fn mul(self, rhs: Self) -> Self;
    /// Lane-wise maximum.
    fn max(self, rhs: Self) -> Self;
    /// `self + a*b` per lane — the accumulator-updating FMA.
    fn fma(self, a: Self, b: Self) -> Self;
    /// `self + a*b[LANE]` — the paper's scalar-vector FMA
    /// (`vfmaq_laneq_f32`): broadcast lane `LANE` of `b` against `a`.
    fn fma_lane<const LANE: usize>(self, a: Self, b: Self) -> Self;
    /// Extracts one lane.
    fn extract<const LANE: usize>(self) -> f32;
    /// Sum of all four lanes.
    fn reduce_sum(self) -> f32;
    /// The lanes as an array.
    fn to_array(self) -> [f32; 4];
    /// Builds a vector from an array.
    fn from_array(a: [f32; 4]) -> Self;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(a: f32, b: f32, c: f32, d: f32) -> F32x4 {
        F32x4::from_array([a, b, c, d])
    }

    #[test]
    fn splat_and_extract() {
        let x = F32x4::splat(2.5);
        assert_eq!(x.to_array(), [2.5; 4]);
        assert_eq!(x.extract::<0>(), 2.5);
        assert_eq!(x.extract::<3>(), 2.5);
    }

    #[test]
    fn load_store_round_trip() {
        let src = [1.0, 2.0, 3.0, 4.0, 5.0];
        let x = F32x4::load(&src);
        let mut dst = [0.0; 4];
        x.store(&mut dst);
        assert_eq!(dst, [1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn arithmetic_lanewise() {
        let a = v(1.0, 2.0, 3.0, 4.0);
        let b = v(10.0, 20.0, 30.0, 40.0);
        assert_eq!(a.add(b).to_array(), [11.0, 22.0, 33.0, 44.0]);
        assert_eq!(b.sub(a).to_array(), [9.0, 18.0, 27.0, 36.0]);
        assert_eq!(a.mul(b).to_array(), [10.0, 40.0, 90.0, 160.0]);
        assert_eq!(a.max(v(2.0, 1.0, 5.0, 0.0)).to_array(), [2.0, 2.0, 5.0, 4.0]);
    }

    #[test]
    fn fma_accumulates() {
        let acc = v(1.0, 1.0, 1.0, 1.0);
        let a = v(2.0, 3.0, 4.0, 5.0);
        let b = v(10.0, 10.0, 10.0, 10.0);
        assert_eq!(acc.fma(a, b).to_array(), [21.0, 31.0, 41.0, 51.0]);
    }

    #[test]
    fn fma_lane_broadcasts_one_lane() {
        let acc = F32x4::zero();
        let a = v(1.0, 2.0, 3.0, 4.0);
        let b = v(10.0, 20.0, 30.0, 40.0);
        assert_eq!(acc.fma_lane::<0>(a, b).to_array(), [10.0, 20.0, 30.0, 40.0]);
        assert_eq!(acc.fma_lane::<2>(a, b).to_array(), [30.0, 60.0, 90.0, 120.0]);
    }

    #[test]
    fn reduce_sum_adds_lanes() {
        assert_eq!(v(1.0, 2.0, 3.0, 4.0).reduce_sum(), 10.0);
    }

    #[test]
    fn native_matches_scalar_backend() {
        // Differential check: run the same dot-product kernel on both.
        let xs: Vec<f32> = (0..64).map(|i| (i as f32).sin()).collect();
        let ys: Vec<f32> = (0..64).map(|i| (i as f32 * 0.7).cos()).collect();

        fn dot<V: SimdVec>(xs: &[f32], ys: &[f32]) -> f32 {
            let mut acc = V::zero();
            for (x4, y4) in xs.chunks_exact(4).zip(ys.chunks_exact(4)) {
                acc = acc.fma(V::load(x4), V::load(y4));
            }
            acc.reduce_sum()
        }

        let native = dot::<F32x4>(&xs, &ys);
        let scalar = dot::<F32x4Scalar>(&xs, &ys);
        assert!(
            (native - scalar).abs() <= 1e-5 * scalar.abs().max(1.0),
            "native={native} scalar={scalar}"
        );
    }

    #[test]
    fn prefetch_is_harmless() {
        let data = [0.0f32; 16];
        prefetch_read(data.as_ptr());
    }

    #[test]
    fn backend_name_is_known() {
        assert!(["neon", "sse", "sse+fma", "scalar"].contains(&backend_name()));
    }
}

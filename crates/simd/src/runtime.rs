//! Runtime ISA capability detection and graceful degradation.
//!
//! The [`crate::F32x4`] backend is chosen at *compile* time, so a binary
//! built with `-C target-feature=+fma` (or any feature beyond the target's
//! baseline) can land on a machine whose CPU lacks that extension — where
//! the first vector instruction dies with an illegal-instruction fault,
//! not a catchable error. This module closes that gap: [`verify_host`]
//! compares what the binary was compiled to require against what the
//! running CPU reports (via `is_x86_feature_detected!` on x86_64; NEON is
//! architecturally guaranteed on aarch64), and the convolution drivers
//! call it once at their fallible API boundary so the mismatch surfaces as
//! a typed error instead of a crash.
//!
//! [`force_unsupported`] is a test hook that makes [`verify_host`] report
//! failure, letting degradation paths be exercised on any machine.

use std::sync::atomic::{AtomicBool, Ordering};

/// Instruction sets the workspace's kernels can be compiled against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Isa {
    /// ARMv8 NEON (baseline on aarch64).
    Neon,
    /// x86-64 SSE2 with fused multiply-add (AVX2-era machines).
    SseFma,
    /// x86-64 SSE2 only.
    Sse,
    /// Portable scalar fallback — runs anywhere.
    Scalar,
}

impl Isa {
    /// Display name, matching [`crate::backend_name`].
    pub fn name(self) -> &'static str {
        match self {
            Isa::Neon => "neon",
            Isa::SseFma => "sse+fma",
            Isa::Sse => "sse",
            Isa::Scalar => "scalar",
        }
    }
}

/// The ISA this binary's kernels were compiled to require.
pub fn compiled_isa() -> Isa {
    #[cfg(all(target_arch = "aarch64", not(feature = "force-scalar")))]
    {
        Isa::Neon
    }
    #[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
    {
        if cfg!(target_feature = "fma") {
            Isa::SseFma
        } else {
            Isa::Sse
        }
    }
    #[cfg(any(
        not(any(target_arch = "x86_64", target_arch = "aarch64")),
        feature = "force-scalar"
    ))]
    {
        Isa::Scalar
    }
}

/// The best ISA the *running* CPU supports, probed at runtime.
///
/// Never crashes: on architectures without a probing facility it falls
/// back to the compile-time baseline, which is guaranteed present (the
/// program is already executing).
pub fn detected_isa() -> Isa {
    #[cfg(target_arch = "aarch64")]
    {
        // NEON is mandatory in ARMv8-A; if we are running, it is there.
        Isa::Neon
    }
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("fma") {
            Isa::SseFma
        } else if std::arch::is_x86_feature_detected!("sse2") {
            Isa::Sse
        } else {
            Isa::Scalar
        }
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        Isa::Scalar
    }
}

/// The binary requires an ISA extension the host CPU does not report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnsupportedIsa {
    /// What the kernels were compiled to require.
    pub required: Isa,
    /// The best the host offers.
    pub available: Isa,
}

impl std::fmt::Display for UnsupportedIsa {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "kernels compiled for {} but host CPU only supports {} — \
             rebuild without the missing target features (or with the \
             force-scalar feature)",
            self.required.name(),
            self.available.name()
        )
    }
}

impl std::error::Error for UnsupportedIsa {}

static FORCE_UNSUPPORTED: AtomicBool = AtomicBool::new(false);

/// Test hook: makes [`verify_host`] fail as if the host CPU lacked the
/// compiled ISA, so callers' degradation paths can be exercised anywhere.
pub fn force_unsupported(on: bool) {
    // ORDERING: SeqCst — cold test hook, never on the per-tile path; the
    // strongest order keeps it trivially correct.
    FORCE_UNSUPPORTED.store(on, Ordering::SeqCst);
}

fn rank(isa: Isa) -> u8 {
    match isa {
        Isa::Scalar => 0,
        Isa::Sse => 1,
        Isa::SseFma => 2,
        // NEON is its own architecture; ranking only compares within one.
        Isa::Neon => 1,
    }
}

/// Checks that the host CPU supports everything the compiled kernels
/// assume. `Ok` carries the active ISA; `Err` explains the mismatch.
pub fn verify_host() -> Result<Isa, UnsupportedIsa> {
    let required = compiled_isa();
    // ORDERING: SeqCst — pairs with the test hook's store; capability
    // verification runs once at setup, not on the kernel path.
    if FORCE_UNSUPPORTED.load(Ordering::SeqCst) {
        return Err(UnsupportedIsa {
            required,
            available: Isa::Scalar,
        });
    }
    let available = detected_isa();
    // Scalar needs nothing; cross-architecture mismatch cannot happen in a
    // running process, so comparing ranks within the architecture suffices.
    if required == Isa::Scalar || rank(available) >= rank(required) {
        Ok(required)
    } else {
        Err(UnsupportedIsa {
            required,
            available,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_supports_what_it_is_running() {
        // The binary is executing, so its baseline must verify.
        let isa = verify_host().expect("running binary must be supported");
        assert_eq!(isa, compiled_isa());
    }

    #[test]
    fn detection_never_panics_and_is_stable() {
        assert_eq!(detected_isa(), detected_isa());
    }

    #[test]
    fn force_unsupported_hook_fails_verification() {
        force_unsupported(true);
        let err = verify_host().expect_err("hook must force failure");
        assert_eq!(err.required, compiled_isa());
        let msg = err.to_string();
        assert!(msg.contains("host CPU only supports"), "{msg}");
        force_unsupported(false);
        assert!(verify_host().is_ok());
    }
}

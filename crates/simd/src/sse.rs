//! x86_64 SSE backend (`__m128`).
//!
//! SSE2 is part of the x86_64 baseline, so no runtime feature detection is
//! needed. When the crate is compiled with `+fma` (e.g.
//! `RUSTFLAGS=-Ctarget-cpu=native`), [`SimdVec::fma`] lowers to `vfmadd`;
//! otherwise to `mulps` + `addps`.

use core::arch::x86_64::*;

use crate::SimdVec;

/// Four `f32` lanes in an SSE register.
#[derive(Clone, Copy)]
pub struct F32x4(__m128);

impl core::fmt::Debug for F32x4 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "F32x4({:?})", self.to_array())
    }
}

impl SimdVec for F32x4 {
    #[inline(always)]
    fn zero() -> Self {
        // SAFETY: SSE2 is in the x86_64 baseline.
        Self(unsafe { _mm_setzero_ps() })
    }

    #[inline(always)]
    fn splat(v: f32) -> Self {
        // SAFETY: as above.
        Self(unsafe { _mm_set1_ps(v) })
    }

    #[inline(always)]
    fn load(src: &[f32]) -> Self {
        assert!(src.len() >= 4, "load requires 4 floats");
        // SAFETY: bounds checked above; unaligned load is always valid.
        Self(unsafe { _mm_loadu_ps(src.as_ptr()) })
    }

    #[inline(always)]
    fn store(self, dst: &mut [f32]) {
        assert!(dst.len() >= 4, "store requires 4 floats");
        // SAFETY: bounds checked above; unaligned store is always valid.
        unsafe { _mm_storeu_ps(dst.as_mut_ptr(), self.0) }
    }

    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        // SAFETY: SSE baseline.
        Self(unsafe { _mm_add_ps(self.0, rhs.0) })
    }

    #[inline(always)]
    fn sub(self, rhs: Self) -> Self {
        // SAFETY: SSE baseline.
        Self(unsafe { _mm_sub_ps(self.0, rhs.0) })
    }

    #[inline(always)]
    fn mul(self, rhs: Self) -> Self {
        // SAFETY: SSE baseline.
        Self(unsafe { _mm_mul_ps(self.0, rhs.0) })
    }

    #[inline(always)]
    fn max(self, rhs: Self) -> Self {
        // SAFETY: SSE baseline.
        Self(unsafe { _mm_max_ps(self.0, rhs.0) })
    }

    #[inline(always)]
    fn fma(self, a: Self, b: Self) -> Self {
        #[cfg(target_feature = "fma")]
        // SAFETY: gated on compile-time FMA availability.
        unsafe {
            Self(_mm_fmadd_ps(a.0, b.0, self.0))
        }
        #[cfg(not(target_feature = "fma"))]
        self.add(a.mul(b))
    }

    #[inline(always)]
    fn fma_lane<const LANE: usize>(self, a: Self, b: Self) -> Self {
        // Broadcast lane LANE of `b`, then FMA — the SSE spelling of NEON's
        // vfmaq_laneq_f32. The match keeps the shuffle immediate a literal
        // constant (stable Rust cannot compute it from the generic LANE).
        // SAFETY: SSE baseline.
        let bcast = Self(unsafe {
            match LANE {
                0 => _mm_shuffle_ps::<0b00_00_00_00>(b.0, b.0),
                1 => _mm_shuffle_ps::<0b01_01_01_01>(b.0, b.0),
                2 => _mm_shuffle_ps::<0b10_10_10_10>(b.0, b.0),
                3 => _mm_shuffle_ps::<0b11_11_11_11>(b.0, b.0),
                _ => unreachable!("lane index out of range"),
            }
        });
        self.fma(a, bcast)
    }

    #[inline(always)]
    fn extract<const LANE: usize>(self) -> f32 {
        self.to_array()[LANE]
    }

    #[inline(always)]
    fn reduce_sum(self) -> f32 {
        let a = self.to_array();
        (a[0] + a[1]) + (a[2] + a[3])
    }

    #[inline(always)]
    fn to_array(self) -> [f32; 4] {
        let mut out = [0.0; 4];
        // SAFETY: `out` has exactly 4 floats.
        unsafe { _mm_storeu_ps(out.as_mut_ptr(), self.0) };
        out
    }

    #[inline(always)]
    fn from_array(a: [f32; 4]) -> Self {
        // SAFETY: `a` has exactly 4 floats.
        Self(unsafe { _mm_loadu_ps(a.as_ptr()) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_broadcast_matches_scalar() {
        use crate::scalar::F32x4Scalar;
        let a = [0.5, -1.0, 2.0, 8.0];
        let b = [3.0, 5.0, 7.0, 9.0];
        let acc = [1.0, 1.0, 1.0, 1.0];
        let native = F32x4::from_array(acc)
            .fma_lane::<1>(F32x4::from_array(a), F32x4::from_array(b))
            .to_array();
        let reference = F32x4Scalar::from_array(acc)
            .fma_lane::<1>(F32x4Scalar::from_array(a), F32x4Scalar::from_array(b))
            .to_array();
        for (x, y) in native.iter().zip(&reference) {
            assert!((x - y).abs() < 1e-6);
        }
    }
}

//! Integer SIMD for the INT16 convolution path (§3.3's "other data
//! types"). The workhorse is the pairwise multiply-accumulate every
//! quantized kernel is built on: 8 × i16 products summed in pairs into
//! 4 × i32 lanes (`pmaddwd` on x86, `smlal`/`vmlal_s16` on NEON).

/// Eight `i16` lanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct I16x8(pub [i16; 8]);

/// Four `i32` lanes (the accumulator type for INT16 kernels).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct I32x4(pub [i32; 4]);

impl I16x8 {
    /// Loads eight consecutive values.
    #[inline(always)]
    pub fn load(src: &[i16]) -> Self {
        let mut a = [0i16; 8];
        a.copy_from_slice(&src[..8]);
        I16x8(a)
    }

    /// Broadcasts an adjacent pair `(lo, hi)` into all four pair slots —
    /// the input operand of the pair-broadcast MAC (one 32-bit splat on
    /// real ISAs).
    #[inline(always)]
    pub fn splat_pair(lo: i16, hi: i16) -> Self {
        I16x8([lo, hi, lo, hi, lo, hi, lo, hi])
    }
}

impl I32x4 {
    /// Vector of four zeros.
    #[inline(always)]
    pub fn zero() -> Self {
        I32x4([0; 4])
    }

    /// Lane-wise wrapping addition (named distinctly from `ops::Add` on
    /// purpose: wrapping semantics).
    #[inline(always)]
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, rhs: Self) -> Self {
        let mut out = self.0;
        for (o, r) in out.iter_mut().zip(rhs.0) {
            *o = o.wrapping_add(r);
        }
        I32x4(out)
    }

    /// `self[i] += a[2i]·b[2i] + a[2i+1]·b[2i+1]` — the pairwise
    /// multiply-accumulate (`pmaddwd` semantics; products widen to i32
    /// before the sum, so no i16 overflow is possible).
    #[inline(always)]
    pub fn madd_acc(self, a: I16x8, b: I16x8) -> Self {
        #[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
        // SAFETY: SSE2 is in the x86_64 baseline; all loads/stores go
        // through properly sized local arrays.
        unsafe {
            use core::arch::x86_64::*;
            let va = _mm_loadu_si128(a.0.as_ptr() as *const __m128i);
            let vb = _mm_loadu_si128(b.0.as_ptr() as *const __m128i);
            let prod = _mm_madd_epi16(va, vb);
            let acc = _mm_loadu_si128(self.0.as_ptr() as *const __m128i);
            let sum = _mm_add_epi32(acc, prod);
            let mut out = [0i32; 4];
            _mm_storeu_si128(out.as_mut_ptr() as *mut __m128i, sum);
            I32x4(out)
        }
        #[cfg(not(all(target_arch = "x86_64", not(feature = "force-scalar"))))]
        {
            let mut out = self.0;
            for i in 0..4 {
                // CAST: i16 -> i32 widening (x4), lossless — the scalar
                // mirror of _mm_madd_epi16's widening multiply-add.
                let p = a.0[2 * i] as i32 * b.0[2 * i] as i32
                    + a.0[2 * i + 1] as i32 * b.0[2 * i + 1] as i32;
                out[i] = out[i].wrapping_add(p);
            }
            I32x4(out)
        }
    }

    /// Stores the four lanes.
    #[inline(always)]
    pub fn store(self, dst: &mut [i32]) {
        dst[..4].copy_from_slice(&self.0);
    }

    /// The lanes as an array.
    #[inline(always)]
    pub fn to_array(self) -> [i32; 4] {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn madd_matches_scalar_reference() {
        let a = I16x8([1, 2, 3, 4, -5, 6, 7, -8]);
        let b = I16x8([10, 20, 30, 40, 50, 60, -70, 80]);
        let acc = I32x4([100, 200, 300, 400]);
        let got = acc.madd_acc(a, b).to_array();
        let expect = [
            100 + 10 + 2 * 20,
            200 + 3 * 30 + 4 * 40,
            300 + -5 * 50 + 6 * 60,
            400 + 7 * -70 + -8 * 80,
        ];
        assert_eq!(got, expect);
    }

    #[test]
    fn madd_handles_extremes_without_i16_overflow() {
        // i16::MIN * i16::MIN * 2 fits i32 after widening (pmaddwd's one
        // saturation corner is (MIN,MIN)·(MIN,MIN); avoid asserting it).
        let a = I16x8([i16::MAX; 8]);
        let b = I16x8([i16::MAX; 8]);
        let got = I32x4::zero().madd_acc(a, b).to_array();
        let p = i16::MAX as i32 * i16::MAX as i32;
        assert_eq!(got, [2 * p; 4]);
    }

    #[test]
    fn splat_pair_layout() {
        let v = I16x8::splat_pair(3, -4);
        assert_eq!(v.0, [3, -4, 3, -4, 3, -4, 3, -4]);
    }

    #[test]
    fn add_and_store() {
        let a = I32x4([1, 2, 3, 4]).add(I32x4([10, 20, 30, 40]));
        let mut out = [0i32; 4];
        a.store(&mut out);
        assert_eq!(out, [11, 22, 33, 44]);
    }
}

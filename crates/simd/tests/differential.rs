//! Differential property tests: the native SIMD backend must agree with
//! the scalar reference on random inputs for every operation, within FMA
//! rounding. Cases come from the workspace's seeded [`Rng64`], so every
//! failure carries its case number and reproduces exactly.

use ndirect_simd::{F32x4, F32x4Scalar, SimdVec};
use ndirect_support::Rng64;

fn close(a: f32, b: f32) -> bool {
    (a - b).abs() <= 1e-5 * a.abs().max(b.abs()).max(1.0)
}

fn arr(rng: &mut Rng64) -> [f32; 4] {
    [
        rng.gen_range_f32(-100.0, 100.0),
        rng.gen_range_f32(-100.0, 100.0),
        rng.gen_range_f32(-100.0, 100.0),
        rng.gen_range_f32(-100.0, 100.0),
    ]
}

#[test]
fn add_sub_mul_max_agree() {
    let mut rng = Rng64::seed_from_u64(0xd1f1);
    for case in 0..256 {
        let (a, b) = (arr(&mut rng), arr(&mut rng));
        let (na, nb) = (F32x4::from_array(a), F32x4::from_array(b));
        let (sa, sb) = (F32x4Scalar::from_array(a), F32x4Scalar::from_array(b));
        assert_eq!(na.add(nb).to_array(), sa.add(sb).to_array(), "case {case} add");
        assert_eq!(na.sub(nb).to_array(), sa.sub(sb).to_array(), "case {case} sub");
        assert_eq!(na.mul(nb).to_array(), sa.mul(sb).to_array(), "case {case} mul");
        assert_eq!(na.max(nb).to_array(), sa.max(sb).to_array(), "case {case} max");
    }
}

#[test]
fn fma_agrees_within_rounding() {
    let mut rng = Rng64::seed_from_u64(0xd1f2);
    for case in 0..256 {
        let (acc, a, b) = (arr(&mut rng), arr(&mut rng), arr(&mut rng));
        let n = F32x4::from_array(acc)
            .fma(F32x4::from_array(a), F32x4::from_array(b))
            .to_array();
        let s = F32x4Scalar::from_array(acc)
            .fma(F32x4Scalar::from_array(a), F32x4Scalar::from_array(b))
            .to_array();
        for l in 0..4 {
            assert!(close(n[l], s[l]), "case {case} lane {l}: {} vs {}", n[l], s[l]);
        }
    }
}

#[test]
fn fma_lane_agrees_for_every_lane() {
    let mut rng = Rng64::seed_from_u64(0xd1f3);
    for case in 0..128 {
        let (acc, a, b) = (arr(&mut rng), arr(&mut rng), arr(&mut rng));
        macro_rules! check_lane {
            ($lane:literal) => {{
                let n = F32x4::from_array(acc)
                    .fma_lane::<$lane>(F32x4::from_array(a), F32x4::from_array(b))
                    .to_array();
                let s = F32x4Scalar::from_array(acc)
                    .fma_lane::<$lane>(F32x4Scalar::from_array(a), F32x4Scalar::from_array(b))
                    .to_array();
                for l in 0..4 {
                    assert!(close(n[l], s[l]), "case {case} lane const {} idx {l}", $lane);
                }
            }};
        }
        check_lane!(0);
        check_lane!(1);
        check_lane!(2);
        check_lane!(3);
    }
}

#[test]
fn reduce_sum_agrees() {
    let mut rng = Rng64::seed_from_u64(0xd1f4);
    for case in 0..256 {
        let a = arr(&mut rng);
        let n = F32x4::from_array(a).reduce_sum();
        let s = F32x4Scalar::from_array(a).reduce_sum();
        assert!(close(n, s), "case {case}: {n} vs {s}");
    }
}

#[test]
fn load_store_round_trip() {
    let mut rng = Rng64::seed_from_u64(0xd1f5);
    for case in 0..256 {
        let a = arr(&mut rng);
        let mut out = [0.0f32; 4];
        F32x4::from_array(a).store(&mut out);
        assert_eq!(out, a, "case {case} store");
        let mut padded = [0.0f32; 7];
        padded[..4].copy_from_slice(&a);
        assert_eq!(F32x4::load(&padded).to_array(), a, "case {case} load");
    }
}

#[test]
fn splat_fills_lanes() {
    let mut rng = Rng64::seed_from_u64(0xd1f6);
    for case in 0..256 {
        let v = rng.gen_range_f32(-1e6, 1e6);
        assert_eq!(F32x4::splat(v).to_array(), [v; 4], "case {case}");
    }
}

#[test]
fn special_values_pass_through() {
    let a = [f32::INFINITY, f32::NEG_INFINITY, 0.0, -0.0];
    let x = F32x4::from_array(a);
    assert_eq!(x.add(F32x4::zero()).to_array()[0], f32::INFINITY);
    assert_eq!(x.to_array()[1], f32::NEG_INFINITY);
    // NaN propagates through fma.
    let nan = F32x4::splat(f32::NAN);
    assert!(nan.fma(F32x4::splat(1.0), F32x4::splat(1.0)).to_array()[0].is_nan());
}

//! Differential property tests: the native SIMD backend must agree with
//! the scalar reference on random inputs for every operation, within FMA
//! rounding.

use ndirect_simd::{F32x4, F32x4Scalar, SimdVec};
use proptest::prelude::*;

fn close(a: f32, b: f32) -> bool {
    (a - b).abs() <= 1e-5 * a.abs().max(b.abs()).max(1.0)
}

fn arr() -> impl Strategy<Value = [f32; 4]> {
    prop::array::uniform4(-100.0f32..100.0)
}

proptest! {
    #[test]
    fn add_sub_mul_max_agree(a in arr(), b in arr()) {
        let (na, nb) = (F32x4::from_array(a), F32x4::from_array(b));
        let (sa, sb) = (F32x4Scalar::from_array(a), F32x4Scalar::from_array(b));
        prop_assert_eq!(na.add(nb).to_array(), sa.add(sb).to_array());
        prop_assert_eq!(na.sub(nb).to_array(), sa.sub(sb).to_array());
        prop_assert_eq!(na.mul(nb).to_array(), sa.mul(sb).to_array());
        prop_assert_eq!(na.max(nb).to_array(), sa.max(sb).to_array());
    }

    #[test]
    fn fma_agrees_within_rounding(acc in arr(), a in arr(), b in arr()) {
        let n = F32x4::from_array(acc)
            .fma(F32x4::from_array(a), F32x4::from_array(b))
            .to_array();
        let s = F32x4Scalar::from_array(acc)
            .fma(F32x4Scalar::from_array(a), F32x4Scalar::from_array(b))
            .to_array();
        for l in 0..4 {
            prop_assert!(close(n[l], s[l]), "lane {l}: {} vs {}", n[l], s[l]);
        }
    }

    #[test]
    fn fma_lane_agrees_for_every_lane(acc in arr(), a in arr(), b in arr()) {
        macro_rules! check_lane {
            ($lane:literal) => {{
                let n = F32x4::from_array(acc)
                    .fma_lane::<$lane>(F32x4::from_array(a), F32x4::from_array(b))
                    .to_array();
                let s = F32x4Scalar::from_array(acc)
                    .fma_lane::<$lane>(F32x4Scalar::from_array(a), F32x4Scalar::from_array(b))
                    .to_array();
                for l in 0..4 {
                    prop_assert!(close(n[l], s[l]), "lane const {} idx {l}", $lane);
                }
            }};
        }
        check_lane!(0);
        check_lane!(1);
        check_lane!(2);
        check_lane!(3);
    }

    #[test]
    fn reduce_sum_agrees(a in arr()) {
        let n = F32x4::from_array(a).reduce_sum();
        let s = F32x4Scalar::from_array(a).reduce_sum();
        prop_assert!(close(n, s), "{n} vs {s}");
    }

    #[test]
    fn load_store_round_trip(a in arr()) {
        let mut out = [0.0f32; 4];
        F32x4::from_array(a).store(&mut out);
        prop_assert_eq!(out, a);
        let mut padded = [0.0f32; 7];
        padded[..4].copy_from_slice(&a);
        prop_assert_eq!(F32x4::load(&padded).to_array(), a);
    }

    #[test]
    fn splat_fills_lanes(v in -1e6f32..1e6) {
        prop_assert_eq!(F32x4::splat(v).to_array(), [v; 4]);
    }
}

#[test]
fn special_values_pass_through() {
    let a = [f32::INFINITY, f32::NEG_INFINITY, 0.0, -0.0];
    let x = F32x4::from_array(a);
    assert_eq!(x.add(F32x4::zero()).to_array()[0], f32::INFINITY);
    assert_eq!(x.to_array()[1], f32::NEG_INFINITY);
    // NaN propagates through fma.
    let nan = F32x4::splat(f32::NAN);
    assert!(nan.fma(F32x4::splat(1.0), F32x4::splat(1.0)).to_array()[0].is_nan());
}

//! Wall-clock timing utilities for per-phase breakdowns.

use std::time::{Duration, Instant};

/// A restartable stopwatch accumulating named phase durations.
///
/// The breakdown experiments (Figure 1a) time the `im2col`, `transform`,
/// `packing`, and `micro-kernel` phases of each baseline separately; each
/// backend's `*_timed` entry point feeds one of these.
#[derive(Debug, Default, Clone)]
pub struct Stopwatch {
    phases: Vec<(&'static str, Duration)>,
}

impl Stopwatch {
    /// A stopwatch with no recorded phases.
    pub fn new() -> Self {
        Self::default()
    }

    /// Times `f`, accumulating the elapsed wall time under `phase`.
    pub fn time<T>(&mut self, phase: &'static str, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.add(phase, start.elapsed());
        out
    }

    /// Adds an externally measured duration under `phase`.
    pub fn add(&mut self, phase: &'static str, d: Duration) {
        if let Some(entry) = self.phases.iter_mut().find(|(p, _)| *p == phase) {
            entry.1 += d;
        } else {
            self.phases.push((phase, d));
        }
    }

    /// Accumulated duration of one phase (zero if never recorded).
    pub fn get(&self, phase: &str) -> Duration {
        self.phases
            .iter()
            .find(|(p, _)| *p == phase)
            .map(|(_, d)| *d)
            .unwrap_or_default()
    }

    /// Total across all phases.
    pub fn total(&self) -> Duration {
        self.phases.iter().map(|(_, d)| *d).sum()
    }

    /// All `(phase, duration)` pairs in first-recorded order.
    pub fn phases(&self) -> &[(&'static str, Duration)] {
        &self.phases
    }

    /// Each phase's share of the total, in percent (Figure 1a's y-axis).
    pub fn percentages(&self) -> Vec<(&'static str, f64)> {
        let total = self.total().as_secs_f64();
        self.phases
            .iter()
            .map(|(p, d)| {
                let pct = if total > 0.0 {
                    100.0 * d.as_secs_f64() / total
                } else {
                    0.0
                };
                (*p, pct)
            })
            .collect()
    }

    /// Merges another stopwatch's phases into this one (for averaging over
    /// repetitions).
    pub fn merge(&mut self, other: &Stopwatch) {
        for (p, d) in &other.phases {
            self.add(p, *d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_records_and_returns() {
        let mut sw = Stopwatch::new();
        let v = sw.time("work", || 21 * 2);
        assert_eq!(v, 42);
        assert!(sw.get("work") > Duration::ZERO || sw.get("work") == Duration::ZERO);
        assert_eq!(sw.phases().len(), 1);
    }

    #[test]
    fn repeated_phases_accumulate() {
        let mut sw = Stopwatch::new();
        sw.add("a", Duration::from_millis(10));
        sw.add("a", Duration::from_millis(5));
        sw.add("b", Duration::from_millis(5));
        assert_eq!(sw.get("a"), Duration::from_millis(15));
        assert_eq!(sw.total(), Duration::from_millis(20));
    }

    #[test]
    fn percentages_sum_to_hundred() {
        let mut sw = Stopwatch::new();
        sw.add("x", Duration::from_millis(30));
        sw.add("y", Duration::from_millis(70));
        let pct = sw.percentages();
        let sum: f64 = pct.iter().map(|(_, p)| p).sum();
        assert!((sum - 100.0).abs() < 1e-9);
        assert!((pct[1].1 - 70.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stopwatch_has_zero_percentages() {
        let sw = Stopwatch::new();
        assert!(sw.percentages().is_empty());
        assert_eq!(sw.total(), Duration::ZERO);
    }

    #[test]
    fn merge_combines_phase_lists() {
        let mut a = Stopwatch::new();
        a.add("p", Duration::from_millis(1));
        let mut b = Stopwatch::new();
        b.add("p", Duration::from_millis(2));
        b.add("q", Duration::from_millis(3));
        a.merge(&b);
        assert_eq!(a.get("p"), Duration::from_millis(3));
        assert_eq!(a.get("q"), Duration::from_millis(3));
    }
}

//! Machine parameter records (the paper's Table 3).

/// Cache replacement policy — Figure 5's packing ablation behaves
/// differently under Phytium 2000+'s pseudo-random policy than under LRU,
/// so the spec records which one a machine uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Replacement {
    /// Least-recently-used (KP920, ThunderX2, RPi 4).
    Lru,
    /// Pseudo-random (Phytium 2000+).
    PseudoRandom,
}

/// Cache hierarchy parameters, all capacities in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheSpec {
    /// Per-core L1 data cache capacity.
    pub l1d: usize,
    /// L2 capacity (per core, or per cluster when `l2_shared_by > 1`).
    pub l2: usize,
    /// Number of cores sharing one L2 (4 on Phytium 2000+, 1 elsewhere).
    pub l2_shared_by: usize,
    /// Shared L3 capacity, if the machine has one.
    pub l3: Option<usize>,
    /// Cache line size.
    pub line: usize,
    /// Replacement policy of the data caches.
    pub replacement: Replacement,
}

impl CacheSpec {
    /// L2 capacity effectively available to one core.
    pub fn l2_per_core(&self) -> usize {
        self.l2 / self.l2_shared_by
    }

    /// The capacity the tiling model should treat as "last-level" for one
    /// core: L3 per core when present, else the per-core share of L2.
    pub fn llc_per_core(&self, cores: usize) -> usize {
        match self.l3 {
            Some(l3) => l3 / cores,
            None => self.l2_per_core(),
        }
    }
}

/// SIMD register file parameters (Eq. 3's constraint inputs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimdSpec {
    /// Vector register width in bits (128 for NEON).
    pub vector_bits: usize,
    /// Number of architectural vector registers (32 on ARMv8).
    pub num_vregs: usize,
    /// FP32 FMA results per cycle per core (peak / cores / frequency / 2).
    pub fma_per_cycle: f64,
    /// Whether the ISA has lane-indexed FMA (`vfmaq_laneq_f32`): a loaded
    /// input vector feeds 4 broadcast-FMAs for free. NEON has it; SSE/AVX
    /// must issue one broadcast *load* per scalar instead, which changes
    /// which register tile the Eq. 4 model should pick (see
    /// `ndirect-core::model::register_tile`).
    pub lane_fma: bool,
}

impl SimdSpec {
    /// FP32 lanes per vector register.
    pub fn f32_lanes(&self) -> usize {
        self.vector_bits / 32
    }

    /// ARMv8 NEON: 32 × 128-bit registers with lane-indexed FMA.
    pub const NEON: SimdSpec = SimdSpec {
        vector_bits: 128,
        num_vregs: 32,
        fma_per_cycle: 2.0,
        lane_fma: true,
    };
}

/// A complete machine description — one row of the paper's Table 3 plus the
/// microarchitectural details the models need.
#[derive(Debug, Clone, PartialEq)]
pub struct Platform {
    /// Human-readable machine name.
    pub name: String,
    /// Physical core count.
    pub cores: usize,
    /// Core clock in GHz.
    pub frequency_ghz: f64,
    /// Theoretical peak FP32 throughput of the whole socket, GFLOPS.
    pub peak_fp32_gflops: f64,
    /// Peak memory bandwidth, GiB/s.
    pub max_bandwidth_gib_s: f64,
    /// Cache hierarchy.
    pub cache: CacheSpec,
    /// Vector register file.
    pub simd: SimdSpec,
    /// Streaming/non-streaming access-cost ratio `α` (§6.2). Presets carry
    /// a representative default; [`crate::measure_alpha`] refreshes it for
    /// the host.
    pub alpha: f64,
}

impl Platform {
    /// Peak FP32 GFLOPS of a single core.
    pub fn peak_per_core(&self) -> f64 {
        self.peak_fp32_gflops / self.cores as f64
    }

    /// Peak GFLOPS of `threads` cores (capped at the socket).
    pub fn peak_for_threads(&self, threads: usize) -> f64 {
        self.peak_per_core() * threads.min(self.cores) as f64
    }

    /// Achieved fraction of peak for a measured throughput on `threads`
    /// cores — the right-hand axis of the paper's Figures 1b and 4.
    pub fn efficiency(&self, gflops: f64, threads: usize) -> f64 {
        gflops / self.peak_for_threads(threads)
    }

    /// FP32 FLOPs per cycle per core implied by the Table 3 peak — a
    /// consistency check on the spec (8 for Phytium 2000+, 16 for KP920 and
    /// ThunderX2's 2×128-bit FMA pipes).
    pub fn flops_per_cycle_per_core(&self) -> f64 {
        self.peak_fp32_gflops / (self.cores as f64 * self.frequency_ghz)
    }

    /// Returns a copy with a different measured `alpha`.
    pub fn with_alpha(&self, alpha: f64) -> Platform {
        let mut p = self.clone();
        p.alpha = alpha;
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Platform {
        Platform {
            name: "sample".into(),
            cores: 8,
            frequency_ghz: 2.0,
            peak_fp32_gflops: 128.0,
            max_bandwidth_gib_s: 40.0,
            cache: CacheSpec {
                l1d: 32 * 1024,
                l2: 512 * 1024,
                l2_shared_by: 1,
                l3: Some(16 * 1024 * 1024),
                line: 64,
                replacement: Replacement::Lru,
            },
            simd: SimdSpec::NEON,
            alpha: 2.0,
        }
    }

    #[test]
    fn per_core_peak() {
        let p = sample();
        assert_eq!(p.peak_per_core(), 16.0);
        assert_eq!(p.peak_for_threads(4), 64.0);
        assert_eq!(p.peak_for_threads(100), 128.0);
    }

    #[test]
    fn efficiency_fractions() {
        let p = sample();
        assert!((p.efficiency(64.0, 8) - 0.5).abs() < 1e-12);
        assert!((p.efficiency(8.0, 1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn flops_per_cycle() {
        let p = sample();
        assert!((p.flops_per_cycle_per_core() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn llc_per_core_prefers_l3() {
        let p = sample();
        assert_eq!(p.cache.llc_per_core(p.cores), 2 * 1024 * 1024);
        let mut no_l3 = p.clone();
        no_l3.cache.l3 = None;
        assert_eq!(no_l3.cache.llc_per_core(no_l3.cores), 512 * 1024);
    }

    #[test]
    fn l2_sharing_divides_capacity() {
        let mut p = sample();
        p.cache.l2 = 2 * 1024 * 1024;
        p.cache.l2_shared_by = 4;
        assert_eq!(p.cache.l2_per_core(), 512 * 1024);
    }

    #[test]
    fn neon_spec_lanes() {
        assert_eq!(SimdSpec::NEON.f32_lanes(), 4);
        assert_eq!(SimdSpec::NEON.num_vregs, 32);
    }

    #[test]
    fn with_alpha_only_changes_alpha() {
        let p = sample();
        let q = p.with_alpha(3.5);
        assert_eq!(q.alpha, 3.5);
        assert_eq!(q.cores, p.cores);
        assert_eq!(q.cache, p.cache);
    }
}

//! The α microbenchmark (paper §6.2).
//!
//! The thread-mapping model weighs accesses to the filter (streamed:
//! consecutive addresses, hardware prefetcher friendly) differently from
//! accesses to the input tensor (non-streamed: strided row gathers). The
//! paper determines the cost ratio `α ≥ 1` offline by timing both access
//! patterns over a buffer larger than the LLC; this module reproduces that
//! measurement.

use std::time::Instant;

use ndirect_tensor::AlignedBuf;

/// Result of the α microbenchmark.
#[derive(Debug, Clone, Copy)]
pub struct AlphaMeasurement {
    /// Nanoseconds per element, streaming traversal.
    pub streaming_ns: f64,
    /// Nanoseconds per element, strided (non-streaming) traversal.
    pub non_streaming_ns: f64,
    /// The coefficient `α = non_streaming / streaming`, clamped to ≥ 1.
    pub alpha: f64,
}

/// Measures α on the current machine.
///
/// * `buffer_bytes` should exceed the LLC so both traversals hit DRAM; the
///   presets pass `4 × LLC`.
/// * `reps` full traversals are timed after one warm-up pass.
///
/// The streaming pass reads the buffer in address order. The non-streaming
/// pass reads it with a page-crossing stride (one element per 1024, then the
/// next offset), defeating both spatial locality and the stride prefetcher —
/// the same access pattern a convolution's row gathers exhibit across `H`.
pub fn measure_alpha(buffer_bytes: usize, reps: usize) -> AlphaMeasurement {
    let len = (buffer_bytes / 4).max(STRIDE * 4);
    let mut buf = AlignedBuf::zeroed(len);
    for (i, x) in buf.as_mut_slice().iter_mut().enumerate() {
        *x = (i % 251) as f32 * 0.25;
    }
    let reps = reps.max(1);

    let streaming_ns = time_per_element(reps, || streaming_sum(&buf), len);
    let non_streaming_ns = time_per_element(reps, || strided_sum(&buf), len);

    AlphaMeasurement {
        streaming_ns,
        non_streaming_ns,
        alpha: (non_streaming_ns / streaming_ns).max(1.0),
    }
}

const STRIDE: usize = 1024;

fn time_per_element(reps: usize, mut pass: impl FnMut() -> f32, len: usize) -> f64 {
    // Warm-up pass populates caches/TLB and forces page allocation.
    let mut sink = pass();
    let start = Instant::now();
    for _ in 0..reps {
        sink += pass();
    }
    let elapsed = start.elapsed().as_nanos() as f64;
    // Keep the optimizer from deleting the loop.
    std::hint::black_box(sink);
    elapsed / (reps * len) as f64
}

fn streaming_sum(buf: &AlignedBuf) -> f32 {
    let mut acc = [0.0f32; 8];
    let chunks = buf.as_slice().chunks_exact(8);
    let tail: f32 = chunks.remainder().iter().sum();
    for chunk in buf.as_slice().chunks_exact(8) {
        for (a, &x) in acc.iter_mut().zip(chunk) {
            *a += x;
        }
    }
    acc.iter().sum::<f32>() + tail
}

fn strided_sum(buf: &AlignedBuf) -> f32 {
    let data = buf.as_slice();
    let len = data.len();
    let mut acc = 0.0f32;
    // Visit every element exactly once, in stride-STRIDE passes.
    for offset in 0..STRIDE {
        let mut i = offset;
        while i < len {
            acc += data[i];
            i += STRIDE;
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alpha_is_at_least_one() {
        let m = measure_alpha(1 << 20, 2);
        assert!(m.alpha >= 1.0, "alpha={}", m.alpha);
        assert!(m.streaming_ns > 0.0);
        assert!(m.non_streaming_ns > 0.0);
    }

    #[test]
    fn traversals_sum_same_elements() {
        let mut buf = AlignedBuf::zeroed(STRIDE * 3 + 7);
        for (i, x) in buf.as_mut_slice().iter_mut().enumerate() {
            *x = (i % 13) as f32;
        }
        let a = streaming_sum(&buf);
        let b = strided_sum(&buf);
        assert!((a - b).abs() < 1.0, "streaming={a} strided={b}");
    }

    #[test]
    fn tiny_buffer_is_clamped_not_crashed() {
        let m = measure_alpha(16, 1);
        assert!(m.alpha >= 1.0);
    }
}

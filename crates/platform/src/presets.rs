//! The paper's Table 3 machines, plus host detection.

use crate::spec::{CacheSpec, Platform, Replacement, SimdSpec};

const KB: usize = 1024;
const MB: usize = 1024 * 1024;

/// Names of the four evaluation platforms, in Table 3 column order.
pub const PAPER_PLATFORM_NAMES: [&str; 4] = ["Phytium 2000+", "KP920", "ThunderX2", "RPi 4"];

/// Phytium 2000+ — 64 ARMv8 (FTC662) cores @ 2.2 GHz. L2 is shared by
/// 4-core clusters; no L3; pseudo-random replacement (the property Figure 5
/// attributes its packing-ablation behaviour to).
pub fn phytium_2000p() -> Platform {
    Platform {
        name: "Phytium 2000+".into(),
        cores: 64,
        frequency_ghz: 2.2,
        peak_fp32_gflops: 1126.4,
        max_bandwidth_gib_s: 143.1,
        cache: CacheSpec {
            l1d: 32 * KB,
            l2: 2 * MB,
            l2_shared_by: 4,
            l3: None,
            line: 64,
            replacement: Replacement::PseudoRandom,
        },
        simd: SimdSpec::NEON,
        alpha: 2.0,
    }
}

/// Kunpeng 920 — 64 TaiShan v110 cores @ 2.6 GHz, private 512 KB L2,
/// 64 MB shared L3.
pub fn kp920() -> Platform {
    Platform {
        name: "KP920".into(),
        cores: 64,
        frequency_ghz: 2.6,
        peak_fp32_gflops: 2662.4,
        max_bandwidth_gib_s: 190.7,
        cache: CacheSpec {
            l1d: 64 * KB,
            l2: 512 * KB,
            l2_shared_by: 1,
            l3: Some(64 * MB),
            line: 64,
            replacement: Replacement::Lru,
        },
        simd: SimdSpec::NEON,
        alpha: 2.0,
    }
}

/// Marvell ThunderX2 — 32 Vulcan cores @ 2.5 GHz, private 256 KB L2,
/// 32 MB shared L3, 4-way SMT available (Fig. 9).
pub fn thunderx2() -> Platform {
    Platform {
        name: "ThunderX2".into(),
        cores: 32,
        frequency_ghz: 2.5,
        peak_fp32_gflops: 1279.7,
        max_bandwidth_gib_s: 158.95,
        cache: CacheSpec {
            l1d: 32 * KB,
            l2: 256 * KB,
            l2_shared_by: 1,
            l3: Some(32 * MB),
            line: 64,
            replacement: Replacement::Lru,
        },
        simd: SimdSpec::NEON,
        alpha: 2.0,
    }
}

/// Raspberry Pi 4 Model B — 4 Cortex-A72 cores @ 1.8 GHz, 1 MB shared L2,
/// no L3.
pub fn rpi4() -> Platform {
    Platform {
        name: "RPi 4".into(),
        cores: 4,
        frequency_ghz: 1.8,
        peak_fp32_gflops: 56.8,
        max_bandwidth_gib_s: 16.8,
        cache: CacheSpec {
            l1d: 32 * KB,
            l2: MB,
            l2_shared_by: 4,
            l3: None,
            line: 64,
            replacement: Replacement::Lru,
        },
        simd: SimdSpec::NEON,
        alpha: 2.0,
    }
}

/// Fujitsu A64FX-like SVE machine (not in the paper's Table 3; used to
/// demonstrate the §10.1 portability of the analytic models to wider
/// vectors): 48 cores @ 2.2 GHz, 512-bit SVE (32 registers, 2 FMA pipes),
/// 64 KB L1d, 8 MB L2 per 12-core CMG, no L3.
pub fn a64fx_like() -> Platform {
    Platform {
        name: "A64FX-like (SVE-512)".into(),
        cores: 48,
        frequency_ghz: 2.2,
        // 2 pipes x 16 lanes x 2 flops = 64 flops/cycle/core.
        peak_fp32_gflops: 48.0 * 2.2 * 64.0,
        max_bandwidth_gib_s: 1024.0,
        cache: CacheSpec {
            l1d: 64 * KB,
            l2: 8 * MB,
            l2_shared_by: 12,
            l3: None,
            line: 256,
            replacement: Replacement::Lru,
        },
        simd: SimdSpec {
            vector_bits: 512,
            num_vregs: 32,
            fma_per_cycle: 2.0,
            lane_fma: true,
        },
        alpha: 2.0,
    }
}

/// All four Table 3 platforms in column order.
pub fn paper_platforms() -> Vec<Platform> {
    vec![phytium_2000p(), kp920(), thunderx2(), rpi4()]
}

/// The three HPC platforms of Figure 4 (everything but the RPi 4).
pub fn hpc_platforms() -> Vec<Platform> {
    vec![phytium_2000p(), kp920(), thunderx2()]
}

/// A best-effort description of the machine this process runs on.
///
/// Core count comes from the OS; cache sizes from sysfs where available,
/// with conservative defaults (32 KB L1 / 512 KB L2 / 8 MB L3) otherwise.
/// The peak-GFLOPS estimate assumes one 4-lane FMA pipe per core at a
/// nominal 2 GHz unless the frequency can be read — measured *efficiency*
/// numbers against this synthetic peak are indicative only, which
/// EXPERIMENTS.md discusses.
pub fn host() -> Platform {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let l1d = read_cache_size("index0").unwrap_or(32 * KB);
    let l2 = read_cache_size("index2").unwrap_or(512 * KB);
    let l3 = read_cache_size("index3");
    let frequency_ghz = read_cpu_mhz().map(|m| m / 1000.0).unwrap_or(2.0);
    // Two 128-bit FMA pipes (every recent x86/ARM core): 16 flops/cycle.
    let peak = cores as f64 * frequency_ghz * 16.0;
    // The register-tile model must know the *architectural* register count:
    // 32 × 128-bit on AArch64 (NEON), 16 × XMM on x86_64. Getting this
    // wrong makes the model pick spilling tiles.
    let simd = if cfg!(target_arch = "aarch64") {
        SimdSpec::NEON
    } else {
        SimdSpec {
            vector_bits: 128,
            num_vregs: 16,
            fma_per_cycle: 2.0,
            lane_fma: false,
        }
    };
    Platform {
        name: format!("host ({} cores, {})", cores, std::env::consts::ARCH),
        cores,
        frequency_ghz,
        peak_fp32_gflops: peak,
        max_bandwidth_gib_s: 20.0,
        cache: CacheSpec {
            l1d,
            l2,
            l2_shared_by: 1,
            l3,
            line: 64,
            replacement: Replacement::Lru,
        },
        simd,
        alpha: 2.0,
    }
}

/// Reads the current core clock from `/proc/cpuinfo` (Linux), in MHz.
fn read_cpu_mhz() -> Option<f64> {
    let text = std::fs::read_to_string("/proc/cpuinfo").ok()?;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("cpu MHz") {
            return rest.trim_start_matches([' ', '\t', ':']).trim().parse().ok();
        }
    }
    None
}

/// Reads `/sys/devices/system/cpu/cpu0/cache/<index>/size` (Linux), parsing
/// the `K`/`M` suffix convention.
fn read_cache_size(index: &str) -> Option<usize> {
    let path = format!("/sys/devices/system/cpu/cpu0/cache/{index}/size");
    let text = std::fs::read_to_string(path).ok()?;
    parse_cache_size(text.trim())
}

fn parse_cache_size(text: &str) -> Option<usize> {
    if let Some(kb) = text.strip_suffix('K') {
        kb.parse::<usize>().ok().map(|v| v * KB)
    } else if let Some(mb) = text.strip_suffix('M') {
        mb.parse::<usize>().ok().map(|v| v * MB)
    } else {
        text.parse::<usize>().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_core_counts_and_peaks() {
        let p = phytium_2000p();
        assert_eq!(p.cores, 64);
        assert!((p.flops_per_cycle_per_core() - 8.0).abs() < 1e-9);
        let k = kp920();
        assert_eq!(k.cores, 64);
        assert!((k.flops_per_cycle_per_core() - 16.0).abs() < 1e-9);
        let t = thunderx2();
        assert_eq!(t.cores, 32);
        assert!((t.flops_per_cycle_per_core() - 16.0).abs() < 0.01);
        let r = rpi4();
        assert_eq!(r.cores, 4);
    }

    #[test]
    fn phytium_l2_is_cluster_shared_and_no_l3() {
        let p = phytium_2000p();
        assert_eq!(p.cache.l2_shared_by, 4);
        assert_eq!(p.cache.l2_per_core(), 512 * KB);
        assert!(p.cache.l3.is_none());
        assert_eq!(p.cache.replacement, Replacement::PseudoRandom);
    }

    #[test]
    fn hpc_platforms_excludes_rpi() {
        let names: Vec<String> = hpc_platforms().iter().map(|p| p.name.clone()).collect();
        assert_eq!(names, vec!["Phytium 2000+", "KP920", "ThunderX2"]);
    }

    #[test]
    fn host_detection_is_sane() {
        let h = host();
        assert!(h.cores >= 1);
        assert!(h.cache.l1d >= 8 * KB);
        assert!(h.peak_fp32_gflops > 0.0);
    }

    #[test]
    fn cache_size_parsing() {
        assert_eq!(parse_cache_size("32K"), Some(32 * KB));
        assert_eq!(parse_cache_size("1M"), Some(MB));
        assert_eq!(parse_cache_size("4096"), Some(4096));
        assert_eq!(parse_cache_size("?"), None);
    }
}

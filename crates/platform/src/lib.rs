//! Evaluation-platform descriptions and memory microbenchmarks.
//!
//! The paper's analytic models consume a handful of machine parameters:
//! cache capacities (Eqs. 1–2), vector register file size (Eq. 3), core
//! count, and the streaming/non-streaming memory-access coefficient `α`
//! (Eqs. 5–6, measured offline with a microbenchmark). This crate provides:
//!
//! * [`Platform`] — those parameters, with [`presets`] reproducing the
//!   paper's Table 3 machines exactly, so the model-derived tile sizes and
//!   thread mappings can be checked against the paper;
//! * [`presets::host`] — a best-effort description of the machine the code
//!   is actually running on (used when *measuring*);
//! * [`alpha`] — the α microbenchmark (§6.2): time per element of streaming
//!   vs non-streaming traversals of a buffer larger than the LLC;
//! * [`timer`] — a tiny wall-clock scope timer used by every per-phase
//!   breakdown in the workspace;
//! * [`roofline`] — achieved-GFLOPS / %-of-peak / arithmetic-intensity
//!   attribution against the machine's compute and bandwidth ceilings,
//!   used by the `perfreport` observatory in `ndirect-bench`.

// This crate has no business touching raw pointers; the auditor's
// lint-header rule holds that line at compile time.
#![forbid(unsafe_code)]

#![warn(missing_docs)]

pub mod alpha;
pub mod presets;
pub mod roofline;
pub mod spec;
pub mod timer;

pub use alpha::{measure_alpha, AlphaMeasurement};
pub use presets::{host, kp920, phytium_2000p, rpi4, thunderx2, PAPER_PLATFORM_NAMES};
pub use roofline::{conv_min_traffic_bytes, BoundKind, LayerPerf, Roofline};
pub use spec::{CacheSpec, Platform, Replacement, SimdSpec};
pub use timer::Stopwatch;

//! Roofline attribution: turning a measured `(flops, bytes, seconds)`
//! triple into achieved GFLOPS, fraction of peak, arithmetic intensity,
//! and a memory- vs compute-bound classification.
//!
//! The paper argues its tile and grid choices from analytic working-set
//! models; the roofline (Williams et al.) is the standard frame for
//! checking the *outcome*: a kernel with arithmetic intensity `I`
//! (FLOPs per byte of memory traffic) can at best achieve
//! `min(peak, I × bandwidth)`. Where a layer lands against that bound —
//! and on which side of the ridge point — says whether further tiling
//! work can help (compute-bound: yes, chase the FMA pipes) or whether
//! the schedule is already paying for DRAM (memory-bound: reduce
//! traffic, not instructions). [`Roofline`] is built from a
//! [`Platform`]'s Table 3 numbers; the `perfreport` binary in
//! `ndirect-bench` feeds it measured layer times.

use crate::Platform;

/// Which resource bounds a measured (or modeled) kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundKind {
    /// Arithmetic intensity above the ridge point: the FMA pipes are the
    /// ceiling and memory can keep up.
    Compute,
    /// Intensity below the ridge point: DRAM bandwidth caps throughput no
    /// matter how good the kernel is.
    Memory,
}

impl BoundKind {
    /// Stable lowercase name used in JSON.
    pub fn name(self) -> &'static str {
        match self {
            BoundKind::Compute => "compute",
            BoundKind::Memory => "memory",
        }
    }
}

/// The two machine ceilings of the roofline plot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Roofline {
    /// Compute ceiling in GFLOPS for the thread count being measured.
    pub peak_gflops: f64,
    /// Memory ceiling in GiB/s (the socket's bandwidth — shared by all
    /// cores, which is exactly the paper's Eq. 5–6 contention argument).
    pub bandwidth_gib_s: f64,
}

impl Roofline {
    /// The roofline for `threads` cores of `platform`: compute scales
    /// with the thread count (capped at the socket), bandwidth does not.
    pub fn for_threads(platform: &Platform, threads: usize) -> Roofline {
        Roofline {
            peak_gflops: platform.peak_for_threads(threads),
            bandwidth_gib_s: platform.max_bandwidth_gib_s,
        }
    }

    /// Memory bandwidth in bytes per second.
    pub fn bandwidth_bytes_s(&self) -> f64 {
        self.bandwidth_gib_s * (1u64 << 30) as f64
    }

    /// The ridge point: the arithmetic intensity (FLOPs/byte) at which
    /// the compute and memory ceilings intersect. Below it a kernel is
    /// memory-bound, above it compute-bound.
    pub fn ridge_intensity(&self) -> f64 {
        self.peak_gflops * 1e9 / self.bandwidth_bytes_s()
    }

    /// The attainable GFLOPS ceiling at intensity `i`:
    /// `min(peak, i × bandwidth)`.
    pub fn attainable_gflops(&self, intensity: f64) -> f64 {
        (intensity * self.bandwidth_bytes_s() / 1e9).min(self.peak_gflops)
    }

    /// Which ceiling governs a kernel of intensity `i`.
    pub fn classify(&self, intensity: f64) -> BoundKind {
        if intensity >= self.ridge_intensity() {
            BoundKind::Compute
        } else {
            BoundKind::Memory
        }
    }

    /// Attributes one measurement: `flops` useful FLOPs and `bytes` of
    /// compulsory memory traffic, done in `secs` seconds.
    pub fn attribute(&self, flops: u64, bytes: u64, secs: f64) -> LayerPerf {
        let secs = secs.max(1e-12);
        let gflops = flops as f64 / secs / 1e9;
        let intensity = flops as f64 / (bytes.max(1)) as f64;
        let attainable = self.attainable_gflops(intensity);
        LayerPerf {
            gflops,
            pct_peak: 100.0 * gflops / self.peak_gflops.max(1e-12),
            intensity,
            attainable_gflops: attainable,
            pct_roofline: 100.0 * gflops / attainable.max(1e-12),
            bound: self.classify(intensity),
        }
    }
}

/// One attributed measurement — a point under the roofline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerPerf {
    /// Achieved throughput, GFLOPS.
    pub gflops: f64,
    /// Achieved fraction of the compute ceiling, percent (the right-hand
    /// axis of the paper's Figures 1b and 4).
    pub pct_peak: f64,
    /// Arithmetic intensity, FLOPs per byte of memory traffic.
    pub intensity: f64,
    /// The roofline ceiling at this intensity, GFLOPS.
    pub attainable_gflops: f64,
    /// Achieved fraction of the *attainable* ceiling, percent — the
    /// honest efficiency number for memory-bound layers (1×1 convs can
    /// sit far from peak while saturating DRAM).
    pub pct_roofline: f64,
    /// Which ceiling governs at this intensity.
    pub bound: BoundKind,
}

/// Compulsory memory traffic of one convolution, in bytes: every input,
/// filter, and output element moved once at fp32. This is the
/// lower-bound traffic a perfectly-tiled schedule approaches, and the
/// denominator the roofline's arithmetic intensity is defined against;
/// actual traffic (visible as `llc_misses × line` when hardware counters
/// are available) is at least this.
pub fn conv_min_traffic_bytes(shape: &ndirect_tensor::ConvShape) -> u64 {
    let f32s = std::mem::size_of::<f32>() as u64;
    let input = (shape.n * shape.c * shape.h * shape.w) as u64;
    let filter = (shape.k * shape.c * shape.r * shape.s) as u64;
    let output = (shape.n * shape.k * shape.p() * shape.q()) as u64;
    (input + filter + output).saturating_mul(f32s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndirect_tensor::ConvShape;

    fn roof() -> Roofline {
        Roofline {
            peak_gflops: 100.0,
            bandwidth_gib_s: 10.0,
        }
    }

    #[test]
    fn ridge_point_separates_the_regimes() {
        let r = roof();
        let ridge = r.ridge_intensity();
        // 100 GFLOPS / (10 GiB/s) ≈ 9.31 FLOPs/byte.
        assert!((ridge - 100.0 * 1e9 / (10.0 * (1u64 << 30) as f64)).abs() < 1e-9);
        assert_eq!(r.classify(ridge * 2.0), BoundKind::Compute);
        assert_eq!(r.classify(ridge / 2.0), BoundKind::Memory);
    }

    #[test]
    fn attainable_is_min_of_the_two_ceilings() {
        let r = roof();
        assert_eq!(r.attainable_gflops(1e9), 100.0);
        let low = r.attainable_gflops(1.0);
        assert!((low - r.bandwidth_bytes_s() / 1e9).abs() < 1e-9);
        assert!(low < 100.0);
    }

    #[test]
    fn attribution_is_consistent() {
        let r = roof();
        // 50 GFLOP in 1 s at intensity 50 (compute-bound): 50% of peak.
        let p = r.attribute(50_000_000_000, 1_000_000_000, 1.0);
        assert!((p.gflops - 50.0).abs() < 1e-9);
        assert!((p.pct_peak - 50.0).abs() < 1e-9);
        assert_eq!(p.bound, BoundKind::Compute);
        assert!((p.intensity - 50.0).abs() < 1e-9);
        assert!(p.pct_roofline >= p.pct_peak - 1e-9);
    }

    #[test]
    fn memory_bound_layers_get_credit_against_their_own_roof() {
        let r = roof();
        // Intensity 1: roof is ~10.7 GFLOPS; achieving 5 is ~47% of the
        // attainable roof but only 5% of peak.
        let p = r.attribute(5_000_000_000, 5_000_000_000, 1.0);
        assert_eq!(p.bound, BoundKind::Memory);
        assert!(p.pct_peak < 6.0);
        assert!(p.pct_roofline > 40.0);
    }

    #[test]
    fn min_traffic_counts_every_tensor_once() {
        let shape = ConvShape::square(1, 2, 4, 8, 3, 1);
        let expect = 4 * ((2 * 8 * 8) + (4 * 2 * 3 * 3) + (4 * 8 * 8)) as u64;
        assert_eq!(conv_min_traffic_bytes(&shape), expect);
    }

    #[test]
    fn for_threads_scales_compute_not_bandwidth() {
        let p = crate::presets::kp920();
        let r1 = Roofline::for_threads(&p, 1);
        let r2 = Roofline::for_threads(&p, 2);
        assert!((r2.peak_gflops - 2.0 * r1.peak_gflops).abs() < 1e-9);
        assert_eq!(r1.bandwidth_gib_s, r2.bandwidth_gib_s);
    }
}

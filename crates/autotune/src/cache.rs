//! Tuned-schedule persistence.
//!
//! Real Ansor writes its measurement log to disk so tuning is a one-time
//! cost per (operator, machine). This module gives the workspace the same
//! property: a [`ScheduleCache`] maps convolution shapes to tuned
//! [`Schedule`]s and serializes to JSON, so the end-to-end harness (and
//! any downstream user) can tune once and reuse.

use std::collections::HashMap;
use std::path::Path;

use ndirect_core::Schedule;
use ndirect_support::{Json, JsonError};
use ndirect_tensor::ConvShape;

/// A persistent map from convolution shapes to tuned schedules.
///
/// Keys are the canonical `Display` rendering of [`ConvShape`]
/// (`"N1 C64 H56 …"`) — human-readable in the JSON and unambiguous, since
/// `Display` covers every field.
#[derive(Debug, Default, Clone)]
pub struct ScheduleCache {
    entries: HashMap<String, Schedule>,
    /// Free-form provenance: machine description, trial budget, date.
    pub provenance: String,
}

impl ScheduleCache {
    /// An empty cache with a provenance note.
    pub fn new(provenance: impl Into<String>) -> Self {
        ScheduleCache {
            entries: HashMap::new(),
            provenance: provenance.into(),
        }
    }

    /// Stores a tuned schedule for a shape.
    pub fn put(&mut self, shape: &ConvShape, schedule: Schedule) {
        self.entries.insert(shape.to_string(), schedule);
    }

    /// Looks a shape up.
    pub fn get(&self, shape: &ConvShape) -> Option<&Schedule> {
        self.entries.get(&shape.to_string())
    }

    /// Number of cached shapes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serializes to pretty JSON. Entries are sorted by key so the output
    /// is stable across runs.
    pub fn to_json(&self) -> String {
        let mut keys: Vec<&String> = self.entries.keys().collect();
        keys.sort();
        let entries = keys
            .into_iter()
            .map(|k| (k.clone(), self.entries[k].to_json()))
            .collect();
        Json::Obj(vec![
            ("provenance".into(), Json::str(self.provenance.clone())),
            ("entries".into(), Json::Obj(entries)),
        ])
        .pretty()
    }

    /// Parses from JSON; malformed text or schedules come back as a typed
    /// [`JsonError`], never a panic.
    pub fn from_json(text: &str) -> Result<Self, JsonError> {
        let root = Json::parse(text)?;
        let provenance = root.str_field("provenance")?.to_string();
        let raw = root
            .require("entries")?
            .as_obj()
            .ok_or(JsonError {
                msg: "\"entries\" must be an object".into(),
                at: 0,
            })?;
        let mut entries = HashMap::new();
        for (key, value) in raw {
            entries.insert(key.clone(), Schedule::from_json(value)?);
        }
        Ok(ScheduleCache {
            entries,
            provenance,
        })
    }

    /// Writes the cache to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Loads a cache from a file.
    pub fn load(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        Self::from_json(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Converts into the `(shape, schedule)` table the engine's
    /// `TunedBackend` consumes, given the shapes of interest (the cache
    /// stores string keys; shapes not present are skipped).
    pub fn table_for(&self, shapes: &[ConvShape]) -> HashMap<ConvShape, Schedule> {
        shapes
            .iter()
            .filter_map(|s| self.get(s).map(|sched| (*s, sched.clone())))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_shape() -> ConvShape {
        ConvShape::square(2, 16, 32, 14, 3, 1)
    }

    #[test]
    fn put_get_round_trip() {
        let shape = sample_shape();
        let mut cache = ScheduleCache::new("unit test");
        assert!(cache.is_empty());
        cache.put(&shape, Schedule::minimal(&shape));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(&shape), Some(&Schedule::minimal(&shape)));
        // A different shape misses.
        let other = ConvShape::square(1, 16, 32, 14, 3, 1);
        assert!(cache.get(&other).is_none());
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let shape = sample_shape();
        let mut cache = ScheduleCache::new("machine X, 64 trials");
        let mut sched = Schedule::minimal(&shape);
        sched.vw = 8;
        sched.vk = 8;
        sched.packing = ndirect_core::PackingMode::Sequential;
        cache.put(&shape, sched.clone());

        let parsed = ScheduleCache::from_json(&cache.to_json()).unwrap();
        assert_eq!(parsed.provenance, "machine X, 64 trials");
        assert_eq!(parsed.get(&shape), Some(&sched));
    }

    #[test]
    fn file_round_trip() {
        let shape = sample_shape();
        let mut cache = ScheduleCache::new("file test");
        cache.put(&shape, Schedule::minimal(&shape));
        let path = std::env::temp_dir().join("ndirect_schedule_cache_test.json");
        cache.save(&path).unwrap();
        let loaded = ScheduleCache::load(&path).unwrap();
        assert_eq!(loaded.get(&shape), cache.get(&shape));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_file_is_an_error_not_a_panic() {
        let path = std::env::temp_dir().join("ndirect_schedule_cache_corrupt.json");
        std::fs::write(&path, "{not json").unwrap();
        assert!(ScheduleCache::load(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn table_for_filters_known_shapes() {
        let a = sample_shape();
        let b = ConvShape::square(1, 8, 8, 10, 3, 1);
        let mut cache = ScheduleCache::new("t");
        cache.put(&a, Schedule::minimal(&a));
        let table = cache.table_for(&[a, b]);
        assert_eq!(table.len(), 1);
        assert!(table.contains_key(&a));
    }
}

//! An Ansor-like schedule autotuner for direct convolution.
//!
//! The paper's strongest search-based baseline is Ansor (TVM): evolutionary
//! search over a hierarchical schedule space with a learned cost model,
//! given a budget of measured trials (1,000 per convolution layer in §7.3).
//! This crate reproduces that *methodology* against the same operator our
//! library implements:
//!
//! * [`space`] — the schedule search space: register tiles `(Vw, Vk)`,
//!   cache tiles `(Tc, Tk, Th)`, packing mode, and the thread-grid split;
//! * [`cost`] — a learned linear cost model over schedule features,
//!   retrained on the measurements gathered so far (Ansor's
//!   measure-and-learn loop);
//! * [`search`] — evolutionary search: random initial population, tournament
//!   selection, mutation of one parameter at a time, cost-model-guided
//!   pruning of candidates before spending real measurements;
//! * [`dwpw`] — exhaustive measured search over the fused
//!   depthwise+pointwise schedule's much smaller space.
//!
//! The tuner measures real executions (like Ansor's RPC measurement), so
//! tuned throughput is directly comparable to nDirect's model-derived
//! schedule — the comparison of the paper's Figure 6.

// This crate has no business touching raw pointers; the auditor's
// lint-header rule holds that line at compile time.
#![forbid(unsafe_code)]

#![warn(missing_docs)]

pub mod cache;
pub mod cost;
pub mod dwpw;
pub mod search;
pub mod space;

pub use cache::ScheduleCache;
pub use search::{tune, TuneReport, TuneSettings};
pub use space::{random_schedule, ScheduleSpace};

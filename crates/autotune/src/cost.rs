//! A learned linear cost model over schedule features.
//!
//! Ansor guides its evolutionary search with a cost model trained on the
//! measurements collected so far, so most candidates are scored without
//! spending a real measurement. We use ridge regression on a small,
//! hand-picked feature vector — linear in the features but nonlinear in the
//! schedule (logs and interaction terms), which is plenty for ranking
//! candidates within one operator.

use ndirect_core::{PackingMode, Schedule};
use ndirect_tensor::ConvShape;

/// Number of features the model consumes.
pub const NUM_FEATURES: usize = 11;

/// Extracts the feature vector of a schedule for a problem.
///
/// Features (all dimensionless, roughly unit-scaled):
/// 1. bias,
/// 2. `ln Vw`, `ln Vk` — register-tile shape,
/// 3. register-pressure overflow (how far Eq. 3 is exceeded),
/// 4. `ln Tc`, `ln(Tk/Vk)`, `ln Th` — cache tiles,
/// 5. packing mode flags (fused, and the two zero-copy variants `none`
///    and `sliced`; sequential is the all-zero reference level),
/// 6. thread-grid balance `ln(PTn/PTk)`.
pub fn features(sched: &Schedule, shape: &ConvShape) -> [f64; NUM_FEATURES] {
    let regs = ndirect_core::model::register_tile::registers_used(sched.vw, sched.vk, shape.s);
    let overflow = (regs as f64 - 16.0).max(0.0) / 16.0;
    [
        1.0,
        (sched.vw as f64).ln(),
        (sched.vk as f64).ln(),
        overflow,
        (sched.tc as f64).ln(),
        (sched.tk as f64 / sched.vk as f64).ln(),
        (sched.th as f64).ln(),
        if sched.packing == PackingMode::Fused { 1.0 } else { 0.0 },
        (sched.grid.ptn() as f64 / sched.grid.ptk() as f64).ln(),
        if sched.packing == PackingMode::None { 1.0 } else { 0.0 },
        if matches!(sched.packing, PackingMode::Sliced { .. }) { 1.0 } else { 0.0 },
    ]
}

/// Ridge-regression cost model mapping features → predicted GFLOPS.
#[derive(Debug, Clone)]
pub struct CostModel {
    weights: [f64; NUM_FEATURES],
    trained: bool,
}

impl Default for CostModel {
    fn default() -> Self {
        Self::new()
    }
}

impl CostModel {
    /// An untrained model (predicts 0 for everything and reports
    /// [`CostModel::is_trained`] = false so the search measures instead).
    pub fn new() -> Self {
        CostModel {
            weights: [0.0; NUM_FEATURES],
            trained: false,
        }
    }

    /// Whether [`CostModel::fit`] has run on enough samples to rank.
    pub fn is_trained(&self) -> bool {
        self.trained
    }

    /// Predicted throughput for a candidate.
    pub fn predict(&self, sched: &Schedule, shape: &ConvShape) -> f64 {
        let f = features(sched, shape);
        f.iter().zip(&self.weights).map(|(x, w)| x * w).sum()
    }

    /// Fits ridge regression (`λ = 0.1`) on `(schedule, measured GFLOPS)`
    /// samples via the normal equations. Needs at least `NUM_FEATURES`
    /// samples to mark itself trained.
    pub fn fit(&mut self, samples: &[(Schedule, f64)], shape: &ConvShape) {
        let n = samples.len();
        if n < NUM_FEATURES {
            return;
        }
        const D: usize = NUM_FEATURES;
        let mut xtx = [[0.0f64; D]; D];
        let mut xty = [0.0f64; D];
        for (sched, y) in samples {
            let f = features(sched, shape);
            for i in 0..D {
                xty[i] += f[i] * y;
                for j in 0..D {
                    xtx[i][j] += f[i] * f[j];
                }
            }
        }
        let lambda = 0.1;
        for (i, row) in xtx.iter_mut().enumerate() {
            row[i] += lambda;
        }
        if let Some(w) = solve(xtx, xty) {
            self.weights = w;
            self.trained = true;
        }
    }
}

/// Gaussian elimination with partial pivoting for the tiny normal system.
fn solve(mut a: [[f64; NUM_FEATURES]; NUM_FEATURES], mut b: [f64; NUM_FEATURES]) -> Option<[f64; NUM_FEATURES]> {
    const D: usize = NUM_FEATURES;
    for col in 0..D {
        let pivot = (col..D).max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in col + 1..D {
            let factor = a[row][col] / a[col][col];
            let pivot_row = a[col];
            for (k, p) in pivot_row.iter().enumerate().take(D).skip(col) {
                a[row][k] -= factor * p;
            }
            b[row] -= factor * b[col];
        }
    }
    let mut x = [0.0; D];
    for col in (0..D).rev() {
        let mut acc = b[col];
        for (k, xk) in x.iter().enumerate().take(D).skip(col + 1) {
            acc -= a[col][k] * xk;
        }
        x[col] = acc / a[col][col];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{random_schedule, ScheduleSpace};
    use ndirect_support::Rng64;

    fn shape() -> ConvShape {
        ConvShape::square(1, 32, 32, 14, 3, 1)
    }

    #[test]
    fn untrained_model_reports_untrained() {
        let m = CostModel::new();
        assert!(!m.is_trained());
        let sp = ScheduleSpace::for_shape(&shape(), 1);
        let mut rng = Rng64::seed_from_u64(3);
        let s = random_schedule(&sp, &shape(), &mut rng);
        assert_eq!(m.predict(&s, &shape()), 0.0);
    }

    #[test]
    fn model_learns_a_linear_relationship() {
        // Synthetic ground truth: y depends on ln(vw) and packing flag.
        let sp = ScheduleSpace::for_shape(&shape(), 4);
        let mut rng = Rng64::seed_from_u64(4);
        let truth = |s: &Schedule| {
            3.0 * (s.vw as f64).ln()
                + 2.0 * f64::from(s.packing == ndirect_core::PackingMode::Fused)
                + 1.0
        };
        let samples: Vec<(Schedule, f64)> = (0..200)
            .map(|_| {
                let s = random_schedule(&sp, &shape(), &mut rng);
                let y = truth(&s);
                (s, y)
            })
            .collect();
        let mut m = CostModel::new();
        m.fit(&samples, &shape());
        assert!(m.is_trained());
        // Predictions track ground truth to within ridge bias.
        for (s, y) in samples.iter().take(20) {
            assert!((m.predict(s, &shape()) - y).abs() < 0.5, "{s:?}");
        }
    }

    #[test]
    fn fit_requires_enough_samples() {
        let sp = ScheduleSpace::for_shape(&shape(), 1);
        let mut rng = Rng64::seed_from_u64(5);
        let samples: Vec<(Schedule, f64)> = (0..3)
            .map(|_| (random_schedule(&sp, &shape(), &mut rng), 1.0))
            .collect();
        let mut m = CostModel::new();
        m.fit(&samples, &shape());
        assert!(!m.is_trained());
    }

    #[test]
    fn features_have_expected_arity() {
        let sp = ScheduleSpace::for_shape(&shape(), 2);
        let mut rng = Rng64::seed_from_u64(6);
        let s = random_schedule(&sp, &shape(), &mut rng);
        let f = features(&s, &shape());
        assert_eq!(f.len(), NUM_FEATURES);
        assert_eq!(f[0], 1.0);
        assert!(f.iter().all(|x| x.is_finite()));
    }
}

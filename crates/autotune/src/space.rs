//! The schedule search space.

use ndirect_core::{PackingMode, Schedule};
use ndirect_tensor::ConvShape;
use ndirect_threads::Grid2;
use ndirect_support::Rng64;

/// Candidate values per parameter, specialized to a problem.
///
/// The space mirrors what Ansor explores for a conv2d subgraph: tile sizes
/// at every loop level plus the parallel split. Register-tile candidates
/// stay within the monomorphized kernel set (`Vw ≤ 12`, `Vk ≤ 12`), which
/// is also what a JIT would emit.
#[derive(Debug, Clone)]
pub struct ScheduleSpace {
    /// Register-tile width candidates.
    pub vw: Vec<usize>,
    /// Register-tile depth candidates.
    pub vk: Vec<usize>,
    /// Channel cache-tile candidates.
    pub tc: Vec<usize>,
    /// `Tk` expressed as multiples of `Vk`.
    pub tk_multiplier: Vec<usize>,
    /// Output-row tile candidates.
    pub th: Vec<usize>,
    /// Packing strategies.
    pub packing: Vec<PackingMode>,
    /// Thread-grid factorizations of the team size.
    pub grids: Vec<Grid2>,
}

impl ScheduleSpace {
    /// The space for a problem and a fixed thread count.
    pub fn for_shape(shape: &ConvShape, threads: usize) -> Self {
        let p = shape.p();
        // Zero-copy and sliced variants join the search alongside the two
        // packed baselines; the sliced slice length comes from the host's
        // analytic slab model so the candidate is cache-resident by
        // construction (search can still reject it on measurement).
        let model_rows = ndirect_core::model::slicing::slab_rows(
            &ndirect_platform::host(),
            shape,
            16.min(shape.c).max(1),
        );
        let tc_max = shape.c;
        let tc: Vec<usize> = [4, 8, 16, 32, 64, 128, 256, 512, 1024]
            .iter()
            .copied()
            .filter(|&t| t <= tc_max)
            .chain(std::iter::once(tc_max))
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        let th: Vec<usize> = [1, 2, 4, 8, 16, 32, 64]
            .iter()
            .copied()
            .filter(|&t| t <= p)
            .chain(std::iter::once(p))
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        ScheduleSpace {
            vw: vec![4, 8, 12],
            vk: vec![4, 8, 12],
            tc,
            // Tk = multiplier × Vk, capped later by sanitize.
            tk_multiplier: vec![1, 2, 4, 8, 16, 32, 64],
            th,
            packing: vec![
                PackingMode::Fused,
                PackingMode::Sequential,
                PackingMode::None,
                PackingMode::Sliced { rows: model_rows },
            ],
            grids: Grid2::factorizations(threads),
        }
    }

    /// Number of distinct points (for reporting).
    pub fn size(&self) -> usize {
        self.vw.len()
            * self.vk.len()
            * self.tc.len()
            * self.tk_multiplier.len()
            * self.th.len()
            * self.packing.len()
            * self.grids.len()
    }
}

/// Draws a uniformly random schedule from the space.
pub fn random_schedule(space: &ScheduleSpace, shape: &ConvShape, rng: &mut Rng64) -> Schedule {
    let pick = |v: &Vec<usize>, rng: &mut Rng64| v[rng.gen_range_usize(0, v.len())];
    let vk = pick(&space.vk, rng);
    let sched = Schedule {
        vw: pick(&space.vw, rng),
        vk,
        tc: pick(&space.tc, rng),
        tk: pick(&space.tk_multiplier, rng) * vk,
        th: pick(&space.th, rng),
        grid: space.grids[rng.gen_range_usize(0, space.grids.len())],
        packing: space.packing[rng.gen_range_usize(0, space.packing.len())],
        filter_state: ndirect_core::FilterState::OnTheFly,
        prefetch: false,
    };
    sched.sanitized(shape)
}

/// Mutates exactly one parameter of a schedule — the evolutionary search's
/// neighborhood move.
pub fn mutate(
    sched: &Schedule,
    space: &ScheduleSpace,
    shape: &ConvShape,
    rng: &mut Rng64,
) -> Schedule {
    let mut s = sched.clone();
    match rng.gen_range_usize(0, 6) {
        0 => s.vw = space.vw[rng.gen_range_usize(0, space.vw.len())],
        1 => {
            s.vk = space.vk[rng.gen_range_usize(0, space.vk.len())];
            s.tk = (s.tk / s.vk.max(1)).max(1) * s.vk;
        }
        2 => s.tc = space.tc[rng.gen_range_usize(0, space.tc.len())],
        3 => s.tk = space.tk_multiplier[rng.gen_range_usize(0, space.tk_multiplier.len())] * s.vk,
        4 => s.th = space.th[rng.gen_range_usize(0, space.th.len())],
        _ => {
            if space.grids.len() > 1 {
                s.grid = space.grids[rng.gen_range_usize(0, space.grids.len())];
            } else {
                // Step to the next packing variant in the space (cyclic),
                // so single-thread searches still explore every mode.
                let i = space
                    .packing
                    .iter()
                    .position(|&m| m == s.packing)
                    .unwrap_or(0);
                s.packing = space.packing[(i + 1) % space.packing.len()];
            }
        }
    }
    s.sanitized(shape)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape() -> ConvShape {
        ConvShape::square(2, 64, 64, 28, 3, 1)
    }

    #[test]
    fn space_candidates_are_bounded_by_problem() {
        let sp = ScheduleSpace::for_shape(&shape(), 4);
        assert!(sp.tc.iter().all(|&t| t <= 64));
        assert!(sp.th.iter().all(|&t| t <= 28));
        assert!(sp.tc.contains(&64), "full-C candidate present");
        assert!(sp.grids.len() == 3); // 1x4, 2x2, 4x1
        assert!(sp.size() > 1000);
    }

    #[test]
    fn random_schedules_are_valid_and_varied() {
        let sp = ScheduleSpace::for_shape(&shape(), 4);
        let mut rng = Rng64::seed_from_u64(1);
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..100 {
            let s = random_schedule(&sp, &shape(), &mut rng);
            assert!(s.tc >= 1 && s.tc <= 64);
            assert_eq!(s.tk % s.vk, 0);
            assert!(s.threads() <= 4);
            distinct.insert(format!("{s:?}"));
        }
        assert!(distinct.len() > 30, "search space sampling too narrow");
    }

    #[test]
    fn mutation_changes_at_most_one_axis() {
        let sp = ScheduleSpace::for_shape(&shape(), 4);
        let mut rng = Rng64::seed_from_u64(2);
        let base = random_schedule(&sp, &shape(), &mut rng);
        for _ in 0..50 {
            let m = mutate(&base, &sp, &shape(), &mut rng);
            // sanitize keeps it valid:
            assert!(m.tc >= 1 && m.tc <= 64);
            assert_eq!(m.tk % m.vk, 0);
        }
    }
}

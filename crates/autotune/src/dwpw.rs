//! Measured search over the fused dw+pw schedule space.
//!
//! The fused path's space is tiny compared to the full [`crate::space`]
//! hierarchy — three knobs ([`DwPwSchedule`]: slice length, `Vw`, `Vk`) —
//! so no evolutionary machinery is needed: we enumerate every point and
//! measure each one, Ansor's "measure the whole space" degenerate case.
//! The model-derived slice length anchors the candidate set the same way
//! the sliced packing candidate anchors [`crate::space::ScheduleSpace`].

use ndirect_core::{fused_pair_flops, DwPwSchedule, Error, FusedDwPwPlan};
use ndirect_tensor::{ActLayout, ConvShape, Filter, Tensor4};
use ndirect_threads::StaticPool;
use std::time::Instant;

/// Candidate values per fused-schedule parameter, specialized to a
/// depthwise stage.
#[derive(Debug, Clone)]
pub struct DwPwSpace {
    /// Slab slice-length candidates (rows of depthwise output per slice).
    pub slice_rows: Vec<usize>,
    /// Pointwise register-tile width candidates.
    pub vw: Vec<usize>,
    /// Pointwise register-tile depth candidates.
    pub vk: Vec<usize>,
}

impl DwPwSpace {
    /// The space for one depthwise stage. Slice-length candidates bracket
    /// the host's analytic half-L2 value (half, 1×, 2×) plus the
    /// single-row and whole-plane extremes; register tiles cover the
    /// monomorphized kernel set, as in [`crate::space::ScheduleSpace`].
    pub fn for_shape(dw_shape: &ConvShape) -> Self {
        let p = dw_shape.p();
        let model_rows =
            ndirect_core::model::slicing::fused_slab_rows(&ndirect_platform::host(), dw_shape);
        let slice_rows: Vec<usize> = [
            1,
            (model_rows / 2).max(1),
            model_rows,
            (2 * model_rows).min(p),
            p,
        ]
        .iter()
        .copied()
        .filter(|&r| (1..=p).contains(&r))
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
        DwPwSpace {
            slice_rows,
            vw: vec![4, 8, 12],
            vk: vec![4, 8, 12],
        }
    }

    /// Number of distinct points before sanitization (for reporting).
    pub fn size(&self) -> usize {
        self.slice_rows.len() * self.vw.len() * self.vk.len()
    }

    /// Enumerates every schedule in the space, sanitized to the problem
    /// and deduplicated (clamping can collapse points).
    pub fn candidates(&self, dw_shape: &ConvShape) -> Vec<DwPwSchedule> {
        let mut out: Vec<DwPwSchedule> = Vec::with_capacity(self.size());
        for &rows in &self.slice_rows {
            for &vw in &self.vw {
                for &vk in &self.vk {
                    let s = DwPwSchedule {
                        slice_rows: rows,
                        vw,
                        vk,
                    }
                    .sanitized(dw_shape);
                    if !out.contains(&s) {
                        out.push(s);
                    }
                }
            }
        }
        out
    }
}

/// Outcome of a fused-schedule tuning run.
#[derive(Debug, Clone)]
pub struct DwPwTuneReport {
    /// Best schedule found.
    pub best: DwPwSchedule,
    /// Its measured throughput over the whole fused pair.
    pub best_gflops: f64,
    /// Schedules measured (the space is exhausted, so this is the
    /// deduplicated space size).
    pub trials: usize,
}

/// Exhaustively measures every fused schedule for one dw+pw pair and
/// returns the fastest. `reps` repetitions are timed per candidate and the
/// minimum is kept, as in [`crate::search::tune`].
pub fn tune_dwpw(
    pool: &StaticPool,
    input: &Tensor4,
    dw_filter: &Filter,
    pw_filter: &Filter,
    dw_shape: &ConvShape,
    reps: usize,
) -> Result<DwPwTuneReport, Error> {
    let space = DwPwSpace::for_shape(dw_shape);
    let candidates = space.candidates(dw_shape);
    let k = pw_filter.dims().0;
    let flops = fused_pair_flops(dw_shape, k) as f64;
    let mut out = Tensor4::zeros(dw_shape.n, k, dw_shape.p(), dw_shape.q(), ActLayout::Nchw);

    let mut best: Option<(DwPwSchedule, f64)> = None;
    for sched in &candidates {
        let plan =
            FusedDwPwPlan::try_with_schedule(dw_shape, dw_filter, pw_filter, sched, pool.size())?;
        let mut elapsed = f64::MAX;
        for _ in 0..reps.max(1) {
            let start = Instant::now();
            plan.execute(pool, input, &mut out)?;
            elapsed = elapsed.min(start.elapsed().as_secs_f64());
        }
        std::hint::black_box(out.as_slice());
        let gflops = flops / elapsed / 1e9;
        if best.as_ref().is_none_or(|(_, g)| gflops > *g) {
            best = Some((*sched, gflops));
        }
    }
    // `candidates` is non-empty by construction (slice_rows always
    // contains 1), so `best` is always populated.
    let (best, best_gflops) = best.ok_or(Error::ScratchAlloc { elements: 0 })?;
    Ok(DwPwTuneReport {
        best,
        best_gflops,
        trials: candidates.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndirect_tensor::{fill, FilterLayout, Padding};

    fn dw_shape() -> ConvShape {
        ConvShape::new(1, 8, 12, 12, 8, 3, 3, 1, Padding::same(1))
    }

    fn problem(shape: &ConvShape, k: usize) -> (Tensor4, Filter, Filter) {
        (
            fill::random_tensor(Tensor4::input_for(shape, ActLayout::Nchw), 3),
            fill::random_filter(
                Filter::zeros(shape.c, 1, shape.r, shape.s, FilterLayout::Kcrs),
                4,
            ),
            fill::random_filter(Filter::zeros(k, shape.c, 1, 1, FilterLayout::Kcrs), 5),
        )
    }

    #[test]
    fn space_brackets_the_model_slice_length() {
        let shape = dw_shape();
        let space = DwPwSpace::for_shape(&shape);
        let model_rows =
            ndirect_core::model::slicing::fused_slab_rows(&ndirect_platform::host(), &shape);
        assert!(space.slice_rows.contains(&model_rows));
        assert!(space.slice_rows.contains(&1));
        assert!(space.slice_rows.iter().all(|&r| r >= 1 && r <= shape.p()));
        assert_eq!(space.vw, vec![4, 8, 12]);
        assert_eq!(space.vk, vec![4, 8, 12]);
    }

    #[test]
    fn candidates_are_sanitized_and_deduplicated() {
        let shape = dw_shape();
        let space = DwPwSpace::for_shape(&shape);
        let cands = space.candidates(&shape);
        assert!(!cands.is_empty());
        assert!(cands.len() <= space.size());
        for (i, c) in cands.iter().enumerate() {
            assert_eq!(*c, c.sanitized(&shape), "candidate {i}");
            assert!(!cands[..i].contains(c), "candidate {i} duplicated");
        }
    }

    #[test]
    fn tune_returns_a_schedule_that_reproduces_the_unfused_result() {
        let shape = dw_shape();
        let k = 12;
        let (input, dwf, pwf) = problem(&shape, k);
        let pool = StaticPool::new(2);
        let report = tune_dwpw(&pool, &input, &dwf, &pwf, &shape, 1).unwrap();
        assert!(report.trials >= 1);
        assert!(report.best_gflops > 0.0);
        assert_eq!(report.best, report.best.sanitized(&shape));

        // The winner must still be numerically right.
        let plan =
            FusedDwPwPlan::try_with_schedule(&shape, &dwf, &pwf, &report.best, pool.size())
                .unwrap();
        let mut got = Tensor4::zeros(shape.n, k, shape.p(), shape.q(), ActLayout::Nchw);
        plan.execute(&pool, &input, &mut got).unwrap();
        let want =
            ndirect_core::try_conv_depthwise_separable(&pool, &input, &dwf, &pwf, &shape)
                .unwrap();
        for (i, (g, w)) in got.as_slice().iter().zip(want.as_slice()).enumerate() {
            assert!(
                (g - w).abs() <= 1e-4 * w.abs().max(1.0),
                "[{i}] got {g}, want {w}"
            );
        }
    }
}

//! Evolutionary schedule search with cost-model-guided measurement.
//!
//! The loop follows Ansor's structure at operator granularity:
//!
//! 1. measure a random initial population;
//! 2. each round, breed a large candidate pool by mutating the best
//!    measured schedules, rank the pool with the learned cost model, and
//!    spend real measurements only on the top slice;
//! 3. retrain the cost model on all measurements so far;
//! 4. stop when the trial budget is exhausted.

use ndirect_core::{conv_ndirect_with, Schedule};
use ndirect_tensor::{ConvShape, Filter, Tensor4};
use ndirect_threads::StaticPool;
use ndirect_support::Rng64;
use std::time::Instant;

use crate::cost::CostModel;
use crate::space::{mutate, random_schedule, ScheduleSpace};

/// Tuning budget and strategy knobs.
#[derive(Debug, Clone)]
pub struct TuneSettings {
    /// Total *measured* trials (the paper gives Ansor 1,000 per layer).
    pub trials: usize,
    /// Random initial population size.
    pub population: usize,
    /// Mutants generated per round (scored by the model, mostly unmeasured).
    pub pool: usize,
    /// Measurements spent per round on the model's top picks.
    pub measured_per_round: usize,
    /// Repetitions per measurement (min is taken).
    pub reps: usize,
    /// RNG seed, for reproducible tuning runs.
    pub seed: u64,
}

impl Default for TuneSettings {
    fn default() -> Self {
        TuneSettings {
            trials: 64,
            population: 16,
            pool: 64,
            measured_per_round: 8,
            reps: 2,
            seed: 0x5eed,
        }
    }
}

impl TuneSettings {
    /// A tiny budget for tests.
    pub fn smoke() -> Self {
        TuneSettings {
            trials: 6,
            population: 4,
            pool: 8,
            measured_per_round: 2,
            reps: 1,
            seed: 7,
        }
    }
}

/// Outcome of a tuning run.
#[derive(Debug, Clone)]
pub struct TuneReport {
    /// Best schedule found.
    pub best: Schedule,
    /// Its measured throughput.
    pub best_gflops: f64,
    /// Measured trials actually spent.
    pub trials_used: usize,
    /// `(trial index, best-so-far GFLOPS)` convergence curve.
    pub history: Vec<(usize, f64)>,
}

/// Tunes nDirect's schedule for one problem by measurement, Ansor-style.
///
/// `input`/`filter` supply real operand data so measurements exercise the
/// same memory system the final run will.
pub fn tune(
    pool: &StaticPool,
    shape: &ConvShape,
    input: &Tensor4,
    filter: &Filter,
    settings: &TuneSettings,
) -> TuneReport {
    let space = ScheduleSpace::for_shape(shape, pool.size());
    let mut rng = Rng64::seed_from_u64(settings.seed);
    let mut model = CostModel::new();
    let mut measured: Vec<(Schedule, f64)> = Vec::new();
    let mut history = Vec::new();

    let measure = |sched: &Schedule, measured: &mut Vec<(Schedule, f64)>| -> f64 {
        let mut best = f64::MAX;
        for _ in 0..settings.reps.max(1) {
            let start = Instant::now();
            let out = conv_ndirect_with(pool, input, filter, shape, sched);
            best = best.min(start.elapsed().as_secs_f64());
            std::hint::black_box(out);
        }
        let gflops = shape.gflops(best);
        measured.push((sched.clone(), gflops));
        gflops
    };

    // Round 0: random population.
    let init = settings.population.min(settings.trials).max(1);
    for _ in 0..init {
        let s = random_schedule(&space, shape, &mut rng);
        measure(&s, &mut measured);
    }
    let mut best_idx = argmax(&measured);
    history.push((measured.len(), measured[best_idx].1));

    // Evolutionary rounds.
    while measured.len() < settings.trials {
        model.fit(&measured, shape);

        // Breed candidates from the top quartile of measured schedules.
        let mut parents: Vec<usize> = (0..measured.len()).collect();
        parents.sort_by(|&a, &b| measured[b].1.total_cmp(&measured[a].1));
        parents.truncate((measured.len() / 4).max(1));

        let mut pool_candidates: Vec<Schedule> = Vec::with_capacity(settings.pool);
        for i in 0..settings.pool {
            let parent = &measured[parents[i % parents.len()]].0;
            pool_candidates.push(mutate(parent, &space, shape, &mut rng));
        }
        // A dash of exploration.
        for _ in 0..settings.pool / 8 {
            pool_candidates.push(random_schedule(&space, shape, &mut rng));
        }

        // Rank by the model (or keep order if untrained), measure the top.
        if model.is_trained() {
            pool_candidates.sort_by(|a, b| {
                model.predict(b, shape).total_cmp(&model.predict(a, shape))
            });
        }
        let budget_left = settings.trials - measured.len();
        for cand in pool_candidates
            .into_iter()
            .take(settings.measured_per_round.min(budget_left))
        {
            // Skip exact repeats of something already measured.
            if measured.iter().any(|(s, _)| *s == cand) {
                continue;
            }
            measure(&cand, &mut measured);
        }
        let new_best = argmax(&measured);
        if measured[new_best].1 > measured[best_idx].1 {
            best_idx = new_best;
        }
        history.push((measured.len(), measured[best_idx].1));
        if history.len() > 10_000 {
            break; // safety valve against repeat-skips starving progress
        }
    }

    TuneReport {
        best: measured[best_idx].0.clone(),
        best_gflops: measured[best_idx].1,
        trials_used: measured.len(),
        history,
    }
}

/// Index of the best measurement. Callers always measure at least one
/// schedule before ranking; an empty slice degrades to index 0 rather
/// than panicking (it would be caught by the slice index at the use site
/// with a clearer message than an unwrap here).
fn argmax(measured: &[(Schedule, f64)]) -> usize {
    measured
        .iter()
        .enumerate()
        .max_by(|a, b| a.1 .1.total_cmp(&b.1 .1))
        .map_or(0, |(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndirect_tensor::{fill, ActLayout, FilterLayout};

    fn tiny_problem() -> (ConvShape, Tensor4, Filter) {
        let shape = ConvShape::square(1, 8, 8, 10, 3, 1);
        let input = fill::random_tensor(Tensor4::input_for(&shape, ActLayout::Nchw), 1);
        let filter = fill::random_filter(Filter::for_shape(&shape, FilterLayout::Kcrs), 1);
        (shape, input, filter)
    }

    #[test]
    fn tune_respects_trial_budget_and_finds_valid_schedule() {
        let (shape, input, filter) = tiny_problem();
        let pool = StaticPool::new(1);
        let report = tune(&pool, &shape, &input, &filter, &TuneSettings::smoke());
        assert!(report.trials_used <= 6 + 2, "budget roughly respected");
        assert!(report.best_gflops > 0.0);
        assert!(report.best.tc <= 8);
    }

    #[test]
    fn tuning_is_reproducible_for_fixed_seed() {
        let (shape, input, filter) = tiny_problem();
        let pool = StaticPool::new(1);
        let a = tune(&pool, &shape, &input, &filter, &TuneSettings::smoke());
        let b = tune(&pool, &shape, &input, &filter, &TuneSettings::smoke());
        // Timing noise can change the winner, but the candidate *sequence*
        // is seeded; both runs must explore the same number of trials.
        assert_eq!(a.trials_used, b.trials_used);
    }

    #[test]
    fn history_is_monotone_nondecreasing() {
        let (shape, input, filter) = tiny_problem();
        let pool = StaticPool::new(1);
        let report = tune(&pool, &shape, &input, &filter, &TuneSettings::smoke());
        let mut prev = 0.0;
        for (_, g) in &report.history {
            assert!(*g >= prev);
            prev = *g;
        }
    }

    #[test]
    fn tuned_result_computes_correct_convolution() {
        let (shape, input, filter) = tiny_problem();
        let pool = StaticPool::new(1);
        let report = tune(&pool, &shape, &input, &filter, &TuneSettings::smoke());
        let got = conv_ndirect_with(&pool, &input, &filter, &shape, &report.best);
        let expect = ndirect_baselines_naive(&input, &filter, &shape);
        ndirect_tensor::assert_close(got.as_slice(), expect.as_slice(), 2e-4, "tuned conv");
    }

    // Local shim to avoid a dev-dependency cycle with ndirect-baselines.
    fn ndirect_baselines_naive(
        input: &Tensor4,
        filter: &Filter,
        shape: &ConvShape,
    ) -> Tensor4 {
        let mut out = Tensor4::output_for(shape, ActLayout::Nchw);
        for n in 0..shape.n {
            for k in 0..shape.k {
                for oj in 0..shape.p() {
                    for oi in 0..shape.q() {
                        let mut acc = 0.0;
                        for c in 0..shape.c {
                            for r in 0..shape.r {
                                for s in 0..shape.s {
                                    let ij = (shape.stride * oj + r) as isize
                                        - shape.pad.h as isize;
                                    let ii = (shape.stride * oi + s) as isize
                                        - shape.pad.w as isize;
                                    acc += ndirect_tensor::pad::at_padded(input, n, c, ij, ii)
                                        * filter.at(k, c, r, s);
                                }
                            }
                        }
                        *out.at_mut(n, k, oj, oi) = acc;
                    }
                }
            }
        }
        out
    }
}

//! 4-D activation and filter tensors with explicit data layouts.

use crate::alloc::AlignedBuf;
use crate::shape::ConvShape;

/// Activation (input/output) tensor memory layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ActLayout {
    /// `[batch, channels, height, width]` — the MXNet/PyTorch default the
    /// paper presents nDirect with.
    Nchw,
    /// `[batch, height, width, channels]` — the TensorFlow/XNNPACK default.
    Nhwc,
}

/// Filter tensor memory layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FilterLayout {
    /// `[out_ch, in_ch, kh, kw]` — pairs with `NCHW`.
    Kcrs,
    /// `[out_ch, kh, kw, in_ch]` — pairs with `NHWC` (XNNPACK's `KRSC`).
    Krsc,
}

/// A dense 4-D FP32 activation tensor.
///
/// Dimensions are always stored logically as `(n, c, h, w)` regardless of the
/// memory layout; [`Tensor4::at`] translates to the physical offset.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor4 {
    data: AlignedBuf,
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    layout: ActLayout,
}

impl Tensor4 {
    /// Zero-filled tensor of logical shape `(n, c, h, w)` in `layout`.
    pub fn zeros(n: usize, c: usize, h: usize, w: usize, layout: ActLayout) -> Self {
        Self {
            data: AlignedBuf::zeroed(n * c * h * w),
            n,
            c,
            h,
            w,
            layout,
        }
    }

    /// Wraps an existing buffer; `data.len()` must equal `n*c*h*w`.
    pub fn from_buf(data: AlignedBuf, n: usize, c: usize, h: usize, w: usize, layout: ActLayout) -> Self {
        assert_eq!(data.len(), n * c * h * w, "buffer/shape mismatch");
        Self { data, n, c, h, w, layout }
    }

    /// Zero-filled *input* tensor for a convolution shape.
    pub fn input_for(shape: &ConvShape, layout: ActLayout) -> Self {
        Self::zeros(shape.n, shape.c, shape.h, shape.w, layout)
    }

    /// Zero-filled *output* tensor for a convolution shape.
    pub fn output_for(shape: &ConvShape, layout: ActLayout) -> Self {
        Self::zeros(shape.n, shape.k, shape.p(), shape.q(), layout)
    }

    /// Logical dimensions `(n, c, h, w)`.
    #[inline]
    pub fn dims(&self) -> (usize, usize, usize, usize) {
        (self.n, self.c, self.h, self.w)
    }

    /// Batch size.
    #[inline]
    pub fn n(&self) -> usize { self.n }
    /// Channel count.
    #[inline]
    pub fn c(&self) -> usize { self.c }
    /// Height.
    #[inline]
    pub fn h(&self) -> usize { self.h }
    /// Width.
    #[inline]
    pub fn w(&self) -> usize { self.w }

    /// The memory layout of the backing buffer.
    #[inline]
    pub fn layout(&self) -> ActLayout {
        self.layout
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Physical offset of logical index `(n, c, h, w)`.
    #[inline]
    pub fn offset(&self, n: usize, c: usize, h: usize, w: usize) -> usize {
        debug_assert!(n < self.n && c < self.c && h < self.h && w < self.w);
        match self.layout {
            ActLayout::Nchw => ((n * self.c + c) * self.h + h) * self.w + w,
            ActLayout::Nhwc => ((n * self.h + h) * self.w + w) * self.c + c,
        }
    }

    /// Element at logical index `(n, c, h, w)`.
    #[inline]
    pub fn at(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        self.data[self.offset(n, c, h, w)]
    }

    /// Mutable element at logical index `(n, c, h, w)`.
    #[inline]
    pub fn at_mut(&mut self, n: usize, c: usize, h: usize, w: usize) -> &mut f32 {
        let off = self.offset(n, c, h, w);
        &mut self.data[off]
    }

    /// The raw backing storage in layout order.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw backing storage in layout order.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Raw const pointer to the first element.
    #[inline]
    pub fn as_ptr(&self) -> *const f32 {
        self.data.as_ptr()
    }

    /// Raw mutable pointer to the first element.
    #[inline]
    pub fn as_mut_ptr(&mut self) -> *mut f32 {
        self.data.as_mut_ptr()
    }

    /// Consumes the tensor, returning the backing buffer.
    pub fn into_buf(self) -> AlignedBuf {
        self.data
    }

    /// Copies this tensor into `layout`, converting element order if needed.
    pub fn to_layout(&self, layout: ActLayout) -> Tensor4 {
        if layout == self.layout {
            return self.clone();
        }
        let mut out = Tensor4::zeros(self.n, self.c, self.h, self.w, layout);
        for n in 0..self.n {
            for c in 0..self.c {
                for h in 0..self.h {
                    for w in 0..self.w {
                        *out.at_mut(n, c, h, w) = self.at(n, c, h, w);
                    }
                }
            }
        }
        out
    }

    /// Sets every element to zero.
    pub fn fill_zero(&mut self) {
        self.data.fill_zero();
    }
}

/// A dense 4-D FP32 filter tensor with logical shape `(k, c, r, s)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Filter {
    data: AlignedBuf,
    k: usize,
    c: usize,
    r: usize,
    s: usize,
    layout: FilterLayout,
}

impl Filter {
    /// Zero-filled filter of logical shape `(k, c, r, s)` in `layout`.
    pub fn zeros(k: usize, c: usize, r: usize, s: usize, layout: FilterLayout) -> Self {
        Self {
            data: AlignedBuf::zeroed(k * c * r * s),
            k,
            c,
            r,
            s,
            layout,
        }
    }

    /// Zero-filled filter for a convolution shape.
    pub fn for_shape(shape: &ConvShape, layout: FilterLayout) -> Self {
        Self::zeros(shape.k, shape.c, shape.r, shape.s, layout)
    }

    /// Wraps an existing buffer; `data.len()` must equal `k*c*r*s`.
    pub fn from_buf(data: AlignedBuf, k: usize, c: usize, r: usize, s: usize, layout: FilterLayout) -> Self {
        assert_eq!(data.len(), k * c * r * s, "buffer/shape mismatch");
        Self { data, k, c, r, s, layout }
    }

    /// Logical dimensions `(k, c, r, s)`.
    #[inline]
    pub fn dims(&self) -> (usize, usize, usize, usize) {
        (self.k, self.c, self.r, self.s)
    }

    /// Output-channel count.
    #[inline]
    pub fn k(&self) -> usize { self.k }
    /// Input-channel count.
    #[inline]
    pub fn c(&self) -> usize { self.c }
    /// Kernel height.
    #[inline]
    pub fn r(&self) -> usize { self.r }
    /// Kernel width.
    #[inline]
    pub fn s(&self) -> usize { self.s }

    /// The memory layout of the backing buffer.
    #[inline]
    pub fn layout(&self) -> FilterLayout {
        self.layout
    }

    /// Physical offset of logical index `(k, c, r, s)`.
    #[inline]
    pub fn offset(&self, k: usize, c: usize, r: usize, s: usize) -> usize {
        debug_assert!(k < self.k && c < self.c && r < self.r && s < self.s);
        match self.layout {
            FilterLayout::Kcrs => ((k * self.c + c) * self.r + r) * self.s + s,
            FilterLayout::Krsc => ((k * self.r + r) * self.s + s) * self.c + c,
        }
    }

    /// Element at logical index `(k, c, r, s)`.
    #[inline]
    pub fn at(&self, k: usize, c: usize, r: usize, s: usize) -> f32 {
        self.data[self.offset(k, c, r, s)]
    }

    /// Mutable element at logical index `(k, c, r, s)`.
    #[inline]
    pub fn at_mut(&mut self, k: usize, c: usize, r: usize, s: usize) -> &mut f32 {
        let off = self.offset(k, c, r, s);
        &mut self.data[off]
    }

    /// The raw backing storage in layout order.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw backing storage in layout order.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the filter has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies this filter into `layout`, converting element order if needed.
    pub fn to_layout(&self, layout: FilterLayout) -> Filter {
        if layout == self.layout {
            return self.clone();
        }
        let mut out = Filter::zeros(self.k, self.c, self.r, self.s, layout);
        for k in 0..self.k {
            for c in 0..self.c {
                for r in 0..self.r {
                    for s in 0..self.s {
                        *out.at_mut(k, c, r, s) = self.at(k, c, r, s);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::Padding;

    #[test]
    fn nchw_offsets_are_row_major() {
        let t = Tensor4::zeros(2, 3, 4, 5, ActLayout::Nchw);
        assert_eq!(t.offset(0, 0, 0, 0), 0);
        assert_eq!(t.offset(0, 0, 0, 1), 1);
        assert_eq!(t.offset(0, 0, 1, 0), 5);
        assert_eq!(t.offset(0, 1, 0, 0), 20);
        assert_eq!(t.offset(1, 0, 0, 0), 60);
        assert_eq!(t.offset(1, 2, 3, 4), 119);
    }

    #[test]
    fn nhwc_offsets_put_channels_innermost() {
        let t = Tensor4::zeros(2, 3, 4, 5, ActLayout::Nhwc);
        assert_eq!(t.offset(0, 1, 0, 0), 1);
        assert_eq!(t.offset(0, 0, 0, 1), 3);
        assert_eq!(t.offset(0, 0, 1, 0), 15);
        assert_eq!(t.offset(1, 0, 0, 0), 60);
    }

    #[test]
    fn layout_conversion_preserves_logical_values() {
        let mut t = Tensor4::zeros(2, 3, 2, 2, ActLayout::Nchw);
        let mut v = 0.0;
        for n in 0..2 {
            for c in 0..3 {
                for h in 0..2 {
                    for w in 0..2 {
                        *t.at_mut(n, c, h, w) = v;
                        v += 1.0;
                    }
                }
            }
        }
        let u = t.to_layout(ActLayout::Nhwc);
        for n in 0..2 {
            for c in 0..3 {
                for h in 0..2 {
                    for w in 0..2 {
                        assert_eq!(t.at(n, c, h, w), u.at(n, c, h, w));
                    }
                }
            }
        }
        // Round trip is exact.
        let back = u.to_layout(ActLayout::Nchw);
        assert_eq!(back.as_slice(), t.as_slice());
    }

    #[test]
    fn filter_offsets_kcrs_vs_krsc() {
        let f = Filter::zeros(2, 3, 2, 2, FilterLayout::Kcrs);
        assert_eq!(f.offset(0, 0, 0, 1), 1);
        assert_eq!(f.offset(0, 1, 0, 0), 4);
        assert_eq!(f.offset(1, 0, 0, 0), 12);
        let g = Filter::zeros(2, 3, 2, 2, FilterLayout::Krsc);
        assert_eq!(g.offset(0, 1, 0, 0), 1);
        assert_eq!(g.offset(0, 0, 0, 1), 3);
        assert_eq!(g.offset(1, 0, 0, 0), 12);
    }

    #[test]
    fn filter_layout_round_trip() {
        let mut f = Filter::zeros(4, 2, 3, 3, FilterLayout::Kcrs);
        for (i, x) in f.as_mut_slice().iter_mut().enumerate() {
            *x = i as f32;
        }
        let g = f.to_layout(FilterLayout::Krsc);
        let back = g.to_layout(FilterLayout::Kcrs);
        assert_eq!(back.as_slice(), f.as_slice());
        assert_eq!(f.at(3, 1, 2, 0), g.at(3, 1, 2, 0));
    }

    #[test]
    fn shape_constructors_size_tensors_correctly() {
        let s = ConvShape::new(2, 3, 8, 8, 5, 3, 3, 1, Padding::same(1));
        let i = Tensor4::input_for(&s, ActLayout::Nchw);
        let o = Tensor4::output_for(&s, ActLayout::Nchw);
        let f = Filter::for_shape(&s, FilterLayout::Kcrs);
        assert_eq!(i.len(), s.input_len());
        assert_eq!(o.len(), s.output_len());
        assert_eq!(f.len(), s.filter_len());
        assert_eq!(o.dims(), (2, 5, 8, 8));
    }
}

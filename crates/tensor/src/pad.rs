//! Spatial zero-padding.
//!
//! Backends that do not handle borders implicitly (naive oracle, the
//! LIBXSMM-style blocked baseline) materialize a padded input once; nDirect's
//! packing micro-kernel instead zero-fills border lanes while gathering, so
//! it never calls these helpers on the hot path.

use crate::shape::Padding;
use crate::tensor::{ActLayout, Tensor4};

/// Returns a copy of `t` with `pad.h` rows / `pad.w` columns of zeros on each
/// spatial border. With `Padding::NONE` this is a plain clone.
pub fn pad_input(t: &Tensor4, pad: Padding) -> Tensor4 {
    if pad.h == 0 && pad.w == 0 {
        return t.clone();
    }
    let (n, c, h, w) = t.dims();
    let mut out = Tensor4::zeros(n, c, h + 2 * pad.h, w + 2 * pad.w, t.layout());
    match t.layout() {
        ActLayout::Nchw => {
            // Copy whole contiguous rows.
            let src = t.as_slice();
            let dst_w = w + 2 * pad.w;
            for ni in 0..n {
                for ci in 0..c {
                    for hi in 0..h {
                        let s0 = ((ni * c + ci) * h + hi) * w;
                        let d0 = out.offset(ni, ci, hi + pad.h, pad.w);
                        out.as_mut_slice()[d0..d0 + w].copy_from_slice(&src[s0..s0 + w]);
                        debug_assert!(d0 % dst_w >= pad.w);
                    }
                }
            }
        }
        ActLayout::Nhwc => {
            // Copy whole contiguous pixel rows (w*c floats).
            let src = t.as_slice();
            for ni in 0..n {
                for hi in 0..h {
                    let s0 = (ni * h + hi) * w * c;
                    let d0 = out.offset(ni, 0, hi + pad.h, pad.w);
                    out.as_mut_slice()[d0..d0 + w * c].copy_from_slice(&src[s0..s0 + w * c]);
                }
            }
        }
    }
    out
}

/// Reads `t[n][c][h][w]` treating out-of-bounds `h`/`w` (given as signed
/// coordinates) as zero — the implicit-padding access used by oracles.
#[inline]
pub fn at_padded(t: &Tensor4, n: usize, c: usize, h: isize, w: isize) -> f32 {
    let (_, _, th, tw) = t.dims();
    if h < 0 || w < 0 || h as usize >= th || w as usize >= tw {
        0.0
    } else {
        t.at(n, c, h as usize, w as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fill;

    fn filled(n: usize, c: usize, h: usize, w: usize, layout: ActLayout) -> Tensor4 {
        let mut t = Tensor4::zeros(n, c, h, w, layout);
        fill::fill_iota(t.as_mut_slice());
        t
    }

    #[test]
    fn pad_none_is_identity() {
        let t = filled(1, 2, 3, 3, ActLayout::Nchw);
        let p = pad_input(&t, Padding::NONE);
        assert_eq!(p.as_slice(), t.as_slice());
    }

    #[test]
    fn pad_nchw_places_interior_correctly() {
        let t = filled(2, 2, 3, 4, ActLayout::Nchw);
        let p = pad_input(&t, Padding { h: 1, w: 2 });
        assert_eq!(p.dims(), (2, 2, 5, 8));
        for n in 0..2 {
            for c in 0..2 {
                for h in 0..5usize {
                    for w in 0..8usize {
                        let expect = at_padded(&t, n, c, h as isize - 1, w as isize - 2);
                        assert_eq!(p.at(n, c, h, w), expect, "at {n},{c},{h},{w}");
                    }
                }
            }
        }
    }

    #[test]
    fn pad_nhwc_places_interior_correctly() {
        let t = filled(1, 3, 2, 2, ActLayout::Nhwc);
        let p = pad_input(&t, Padding::same(1));
        assert_eq!(p.dims(), (1, 3, 4, 4));
        for c in 0..3 {
            for h in 0..4usize {
                for w in 0..4usize {
                    let expect = at_padded(&t, 0, c, h as isize - 1, w as isize - 1);
                    assert_eq!(p.at(0, c, h, w), expect);
                }
            }
        }
    }

    #[test]
    fn at_padded_returns_zero_outside() {
        let t = filled(1, 1, 2, 2, ActLayout::Nchw);
        assert_eq!(at_padded(&t, 0, 0, -1, 0), 0.0);
        assert_eq!(at_padded(&t, 0, 0, 0, -1), 0.0);
        assert_eq!(at_padded(&t, 0, 0, 2, 0), 0.0);
        assert_eq!(at_padded(&t, 0, 0, 0, 2), 0.0);
        assert_eq!(at_padded(&t, 0, 0, 1, 1), t.at(0, 0, 1, 1));
    }
}

//! 5-D tensors for volumetric (3-D) convolution — the §10.2 extension.

use crate::alloc::AlignedBuf;

/// A dense 5-D FP32 activation tensor in `NCDHW` layout
/// (`[batch, channels, depth, height, width]`).
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor5 {
    data: AlignedBuf,
    n: usize,
    c: usize,
    d: usize,
    h: usize,
    w: usize,
}

impl Tensor5 {
    /// Zero-filled tensor of shape `(n, c, d, h, w)`.
    pub fn zeros(n: usize, c: usize, d: usize, h: usize, w: usize) -> Self {
        Self {
            data: AlignedBuf::zeroed(n * c * d * h * w),
            n,
            c,
            d,
            h,
            w,
        }
    }

    /// Logical dimensions `(n, c, d, h, w)`.
    #[inline]
    pub fn dims(&self) -> (usize, usize, usize, usize, usize) {
        (self.n, self.c, self.d, self.h, self.w)
    }

    /// Physical offset of `(n, c, d, h, w)`.
    #[inline]
    pub fn offset(&self, n: usize, c: usize, d: usize, h: usize, w: usize) -> usize {
        debug_assert!(n < self.n && c < self.c && d < self.d && h < self.h && w < self.w);
        (((n * self.c + c) * self.d + d) * self.h + h) * self.w + w
    }

    /// Element accessor.
    #[inline]
    pub fn at(&self, n: usize, c: usize, d: usize, h: usize, w: usize) -> f32 {
        self.data[self.offset(n, c, d, h, w)]
    }

    /// Mutable element accessor.
    #[inline]
    pub fn at_mut(&mut self, n: usize, c: usize, d: usize, h: usize, w: usize) -> &mut f32 {
        let off = self.offset(n, c, d, h, w);
        &mut self.data[off]
    }

    /// Reads with implicit zero padding (signed spatial coordinates).
    #[inline]
    pub fn at_padded(&self, n: usize, c: usize, d: isize, h: isize, w: isize) -> f32 {
        if d < 0
            || h < 0
            || w < 0
            || d as usize >= self.d
            || h as usize >= self.h
            || w as usize >= self.w
        {
            0.0
        } else {
            self.at(n, c, d as usize, h as usize, w as usize)
        }
    }

    /// Raw storage in layout order.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// A 5-D filter tensor in `KCTRS` layout
/// (`[out_ch, in_ch, kd, kh, kw]`).
#[derive(Debug, Clone, PartialEq)]
pub struct Filter5 {
    data: AlignedBuf,
    k: usize,
    c: usize,
    t: usize,
    r: usize,
    s: usize,
}

impl Filter5 {
    /// Zero-filled filter of shape `(k, c, t, r, s)`.
    pub fn zeros(k: usize, c: usize, t: usize, r: usize, s: usize) -> Self {
        Self {
            data: AlignedBuf::zeroed(k * c * t * r * s),
            k,
            c,
            t,
            r,
            s,
        }
    }

    /// Logical dimensions `(k, c, t, r, s)`.
    #[inline]
    pub fn dims(&self) -> (usize, usize, usize, usize, usize) {
        (self.k, self.c, self.t, self.r, self.s)
    }

    /// Element accessor.
    #[inline]
    pub fn at(&self, k: usize, c: usize, t: usize, r: usize, s: usize) -> f32 {
        self.data[(((k * self.c + c) * self.t + t) * self.r + r) * self.s + s]
    }

    /// Mutable element accessor.
    #[inline]
    pub fn at_mut(&mut self, k: usize, c: usize, t: usize, r: usize, s: usize) -> &mut f32 {
        let off = (((k * self.c + c) * self.t + t) * self.r + r) * self.s + s;
        &mut self.data[off]
    }

    /// Raw storage.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the filter holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offsets_are_row_major() {
        let t = Tensor5::zeros(2, 3, 4, 5, 6);
        assert_eq!(t.offset(0, 0, 0, 0, 0), 0);
        assert_eq!(t.offset(0, 0, 0, 0, 1), 1);
        assert_eq!(t.offset(0, 0, 0, 1, 0), 6);
        assert_eq!(t.offset(0, 0, 1, 0, 0), 30);
        assert_eq!(t.offset(0, 1, 0, 0, 0), 120);
        assert_eq!(t.offset(1, 2, 3, 4, 5), 2 * 360 - 1);
    }

    #[test]
    fn padded_reads() {
        let mut t = Tensor5::zeros(1, 1, 2, 2, 2);
        *t.at_mut(0, 0, 1, 1, 1) = 7.0;
        assert_eq!(t.at_padded(0, 0, 1, 1, 1), 7.0);
        assert_eq!(t.at_padded(0, 0, -1, 0, 0), 0.0);
        assert_eq!(t.at_padded(0, 0, 2, 0, 0), 0.0);
        assert_eq!(t.at_padded(0, 0, 0, 0, 2), 0.0);
    }

    #[test]
    fn filter5_indexing() {
        let mut f = Filter5::zeros(2, 3, 2, 2, 2);
        *f.at_mut(1, 2, 1, 0, 1) = 3.5;
        assert_eq!(f.at(1, 2, 1, 0, 1), 3.5);
        assert_eq!(f.len(), 2 * 3 * 8);
    }
}

//! Channel-blocked layouts used by the LIBXSMM-style baseline.
//!
//! LIBXSMM's direct convolution converts `NCHW` activations into
//! `NCHWc = [N, ⌈C/c⌉, H, W, c]` and `KCRS` filters into
//! `[⌈K/k⌉, ⌈C/c⌉, R, S, c, k]` (the paper's §2.3). The innermost block sizes
//! `c`/`k` match the vector length so the BRGEMM micro-kernel reads and
//! writes unit-stride vectors.

use crate::alloc::AlignedBuf;
use crate::tensor::{ActLayout, Filter, Tensor4};

/// Activation tensor in `NCHWc` blocked layout.
///
/// Channels are split into `⌈C/cb⌉` blocks of `cb`; the trailing partial
/// block (when `C % cb != 0`) is zero-padded, which keeps the micro-kernel
/// free of channel-tail branches.
#[derive(Debug, Clone)]
pub struct BlockedTensor {
    data: AlignedBuf,
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    /// Channel block size (`c` in `NCHWc`).
    cb: usize,
}

impl BlockedTensor {
    /// Zero-filled blocked tensor.
    pub fn zeros(n: usize, c: usize, h: usize, w: usize, cb: usize) -> Self {
        assert!(cb >= 1);
        let cblocks = c.div_ceil(cb);
        Self {
            data: AlignedBuf::zeroed(n * cblocks * h * w * cb),
            n,
            c,
            h,
            w,
            cb,
        }
    }

    /// Converts a logical `NCHW`/`NHWC` tensor into `NCHWc`.
    pub fn from_tensor(t: &Tensor4, cb: usize) -> Self {
        let (n, c, h, w) = t.dims();
        let mut out = Self::zeros(n, c, h, w, cb);
        for ni in 0..n {
            for ci in 0..c {
                for hi in 0..h {
                    for wi in 0..w {
                        let off = out.offset(ni, ci, hi, wi);
                        out.data[off] = t.at(ni, ci, hi, wi);
                    }
                }
            }
        }
        out
    }

    /// Converts back into a dense tensor in `layout`, dropping block padding.
    pub fn to_tensor(&self, layout: ActLayout) -> Tensor4 {
        let mut out = Tensor4::zeros(self.n, self.c, self.h, self.w, layout);
        for ni in 0..self.n {
            for ci in 0..self.c {
                for hi in 0..self.h {
                    for wi in 0..self.w {
                        *out.at_mut(ni, ci, hi, wi) = self.data[self.offset(ni, ci, hi, wi)];
                    }
                }
            }
        }
        out
    }

    /// Logical dims `(n, c, h, w)` (unpadded channel count).
    #[inline]
    pub fn dims(&self) -> (usize, usize, usize, usize) {
        (self.n, self.c, self.h, self.w)
    }

    /// Channel block size.
    #[inline]
    pub fn cb(&self) -> usize {
        self.cb
    }

    /// Number of channel blocks (`⌈C/cb⌉`).
    #[inline]
    pub fn cblocks(&self) -> usize {
        self.c.div_ceil(self.cb)
    }

    /// Physical offset of logical `(n, c, h, w)`.
    #[inline]
    pub fn offset(&self, n: usize, c: usize, h: usize, w: usize) -> usize {
        let (blk, lane) = (c / self.cb, c % self.cb);
        (((n * self.cblocks() + blk) * self.h + h) * self.w + w) * self.cb + lane
    }

    /// Offset of the start of `(n, cblock, h, w)`'s lane vector.
    #[inline]
    pub fn block_offset(&self, n: usize, cblock: usize, h: usize, w: usize) -> usize {
        (((n * self.cblocks() + cblock) * self.h + h) * self.w + w) * self.cb
    }

    /// Raw backing storage.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw backing storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }
}

/// Filter tensor in `[⌈K/kb⌉, ⌈C/cb⌉, R, S, cb, kb]` blocked layout.
#[derive(Debug, Clone)]
pub struct BlockedFilter {
    data: AlignedBuf,
    k: usize,
    c: usize,
    r: usize,
    s: usize,
    cb: usize,
    kb: usize,
}

impl BlockedFilter {
    /// Zero-filled blocked filter.
    pub fn zeros(k: usize, c: usize, r: usize, s: usize, cb: usize, kb: usize) -> Self {
        assert!(cb >= 1 && kb >= 1);
        let kblocks = k.div_ceil(kb);
        let cblocks = c.div_ceil(cb);
        Self {
            data: AlignedBuf::zeroed(kblocks * cblocks * r * s * cb * kb),
            k,
            c,
            r,
            s,
            cb,
            kb,
        }
    }

    /// Converts a logical filter into blocked layout (partial blocks are
    /// zero-padded).
    pub fn from_filter(f: &Filter, cb: usize, kb: usize) -> Self {
        let (k, c, r, s) = f.dims();
        let mut out = Self::zeros(k, c, r, s, cb, kb);
        for ki in 0..k {
            for ci in 0..c {
                for ri in 0..r {
                    for si in 0..s {
                        let off = out.offset(ki, ci, ri, si);
                        out.data[off] = f.at(ki, ci, ri, si);
                    }
                }
            }
        }
        out
    }

    /// Logical dims `(k, c, r, s)`.
    #[inline]
    pub fn dims(&self) -> (usize, usize, usize, usize) {
        (self.k, self.c, self.r, self.s)
    }

    /// Input-channel block size.
    #[inline]
    pub fn cb(&self) -> usize {
        self.cb
    }

    /// Output-channel block size.
    #[inline]
    pub fn kb(&self) -> usize {
        self.kb
    }

    /// Number of K blocks.
    #[inline]
    pub fn kblocks(&self) -> usize {
        self.k.div_ceil(self.kb)
    }

    /// Number of C blocks.
    #[inline]
    pub fn cblocks(&self) -> usize {
        self.c.div_ceil(self.cb)
    }

    /// Physical offset of logical `(k, c, r, s)`.
    #[inline]
    pub fn offset(&self, k: usize, c: usize, r: usize, s: usize) -> usize {
        let (kblk, klane) = (k / self.kb, k % self.kb);
        let (cblk, clane) = (c / self.cb, c % self.cb);
        ((((kblk * self.cblocks() + cblk) * self.r + r) * self.s + s) * self.cb + clane) * self.kb
            + klane
    }

    /// Offset of the `kb`-wide vector for `(kblock, cblock, r, s, clane)`.
    #[inline]
    pub fn vector_offset(&self, kblock: usize, cblock: usize, r: usize, s: usize, clane: usize) -> usize {
        ((((kblock * self.cblocks() + cblock) * self.r + r) * self.s + s) * self.cb + clane)
            * self.kb
    }

    /// Raw backing storage.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fill;

    #[test]
    fn blocked_tensor_round_trip_exact_blocks() {
        let mut t = Tensor4::zeros(2, 8, 3, 3, ActLayout::Nchw);
        fill::fill_iota(t.as_mut_slice());
        let b = BlockedTensor::from_tensor(&t, 4);
        assert_eq!(b.cblocks(), 2);
        let back = b.to_tensor(ActLayout::Nchw);
        assert_eq!(back.as_slice(), t.as_slice());
    }

    #[test]
    fn blocked_tensor_round_trip_partial_block() {
        let mut t = Tensor4::zeros(1, 5, 2, 2, ActLayout::Nchw);
        fill::fill_iota(t.as_mut_slice());
        let b = BlockedTensor::from_tensor(&t, 4);
        assert_eq!(b.cblocks(), 2);
        // Padding lanes stay zero.
        let pad_off = b.offset(0, 4, 0, 0) + 1; // lane 5..8 of second block
        assert_eq!(b.as_slice()[pad_off], 0.0);
        let back = b.to_tensor(ActLayout::Nchw);
        assert_eq!(back.as_slice(), t.as_slice());
    }

    #[test]
    fn blocked_tensor_lane_is_innermost() {
        let t = Tensor4::zeros(1, 8, 2, 2, ActLayout::Nchw);
        let b = BlockedTensor::from_tensor(&t, 4);
        assert_eq!(b.offset(0, 1, 0, 0), b.offset(0, 0, 0, 0) + 1);
        assert_eq!(b.offset(0, 0, 0, 1), b.offset(0, 0, 0, 0) + 4);
        assert_eq!(b.offset(0, 4, 0, 0), b.block_offset(0, 1, 0, 0));
    }

    #[test]
    fn blocked_filter_round_trip_values() {
        let mut f = Filter::zeros(6, 5, 3, 3, crate::tensor::FilterLayout::Kcrs);
        fill::fill_iota(f.as_mut_slice());
        let b = BlockedFilter::from_filter(&f, 4, 4);
        assert_eq!(b.kblocks(), 2);
        assert_eq!(b.cblocks(), 2);
        for k in 0..6 {
            for c in 0..5 {
                for r in 0..3 {
                    for s in 0..3 {
                        assert_eq!(b.as_slice()[b.offset(k, c, r, s)], f.at(k, c, r, s));
                    }
                }
            }
        }
    }

    #[test]
    fn blocked_filter_klane_innermost() {
        let f = Filter::zeros(8, 8, 1, 1, crate::tensor::FilterLayout::Kcrs);
        let b = BlockedFilter::from_filter(&f, 4, 4);
        assert_eq!(b.offset(1, 0, 0, 0), b.offset(0, 0, 0, 0) + 1);
        assert_eq!(b.offset(0, 1, 0, 0), b.offset(0, 0, 0, 0) + 4);
        assert_eq!(b.vector_offset(0, 0, 0, 0, 1), 4);
    }
}

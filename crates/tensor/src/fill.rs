//! Deterministic tensor fillers.
//!
//! Experiments substitute seeded pseudo-random data for the paper's model
//! weights and images (dense FP32 convolution throughput is data
//! independent); fixed seeds keep every run and every backend comparison
//! reproducible.

use ndirect_support::Rng64;

use crate::tensor::{Filter, Tensor4};

/// Fills `data` with uniform values in `[-1, 1)` from a seeded RNG.
pub fn fill_random(data: &mut [f32], seed: u64) {
    Rng64::seed_from_u64(seed).fill_f32(data, -1.0, 1.0);
}

/// Fills `data` with `0.0, 1.0, 2.0, …` (handy for layout tests).
pub fn fill_iota(data: &mut [f32]) {
    for (i, x) in data.iter_mut().enumerate() {
        *x = i as f32;
    }
}

/// Fills `data` with a constant.
pub fn fill_const(data: &mut [f32], value: f32) {
    data.fill(value);
}

/// Random activation tensor (seed mixed with a tag so inputs and filters of
/// the same experiment never alias).
pub fn random_tensor(mut t: Tensor4, seed: u64) -> Tensor4 {
    fill_random(t.as_mut_slice(), seed ^ 0x5eed_0001);
    t
}

/// Random filter tensor.
pub fn random_filter(mut f: Filter, seed: u64) -> Filter {
    fill_random(f.as_mut_slice(), seed ^ 0x5eed_0002);
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::ActLayout;

    #[test]
    fn random_fill_is_deterministic() {
        let mut a = vec![0.0; 64];
        let mut b = vec![0.0; 64];
        fill_random(&mut a, 42);
        fill_random(&mut b, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn random_fill_differs_across_seeds() {
        let mut a = vec![0.0; 64];
        let mut b = vec![0.0; 64];
        fill_random(&mut a, 1);
        fill_random(&mut b, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn random_fill_is_bounded() {
        let mut a = vec![0.0; 4096];
        fill_random(&mut a, 7);
        assert!(a.iter().all(|&x| (-1.0..1.0).contains(&x)));
    }

    #[test]
    fn tensor_and_filter_seeds_do_not_alias() {
        let t = random_tensor(Tensor4::zeros(1, 1, 4, 4, ActLayout::Nchw), 9);
        let f = random_filter(
            Filter::zeros(1, 1, 4, 4, crate::tensor::FilterLayout::Kcrs),
            9,
        );
        assert_ne!(t.as_slice(), f.as_slice());
    }

    #[test]
    fn iota_counts_up() {
        let mut a = vec![0.0; 5];
        fill_iota(&mut a);
        assert_eq!(a, vec![0.0, 1.0, 2.0, 3.0, 4.0]);
    }
}

//! Cache-line-aligned FP32 storage.
//!
//! All kernel buffers in the workspace are allocated through [`AlignedBuf`]
//! so that vector loads/stores in the micro-kernels are naturally aligned and
//! never straddle a cache line. 64 bytes covers the line size of every
//! platform in the paper's Table 3.

use std::alloc::{alloc_zeroed, dealloc, handle_alloc_error, Layout};
use std::ops::{Deref, DerefMut, Index, IndexMut};
use std::ptr::NonNull;

/// Alignment (bytes) for all tensor storage: one cache line on every
/// evaluation platform, and ≥ the 16-byte NEON/SSE vector alignment.
pub const BUF_ALIGN: usize = 64;

/// A heap buffer of `f32` guaranteed to start on a [`BUF_ALIGN`]-byte
/// boundary, zero-initialized at allocation.
///
/// Unlike `Vec<f32>`, the alignment is part of the type's contract, which the
/// SIMD micro-kernels rely on for aligned vector loads of *packed* buffers
/// (packing always writes from the start of an `AlignedBuf`).
///
/// The pointer is held as [`NonNull`] so the type stays provenance-clean
/// under Miri/strict provenance: every slice handed out derives from the
/// pointer returned by the allocator (or `NonNull::dangling()` for the
/// zero-length buffer, which is never dereferenced).
pub struct AlignedBuf {
    ptr: NonNull<f32>,
    len: usize,
}

// SAFETY: `AlignedBuf` uniquely owns its allocation (no aliasing views
// escape except through `&self`/`&mut self` borrows); `f32` is `Send`.
unsafe impl Send for AlignedBuf {}
// SAFETY: shared access only reads through `&self`, and mutation requires
// `&mut self`; `f32` is `Sync`, so `&AlignedBuf` is safe to share.
unsafe impl Sync for AlignedBuf {}

impl AlignedBuf {
    /// Allocates a zero-filled buffer of `len` floats.
    ///
    /// A `len` of 0 is valid and performs no allocation. Aborts the process
    /// on allocation failure (the global-allocator convention); callers that
    /// can degrade gracefully use [`AlignedBuf::try_zeroed`] instead.
    pub fn zeroed(len: usize) -> Self {
        match Self::try_zeroed(len) {
            Ok(buf) => buf,
            Err(_) => handle_alloc_error(Self::layout(len)),
        }
    }

    /// Fallible allocation: returns `Err(len)` when the allocator refuses
    /// (or the byte size would overflow a `Layout`), instead of aborting.
    ///
    /// The convolution driver uses this for its packing scratch buffers and
    /// falls back to the unpacked gather path when the allocation fails, so
    /// memory pressure degrades throughput rather than killing the process.
    pub fn try_zeroed(len: usize) -> Result<Self, usize> {
        if len == 0 {
            return Ok(Self {
                ptr: NonNull::dangling(),
                len: 0,
            });
        }
        let layout = Layout::from_size_align(
            len.checked_mul(std::mem::size_of::<f32>()).ok_or(len)?,
            BUF_ALIGN,
        )
        .map_err(|_| len)?;
        // SAFETY: `layout` has non-zero size (len > 0) and valid alignment.
        let raw = unsafe { alloc_zeroed(layout) };
        let Some(ptr) = NonNull::new(raw.cast::<f32>()) else {
            return Err(len);
        };
        Ok(Self { ptr, len })
    }

    /// Builds a buffer by copying `src`.
    pub fn from_slice(src: &[f32]) -> Self {
        let mut buf = Self::zeroed(src.len());
        buf.as_mut_slice().copy_from_slice(src);
        buf
    }

    fn layout(len: usize) -> Layout {
        // Every live buffer's `len` already passed this exact check in
        // `try_zeroed`, so reconstruction cannot fail outside `zeroed`'s
        // error path (where a panic is the right report anyway).
        Layout::from_size_align(len * std::mem::size_of::<f32>(), BUF_ALIGN)
            .unwrap_or_else(|_| panic!("buffer size overflows Layout: {len} floats"))
    }

    /// Number of floats in the buffer.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Immutable view of the whole buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        // SAFETY: `ptr` is valid for `len` initialized floats for the
        // lifetime of `self` (zeroed at allocation, only mutated through
        // `&mut self`).
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }

    /// Mutable view of the whole buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        // SAFETY: as above, plus `&mut self` guarantees uniqueness.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.len) }
    }

    /// Raw const pointer to the first element.
    #[inline]
    pub fn as_ptr(&self) -> *const f32 {
        self.ptr.as_ptr()
    }

    /// Raw mutable pointer to the first element.
    #[inline]
    pub fn as_mut_ptr(&mut self) -> *mut f32 {
        self.ptr.as_ptr()
    }

    /// Resets every element to zero.
    pub fn fill_zero(&mut self) {
        self.as_mut_slice().fill(0.0);
    }
}

impl Drop for AlignedBuf {
    fn drop(&mut self) {
        if self.len != 0 {
            // SAFETY: allocated in `try_zeroed` with the identical layout;
            // the pointer retains the allocator's provenance.
            unsafe { dealloc(self.ptr.as_ptr().cast::<u8>(), Self::layout(self.len)) };
        }
    }
}

impl Clone for AlignedBuf {
    fn clone(&self) -> Self {
        Self::from_slice(self.as_slice())
    }
}

impl Deref for AlignedBuf {
    type Target = [f32];
    #[inline]
    fn deref(&self) -> &[f32] {
        self.as_slice()
    }
}

impl DerefMut for AlignedBuf {
    #[inline]
    fn deref_mut(&mut self) -> &mut [f32] {
        self.as_mut_slice()
    }
}

impl<I: std::slice::SliceIndex<[f32]>> Index<I> for AlignedBuf {
    type Output = I::Output;
    #[inline]
    fn index(&self, i: I) -> &I::Output {
        &self.as_slice()[i]
    }
}

impl<I: std::slice::SliceIndex<[f32]>> IndexMut<I> for AlignedBuf {
    #[inline]
    fn index_mut(&mut self, i: I) -> &mut I::Output {
        &mut self.as_mut_slice()[i]
    }
}

impl std::fmt::Debug for AlignedBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AlignedBuf(len={})", self.len)
    }
}

impl PartialEq for AlignedBuf {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_is_64_bytes() {
        for len in [1, 3, 16, 1000, 4097] {
            let buf = AlignedBuf::zeroed(len);
            assert_eq!(buf.as_ptr() as usize % BUF_ALIGN, 0, "len={len}");
        }
    }

    #[test]
    fn zeroed_contents() {
        let buf = AlignedBuf::zeroed(129);
        assert!(buf.iter().all(|&x| x == 0.0));
        assert_eq!(buf.len(), 129);
    }

    #[test]
    fn empty_buffer_is_usable() {
        let buf = AlignedBuf::zeroed(0);
        assert!(buf.is_empty());
        assert_eq!(buf.as_slice(), &[] as &[f32]);
        let _clone = buf.clone();
    }

    #[test]
    fn from_slice_round_trips() {
        let data: Vec<f32> = (0..77).map(|i| i as f32 * 0.5).collect();
        let buf = AlignedBuf::from_slice(&data);
        assert_eq!(buf.as_slice(), data.as_slice());
    }

    #[test]
    fn clone_is_deep() {
        let mut a = AlignedBuf::from_slice(&[1.0, 2.0, 3.0]);
        let b = a.clone();
        a[0] = 9.0;
        assert_eq!(b[0], 1.0);
        assert_eq!(a[0], 9.0);
    }

    #[test]
    fn try_zeroed_rejects_absurd_sizes_without_aborting() {
        // Larger than any allocator will grant; must be an Err, not an abort.
        assert!(AlignedBuf::try_zeroed(usize::MAX / 8).is_err());
        // Byte-size overflow is also an Err.
        assert!(AlignedBuf::try_zeroed(usize::MAX / 2).is_err());
        // And a normal size still works through the fallible path.
        let buf = AlignedBuf::try_zeroed(64).unwrap();
        assert_eq!(buf.len(), 64);
    }

    #[test]
    fn write_then_read() {
        let mut buf = AlignedBuf::zeroed(8);
        for i in 0..8 {
            buf[i] = (i * i) as f32;
        }
        assert_eq!(buf[7], 49.0);
        buf.fill_zero();
        assert!(buf.iter().all(|&x| x == 0.0));
    }
}

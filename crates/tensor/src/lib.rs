//! Dense FP32 tensors and data-layout machinery for the nDirect workspace.
//!
//! The paper ("Optimizing Direct Convolutions on ARM Multi-Cores", SC'23)
//! centres on *data-layout compatibility*: nDirect keeps the mainstream
//! `NCHW`/`NHWC` activation layouts and only re-lays-out the small filter
//! tensor on the fly. This crate provides:
//!
//! * [`AlignedBuf`] — 64-byte-aligned FP32 storage so SIMD loads never split
//!   cache lines;
//! * [`ConvShape`] — the notation of the paper's Table 1 (`N,C,H,W,K,R,S,str`
//!   plus padding) with derived output sizes and FLOP accounting;
//! * [`Tensor4`] — a 4-D tensor carrying an activation layout
//!   ([`ActLayout::Nchw`] / [`ActLayout::Nhwc`]);
//! * [`Filter`] — a 4-D filter tensor carrying [`FilterLayout::Kcrs`] or
//!   [`FilterLayout::Krsc`];
//! * [`BlockedTensor`] / [`BlockedFilter`] — the `NCHWc` and `KCRSck` blocked
//!   layouts used by the LIBXSMM-style baseline;
//! * conversion routines between all of the above, zero-padding helpers,
//!   deterministic random fills, and numeric comparison utilities.

#![warn(missing_docs)]

pub mod alloc;
pub mod blocked;
pub mod compare;
pub mod convert;
pub mod error;
pub mod fill;
pub mod pad;
pub mod shape;
pub mod tensor;
pub mod tensor5;

pub use alloc::AlignedBuf;
pub use blocked::{BlockedFilter, BlockedTensor};
pub use compare::{assert_close, max_abs_diff, max_rel_diff};
pub use error::ShapeError;
pub use shape::{ConvShape, Padding};
pub use tensor::{ActLayout, Filter, FilterLayout, Tensor4};
pub use tensor5::{Filter5, Tensor5};

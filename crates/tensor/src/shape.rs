//! Convolution problem shapes — the paper's Table 1 notation.

/// Spatial zero-padding applied symmetrically to input height and width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Padding {
    /// Rows of zeros added above and below the input.
    pub h: usize,
    /// Columns of zeros added left and right of the input.
    pub w: usize,
}

impl Padding {
    /// No padding ("valid" convolution) — the convention of the paper's
    /// Algorithm 1.
    pub const NONE: Padding = Padding { h: 0, w: 0 };

    /// Symmetric padding with the same amount on both axes.
    pub const fn same(p: usize) -> Padding {
        Padding { h: p, w: p }
    }

    /// "Same" padding for odd kernels with stride 1: output size == input
    /// size. Panics if the kernel size is even.
    pub fn same_for_kernel(r: usize, s: usize) -> Padding {
        assert!(r % 2 == 1 && s % 2 == 1, "same padding needs odd kernels");
        Padding {
            h: (r - 1) / 2,
            w: (s - 1) / 2,
        }
    }
}

/// A convolution problem in the paper's Table 1 notation.
///
/// * `n` — batch size (N), `c` — input channels (C), `h`/`w` — input
///   height/width (H/W);
/// * `k` — output channels (K), `r`/`s` — kernel height/width (R/S);
/// * `stride` — `str`; `pad` — symmetric zero padding (0 in the paper's
///   presentation; ResNet/VGG layers use same-padding in practice, which the
///   workloads crate sets explicitly).
///
/// Output height `P` and width `Q` are derived:
/// `P = (H + 2·pad.h − R)/str + 1`, `Q = (W + 2·pad.w − S)/str + 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvShape {
    /// Batch size `N`.
    pub n: usize,
    /// Input channels `C`.
    pub c: usize,
    /// Input height `H`.
    pub h: usize,
    /// Input width `W`.
    pub w: usize,
    /// Output channels `K`.
    pub k: usize,
    /// Kernel height `R`.
    pub r: usize,
    /// Kernel width `S`.
    pub s: usize,
    /// Stride `str`.
    pub stride: usize,
    /// Symmetric spatial zero padding.
    pub pad: Padding,
}

impl ConvShape {
    /// Builds a shape, validating that the kernel fits into the (padded)
    /// input and that the stride is non-zero.
    #[allow(clippy::too_many_arguments)] // mirrors the paper's 9-symbol notation
    pub fn new(
        n: usize,
        c: usize,
        h: usize,
        w: usize,
        k: usize,
        r: usize,
        s: usize,
        stride: usize,
        pad: Padding,
    ) -> Self {
        let shape = ConvShape {
            n,
            c,
            h,
            w,
            k,
            r,
            s,
            stride,
            pad,
        };
        shape.validate();
        shape
    }

    /// Square-input / square-kernel convenience constructor matching the
    /// columns of the paper's Table 4 (`C K H/W R/S str`), batch `n`,
    /// same-padding for odd kernels so ResNet/VGG shapes compose.
    pub fn square(n: usize, c: usize, k: usize, hw: usize, rs: usize, stride: usize) -> Self {
        let pad = if rs % 2 == 1 {
            Padding::same_for_kernel(rs, rs)
        } else {
            Padding::NONE
        };
        Self::new(n, c, hw, hw, k, rs, rs, stride, pad)
    }

    fn validate(&self) {
        assert!(self.stride >= 1, "stride must be >= 1");
        assert!(
            self.n >= 1 && self.c >= 1 && self.k >= 1,
            "N, C, K must be >= 1"
        );
        assert!(self.r >= 1 && self.s >= 1, "kernel must be >= 1x1");
        assert!(
            self.h + 2 * self.pad.h >= self.r,
            "kernel height {} exceeds padded input height {}",
            self.r,
            self.h + 2 * self.pad.h
        );
        assert!(
            self.w + 2 * self.pad.w >= self.s,
            "kernel width {} exceeds padded input width {}",
            self.w,
            self.w + 2 * self.pad.w
        );
    }

    /// Output height `P`.
    #[inline]
    pub fn p(&self) -> usize {
        (self.h + 2 * self.pad.h - self.r) / self.stride + 1
    }

    /// Output width `Q`.
    #[inline]
    pub fn q(&self) -> usize {
        (self.w + 2 * self.pad.w - self.s) / self.stride + 1
    }

    /// Padded input height.
    #[inline]
    pub fn padded_h(&self) -> usize {
        self.h + 2 * self.pad.h
    }

    /// Padded input width.
    #[inline]
    pub fn padded_w(&self) -> usize {
        self.w + 2 * self.pad.w
    }

    /// Whether this shape needs zero-padding handling.
    #[inline]
    pub fn has_padding(&self) -> bool {
        self.pad.h != 0 || self.pad.w != 0
    }

    /// Number of elements in the input tensor `I[N][C][H][W]`.
    pub fn input_len(&self) -> usize {
        self.n * self.c * self.h * self.w
    }

    /// Number of elements in the filter tensor `F[K][C][R][S]`.
    pub fn filter_len(&self) -> usize {
        self.k * self.c * self.r * self.s
    }

    /// Number of elements in the output tensor `O[N][K][P][Q]`.
    pub fn output_len(&self) -> usize {
        self.n * self.k * self.p() * self.q()
    }

    /// Floating-point operations for this convolution: each output element
    /// consumes `C·R·S` fused multiply-adds, counted as 2 FLOPs apiece —
    /// the convention the paper's GFLOPS numbers use.
    pub fn flops(&self) -> u64 {
        2 * (self.n * self.k * self.p() * self.q()) as u64 * (self.c * self.r * self.s) as u64
    }

    /// GFLOPS for `elapsed` seconds of this convolution.
    pub fn gflops(&self, elapsed_secs: f64) -> f64 {
        self.flops() as f64 / elapsed_secs / 1e9
    }

    /// The GEMM dimensions the paper maps convolution onto
    /// (`K → M'`, `N·P·Q → N'`, `C·R·S → K'`).
    pub fn gemm_dims(&self) -> (usize, usize, usize) {
        (self.k, self.n * self.p() * self.q(), self.c * self.r * self.s)
    }

    /// Scales the spatial extent down (for fast tests), keeping the kernel
    /// fitting and preserving stride/padding semantics.
    pub fn with_spatial(&self, h: usize, w: usize) -> Self {
        let mut s = *self;
        s.h = h.max(s.r.saturating_sub(2 * s.pad.h).max(1));
        s.w = w.max(s.s.saturating_sub(2 * s.pad.w).max(1));
        s.validate();
        s
    }

    /// Returns the shape with a different batch size.
    pub fn with_batch(&self, n: usize) -> Self {
        let mut s = *self;
        s.n = n;
        s
    }
}

impl std::fmt::Display for ConvShape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "N{} C{} H{} W{} K{} R{} S{} str{} pad{}x{}",
            self.n, self.c, self.h, self.w, self.k, self.r, self.s, self.stride, self.pad.h,
            self.pad.w
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_dims_valid_conv() {
        // 7x7 input, 3x3 kernel, stride 1, no padding -> 5x5 output.
        let s = ConvShape::new(1, 1, 7, 7, 1, 3, 3, 1, Padding::NONE);
        assert_eq!((s.p(), s.q()), (5, 5));
    }

    #[test]
    fn output_dims_same_padding() {
        let s = ConvShape::new(1, 3, 14, 14, 8, 3, 3, 1, Padding::same(1));
        assert_eq!((s.p(), s.q()), (14, 14));
    }

    #[test]
    fn output_dims_strided() {
        // ResNet-50 layer 1: 224x224, 7x7, stride 2, pad 3 -> 112x112.
        let s = ConvShape::new(1, 3, 224, 224, 64, 7, 7, 2, Padding::same(3));
        assert_eq!((s.p(), s.q()), (112, 112));
    }

    #[test]
    fn square_helper_matches_table4_conventions() {
        // Table 4 layer 3: C64 K64 H/W56 R/S3 str1 (same padding).
        let s = ConvShape::square(64, 64, 64, 56, 3, 1);
        assert_eq!((s.p(), s.q()), (56, 56));
        // Table 4 layer 5: 1x1 kernels get no padding.
        let s = ConvShape::square(64, 64, 64, 56, 1, 1);
        assert_eq!(s.pad, Padding::NONE);
        assert_eq!((s.p(), s.q()), (56, 56));
    }

    #[test]
    fn flops_counts_two_per_mac() {
        let s = ConvShape::new(2, 3, 5, 5, 4, 3, 3, 1, Padding::NONE);
        // outputs: 2*4*3*3 = 72, macs each: 3*3*3 = 27 -> 2*72*27 = 3888.
        assert_eq!(s.flops(), 3888);
    }

    #[test]
    fn gemm_dims_mapping() {
        let s = ConvShape::new(4, 16, 10, 10, 32, 3, 3, 1, Padding::NONE);
        let (m, n, kk) = s.gemm_dims();
        assert_eq!(m, 32);
        assert_eq!(n, 4 * 8 * 8);
        assert_eq!(kk, 16 * 9);
    }

    #[test]
    #[should_panic(expected = "kernel height")]
    fn rejects_kernel_larger_than_input() {
        ConvShape::new(1, 1, 2, 2, 1, 3, 3, 1, Padding::NONE);
    }

    #[test]
    #[should_panic(expected = "stride")]
    fn rejects_zero_stride() {
        ConvShape::new(1, 1, 4, 4, 1, 3, 3, 0, Padding::NONE);
    }

    #[test]
    fn display_is_readable() {
        let s = ConvShape::square(1, 3, 8, 16, 3, 1);
        assert_eq!(format!("{s}"), "N1 C3 H16 W16 K8 R3 S3 str1 pad1x1");
    }
}

//! Convolution problem shapes — the paper's Table 1 notation.
//!
//! Shapes are validated at construction. Two API flavours exist: `try_*`
//! constructors return a typed [`ShapeError`] (the production path — see
//! DESIGN.md's "Error handling & degradation"), while the original
//! constructors panic with the same message, preserving the seed API.
//! Validation includes overflow checks: every element count and stride
//! product is computed with `checked_mul`, so a validated shape can never
//! hand wrapped index arithmetic to the `unsafe` micro-kernels downstream.

use crate::error::ShapeError;

/// Spatial zero-padding applied symmetrically to input height and width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Padding {
    /// Rows of zeros added above and below the input.
    pub h: usize,
    /// Columns of zeros added left and right of the input.
    pub w: usize,
}

impl Padding {
    /// No padding ("valid" convolution) — the convention of the paper's
    /// Algorithm 1.
    pub const NONE: Padding = Padding { h: 0, w: 0 };

    /// Symmetric padding with the same amount on both axes.
    pub const fn same(p: usize) -> Padding {
        Padding { h: p, w: p }
    }

    /// "Same" padding for odd kernels with stride 1: output size == input
    /// size. Returns [`ShapeError::EvenKernelSamePadding`] if either kernel
    /// extent is even (an even kernel cannot pad symmetrically to preserve
    /// the spatial size).
    pub fn try_same_for_kernel(r: usize, s: usize) -> Result<Padding, ShapeError> {
        if r % 2 == 1 && s % 2 == 1 {
            Ok(Padding {
                h: (r - 1) / 2,
                w: (s - 1) / 2,
            })
        } else {
            Err(ShapeError::EvenKernelSamePadding { r, s })
        }
    }

    /// Panicking wrapper around [`Padding::try_same_for_kernel`], kept for
    /// callers that construct shapes from trusted constants.
    pub fn same_for_kernel(r: usize, s: usize) -> Padding {
        Self::try_same_for_kernel(r, s).unwrap_or_else(|e| panic!("{e}"))
    }
}

/// A convolution problem in the paper's Table 1 notation.
///
/// * `n` — batch size (N), `c` — input channels (C), `h`/`w` — input
///   height/width (H/W);
/// * `k` — output channels (K), `r`/`s` — kernel height/width (R/S);
/// * `stride` — `str`; `pad` — symmetric zero padding (0 in the paper's
///   presentation; ResNet/VGG layers use same-padding in practice, which the
///   workloads crate sets explicitly).
///
/// Output height `P` and width `Q` are derived:
/// `P = (H + 2·pad.h − R)/str + 1`, `Q = (W + 2·pad.w − S)/str + 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvShape {
    /// Batch size `N`.
    pub n: usize,
    /// Input channels `C`.
    pub c: usize,
    /// Input height `H`.
    pub h: usize,
    /// Input width `W`.
    pub w: usize,
    /// Output channels `K`.
    pub k: usize,
    /// Kernel height `R`.
    pub r: usize,
    /// Kernel width `S`.
    pub s: usize,
    /// Stride `str`.
    pub stride: usize,
    /// Symmetric spatial zero padding.
    pub pad: Padding,
}

/// Product of `factors` with overflow detection.
fn checked_product(factors: &[usize], what: &'static str) -> Result<usize, ShapeError> {
    factors
        .iter()
        .try_fold(1usize, |acc, &f| acc.checked_mul(f))
        .ok_or(ShapeError::Overflow { what })
}

impl ConvShape {
    /// Builds a shape, returning a typed error when the stride is zero, any
    /// dimension is zero, the kernel does not fit into the padded input, or
    /// any element count overflows `usize`.
    #[allow(clippy::too_many_arguments)] // mirrors the paper's 9-symbol notation
    pub fn try_new(
        n: usize,
        c: usize,
        h: usize,
        w: usize,
        k: usize,
        r: usize,
        s: usize,
        stride: usize,
        pad: Padding,
    ) -> Result<Self, ShapeError> {
        let shape = ConvShape {
            n,
            c,
            h,
            w,
            k,
            r,
            s,
            stride,
            pad,
        };
        shape.validate()?;
        Ok(shape)
    }

    /// Panicking wrapper around [`ConvShape::try_new`], kept for call sites
    /// built from trusted constants (tests, Table 4 rows).
    #[allow(clippy::too_many_arguments)] // mirrors the paper's 9-symbol notation
    pub fn new(
        n: usize,
        c: usize,
        h: usize,
        w: usize,
        k: usize,
        r: usize,
        s: usize,
        stride: usize,
        pad: Padding,
    ) -> Self {
        Self::try_new(n, c, h, w, k, r, s, stride, pad).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`ConvShape::square`].
    pub fn try_square(
        n: usize,
        c: usize,
        k: usize,
        hw: usize,
        rs: usize,
        stride: usize,
    ) -> Result<Self, ShapeError> {
        let pad = if rs % 2 == 1 {
            Padding::try_same_for_kernel(rs, rs)?
        } else {
            Padding::NONE
        };
        Self::try_new(n, c, hw, hw, k, rs, rs, stride, pad)
    }

    /// Square-input / square-kernel convenience constructor matching the
    /// columns of the paper's Table 4 (`C K H/W R/S str`), batch `n`,
    /// same-padding for odd kernels so ResNet/VGG shapes compose.
    pub fn square(n: usize, c: usize, k: usize, hw: usize, rs: usize, stride: usize) -> Self {
        Self::try_square(n, c, k, hw, rs, stride).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Checks every invariant the constructors enforce. Public so APIs that
    /// accept a caller-mutated `ConvShape` (the fields are `pub`) can
    /// re-validate at their boundary before trusting derived quantities.
    pub fn validate(&self) -> Result<(), ShapeError> {
        if self.stride == 0 {
            return Err(ShapeError::ZeroStride);
        }
        for (name, dim) in [
            ("N", self.n),
            ("C", self.c),
            ("K", self.k),
            ("H", self.h),
            ("W", self.w),
            ("R", self.r),
            ("S", self.s),
        ] {
            if dim == 0 {
                return Err(ShapeError::ZeroDim { name });
            }
        }
        let ph = self.try_padded_h()?;
        if ph < self.r {
            return Err(ShapeError::KernelExceedsInput {
                axis: 'h',
                kernel: self.r,
                padded: ph,
            });
        }
        let pw = self.try_padded_w()?;
        if pw < self.s {
            return Err(ShapeError::KernelExceedsInput {
                axis: 'w',
                kernel: self.s,
                padded: pw,
            });
        }
        // All derived element counts must be representable; this is what
        // lets the driver hand plain (unchecked) products to the kernels.
        self.try_input_len()?;
        self.try_filter_len()?;
        self.try_output_len()?;
        checked_product(&[self.c, self.r, self.s, self.k], "gemm reduction")?;
        Ok(())
    }

    /// Output height `P`.
    #[inline]
    pub fn p(&self) -> usize {
        (self.h + 2 * self.pad.h - self.r) / self.stride + 1
    }

    /// Output width `Q`.
    #[inline]
    pub fn q(&self) -> usize {
        (self.w + 2 * self.pad.w - self.s) / self.stride + 1
    }

    /// Padded input height.
    #[inline]
    pub fn padded_h(&self) -> usize {
        self.h + 2 * self.pad.h
    }

    /// Padded input width.
    #[inline]
    pub fn padded_w(&self) -> usize {
        self.w + 2 * self.pad.w
    }

    /// Padded input height with overflow detection.
    pub fn try_padded_h(&self) -> Result<usize, ShapeError> {
        self.pad
            .h
            .checked_mul(2)
            .and_then(|p2| self.h.checked_add(p2))
            .ok_or(ShapeError::Overflow {
                what: "padded input height",
            })
    }

    /// Padded input width with overflow detection.
    pub fn try_padded_w(&self) -> Result<usize, ShapeError> {
        self.pad
            .w
            .checked_mul(2)
            .and_then(|p2| self.w.checked_add(p2))
            .ok_or(ShapeError::Overflow {
                what: "padded input width",
            })
    }

    /// Whether this shape needs zero-padding handling.
    #[inline]
    pub fn has_padding(&self) -> bool {
        self.pad.h != 0 || self.pad.w != 0
    }

    /// Number of elements in the input tensor `I[N][C][H][W]`.
    pub fn input_len(&self) -> usize {
        self.try_input_len().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Number of elements in the filter tensor `F[K][C][R][S]`.
    pub fn filter_len(&self) -> usize {
        self.try_filter_len().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Number of elements in the output tensor `O[N][K][P][Q]`.
    pub fn output_len(&self) -> usize {
        self.try_output_len().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Checked input element count.
    pub fn try_input_len(&self) -> Result<usize, ShapeError> {
        checked_product(&[self.n, self.c, self.h, self.w], "input elements")
    }

    /// Checked filter element count.
    pub fn try_filter_len(&self) -> Result<usize, ShapeError> {
        checked_product(&[self.k, self.c, self.r, self.s], "filter elements")
    }

    /// Checked output element count (`P`/`Q` computed without wrapping).
    pub fn try_output_len(&self) -> Result<usize, ShapeError> {
        let p = (self.try_padded_h()? - self.r) / self.stride + 1;
        let q = (self.try_padded_w()? - self.s) / self.stride + 1;
        checked_product(&[self.n, self.k, p, q], "output elements")
    }

    /// Floating-point operations for this convolution: each output element
    /// consumes `C·R·S` fused multiply-adds, counted as 2 FLOPs apiece —
    /// the convention the paper's GFLOPS numbers use.
    ///
    /// A validated shape only bounds `N·K·P·Q` and `C·R·S` *individually*
    /// by `usize::MAX`; their product can exceed `u64`, so the fold runs in
    /// `u128` and saturates rather than wrapping (a wrapped count would
    /// silently corrupt every GFLOPS figure and probe invariant built on
    /// it).
    pub fn flops(&self) -> u64 {
        self.try_flops().unwrap_or(u64::MAX)
    }

    /// Fallible form of [`ConvShape::flops`]: the exact count, or
    /// [`ShapeError::Narrow`] when it exceeds `u64::MAX` (where `flops`
    /// would saturate). For callers — cost models, probe invariants — that
    /// must not mistake a clamped value for a real one.
    pub fn try_flops(&self) -> Result<u64, ShapeError> {
        [self.n, self.k, self.p(), self.q(), self.c, self.r, self.s]
            .iter()
            .try_fold(2u128, |acc, &f| acc.checked_mul(f as u128))
            .and_then(|total| u64::try_from(total).ok())
            .ok_or(ShapeError::Narrow {
                what: "FLOP count",
                target: "u64",
            })
    }

    /// GFLOPS for `elapsed` seconds of this convolution.
    pub fn gflops(&self, elapsed_secs: f64) -> f64 {
        self.flops() as f64 / elapsed_secs / 1e9
    }

    /// The GEMM dimensions the paper maps convolution onto
    /// (`K → M'`, `N·P·Q → N'`, `C·R·S → K'`).
    pub fn gemm_dims(&self) -> (usize, usize, usize) {
        (self.k, self.n * self.p() * self.q(), self.c * self.r * self.s)
    }

    /// Scales the spatial extent down (for fast tests), keeping the kernel
    /// fitting and preserving stride/padding semantics.
    pub fn with_spatial(&self, h: usize, w: usize) -> Self {
        let mut s = *self;
        s.h = h.max(s.r.saturating_sub(2 * s.pad.h).max(1));
        s.w = w.max(s.s.saturating_sub(2 * s.pad.w).max(1));
        s.validate()
            .unwrap_or_else(|e| panic!("with_spatial produced an invalid shape: {e}"));
        s
    }

    /// Returns the shape with a different batch size.
    pub fn with_batch(&self, n: usize) -> Self {
        let mut s = *self;
        s.n = n;
        s
    }
}

impl std::fmt::Display for ConvShape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "N{} C{} H{} W{} K{} R{} S{} str{} pad{}x{}",
            self.n, self.c, self.h, self.w, self.k, self.r, self.s, self.stride, self.pad.h,
            self.pad.w
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_dims_valid_conv() {
        // 7x7 input, 3x3 kernel, stride 1, no padding -> 5x5 output.
        let s = ConvShape::new(1, 1, 7, 7, 1, 3, 3, 1, Padding::NONE);
        assert_eq!((s.p(), s.q()), (5, 5));
    }

    #[test]
    fn output_dims_same_padding() {
        let s = ConvShape::new(1, 3, 14, 14, 8, 3, 3, 1, Padding::same(1));
        assert_eq!((s.p(), s.q()), (14, 14));
    }

    #[test]
    fn output_dims_strided() {
        // ResNet-50 layer 1: 224x224, 7x7, stride 2, pad 3 -> 112x112.
        let s = ConvShape::new(1, 3, 224, 224, 64, 7, 7, 2, Padding::same(3));
        assert_eq!((s.p(), s.q()), (112, 112));
    }

    #[test]
    fn square_helper_matches_table4_conventions() {
        // Table 4 layer 3: C64 K64 H/W56 R/S3 str1 (same padding).
        let s = ConvShape::square(64, 64, 64, 56, 3, 1);
        assert_eq!((s.p(), s.q()), (56, 56));
        // Table 4 layer 5: 1x1 kernels get no padding.
        let s = ConvShape::square(64, 64, 64, 56, 1, 1);
        assert_eq!(s.pad, Padding::NONE);
        assert_eq!((s.p(), s.q()), (56, 56));
    }

    #[test]
    fn flops_counts_two_per_mac() {
        let s = ConvShape::new(2, 3, 5, 5, 4, 3, 3, 1, Padding::NONE);
        // outputs: 2*4*3*3 = 72, macs each: 3*3*3 = 27 -> 2*72*27 = 3888.
        assert_eq!(s.flops(), 3888);
        assert_eq!(s.try_flops(), Ok(3888));
    }

    #[test]
    fn try_flops_refuses_where_flops_saturates() {
        // Same 2^73-FLOP shape as `flops_saturates_instead_of_wrapping`.
        let s = ConvShape::new(1, 1 << 20, 1 << 16, 1 << 16, 1 << 20, 1, 1, 1, Padding::NONE);
        assert_eq!(s.flops(), u64::MAX);
        assert_eq!(
            s.try_flops(),
            Err(ShapeError::Narrow {
                what: "FLOP count",
                target: "u64",
            })
        );
    }

    #[test]
    fn flops_saturates_instead_of_wrapping() {
        // Validates (every individual element count fits usize) but the
        // FLOP product is 2·2^52·2^20 = 2^73, which the old u64 arithmetic
        // wrapped to 0.
        let s = ConvShape::new(1, 1 << 20, 1 << 16, 1 << 16, 1 << 20, 1, 1, 1, Padding::NONE);
        assert_eq!(s.try_output_len().unwrap(), 1 << 52);
        assert_eq!(s.flops(), u64::MAX);
    }

    #[test]
    fn gemm_dims_mapping() {
        let s = ConvShape::new(4, 16, 10, 10, 32, 3, 3, 1, Padding::NONE);
        let (m, n, kk) = s.gemm_dims();
        assert_eq!(m, 32);
        assert_eq!(n, 4 * 8 * 8);
        assert_eq!(kk, 16 * 9);
    }

    #[test]
    #[should_panic(expected = "kernel height")]
    fn rejects_kernel_larger_than_input() {
        ConvShape::new(1, 1, 2, 2, 1, 3, 3, 1, Padding::NONE);
    }

    #[test]
    #[should_panic(expected = "stride")]
    fn rejects_zero_stride() {
        ConvShape::new(1, 1, 4, 4, 1, 3, 3, 0, Padding::NONE);
    }

    #[test]
    fn try_new_reports_typed_errors() {
        use crate::error::ShapeError;
        assert_eq!(
            ConvShape::try_new(1, 1, 4, 4, 1, 3, 3, 0, Padding::NONE),
            Err(ShapeError::ZeroStride)
        );
        assert_eq!(
            ConvShape::try_new(0, 1, 4, 4, 1, 3, 3, 1, Padding::NONE),
            Err(ShapeError::ZeroDim { name: "N" })
        );
        assert_eq!(
            ConvShape::try_new(1, 1, 2, 4, 1, 3, 3, 1, Padding::NONE),
            Err(ShapeError::KernelExceedsInput {
                axis: 'h',
                kernel: 3,
                padded: 2
            })
        );
        assert!(ConvShape::try_new(1, 3, 8, 8, 4, 3, 3, 1, Padding::same(1)).is_ok());
    }

    #[test]
    fn try_same_for_kernel_rejects_even() {
        use crate::error::ShapeError;
        assert_eq!(
            Padding::try_same_for_kernel(2, 3),
            Err(ShapeError::EvenKernelSamePadding { r: 2, s: 3 })
        );
        assert_eq!(
            Padding::try_same_for_kernel(3, 3),
            Ok(Padding { h: 1, w: 1 })
        );
    }

    #[test]
    fn overflowing_shape_is_rejected_not_wrapped() {
        use crate::error::ShapeError;
        let huge = usize::MAX / 2;
        let err = ConvShape::try_new(huge, huge, 4, 4, 1, 3, 3, 1, Padding::NONE);
        assert_eq!(
            err,
            Err(ShapeError::Overflow {
                what: "input elements"
            })
        );
        // Padding arithmetic is also checked.
        let s = ConvShape {
            n: 1,
            c: 1,
            h: 4,
            w: 4,
            k: 1,
            r: 3,
            s: 3,
            stride: 1,
            pad: Padding {
                h: usize::MAX / 2 + 1,
                w: 0,
            },
        };
        assert_eq!(
            s.validate(),
            Err(ShapeError::Overflow {
                what: "padded input height"
            })
        );
    }

    #[test]
    fn checked_lens_match_plain_lens_for_valid_shapes() {
        let s = ConvShape::square(2, 16, 32, 14, 3, 1);
        assert_eq!(s.try_input_len().unwrap(), s.input_len());
        assert_eq!(s.try_filter_len().unwrap(), s.filter_len());
        assert_eq!(s.try_output_len().unwrap(), s.output_len());
    }

    #[test]
    fn display_is_readable() {
        let s = ConvShape::square(1, 3, 8, 16, 3, 1);
        assert_eq!(format!("{s}"), "N1 C3 H16 W16 K8 R3 S3 str1 pad1x1");
    }
}

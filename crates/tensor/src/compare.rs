//! Numeric comparison utilities for validating kernels against the oracle.

/// Maximum absolute element-wise difference. Panics on length mismatch.
pub fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "length mismatch: {} vs {}", a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f32, f32::max)
}

/// Maximum relative difference `|a−b| / max(|a|,|b|,1)`.
///
/// The `1` floor keeps near-zero outputs from exploding the metric; it suits
/// convolution outputs whose magnitudes are O(√(C·R·S)) for unit-variance
/// inputs.
pub fn max_rel_diff(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "length mismatch: {} vs {}", a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs() / x.abs().max(y.abs()).max(1.0))
        .fold(0.0f32, f32::max)
}

/// Default tolerance for comparing two FP32 convolution implementations that
/// reduce in different orders. `C·R·S` up to ~2·10⁴ with [-1,1) data keeps
/// accumulated error well under this bound.
pub const DEFAULT_TOL: f32 = 2e-4;

/// Asserts element-wise closeness under [`max_rel_diff`], printing the first
/// offending index on failure.
#[track_caller]
pub fn assert_close(actual: &[f32], expected: &[f32], tol: f32, what: &str) {
    assert_eq!(
        actual.len(),
        expected.len(),
        "{what}: length mismatch {} vs {}",
        actual.len(),
        expected.len()
    );
    for (i, (x, y)) in actual.iter().zip(expected).enumerate() {
        let denom = x.abs().max(y.abs()).max(1.0);
        let rel = (x - y).abs() / denom;
        assert!(
            rel <= tol && x.is_finite(),
            "{what}: mismatch at index {i}: actual={x}, expected={y}, rel={rel:e} > tol={tol:e}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_slices_have_zero_diff() {
        let a = [1.0, -2.0, 3.5];
        assert_eq!(max_abs_diff(&a, &a), 0.0);
        assert_eq!(max_rel_diff(&a, &a), 0.0);
    }

    #[test]
    fn abs_diff_finds_worst_element() {
        let a = [1.0, 2.0, 3.0];
        let b = [1.0, 2.5, 3.1];
        assert!((max_abs_diff(&a, &b) - 0.5).abs() < 1e-7);
    }

    #[test]
    fn rel_diff_floors_denominator_at_one() {
        let a = [1e-8];
        let b = [2e-8];
        assert!(max_rel_diff(&a, &b) < 1e-7);
    }

    #[test]
    fn assert_close_accepts_within_tol() {
        assert_close(&[100.0, 0.0], &[100.01, 1e-6], 2e-4, "test");
    }

    #[test]
    #[should_panic(expected = "mismatch at index 1")]
    fn assert_close_rejects_and_names_index() {
        assert_close(&[1.0, 2.0], &[1.0, 3.0], 1e-4, "unit");
    }

    #[test]
    #[should_panic(expected = "mismatch at index 0")]
    fn assert_close_rejects_nan() {
        assert_close(&[f32::NAN], &[f32::NAN], 1e-4, "nan");
    }
}

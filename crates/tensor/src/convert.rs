//! Standalone layout conversions.
//!
//! These free functions exist (in addition to the `to_layout` methods) so the
//! benchmark harness can time the *format conversion* step of each approach
//! in isolation — the cost the paper's Figure 1a attributes to LIBXSMM when
//! it is fed mainstream `NCHW` data.

use crate::blocked::{BlockedFilter, BlockedTensor};
use crate::tensor::{ActLayout, Filter, FilterLayout, Tensor4};

/// `NCHW → NHWC` (or the reverse), returning a new tensor.
pub fn convert_activation(t: &Tensor4, target: ActLayout) -> Tensor4 {
    t.to_layout(target)
}

/// `KCRS → KRSC` (or the reverse), returning a new filter.
pub fn convert_filter(f: &Filter, target: FilterLayout) -> Filter {
    f.to_layout(target)
}

/// `NCHW/NHWC → NCHWc` with channel block `cb` (LIBXSMM input format).
pub fn to_blocked_activation(t: &Tensor4, cb: usize) -> BlockedTensor {
    BlockedTensor::from_tensor(t, cb)
}

/// `NCHWc → NCHW/NHWC`.
pub fn from_blocked_activation(b: &BlockedTensor, layout: ActLayout) -> Tensor4 {
    b.to_tensor(layout)
}

/// `KCRS/KRSC → [⌈K/kb⌉,⌈C/cb⌉,R,S,cb,kb]` (LIBXSMM filter format).
pub fn to_blocked_filter(f: &Filter, cb: usize, kb: usize) -> BlockedFilter {
    BlockedFilter::from_filter(f, cb, kb)
}

/// Bytes moved by an activation layout conversion (read + write), for
/// bandwidth accounting in the breakdown experiments.
pub fn activation_conversion_bytes(t: &Tensor4) -> u64 {
    2 * (t.len() as u64) * std::mem::size_of::<f32>() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fill;

    #[test]
    fn activation_conversion_round_trip() {
        let mut t = Tensor4::zeros(2, 3, 4, 5, ActLayout::Nchw);
        fill::fill_random(t.as_mut_slice(), 3);
        let u = convert_activation(&t, ActLayout::Nhwc);
        let back = convert_activation(&u, ActLayout::Nchw);
        assert_eq!(back.as_slice(), t.as_slice());
    }

    #[test]
    fn blocked_activation_round_trip() {
        let mut t = Tensor4::zeros(2, 6, 3, 3, ActLayout::Nchw);
        fill::fill_random(t.as_mut_slice(), 4);
        let b = to_blocked_activation(&t, 4);
        let back = from_blocked_activation(&b, ActLayout::Nchw);
        assert_eq!(back.as_slice(), t.as_slice());
    }

    #[test]
    fn filter_conversion_round_trip() {
        let mut f = Filter::zeros(3, 5, 2, 2, FilterLayout::Kcrs);
        fill::fill_random(f.as_mut_slice(), 5);
        let g = convert_filter(&f, FilterLayout::Krsc);
        let back = convert_filter(&g, FilterLayout::Kcrs);
        assert_eq!(back.as_slice(), f.as_slice());
    }

    #[test]
    fn conversion_bytes_counts_read_plus_write() {
        let t = Tensor4::zeros(1, 2, 2, 2, ActLayout::Nchw);
        assert_eq!(activation_conversion_bytes(&t), 2 * 8 * 4);
    }
}

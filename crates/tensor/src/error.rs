//! Typed shape-validation errors.
//!
//! Every misuse a hostile or buggy caller can encode in a [`crate::ConvShape`]
//! — zero dimensions, a kernel that does not fit the padded input, even
//! kernels asking for "same" padding, element counts that overflow `usize` —
//! maps to a [`ShapeError`] variant. The `try_*` constructors return these;
//! the legacy panicking constructors format them into their panic message,
//! so the two API flavours always agree on what is invalid.

/// Why a convolution shape (or padding request) is invalid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShapeError {
    /// One of `N`, `C`, `K` is zero. `N, C, K must be >= 1`.
    ZeroDim {
        /// Which dimension was zero (`"N"`, `"C"`, `"K"`, `"R"`, `"S"`,
        /// `"H"`, `"W"`).
        name: &'static str,
    },
    /// The stride is zero.
    ZeroStride,
    /// "Same" padding was requested for an even kernel size, which cannot
    /// preserve the spatial extent symmetrically.
    EvenKernelSamePadding {
        /// Kernel height `R`.
        r: usize,
        /// Kernel width `S`.
        s: usize,
    },
    /// The kernel does not fit into the padded input along one axis.
    KernelExceedsInput {
        /// `'h'` or `'w'`.
        axis: char,
        /// Kernel extent along the axis.
        kernel: usize,
        /// Padded input extent along the axis.
        padded: usize,
    },
    /// An element count or stride product overflows `usize` — the shape can
    /// never be materialized and index arithmetic on it would wrap.
    Overflow {
        /// Which product overflowed (e.g. `"input elements"`).
        what: &'static str,
    },
    /// An exact wide-integer quantity (FLOP count, byte prediction) does
    /// not fit the narrower type the caller asked for. The saturating
    /// accessors clamp instead; this variant is for callers that need the
    /// exact value or an explicit refusal.
    Narrow {
        /// Which quantity failed to narrow (e.g. `"FLOP count"`).
        what: &'static str,
        /// The destination type name (e.g. `"u64"`).
        target: &'static str,
    },
}

impl std::fmt::Display for ShapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShapeError::ZeroDim { name } => {
                write!(f, "dimension {name} must be >= 1 (N, C, K must be >= 1; kernel must be >= 1x1)")
            }
            ShapeError::ZeroStride => write!(f, "stride must be >= 1"),
            ShapeError::EvenKernelSamePadding { r, s } => {
                write!(f, "same padding needs odd kernels, got {r}x{s}")
            }
            ShapeError::KernelExceedsInput {
                axis,
                kernel,
                padded,
            } => {
                let name = if *axis == 'h' { "height" } else { "width" };
                write!(f, "kernel {name} {kernel} exceeds padded input {name} {padded}")
            }
            ShapeError::Overflow { what } => {
                write!(f, "{what} count overflows usize — shape is unrepresentable")
            }
            ShapeError::Narrow { what, target } => {
                write!(f, "{what} exceeds {target} — use the saturating accessor or a wider type")
            }
        }
    }
}

impl std::error::Error for ShapeError {}

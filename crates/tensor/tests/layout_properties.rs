//! Property tests for layouts, padding and blocked formats.
//!
//! Hand-rolled property testing: each case draws its inputs from a seeded
//! [`Rng64`], so failures print the seed and replay deterministically with
//! no external fuzzing dependency.

use ndirect_support::Rng64;
use ndirect_tensor::{
    fill, pad, ActLayout, BlockedFilter, BlockedTensor, Filter, FilterLayout, Padding, Tensor4,
};

const CASES: u64 = 64;

fn dims(rng: &mut Rng64) -> (usize, usize, usize, usize) {
    (
        rng.gen_range_usize(1, 4),
        rng.gen_range_usize(1, 10),
        rng.gen_range_usize(1, 10),
        rng.gen_range_usize(1, 10),
    )
}

#[test]
fn offsets_are_a_bijection_nchw_and_nhwc() {
    for case in 0..CASES {
        let mut rng = Rng64::seed_from_u64(0x1a70_0000 + case);
        let (n, c, h, w) = dims(&mut rng);
        for layout in [ActLayout::Nchw, ActLayout::Nhwc] {
            let t = Tensor4::zeros(n, c, h, w, layout);
            let mut seen = vec![false; t.len()];
            for ni in 0..n {
                for ci in 0..c {
                    for hi in 0..h {
                        for wi in 0..w {
                            let off = t.offset(ni, ci, hi, wi);
                            assert!(!seen[off], "case {case}: offset collision at {off}");
                            seen[off] = true;
                        }
                    }
                }
            }
            assert!(seen.iter().all(|&s| s), "case {case}: offsets not surjective");
        }
    }
}

#[test]
fn layout_conversion_preserves_logical_view() {
    for case in 0..CASES {
        let mut rng = Rng64::seed_from_u64(0x1a70_1000 + case);
        let (n, c, h, w) = dims(&mut rng);
        let t = fill::random_tensor(Tensor4::zeros(n, c, h, w, ActLayout::Nchw), case);
        let u = t.to_layout(ActLayout::Nhwc);
        for ni in 0..n {
            for ci in 0..c {
                for hi in 0..h {
                    for wi in 0..w {
                        assert_eq!(t.at(ni, ci, hi, wi), u.at(ni, ci, hi, wi), "case {case}");
                    }
                }
            }
        }
    }
}

#[test]
fn padding_preserves_interior_and_zeroes_border() {
    for case in 0..CASES {
        let mut rng = Rng64::seed_from_u64(0x1a70_2000 + case);
        let (n, c, h, w) = dims(&mut rng);
        let (ph, pw) = (rng.gen_range_usize(0, 3), rng.gen_range_usize(0, 3));
        let t = fill::random_tensor(Tensor4::zeros(n, c, h, w, ActLayout::Nchw), case);
        let p = pad::pad_input(&t, Padding { h: ph, w: pw });
        let (_, _, hp, wp) = p.dims();
        assert_eq!((hp, wp), (h + 2 * ph, w + 2 * pw), "case {case}");
        for ni in 0..n {
            for ci in 0..c {
                for hi in 0..hp {
                    for wi in 0..wp {
                        let expect = pad::at_padded(
                            &t,
                            ni,
                            ci,
                            hi as isize - ph as isize,
                            wi as isize - pw as isize,
                        );
                        assert_eq!(p.at(ni, ci, hi, wi), expect, "case {case}");
                    }
                }
            }
        }
    }
}

#[test]
fn blocked_tensor_round_trip() {
    for case in 0..CASES {
        let mut rng = Rng64::seed_from_u64(0x1a70_3000 + case);
        let (n, c, h, w) = dims(&mut rng);
        let cb = rng.gen_range_usize(1, 6);
        let t = fill::random_tensor(Tensor4::zeros(n, c, h, w, ActLayout::Nchw), case);
        let b = BlockedTensor::from_tensor(&t, cb);
        let back = b.to_tensor(ActLayout::Nchw);
        assert_eq!(back.as_slice(), t.as_slice(), "case {case} cb={cb}");
    }
}

#[test]
fn blocked_filter_round_trip() {
    for case in 0..CASES {
        let mut rng = Rng64::seed_from_u64(0x1a70_4000 + case);
        let (k, c) = (rng.gen_range_usize(1, 10), rng.gen_range_usize(1, 10));
        let (r, s) = (rng.gen_range_usize(1, 4), rng.gen_range_usize(1, 4));
        let (cb, kb) = (rng.gen_range_usize(1, 5), rng.gen_range_usize(1, 5));
        let f = fill::random_filter(Filter::zeros(k, c, r, s, FilterLayout::Kcrs), case);
        let b = BlockedFilter::from_filter(&f, cb, kb);
        for ki in 0..k {
            for ci in 0..c {
                for ri in 0..r {
                    for si in 0..s {
                        assert_eq!(
                            b.as_slice()[b.offset(ki, ci, ri, si)],
                            f.at(ki, ci, ri, si),
                            "case {case}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn filter_layout_round_trip() {
    for case in 0..CASES {
        let mut rng = Rng64::seed_from_u64(0x1a70_5000 + case);
        let (k, c) = (rng.gen_range_usize(1, 8), rng.gen_range_usize(1, 8));
        let (r, s) = (rng.gen_range_usize(1, 4), rng.gen_range_usize(1, 4));
        let f = fill::random_filter(Filter::zeros(k, c, r, s, FilterLayout::Kcrs), case);
        let back = f.to_layout(FilterLayout::Krsc).to_layout(FilterLayout::Kcrs);
        assert_eq!(back.as_slice(), f.as_slice(), "case {case}");
    }
}

//! Property tests for layouts, padding and blocked formats.

use ndirect_tensor::{
    fill, pad, ActLayout, BlockedFilter, BlockedTensor, Filter, FilterLayout, Padding, Tensor4,
};
use proptest::prelude::*;

fn dims() -> impl Strategy<Value = (usize, usize, usize, usize)> {
    (1usize..4, 1usize..10, 1usize..10, 1usize..10)
}

proptest! {
    #[test]
    fn offsets_are_a_bijection_nchw((n, c, h, w) in dims()) {
        let t = Tensor4::zeros(n, c, h, w, ActLayout::Nchw);
        let mut seen = vec![false; t.len()];
        for ni in 0..n { for ci in 0..c { for hi in 0..h { for wi in 0..w {
            let off = t.offset(ni, ci, hi, wi);
            prop_assert!(!seen[off], "offset collision at {off}");
            seen[off] = true;
        }}}}
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn offsets_are_a_bijection_nhwc((n, c, h, w) in dims()) {
        let t = Tensor4::zeros(n, c, h, w, ActLayout::Nhwc);
        let mut seen = vec![false; t.len()];
        for ni in 0..n { for ci in 0..c { for hi in 0..h { for wi in 0..w {
            let off = t.offset(ni, ci, hi, wi);
            prop_assert!(!seen[off]);
            seen[off] = true;
        }}}}
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn layout_conversion_preserves_logical_view((n, c, h, w) in dims(), seed in 0u64..100) {
        let t = fill::random_tensor(Tensor4::zeros(n, c, h, w, ActLayout::Nchw), seed);
        let u = t.to_layout(ActLayout::Nhwc);
        for ni in 0..n { for ci in 0..c { for hi in 0..h { for wi in 0..w {
            prop_assert_eq!(t.at(ni, ci, hi, wi), u.at(ni, ci, hi, wi));
        }}}}
    }

    #[test]
    fn padding_preserves_interior_and_zeroes_border(
        (n, c, h, w) in dims(),
        ph in 0usize..3,
        pw in 0usize..3,
        seed in 0u64..100,
    ) {
        let t = fill::random_tensor(Tensor4::zeros(n, c, h, w, ActLayout::Nchw), seed);
        let p = pad::pad_input(&t, Padding { h: ph, w: pw });
        let (_, _, hp, wp) = p.dims();
        prop_assert_eq!((hp, wp), (h + 2 * ph, w + 2 * pw));
        for ni in 0..n { for ci in 0..c {
            for hi in 0..hp { for wi in 0..wp {
                let expect = pad::at_padded(&t, ni, ci, hi as isize - ph as isize, wi as isize - pw as isize);
                prop_assert_eq!(p.at(ni, ci, hi, wi), expect);
            }}
        }}
    }

    #[test]
    fn blocked_tensor_round_trip((n, c, h, w) in dims(), cb in 1usize..6, seed in 0u64..100) {
        let t = fill::random_tensor(Tensor4::zeros(n, c, h, w, ActLayout::Nchw), seed);
        let b = BlockedTensor::from_tensor(&t, cb);
        let back = b.to_tensor(ActLayout::Nchw);
        prop_assert_eq!(back.as_slice(), t.as_slice());
    }

    #[test]
    fn blocked_filter_round_trip(
        k in 1usize..10, c in 1usize..10, r in 1usize..4, s in 1usize..4,
        cb in 1usize..5, kb in 1usize..5, seed in 0u64..100,
    ) {
        let f = fill::random_filter(Filter::zeros(k, c, r, s, FilterLayout::Kcrs), seed);
        let b = BlockedFilter::from_filter(&f, cb, kb);
        for ki in 0..k { for ci in 0..c { for ri in 0..r { for si in 0..s {
            prop_assert_eq!(b.as_slice()[b.offset(ki, ci, ri, si)], f.at(ki, ci, ri, si));
        }}}}
    }

    #[test]
    fn filter_layout_round_trip(
        k in 1usize..8, c in 1usize..8, r in 1usize..4, s in 1usize..4, seed in 0u64..100,
    ) {
        let f = fill::random_filter(Filter::zeros(k, c, r, s, FilterLayout::Kcrs), seed);
        let back = f.to_layout(FilterLayout::Krsc).to_layout(FilterLayout::Kcrs);
        prop_assert_eq!(back.as_slice(), f.as_slice());
    }
}

//! `audit.allow` — the checked-in waiver list.
//!
//! A violation can only be silenced by an explicit entry here, so nothing
//! disappears silently: the waiver names the rule, the file, and a reason,
//! and an entry that no longer matches any live violation is itself an
//! error ([`crate::rules::Rule::UnusedWaiver`]) so stale excuses cannot
//! accumulate.
//!
//! # Format
//!
//! One waiver per line:
//!
//! ```text
//! <rule-id> <workspace-relative-path> -- <reason>
//! ```
//!
//! Blank lines and lines starting with `#` are comments. The reason is
//! mandatory. A waiver silences every violation of that rule in that file.

use crate::rules::Rule;

/// One parsed `audit.allow` entry.
#[derive(Clone, Debug)]
pub struct Waiver {
    pub rule: Rule,
    /// Workspace-relative path with forward slashes.
    pub file: String,
    pub reason: String,
    /// 1-based line in `audit.allow`, for error reporting.
    pub line: usize,
}

/// A malformed `audit.allow` line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WaiverError {
    pub line: usize,
    pub msg: String,
}

impl std::fmt::Display for WaiverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "audit.allow:{}: {}", self.line, self.msg)
    }
}

/// Parses the waiver file text. Unknown rule ids, missing paths, and
/// missing reasons are hard errors — a waiver that cannot be understood
/// must not silently fail open *or* closed.
pub fn parse(text: &str) -> Result<Vec<Waiver>, WaiverError> {
    let mut out = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (head, reason) = match line.split_once("--") {
            Some((h, r)) if !r.trim().is_empty() => (h.trim(), r.trim()),
            _ => {
                return Err(WaiverError {
                    line: line_no,
                    msg: "expected `<rule-id> <path> -- <reason>`".to_owned(),
                })
            }
        };
        let mut parts = head.split_whitespace();
        let (Some(rule_id), Some(file), None) = (parts.next(), parts.next(), parts.next())
        else {
            return Err(WaiverError {
                line: line_no,
                msg: "expected exactly `<rule-id> <path>` before `--`".to_owned(),
            });
        };
        let Some(rule) = Rule::from_id(rule_id) else {
            return Err(WaiverError {
                line: line_no,
                msg: format!("unknown rule id {rule_id:?}"),
            });
        };
        out.push(Waiver {
            rule,
            file: file.replace('\\', "/"),
            reason: reason.to_owned(),
            line: line_no,
        });
    }
    Ok(out)
}

//! The repo-specific soundness rules, evaluated over lexed source.
//!
//! Every rule works on the scrubbed text (see [`crate::lexer`]), so tokens
//! inside comments and literals are invisible to it, and consults the
//! per-line comment text for `// SAFETY:` / `// CAST:` justifications.

use crate::lexer::Lexed;

/// Stable identifier of one auditor rule, used in reports and in the
/// `audit.allow` waiver file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rule {
    /// Every `unsafe` block, `unsafe fn`, and `unsafe impl` must be
    /// immediately preceded by a `// SAFETY:` comment stating the invariant
    /// (an `unsafe fn`'s `/// # Safety` doc section also qualifies).
    SafetyComment,
    /// No `.unwrap()` / `.expect(...)` in library code outside
    /// `#[cfg(test)]`; the `try_` API with typed errors is the sanctioned
    /// path.
    NoUnwrap,
    /// No `as` cast to a fixed-width integer (≤ 32 bits) in the hot-path
    /// crates without a `// CAST:` comment justifying why the narrowing is
    /// lossless or intended.
    CastJustify,
    /// No `static mut` anywhere — use atomics, `OnceLock`, or interior
    /// mutability.
    NoStaticMut,
    /// Every crate opts into the workspace lint table
    /// (`[lints] workspace = true`), and crates whose sources contain no
    /// `unsafe` carry `#![forbid(unsafe_code)]` so regressions are
    /// compile errors.
    LintHeader,
    /// An `audit.allow` waiver that matched no live violation — waivers
    /// must never outlive the code they excuse.
    UnusedWaiver,
    /// No allocating call (`Vec::new`/`push`/`with_capacity`, `Box::new`,
    /// `String`, `format!`, `to_vec`, `clone`, …) reachable from an
    /// `// AUDIT: hotpath` root outside an `// AUDIT: cold` region.
    HotpathNoAlloc,
    /// No `panic!`/`unwrap`/`expect`/`assert!`/`unreachable!` and no
    /// unjustified scalar `[]` indexing reachable from a hotpath root.
    HotpathNoPanic,
    /// Every atomic `Ordering` argument (`Relaxed`, `Acquire`, `Release`,
    /// `AcqRel`, `SeqCst`) in library code carries an adjacent
    /// `// ORDERING:` comment stating why it suffices.
    OrderingJustify,
    /// No pair of `Mutex`/`RwLock` locks acquired in both orders anywhere
    /// in the workspace (call-graph-propagated).
    LockOrder,
}

impl Rule {
    /// All rules, in reporting order.
    pub const ALL: &'static [Rule] = &[
        Rule::SafetyComment,
        Rule::NoUnwrap,
        Rule::CastJustify,
        Rule::NoStaticMut,
        Rule::LintHeader,
        Rule::UnusedWaiver,
        Rule::HotpathNoAlloc,
        Rule::HotpathNoPanic,
        Rule::OrderingJustify,
        Rule::LockOrder,
    ];

    /// Stable kebab-case id (the `audit.allow` key).
    pub fn id(self) -> &'static str {
        match self {
            Rule::SafetyComment => "safety-comment",
            Rule::NoUnwrap => "no-unwrap",
            Rule::CastJustify => "cast-justify",
            Rule::NoStaticMut => "no-static-mut",
            Rule::LintHeader => "lint-header",
            Rule::UnusedWaiver => "unused-waiver",
            Rule::HotpathNoAlloc => "hotpath-no-alloc",
            Rule::HotpathNoPanic => "hotpath-no-panic",
            Rule::OrderingJustify => "ordering-justify",
            Rule::LockOrder => "lock-order",
        }
    }

    /// One-line description for `--list-rules`.
    pub fn describe(self) -> &'static str {
        match self {
            Rule::SafetyComment => {
                "unsafe block/fn/impl must be preceded by a `// SAFETY:` comment \
                 (or a `/// # Safety` doc section for unsafe fns)"
            }
            Rule::NoUnwrap => {
                "no .unwrap()/.expect() in library code outside #[cfg(test)]; \
                 use the try_ APIs and typed errors"
            }
            Rule::CastJustify => {
                "no `as` cast to a fixed-width integer (<= 32 bits) in hot-path \
                 crates without a `// CAST:` justification"
            }
            Rule::NoStaticMut => "`static mut` is forbidden; use atomics or OnceLock",
            Rule::LintHeader => {
                "every crate sets `[lints] workspace = true`; unsafe-free crates \
                 add `#![forbid(unsafe_code)]`"
            }
            Rule::UnusedWaiver => "audit.allow entries must match a live violation",
            Rule::HotpathNoAlloc => {
                "no allocating call reachable from an `// AUDIT: hotpath` root \
                 outside an `// AUDIT: cold` region"
            }
            Rule::HotpathNoPanic => {
                "no panicking call or unjustified scalar `[]` indexing reachable \
                 from an `// AUDIT: hotpath` root"
            }
            Rule::OrderingJustify => {
                "every atomic Ordering argument needs an adjacent `// ORDERING:` \
                 comment stating why it suffices"
            }
            Rule::LockOrder => {
                "no lock pair may be acquired in both orders anywhere in the \
                 workspace (propagated through the call graph)"
            }
        }
    }

    /// Parses a rule id from `audit.allow`.
    pub fn from_id(id: &str) -> Option<Rule> {
        Rule::ALL.iter().copied().find(|r| r.id() == id)
    }
}

/// One rule violation at a source location.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    pub rule: Rule,
    pub msg: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file,
            self.line,
            self.rule.id(),
            self.msg
        )
    }
}

/// Which rule families apply to a file, derived from its path by
/// [`crate::audit_with_waivers`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FileKind {
    /// Library source (`crates/*/src/**`, excluding `src/bin/`): the
    /// no-unwrap rule applies.
    pub library: bool,
    /// Hot-path crate source (core/simd/threads/tensor `src/`): the
    /// cast-justify rule applies.
    pub hot_path: bool,
}

/// Byte ranges of `#[cfg(test)]` / `#[test]` items, as 0-based line spans.
/// Unwrap/cast/ordering rules skip code inside them, and [`crate::graph`]
/// excludes functions declared there from the call graph.
pub fn test_regions(lexed: &Lexed) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let s = &lexed.scrubbed;
    let bytes = s.as_bytes();
    let mut search = 0usize;
    while let Some(off) = s[search..].find("#[").map(|p| p + search) {
        // Attribute content up to the matching `]` (attrs can nest parens
        // but `]` only appears in them inside literals, which are blanked).
        let close = match s[off..].find(']') {
            Some(c) => off + c,
            None => break,
        };
        let attr = &s[off..close];
        search = close + 1;
        if !attr_mentions_test(attr) {
            continue;
        }
        // Skip any further attributes, then brace-match the item body.
        let mut j = close + 1;
        let mut depth = 0usize;
        let mut start_line = None;
        while j < bytes.len() {
            match bytes[j] {
                b'{' => {
                    if depth == 0 {
                        start_line = Some(line_of(s, j));
                    }
                    depth += 1;
                }
                b'}' => {
                    // A stray `}` before the item's `{` means the attribute
                    // sat at the end of a block; stop rather than underflow.
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                b';' if depth == 0 => break, // `mod tests;` — out-of-line
                _ => {}
            }
            j += 1;
        }
        if let Some(sl) = start_line {
            let end_line = line_of(s, j.min(bytes.len().saturating_sub(1)));
            regions.push((sl, end_line));
            search = search.max(j);
        }
    }
    regions
}

/// `#[cfg(test)]`, `#[test]`, `#[cfg(all(test, …))]`, `#[cfg(any(test, …))]`.
fn attr_mentions_test(attr: &str) -> bool {
    // Word-boundary search for `test` inside the attribute text.
    find_word(attr, "test").is_some()
}

fn line_of(s: &str, byte: usize) -> usize {
    s.as_bytes()[..byte].iter().filter(|&&b| b == b'\n').count()
}

fn in_regions(regions: &[(usize, usize)], line: usize) -> bool {
    regions.iter().any(|&(a, b)| line >= a && line <= b)
}

/// Finds `word` in `s` at identifier boundaries, starting the search at 0.
fn find_word(s: &str, word: &str) -> Option<usize> {
    find_word_from(s, word, 0)
}

fn find_word_from(s: &str, word: &str, from: usize) -> Option<usize> {
    let bytes = s.as_bytes();
    let mut at = from;
    while let Some(p) = s[at..].find(word).map(|p| p + at) {
        let before_ok = p == 0 || !is_ident_byte(bytes[p - 1]);
        let end = p + word.len();
        let after_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if before_ok && after_ok {
            return Some(p);
        }
        at = p + 1;
    }
    None
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Names of *out-of-line* modules declared under a test attribute —
/// `#[cfg(test)] mod tests;` — whose bodies live in sibling files
/// (`tests.rs` / `tests/mod.rs`). `test_regions` cannot cover those
/// bodies (they are other files), so the workspace walker uses this list
/// to classify the target files as test code for the unwrap/cast rules.
pub fn test_module_decls(lexed: &Lexed) -> Vec<String> {
    let mut decls = Vec::new();
    let s = &lexed.scrubbed;
    let bytes = s.as_bytes();
    let mut search = 0usize;
    while let Some(off) = s[search..].find("#[").map(|p| p + search) {
        let close = match s[off..].find(']') {
            Some(c) => off + c,
            None => break,
        };
        let attr = &s[off..close];
        search = close + 1;
        if !attr_mentions_test(attr) {
            continue;
        }
        // Skip whitespace, further attributes, and a `pub` qualifier, then
        // match `mod <ident> ;` — anything else (an inline `mod { … }` is
        // handled by test_regions) is not an out-of-line declaration.
        let mut j = close + 1;
        loop {
            while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                j += 1;
            }
            if s[j..].starts_with("#[") {
                match s[j..].find(']') {
                    Some(c) => j += c + 1,
                    None => return decls,
                }
                continue;
            }
            if s[j..].starts_with("pub") && !is_ident_byte(*bytes.get(j + 3).unwrap_or(&b' ')) {
                j += 3;
                continue;
            }
            break;
        }
        if !s[j..].starts_with("mod") || is_ident_byte(*bytes.get(j + 3).unwrap_or(&b' ')) {
            continue;
        }
        j += 3;
        while j < bytes.len() && bytes[j].is_ascii_whitespace() {
            j += 1;
        }
        let name_start = j;
        while j < bytes.len() && is_ident_byte(bytes[j]) {
            j += 1;
        }
        let name = &s[name_start..j];
        while j < bytes.len() && bytes[j].is_ascii_whitespace() {
            j += 1;
        }
        if !name.is_empty() && bytes.get(j) == Some(&b';') {
            decls.push(name.to_owned());
        }
    }
    decls
}

/// Runs every per-file rule over one lexed source file.
pub fn check_file(file: &str, lexed: &Lexed, kind: FileKind) -> Vec<Violation> {
    let lines: Vec<&str> = lexed.scrubbed.lines().collect();
    let regions = test_regions(lexed);
    let mut out = Vec::new();
    check_safety_comments(file, lexed, &lines, &mut out);
    check_static_mut(file, &lines, &mut out);
    if kind.library {
        check_unwrap(file, &lines, &regions, &mut out);
        check_ordering(file, lexed, &lines, &regions, &mut out);
    }
    if kind.hot_path {
        check_casts(file, lexed, &lines, &regions, &mut out);
    }
    out
}

/// Rule 9: atomic `Ordering` arguments need `// ORDERING:` justification.
///
/// Lexical on purpose: the five ordering names are unambiguous tokens in
/// this workspace (`cmp::Ordering`'s variants do not collide), `use`
/// declarations are skipped, and one comment covers all orderings on its
/// line (`compare_exchange` takes two).
fn check_ordering(
    file: &str,
    lexed: &Lexed,
    lines: &[&str],
    regions: &[(usize, usize)],
    out: &mut Vec<Violation>,
) {
    const ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];
    for (ln, line) in lines.iter().enumerate() {
        if in_regions(regions, ln) {
            continue;
        }
        let trimmed = line.trim_start();
        if trimmed.starts_with("use ") || trimmed.starts_with("pub use ") {
            continue;
        }
        let Some(ord) = ORDERINGS.iter().find(|o| find_word(line, o).is_some()) else {
            continue;
        };
        if !has_justification(lexed, lines, ln, "ORDERING:") {
            out.push(Violation {
                file: file.to_owned(),
                line: ln + 1,
                rule: Rule::OrderingJustify,
                msg: format!(
                    "atomic ordering `{ord}` without an adjacent `// ORDERING:` \
                     comment stating why it suffices"
                ),
            });
        }
    }
}

/// Rule 1: `// SAFETY:` adjacency for every `unsafe` site.
fn check_safety_comments(file: &str, lexed: &Lexed, lines: &[&str], out: &mut Vec<Violation>) {
    for (ln, line) in lines.iter().enumerate() {
        let mut at = 0usize;
        while let Some(p) = find_word_from(line, "unsafe", at) {
            at = p + "unsafe".len();
            let Some(site) = classify_unsafe(lines, ln, at) else {
                continue; // `unsafe fn(…)` pointer *type* — the call site is the unsafe site
            };
            if !has_safety_above(lexed, lines, ln, site) {
                let what = match site {
                    UnsafeSite::Fn => "unsafe fn",
                    UnsafeSite::Impl => "unsafe impl",
                    _ => "unsafe block",
                };
                out.push(Violation {
                    file: file.to_owned(),
                    line: ln + 1,
                    rule: Rule::SafetyComment,
                    msg: format!(
                        "{what} without an immediately preceding `// SAFETY:` comment"
                    ),
                });
            }
        }
    }
}

#[derive(Clone, Copy, PartialEq)]
enum UnsafeSite {
    Block,
    Fn,
    Impl,
}

/// Looks at the token following `unsafe` (possibly on later lines) to
/// distinguish `unsafe fn` / `unsafe impl` from plain blocks. Returns
/// `None` for `unsafe fn(…)` / `unsafe extern "…" fn(…)` *types* (fn
/// pointers) — those are not unsafe sites; their call sites are.
fn classify_unsafe(lines: &[&str], ln: usize, col_after: usize) -> Option<UnsafeSite> {
    let mut rest = lines[ln][col_after.min(lines[ln].len())..].trim_start().to_owned();
    let mut next_ln = ln + 1;
    while rest.is_empty() && next_ln < lines.len() {
        rest = lines[next_ln].trim_start().to_owned();
        next_ln += 1;
    }
    if let Some(after_fn) = rest
        .strip_prefix("fn")
        .or_else(|| strip_extern_abi(&rest).and_then(|r| r.strip_prefix("fn")))
    {
        // A declaration names the function (or opens generics); a pointer
        // type goes straight to the parameter list.
        if after_fn.trim_start().starts_with('(') {
            return None;
        }
        return Some(UnsafeSite::Fn);
    }
    if rest.starts_with("extern") {
        return Some(UnsafeSite::Fn); // `unsafe extern "C" {}` block (Rust 2024 form)
    }
    if rest.starts_with("impl") || rest.starts_with("trait") {
        return Some(UnsafeSite::Impl);
    }
    Some(UnsafeSite::Block)
}

/// Strips `extern` and an optional ABI string from the front of a token
/// stream (the ABI literal is blanked by the lexer, so it shows as a run
/// of spaces between quotes that are also blanked).
fn strip_extern_abi(rest: &str) -> Option<&str> {
    rest.strip_prefix("extern").map(str::trim_start)
}

/// Scans upward from the `unsafe` token for a justifying comment.
///
/// Accepted: a `// SAFETY:` on the same line or on a line in the
/// contiguous block above consisting of comments, attributes, blank lines,
/// or earlier lines of the *same statement* (a line not ending in `;`,
/// `{`, or `}` continues the statement below it). For `unsafe fn` /
/// `unsafe impl`, a `# Safety` doc heading above also qualifies.
fn has_safety_above(lexed: &Lexed, lines: &[&str], ln: usize, site: UnsafeSite) -> bool {
    let accepts = |text: &str| {
        text.contains("SAFETY:")
            || (site != UnsafeSite::Block && text.contains("# Safety"))
    };
    if accepts(lexed.comment_line(ln)) {
        return true;
    }
    let mut budget = 30usize;
    let mut l = ln;
    while l > 0 && budget > 0 {
        l -= 1;
        budget -= 1;
        if accepts(lexed.comment_line(l)) {
            return true;
        }
        let code = lines.get(l).map_or("", |s| s.trim());
        if code.is_empty() || code.starts_with("#[") || code.starts_with("#![") {
            continue;
        }
        // A completed statement or block above ends the adjacency window;
        // anything else is an earlier line of the same statement.
        if code.ends_with(';') || code.ends_with('{') || code.ends_with('}') {
            return false;
        }
    }
    false
}

/// Rule 4: `static mut` anywhere.
fn check_static_mut(file: &str, lines: &[&str], out: &mut Vec<Violation>) {
    for (ln, line) in lines.iter().enumerate() {
        if let Some(p) = find_word(line, "static") {
            let rest = line[p + "static".len()..].trim_start();
            if rest.starts_with("mut ") || rest == "mut" {
                out.push(Violation {
                    file: file.to_owned(),
                    line: ln + 1,
                    rule: Rule::NoStaticMut,
                    msg: "`static mut` is forbidden; use an atomic or OnceLock".to_owned(),
                });
            }
        }
    }
}

/// Rule 2: `.unwrap()` / `.expect(` outside test regions in library code.
fn check_unwrap(
    file: &str,
    lines: &[&str],
    regions: &[(usize, usize)],
    out: &mut Vec<Violation>,
) {
    for (ln, line) in lines.iter().enumerate() {
        if in_regions(regions, ln) {
            continue;
        }
        for method in ["unwrap", "expect"] {
            let mut at = 0usize;
            while let Some(p) = find_word_from(line, method, at) {
                at = p + method.len();
                // Must be a method call: `.name(` with only whitespace
                // around the tokens.
                let before = line[..p].trim_end();
                let after = line[at..].trim_start();
                if before.ends_with('.') && after.starts_with('(') {
                    out.push(Violation {
                        file: file.to_owned(),
                        line: ln + 1,
                        rule: Rule::NoUnwrap,
                        msg: format!(
                            ".{method}() in library code; return a typed error \
                             (try_ API) or use unwrap_or_else with a message"
                        ),
                    });
                }
            }
        }
    }
}

/// Rule 3: narrowing `as` casts in hot-path crates need `// CAST:`.
fn check_casts(
    file: &str,
    lexed: &Lexed,
    lines: &[&str],
    regions: &[(usize, usize)],
    out: &mut Vec<Violation>,
) {
    const NARROW: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];
    for (ln, line) in lines.iter().enumerate() {
        if in_regions(regions, ln) {
            continue;
        }
        let mut at = 0usize;
        while let Some(p) = find_word_from(line, "as", at) {
            at = p + 2;
            let target = line[at..].trim_start();
            let Some(ty) = NARROW.iter().find(|t| {
                target.starts_with(**t)
                    && !target[t.len()..]
                        .bytes()
                        .next()
                        .is_some_and(is_ident_byte)
            }) else {
                continue;
            };
            if !has_justification(lexed, lines, ln, "CAST:") {
                out.push(Violation {
                    file: file.to_owned(),
                    line: ln + 1,
                    rule: Rule::CastJustify,
                    msg: format!(
                        "`as {ty}` narrowing cast without a `// CAST:` justification; \
                         prefer try_from with a typed error"
                    ),
                });
            }
        }
    }
}

/// A `tag` comment (`CAST:` / `ORDERING:`) on the same line or in the
/// comment/attribute block above.
fn has_justification(lexed: &Lexed, lines: &[&str], ln: usize, tag: &str) -> bool {
    if lexed.comment_line(ln).contains(tag) {
        return true;
    }
    let mut l = ln;
    let mut budget = 10usize;
    while l > 0 && budget > 0 {
        l -= 1;
        budget -= 1;
        if lexed.comment_line(l).contains(tag) {
            return true;
        }
        let code = lines.get(l).map_or("", |s| s.trim());
        if code.is_empty() || code.starts_with("#[") {
            continue;
        }
        if code.ends_with(';') || code.ends_with('{') || code.ends_with('}') {
            return false;
        }
    }
    false
}

/// Whether any scrubbed source line of a crate contains the `unsafe`
/// keyword — drives the [`Rule::LintHeader`] forbid requirement.
pub fn uses_unsafe(lexed: &Lexed) -> bool {
    lexed
        .scrubbed
        .lines()
        .any(|l| find_word(l, "unsafe").is_some())
}

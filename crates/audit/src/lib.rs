//! `ndirect-audit` — the in-tree unsafe-code auditor.
//!
//! nDirect's performance lives in exactly the places `rustc` cannot check:
//! raw-pointer micro-kernels, scratch-arena packing, a hand-rolled thread
//! pool. This crate is the soundness gate for that surface — a
//! zero-dependency static analyzer that walks the workspace sources with a
//! minimal comment/string-aware lexer ([`lexer`]) and enforces the
//! repo-specific rules catalogued in [`rules::Rule`]:
//!
//! 1. every `unsafe` site carries an adjacent `// SAFETY:` invariant;
//! 2. library code never calls `.unwrap()`/`.expect()` outside tests;
//! 3. narrowing `as` casts in hot-path crates carry a `// CAST:` note;
//! 4. `static mut` is forbidden;
//! 5. every crate opts into the workspace lint table, and unsafe-free
//!    crates `#![forbid(unsafe_code)]`.
//!
//! Violations can only be silenced through the checked-in `audit.allow`
//! file ([`waiver`]), and unused waivers are themselves violations, so the
//! gate can never loosen silently. CI runs `cargo run -p ndirect-audit` on
//! every change (see `.github/workflows/ci.yml`); the dynamic complements
//! — Miri, ThreadSanitizer, AddressSanitizer — live in the `soundness`
//! workflow job and DESIGN.md §12.

#![forbid(unsafe_code)]

pub mod lexer;
pub mod rules;
pub mod waiver;

use std::path::{Path, PathBuf};

use rules::{FileKind, Rule, Violation};

/// Crates whose `src/` is held to the narrowing-cast rule — the hot path
/// the paper's kernels live in.
const HOT_PATH_CRATES: &[&str] = &["core", "simd", "threads", "tensor"];

/// The full audit outcome for one workspace.
pub struct AuditReport {
    /// Violations that no waiver matched, in path/line order.
    pub violations: Vec<Violation>,
    /// Violations silenced by an `audit.allow` entry (reported for
    /// transparency, not counted as failures).
    pub waived: Vec<Violation>,
    /// Files scanned.
    pub files_scanned: usize,
}

impl AuditReport {
    /// Whether the workspace is clean.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// An error that prevented the audit from running at all (I/O, malformed
/// waiver file) — distinct from rule violations.
#[derive(Debug)]
pub enum AuditError {
    Io { path: PathBuf, err: std::io::Error },
    Waiver(waiver::WaiverError),
}

impl std::fmt::Display for AuditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuditError::Io { path, err } => write!(f, "{}: {err}", path.display()),
            AuditError::Waiver(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for AuditError {}

/// Locates the workspace root from this crate's own manifest directory
/// (`crates/audit` → two levels up). Lets `cargo run -p ndirect-audit`
/// work from any CWD inside the workspace.
pub fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or(manifest)
}

/// Audits the workspace rooted at `root`, applying waivers from
/// `<root>/audit.allow` when present.
pub fn audit_workspace(root: &Path) -> Result<AuditReport, AuditError> {
    let allow_path = root.join("audit.allow");
    let waivers = if allow_path.is_file() {
        let text = read(&allow_path)?;
        waiver::parse(&text).map_err(AuditError::Waiver)?
    } else {
        Vec::new()
    };
    audit_with_waivers(root, &waivers)
}

/// Audits with an explicit waiver list (the testable entry point).
pub fn audit_with_waivers(
    root: &Path,
    waivers: &[waiver::Waiver],
) -> Result<AuditReport, AuditError> {
    let mut violations = Vec::new();
    let mut files_scanned = 0usize;

    for crate_dir in sorted_dirs(&root.join("crates"))? {
        let crate_name = file_name(&crate_dir);
        let mut crate_sources = Vec::new();

        // Library sources: all rules. Two passes — the first lexes and
        // collects out-of-line `#[cfg(test)] mod x;` declarations so the
        // second can classify their target files (`x.rs`, `x/…`) as test
        // code for the unwrap/cast rules.
        let src = crate_dir.join("src");
        let mut lexed_sources = Vec::new();
        let mut test_files: Vec<PathBuf> = Vec::new();
        for file in rust_files(&src)? {
            let text = read(&file)?;
            let lexed = lexer::lex(&text);
            for name in rules::test_module_decls(&lexed) {
                // `mod x;` in lib.rs/mod.rs/main.rs resolves next to the
                // declaring file; in foo.rs it resolves under foo/.
                let stem = file.file_stem().and_then(|s| s.to_str()).unwrap_or("");
                let base = match stem {
                    "lib" | "main" | "mod" => file.parent().map(Path::to_path_buf),
                    _ => file.parent().map(|p| p.join(stem)),
                };
                if let Some(base) = base {
                    test_files.push(base.join(format!("{name}.rs")));
                    test_files.push(base.join(&name));
                }
            }
            lexed_sources.push((file, lexed));
        }
        for (file, lexed) in lexed_sources {
            let rel = rel_path(root, &file);
            let in_bin = rel.contains("/src/bin/");
            let is_test_module = test_files
                .iter()
                .any(|t| file == *t || file.starts_with(t));
            let kind = FileKind {
                library: !in_bin && !is_test_module,
                hot_path: !in_bin
                    && !is_test_module
                    && HOT_PATH_CRATES.contains(&crate_name.as_str()),
            };
            violations.extend(rules::check_file(&rel, &lexed, kind));
            files_scanned += 1;
            crate_sources.push(lexed);
        }

        // Integration tests and benches: safety-comment + static-mut only.
        for sub in ["tests", "benches", "examples"] {
            for file in rust_files(&crate_dir.join(sub))? {
                let rel = rel_path(root, &file);
                let text = read(&file)?;
                let lexed = lexer::lex(&text);
                let kind = FileKind {
                    library: false,
                    hot_path: false,
                };
                violations.extend(rules::check_file(&rel, &lexed, kind));
                files_scanned += 1;
            }
        }

        check_lint_header(root, &crate_dir, &crate_sources, &mut violations)?;
    }

    // Workspace-level integration tests and examples.
    for sub in ["tests", "examples"] {
        for file in rust_files(&root.join(sub))? {
            let rel = rel_path(root, &file);
            let text = read(&file)?;
            let lexed = lexer::lex(&text);
            let kind = FileKind {
                library: false,
                hot_path: false,
            };
            violations.extend(rules::check_file(&rel, &lexed, kind));
            files_scanned += 1;
        }
    }

    violations.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));

    // Apply waivers; every waiver must earn its keep.
    let mut used = vec![false; waivers.len()];
    let (waived, live): (Vec<_>, Vec<_>) = violations.into_iter().partition(|v| {
        let hit = waivers
            .iter()
            .position(|w| w.rule == v.rule && w.file == v.file);
        if let Some(i) = hit {
            used[i] = true;
            true
        } else {
            false
        }
    });
    let mut violations = live;
    for (w, used) in waivers.iter().zip(used) {
        if !used {
            violations.push(Violation {
                file: "audit.allow".to_owned(),
                line: w.line,
                rule: Rule::UnusedWaiver,
                msg: format!(
                    "waiver `{} {}` matches no live violation; delete it",
                    w.rule.id(),
                    w.file
                ),
            });
        }
    }

    Ok(AuditReport {
        violations,
        waived,
        files_scanned,
    })
}

/// Rule 5: `[lints] workspace = true` in the crate manifest, and
/// `#![forbid(unsafe_code)]` in `lib.rs` when no source uses `unsafe`.
fn check_lint_header(
    root: &Path,
    crate_dir: &Path,
    sources: &[lexer::Lexed],
    out: &mut Vec<Violation>,
) -> Result<(), AuditError> {
    let manifest_path = crate_dir.join("Cargo.toml");
    let manifest = read(&manifest_path)?;
    let rel_manifest = rel_path(root, &manifest_path);
    if !manifest_opts_into_workspace_lints(&manifest) {
        out.push(Violation {
            file: rel_manifest.clone(),
            line: 1,
            rule: Rule::LintHeader,
            msg: "crate does not set `[lints] workspace = true`".to_owned(),
        });
    }
    let lib = crate_dir.join("src/lib.rs");
    if lib.is_file() && !sources.iter().any(rules::uses_unsafe) {
        let lib_text = read(&lib)?;
        let scrubbed = lexer::lex(&lib_text).scrubbed;
        if !scrubbed.contains("#![forbid(unsafe_code)]") {
            out.push(Violation {
                file: rel_path(root, &lib),
                line: 1,
                rule: Rule::LintHeader,
                msg: "crate uses no unsafe; add #![forbid(unsafe_code)]".to_owned(),
            });
        }
    }
    Ok(())
}

/// `[lints]` table with `workspace = true` — a line-level check is enough
/// for the fixed manifest style this workspace uses.
fn manifest_opts_into_workspace_lints(manifest: &str) -> bool {
    let mut in_lints = false;
    for line in manifest.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_lints = line == "[lints]";
            continue;
        }
        if in_lints && line.replace(' ', "") == "workspace=true" {
            return true;
        }
    }
    false
}

fn read(path: &Path) -> Result<String, AuditError> {
    std::fs::read_to_string(path).map_err(|err| AuditError::Io {
        path: path.to_path_buf(),
        err,
    })
}

/// Immediate subdirectories, sorted by name for deterministic reports.
fn sorted_dirs(path: &Path) -> Result<Vec<PathBuf>, AuditError> {
    let mut out = Vec::new();
    if !path.is_dir() {
        return Ok(out);
    }
    let entries = std::fs::read_dir(path).map_err(|err| AuditError::Io {
        path: path.to_path_buf(),
        err,
    })?;
    for entry in entries {
        let entry = entry.map_err(|err| AuditError::Io {
            path: path.to_path_buf(),
            err,
        })?;
        if entry.path().is_dir() {
            out.push(entry.path());
        }
    }
    out.sort();
    Ok(out)
}

/// All `.rs` files under `path`, recursively, sorted.
fn rust_files(path: &Path) -> Result<Vec<PathBuf>, AuditError> {
    let mut out = Vec::new();
    collect_rust_files(path, &mut out)?;
    out.sort();
    Ok(out)
}

fn collect_rust_files(path: &Path, out: &mut Vec<PathBuf>) -> Result<(), AuditError> {
    if !path.is_dir() {
        return Ok(());
    }
    let entries = std::fs::read_dir(path).map_err(|err| AuditError::Io {
        path: path.to_path_buf(),
        err,
    })?;
    for entry in entries {
        let entry = entry.map_err(|err| AuditError::Io {
            path: path.to_path_buf(),
            err,
        })?;
        let p = entry.path();
        if p.is_dir() {
            collect_rust_files(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

fn file_name(path: &Path) -> String {
    path.file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default()
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}
